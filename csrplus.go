// Package csrplus is a Go implementation of CSR+, the scalable multi-source
// CoSimRank search algorithm of Zhang & Yu (EDBT 2024), together with every
// baseline its evaluation compares against.
//
// CoSimRank (Rothe & Schütze 2014) scores two nodes as similar when their
// in-neighbours are similar; it is the fixed point of S = c·QᵀSQ + I over
// the column-normalised adjacency matrix Q. CSR+ answers multi-source
// queries [S]_{*,Q} in O(r(m + n(r + |Q|))) time and O(rn) memory by
// combining a rank-r truncated SVD with a repeated-squaring solve in the
// r x r subspace.
//
// Quick start:
//
//	g, err := csrplus.GenerateDataset("FB", 0)        // or LoadGraph(...)
//	eng, err := csrplus.NewEngine(g, csrplus.Options{})
//	cols, err := eng.Query([]int{12, 99})             // [S]_{*,{12,99}}
//	top, err := eng.TopK(12, 10)                      // 10 most similar
//
// The heavy lifting lives in internal packages (dense/sparse linear
// algebra, truncated SVD, graph generators, the algorithms themselves);
// this package is the stable public surface.
package csrplus

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"csrplus/internal/baseline"
	"csrplus/internal/core"
	"csrplus/internal/dense"
	"csrplus/internal/graph"
	"csrplus/internal/memtrack"
	"csrplus/internal/sparse"
	"csrplus/internal/svd"
	"csrplus/internal/topk"
)

// Algorithm names accepted by Options.Algorithm.
const (
	AlgoCSRPlus   = "CSR+"
	AlgoNI        = "CSR-NI"
	AlgoIT        = "CSR-IT"
	AlgoRLS       = "CSR-RLS"
	AlgoCoSimMate = "CoSimMate"
	AlgoRPCoSim   = "RP-CoSim"
	AlgoExact     = "Exact"
)

// Algorithms lists every available algorithm name.
func Algorithms() []string { return baseline.Names() }

// ErrBadEdge is returned (wrapped) when an edge references an unknown node.
var ErrBadEdge = errors.New("csrplus: edge endpoint out of range")

// Graph is an immutable directed graph over nodes 0..N-1.
type Graph struct {
	g *graph.Graph
}

// NewGraph builds a graph with n nodes from directed edges (u -> v).
// Duplicate edges collapse; self-loops are allowed.
func NewGraph(n int, edges [][2]int) (*Graph, error) {
	coo := sparse.NewCOO(n, n)
	coo.Grow(len(edges))
	for _, e := range edges {
		if err := coo.Add(e[0], e[1], 1); err != nil {
			return nil, fmt.Errorf("%w: (%d, %d) with n=%d", ErrBadEdge, e[0], e[1], n)
		}
	}
	return &Graph{g: graph.New(coo)}, nil
}

// WeightedEdge is one weighted directed edge for NewWeightedGraph.
type WeightedEdge struct {
	From, To int
	Weight   float64
}

// NewWeightedGraph builds a graph whose edges carry positive weights
// (duplicates sum). The CoSimRank transition then distributes
// weight-proportionally over in-neighbours instead of uniformly —
// e.g. co-occurrence counts in text graphs.
func NewWeightedGraph(n int, edges []WeightedEdge) (*Graph, error) {
	coo := sparse.NewCOO(n, n)
	coo.Grow(len(edges))
	for _, e := range edges {
		if err := coo.Add(e.From, e.To, e.Weight); err != nil {
			return nil, fmt.Errorf("%w: (%d, %d) with n=%d", ErrBadEdge, e.From, e.To, n)
		}
	}
	g, err := graph.NewWeighted(coo)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// LoadGraph reads a SNAP-style edge list ("src dst" lines, '#' comments)
// with node ids in [0, n).
func LoadGraph(path string, n int) (*Graph, error) {
	g, err := graph.Load(path, n)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// ReadGraph parses a SNAP-style edge list from r.
func ReadGraph(r io.Reader, n int) (*Graph, error) {
	g, err := graph.Read(r, n)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// LoadWeightedGraph reads a "src dst weight" edge list with node ids in
// [0, n) and positive weights.
func LoadWeightedGraph(path string, n int) (*Graph, error) {
	g, err := graph.LoadWeighted(path, n)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// Weighted reports whether the graph carries edge weights.
func (gr *Graph) Weighted() bool { return gr.g.Weighted() }

// CoreGraph exposes the wrapped internal graph. Like Engine.CoreIndex,
// this is a module-internal hook — the ingest pipeline maintains dynamic
// state against it — not part of the stable public surface.
func (gr *Graph) CoreGraph() *graph.Graph { return gr.g }

// FromCoreGraph wraps an internal graph (e.g. one materialised from the
// ingest pipeline's live edge set) for engine construction. Module-
// internal hook, like CoreGraph.
func FromCoreGraph(g *graph.Graph) *Graph { return &Graph{g: g} }

// OutDegree returns the out-degree of node u.
func (gr *Graph) OutDegree(u int) int { return gr.g.OutDegree(u) }

// InDegrees returns the in-degree of every node.
func (gr *Graph) InDegrees() []int { return gr.g.InDegrees() }

// GenerateDataset builds the synthetic stand-in for one of the paper's
// datasets: FB, P2P, YT, WT, TW or WB. scale <= 0 selects the dataset's
// default downscale factor (see DESIGN.md §5); scale = 1 is original size.
func GenerateDataset(key string, scale int64) (*Graph, error) {
	d, err := graph.DatasetByKey(key)
	if err != nil {
		return nil, err
	}
	if scale <= 0 {
		scale = d.Scale
	}
	g, err := d.GenerateScaled(scale)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// DatasetKeys lists the paper's dataset keys in its table order.
func DatasetKeys() []string {
	keys := make([]string, len(graph.Datasets))
	for i, d := range graph.Datasets {
		keys[i] = d.Key
	}
	return keys
}

// N returns the node count.
func (gr *Graph) N() int { return gr.g.N() }

// M returns the edge count.
func (gr *Graph) M() int64 { return gr.g.M() }

// HasEdge reports whether edge u -> v exists.
func (gr *Graph) HasEdge(u, v int) bool { return gr.g.HasEdge(u, v) }

// Save writes the graph as an edge list.
func (gr *Graph) Save(path string) error { return gr.g.Save(path) }

// Options configures an Engine. The zero value selects CSR+ with the
// paper's defaults (c = 0.6, r = 5, eps = 1e-5).
type Options struct {
	// Algorithm is one of the Algo* constants. Default AlgoCSRPlus.
	Algorithm string
	// Damping is the CoSimRank damping factor c in (0, 1). Default 0.6.
	Damping float64
	// Rank is the SVD rank r (CSR+/CSR-NI) and the iteration count of the
	// iterative baselines. Default 5.
	Rank int
	// Eps is the target accuracy. Default 1e-5.
	Eps float64
	// SketchDim is RP-CoSim's projection width. Default 128.
	SketchDim int
	// Seed fixes all randomised components. Zero is a valid fixed seed.
	Seed int64
}

// Match is one top-k result.
type Match struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}

// Stats reports an engine's cost counters.
type Stats struct {
	Algorithm      string
	N              int
	M              int64
	Rank           int // SVD rank of the index; 0 for algorithms without one
	PrecomputeTime time.Duration
	PeakBytes      int64 // analytic peak across precompute + queries so far
}

// Engine answers CoSimRank queries over one graph with one algorithm.
// Every algorithm's query phase reads only precomputed state and per-call
// scratch, so an Engine is safe for concurrent Query/TopK calls.
type Engine struct {
	gr      *Graph
	runner  baseline.Runner
	tracker *memtrack.Tracker
	algo    string
	precomp time.Duration
}

// NewEngine precomputes the chosen algorithm's index over g.
func NewEngine(g *Graph, opts Options) (*Engine, error) {
	if g == nil || g.g == nil {
		return nil, errors.New("csrplus: nil graph")
	}
	algo := opts.Algorithm
	if algo == "" {
		algo = AlgoCSRPlus
	}
	tracker := memtrack.New()
	runner, err := baseline.New(algo, baseline.Config{
		Damping:   opts.Damping,
		Rank:      opts.Rank,
		Eps:       opts.Eps,
		SketchDim: opts.SketchDim,
		SVD:       svd.Options{Seed: opts.Seed},
		Tracker:   tracker,
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := runner.Precompute(g.g); err != nil {
		return nil, err
	}
	return &Engine{
		gr:      g,
		runner:  runner,
		tracker: tracker,
		algo:    algo,
		precomp: time.Since(start),
	}, nil
}

// Query returns the multi-source similarity block: result[j][i] is the
// CoSimRank similarity between node i and queries[j].
func (e *Engine) Query(queries []int) ([][]float64, error) {
	s, err := e.runner.Query(queries)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(queries))
	for j := range queries {
		out[j] = s.Col(j, nil)
	}
	return out, nil
}

// QueryInto is the serving layer's allocation-light variant of Query: the
// n x |Q| similarity block is written into scratch's backing array when
// its capacity suffices (contents overwritten; nil scratch allocates) and
// the result matrix is returned, so a server can pool one scratch matrix
// per in-flight batch instead of allocating n x |Q| per engine call.
// It satisfies internal/serve.MatQueryFunc. The scratch type is
// module-internal, so the method is a hook for this module's cmd/
// binaries and benchmarks rather than part of the stable public surface;
// external callers should use Query. Algorithms without a scratch-aware
// query phase (every non-CSR+ baseline) silently fall back to a fresh
// allocation.
func (e *Engine) QueryInto(queries []int, scratch *dense.Mat) (*dense.Mat, error) {
	if sq, ok := e.runner.(baseline.ScratchQuerier); ok {
		return sq.QueryInto(queries, scratch)
	}
	return e.runner.Query(queries)
}

// QueryRankInto is QueryInto answered from a rank-truncated slice of a
// CSR+ index, honouring ctx: the serving layer's degraded mode. rank <= 0
// or >= the index rank answers at full rank; the entrywise error of a
// truncated answer is bounded by TruncationBound(rank). Engines without a
// rank-structured index (every non-CSR+ baseline) ignore rank and answer
// exactly, checking ctx only at entry. It satisfies
// internal/serve.RankQueryFunc; like QueryInto it is a serving hook, not
// part of the stable public surface.
func (e *Engine) QueryRankInto(ctx context.Context, queries []int, rank int, scratch *dense.Mat) (*dense.Mat, error) {
	if cp, ok := e.runner.(*baseline.CSRPlus); ok {
		return cp.QueryRankInto(ctx, queries, rank, scratch)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.QueryInto(queries, scratch)
}

// TruncationBound bounds the entrywise error of a rank-truncated query
// against the full-rank answer (see core.Index.TruncationBound). It
// returns 0 for full rank and for engines without a rank-structured index,
// whose answers never degrade.
func (e *Engine) TruncationBound(rank int) float64 {
	if cp, ok := e.runner.(*baseline.CSRPlus); ok && cp.Index() != nil {
		return cp.Index().TruncationBound(rank)
	}
	return 0
}

// QueryBatch answers a large query set with a pool of worker goroutines,
// splitting the set into per-worker chunks and merging the columns in
// order. Results are identical to Query; the speed-up applies to the
// per-query algorithms (Exact, CSR-RLS, RP-CoSim), whose query cost is
// linear in |Q|. workers < 1 selects GOMAXPROCS.
func (e *Engine) QueryBatch(queries []int, workers int) ([][]float64, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		return e.Query(queries)
	}
	out := make([][]float64, len(queries))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (len(queries) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(queries) {
			hi = len(queries)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			cols, err := e.Query(queries[lo:hi])
			if err != nil {
				errs[w] = err
				return
			}
			copy(out[lo:hi], cols)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// QueryOne returns the single-source similarity vector [S]_{*,q}.
func (e *Engine) QueryOne(q int) ([]float64, error) {
	cols, err := e.Query([]int{q})
	if err != nil {
		return nil, err
	}
	return cols[0], nil
}

// TopK returns the k nodes most similar to q, excluding q itself,
// ordered by descending similarity.
func (e *Engine) TopK(q, k int) ([]Match, error) {
	col, err := e.QueryOne(q)
	if err != nil {
		return nil, err
	}
	items := topk.Select(col, k, q)
	out := make([]Match, len(items))
	for i, it := range items {
		out[i] = Match{Node: it.Node, Score: it.Score}
	}
	return out, nil
}

// TopKMulti returns, for a multi-source query set, the k nodes with the
// highest aggregate (summed) similarity to the set — the paper's §1
// Wikipedians-categorisation pattern, where the query set carries a label
// and high-aggregate nodes inherit it.
func (e *Engine) TopKMulti(queries []int, k int) ([]Match, error) {
	cols, err := e.Query(queries)
	if err != nil {
		return nil, err
	}
	agg := make([]float64, e.gr.N())
	for _, col := range cols {
		for i, v := range col {
			agg[i] += v
		}
	}
	exclude := make(map[int]bool, len(queries))
	for _, q := range queries {
		exclude[q] = true
	}
	items := topk.SelectSet(agg, k, exclude)
	out := make([]Match, 0, len(items))
	for _, it := range items {
		out = append(out, Match{Node: it.Node, Score: it.Score})
	}
	return out, nil
}

// CoreIndex returns the engine's underlying CSR+ index, reporting false
// for algorithms without one (every non-CSR+ baseline). Like QueryInto,
// this is a module-internal serving hook — internal/shard slices the
// index into node-range shards through it — not part of the stable
// public surface.
func (e *Engine) CoreIndex() (*core.Index, bool) {
	if cp, ok := e.runner.(*baseline.CSRPlus); ok {
		return cp.Index(), true
	}
	return nil, false
}

// ErrNotCSRPlus is returned by index persistence on non-CSR+ engines.
var ErrNotCSRPlus = errors.New("csrplus: index persistence requires the CSR+ algorithm")

// Close releases resources the engine's index pins for its lifetime —
// the memory mapping of a v2 snapshot loaded zero-copy by LoadEngine or
// RecoverEngine. Call it only after every query that might touch the
// engine has finished (a server's swap-and-drain provides exactly that
// point; see reload.Candidate.Release). Safe to call more than once and
// on engines with nothing to release (precomputed, non-CSR+).
func (e *Engine) Close() error {
	if cp, ok := e.runner.(*baseline.CSRPlus); ok && cp.Index() != nil {
		return cp.Index().Close()
	}
	return nil
}

// SaveIndex persists a CSR+ engine's precomputed index to path (binary,
// checksummed, mmap-able v2 layout; see internal/core's format doc).
// Only AlgoCSRPlus engines carry a persistable index.
func (e *Engine) SaveIndex(path string) error {
	return e.SaveIndexTier(path, "")
}

// SaveIndexTier is SaveIndex with a quantized factor tier selected at
// save time: "" or "f64" writes the exact index, "f32" and "int8" write
// narrowed factors (2x and 8x smaller) whose measured per-column
// quantization errors ship in the file, so a loaded index reports the
// entrywise error of its answers through TruncationBound. The engine's
// own in-memory index stays exact.
func (e *Engine) SaveIndexTier(path, tier string) error {
	ix, err := e.tieredIndex(tier)
	if err != nil {
		return err
	}
	return core.SaveIndex(ix, path)
}

// SaveSnapshot persists a CSR+ engine's index as the next generation of
// the versioned snapshot directory dir (index-<gen>.csrx) and atomically
// repoints the CURRENT file at it — the publish half of the zero-downtime
// reload cycle. It returns the generation number and the snapshot path.
func (e *Engine) SaveSnapshot(dir string) (gen uint64, path string, err error) {
	return e.SaveSnapshotTier(dir, "")
}

// SaveSnapshotTier is SaveSnapshot with a quantized factor tier (see
// SaveIndexTier).
func (e *Engine) SaveSnapshotTier(dir, tier string) (gen uint64, path string, err error) {
	ix, err := e.tieredIndex(tier)
	if err != nil {
		return 0, "", err
	}
	return core.WriteSnapshot(dir, ix)
}

// tieredIndex resolves the engine's index at the requested tier,
// quantizing a copy when the tier is lossy.
func (e *Engine) tieredIndex(tier string) (*core.Index, error) {
	cp, ok := e.runner.(*baseline.CSRPlus)
	if !ok {
		return nil, fmt.Errorf("%w (engine runs %s)", ErrNotCSRPlus, e.algo)
	}
	t, err := core.ParseTier(tier)
	if err != nil {
		return nil, err
	}
	return cp.Index().Quantize(t)
}

// LoadEngine builds a query-ready CSR+ engine from an index previously
// written by SaveIndex. The graph is only consulted for Stats (it must be
// the one the index was built from; a node-count mismatch is rejected).
func LoadEngine(g *Graph, path string) (*Engine, error) {
	if g == nil || g.g == nil {
		return nil, errors.New("csrplus: nil graph")
	}
	ix, err := core.LoadIndex(path)
	if err != nil {
		return nil, err
	}
	return engineFromIndex(g, ix)
}

func engineFromIndex(g *Graph, ix *core.Index) (*Engine, error) {
	if ix.N() != g.N() {
		return nil, fmt.Errorf("csrplus: index built for %d nodes, graph has %d", ix.N(), g.N())
	}
	tracker := memtrack.New()
	runner := baseline.CSRPlusFromIndex(ix, baseline.Config{
		Damping: ix.Damping(),
		Rank:    ix.Rank(),
		Tracker: tracker,
	})
	return &Engine{gr: g, runner: runner, tracker: tracker, algo: AlgoCSRPlus}, nil
}

// RecoveredSnapshot describes the snapshot RecoverEngine actually served.
type RecoveredSnapshot struct {
	// Gen and Path identify the loaded index-<gen>.csrx file.
	Gen  uint64
	Path string
	// Recovered reports the served snapshot is NOT the one the
	// directory's CURRENT names — crash recovery fell back to an older
	// generation, and the operator should investigate and re-publish.
	Recovered bool
}

// RecoverEngine is LoadEngine over a versioned snapshot directory with
// crash recovery: it serves the snapshot CURRENT names when that loads
// cleanly, and otherwise falls back to the newest generation that still
// deserialises (torn CURRENT writes, truncated or missing index files —
// the states a crash mid-publish leaves behind). See core.RecoverSnapshot
// for the exact fallback order.
func RecoverEngine(g *Graph, dir string) (*Engine, RecoveredSnapshot, error) {
	if g == nil || g.g == nil {
		return nil, RecoveredSnapshot{}, errors.New("csrplus: nil graph")
	}
	ix, snap, recovered, err := core.RecoverSnapshot(dir)
	if err != nil {
		return nil, RecoveredSnapshot{}, err
	}
	eng, err := engineFromIndex(g, ix)
	if err != nil {
		return nil, RecoveredSnapshot{}, err
	}
	return eng, RecoveredSnapshot{Gen: snap.Gen, Path: snap.Path, Recovered: recovered}, nil
}

// Stats returns the engine's cost counters so far.
func (e *Engine) Stats() Stats {
	st := Stats{
		Algorithm:      e.algo,
		N:              e.gr.N(),
		M:              e.gr.M(),
		PrecomputeTime: e.precomp,
		PeakBytes:      e.tracker.Peak(),
	}
	if cp, ok := e.runner.(*baseline.CSRPlus); ok {
		st.Rank = cp.Index().Rank()
	}
	return st
}

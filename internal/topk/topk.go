// Package topk selects the k highest-scoring nodes from a similarity
// column using a bounded min-heap — O(n log k) instead of a full sort,
// which matters when similarity searches over million-node graphs only
// need a short result list.
//
// Ordering contract: every selection and merge in this package orders
// items by descending score with ties broken by ascending node id, and
// the tie-break is part of the API — it is what makes a scatter–gather
// top-k over row-partitioned shards (internal/shard) return exactly the
// same items in exactly the same order as a single engine over the whole
// graph, at any shard count.
package topk

import (
	"container/heap"
	"math"
	"sort"
)

// Item pairs a node id with its similarity score.
type Item struct {
	Node  int
	Score float64
}

// itemLess is the package's one ordering: higher scores first, ties
// broken by smaller node id. Select's result order, Merge's result
// order, and the heap's eviction rule are all derived from it, so the
// selection is a deterministic function of the (score, node) multiset —
// never of input order, partitioning, or sort stability.
func itemLess(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Node < b.Node
}

// itemHeap is a min-heap on Score (ties broken by larger Node so that the
// worst-ranked item under itemLess is always at the root).
type itemHeap []Item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Node > h[j].Node
}
func (h itemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x interface{}) { *h = append(*h, x.(Item)) }
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Select returns the k highest-scoring items of scores, ordered by
// descending score (ascending node id among ties). exclude, when >= 0,
// drops that node (callers typically exclude the query node itself).
// k <= 0 returns nil; k beyond the candidate count returns all candidates.
//
// Multi-source callers that must drop every query node should use
// SelectSet; Select keeps the historical single-node signature as a thin
// wrapper over it.
func Select(scores []float64, k, exclude int) []Item {
	if exclude < 0 {
		return SelectRange(scores, k, 0, nil)
	}
	return SelectRange(scores, k, 0, map[int]bool{exclude: true})
}

// SelectSet is Select with an exclusion set: every node with
// exclude[node] == true is dropped from the candidates — the multi-source
// case, where all source nodes must be excluded from their own top-k,
// not just one. A nil map excludes nothing.
func SelectSet(scores []float64, k int, exclude map[int]bool) []Item {
	return SelectRange(scores, k, 0, exclude)
}

// SelectRange is the core selection: scores[i] belongs to node base+i,
// and the exclusion set holds those global node ids. It exists for
// row-partitioned shards, where a shard scores only its contiguous node
// range [base, base+len(scores)) but results and exclusions are in
// global ids; base 0 recovers SelectSet.
//
// NaN scores are skipped: NaN compares false with everything, so letting
// one into the min-heap would corrupt the heap invariant (and a NaN can
// reach here from a diverged or denormal similarity column). ±Inf orders
// normally and is kept.
func SelectRange(scores []float64, k, base int, exclude map[int]bool) []Item {
	if k <= 0 {
		return nil
	}
	h := make(itemHeap, 0, k)
	for i, score := range scores {
		node := base + i
		if exclude[node] || math.IsNaN(score) {
			continue
		}
		if len(h) < k {
			heap.Push(&h, Item{node, score})
			continue
		}
		if h[0].Score < score || (h[0].Score == score && h[0].Node > node) {
			h[0] = Item{node, score}
			heap.Fix(&h, 0)
		}
	}
	out := []Item(h)
	sort.Slice(out, func(i, j int) bool { return itemLess(out[i], out[j]) })
	return out
}

// Merge combines per-shard partial top-k lists into the exact global
// top-k: the k best items of the union under the package ordering
// (descending score, ascending node id among ties). Each input list must
// itself be a top-k of its shard's candidates — then, because every
// candidate node lives in exactly one list, the merge of the partials is
// provably the top-k of the union of all candidates (any global top-k
// item is a top-k item of its own shard). The result is a deterministic
// function of the items alone: list order, list count, and score ties
// cannot change it, which is what makes scatter–gather results invariant
// to the shard count. Items are not deduplicated — callers guarantee
// node-disjoint inputs.
func Merge(k int, lists ...[]Item) []Item {
	if k <= 0 {
		return nil
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	all := make([]Item, 0, total)
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return itemLess(all[i], all[j]) })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Package topk selects the k highest-scoring nodes from a similarity
// column using a bounded min-heap — O(n log k) instead of a full sort,
// which matters when similarity searches over million-node graphs only
// need a short result list.
package topk

import (
	"container/heap"
	"math"
	"sort"
)

// Item pairs a node id with its similarity score.
type Item struct {
	Node  int
	Score float64
}

// itemHeap is a min-heap on Score (ties broken by larger Node so that the
// final output, after reversal, lists smaller ids first among equals).
type itemHeap []Item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Node > h[j].Node
}
func (h itemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x interface{}) { *h = append(*h, x.(Item)) }
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Select returns the k highest-scoring items of scores, ordered by
// descending score (ascending node id among ties). exclude, when >= 0,
// drops that node (callers typically exclude the query node itself).
// k <= 0 returns nil; k beyond the candidate count returns all candidates.
//
// NaN scores are skipped: NaN compares false with everything, so letting
// one into the min-heap would corrupt the heap invariant (and a NaN can
// reach here from a diverged or denormal similarity column). ±Inf orders
// normally and is kept.
func Select(scores []float64, k, exclude int) []Item {
	if k <= 0 {
		return nil
	}
	h := make(itemHeap, 0, k)
	for node, score := range scores {
		if node == exclude || math.IsNaN(score) {
			continue
		}
		if len(h) < k {
			heap.Push(&h, Item{node, score})
			continue
		}
		if h[0].Score < score || (h[0].Score == score && h[0].Node > node) {
			h[0] = Item{node, score}
			heap.Fix(&h, 0)
		}
	}
	out := []Item(h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	return out
}

package topk

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSelectBasic(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.7, 0.3}
	got := Select(scores, 3, -1)
	want := []Item{{1, 0.9}, {3, 0.7}, {2, 0.5}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSelectExclude(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5}
	got := Select(scores, 2, 1)
	if len(got) != 2 || got[0].Node != 2 || got[1].Node != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestSelectKLargerThanN(t *testing.T) {
	got := Select([]float64{0.2, 0.1}, 10, -1)
	if len(got) != 2 {
		t.Fatalf("got %d items", len(got))
	}
}

func TestSelectNonPositiveK(t *testing.T) {
	if Select([]float64{1}, 0, -1) != nil || Select([]float64{1}, -2, -1) != nil {
		t.Fatal("k <= 0 should return nil")
	}
}

func TestSelectTiesPreferSmallerNode(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	got := Select(scores, 2, -1)
	if got[0].Node != 0 || got[1].Node != 1 {
		t.Fatalf("ties broken wrong: %v", got)
	}
}

func TestSelectEmpty(t *testing.T) {
	if got := Select(nil, 3, -1); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

// TestSelectNaNSafe is the regression test for the NaN heap corruption:
// NaN compares false with everything, so a NaN admitted into the min-heap
// breaks the heap invariant and can both occupy a result slot and shadow
// real candidates. NaNs must be skipped entirely; ±Inf orders normally.
func TestSelectNaNSafe(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	scores := []float64{0.3, nan, 0.9, nan, inf, 0.1, math.Inf(-1), nan, 0.5}
	got := Select(scores, 4, -1)
	want := []Item{{4, inf}, {2, 0.9}, {8, 0.5}, {0, 0.3}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for _, it := range got {
		if math.IsNaN(it.Score) {
			t.Fatalf("NaN leaked into results: %v", got)
		}
	}
	// All-NaN input yields no candidates at all.
	if got := Select([]float64{nan, nan, nan}, 2, -1); len(got) != 0 {
		t.Fatalf("all-NaN input returned %v", got)
	}
	// NaNs ahead of the k-th candidate must not shrink the result: k
	// finite scores survive k+NaNs input.
	mixed := []float64{nan, 0.2, nan, 0.4, nan, 0.6}
	if got := Select(mixed, 3, -1); len(got) != 3 || got[0].Node != 5 || got[2].Node != 1 {
		t.Fatalf("NaN-heavy input returned %v", got)
	}
}

// Property: Select(k) returns exactly the top k of a full sort.
func TestSelectAgainstSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.Float64()
		}
		got := Select(scores, k, -1)
		ref := make([]Item, n)
		for i, s := range scores {
			ref[i] = Item{i, s}
		}
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].Score != ref[j].Score {
				return ref[i].Score > ref[j].Score
			}
			return ref[i].Node < ref[j].Node
		})
		if k > n {
			k = n
		}
		if len(got) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapInterfaceDirect(t *testing.T) {
	// Exercise the container/heap contract (Push/Pop) directly.
	h := &itemHeap{}
	heap.Init(h)
	for _, it := range []Item{{0, 0.5}, {1, 0.1}, {2, 0.9}} {
		heap.Push(h, it)
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	got := heap.Pop(h).(Item)
	if got.Node != 1 { // min-heap pops the smallest score
		t.Fatalf("popped %+v, want node 1", got)
	}
}

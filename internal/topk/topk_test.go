package topk

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSelectBasic(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.7, 0.3}
	got := Select(scores, 3, -1)
	want := []Item{{1, 0.9}, {3, 0.7}, {2, 0.5}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSelectExclude(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5}
	got := Select(scores, 2, 1)
	if len(got) != 2 || got[0].Node != 2 || got[1].Node != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestSelectKLargerThanN(t *testing.T) {
	got := Select([]float64{0.2, 0.1}, 10, -1)
	if len(got) != 2 {
		t.Fatalf("got %d items", len(got))
	}
}

func TestSelectNonPositiveK(t *testing.T) {
	if Select([]float64{1}, 0, -1) != nil || Select([]float64{1}, -2, -1) != nil {
		t.Fatal("k <= 0 should return nil")
	}
}

func TestSelectTiesPreferSmallerNode(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	got := Select(scores, 2, -1)
	if got[0].Node != 0 || got[1].Node != 1 {
		t.Fatalf("ties broken wrong: %v", got)
	}
}

func TestSelectEmpty(t *testing.T) {
	if got := Select(nil, 3, -1); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

// TestSelectNaNSafe is the regression test for the NaN heap corruption:
// NaN compares false with everything, so a NaN admitted into the min-heap
// breaks the heap invariant and can both occupy a result slot and shadow
// real candidates. NaNs must be skipped entirely; ±Inf orders normally.
func TestSelectNaNSafe(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	scores := []float64{0.3, nan, 0.9, nan, inf, 0.1, math.Inf(-1), nan, 0.5}
	got := Select(scores, 4, -1)
	want := []Item{{4, inf}, {2, 0.9}, {8, 0.5}, {0, 0.3}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for _, it := range got {
		if math.IsNaN(it.Score) {
			t.Fatalf("NaN leaked into results: %v", got)
		}
	}
	// All-NaN input yields no candidates at all.
	if got := Select([]float64{nan, nan, nan}, 2, -1); len(got) != 0 {
		t.Fatalf("all-NaN input returned %v", got)
	}
	// NaNs ahead of the k-th candidate must not shrink the result: k
	// finite scores survive k+NaNs input.
	mixed := []float64{nan, 0.2, nan, 0.4, nan, 0.6}
	if got := Select(mixed, 3, -1); len(got) != 3 || got[0].Node != 5 || got[2].Node != 1 {
		t.Fatalf("NaN-heavy input returned %v", got)
	}
}

// Property: Select(k) returns exactly the top k of a full sort.
func TestSelectAgainstSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.Float64()
		}
		got := Select(scores, k, -1)
		ref := make([]Item, n)
		for i, s := range scores {
			ref[i] = Item{i, s}
		}
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].Score != ref[j].Score {
				return ref[i].Score > ref[j].Score
			}
			return ref[i].Node < ref[j].Node
		})
		if k > n {
			k = n
		}
		if len(got) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSelectDuplicateScoresDeterministic is the regression test for the
// tie-break contract the scatter–gather merge depends on: under heavy
// score duplication the selection must order ties by ascending node id,
// and selecting per contiguous range then merging must reproduce the
// whole-array selection exactly — at every split point. A tie-break that
// depended on heap eviction order or sort stability would fail the
// split-invariance half of this test.
func TestSelectDuplicateScoresDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, k := 200, 12
	scores := make([]float64, n)
	levels := []float64{0.1, 0.5, 0.5, 0.9} // few distinct values => many ties
	for i := range scores {
		scores[i] = levels[rng.Intn(len(levels))]
	}
	want := Select(scores, k, -1)
	for i := 1; i < len(want); i++ {
		a, b := want[i-1], want[i]
		if a.Score < b.Score || (a.Score == b.Score && a.Node >= b.Node) {
			t.Fatalf("tie ordering violated at %d: %v then %v", i, a, b)
		}
	}
	// Split the array into every 2-way contiguous partition and re-derive
	// the answer via per-range selection + merge.
	for cut := 0; cut <= n; cut += 17 {
		left := SelectRange(scores[:cut], k, 0, nil)
		right := SelectRange(scores[cut:], k, cut, nil)
		got := Merge(k, left, right)
		if len(got) != len(want) {
			t.Fatalf("cut %d: got %d items, want %d", cut, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cut %d: item %d = %v, want %v", cut, i, got[i], want[i])
			}
		}
	}
}

func TestSelectSetExcludesAll(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.6, 0.5}
	got := SelectSet(scores, 3, map[int]bool{0: true, 2: true})
	want := []Item{{1, 0.8}, {3, 0.6}, {4, 0.5}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// nil set excludes nothing; Select's single-node form is the wrapper.
	if got := SelectSet(scores, 2, nil); got[0].Node != 0 || got[1].Node != 1 {
		t.Fatalf("nil exclusion set: %v", got)
	}
	a, b := Select(scores, 2, 1), SelectSet(scores, 2, map[int]bool{1: true})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Select and SelectSet disagree: %v vs %v", a, b)
		}
	}
}

func TestSelectRangeOffsetsNodeIDs(t *testing.T) {
	scores := []float64{0.3, 0.9, 0.1}
	got := SelectRange(scores, 2, 100, map[int]bool{101: true})
	want := []Item{{100, 0.3}, {102, 0.1}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// Property: selecting per contiguous chunk and merging equals selecting
// over the whole array, for random chunkings and exclusion sets.
func TestMergeAgainstSelectProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		k := 1 + rng.Intn(25)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(8)) / 8 // duplicate-heavy
		}
		exclude := map[int]bool{}
		for e := 0; e < rng.Intn(4); e++ {
			exclude[rng.Intn(n)] = true
		}
		want := SelectSet(scores, k, exclude)
		// Random contiguous partition into 1..6 chunks.
		chunks := 1 + rng.Intn(6)
		bounds := []int{0}
		for c := 1; c < chunks; c++ {
			bounds = append(bounds, rng.Intn(n+1))
		}
		bounds = append(bounds, n)
		sort.Ints(bounds)
		lists := make([][]Item, 0, chunks)
		for c := 0; c+1 < len(bounds); c++ {
			lo, hi := bounds[c], bounds[c+1]
			lists = append(lists, SelectRange(scores[lo:hi], k, lo, exclude))
		}
		got := Merge(k, lists...)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEdgeCases(t *testing.T) {
	if Merge(0, []Item{{1, 0.5}}) != nil {
		t.Fatal("k <= 0 should return nil")
	}
	if got := Merge(3); len(got) != 0 {
		t.Fatalf("no lists: %v", got)
	}
	// Fewer total items than k returns them all, ordered.
	got := Merge(10, []Item{{5, 0.2}}, nil, []Item{{1, 0.9}})
	if len(got) != 2 || got[0] != (Item{1, 0.9}) || got[1] != (Item{5, 0.2}) {
		t.Fatalf("got %v", got)
	}
	// List order must not matter, including under ties.
	a := []Item{{2, 0.5}, {7, 0.3}}
	b := []Item{{4, 0.5}, {1, 0.3}}
	x, y := Merge(3, a, b), Merge(3, b, a)
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("merge depends on list order: %v vs %v", x, y)
		}
	}
	if x[0] != (Item{2, 0.5}) || x[1] != (Item{4, 0.5}) || x[2] != (Item{1, 0.3}) {
		t.Fatalf("tie ordering wrong: %v", x)
	}
}

func TestHeapInterfaceDirect(t *testing.T) {
	// Exercise the container/heap contract (Push/Pop) directly.
	h := &itemHeap{}
	heap.Init(h)
	for _, it := range []Item{{0, 0.5}, {1, 0.1}, {2, 0.9}} {
		heap.Push(h, it)
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	got := heap.Pop(h).(Item)
	if got.Node != 1 { // min-heap pops the smallest score
		t.Fatalf("popped %+v, want node 1", got)
	}
}

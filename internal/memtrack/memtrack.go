// Package memtrack provides deterministic, analytic memory accounting for
// the reproduction's experiments. Go's garbage collector makes process RSS
// a noisy proxy for an algorithm's working set, and the paper's memory
// figures (Figures 6–9) compare *algorithmic* footprints. Each algorithm
// therefore reports the bytes of every structure it allocates and releases
// to a Tracker, which maintains current and peak usage per label prefix.
//
// All methods are safe on a nil *Tracker (no-ops), so algorithms take an
// optional tracker without nil checks at every call site.
package memtrack

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Tracker accumulates analytic allocation counts. It is safe for
// concurrent use.
type Tracker struct {
	mu      sync.Mutex
	current int64
	peak    int64
	byLabel map[string]int64
}

// New returns an empty tracker.
func New() *Tracker {
	return &Tracker{byLabel: make(map[string]int64)}
}

// Alloc records bytes allocated under label (e.g. "precompute/Z").
// Negative sizes are rejected with a panic: they indicate a caller bug.
func (t *Tracker) Alloc(label string, bytes int64) {
	if t == nil {
		return
	}
	if bytes < 0 {
		panic(fmt.Sprintf("memtrack: Alloc(%q, %d): negative size", label, bytes))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.current += bytes
	if t.current > t.peak {
		t.peak = t.current
	}
	t.byLabel[label] += bytes
}

// Free records bytes released under label. Freeing more than was allocated
// under a label is tolerated (the label floor is unchecked) but total
// current usage is floored at zero.
func (t *Tracker) Free(label string, bytes int64) {
	if t == nil {
		return
	}
	if bytes < 0 {
		panic(fmt.Sprintf("memtrack: Free(%q, %d): negative size", label, bytes))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.current -= bytes
	if t.current < 0 {
		t.current = 0
	}
	t.byLabel[label] -= bytes
}

// Current returns the live analytic byte count.
func (t *Tracker) Current() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.current
}

// Peak returns the high-water mark.
func (t *Tracker) Peak() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peak
}

// PeakByPrefix returns the net bytes recorded under labels sharing the
// given prefix (e.g. "precompute/" vs "query/"). Net = allocs - frees, so
// for phases that free scratch structures this reports what the phase left
// resident; combine with Peak for high-water analysis.
func (t *Tracker) PeakByPrefix(prefix string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum int64
	for label, b := range t.byLabel {
		if strings.HasPrefix(label, prefix) {
			sum += b
		}
	}
	return sum
}

// Labels returns the tracked labels in sorted order with their net bytes.
func (t *Tracker) Labels() []LabelBytes {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]LabelBytes, 0, len(t.byLabel))
	for label, b := range t.byLabel {
		out = append(out, LabelBytes{label, b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// LabelBytes pairs a label with its net byte count.
type LabelBytes struct {
	Label string
	Bytes int64
}

// Human renders a byte count with binary-prefix units ("3.2 MiB").
func Human(bytes int64) string {
	const unit = 1024
	if bytes < unit {
		return fmt.Sprintf("%d B", bytes)
	}
	div, exp := int64(unit), 0
	for n := bytes / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(bytes)/float64(div), "KMGTPE"[exp])
}

// RuntimeHeap returns the Go runtime's current heap-allocated bytes after
// a GC pass — a coarse cross-check of the analytic numbers used only in
// integration tests and diagnostics.
func RuntimeHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

package memtrack

import (
	"strings"
	"sync"
	"testing"
)

func TestAllocFreePeak(t *testing.T) {
	tr := New()
	tr.Alloc("a/x", 100)
	tr.Alloc("b/y", 50)
	if tr.Current() != 150 || tr.Peak() != 150 {
		t.Fatalf("current=%d peak=%d", tr.Current(), tr.Peak())
	}
	tr.Free("a/x", 100)
	if tr.Current() != 50 {
		t.Fatalf("current=%d, want 50", tr.Current())
	}
	if tr.Peak() != 150 {
		t.Fatalf("peak=%d, want 150 (high-water mark)", tr.Peak())
	}
	tr.Alloc("a/z", 10)
	if tr.Peak() != 150 {
		t.Fatalf("peak moved to %d", tr.Peak())
	}
}

func TestCurrentFloorsAtZero(t *testing.T) {
	tr := New()
	tr.Alloc("x", 5)
	tr.Free("x", 50)
	if tr.Current() != 0 {
		t.Fatalf("current=%d, want 0", tr.Current())
	}
}

func TestPeakByPrefix(t *testing.T) {
	tr := New()
	tr.Alloc("precompute/Q", 100)
	tr.Alloc("precompute/Z", 40)
	tr.Free("precompute/Q", 100)
	tr.Alloc("query/S", 30)
	if got := tr.PeakByPrefix("precompute/"); got != 40 {
		t.Fatalf("precompute net = %d, want 40", got)
	}
	if got := tr.PeakByPrefix("query/"); got != 30 {
		t.Fatalf("query net = %d, want 30", got)
	}
}

func TestLabelsSorted(t *testing.T) {
	tr := New()
	tr.Alloc("z", 1)
	tr.Alloc("a", 2)
	labels := tr.Labels()
	if len(labels) != 2 || labels[0].Label != "a" || labels[1].Label != "z" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestNilTrackerIsNoop(t *testing.T) {
	var tr *Tracker
	tr.Alloc("x", 10) // must not panic
	tr.Free("x", 10)
	if tr.Current() != 0 || tr.Peak() != 0 || tr.PeakByPrefix("x") != 0 || tr.Labels() != nil {
		t.Fatal("nil tracker returned nonzero state")
	}
}

func TestNegativeAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Alloc did not panic")
		}
	}()
	New().Alloc("x", -1)
}

func TestConcurrentUse(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Alloc("c", 1)
			}
		}()
	}
	wg.Wait()
	if tr.Current() != 8000 {
		t.Fatalf("current=%d, want 8000", tr.Current())
	}
}

func TestHuman(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.0 KiB"},
		{3 << 20, "3.0 MiB"},
		{5 << 30, "5.0 GiB"},
	}
	for _, c := range cases {
		if got := Human(c.in); got != c.want {
			t.Fatalf("Human(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestHumanFraction(t *testing.T) {
	if got := Human(1536); !strings.HasSuffix(got, "KiB") {
		t.Fatalf("Human(1536) = %q", got)
	}
}

func TestRuntimeHeapNonZero(t *testing.T) {
	if RuntimeHeap() == 0 {
		t.Fatal("RuntimeHeap returned 0")
	}
}

// Package ingest is the durable streaming-edge path: a segmented,
// CRC-framed write-ahead log of edge insertions (wal.go), and the
// service (service.go) that applies logged edges to the serving factors'
// dynamic state while tracking a provable drift bound and triggering
// full rebuilds when the bound exceeds its budget.
//
// Durability contract: Append acknowledges only after the records are
// framed, written, and fsynced (group commit — concurrent appenders
// share one fsync). A crash between write and sync may or may not keep
// the tail records; a crash mid-write leaves a torn final frame. Replay
// therefore promises at-least-once delivery of every acknowledged
// record, in sequence order, and truncates an unacknowledged torn tail
// instead of failing. Sequence numbers are assigned by the WAL,
// strictly increasing (gaps allowed — a failed batch burns its seqs),
// so consumers deduplicate replay against the last sequence their
// downstream state has already absorbed.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"csrplus/internal/fault"
)

// ErrCorrupt marks a WAL whose non-tail contents fail validation: a bad
// CRC or malformed frame with more data behind it, a non-monotone
// sequence, or a damaged segment that is not the last. Unlike a torn
// tail (silently truncated — the crash case the format is designed
// for), ErrCorrupt is fatal: acknowledged history cannot be trusted.
var ErrCorrupt = errors.New("ingest: corrupt WAL")

// ErrClosed is returned by operations on a closed (or failed) WAL.
var ErrClosed = errors.New("ingest: WAL closed")

const (
	segPrefix = "wal-"
	segSuffix = ".seg"

	// Frame layout: [u32 payload length][u32 CRC32-IEEE of payload]
	// [payload]. Every payload today is exactly recordSize bytes; the
	// length field exists so the format can grow record kinds without
	// breaking old readers' framing.
	frameHeader = 8
	recordSize  = 24 // u64 seq, u32 src, u32 dst, u64 float64 bits weight

	// defaultSegmentBytes rotates segments at 4 MiB (~130k records) —
	// large enough that rotation fsyncs are rare, small enough that
	// PruneWAL and inspection work in segment-sized units.
	defaultSegmentBytes = 4 << 20
)

// Record is one logged edge insertion.
type Record struct {
	Seq      uint64
	Src, Dst uint32
	Weight   float64
}

// WALOptions tunes Open.
type WALOptions struct {
	// SegmentBytes is the rotation threshold. 0 means 4 MiB.
	SegmentBytes int64
}

// WAL is a segmented write-ahead log of edge records. Append is safe
// for concurrent use; appenders group-commit on a shared fsync.
type WAL struct {
	dir      string
	segBytes int64

	mu     sync.Mutex // serializes writes, rotation, and seq assignment
	f      *os.File
	fw     io.Writer // f behind the SiteWALAppend fault wrapper
	size   int64     // bytes in the active segment (committed frames only)
	seq    uint64    // last assigned sequence number
	buf    []byte    // frame scratch
	failed error     // sticky: set when the segment is in an unknown state

	syncMu  sync.Mutex    // group commit: one fsync at a time
	written atomic.Uint64 // highest seq written to the OS
	durable atomic.Uint64 // highest seq known fsynced

	torn int64 // bytes truncated from the tail at Open, for inspection
}

// SegmentInfo describes one WAL segment, as replayed or inspected.
type SegmentInfo struct {
	Name     string `json:"name"`
	FirstSeq uint64 `json:"first_seq"` // 0 when the segment holds no records
	LastSeq  uint64 `json:"last_seq"`
	Records  int    `json:"records"`
	Bytes    int64  `json:"bytes"`             // valid frame bytes
	TornTail int64  `json:"torn_tail"`         // trailing bytes past the last valid frame
	Corrupt  string `json:"corrupt,omitempty"` // non-empty: why the segment is fatal
}

// Open replays every segment in dir (creating dir if needed), invoking
// fn for each valid record in sequence order, truncates the torn tail
// of the final segment if one exists, and returns a WAL positioned for
// appending. fn may be nil. An error from fn aborts the open.
//
// A damaged frame in any segment but the last — or a valid frame whose
// sequence does not increase — returns ErrCorrupt (wrapped): the log's
// acknowledged history is not intact and no write position is safe.
func Open(dir string, opts WALOptions, fn func(Record) error) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: open WAL: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, segBytes: opts.SegmentBytes}
	if w.segBytes <= 0 {
		w.segBytes = defaultSegmentBytes
	}
	var lastSeq uint64
	for i, name := range segs {
		last := i == len(segs)-1
		info, err := replaySegment(filepath.Join(dir, name), lastSeq, fn)
		if err != nil {
			return nil, err
		}
		if info.Corrupt != "" {
			if !last {
				return nil, fmt.Errorf("%w: segment %s: %s (not the final segment)", ErrCorrupt, name, info.Corrupt)
			}
			// A damaged tail on the final segment is the crash the
			// format promises to absorb: drop the unacknowledged bytes.
			if err := truncateSegment(filepath.Join(dir, name), info.Bytes); err != nil {
				return nil, err
			}
			w.torn = info.TornTail
		}
		if info.Records > 0 {
			lastSeq = info.LastSeq
		}
	}
	w.seq = lastSeq
	w.written.Store(lastSeq)
	w.durable.Store(lastSeq)

	// Append into the final segment if there is one and it has room;
	// otherwise start a fresh segment for the next sequence.
	if len(segs) > 0 {
		path := filepath.Join(dir, segs[len(segs)-1])
		st, err := os.Stat(path)
		if err != nil {
			return nil, fmt.Errorf("ingest: open WAL: %w", err)
		}
		if st.Size() < w.segBytes {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("ingest: open WAL: %w", err)
			}
			w.f, w.fw, w.size = f, fault.Writer(fault.SiteWALAppend, f), st.Size()
			return w, nil
		}
	}
	if err := w.openSegmentLocked(lastSeq + 1); err != nil {
		return nil, err
	}
	return w, nil
}

// TornBytes reports how many unacknowledged tail bytes Open discarded.
func (w *WAL) TornBytes() int64 { return w.torn }

// LastSeq returns the highest assigned sequence number.
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// DurableSeq returns the highest sequence known to be fsynced.
func (w *WAL) DurableSeq() uint64 { return w.durable.Load() }

// Append assigns sequence numbers to records (Seq fields are ignored on
// input), writes them as one framed batch, and returns the last
// assigned sequence once the batch is durable. On error the sequences
// are burned either way, and the returned seq disambiguates what the
// log holds: 0 means the batch never committed (a torn write was cut
// back to the previous frame boundary, so replay cannot surface it),
// while a non-zero seq means the batch reached the log but durability
// is unconfirmed — a restart's replay may or may not include it, so
// callers tracking applied state must treat it as possibly present.
func (w *WAL) Append(records []Record) (uint64, error) {
	if len(records) == 0 {
		return w.DurableSeq(), nil
	}
	w.mu.Lock()
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		return 0, err
	}
	if w.size >= w.segBytes {
		if err := w.rotateLocked(); err != nil {
			w.mu.Unlock()
			return 0, err
		}
	}
	w.buf = w.buf[:0]
	for i := range records {
		w.seq++
		records[i].Seq = w.seq
		w.buf = appendFrame(w.buf, records[i])
	}
	last := w.seq
	prevSize := w.size
	if _, err := w.fw.Write(w.buf); err != nil {
		// The segment now ends in an unknown partial frame. Cut it back
		// to the last committed frame so later appends don't bury torn
		// bytes mid-file, and start a fresh segment (the fault-wrapped
		// writer may be sticky-torn). If the cut itself fails the WAL is
		// done: only a restart's replay can find a safe position again.
		werr := fmt.Errorf("ingest: WAL append: %w", err)
		if terr := w.recoverTornLocked(prevSize); terr != nil {
			w.failed = fmt.Errorf("%w (and recovering the segment failed: %v)", werr, terr)
		}
		w.mu.Unlock()
		return 0, werr
	}
	w.size += int64(len(w.buf))
	w.written.Store(last)
	w.mu.Unlock()

	// Group commit: serialize fsyncs; whoever gets the lock first syncs
	// everything written so far, and later arrivals find their records
	// already durable.
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.durable.Load() >= last {
		return last, nil
	}
	w.mu.Lock()
	f, written, failed := w.f, w.written.Load(), w.failed
	w.mu.Unlock()
	if failed != nil {
		// Our frames were fully written before the WAL failed; they may
		// survive a crash even though they were never fsynced.
		return last, failed
	}
	if err := syncFile(f); err != nil {
		return last, fmt.Errorf("ingest: WAL sync: %w", err)
	}
	w.durable.Store(written)
	return last, nil
}

// recoverTornLocked truncates the active segment back to size (the end
// of the last committed frame) and switches to a fresh segment.
func (w *WAL) recoverTornLocked(size int64) error {
	if err := w.f.Truncate(size); err != nil {
		return err
	}
	if err := syncFile(w.f); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.f = nil
	return w.openSegmentLocked(w.seq + 1)
}

// rotateLocked seals the active segment (fsync, so replay's "only the
// last segment may be torn" invariant holds) and opens the next one,
// named by the first sequence it will contain.
func (w *WAL) rotateLocked() error {
	if err := syncFile(w.f); err != nil {
		return fmt.Errorf("ingest: WAL rotate: %w", err)
	}
	w.durable.Store(w.written.Load())
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("ingest: WAL rotate: %w", err)
	}
	w.f = nil
	return w.openSegmentLocked(w.seq + 1)
}

func (w *WAL) openSegmentLocked(firstSeq uint64) error {
	path := filepath.Join(w.dir, segmentName(firstSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: WAL segment: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return fmt.Errorf("ingest: WAL segment: %w", err)
	}
	w.f, w.fw, w.size = f, fault.Writer(fault.SiteWALAppend, f), 0
	return nil
}

// Close syncs and closes the active segment. Appends after Close fail
// with ErrClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := syncFile(w.f)
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		w.durable.Store(w.written.Load())
	}
	w.f = nil
	w.failed = ErrClosed
	return err
}

// Info describes a whole WAL directory, as Inspect reports it.
type Info struct {
	Dir      string        `json:"dir"`
	Segments []SegmentInfo `json:"segments"`
	FirstSeq uint64        `json:"first_seq"`
	LastSeq  uint64        `json:"last_seq"`
	Records  int           `json:"records"`
	TornTail int64         `json:"torn_tail"`
	// Corrupt is non-empty when the log's acknowledged history is
	// damaged (a bad segment that is not the final one, or a sequence
	// regression) — the condition Open fails on.
	Corrupt string `json:"corrupt,omitempty"`
}

// Inspect reads a WAL directory without modifying it: segment list,
// sequence range, per-segment CRC validation, and torn-tail report.
// Damage is reported in the returned Info, not as an error; the error
// covers only I/O problems reading the directory.
func Inspect(dir string) (Info, error) {
	info := Info{Dir: dir}
	segs, err := listSegments(dir)
	if err != nil {
		return info, err
	}
	var lastSeq uint64
	for i, name := range segs {
		si, err := replaySegment(filepath.Join(dir, name), lastSeq, nil)
		if err != nil && !errors.Is(err, ErrCorrupt) {
			return info, err
		}
		info.Segments = append(info.Segments, si)
		if errors.Is(err, ErrCorrupt) && info.Corrupt == "" {
			info.Corrupt = fmt.Sprintf("segment %s: %s", name, si.Corrupt)
		}
		if si.Records > 0 {
			if info.FirstSeq == 0 {
				info.FirstSeq = si.FirstSeq
			}
			info.LastSeq = si.LastSeq
			lastSeq = si.LastSeq
		}
		info.Records += si.Records
		if si.Corrupt != "" {
			if i == len(segs)-1 {
				info.TornTail = si.TornTail
			} else if info.Corrupt == "" {
				info.Corrupt = fmt.Sprintf("segment %s: %s (not the final segment)", name, si.Corrupt)
			}
		}
	}
	return info, nil
}

// replaySegment scans one segment, calling fn per valid record. Damage
// is reported in the SegmentInfo (Corrupt + TornTail) rather than as an
// error, because whether it is fatal depends on the segment's position;
// the returned error covers I/O and fn failures only. prevSeq is the
// last sequence of the preceding segment, for monotonicity checking.
func replaySegment(path string, prevSeq uint64, fn func(Record) error) (SegmentInfo, error) {
	info := SegmentInfo{Name: filepath.Base(path)}
	f, err := os.Open(path)
	if err != nil {
		return info, fmt.Errorf("ingest: replay %s: %w", info.Name, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return info, fmt.Errorf("ingest: replay %s: %w", info.Name, err)
	}
	total := st.Size()
	r := fault.Reader(fault.SiteWALReplay, f)

	var hdr [frameHeader]byte
	payload := make([]byte, recordSize)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return info, nil // clean end
			}
			if err == io.ErrUnexpectedEOF {
				info.Corrupt = "truncated frame header"
				info.TornTail = total - info.Bytes
				return info, nil
			}
			return info, fmt.Errorf("ingest: replay %s: %w", info.Name, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if length != recordSize {
			info.Corrupt = fmt.Sprintf("frame at offset %d has length %d, want %d", info.Bytes, length, recordSize)
			info.TornTail = total - info.Bytes
			return info, nil
		}
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				info.Corrupt = "truncated frame payload"
				info.TornTail = total - info.Bytes
				return info, nil
			}
			return info, fmt.Errorf("ingest: replay %s: %w", info.Name, err)
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			info.Corrupt = fmt.Sprintf("CRC mismatch at offset %d", info.Bytes)
			info.TornTail = total - info.Bytes
			return info, nil
		}
		rec := decodeRecord(payload)
		if rec.Seq <= prevSeq {
			// A frame with a valid CRC but a non-increasing sequence is
			// not a torn write — the bytes are intact and wrong. Report
			// it as corruption regardless of position.
			info.Corrupt = fmt.Sprintf("sequence regressed: %d after %d at offset %d", rec.Seq, prevSeq, info.Bytes)
			info.TornTail = 0
			return info, fmt.Errorf("%w: segment %s: %s", ErrCorrupt, info.Name, info.Corrupt)
		}
		prevSeq = rec.Seq
		if info.Records == 0 {
			info.FirstSeq = rec.Seq
		}
		info.LastSeq = rec.Seq
		info.Records++
		info.Bytes += frameHeader + recordSize
		if fn != nil {
			if err := fn(rec); err != nil {
				return info, err
			}
		}
	}
}

func truncateSegment(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: truncate torn tail: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("ingest: truncate torn tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("ingest: truncate torn tail: %w", err)
	}
	return nil
}

func appendFrame(buf []byte, rec Record) []byte {
	var payload [recordSize]byte
	binary.LittleEndian.PutUint64(payload[0:8], rec.Seq)
	binary.LittleEndian.PutUint32(payload[8:12], rec.Src)
	binary.LittleEndian.PutUint32(payload[12:16], rec.Dst)
	binary.LittleEndian.PutUint64(payload[16:24], math.Float64bits(rec.Weight))
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], recordSize)
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload[:]))
	buf = append(buf, hdr[:]...)
	return append(buf, payload[:]...)
}

func decodeRecord(payload []byte) Record {
	return Record{
		Seq:    binary.LittleEndian.Uint64(payload[0:8]),
		Src:    binary.LittleEndian.Uint32(payload[8:12]),
		Dst:    binary.LittleEndian.Uint32(payload[12:16]),
		Weight: math.Float64frombits(binary.LittleEndian.Uint64(payload[16:24])),
	}
}

// segmentName names a segment by the first sequence it contains, so the
// lexicographic directory order is the replay order.
func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix)
}

func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("ingest: list WAL: %w", err)
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		if _, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 16, 64); err != nil {
			continue
		}
		segs = append(segs, name)
	}
	sort.Strings(segs)
	return segs, nil
}

// syncFile fsyncs f through the SiteWALSync fault gate.
func syncFile(f *os.File) error {
	if err := fault.Hit(fault.SiteWALSync); err != nil {
		return err
	}
	return f.Sync()
}

// syncDir fsyncs a directory so a just-created segment's dirent is
// durable (best-effort on filesystems that reject directory fsync).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

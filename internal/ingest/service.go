package ingest

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"csrplus/internal/core"
	"csrplus/internal/graph"
)

// ErrBadEdge wraps every edge-validation failure of Append: out-of-range
// endpoints, non-positive or non-finite weights. Bad edges are rejected
// BEFORE they reach the log — the WAL only ever holds edges that applied
// cleanly once, which is what makes replay unconditional.
var ErrBadEdge = errors.New("ingest: bad edge")

// ErrNotReady is returned by Append before Recover has replayed the log:
// accepting writes with the tail unreplayed could hand out sequence
// numbers below already-logged ones.
var ErrNotReady = errors.New("ingest: recovery not finished")

// Edge is one streamed edge insertion. Weight is ignored (forced to 1)
// on unweighted graphs; on weighted graphs it must be positive and
// finite, and duplicate edges accumulate weight.
type Edge struct {
	Src    int     `json:"src"`
	Dst    int     `json:"dst"`
	Weight float64 `json:"weight,omitempty"`
}

// Config configures a Service.
type Config struct {
	// Dir is the WAL directory (created if missing).
	Dir string
	// WAL tunes the log segmentation; zero values use defaults.
	WAL WALOptions
	// DriftBudget is the entrywise drift bound past which the serving
	// factors are considered stale enough to rebuild: answers are marked
	// degraded and the rebuild trigger fires. <= 0 disables both (drift
	// still accrues and is reported honestly).
	DriftBudget float64
}

// Stats is the service's observable state for /stats and csrstat.
type Stats struct {
	Ready      bool    `json:"ready"`
	LastSeq    uint64  `json:"last_seq"`
	DurableSeq uint64  `json:"durable_seq"`
	LiveEdges  int64   `json:"live_edges"`
	Applied    int64   `json:"edges_since_factors"`
	Drift      float64 `json:"drift_bound"`
	Base       float64 `json:"drift_baseline"`
	Budget     float64 `json:"drift_budget,omitempty"`
	Exceeded   bool    `json:"budget_exceeded"`
	Rebuilding bool    `json:"rebuilding"`
	TornBytes  int64   `json:"torn_bytes,omitempty"`
}

// Service is the durable streaming-ingestion pipeline: validate →
// WAL-append (ack only after fsync) → apply to the incremental dynamic
// state → accrue drift → trigger a rebuild when the budget is spent.
//
// Lifecycle: NewService (cold, rejects appends) → Recover (opens the
// WAL, replays it onto the boot factors' graph, turns ready) → Append /
// Cut / rebuilds → Close. The recovery split exists so a server can
// expose /readyz as not-ready while a long tail replays.
type Service struct {
	cfg    Config
	walSeq uint64 // WAL sequence the boot factors already cover

	mu  sync.Mutex // guards dyn, base, pendingBase, and WAL-order of applies
	dyn *core.Dynamic
	wal *WAL
	// base is the serving generation's drift baseline: the total drift
	// at the cut its factors were built from (0 for the boot factors).
	// pendingBase stages the next cut's baseline until its rebuild
	// commits — a failed rebuild must leave base untouched.
	base, pendingBase float64

	driftBits   atomic.Uint64 // float64 bits of dyn's total drift
	lastApplied atomic.Uint64
	ready       atomic.Bool
	rebuilding  atomic.Bool
	trigger     atomic.Pointer[func()]
}

// NewService builds the cold service over the boot graph and the factors
// serving it. The graph must be the same static base the factors'
// lineage started from — the WAL replay in Recover layers every
// streamed edge back on top of it. The index must carry exact f64
// factors; quantized tiers cannot be incrementally maintained.
func NewService(g *graph.Graph, ix *core.Index, cfg Config) (*Service, error) {
	dyn, err := core.NewDynamic(g, ix)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	return &Service{cfg: cfg, walSeq: ix.WalSeq(), dyn: dyn}, nil
}

// Recover opens the WAL and replays it in sequence order onto the
// dynamic state: records the boot factors already cover (seq at or
// below the snapshot's recorded WAL sequence) rebuild graph structure
// without charging drift; the tail above it is charged like live
// traffic. On return the service is ready and appendable. Replay is
// idempotent against at-least-once delivery because unweighted
// duplicate edges are no-ops and the graph materialisation is
// order-canonical.
func (s *Service) Recover() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		return errors.New("ingest: Recover called twice")
	}
	wal, err := Open(s.cfg.Dir, s.cfg.WAL, func(rec Record) error {
		src, dst := int(rec.Src), int(rec.Dst)
		if _, _, err := s.dyn.ApplyEdge(src, dst, rec.Weight, rec.Seq > s.walSeq); err != nil {
			return fmt.Errorf("replaying seq %d (%d -> %d): %w", rec.Seq, src, dst, err)
		}
		s.lastApplied.Store(rec.Seq)
		return nil
	})
	if err != nil {
		return err
	}
	s.wal = wal
	s.driftBits.Store(math.Float64bits(s.dyn.Drift()))
	s.ready.Store(true)
	return nil
}

// Ready reports whether Recover has completed: the serving process may
// advertise readiness only once the WAL tail is inside the graph.
func (s *Service) Ready() bool { return s.ready.Load() }

// SetRebuildTrigger installs the function fired (once per budget-exceed
// episode, on its own goroutine) when accrued drift passes the budget.
// The function must end by calling RebuildDone.
func (s *Service) SetRebuildTrigger(fn func()) { s.trigger.Store(&fn) }

// Append validates the batch, logs it durably (the call returns only
// after fsync), applies it to the dynamic state and returns the last
// assigned sequence plus the serving generation's total drift bound.
// On a validation error nothing is logged or applied. Batches are
// atomic in the log but independent as edges: replay applies each edge
// on its own.
func (s *Service) Append(edges []Edge) (seq uint64, drift float64, err error) {
	if !s.ready.Load() {
		return 0, 0, ErrNotReady
	}
	if len(edges) == 0 {
		return s.lastApplied.Load(), s.DriftBound(), nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := make([]Record, len(edges))
	for i, e := range edges {
		if e.Src < 0 || e.Src >= s.dyn.N() || e.Dst < 0 || e.Dst >= s.dyn.N() {
			return 0, 0, fmt.Errorf("%w: (%d, %d) outside [0, %d)", ErrBadEdge, e.Src, e.Dst, s.dyn.N())
		}
		w := e.Weight
		if s.dyn.Weighted() {
			if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
				return 0, 0, fmt.Errorf("%w: (%d, %d) weight %v must be positive and finite", ErrBadEdge, e.Src, e.Dst, w)
			}
		} else {
			w = 1
		}
		recs[i] = Record{Src: uint32(e.Src), Dst: uint32(e.Dst), Weight: w}
	}
	last, werr := s.wal.Append(recs)
	if werr != nil && last == 0 {
		// The batch never committed (a torn write was cut back to the
		// previous frame boundary): state and log still agree, the
		// caller just retries.
		return 0, 0, werr
	}
	// Apply. On werr == nil the batch is durable; on werr != nil with
	// last > 0 it reached the log but durability is unconfirmed, and the
	// state must cover everything a restart's replay might surface — so
	// apply anyway, then fail the call (the client retries; replayed and
	// retried duplicates are no-ops). Validation passed, so the only
	// conceivable apply error is a bug — surface it, the log and state
	// now disagree.
	for _, r := range recs {
		if _, _, err := s.dyn.ApplyEdge(int(r.Src), int(r.Dst), r.Weight, true); err != nil {
			return 0, 0, fmt.Errorf("ingest: logged edge failed to apply: %w", err)
		}
	}
	s.lastApplied.Store(last)
	total := s.dyn.Drift()
	s.driftBits.Store(math.Float64bits(total))
	gen := total - s.base
	if werr != nil {
		return 0, 0, fmt.Errorf("ingest: batch logged but durability unconfirmed, retry: %w", werr)
	}
	if s.cfg.DriftBudget > 0 && gen > s.cfg.DriftBudget {
		s.fireRebuild()
	}
	return last, gen, nil
}

// fireRebuild starts the installed rebuild trigger unless one is
// already in flight. Callers hold s.mu or run at boot before traffic.
func (s *Service) fireRebuild() {
	fn := s.trigger.Load()
	if fn == nil || *fn == nil {
		return
	}
	if s.rebuilding.CompareAndSwap(false, true) {
		go (*fn)()
	}
}

// TriggerIfExceeded fires the rebuild trigger when the replayed boot
// tail alone already spent the budget — the post-Recover check a server
// runs once its reload manager exists.
func (s *Service) TriggerIfExceeded() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.DriftBudget > 0 && math.Float64frombits(s.driftBits.Load())-s.base > s.cfg.DriftBudget {
		s.fireRebuild()
	}
}

// Cut materialises the live graph for a rebuild and returns it with the
// last applied sequence and the total drift at the cut. The returned
// drift is the new generation's baseline: pass it to DriftFrom for the
// candidate's closure. The cut baseline is staged; it becomes the
// serving baseline only when RebuildDone(true) commits it.
func (s *Service) Cut() (*graph.Graph, uint64, float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, err := s.dyn.MaterializeGraph()
	if err != nil {
		return nil, 0, 0, err
	}
	d := s.dyn.Drift()
	s.pendingBase = d
	return g, s.lastApplied.Load(), d, nil
}

// RebuildDone ends a rebuild episode. committed=true promotes the last
// Cut's drift baseline — the new generation's factors absorb everything
// up to that cut; committed=false leaves the old baseline (and the old
// generation's honest drift accounting) untouched so the next append
// past budget re-fires the trigger.
func (s *Service) RebuildDone(committed bool) {
	s.mu.Lock()
	if committed {
		s.base = s.pendingBase
	}
	s.mu.Unlock()
	s.rebuilding.Store(false)
}

// DriftBound returns the serving generation's current drift bound.
func (s *Service) DriftBound() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return math.Float64frombits(s.driftBits.Load()) - s.base
}

// DriftFrom returns a closure reporting the drift accrued past the
// baseline d0 and whether it exceeds the budget — the serve.DriftFunc
// for a generation whose factors were cut at total drift d0. Cheap and
// concurrency-safe: called on every response.
func (s *Service) DriftFrom(d0 float64) func() (float64, bool) {
	budget := s.cfg.DriftBudget
	return func() (float64, bool) {
		d := math.Float64frombits(s.driftBits.Load()) - d0
		if d < 0 {
			d = 0
		}
		return d, budget > 0 && d > budget
	}
}

// Stats snapshots the observable state.
func (s *Service) Stats() Stats {
	st := Stats{
		Ready:      s.ready.Load(),
		LastSeq:    s.lastApplied.Load(),
		Budget:     s.cfg.DriftBudget,
		Rebuilding: s.rebuilding.Load(),
	}
	s.mu.Lock()
	st.Base = s.base
	st.Drift = math.Float64frombits(s.driftBits.Load()) - s.base
	if s.dyn != nil {
		st.LiveEdges = s.dyn.M()
		st.Applied = s.dyn.Edges()
	}
	if s.wal != nil {
		st.DurableSeq = s.wal.DurableSeq()
		st.TornBytes = s.wal.TornBytes()
	}
	s.mu.Unlock()
	st.Exceeded = st.Budget > 0 && st.Drift > st.Budget
	return st
}

// Close closes the WAL; further appends fail with ErrClosed.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	return s.wal.Close()
}

package ingest

import (
	"bytes"
	"fmt"
	"testing"

	"csrplus/internal/core"
	"csrplus/internal/graph"
	"csrplus/internal/sparse"
)

// TestBootRecoveryOrderingBitwise is the recovery-ordering contract:
// snapshot factors + WAL-tail replay must reconstruct the exact live
// graph, so a rebuild precomputed over the recovered cut is
// bitwise-identical to a clean build over the union of base + every
// logged edge — shard by shard, at K ∈ {1, 4}.
func TestBootRecoveryOrderingBitwise(t *testing.T) {
	const rank = 8
	g0, err := graph.ErdosRenyi(80, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	ix0, err := core.Precompute(g0, core.Options{Rank: rank})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	svc := newReady(t, g0, ix0, Config{Dir: dir})
	edges := freshEdges(t, g0, 6)
	if _, _, err := svc.Append(edges[:4]); err != nil {
		t.Fatal(err)
	}
	// Mid-stream rebuild: factors over the cut, stamped with its seq —
	// the state a published snapshot would carry.
	gCut, cutSeq, _, err := svc.Cut()
	if err != nil {
		t.Fatal(err)
	}
	if cutSeq != 4 {
		t.Fatalf("cut seq %d, want 4", cutSeq)
	}
	ixCut, err := core.Precompute(gCut, core.Options{Rank: rank})
	if err != nil {
		t.Fatal(err)
	}
	ixCut.SetWalSeq(cutSeq)
	// The tail lands after the snapshot.
	if _, _, err := svc.Append(edges[4:]); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	// Boot recovery: static base graph + snapshot factors + full WAL
	// replay (the records the snapshot covers rebuild structure only).
	svc2 := newReady(t, g0, ixCut, Config{Dir: dir})
	gRecovered, lastSeq, _, err := svc2.Cut()
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq != 6 {
		t.Fatalf("recovered seq %d, want 6", lastSeq)
	}
	ixRecovered, err := core.Precompute(gRecovered, core.Options{Rank: rank})
	if err != nil {
		t.Fatal(err)
	}

	// Clean build over the union of base edges and every logged edge.
	adj := g0.Adj()
	coo := sparse.NewCOO(g0.N(), g0.N())
	for u := 0; u < g0.N(); u++ {
		for p := adj.RowPtr[u]; p < adj.RowPtr[u+1]; p++ {
			if err := coo.Add(u, int(adj.ColIdx[p]), 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range edges {
		if err := coo.Add(e.Src, e.Dst, 1); err != nil {
			t.Fatal(err)
		}
	}
	ixClean, err := core.Precompute(graph.New(coo), core.Options{Rank: rank})
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{1, 4} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			n := g0.N()
			for s := 0; s < k; s++ {
				lo, hi := s*n/k, (s+1)*n/k
				var a, b bytes.Buffer
				shA, err := ixRecovered.Shard(lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				shB, err := ixClean.Shard(lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := shA.WriteTo(&a); err != nil {
					t.Fatal(err)
				}
				if _, err := shB.WriteTo(&b); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a.Bytes(), b.Bytes()) {
					t.Fatalf("shard %d [%d, %d) of recovered build differs bitwise from clean build", s, lo, hi)
				}
			}
		})
	}
}

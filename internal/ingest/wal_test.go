package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func collect(t *testing.T, dir string, opts WALOptions) ([]Record, *WAL) {
	t.Helper()
	var recs []Record
	w, err := Open(dir, opts, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return recs, w
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// A tiny rotation threshold forces several segments.
	opts := WALOptions{SegmentBytes: 4 * (frameHeader + recordSize)}
	_, w := collect(t, dir, opts)
	var want []Record
	for i := 0; i < 25; i++ {
		batch := []Record{{Src: uint32(i), Dst: uint32(i + 1), Weight: float64(i) + 0.5}}
		last, err := w.Append(batch)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if last != uint64(i+1) {
			t.Fatalf("append %d returned seq %d, want %d", i, last, i+1)
		}
		want = append(want, batch[0])
	}
	if w.DurableSeq() != 25 {
		t.Fatalf("durable seq %d, want 25", w.DurableSeq())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]Record{{}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}

	got, w2 := collect(t, dir, opts)
	defer w2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || r.Src != want[i].Src || r.Dst != want[i].Dst || r.Weight != want[i].Weight {
			t.Fatalf("record %d = %+v, want seq=%d %+v", i, r, i+1, want[i])
		}
	}
	if w2.TornBytes() != 0 {
		t.Fatalf("clean log reports torn bytes: %d", w2.TornBytes())
	}
	// The log stays appendable across the reopen, continuing the sequence.
	last, err := w2.Append([]Record{{Src: 9, Dst: 9}})
	if err != nil || last != 26 {
		t.Fatalf("append after reopen: seq %d err %v, want 26", last, err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("rotation never happened: %d segments", len(segs))
	}
}

func TestWALTornTailTruncatedNotFatal(t *testing.T) {
	for _, tear := range []int{1, frameHeader - 1, frameHeader + 3, frameHeader + recordSize - 1} {
		t.Run(fmt.Sprintf("tear=%d", tear), func(t *testing.T) {
			dir := t.TempDir()
			_, w := collect(t, dir, WALOptions{})
			for i := 0; i < 5; i++ {
				if _, err := w.Append([]Record{{Src: uint32(i), Dst: 1}}); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			// Simulate a crash mid-append: a partial frame at the tail.
			segs, _ := listSegments(dir)
			path := filepath.Join(dir, segs[len(segs)-1])
			frame := appendFrame(nil, Record{Seq: 6, Src: 99, Dst: 99})
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(frame[:tear]); err != nil {
				t.Fatal(err)
			}
			f.Close()

			info, err := Inspect(dir)
			if err != nil {
				t.Fatalf("inspect: %v", err)
			}
			if info.Corrupt != "" {
				t.Fatalf("torn tail misreported as corruption: %s", info.Corrupt)
			}
			if info.TornTail != int64(tear) {
				t.Fatalf("inspect torn tail %d, want %d", info.TornTail, tear)
			}

			recs, w2 := collect(t, dir, WALOptions{})
			defer w2.Close()
			if len(recs) != 5 {
				t.Fatalf("replayed %d records, want 5 (torn frame dropped)", len(recs))
			}
			if w2.TornBytes() != int64(tear) {
				t.Fatalf("TornBytes %d, want %d", w2.TornBytes(), tear)
			}
			// Sequence 6 was never acknowledged; the next append may reuse
			// or skip it — it must simply be greater than 5 and durable.
			last, err := w2.Append([]Record{{Src: 7, Dst: 7}})
			if err != nil || last <= 5 {
				t.Fatalf("append after torn recovery: seq %d err %v", last, err)
			}
			recs2, w3 := collect(t, dir, WALOptions{})
			defer w3.Close()
			if len(recs2) != 6 || recs2[5].Src != 7 {
				t.Fatalf("post-recovery log replays %d records (last %+v), want 6 ending in src=7", len(recs2), recs2[len(recs2)-1])
			}
		})
	}
}

func TestWALMidLadderDamageIsFatal(t *testing.T) {
	dir := t.TempDir()
	opts := WALOptions{SegmentBytes: 2 * (frameHeader + recordSize)}
	_, w := collect(t, dir, opts)
	for i := 0; i < 10; i++ {
		if _, err := w.Append([]Record{{Src: uint32(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Flip one payload byte in the FIRST segment: acknowledged history
	// is damaged, and no amount of tail truncation may hide it.
	path := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeader+10] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, opts, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over mid-ladder damage: %v, want ErrCorrupt", err)
	}
	info, err := Inspect(dir)
	if err != nil {
		t.Fatalf("inspect must report, not fail: %v", err)
	}
	if info.Corrupt == "" {
		t.Fatal("inspect did not flag mid-ladder damage")
	}
}

func TestWALSequenceRegressionIsFatal(t *testing.T) {
	dir := t.TempDir()
	// Hand-craft a segment whose second record's sequence goes backwards
	// behind a valid CRC: intact bytes, wrong content.
	buf := appendFrame(nil, Record{Seq: 5, Src: 1, Dst: 2})
	buf = appendFrame(buf, Record{Seq: 4, Src: 3, Dst: 4})
	if err := os.WriteFile(filepath.Join(dir, segmentName(5)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, WALOptions{}, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over sequence regression: %v, want ErrCorrupt", err)
	}
	info, err := Inspect(dir)
	if err != nil {
		t.Fatalf("inspect must report, not fail: %v", err)
	}
	if info.Corrupt == "" {
		t.Fatal("inspect did not flag the sequence regression")
	}
}

func TestWALRejectsLengthForgery(t *testing.T) {
	dir := t.TempDir()
	_, w := collect(t, dir, WALOptions{})
	if _, err := w.Append([]Record{{Src: 1, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[len(segs)-1])
	// Append a frame with an absurd length and a matching CRC over an
	// empty payload, followed by plausible bytes. The length check must
	// stop the reader before it tries to allocate or skip by it.
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<30)
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(nil))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, w2 := collect(t, dir, WALOptions{})
	defer w2.Close()
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1 (forged frame dropped as tail damage)", len(recs))
	}
}

func TestWALConcurrentAppendsAllDurableAndOrdered(t *testing.T) {
	dir := t.TempDir()
	_, w := collect(t, dir, WALOptions{SegmentBytes: 16 * (frameHeader + recordSize)})
	const goroutines, perG = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				last, err := w.Append([]Record{{Src: uint32(g), Dst: uint32(i)}})
				if err != nil {
					errs <- err
					return
				}
				if w.DurableSeq() < last {
					errs <- fmt.Errorf("acknowledged seq %d not durable (durable=%d)", last, w.DurableSeq())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, w2 := collect(t, dir, WALOptions{})
	defer w2.Close()
	if len(recs) != goroutines*perG {
		t.Fatalf("replayed %d records, want %d", len(recs), goroutines*perG)
	}
	seen := make(map[uint64]bool)
	prev := uint64(0)
	for _, r := range recs {
		if r.Seq <= prev {
			t.Fatalf("replay order violated: seq %d after %d", r.Seq, prev)
		}
		if seen[r.Seq] {
			t.Fatalf("duplicate sequence %d", r.Seq)
		}
		seen[r.Seq] = true
		prev = r.Seq
	}
}

func TestWALEmptyDirAndEmptyAppend(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fresh")
	recs, w := collect(t, dir, WALOptions{})
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}
	last, err := w.Append(nil)
	if err != nil || last != 0 {
		t.Fatalf("empty append: seq %d err %v", last, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

package ingest

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"csrplus/internal/core"
	"csrplus/internal/graph"
)

func fixtureGraph(t *testing.T) (*graph.Graph, *core.Index) {
	t.Helper()
	g, err := graph.ErdosRenyi(60, 300, 9)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.Precompute(g, core.Options{Rank: 8})
	if err != nil {
		t.Fatal(err)
	}
	return g, ix
}

// freshEdges picks count directed edges the graph does not have, so a
// test insert is never a duplicate no-op.
func freshEdges(t *testing.T, g *graph.Graph, count int) []Edge {
	t.Helper()
	out := make([]Edge, 0, count)
	for u := 0; u < g.N() && len(out) < count; u++ {
		for v := g.N() - 1; v >= 0 && len(out) < count; v-- {
			if u != v && !g.HasEdge(u, v) {
				out = append(out, Edge{Src: u, Dst: v})
			}
		}
	}
	if len(out) < count {
		t.Fatalf("graph too dense for %d fresh edges", count)
	}
	return out
}

func newReady(t *testing.T, g *graph.Graph, ix *core.Index, cfg Config) *Service {
	t.Helper()
	svc, err := NewService(g, ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Recover(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

func TestServiceAppendRestartConverges(t *testing.T) {
	g, ix := fixtureGraph(t)
	dir := t.TempDir()
	svc := newReady(t, g, ix, Config{Dir: dir})

	edges := freshEdges(t, g, 3)
	seq, drift, err := svc.Append(edges)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 || drift <= 0 {
		t.Fatalf("append: seq=%d drift=%g", seq, drift)
	}
	st := svc.Stats()
	if st.DurableSeq < 3 || st.Applied != 3 {
		t.Fatalf("stats after append: %+v", st)
	}
	live1, _, d1, err := svc.Cut()
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()

	// Restart: same base graph, same factors, replay from the log.
	svc2 := newReady(t, g, ix, Config{Dir: dir})
	if got := svc2.DriftBound(); math.Abs(got-d1) > 1e-12 {
		t.Fatalf("replayed drift %g, want %g", got, d1)
	}
	live2, seq2, _, err := svc2.Cut()
	if err != nil {
		t.Fatal(err)
	}
	if seq2 != 3 {
		t.Fatalf("replayed last seq %d, want 3", seq2)
	}
	a1, a2 := live1.Adj(), live2.Adj()
	if len(a1.ColIdx) != len(a2.ColIdx) {
		t.Fatalf("restart graph has %d entries, want %d", len(a2.ColIdx), len(a1.ColIdx))
	}
	for i := range a1.ColIdx {
		if a1.ColIdx[i] != a2.ColIdx[i] || a1.Val[i] != a2.Val[i] {
			t.Fatalf("restart graph differs at entry %d", i)
		}
	}
	// The restarted log accepts appends continuing the sequence.
	if seq, _, err := svc2.Append([]Edge{{Src: 7, Dst: 8}}); err != nil || seq <= 3 {
		t.Fatalf("append after restart: seq=%d err=%v", seq, err)
	}
}

func TestServiceNotReadyBeforeRecover(t *testing.T) {
	g, ix := fixtureGraph(t)
	svc, err := NewService(g, ix, Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Ready() {
		t.Fatal("cold service claims ready")
	}
	if _, _, err := svc.Append([]Edge{{Src: 1, Dst: 2}}); !errors.Is(err, ErrNotReady) {
		t.Fatalf("append before recover: %v", err)
	}
	if err := svc.Recover(); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if !svc.Ready() {
		t.Fatal("recovered service not ready")
	}
	if err := svc.Recover(); err == nil {
		t.Fatal("double Recover accepted")
	}
}

func TestServiceRejectsBadEdgesBeforeLogging(t *testing.T) {
	g, ix := fixtureGraph(t)
	dir := t.TempDir()
	svc := newReady(t, g, ix, Config{Dir: dir})
	for _, batch := range [][]Edge{
		{{Src: -1, Dst: 2}},
		{{Src: 0, Dst: g.N()}},
		{{Src: 1, Dst: 2}, {Src: 99999, Dst: 0}}, // one bad edge poisons the batch
	} {
		if _, _, err := svc.Append(batch); !errors.Is(err, ErrBadEdge) {
			t.Fatalf("batch %v accepted: %v", batch, err)
		}
	}
	if st := svc.Stats(); st.LastSeq != 0 || st.Applied != 0 {
		t.Fatalf("rejected batches leaked into state: %+v", st)
	}
	svc.Close()
	// Nothing was logged either: a fresh recover sees an empty log.
	svc2 := newReady(t, g, ix, Config{Dir: dir})
	if st := svc2.Stats(); st.LastSeq != 0 {
		t.Fatalf("rejected batch reached the WAL: %+v", st)
	}
}

func TestServiceSnapshotSeqSplitsDriftCharging(t *testing.T) {
	g, ix := fixtureGraph(t)
	dir := t.TempDir()
	svc := newReady(t, g, ix, Config{Dir: dir})
	fresh := freshEdges(t, g, 3)
	if _, _, err := svc.Append(fresh[:2]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Append(fresh[2:]); err != nil {
		t.Fatal(err)
	}
	fullDrift := svc.DriftBound()
	svc.Close()

	// A snapshot covering seq 2 replays seq 1-2 drift-free and charges
	// only the tail (seq 3).
	ix.SetWalSeq(2)
	defer ix.SetWalSeq(0)
	svc2 := newReady(t, g, ix, Config{Dir: dir})
	tail := svc2.DriftBound()
	if tail <= 0 || tail >= fullDrift {
		t.Fatalf("tail drift %g, want in (0, %g)", tail, fullDrift)
	}
	if st := svc2.Stats(); st.Applied != 1 || st.LiveEdges != g.M()+3 {
		t.Fatalf("tail replay stats: %+v", st)
	}
}

func TestServiceRebuildTriggerSingleFlightAndBaseline(t *testing.T) {
	g, ix := fixtureGraph(t)
	// A budget tiny enough that the very first edge exceeds it.
	svc := newReady(t, g, ix, Config{Dir: t.TempDir(), DriftBudget: 1e-9})
	var mu sync.Mutex
	fired := 0
	release := make(chan bool)
	svc.SetRebuildTrigger(func() {
		mu.Lock()
		fired++
		mu.Unlock()
		svc.RebuildDone(<-release)
	})

	fresh := freshEdges(t, g, 7)
	if _, drift, err := svc.Append(fresh[:1]); err != nil || drift <= 1e-9 {
		t.Fatalf("append: drift=%g err=%v", drift, err)
	}
	// More appends while the rebuild is in flight must not re-fire.
	for i := 1; i < 5; i++ {
		if _, _, err := svc.Append(fresh[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	waitFired := func(want int) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			mu.Lock()
			n := fired
			mu.Unlock()
			if n == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("trigger fired %d times, want %d", n, want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitIdle := func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for svc.Stats().Rebuilding {
			if time.Now().After(deadline) {
				t.Fatal("rebuild episode never ended")
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFired(1)

	// Failed rebuild: baseline unchanged, next append re-fires.
	cutDrift := svc.DriftBound()
	if _, _, _, err := svc.Cut(); err != nil {
		t.Fatal(err)
	}
	release <- false
	waitIdle()
	if got := svc.DriftBound(); got < cutDrift {
		t.Fatalf("failed rebuild moved the baseline: drift %g < %g", got, cutDrift)
	}
	if _, _, err := svc.Append(fresh[5:6]); err != nil {
		t.Fatal(err)
	}
	waitFired(2)

	// Committed rebuild: the cut's drift becomes the baseline and the
	// serving bound drops to only what accrued after the cut.
	_, _, d0, err := svc.Cut()
	if err != nil {
		t.Fatal(err)
	}
	driftFn := svc.DriftFrom(d0)
	release <- true
	waitIdle()
	if got := svc.DriftBound(); got > 1e-12 {
		t.Fatalf("committed rebuild left serving drift %g", got)
	}
	if d, exceeded := driftFn(); d > 1e-12 || exceeded {
		t.Fatalf("fresh generation's closure reports drift %g exceeded=%v", d, exceeded)
	}
	if _, _, err := svc.Append(fresh[6:7]); err != nil {
		t.Fatal(err)
	}
	if d, exceeded := driftFn(); d <= 0 || !exceeded {
		t.Fatalf("post-rebuild append not reflected: drift %g exceeded=%v", d, exceeded)
	}
	waitFired(3)
	release <- true
}

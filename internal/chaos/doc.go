// Package chaos holds the fault-injection test suite for the serving
// stack. The package has no production code: its tests carry the
// `faultinject` build tag and exercise the full stack — core index
// persistence and snapshot recovery, the serve batching/degradation
// path, and the reload lifecycle — while internal/fault delivers
// deterministic, seeded faults at the instrumented sites.
//
// Run it with:
//
//	go test -tags faultinject -race ./internal/chaos/
//
// Each test iterates a fixed seed matrix (overridable with CHAOS_SEED=n
// to reproduce a single CI shard) and asserts the robustness invariants
// the rest of the repo promises but cannot probe without faults:
//
//   - Every request gets an answer or a typed error — never a hang, never
//     a silently dropped in-flight request.
//   - Every successful answer is correct: exact at full rank, within the
//     engine's advertised entrywise bound when served degraded.
//   - A failing reload source never disturbs the serving generation; the
//     old engine keeps answering exactly until a healthy candidate swaps in.
//   - A snapshot directory survives torn writes, failed fsyncs and torn
//     CURRENT pointers: recovery always finds the newest intact generation.
//
// A plain `go test ./...` compiles none of this (and the fault hooks in
// production code compile to nothing), so the chaos suite can be as
// hostile as it likes without tier-1 cost.
package chaos

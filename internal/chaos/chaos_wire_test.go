//go:build faultinject

package chaos

// chaos_wire_test.go covers the two fault sites the wire split added:
// wire/dial (the whole request fails before leaving the client) and
// wire/read (the response stream tears mid-body). Plus the scenario the
// sites exist to protect: a shard worker crashing in the middle of a
// rolling remote reload, leaving a mixed-generation, partially-dead
// cluster that must keep serving degraded-but-tagged answers and
// converge once the worker comes back.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"csrplus/internal/core"
	"csrplus/internal/fault"
	"csrplus/internal/graph"
	"csrplus/internal/shard"
	"csrplus/internal/wire"
)

// wireAcceptable reports whether err is a failure a wire-router caller
// may legitimately observe under injected transport chaos. Anything else
// leaking through — a raw connection string, an unwrapped decode error —
// is a bug in the client's error taxonomy.
func wireAcceptable(err error) bool {
	return errors.Is(err, shard.ErrSlotDown) ||
		errors.Is(err, fault.ErrInjected) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// wireCluster builds k shard workers over ix behind httptest servers and
// returns a wire router plus its remote engines. Dialing and bound
// priming happen before any fault is armed — boot is not the scenario
// under test here.
func wireCluster(t *testing.T, ix *core.Index, k int, opt wire.Options) (*shard.Router, []*wire.RemoteEngine) {
	t.Helper()
	shards, err := shard.Split(ix, k)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*wire.RemoteEngine, k)
	slots := make([]shard.Slot, k)
	for s := range shards {
		w := wire.NewWorker(shards[s], 0, wire.WorkerConfig{Shard: s})
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		o := opt
		o.Shard = s
		e, err := wire.Dial(context.Background(), srv.URL, o)
		if err != nil {
			t.Fatal(err)
		}
		engines[s], slots[s] = e, e
	}
	rt, err := shard.NewRouterSlots(slots)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.PrimeBound(); err != nil {
		t.Fatal(err)
	}
	return rt, engines
}

// TestChaosWireAnswersExactOrTaggedOrTyped hammers the wire router while
// dials fail and response bodies tear. Invariants: every query resolves
// as (a) an exact answer bitwise-identical to the in-process router,
// (b) a degraded answer tagged with the missing-shard count, the exact
// |Q|-scaled error bound, and per-item scores that are still bitwise
// members of the exact full ranking, or (c) a typed error. Raw transport
// errors, wrong bounds, or corrupted scores are all bugs.
func TestChaosWireAnswersExactOrTaggedOrTyped(t *testing.T) {
	ix, _ := fixture(t)
	const shardK = 3
	querySets := [][]int{{7}, {0, ix.N() - 1}, {13, 42, 99}}
	local, err := shard.NewRouterFromIndex(ix, shardK)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// The exact aggregate score of every node for every query set: the
	// ground truth a degraded answer's surviving items must still match.
	exact := make([]map[int]float64, len(querySets))
	want := make([][]int, len(querySets)) // exact top-10 node sets
	for i, qs := range querySets {
		all, err := local.TopKRank(ctx, qs, ix.N(), 0)
		if err != nil {
			t.Fatal(err)
		}
		exact[i] = make(map[int]float64, len(all))
		for _, it := range all {
			exact[i][it.Node] = it.Score
		}
		top, err := local.TopKRank(ctx, qs, 10, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range top {
			want[i] = append(want[i], it.Node)
		}
	}
	for _, seed := range seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rt, engines := wireCluster(t, ix, shardK, wire.Options{
				Timeout:     5 * time.Second,
				MaxAttempts: 2,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  4 * time.Millisecond,
				// Hedging under injected dial faults just doubles the
				// fault dice per call; keep the taxonomy the variable.
				HedgeQuantile: -1,
				Seed:          seed,
			})
			fault.Enable(seed)
			defer fault.Disable()
			fault.Arm(fault.SiteWireDial, fault.Plan{ErrProb: 0.25})
			fault.Arm(fault.SiteWireRead, fault.Plan{ErrProb: 0.15})

			exactCalls, degraded, failed := 0, 0, 0
			for iter := 0; iter < 60; iter++ {
				qi := iter % len(querySets)
				qs := querySets[qi]
				res, err := rt.TopKTagged(ctx, qs, 10, 0)
				if err != nil {
					if !wireAcceptable(err) {
						t.Fatalf("iter %d: untyped error under chaos: %v", iter, err)
					}
					failed++
					continue
				}
				if res.Missing == 0 {
					if res.ErrorBound != 0 {
						t.Fatalf("iter %d: full answer carries bound %v", iter, res.ErrorBound)
					}
					if len(res.Items) != len(want[qi]) {
						t.Fatalf("iter %d: %d items, want %d", iter, len(res.Items), len(want[qi]))
					}
					for j, it := range res.Items {
						if it.Node != want[qi][j] || math.Float64bits(it.Score) != math.Float64bits(exact[qi][it.Node]) {
							t.Fatalf("iter %d item %d: (%d, %x) is not the exact answer", iter, j, it.Node, math.Float64bits(it.Score))
						}
					}
					exactCalls++
					continue
				}
				degraded++
				if res.Missing >= shardK {
					t.Fatalf("iter %d: %d missing shards on a %d-shard answer", iter, res.Missing, shardK)
				}
				if wantBound := float64(len(qs)) * rt.MissingShardBound(); res.ErrorBound != wantBound {
					t.Fatalf("iter %d: %d missing, bound %v, want |Q|*MissingShardBound = %v", iter, res.Missing, res.ErrorBound, wantBound)
				}
				for j, it := range res.Items {
					ref, ok := exact[qi][it.Node]
					if !ok || math.Float64bits(it.Score) != math.Float64bits(ref) {
						t.Fatalf("iter %d degraded item %d: node %d score %x is not its exact score", iter, j, it.Node, math.Float64bits(it.Score))
					}
				}
			}
			if fault.Injected(fault.SiteWireDial)+fault.Injected(fault.SiteWireRead) == 0 {
				t.Fatal("chaos never fired; the test asserted nothing")
			}
			t.Logf("seed %d: %d exact, %d degraded, %d typed failures; dial faults %d, read faults %d",
				seed, exactCalls, degraded, failed,
				fault.Injected(fault.SiteWireDial), fault.Injected(fault.SiteWireRead))
			for s, e := range engines {
				st := e.Stats()
				if st.Requests == 0 {
					t.Fatalf("shard %d saw no requests", s)
				}
			}
		})
	}
}

// TestChaosWireWorkerCrashMidRoll kills one worker between publishing a
// new snapshot generation and rolling the cluster onto it. The roll must
// abort at the dead worker with a typed error and an accurate swap
// count, the mixed-generation cluster must keep serving degraded-but-
// tagged answers, and once the worker restarts from its snapshot
// directory a re-run of the roll must converge the whole cluster to the
// new generation with bitwise-exact answers.
func TestChaosWireWorkerCrashMidRoll(t *testing.T) {
	g, err := graph.ErdosRenyi(120, 700, 7)
	if err != nil {
		t.Fatal(err)
	}
	ixA, err := core.Precompute(g, core.Options{Rank: 6})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := graph.ErdosRenyi(120, 700, 8)
	if err != nil {
		t.Fatal(err)
	}
	ixB, err := core.Precompute(g2, core.Options{Rank: 6})
	if err != nil {
		t.Fatal(err)
	}
	const shardK = 3
	shardsA, err := shard.Split(ixA, shardK)
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	dirs := make([]string, shardK)
	engines := make([]*wire.RemoteEngine, shardK)
	slots := make([]shard.Slot, shardK)
	var crashServer *http.Server
	var crashAddr string
	opt := wire.Options{
		Timeout:     5 * time.Second,
		MaxAttempts: 1,
		BaseBackoff: time.Millisecond,
		// The recovery poll below hammers a dead address; a breaker would
		// turn that into a 5s real-time cooldown stall. Breakers have
		// their own test — this one is about the roll.
		BreakerThreshold: -1,
		HedgeQuantile:    -1,
		AdminToken:       "sesame",
		Seed:             1,
	}
	for s, sh := range shardsA {
		dirs[s] = core.ShardDir(root, s)
		if _, _, err := core.WriteShardSnapshot(dirs[s], sh); err != nil {
			t.Fatal(err)
		}
		w, err := wire.BootWorker(wire.WorkerConfig{Shard: s, SnapshotDir: dirs[s], AdminToken: "sesame"})
		if err != nil {
			t.Fatal(err)
		}
		var url string
		if s == 1 {
			// The crash victim runs on a hand-rolled listener so the
			// restarted worker can rebind the same address.
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			crashAddr = ln.Addr().String()
			crashServer = &http.Server{Handler: w.Handler()}
			go crashServer.Serve(ln)
			url = "http://" + crashAddr
		} else {
			srv := httptest.NewServer(w.Handler())
			t.Cleanup(srv.Close)
			url = srv.URL
		}
		o := opt
		o.Shard = s
		e, err := wire.Dial(context.Background(), url, o)
		if err != nil {
			t.Fatal(err)
		}
		engines[s], slots[s] = e, e
	}
	rt, err := shard.NewRouterSlots(slots)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.PrimeBound(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Publish generation 2 and crash worker 1 before the roll reaches it.
	for s := range dirs {
		lo, hi := rt.Plan().Range(s)
		sh, err := ixB.Shard(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := core.WriteShardSnapshot(dirs[s], sh); err != nil {
			t.Fatal(err)
		}
	}
	crashServer.Close()
	swapped, err := wire.RollWorkers(ctx, engines)
	if err == nil || swapped != 1 {
		t.Fatalf("roll across a crashed worker = %d, %v; want 1 swap and an error", swapped, err)
	}
	if !errors.Is(err, shard.ErrSlotDown) {
		t.Fatalf("crashed-worker roll error is untyped: %v", err)
	}

	// Degraded-but-serving: queries not owned by the dead shard still
	// answer, tagged with the missing shard and the exact inflated bound.
	lo1, hi1 := rt.Plan().Range(1)
	liveQuery := 0
	if liveQuery >= lo1 && liveQuery < hi1 {
		t.Fatalf("test assumes node 0 is not on shard 1 (shard 1 covers [%d, %d))", lo1, hi1)
	}
	res, err := rt.TopKTagged(ctx, []int{liveQuery}, 5, 0)
	if err != nil {
		t.Fatalf("mixed-generation degraded serve failed: %v", err)
	}
	if res.Missing != 1 {
		t.Fatalf("degraded serve tagged %d missing shards, want 1", res.Missing)
	}
	if wantBound := 1 * rt.MissingShardBound(); res.ErrorBound != wantBound {
		t.Fatalf("degraded bound %v, want %v", res.ErrorBound, wantBound)
	}
	for _, it := range res.Items {
		if math.IsNaN(it.Score) || math.IsInf(it.Score, 0) {
			t.Fatalf("degraded answer carries non-finite score for node %d", it.Node)
		}
	}
	if _, err := rt.TopKTagged(ctx, []int{lo1}, 5, 0); err == nil {
		t.Fatal("query owned by the crashed shard must fail, not fabricate scores")
	}

	// Restart the worker from its snapshot directory (a fresh process
	// would do exactly this) and wait for the address to answer again.
	w1, err := wire.BootWorker(wire.WorkerConfig{Shard: 1, SnapshotDir: dirs[1], AdminToken: "sesame"})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", crashAddr)
	if err != nil {
		t.Fatal(err)
	}
	restarted := &http.Server{Handler: w1.Handler()}
	go restarted.Serve(ln)
	t.Cleanup(func() { restarted.Close() })
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := engines[1].BoundTerms(ctx); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted worker never became reachable")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Convergence: the re-run rolls every worker (the restarted one
	// booted straight into the new snapshot; re-swapping it is harmless)
	// and the cluster answers bitwise-identically to generation B.
	swapped, err = wire.RollWorkers(ctx, engines)
	if err != nil || swapped != shardK {
		t.Fatalf("recovery roll = %d, %v; want %d, nil", swapped, err, shardK)
	}
	localB, err := shard.NewRouterFromIndex(ixB, shardK)
	if err != nil {
		t.Fatal(err)
	}
	queries := []int{3, 77}
	want, err := localB.TopKRank(ctx, queries, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rt.TopKTagged(ctx, queries, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Missing != 0 {
		t.Fatalf("converged cluster still tagged %d missing", got.Missing)
	}
	for i := range want {
		if got.Items[i] != want[i] {
			t.Fatalf("post-recovery item %d: (%d, %x), want (%d, %x)", i,
				got.Items[i].Node, math.Float64bits(got.Items[i].Score),
				want[i].Node, math.Float64bits(want[i].Score))
		}
	}
}

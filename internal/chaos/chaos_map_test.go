//go:build faultinject

package chaos

// chaos_map_test.go covers the two fault sites the v2 mmap path added:
// core/index.mmap (environmental — must degrade to the buffered decode,
// never fail the load) and core/index.verify (untrusted bytes — must
// fail the load and drive the recovery ladder, never serve unverified
// factors). Plus the lifetime scenario the sites exist to protect:
// mapped generations swapping under concurrent query load.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"csrplus/internal/core"
	"csrplus/internal/fault"
	"csrplus/internal/reload"
	"csrplus/internal/serve"
)

// TestChaosMmapRefusalDegradesToDecode arms the mmap site at full
// probability and loads a v2 snapshot: every load must still succeed —
// through the buffered decode fallback — and answer bitwise-identically
// to a mapped load, because an mmap refusal (ulimit, address-space
// fragmentation) is an environmental condition, not data corruption.
func TestChaosMmapRefusalDegradesToDecode(t *testing.T) {
	ix, ref := fixture(t)
	path := filepath.Join(t.TempDir(), "ix.csrx")
	if err := core.SaveIndex(ix, path); err != nil {
		t.Fatal(err)
	}
	probe := 11 % ix.N()
	for _, seed := range seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fault.Enable(seed)
			defer fault.Disable()
			fault.Arm(fault.SiteIndexMap, fault.Plan{ErrProb: 1})

			loaded, err := core.LoadIndex(path)
			if err != nil {
				t.Fatalf("load with mmap refused must degrade to decode, got: %v", err)
			}
			defer loaded.Close()
			if loaded.Mapped() {
				t.Fatal("index claims to be mapped while the mmap site injects refusal")
			}
			if fault.Injected(fault.SiteIndexMap) == 0 {
				t.Fatal("chaos never fired; the test asserted nothing")
			}
			col, err := loaded.QueryOne(probe)
			if err != nil {
				t.Fatal(err)
			}
			for node, s := range col {
				if math.Abs(s-ref[probe][node]) > 0 {
					t.Fatalf("decode-fallback answer differs at node %d: %g vs %g", node, s, ref[probe][node])
				}
			}
		})
	}
}

// TestChaosVerifyFailureFailsLoadAndKeepsOldGeneration arms the verify
// site: a factor-block verification failure means the bytes cannot be
// trusted, so the load must fail outright — no decode fallback, which
// would serve the same untrusted bytes — and a reload manager pointed at
// the snapshot must keep the old generation serving exactly. Disarming
// must let the next reload succeed.
func TestChaosVerifyFailureFailsLoadAndKeepsOldGeneration(t *testing.T) {
	ix, ref := fixture(t)
	n := ix.N()
	dir := t.TempDir()
	if _, _, err := core.WriteSnapshot(dir, ix); err != nil {
		t.Fatal(err)
	}
	for _, seed := range seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fault.Enable(seed)
			defer fault.Disable()
			fault.Arm(fault.SiteIndexVerify, fault.Plan{ErrProb: 1})

			if loaded, err := core.LoadIndex(filepath.Join(dir, core.SnapshotName(1))); err == nil {
				loaded.Close()
				t.Fatal("load succeeded while factor verification injects failure")
			} else if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("verify-failed load error = %v, want wrapped fault.ErrInjected", err)
			}
			if fault.Injected(fault.SiteIndexVerify) == 0 {
				t.Fatal("chaos never fired; the test asserted nothing")
			}

			sv := serve.NewRanked(rankedEngine(ix), serve.Config{
				MaxBatch: 8, Workers: 2, MaxPending: 128,
			})
			defer sv.Close()
			boot := reload.Meta{Source: "boot", Algorithm: "csrplus", N: n, Rank: ix.Rank()}
			man := reload.NewWithPolicy(sv, snapshotLoader(dir), boot, reload.Policy{
				MaxAttempts: 2,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  4 * time.Millisecond,
			})
			genBefore := sv.Metrics().Generation()
			if _, err := man.Reload(context.Background()); err == nil {
				t.Fatal("reload with failing verification unexpectedly succeeded")
			}
			if got := sv.Metrics().Generation(); got != genBefore {
				t.Fatalf("failed reload moved the serving generation: %d -> %d", genBefore, got)
			}
			// The old generation still answers exactly.
			q := 5 % n
			res, err := sv.Score(context.Background(), []int{q}, []int{(q + 3) % n})
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(res.Pairs[0].Score - ref[q][(q+3)%n]); d > 1e-9 {
				t.Fatalf("old generation answers wrong after failed reload: off by %g", d)
			}

			fault.Disarm(fault.SiteIndexVerify)
			if st, err := man.Reload(context.Background()); err != nil {
				t.Fatalf("reload after disarming verify fault: %v", err)
			} else if st.Generation != genBefore+1 {
				t.Fatalf("healthy reload produced generation %d, want %d", st.Generation, genBefore+1)
			}
		})
	}
}

// TestChaosMappedGenerationSwapUnderLoad is the lifetime scenario the
// Release plumbing exists for: generations backed by real mmapped v2
// snapshots swap repeatedly while hammer goroutines query, with engine
// latency spikes armed to keep batches in flight across swaps. Every
// answer must be exact — a premature munmap would fault or corrupt — and
// each retired generation's mapping must be released exactly once.
func TestChaosMappedGenerationSwapUnderLoad(t *testing.T) {
	ix, ref := fixture(t)
	n := ix.N()
	dir := t.TempDir()
	if _, _, err := core.WriteSnapshot(dir, ix); err != nil {
		t.Fatal(err)
	}
	for _, seed := range seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fault.Enable(seed)
			defer fault.Disable()
			fault.Arm(fault.SiteBatchQuery, fault.Plan{LatencyProb: 0.4, Latency: 200 * time.Microsecond})

			var mu sync.Mutex
			live := make(map[*core.Index]bool) // mapped generations not yet released
			loader := func(ctx context.Context) (*reload.Candidate, error) {
				mapped, _, _, err := core.RecoverSnapshot(dir)
				if err != nil {
					return nil, err
				}
				mu.Lock()
				live[mapped] = true
				mu.Unlock()
				return &reload.Candidate{
					N:         mapped.N(),
					RankQuery: rankQuery(mapped),
					Rank:      mapped.Rank(),
					Bound:     mapped.TruncationBound,
					Meta:      reload.Meta{Source: "snapshot", Algorithm: "csrplus", N: mapped.N()},
					Release: func() {
						mu.Lock()
						if !live[mapped] {
							t.Error("generation released twice")
						}
						delete(live, mapped)
						mu.Unlock()
						mapped.Close()
					},
				}, nil
			}

			sv := serve.NewRanked(rankedEngine(ix), serve.Config{
				MaxBatch: 8, Linger: 100 * time.Microsecond, Workers: 4, MaxPending: 256,
			})
			defer sv.Close()
			man := reload.New(sv, loader, reload.Meta{Source: "boot"})

			stop := make(chan struct{})
			var hwg sync.WaitGroup
			for w := 0; w < 4; w++ {
				hwg.Add(1)
				go func(w int) {
					defer hwg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						q := (w*37 + i*11) % n
						tgt := (q + 29) % n
						res, err := sv.Score(context.Background(), []int{q}, []int{tgt})
						if err != nil {
							t.Errorf("seed %d: query failed during mapped swaps: %v", seed, err)
							return
						}
						if d := math.Abs(res.Pairs[0].Score - ref[q][tgt]); d > 1e-9 {
							t.Errorf("seed %d: answer off by %g during mapped swaps — stale or torn factors", seed, d)
							return
						}
					}
				}(w)
			}

			const swaps = 6
			for i := 0; i < swaps; i++ {
				if _, err := man.Reload(context.Background()); err != nil {
					t.Fatalf("seed %d: mapped reload %d: %v", seed, i, err)
				}
			}
			close(stop)
			hwg.Wait()

			mu.Lock()
			defer mu.Unlock()
			if len(live) != 1 {
				t.Fatalf("seed %d: %d mapped generations still pinned after %d swaps, want exactly the serving one",
					seed, len(live), swaps)
			}
			for serving := range live {
				serving.Close() // test cleanup; in production the process owns the last pin
			}
		})
	}
}

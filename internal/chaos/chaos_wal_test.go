//go:build faultinject

package chaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"csrplus/internal/core"
	"csrplus/internal/fault"
	"csrplus/internal/graph"
	"csrplus/internal/ingest"
	"csrplus/internal/reload"
	"csrplus/internal/serve"
)

// walGraph regenerates the fixture's graph. fixture() only retains the
// index; the ingest pipeline needs the graph itself, and ErdosRenyi is
// deterministic in its seed.
func walGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.ErdosRenyi(120, 700, 42)
	if err != nil {
		t.Fatalf("regenerating fixture graph: %v", err)
	}
	return g
}

// pickFresh returns k edges absent from g, scanned deterministically so
// every seed ingests the same stream.
func pickFresh(t *testing.T, g *graph.Graph, k int) []ingest.Edge {
	t.Helper()
	out := make([]ingest.Edge, 0, k)
	n := g.N()
	for u := 0; u < n && len(out) < k; u++ {
		for v := n - 1; v >= 0 && len(out) < k; v-- {
			if u != v && !g.HasEdge(u, v) {
				out = append(out, ingest.Edge{Src: u, Dst: v})
			}
		}
	}
	if len(out) < k {
		t.Fatalf("fixture graph too dense to pick %d fresh edges", k)
	}
	return out
}

// TestChaosWALCrashMidAppendRestartConverges drives an edge stream into
// the ingestion service while the WAL's write and fsync paths randomly
// tear and fail, then simulates a crash (the service is abandoned
// without Close and trailing garbage lands on the final segment, as a
// power cut mid-frame would leave it). Invariants: every append failure
// is typed; a restart's replay succeeds with no ErrCorrupt; every
// acknowledged edge survives; and re-sending the full stream converges
// to exactly base + stream, duplicates collapsing to no-ops.
func TestChaosWALCrashMidAppendRestartConverges(t *testing.T) {
	ix, _ := fixture(t)
	for _, seed := range seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fault.Enable(seed)
			defer fault.Disable()
			g := walGraph(t)
			dir := t.TempDir()

			svc, err := ingest.NewService(g, ix, ingest.Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if err := svc.Recover(); err != nil {
				t.Fatalf("recover on an empty log: %v", err)
			}
			fresh := pickFresh(t, g, 40)

			fault.Arm(fault.SiteWALAppend, fault.Plan{ErrProb: 0.1, TornProb: 0.2, TornBytes: 13})
			fault.Arm(fault.SiteWALSync, fault.Plan{ErrProb: 0.2})
			var acked []ingest.Edge
			failures := 0
			for _, e := range fresh {
				if _, _, err := svc.Append([]ingest.Edge{e}); err != nil {
					failures++
					if !errors.Is(err, fault.ErrInjected) {
						t.Fatalf("append failed untyped under chaos: %v", err)
					}
					continue
				}
				acked = append(acked, e)
			}
			fault.Disarm(fault.SiteWALAppend)
			fault.Disarm(fault.SiteWALSync)
			t.Logf("appended %d edges, %d failures, %d acked", len(fresh), failures, len(acked))

			// Crash: abandon svc (no Close, so no final fsync) and leave
			// an in-flight partial frame on the final segment.
			segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
			if err != nil || len(segs) == 0 {
				t.Fatalf("listing segments: %v (%d found)", err, len(segs))
			}
			sort.Strings(segs)
			f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
				t.Fatal(err)
			}
			f.Close()

			// Restart. Replay must truncate the torn tail and surface
			// every acknowledged edge; ErrCorrupt would mean the log's
			// committed history was damaged by mere append failures.
			svc2, err := ingest.NewService(walGraph(t), ix, ingest.Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if err := svc2.Recover(); err != nil {
				if errors.Is(err, ingest.ErrCorrupt) {
					t.Fatalf("append chaos corrupted acknowledged history: %v", err)
				}
				t.Fatalf("recover after crash: %v", err)
			}
			cut, _, _, err := svc2.Cut()
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range acked {
				if !cut.HasEdge(e.Src, e.Dst) {
					t.Fatalf("acknowledged edge (%d, %d) lost across crash-restart", e.Src, e.Dst)
				}
			}

			// Converge: the client re-sends the whole stream (at-least-once
			// delivery); duplicates are no-ops, so the live graph must end
			// at exactly base + stream.
			if _, _, err := svc2.Append(fresh); err != nil {
				t.Fatalf("re-sending the stream after restart: %v", err)
			}
			final, _, _, err := svc2.Cut()
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range fresh {
				if !final.HasEdge(e.Src, e.Dst) {
					t.Fatalf("edge (%d, %d) missing after full re-send", e.Src, e.Dst)
				}
			}
			if want := g.M() + int64(len(fresh)); final.M() != want {
				t.Fatalf("converged edge count %d, want %d (duplicates must collapse)", final.M(), want)
			}
			info, err := ingest.Inspect(dir)
			if err != nil {
				t.Fatalf("inspect after convergence: %v", err)
			}
			if info.Corrupt != "" {
				t.Fatalf("log marked corrupt after convergence: %s", info.Corrupt)
			}
			if err := svc2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestChaosWALReplayTransientFaultsRetryable flakes every replay read
// and checks the failure contract of boot recovery: the error is typed
// injection, not ErrCorrupt (an I/O error is not evidence of a damaged
// log); the service refuses traffic; and a later Recover on the same
// service succeeds once reads heal — recovery is retryable in place.
func TestChaosWALReplayTransientFaultsRetryable(t *testing.T) {
	ix, _ := fixture(t)
	for _, seed := range seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := walGraph(t)
			dir := t.TempDir()
			fresh := pickFresh(t, g, 5)

			// Seed the log cleanly, before faults.
			svc1, err := ingest.NewService(g, ix, ingest.Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if err := svc1.Recover(); err != nil {
				t.Fatal(err)
			}
			if _, _, err := svc1.Append(fresh); err != nil {
				t.Fatal(err)
			}
			if err := svc1.Close(); err != nil {
				t.Fatal(err)
			}

			fault.Enable(seed)
			defer fault.Disable()
			fault.Arm(fault.SiteWALReplay, fault.Plan{ErrProb: 1})

			svc2, err := ingest.NewService(walGraph(t), ix, ingest.Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			err = svc2.Recover()
			if err == nil {
				t.Fatal("recover with fully faulted replay reads unexpectedly succeeded")
			}
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("replay failure untyped: %v", err)
			}
			if errors.Is(err, ingest.ErrCorrupt) {
				t.Fatalf("transient read failure misreported as corruption: %v", err)
			}
			if svc2.Ready() {
				t.Fatal("service ready after failed recovery")
			}
			if _, _, err := svc2.Append(fresh[:1]); !errors.Is(err, ingest.ErrNotReady) {
				t.Fatalf("append on unrecovered service: got %v, want ErrNotReady", err)
			}

			// Reads heal: the same service must recover in place.
			fault.Disarm(fault.SiteWALReplay)
			if err := svc2.Recover(); err != nil {
				t.Fatalf("recover after faults cleared: %v", err)
			}
			cut, seq, _, err := svc2.Cut()
			if err != nil {
				t.Fatal(err)
			}
			if seq != uint64(len(fresh)) {
				t.Fatalf("recovered seq %d, want %d", seq, len(fresh))
			}
			for _, e := range fresh {
				if !cut.HasEdge(e.Src, e.Dst) {
					t.Fatalf("edge (%d, %d) missing after healed recovery", e.Src, e.Dst)
				}
			}
			if err := svc2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestChaosWALRebuildFailureKeepsServingAndLog wires the ingestion
// service to a real reload manager whose load path always fails, and
// checks the blast radius of a failed drift-triggered rebuild: the old
// generation keeps answering exactly, the drift baseline is not
// promoted (the bound stays honest), and the WAL is untouched. Once the
// fault clears, the same rebuild path must succeed, bump the
// generation, and collapse the served drift bound back to zero.
func TestChaosWALRebuildFailureKeepsServingAndLog(t *testing.T) {
	ix, ref := fixture(t)
	n := ix.N()
	for _, seed := range seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fault.Enable(seed)
			defer fault.Disable()
			g := walGraph(t)
			dir := t.TempDir()

			svc, err := ingest.NewService(g, ix, ingest.Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if err := svc.Recover(); err != nil {
				t.Fatal(err)
			}
			fresh := pickFresh(t, g, 6)
			if _, _, err := svc.Append(fresh); err != nil {
				t.Fatal(err)
			}
			driftBefore := svc.DriftBound()
			if driftBefore <= 0 {
				t.Fatalf("drift bound %g after %d edges, want > 0", driftBefore, len(fresh))
			}

			sv := serve.NewRanked(rankedEngine(ix), serve.Config{
				MaxBatch: 8, Workers: 2, MaxPending: 128,
			})
			defer sv.Close()
			boot := reload.Meta{Source: "boot", Algorithm: "csrplus", N: n, Rank: ix.Rank()}
			loader := func(ctx context.Context) (*reload.Candidate, error) {
				cut, seq, d0, err := svc.Cut()
				if err != nil {
					return nil, err
				}
				ix2, err := core.Precompute(cut, core.Options{Rank: ix.Rank()})
				if err != nil {
					return nil, err
				}
				ix2.SetWalSeq(seq)
				return &reload.Candidate{
					N: ix2.N(), RankQuery: rankQuery(ix2), Rank: ix2.Rank(),
					Bound: ix2.TruncationBound,
					Drift: svc.DriftFrom(d0),
					Meta: reload.Meta{
						Source: "ingest-rebuild", Algorithm: "csrplus",
						N: ix2.N(), Rank: ix2.Rank(),
					},
				}, nil
			}
			man := reload.NewWithPolicy(sv, loader, boot, reload.Policy{
				MaxAttempts: 2,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  4 * time.Millisecond,
			})
			// The commit protocol csrserver runs around every reload.
			reloadCommit := func() error {
				_, err := man.Reload(context.Background())
				if !errors.Is(err, reload.ErrCoalesced) {
					svc.RebuildDone(err == nil)
				}
				return err
			}

			fault.Arm(fault.SiteReloadLoad, fault.Plan{ErrProb: 1})
			genBefore := sv.Metrics().Generation()
			if err := reloadCommit(); err == nil {
				t.Fatal("rebuild with a fully faulted load path unexpectedly succeeded")
			}
			if got := sv.Metrics().Generation(); got != genBefore {
				t.Fatalf("failed rebuild moved the serving generation: %d -> %d", genBefore, got)
			}
			// The old generation still answers exactly.
			for i := 0; i < 20; i++ {
				q, tgt := (i*13)%n, (i*13+11)%n
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				res, err := sv.Score(ctx, []int{q}, []int{tgt})
				cancel()
				if err != nil {
					t.Fatalf("query failed after failed rebuild: %v", err)
				}
				if d := math.Abs(res.Pairs[0].Score - ref[q][tgt]); d > 1e-9 {
					t.Fatalf("query (%d, %d) off by %g after failed rebuild", q, tgt, d)
				}
			}
			// The drift baseline must not be promoted by a failed rebuild:
			// the served bound keeps covering the unrebuilt edges.
			if got := svc.DriftBound(); got != driftBefore {
				t.Fatalf("failed rebuild moved the drift bound: %g -> %g", driftBefore, got)
			}
			if st := svc.Stats(); st.Rebuilding {
				t.Fatal("service stuck in rebuilding state after failed rebuild")
			}
			// The log is intact: same records, no corruption.
			info, err := ingest.Inspect(dir)
			if err != nil {
				t.Fatalf("inspect after failed rebuild: %v", err)
			}
			if info.Corrupt != "" || info.Records != len(fresh) {
				t.Fatalf("failed rebuild disturbed the log: corrupt=%q records=%d want %d",
					info.Corrupt, info.Records, len(fresh))
			}

			// Fault clears: the same path must succeed and reset drift.
			fault.Disarm(fault.SiteReloadLoad)
			if err := reloadCommit(); err != nil {
				t.Fatalf("rebuild after faults cleared: %v", err)
			}
			if got := sv.Metrics().Generation(); got != genBefore+1 {
				t.Fatalf("successful rebuild generation %d, want %d", got, genBefore+1)
			}
			if got := svc.DriftBound(); got > 1e-12 {
				t.Fatalf("drift bound %g after committed rebuild, want ~0", got)
			}
			if err := svc.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

//go:build faultinject

package chaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"csrplus/internal/core"
	"csrplus/internal/dense"
	"csrplus/internal/fault"
	"csrplus/internal/graph"
	"csrplus/internal/reload"
	"csrplus/internal/serve"
	"csrplus/internal/shard"
)

// defaultSeeds is the fixed seed matrix every chaos test iterates. CI
// runs one shard per seed (CHAOS_SEED=n narrows a run to that seed), so
// a red shard names the exact fault sequence that broke an invariant.
var defaultSeeds = []int64{101, 202, 303}

func seeds(t *testing.T) []int64 {
	t.Helper()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q is not an integer: %v", s, err)
		}
		return []int64{v}
	}
	return defaultSeeds
}

// The shared fixture: one CSR+ index over a random graph, plus its exact
// full-rank answer for every query node — the ground truth all chaos
// assertions compare against. Built once, with no faults armed.
var (
	fixtureOnce sync.Once
	fixtureIx   *core.Index
	fixtureRef  [][]float64 // ref[q][node] = exact CoSimRank(q, node)
	fixtureErr  error
)

func fixture(t *testing.T) (*core.Index, [][]float64) {
	t.Helper()
	fixtureOnce.Do(func() {
		g, err := graph.ErdosRenyi(120, 700, 42)
		if err != nil {
			fixtureErr = err
			return
		}
		ix, err := core.Precompute(g, core.Options{Rank: 8})
		if err != nil {
			fixtureErr = err
			return
		}
		ref := make([][]float64, ix.N())
		for q := range ref {
			if ref[q], err = ix.QueryOne(q); err != nil {
				fixtureErr = err
				return
			}
		}
		fixtureIx, fixtureRef = ix, ref
	})
	if fixtureErr != nil {
		t.Fatalf("building chaos fixture: %v", fixtureErr)
	}
	return fixtureIx, fixtureRef
}

func rankQuery(ix *core.Index) serve.RankQueryFunc {
	return func(ctx context.Context, queries []int, rank int, scratch *dense.Mat) (*dense.Mat, error) {
		return ix.QueryRankInto(ctx, queries, rank, scratch, nil)
	}
}

func rankedEngine(ix *core.Index) serve.Ranked {
	return serve.Ranked{N: ix.N(), Rank: ix.Rank(), Bound: ix.TruncationBound, Query: rankQuery(ix)}
}

// acceptableError reports whether err is one of the typed failures a
// client may legitimately observe under chaos. Anything else — a raw I/O
// error, a nil-map panic surfaced as text, a mangled wrap — is a bug.
func acceptableError(err error) bool {
	return errors.Is(err, fault.ErrInjected) ||
		errors.Is(err, fault.ErrAllocFailed) ||
		errors.Is(err, serve.ErrOverloaded) ||
		errors.Is(err, context.DeadlineExceeded)
}

// TestChaosQueryPathAnswersOrFailsTyped hammers the serving path while
// the engine pass randomly fails, stalls, and hits allocation failures.
// Invariants: every request resolves (answer or typed error — no drops,
// no hangs), and every answer is correct — exact at full rank, within
// the advertised entrywise bound when the batch ran degraded.
func TestChaosQueryPathAnswersOrFailsTyped(t *testing.T) {
	ix, ref := fixture(t)
	n := ix.N()
	for _, seed := range seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fault.Enable(seed)
			defer fault.Disable()
			fault.Arm(fault.SiteBatchQuery, fault.Plan{
				ErrProb: 0.25, LatencyProb: 0.25, Latency: 100 * time.Microsecond,
			})
			fault.Arm(fault.SiteScratchAlloc, fault.Plan{AllocProb: 0.15})

			sv := serve.NewRanked(rankedEngine(ix), serve.Config{
				MaxBatch:   8,
				Linger:     200 * time.Microsecond,
				Workers:    4,
				MaxPending: 256,
				Degrade:    serve.DegradeConfig{Rank: 3},
			})
			defer sv.Close()

			const goroutines, perG = 6, 30
			var wg sync.WaitGroup
			var answered, failed atomic.Int64
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						q := (g*31 + i*7) % n
						targets := []int{(q + 1) % n, (q + 17) % n, (q + 53) % n}
						ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
						res, err := sv.Score(ctx, []int{q}, targets)
						cancel()
						if err != nil {
							failed.Add(1)
							if !acceptableError(err) {
								t.Errorf("seed %d: unexpected error class: %v", seed, err)
							}
							continue
						}
						answered.Add(1)
						tol := 1e-9
						if res.Info.Degraded {
							tol += res.Info.ErrorBound
						}
						for _, p := range res.Pairs {
							if d := math.Abs(p.Score - ref[p.Query][p.Target]); d > tol {
								t.Errorf("seed %d: corrupt response: pair (%d,%d) = %g, want %g within %g",
									seed, p.Query, p.Target, p.Score, ref[p.Query][p.Target], tol)
							}
						}
					}
				}(g)
			}
			wg.Wait()

			if got := answered.Load() + failed.Load(); got != goroutines*perG {
				t.Fatalf("dropped in-flight requests: %d outcomes for %d requests", got, goroutines*perG)
			}
			if answered.Load() == 0 {
				t.Fatalf("no request survived the chaos; the fault plan is too hostile to test anything")
			}
			if fault.Injected(fault.SiteBatchQuery)+fault.Injected(fault.SiteScratchAlloc) == 0 {
				t.Fatalf("chaos never fired; the test asserted nothing")
			}
		})
	}
}

func snapshotLoader(dir string) reload.LoadFunc {
	return func(ctx context.Context) (*reload.Candidate, error) {
		ix, snap, recovered, err := core.RecoverSnapshot(dir)
		if err != nil {
			return nil, err
		}
		return &reload.Candidate{
			N:         ix.N(),
			RankQuery: rankQuery(ix),
			Rank:      ix.Rank(),
			Bound:     ix.TruncationBound,
			Meta: reload.Meta{
				Source: "snapshot", Path: snap.Path, SnapshotGen: snap.Gen,
				Recovered: recovered, Algorithm: "csrplus", N: ix.N(), Rank: ix.Rank(),
			},
		}, nil
	}
}

// TestChaosFailedReloadKeepsOldGenerationServing points a reload manager
// at a snapshot source whose reads always fail, while a hammer goroutine
// queries continuously. The failing reload must retry, report failure,
// and leave the serving generation untouched — every concurrent query
// answers exactly throughout. Disarming the site must let the next
// reload succeed and bump the generation.
func TestChaosFailedReloadKeepsOldGenerationServing(t *testing.T) {
	ix, ref := fixture(t)
	n := ix.N()
	dir := t.TempDir()
	if _, _, err := core.WriteSnapshot(dir, ix); err != nil {
		t.Fatalf("seeding snapshot dir: %v", err)
	}
	for _, seed := range seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fault.Enable(seed)
			defer fault.Disable()

			sv := serve.NewRanked(rankedEngine(ix), serve.Config{
				MaxBatch: 8, Workers: 2, MaxPending: 128,
			})
			defer sv.Close()
			boot := reload.Meta{Source: "boot", Algorithm: "csrplus", N: n, Rank: ix.Rank()}
			man := reload.NewWithPolicy(sv, snapshotLoader(dir), boot, reload.Policy{
				MaxAttempts: 2,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  4 * time.Millisecond,
			})

			stop := make(chan struct{})
			var hwg sync.WaitGroup
			hwg.Add(1)
			go func() {
				defer hwg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					q := (i * 13) % n
					tgt := (q + 11) % n
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					res, err := sv.Score(ctx, []int{q}, []int{tgt})
					cancel()
					if err != nil {
						t.Errorf("query failed during reload chaos: %v", err)
						return
					}
					if d := math.Abs(res.Pairs[0].Score - ref[q][tgt]); d > 1e-9 {
						t.Errorf("query answered wrong during reload chaos: (%d,%d) off by %g", q, tgt, d)
						return
					}
				}
			}()

			fault.Arm(fault.SiteIndexRead, fault.Plan{ErrProb: 1})
			genBefore := sv.Metrics().Generation()
			if _, err := man.Reload(context.Background()); err == nil {
				t.Fatalf("reload with a fully faulted snapshot read unexpectedly succeeded")
			}
			if got := sv.Metrics().Generation(); got != genBefore {
				t.Fatalf("failed reload moved the serving generation: %d -> %d", genBefore, got)
			}
			if sv.Metrics().ReloadRetries() == 0 {
				t.Errorf("failing reload never retried")
			}
			if got := sv.Metrics().ReloadFailures(); got != 1 {
				t.Errorf("reload failures = %d, want 1 (retries are in-run, not separate failures)", got)
			}

			fault.Disarm(fault.SiteIndexRead)
			st, err := man.Reload(context.Background())
			if err != nil {
				t.Fatalf("reload after disarming the fault: %v", err)
			}
			if st.Generation != genBefore+1 {
				t.Errorf("healthy reload produced generation %d, want %d", st.Generation, genBefore+1)
			}
			if st.Source != "snapshot" {
				t.Errorf("healthy reload source = %q, want snapshot", st.Source)
			}

			close(stop)
			hwg.Wait()
		})
	}
}

// TestChaosDegradedAnswersStayWithinAdvertisedBound forces every request
// onto the degraded path (a deadline budget no request can meet at full
// rank) with engine latency spikes armed, and checks the contract the
// paper's truncation analysis promises: the response is tagged with the
// effective rank and a bound, and every returned score is within that
// bound of the exact full-rank answer.
func TestChaosDegradedAnswersStayWithinAdvertisedBound(t *testing.T) {
	ix, ref := fixture(t)
	n := ix.N()
	const degradedRank = 2
	wantBound := ix.TruncationBound(degradedRank)
	if wantBound <= 0 {
		t.Fatalf("fixture has no truncation error at rank %d; the bound check would be vacuous", degradedRank)
	}
	for _, seed := range seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fault.Enable(seed)
			defer fault.Disable()
			fault.Arm(fault.SiteBatchQuery, fault.Plan{LatencyProb: 0.5, Latency: 200 * time.Microsecond})

			sv := serve.NewRanked(rankedEngine(ix), serve.Config{
				MaxBatch:   8,
				Workers:    2,
				MaxPending: 128,
				Timeout:    5 * time.Second,
				Degrade:    serve.DegradeConfig{Rank: degradedRank, MinBudget: time.Hour},
			})
			defer sv.Close()

			for i := 0; i < 25; i++ {
				q := (i*17 + int(seed)) % n
				res, err := sv.Search(context.Background(), []int{q}, 5)
				if err != nil {
					t.Fatalf("degraded search %d: %v", i, err)
				}
				info := res.Info
				if !info.Degraded || info.EffectiveRank != degradedRank || info.FullRank != ix.Rank() {
					t.Fatalf("budget-pressured answer not tagged degraded as configured: %+v", info)
				}
				if math.Abs(info.ErrorBound-wantBound) > 1e-12 {
					t.Fatalf("advertised bound %g, want engine's TruncationBound(%d) = %g",
						info.ErrorBound, degradedRank, wantBound)
				}
				for _, m := range res.Matches {
					if d := math.Abs(m.Score - ref[q][m.Node]); d > info.ErrorBound+1e-12 {
						t.Errorf("degraded score outside advertised bound: query %d node %d: |%g - %g| = %g > %g",
							q, m.Node, m.Score, ref[q][m.Node], d, info.ErrorBound)
					}
				}
			}
		})
	}
}

// TestChaosTornSnapshotWritesAlwaysRecoverable tears and fails snapshot
// publishes — short index writes, failed fsyncs, torn CURRENT pointers —
// and after every attempt requires RecoverSnapshot to produce an intact
// index that answers exactly. Disarming must restore clean publishes
// with CURRENT pointing at the newest generation.
func TestChaosTornSnapshotWritesAlwaysRecoverable(t *testing.T) {
	ix, ref := fixture(t)
	n := ix.N()
	probe := 7 % n
	for _, seed := range seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			if _, _, err := core.WriteSnapshot(dir, ix); err != nil {
				t.Fatalf("seeding snapshot dir: %v", err)
			}
			fault.Enable(seed)
			defer fault.Disable()
			fault.Arm(fault.SiteIndexWrite, fault.Plan{TornProb: 0.4, TornBytes: 128, ErrProb: 0.2})
			fault.Arm(fault.SiteIndexSync, fault.Plan{ErrProb: 0.3})
			fault.Arm(fault.SiteCurrentWrite, fault.Plan{TornProb: 0.3, TornBytes: 3, ErrProb: 0.2})

			for i := 0; i < 8; i++ {
				_, _, werr := core.WriteSnapshot(dir, ix)
				rix, _, _, err := core.RecoverSnapshot(dir)
				if err != nil {
					t.Fatalf("write attempt %d (err=%v) left the snapshot dir unrecoverable: %v", i, werr, err)
				}
				if rix.N() != n {
					t.Fatalf("recovered index has n=%d, want %d", rix.N(), n)
				}
				col, err := rix.QueryOne(probe)
				if err != nil {
					t.Fatalf("recovered index cannot answer: %v", err)
				}
				for node, s := range col {
					if math.Abs(s-ref[probe][node]) > 1e-12 {
						t.Fatalf("recovered index answers differently at node %d: %g vs %g", node, s, ref[probe][node])
					}
				}
			}
			if fault.Injected(fault.SiteIndexWrite)+fault.Injected(fault.SiteIndexSync)+
				fault.Injected(fault.SiteCurrentWrite) == 0 {
				t.Fatalf("chaos never fired; the test asserted nothing")
			}

			fault.Disarm(fault.SiteIndexWrite)
			fault.Disarm(fault.SiteIndexSync)
			fault.Disarm(fault.SiteCurrentWrite)
			gen, path, err := core.WriteSnapshot(dir, ix)
			if err != nil {
				t.Fatalf("clean publish after disarm: %v", err)
			}
			gotPath, gotGen, err := core.CurrentSnapshot(dir)
			if err != nil || gotGen != gen || gotPath != path {
				t.Fatalf("CURRENT after clean publish: (%q, %d, %v), want (%q, %d)", gotPath, gotGen, err, path, gen)
			}
			if _, snap, recovered, err := core.RecoverSnapshot(dir); err != nil || recovered || snap.Gen != gen {
				t.Fatalf("recovery after clean publish: gen=%d recovered=%v err=%v, want gen=%d recovered=false",
					snap.Gen, recovered, err, gen)
			}
		})
	}
}

// shardFixtureB builds a second index with the same shape parameters as
// the main fixture (n, rank, damping) but different factors — the "next
// generation" a rolling reload tries to install.
func shardFixtureB(t *testing.T) *core.Index {
	t.Helper()
	ix, _ := fixture(t)
	g, err := graph.ErdosRenyi(ix.N(), 650, 1042)
	if err != nil {
		t.Fatal(err)
	}
	ixB, err := core.Precompute(g, core.Options{Rank: ix.Rank()})
	if err != nil {
		t.Fatal(err)
	}
	return ixB
}

// sliceRouter cuts ix by plan into a fresh shard set.
func sliceShards(t *testing.T, ix *core.Index, plan shard.Plan) []*core.IndexShard {
	t.Helper()
	shards := make([]*core.IndexShard, plan.K())
	for s := range shards {
		lo, hi := plan.Range(s)
		sh, err := ix.Shard(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		shards[s] = sh
	}
	return shards
}

// TestChaosShardReloadFailureServesOldGenerationOnThatShardOnly is the
// sharded rolling-reload scenario: per-shard snapshot directories hold a
// new generation, but one shard's snapshot read fails (injected, chosen
// by seed). The roll must stop at that slot, leaving slots before it on
// the new factors and the failed slot onward on the old — and the router
// must keep answering every concurrent query successfully throughout,
// with post-roll answers bitwise-equal to a reference router assembled
// over exactly that piecewise factor set. Disarming the site must let
// the next roll converge every slot to the new index.
func TestChaosShardReloadFailureServesOldGenerationOnThatShardOnly(t *testing.T) {
	ixA, _ := fixture(t)
	ixB := shardFixtureB(t)
	const K = 3
	for _, seed := range seeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fault.Enable(seed)
			defer fault.Disable()
			failSlot := int(seed) % K

			rt, err := shard.NewRouterFromIndex(ixA, K)
			if err != nil {
				t.Fatal(err)
			}
			// Publish the next generation as per-shard snapshots.
			root := t.TempDir()
			for s, sh := range sliceShards(t, ixB, rt.Plan()) {
				if _, _, err := core.WriteShardSnapshot(core.ShardDir(root, s), sh); err != nil {
					t.Fatal(err)
				}
			}
			// The loader reads each slot's snapshot through the injected
			// read path; the chosen slot's storage "fails" deterministically.
			var injected atomic.Int64
			loader := func(ctx context.Context, s, lo, hi int) (*core.IndexShard, error) {
				if s == failSlot {
					fault.Arm(fault.SiteIndexRead, fault.Plan{ErrProb: 1})
					defer func() {
						injected.Add(fault.Injected(fault.SiteIndexRead))
						fault.Disarm(fault.SiteIndexRead)
					}()
				}
				sh, _, _, err := core.RecoverShardSnapshot(core.ShardDir(root, s))
				return sh, err
			}

			// Hammer the router from several goroutines for the duration of
			// the failing roll: zero failed requests, finite scores only.
			stop := make(chan struct{})
			var hammers sync.WaitGroup
			queries := []int{3, 50, 110}
			for w := 0; w < 4; w++ {
				hammers.Add(1)
				go func() {
					defer hammers.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						items, err := rt.TopK(context.Background(), queries, 10)
						if err != nil {
							t.Errorf("seed %d: query failed during failing roll: %v", seed, err)
							return
						}
						for _, it := range items {
							if math.IsNaN(it.Score) || math.IsInf(it.Score, 0) {
								t.Errorf("seed %d: non-finite score during failing roll", seed)
								return
							}
						}
					}
				}()
			}

			swapped, err := reload.RollShards(context.Background(), rt, loader)
			close(stop)
			hammers.Wait()
			// The injected read failure surfaces as the typed "no loadable
			// snapshot" error: recovery tried every generation through the
			// failing reader and exhausted the ladder.
			if !errors.Is(err, core.ErrNoSnapshot) {
				t.Fatalf("seed %d: roll error = %v, want ErrNoSnapshot", seed, err)
			}
			if injected.Load() == 0 {
				t.Fatalf("seed %d: chaos never fired; the test asserted nothing", seed)
			}
			if swapped != failSlot {
				t.Fatalf("seed %d: swapped %d slots before failing slot %d", seed, swapped, failSlot)
			}
			for s, gen := range rt.Generations() {
				want := uint64(1)
				if s < failSlot {
					want = 2
				}
				if gen != want {
					t.Fatalf("seed %d: generations = %v; slot %d at %d, want %d",
						seed, rt.Generations(), s, gen, want)
				}
			}

			// Post-roll answers are exactly the piecewise index: new factors
			// before the failed slot, old from it onward.
			mixed := sliceShards(t, ixA, rt.Plan())
			for s := 0; s < failSlot; s++ {
				mixed[s] = sliceShards(t, ixB, rt.Plan())[s]
			}
			ref, err := shard.NewRouter(mixed)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.QueryRankInto(context.Background(), queries, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rt.QueryRankInto(context.Background(), queries, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want, 0) {
				t.Fatalf("seed %d: post-failure answers are not the piecewise index's", seed)
			}

			// Storage "recovers": the next roll must converge every slot.
			if _, err := reload.RollShards(context.Background(), rt, loader2(root)); err != nil {
				t.Fatalf("seed %d: convergence roll: %v", seed, err)
			}
			wantB, err := ixB.QueryRankInto(context.Background(), queries, 0, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			gotB, err := rt.QueryRankInto(context.Background(), queries, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !gotB.Equal(wantB, 0) {
				t.Fatalf("seed %d: converged router does not answer from the new index", seed)
			}
		})
	}
}

// loader2 is the recovered-storage shard loader: plain per-shard
// snapshot reads with no faults armed.
func loader2(root string) reload.ShardLoadFunc {
	return func(ctx context.Context, s, lo, hi int) (*core.IndexShard, error) {
		sh, _, _, err := core.RecoverShardSnapshot(core.ShardDir(root, s))
		return sh, err
	}
}

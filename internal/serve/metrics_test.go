package serve

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum != 556.5 {
		t.Fatalf("sum = %v", s.Sum)
	}
	if s.Mean != 556.5/5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	// Cumulative ("le") semantics: 0.5 and 1 fall in le=1; 5 in le=10;
	// 50 in le=100; 500 in +Inf.
	wantCum := []int64{2, 3, 4, 5}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d (le=%v) = %d, want %d", i, b.Le, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[len(s.Buckets)-1].Le, 1) {
		t.Fatal("last bucket is not +Inf")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(w%4) + 0.5)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
	if s.Buckets[len(s.Buckets)-1].Count != 8000 {
		t.Fatal("cumulative +Inf bucket lost observations")
	}
}

func TestMetricsSnapshotIsJSONEncodable(t *testing.T) {
	m := NewMetrics()
	m.admitted.Add(3)
	m.batches.Add(2)
	m.nodes.Add(5)
	m.CacheHit()
	m.CacheMiss()
	m.CacheEvict()
	m.CacheRefresh()
	m.Latency.Observe(0.002)
	m.BatchOccupancy.Observe(3)

	snap := m.Snapshot()
	if snap["mean_batch_occupancy"].(float64) != 2.5 {
		t.Fatalf("mean occupancy = %v", snap["mean_batch_occupancy"])
	}
	if snap["cache_hit_ratio"].(float64) != 0.5 {
		t.Fatalf("hit ratio = %v", snap["cache_hit_ratio"])
	}
	if snap["cache_evictions"].(int64) != 1 {
		t.Fatalf("evictions = %v", snap["cache_evictions"])
	}
	if snap["cache_refreshes"].(int64) != 1 {
		t.Fatalf("refreshes = %v", snap["cache_refreshes"])
	}
	// The /metrics endpoint serialises this map; +Inf bucket bounds must
	// not break encoding/json (they are rendered via the bucket list).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
}

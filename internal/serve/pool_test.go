package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		p.Submit(func() {
			defer wg.Done()
			ran.Add(1)
		})
	}
	wg.Wait()
	p.Close()
	if ran.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", ran.Load())
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		p.Submit(func() {
			defer wg.Done()
			cur := inFlight.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
		})
	}
	wg.Wait()
	p.Close()
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent tasks, bound is %d", got, workers)
	}
}

func TestPoolCloseWaitsForInFlight(t *testing.T) {
	p := NewPool(2)
	var done atomic.Bool
	p.Submit(func() {
		time.Sleep(10 * time.Millisecond)
		done.Store(true)
	})
	p.Close() // must block until the sleeping task finishes
	if !done.Load() {
		t.Fatal("Close returned before the in-flight task completed")
	}
	p.Close() // idempotent
}

func TestPoolMinimumOneWorker(t *testing.T) {
	p := NewPool(0)
	ch := make(chan struct{})
	p.Submit(func() { close(ch) })
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("task never ran")
	}
	p.Close()
}

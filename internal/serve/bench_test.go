package serve

import (
	"context"
	"testing"

	"csrplus/internal/dense"
)

// BenchmarkSearchHotPath measures the full per-request serving path —
// admission, batching, the engine call, top-k selection — over a trivial
// engine, so the framework itself (including the fault-injection hooks
// on the batch and scratch-allocation sites) is what is timed. Run it
// with and without -tags faultinject to confirm the instrumentation is
// free in production builds and within noise when compiled in but
// unarmed:
//
//	go test -run='^$' -bench=SearchHotPath ./internal/serve/
//	go test -run='^$' -bench=SearchHotPath -tags faultinject ./internal/serve/
func BenchmarkSearchHotPath(b *testing.B) {
	const n = 2048
	queryFn := func(ctx context.Context, queries []int, rank int, scratch *dense.Mat) (*dense.Mat, error) {
		if scratch == nil {
			return dense.NewMat(n, len(queries)), nil
		}
		return scratch.Reuse(n, len(queries)), nil
	}
	sv := NewRanked(
		Ranked{N: n, Rank: 8, Bound: func(int) float64 { return 0 }, Query: queryFn},
		Config{MaxBatch: 1, Workers: 1, MaxPending: 64},
	)
	defer sv.Close()

	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sv.Search(ctx, []int{i % n}, 10); err != nil {
			b.Fatal(err)
		}
	}
}

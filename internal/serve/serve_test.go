package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"csrplus/internal/cache"
)

// rankEngine serves columns with a distinct, known ranking: the column of
// node q scores node i as 1/(1+|i-q|), so nearer ids are more similar.
type rankEngine struct {
	n     int
	calls atomic.Int64
	delay time.Duration
}

func (e *rankEngine) query(queries []int) ([][]float64, error) {
	e.calls.Add(1)
	if e.delay > 0 {
		time.Sleep(e.delay)
	}
	out := make([][]float64, len(queries))
	for j, q := range queries {
		col := make([]float64, e.n)
		for i := range col {
			d := i - q
			if d < 0 {
				d = -d
			}
			col[i] = 1 / float64(1+d)
		}
		out[j] = col
	}
	return out, nil
}

func newTestServer(t *testing.T, eng *rankEngine, cfg Config) *Server {
	t.Helper()
	s := New(eng.n, eng.query, cfg)
	t.Cleanup(s.Close)
	return s
}

func TestServerTopKSingle(t *testing.T) {
	eng := &rankEngine{n: 6}
	s := newTestServer(t, eng, Config{Linger: -1})
	matches, cached, err := s.TopK(context.Background(), []int{2}, 3)
	if err != nil || cached {
		t.Fatalf("err=%v cached=%v", err, cached)
	}
	want := []int{1, 3, 0} // 0.5, 0.5 (tie -> smaller id), 1/3
	if len(matches) != 3 {
		t.Fatalf("matches = %v", matches)
	}
	for i, w := range want {
		if matches[i].Node != w {
			t.Fatalf("matches = %v, want nodes %v", matches, want)
		}
	}
}

func TestServerTopKMultiAggregates(t *testing.T) {
	eng := &rankEngine{n: 6}
	s := newTestServer(t, eng, Config{Linger: -1})
	matches, _, err := s.TopK(context.Background(), []int{1, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate similarity peaks at 2 and 3 once the query nodes
	// themselves are excluded.
	if len(matches) != 2 || matches[0].Node != 2 || matches[1].Node != 3 {
		t.Fatalf("matches = %v, want nodes [2 3]", matches)
	}
}

func TestServerTopKClampsKToN(t *testing.T) {
	eng := &rankEngine{n: 6}
	s := newTestServer(t, eng, Config{Linger: -1, MaxK: 100})
	matches, _, err := s.TopK(context.Background(), []int{0}, 50)
	if err != nil {
		t.Fatalf("k above n should clamp, got %v", err)
	}
	if len(matches) != 5 { // n-1: every node except the query itself
		t.Fatalf("got %d matches, want 5", len(matches))
	}
}

func TestServerValidation(t *testing.T) {
	eng := &rankEngine{n: 6}
	s := newTestServer(t, eng, Config{Linger: -1, MaxK: 10})
	ctx := context.Background()
	cases := []func() error{
		func() error { _, _, err := s.TopK(ctx, nil, 3); return err },
		func() error { _, _, err := s.TopK(ctx, []int{99}, 3); return err },
		func() error { _, _, err := s.TopK(ctx, []int{-1}, 3); return err },
		func() error { _, _, err := s.TopK(ctx, []int{1}, 0); return err },
		func() error { _, _, err := s.TopK(ctx, []int{1}, 11); return err }, // beyond MaxK
		func() error { _, err := s.Similarity(ctx, []int{1}, nil); return err },
		func() error { _, err := s.Similarity(ctx, []int{1}, []int{99}); return err },
		func() error { _, err := s.Similarity(ctx, []int{99}, []int{1}); return err },
	}
	for i, call := range cases {
		if err := call(); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("case %d: err = %v, want ErrBadRequest", i, err)
		}
	}
	if eng.calls.Load() != 0 {
		t.Fatalf("invalid requests reached the engine %d times", eng.calls.Load())
	}
	if got := s.Metrics().Snapshot()["requests_rejected"].(int64); got != int64(len(cases)) {
		t.Fatalf("rejected = %d, want %d", got, len(cases))
	}
}

func TestServerSimilarityPairs(t *testing.T) {
	eng := &rankEngine{n: 6}
	s := newTestServer(t, eng, Config{Linger: -1})
	pairs, err := s.Similarity(context.Background(), []int{2}, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 || pairs[0].Score != 1 || pairs[1].Score != 0.5 {
		t.Fatalf("pairs = %v", pairs)
	}
}

// TestServerCoalescing is the ISSUE's acceptance test: N concurrent
// single-node requests must produce strictly fewer than N engine calls.
func TestServerCoalescing(t *testing.T) {
	// The 1ms engine keeps both workers busy so concurrent arrivals
	// coalesce rather than each flushing to an idle worker.
	eng := &rankEngine{n: 64, delay: time.Millisecond}
	s := newTestServer(t, eng, Config{MaxBatch: 64, Linger: 20 * time.Millisecond, Workers: 2})

	const clients = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			if _, _, err := s.TopK(context.Background(), []int{i}, 5); err != nil {
				t.Error(err)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	if calls := eng.calls.Load(); calls >= clients {
		t.Fatalf("%d engine calls for %d concurrent requests; batching is off", calls, clients)
	}
	snap := s.Metrics().Snapshot()
	if snap["mean_batch_occupancy"].(float64) <= 1 {
		t.Fatalf("mean batch occupancy %v, want > 1", snap["mean_batch_occupancy"])
	}
}

func TestServerCacheInstrumented(t *testing.T) {
	eng := &rankEngine{n: 6}
	lru := cache.New(8)
	s := newTestServer(t, eng, Config{Linger: -1, Cache: lru})

	if _, cached, err := s.TopK(context.Background(), []int{1}, 3); err != nil || cached {
		t.Fatalf("first call: cached=%v err=%v", cached, err)
	}
	m1, _, err := s.TopK(context.Background(), []int{1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, cached, err := s.TopK(context.Background(), []int{1}, 3)
	if err != nil || !cached {
		t.Fatalf("repeat call not cached: cached=%v err=%v", cached, err)
	}
	if eng.calls.Load() != 1 {
		t.Fatalf("engine called %d times, want 1", eng.calls.Load())
	}
	if len(m1) != 3 {
		t.Fatalf("cached matches = %v", m1)
	}
	// Cache events flowed into the serving metrics via cache.Recorder.
	snap := s.Metrics().Snapshot()
	if snap["cache_hits"].(int64) < 1 || snap["cache_misses"].(int64) < 1 {
		t.Fatalf("cache not instrumented: %v", snap)
	}
	if snap["cache_hit_ratio"].(float64) <= 0 {
		t.Fatalf("hit ratio %v", snap["cache_hit_ratio"])
	}
}

func TestServerTimeout(t *testing.T) {
	eng := &rankEngine{n: 6, delay: 50 * time.Millisecond}
	s := newTestServer(t, eng, Config{Linger: -1, Timeout: 5 * time.Millisecond})
	_, _, err := s.TopK(context.Background(), []int{1}, 3)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestServerClose(t *testing.T) {
	eng := &rankEngine{n: 6}
	s := New(eng.n, eng.query, Config{Linger: -1})
	if _, _, err := s.TopK(context.Background(), []int{1}, 3); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, _, err := s.TopK(context.Background(), []int{1}, 3); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

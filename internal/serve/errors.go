package serve

import "errors"

// Typed errors returned by the serving layer. HTTP frontends map them to
// status codes (see cmd/csrserver): ErrOverloaded -> 429, ErrClosed -> 503,
// ErrBadRequest -> 400, context deadline expiry -> 504.
var (
	// ErrOverloaded is returned when the admission queue is full; the
	// request was shed without touching the engine.
	ErrOverloaded = errors.New("serve: overloaded, request shed")

	// ErrClosed is returned once Close has begun: the server no longer
	// admits requests (in-flight batches still complete).
	ErrClosed = errors.New("serve: server closed")

	// ErrBadRequest wraps every request-validation failure (bad node id,
	// bad k, empty query set) so frontends can distinguish caller errors
	// from server-side ones with errors.Is.
	ErrBadRequest = errors.New("serve: bad request")
)

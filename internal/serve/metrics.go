package serve

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
)

// Metrics is the serving layer's registry of lock-free counters and
// histograms. One instance is shared by the batcher, the worker pool, the
// admission gate and (via the cache.Recorder interface) the result cache,
// so a single Snapshot describes the whole serving path. All methods are
// safe for concurrent use.
type Metrics struct {
	admitted   atomic.Int64 // requests accepted into the queue
	shed       atomic.Int64 // requests rejected with ErrOverloaded
	rejected   atomic.Int64 // requests rejected with ErrBadRequest / ErrClosed
	expired    atomic.Int64 // requests whose context ended before a result
	batches    atomic.Int64 // engine calls issued
	nodes      atomic.Int64 // unique query nodes across all batches
	queueDepth atomic.Int64 // requests admitted but not yet answered

	degraded        atomic.Int64 // requests answered at truncated rank
	degradedBatches atomic.Int64 // engine calls run at truncated rank

	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheEvictions atomic.Int64
	cacheRefreshes atomic.Int64

	generation     atomic.Uint64 // engine generation taking new requests
	shards         atomic.Int64  // shard count of the serving backend; 0 = unsharded
	reloads        atomic.Int64  // successful generation swaps after boot
	reloadFailures atomic.Int64  // reload runs that never swapped
	reloadRetries  atomic.Int64  // in-run retry attempts after a failed pass

	// Latency covers admission -> response for answered requests, in
	// seconds. BatchOccupancy counts unique query nodes per engine call —
	// the direct measure of how much multi-source coalescing is happening.
	// ReloadDuration covers candidate load + validation + swap for
	// successful reloads, in seconds.
	Latency        *Histogram
	BatchOccupancy *Histogram
	ReloadDuration *Histogram

	extraMu sync.Mutex
	extra   map[string]func() any
}

// NewMetrics returns a registry with the default bucket layouts.
func NewMetrics() *Metrics {
	return &Metrics{
		Latency: NewHistogram(
			100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3,
			10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1),
		BatchOccupancy: NewHistogram(1, 2, 4, 8, 16, 32, 64, 128, 256),
		ReloadDuration: NewHistogram(0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60, 300),
	}
}

// CacheHit, CacheMiss, CacheEvict and CacheRefresh implement
// cache.Recorder so an LRU can be instrumented with SetRecorder(metrics).
func (m *Metrics) CacheHit()     { m.cacheHits.Add(1) }
func (m *Metrics) CacheMiss()    { m.cacheMisses.Add(1) }
func (m *Metrics) CacheEvict()   { m.cacheEvictions.Add(1) }
func (m *Metrics) CacheRefresh() { m.cacheRefreshes.Add(1) }

// Admitted, Shed, Expired, Batches and QueueDepth expose the counters the
// tests and the /stats endpoint read directly.
func (m *Metrics) Admitted() int64   { return m.admitted.Load() }
func (m *Metrics) Shed() int64       { return m.shed.Load() }
func (m *Metrics) Expired() int64    { return m.expired.Load() }
func (m *Metrics) Batches() int64    { return m.batches.Load() }
func (m *Metrics) QueueDepth() int64 { return m.queueDepth.Load() }

// Degraded counts requests answered at a truncated rank;
// DegradedBatches counts the engine calls that ran truncated.
func (m *Metrics) Degraded() int64        { return m.degraded.Load() }
func (m *Metrics) DegradedBatches() int64 { return m.degradedBatches.Load() }

// SetGeneration records the engine generation now taking new requests;
// Server.Swap is the only writer. Generation reads the gauge.
func (m *Metrics) SetGeneration(gen uint64) { m.generation.Store(gen) }
func (m *Metrics) Generation() uint64       { return m.generation.Load() }

// SetShards records the shard count of the serving backend (0 =
// unsharded); Shards reads the gauge back.
func (m *Metrics) SetShards(k int) { m.shards.Store(int64(k)) }
func (m *Metrics) Shards() int64   { return m.shards.Load() }

// ReloadSucceeded counts one completed hot reload and its duration;
// ReloadFailed counts an attempt that was abandoned before the swap (the
// old generation kept serving). Reloads and ReloadFailures read back the
// counters.
func (m *Metrics) ReloadSucceeded(seconds float64) {
	m.reloads.Add(1)
	m.ReloadDuration.Observe(seconds)
}
func (m *Metrics) ReloadFailed()         { m.reloadFailures.Add(1) }
func (m *Metrics) Reloads() int64        { return m.reloads.Load() }
func (m *Metrics) ReloadFailures() int64 { return m.reloadFailures.Load() }

// ReloadRetried counts one in-run retry (a failed lifecycle pass that is
// being attempted again after backoff); ReloadRetries reads it back.
func (m *Metrics) ReloadRetried()       { m.reloadRetries.Add(1) }
func (m *Metrics) ReloadRetries() int64 { return m.reloadRetries.Load() }

// RegisterExtra merges a named producer into every Snapshot: fn runs at
// snapshot time and its value lands under name. The wire router registers
// its per-shard client stats this way, so /metrics describes the whole
// serving path without the registry knowing the stats' shape. A later
// registration under the same name replaces the earlier one.
func (m *Metrics) RegisterExtra(name string, fn func() any) {
	m.extraMu.Lock()
	defer m.extraMu.Unlock()
	if m.extra == nil {
		m.extra = make(map[string]func() any)
	}
	m.extra[name] = fn
}

// Snapshot renders every counter and histogram as a JSON-encodable map,
// the payload of the /metrics endpoint.
func (m *Metrics) Snapshot() map[string]interface{} {
	batches := m.batches.Load()
	nodes := m.nodes.Load()
	mean := 0.0
	if batches > 0 {
		mean = float64(nodes) / float64(batches)
	}
	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	out := map[string]interface{}{
		"requests_admitted":    m.admitted.Load(),
		"requests_shed":        m.shed.Load(),
		"requests_rejected":    m.rejected.Load(),
		"requests_expired":     m.expired.Load(),
		"engine_batches":       batches,
		"batched_nodes":        nodes,
		"mean_batch_occupancy": mean,
		"queue_depth":          m.queueDepth.Load(),
		"requests_degraded":    m.degraded.Load(),
		"degraded_batches":     m.degradedBatches.Load(),
		"cache_hits":           hits,
		"cache_misses":         misses,
		"cache_evictions":      m.cacheEvictions.Load(),
		"cache_refreshes":      m.cacheRefreshes.Load(),
		"cache_hit_ratio":      ratio,
		"generation":           m.generation.Load(),
		"shard_count":          m.shards.Load(),
		"reloads":              m.reloads.Load(),
		"reload_failures":      m.reloadFailures.Load(),
		"reload_retries":       m.reloadRetries.Load(),
		"reload_seconds":       m.ReloadDuration.Snapshot(),
		"latency_seconds":      m.Latency.Snapshot(),
		"batch_occupancy":      m.BatchOccupancy.Snapshot(),
	}
	m.extraMu.Lock()
	for name, fn := range m.extra {
		out[name] = fn()
	}
	m.extraMu.Unlock()
	return out
}

// Histogram is a fixed-bucket cumulative histogram with atomic counters.
// Bounds are upper-inclusive ("le" semantics); observations above the last
// bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Bucket is one histogram cell of a snapshot: count of observations with
// value <= Le (cumulative, Prometheus-style).
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// MarshalJSON renders the +Inf bound as the string "+Inf" (Prometheus
// convention), since encoding/json rejects infinite float64 values.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.Le, 1) {
		le = strconv.FormatFloat(b.Le, 'g', -1, 64)
	}
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, le, b.Count)), nil
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot returns cumulative bucket counts plus count/sum/mean.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sum.Load()),
		Buckets: make([]Bucket, 0, len(h.bounds)+1),
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		s.Buckets = append(s.Buckets, Bucket{Le: b, Count: cum})
	}
	cum += h.counts[len(h.bounds)].Load()
	s.Buckets = append(s.Buckets, Bucket{Le: math.Inf(1), Count: cum})
	return s
}

package serve

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"csrplus/internal/fault"
)

// QueryFunc answers one multi-source engine pass: cols[j] is the full
// similarity column of queries[j]. csrplus.(*Engine).Query satisfies it.
type QueryFunc func(queries []int) ([][]float64, error)

// batchQueryFunc is the batcher's internal engine signature: one
// multi-source pass at a chosen rank (0 = full), honouring ctx so an
// abandoned batch can stop mid-pass. The public QueryFunc / MatQueryFunc /
// RankQueryFunc flavours are all adapted onto it.
type batchQueryFunc func(ctx context.Context, queries []int, rank int) ([][]float64, error)

// Batcher coalesces concurrent column requests into multi-source engine
// calls. The paper's complexity bound O(r(m + n(r + |Q|))) makes the
// marginal cost of one more query node tiny next to the per-call
// O(r(m + nr)) floor, so |Q| requests answered by one pass cost far less
// than |Q| passes — the same economics as dynamic batching in inference
// serving. A pending batch flushes when it reaches maxBatch unique nodes,
// when a pool worker is idle (waiting longer would add latency without
// improving throughput), or — with every worker busy — when the linger
// window expires. Duplicate nodes across co-batched requests are computed
// once and shared.
//
// When a degraded rank is configured, a batch runs truncated — trading
// accuracy bounded by the factor tail for an r'/r cost reduction — if any
// of its requests asked for degradation (deadline pressure, decided at
// admission) or the batcher itself is under load pressure at flush time
// (queue depth past the threshold, or requests shed since the last
// batch). The effective rank travels back with every response so callers
// can tag what they served.
type Batcher struct {
	queryFn  batchQueryFunc
	maxBatch int
	linger   time.Duration
	strict   bool
	metrics  *Metrics
	pool     *Pool

	degradedRank  int   // truncated rank under pressure; 0 = never degrade
	overloadDepth int64 // queue depth that counts as pressure; 0 = disabled
	prevShed      atomic.Int64

	mu     sync.RWMutex // guards closed vs. queue sends
	closed bool
	queue  chan *request
	done   chan struct{} // dispatch loop exited
	once   sync.Once
}

type request struct {
	ctx     context.Context
	nodes   []int
	degrade bool          // admission-time vote to answer truncated
	out     chan response // buffered(1): abandoned callers never block a worker
}

type response struct {
	cols map[int][]float64
	rank int // effective rank of the answering pass; 0 = full
	err  error
}

// NewBatcher starts the dispatch loop and worker pool over a plain
// QueryFunc engine (always full rank; the engine is only consulted after
// a context check). maxBatch is the most unique nodes per engine call — a
// request that would push a batch past it is left to seed the next batch,
// so the bound holds whenever no single request alone exceeds it
// (requests are indivisible: one whose own node set tops maxBatch forms
// its own oversized batch). linger is the longest a request waits for
// co-batching (0 batches only what is already queued), maxPending the
// admission bound beyond which requests are shed, workers the concurrent
// engine calls. strict disables the idle-worker eager flush: partial
// batches always wait for the size or linger trigger, maximising batch
// occupancy (throughput) at the cost of light-load latency.
func NewBatcher(queryFn QueryFunc, maxBatch int, linger time.Duration, maxPending, workers int, strict bool, m *Metrics) *Batcher {
	return newBatcher(wrapQuery(queryFn), maxBatch, linger, maxPending, workers, strict, m, 0, 0)
}

// newBatcher is the full-control constructor used by Server: degradedRank
// and overloadDepth wire the graceful-degradation policy (both 0 for
// backends without rank structure).
func newBatcher(queryFn batchQueryFunc, maxBatch int, linger time.Duration, maxPending, workers int, strict bool, m *Metrics, degradedRank int, overloadDepth int64) *Batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if maxPending < 1 {
		maxPending = 1
	}
	if m == nil {
		m = NewMetrics()
	}
	b := &Batcher{
		queryFn:       queryFn,
		maxBatch:      maxBatch,
		linger:        linger,
		strict:        strict,
		metrics:       m,
		pool:          NewPool(workers),
		degradedRank:  degradedRank,
		overloadDepth: overloadDepth,
		queue:         make(chan *request, maxPending),
		done:          make(chan struct{}),
	}
	go b.run()
	return b
}

// Columns returns the similarity column of every requested node, batched
// with whatever else is in flight. The returned map is shared read-only
// across co-batched callers. Fails fast with ErrOverloaded when the
// admission queue is full, ErrClosed after Close, and ctx.Err() when the
// caller's deadline expires before the batch completes.
func (b *Batcher) Columns(ctx context.Context, nodes []int) (map[int][]float64, error) {
	cols, _, err := b.ColumnsDegrade(ctx, nodes, false)
	return cols, err
}

// ColumnsDegrade is Columns with a degradation vote: degrade asks the
// answering batch to run at the truncated rank. The returned rank is the
// effective rank of the pass that answered (0 = full) — it can be
// truncated even when this caller did not ask (overload pressure, or a
// co-batched caller's vote), and full when it did (degradation not
// configured on this backend).
func (b *Batcher) ColumnsDegrade(ctx context.Context, nodes []int, degrade bool) (map[int][]float64, int, error) {
	req := &request{ctx: ctx, nodes: nodes, degrade: degrade, out: make(chan response, 1)}

	// The read-lock spans only the non-blocking enqueue, so Close's write
	// lock cannot be acquired mid-send: after Close sets closed, no sender
	// can be inside this critical section when the queue is closed.
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		b.metrics.rejected.Add(1)
		return nil, 0, ErrClosed
	}
	select {
	case b.queue <- req:
		b.mu.RUnlock()
		b.metrics.admitted.Add(1)
		b.metrics.queueDepth.Add(1)
	default:
		b.mu.RUnlock()
		b.metrics.shed.Add(1)
		return nil, 0, ErrOverloaded
	}

	select {
	case resp := <-req.out:
		return resp.cols, resp.rank, resp.err
	case <-ctx.Done():
		b.metrics.expired.Add(1)
		return nil, 0, ctx.Err()
	}
}

// Close stops admission, flushes every pending request, waits for
// in-flight batches to finish, and returns. Idempotent.
func (b *Batcher) Close() {
	b.once.Do(func() {
		b.mu.Lock()
		b.closed = true
		b.mu.Unlock()
		close(b.queue)
		<-b.done
		b.pool.Close()
	})
}

// run is the dispatch loop: it accumulates requests, tracking the unique
// node set, and flushes to the worker pool on size or linger triggers.
func (b *Batcher) run() {
	defer close(b.done)
	var (
		pending []*request
		uniq    = make(map[int]struct{})
		timer   *time.Timer
		lingerC <-chan time.Time
	)
	absorb := func(req *request) {
		pending = append(pending, req)
		for _, n := range req.nodes {
			uniq[n] = struct{}{}
		}
	}
	// overflows reports whether absorbing req would push the batch past
	// maxBatch unique nodes. A request is indivisible, so the bound can
	// only be respected by leaving req for the next batch — except when
	// the batch is empty, where a single oversized request necessarily
	// forms its own (oversized) batch.
	overflows := func(req *request) bool {
		if len(pending) == 0 {
			return false
		}
		fresh := 0
		for _, n := range req.nodes {
			if _, ok := uniq[n]; !ok {
				fresh++
			}
		}
		return len(uniq)+fresh > b.maxBatch
	}
	flush := func() {
		if len(pending) == 0 {
			return
		}
		batch := pending
		pending = nil
		uniq = make(map[int]struct{})
		if timer != nil {
			timer.Stop()
		}
		lingerC = nil
		b.pool.Submit(func() { b.runBatch(batch) })
	}
	for {
		select {
		case req, ok := <-b.queue:
			if !ok {
				flush()
				return
			}
			// A request that would overflow the unique-node bound closes
			// the current batch (it is as full as it can get) and seeds
			// the next one.
			if overflows(req) {
				flush()
			}
			absorb(req)
			// Greedily absorb whatever is already queued: back-to-back
			// arrivals batch together even with linger = 0.
		drain:
			for len(uniq) < b.maxBatch {
				select {
				case more, ok := <-b.queue:
					if !ok {
						flush()
						return
					}
					if overflows(more) {
						flush()
					}
					absorb(more)
				default:
					break drain
				}
			}
			// Flush now if the batch is full, lingering is disabled, or
			// (outside strict mode) a worker would otherwise sit idle —
			// holding a partial batch only pays when every worker is busy
			// anyway. Otherwise arm the linger timer as the upper bound
			// on queueing delay.
			if len(uniq) >= b.maxBatch || b.linger <= 0 || (!b.strict && b.pool.Idle()) {
				flush()
			} else if lingerC == nil {
				timer = time.NewTimer(b.linger)
				lingerC = timer.C
			}
		case <-lingerC:
			lingerC = nil
			flush()
		case <-b.pool.Freed():
			// A worker came free; hand it the partial batch immediately
			// (strict mode keeps waiting for the size/linger trigger).
			if !b.strict && len(pending) > 0 && b.pool.Idle() {
				flush()
			}
		}
	}
}

// overloaded reports whether the batcher is under enough pressure that
// answering cheap beats answering exact: the admission queue is past the
// configured depth, or requests were shed since the last batch (the queue
// hit its hard bound — the strongest possible signal).
func (b *Batcher) overloaded() bool {
	if b.overloadDepth <= 0 {
		return false
	}
	shed := b.metrics.shed.Load()
	if b.prevShed.Swap(shed) < shed {
		return true
	}
	return b.metrics.queueDepth.Load() > b.overloadDepth
}

// batchContext derives a context that is live while at least one of the
// batch's callers still is: each request's context decrements a counter
// as it expires, and the last one cancels the batch. The engine pass
// checks it between row bands, so a batch every caller has abandoned
// releases its pool worker mid-pass instead of computing into the void.
func batchContext(reqs []*request) (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.Background())
	remaining := int64(len(reqs))
	var counted atomic.Int64
	stops := make([]func() bool, 0, len(reqs))
	for _, req := range reqs {
		stops = append(stops, context.AfterFunc(req.ctx, func() {
			if counted.Add(1) == remaining {
				cancel()
			}
		}))
	}
	return ctx, func() {
		for _, stop := range stops {
			stop()
		}
		cancel()
	}
}

// runBatch executes one coalesced engine call on a pool worker and fans
// the shared column map back out to every caller.
func (b *Batcher) runBatch(reqs []*request) {
	defer b.metrics.queueDepth.Add(-int64(len(reqs)))

	// Skip requests whose caller has already given up; don't waste an
	// engine pass (or widen this one) on their nodes.
	live := reqs[:0]
	for _, req := range reqs {
		if req.ctx.Err() != nil {
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}
	uniq := make(map[int]struct{})
	degrade := false
	for _, req := range live {
		degrade = degrade || req.degrade
		for _, n := range req.nodes {
			uniq[n] = struct{}{}
		}
	}
	nodes := make([]int, 0, len(uniq))
	for n := range uniq {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes) // deterministic engine input regardless of arrival order

	rank := 0
	if b.degradedRank > 0 && (degrade || b.overloaded()) {
		rank = b.degradedRank
		b.metrics.degradedBatches.Add(1)
	}

	b.metrics.batches.Add(1)
	b.metrics.nodes.Add(int64(len(nodes)))
	b.metrics.BatchOccupancy.Observe(float64(len(nodes)))

	ctx, release := batchContext(live)
	err := fault.Hit(fault.SiteBatchQuery) // chaos builds: engine-level latency/failure
	var cols [][]float64
	if err == nil {
		cols, err = b.queryFn(ctx, nodes, rank)
	}
	release()
	if err != nil {
		for _, req := range live {
			req.out <- response{err: err}
		}
		return
	}
	byNode := make(map[int][]float64, len(nodes))
	for j, n := range nodes {
		byNode[n] = cols[j]
	}
	for _, req := range live {
		req.out <- response{cols: byNode, rank: rank}
	}
}

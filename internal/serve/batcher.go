package serve

import (
	"context"
	"sort"
	"sync"
	"time"
)

// QueryFunc answers one multi-source engine pass: cols[j] is the full
// similarity column of queries[j]. csrplus.(*Engine).Query satisfies it.
type QueryFunc func(queries []int) ([][]float64, error)

// Batcher coalesces concurrent column requests into multi-source engine
// calls. The paper's complexity bound O(r(m + n(r + |Q|))) makes the
// marginal cost of one more query node tiny next to the per-call
// O(r(m + nr)) floor, so |Q| requests answered by one pass cost far less
// than |Q| passes — the same economics as dynamic batching in inference
// serving. A pending batch flushes when it reaches maxBatch unique nodes,
// when a pool worker is idle (waiting longer would add latency without
// improving throughput), or — with every worker busy — when the linger
// window expires. Duplicate nodes across co-batched requests are computed
// once and shared.
type Batcher struct {
	queryFn  QueryFunc
	maxBatch int
	linger   time.Duration
	strict   bool
	metrics  *Metrics
	pool     *Pool

	mu     sync.RWMutex // guards closed vs. queue sends
	closed bool
	queue  chan *request
	done   chan struct{} // dispatch loop exited
	once   sync.Once
}

type request struct {
	ctx   context.Context
	nodes []int
	out   chan response // buffered(1): abandoned callers never block a worker
}

type response struct {
	cols map[int][]float64
	err  error
}

// NewBatcher starts the dispatch loop and worker pool. maxBatch is the
// most unique nodes per engine call — a request that would push a batch
// past it is left to seed the next batch, so the bound holds whenever no
// single request alone exceeds it (requests are indivisible: one whose
// own node set tops maxBatch forms its own oversized batch). linger is
// the longest a request waits
// for co-batching (0 batches only what is already queued), maxPending the
// admission bound beyond which requests are shed, workers the concurrent
// engine calls. strict disables the idle-worker eager flush: partial
// batches always wait for the size or linger trigger, maximising batch
// occupancy (throughput) at the cost of light-load latency.
func NewBatcher(queryFn QueryFunc, maxBatch int, linger time.Duration, maxPending, workers int, strict bool, m *Metrics) *Batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if maxPending < 1 {
		maxPending = 1
	}
	if m == nil {
		m = NewMetrics()
	}
	b := &Batcher{
		queryFn:  queryFn,
		maxBatch: maxBatch,
		linger:   linger,
		strict:   strict,
		metrics:  m,
		pool:     NewPool(workers),
		queue:    make(chan *request, maxPending),
		done:     make(chan struct{}),
	}
	go b.run()
	return b
}

// Columns returns the similarity column of every requested node, batched
// with whatever else is in flight. The returned map is shared read-only
// across co-batched callers. Fails fast with ErrOverloaded when the
// admission queue is full, ErrClosed after Close, and ctx.Err() when the
// caller's deadline expires before the batch completes.
func (b *Batcher) Columns(ctx context.Context, nodes []int) (map[int][]float64, error) {
	req := &request{ctx: ctx, nodes: nodes, out: make(chan response, 1)}

	// The read-lock spans only the non-blocking enqueue, so Close's write
	// lock cannot be acquired mid-send: after Close sets closed, no sender
	// can be inside this critical section when the queue is closed.
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		b.metrics.rejected.Add(1)
		return nil, ErrClosed
	}
	select {
	case b.queue <- req:
		b.mu.RUnlock()
		b.metrics.admitted.Add(1)
		b.metrics.queueDepth.Add(1)
	default:
		b.mu.RUnlock()
		b.metrics.shed.Add(1)
		return nil, ErrOverloaded
	}

	select {
	case resp := <-req.out:
		return resp.cols, resp.err
	case <-ctx.Done():
		b.metrics.expired.Add(1)
		return nil, ctx.Err()
	}
}

// Close stops admission, flushes every pending request, waits for
// in-flight batches to finish, and returns. Idempotent.
func (b *Batcher) Close() {
	b.once.Do(func() {
		b.mu.Lock()
		b.closed = true
		b.mu.Unlock()
		close(b.queue)
		<-b.done
		b.pool.Close()
	})
}

// run is the dispatch loop: it accumulates requests, tracking the unique
// node set, and flushes to the worker pool on size or linger triggers.
func (b *Batcher) run() {
	defer close(b.done)
	var (
		pending []*request
		uniq    = make(map[int]struct{})
		timer   *time.Timer
		lingerC <-chan time.Time
	)
	absorb := func(req *request) {
		pending = append(pending, req)
		for _, n := range req.nodes {
			uniq[n] = struct{}{}
		}
	}
	// overflows reports whether absorbing req would push the batch past
	// maxBatch unique nodes. A request is indivisible, so the bound can
	// only be respected by leaving req for the next batch — except when
	// the batch is empty, where a single oversized request necessarily
	// forms its own (oversized) batch.
	overflows := func(req *request) bool {
		if len(pending) == 0 {
			return false
		}
		fresh := 0
		for _, n := range req.nodes {
			if _, ok := uniq[n]; !ok {
				fresh++
			}
		}
		return len(uniq)+fresh > b.maxBatch
	}
	flush := func() {
		if len(pending) == 0 {
			return
		}
		batch := pending
		pending = nil
		uniq = make(map[int]struct{})
		if timer != nil {
			timer.Stop()
		}
		lingerC = nil
		b.pool.Submit(func() { b.runBatch(batch) })
	}
	for {
		select {
		case req, ok := <-b.queue:
			if !ok {
				flush()
				return
			}
			// A request that would overflow the unique-node bound closes
			// the current batch (it is as full as it can get) and seeds
			// the next one.
			if overflows(req) {
				flush()
			}
			absorb(req)
			// Greedily absorb whatever is already queued: back-to-back
			// arrivals batch together even with linger = 0.
		drain:
			for len(uniq) < b.maxBatch {
				select {
				case more, ok := <-b.queue:
					if !ok {
						flush()
						return
					}
					if overflows(more) {
						flush()
					}
					absorb(more)
				default:
					break drain
				}
			}
			// Flush now if the batch is full, lingering is disabled, or
			// (outside strict mode) a worker would otherwise sit idle —
			// holding a partial batch only pays when every worker is busy
			// anyway. Otherwise arm the linger timer as the upper bound
			// on queueing delay.
			if len(uniq) >= b.maxBatch || b.linger <= 0 || (!b.strict && b.pool.Idle()) {
				flush()
			} else if lingerC == nil {
				timer = time.NewTimer(b.linger)
				lingerC = timer.C
			}
		case <-lingerC:
			lingerC = nil
			flush()
		case <-b.pool.Freed():
			// A worker came free; hand it the partial batch immediately
			// (strict mode keeps waiting for the size/linger trigger).
			if !b.strict && len(pending) > 0 && b.pool.Idle() {
				flush()
			}
		}
	}
}

// runBatch executes one coalesced engine call on a pool worker and fans
// the shared column map back out to every caller.
func (b *Batcher) runBatch(reqs []*request) {
	defer b.metrics.queueDepth.Add(-int64(len(reqs)))

	// Skip requests whose caller has already given up; don't waste an
	// engine pass (or widen this one) on their nodes.
	live := reqs[:0]
	for _, req := range reqs {
		if req.ctx.Err() != nil {
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}
	uniq := make(map[int]struct{})
	for _, req := range live {
		for _, n := range req.nodes {
			uniq[n] = struct{}{}
		}
	}
	nodes := make([]int, 0, len(uniq))
	for n := range uniq {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes) // deterministic engine input regardless of arrival order

	b.metrics.batches.Add(1)
	b.metrics.nodes.Add(int64(len(nodes)))
	b.metrics.BatchOccupancy.Observe(float64(len(nodes)))

	cols, err := b.queryFn(nodes)
	if err != nil {
		for _, req := range live {
			req.out <- response{err: err}
		}
		return
	}
	byNode := make(map[int][]float64, len(nodes))
	for j, n := range nodes {
		byNode[n] = cols[j]
	}
	for _, req := range live {
		req.out <- response{cols: byNode}
	}
}

package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeEngine counts calls and returns recognisable columns: column of
// node q has value float64(q) at every index.
type fakeEngine struct {
	n     int
	calls atomic.Int64
	delay time.Duration
	gate  chan struct{} // when non-nil, every call blocks until it closes
	err   error
}

func (f *fakeEngine) query(queries []int) ([][]float64, error) {
	f.calls.Add(1)
	if f.gate != nil {
		<-f.gate
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.err != nil {
		return nil, f.err
	}
	out := make([][]float64, len(queries))
	for j, q := range queries {
		col := make([]float64, f.n)
		for i := range col {
			col[i] = float64(q)
		}
		out[j] = col
	}
	return out, nil
}

func TestBatcherCoalescesConcurrentRequests(t *testing.T) {
	// The 1ms engine keeps both workers busy, so later arrivals pile into
	// shared batches instead of each flushing to an idle worker.
	eng := &fakeEngine{n: 64, delay: time.Millisecond}
	b := NewBatcher(eng.query, 64, 20*time.Millisecond, 256, 2, false, NewMetrics())
	defer b.Close()

	const clients = 24
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			cols, err := b.Columns(context.Background(), []int{i % 8})
			if err != nil {
				errs[i] = err
				return
			}
			if got := cols[i%8][0]; got != float64(i%8) {
				errs[i] = errors.New("wrong column content")
			}
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if calls := eng.calls.Load(); calls >= clients {
		t.Fatalf("no coalescing: %d engine calls for %d requests", calls, clients)
	}
}

func TestBatcherDedupesNodesWithinBatch(t *testing.T) {
	var mu sync.Mutex
	var widths []int
	eng := &fakeEngine{n: 16}
	counting := func(queries []int) ([][]float64, error) {
		mu.Lock()
		widths = append(widths, len(queries))
		mu.Unlock()
		return eng.query(queries)
	}
	b := NewBatcher(counting, 64, 20*time.Millisecond, 256, 1, false, NewMetrics())
	defer b.Close()

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := b.Columns(context.Background(), []int{7}); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for _, w := range widths {
		if w != 1 {
			t.Fatalf("16 requests for the same node produced a batch of width %d, want 1", w)
		}
	}
}

func TestBatcherFlushesOnMaxBatch(t *testing.T) {
	eng := &fakeEngine{n: 64}
	// Huge linger: only the size trigger can flush. Every request carries
	// maxBatch distinct nodes, so each absorption crosses the threshold
	// and the timer path is never taken.
	b := NewBatcher(eng.query, 4, time.Hour, 256, 2, false, NewMetrics())
	defer b.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nodes := []int{4 * i, 4*i + 1, 4*i + 2, 4*i + 3}
			if _, err := b.Columns(context.Background(), nodes); err != nil {
				t.Error(err)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("size-triggered flush never happened")
	}
}

func TestBatcherFlushesIdleWorkerImmediately(t *testing.T) {
	eng := &fakeEngine{n: 8}
	// maxBatch and linger both huge: with an idle worker, a lone request
	// must still flush immediately instead of waiting out the linger.
	b := NewBatcher(eng.query, 1024, time.Hour, 256, 1, false, NewMetrics())
	defer b.Close()
	done := make(chan error, 1)
	go func() {
		_, err := b.Columns(context.Background(), []int{3})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle-worker flush never happened")
	}
}

func TestBatcherLingerFlushesWhileWorkersBusy(t *testing.T) {
	m := NewMetrics()
	gate := make(chan struct{})
	eng := &fakeEngine{n: 16, gate: gate}
	b := NewBatcher(eng.query, 1024, 5*time.Millisecond, 64, 1, false, m)

	results := make(chan error, 3)
	launch := func(node int) {
		go func() {
			_, err := b.Columns(context.Background(), []int{node})
			results <- err
		}()
	}
	// A occupies the only worker.
	launch(0)
	waitFor(t, func() bool { return eng.calls.Load() == 1 })
	// B pends with no idle worker; only the linger timer can flush it.
	launch(1)
	// Give the linger window ample time to commit the {B} batch (the
	// dispatch loop then blocks handing it to the busy pool) ...
	time.Sleep(30 * time.Millisecond)
	// ... so C, arriving after, must land in a separate third batch.
	launch(2)
	waitFor(t, func() bool { return m.Admitted() == 3 })
	close(gate)
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	if calls := eng.calls.Load(); calls != 3 {
		t.Fatalf("engine calls = %d, want 3: linger flush did not commit {B} before C arrived", calls)
	}
	b.Close()
}

func TestBatcherStrictLingerCoalescesDespiteIdleWorkers(t *testing.T) {
	var mu sync.Mutex
	var widths []int
	eng := &fakeEngine{n: 16}
	counting := func(queries []int) ([][]float64, error) {
		mu.Lock()
		widths = append(widths, len(queries))
		mu.Unlock()
		return eng.query(queries)
	}
	// Strict mode with 4 idle workers: requests must still wait for the
	// size trigger (maxBatch 4), producing one full-width call where the
	// eager policy would have flushed up to 4 singleton batches.
	b := NewBatcher(counting, 4, time.Minute, 64, 4, true, NewMetrics())
	defer b.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Columns(context.Background(), []int{i}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(widths) != 1 || widths[0] != 4 {
		t.Fatalf("batch widths = %v, want one batch of width 4", widths)
	}
}

// TestBatcherNeverExceedsMaxBatch is the regression test for the greedy
// drain overshoot: the old loop checked the bound before absorbing, so a
// queued multi-node request could push a batch far past maxBatch unique
// nodes. Disjoint 3-node requests against maxBatch = 4 make any
// co-batched pair (6 uniques) a violation.
func TestBatcherNeverExceedsMaxBatch(t *testing.T) {
	const maxBatch = 4
	var mu sync.Mutex
	var widths []int
	gate := make(chan struct{})
	eng := &fakeEngine{n: 64, gate: gate}
	counting := func(queries []int) ([][]float64, error) {
		mu.Lock()
		widths = append(widths, len(queries))
		mu.Unlock()
		return eng.query(queries)
	}
	b := NewBatcher(counting, maxBatch, 5*time.Millisecond, 64, 1, true, NewMetrics())
	defer b.Close()

	// Gate the single worker so requests pile up in the queue, forcing the
	// dispatch loop to drain several multi-node requests back-to-back.
	const clients = 6
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nodes := []int{3 * i, 3*i + 1, 3*i + 2} // disjoint trios
			_, errs[i] = b.Columns(context.Background(), nodes)
		}(i)
	}
	waitFor(t, func() bool { return b.metrics.Admitted() == clients })
	time.Sleep(10 * time.Millisecond) // let the drain loop see a full queue
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, w := range widths {
		if w > maxBatch {
			t.Fatalf("engine call saw %d unique nodes, exceeding maxBatch %d (widths %v)", w, maxBatch, widths)
		}
	}
}

// A single request larger than maxBatch cannot be split: it must still be
// served, as its own oversized batch, rather than deadlock.
func TestBatcherOversizedSingleRequest(t *testing.T) {
	eng := &fakeEngine{n: 64}
	b := NewBatcher(eng.query, 2, time.Millisecond, 8, 1, false, NewMetrics())
	defer b.Close()
	cols, err := b.Columns(context.Background(), []int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 5 {
		t.Fatalf("got %d columns, want 5", len(cols))
	}
}

func TestBatcherOverload(t *testing.T) {
	m := NewMetrics()
	gate := make(chan struct{})
	eng := &fakeEngine{n: 8, gate: gate}
	b := NewBatcher(eng.query, 1, 0, 1, 1, false, m)

	results := make(chan error, 8)
	launch := func(node int) {
		go func() {
			_, err := b.Columns(context.Background(), []int{node})
			results <- err
		}()
	}
	// With the one worker gated, at most 3 requests can be held: one
	// executing, one in the dispatch loop blocked on Submit, one queued.
	// Each sequential launch either raises Admitted or Shed, so by the
	// 4th launch a shed is guaranteed.
	for i := 0; i < 4; i++ {
		admitted, shed := m.Admitted(), m.Shed()
		launch(i)
		waitFor(t, func() bool { return m.Admitted() > admitted || m.Shed() > shed })
		if m.Shed() > 0 {
			break
		}
	}
	if m.Shed() == 0 {
		t.Fatal("requests beyond capacity were never shed")
	}
	// Shed requests fail fast with the typed error; admitted ones all
	// complete once the engine unblocks.
	for i := int64(0); i < m.Shed(); i++ {
		if err := <-results; !errors.Is(err, ErrOverloaded) {
			t.Fatalf("shed request err = %v, want ErrOverloaded", err)
		}
	}
	close(gate)
	for i := int64(0); i < m.Admitted(); i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted request: %v", err)
		}
	}
	b.Close()
}

func TestBatcherDeadline(t *testing.T) {
	m := NewMetrics()
	gate := make(chan struct{})
	eng := &fakeEngine{n: 8, gate: gate}
	b := NewBatcher(eng.query, 1, 0, 8, 1, false, m)
	defer func() { close(gate); b.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	// Occupy the only worker so the deadline fires while queued/batched.
	go func() { _, _ = b.Columns(context.Background(), []int{0}) }()
	waitFor(t, func() bool { return eng.calls.Load() == 1 })

	_, err := b.Columns(ctx, []int{1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if m.Expired() != 1 {
		t.Fatalf("expired = %d, want 1", m.Expired())
	}
}

func TestBatcherPropagatesEngineError(t *testing.T) {
	boom := errors.New("boom")
	eng := &fakeEngine{n: 8, err: boom}
	b := NewBatcher(eng.query, 8, 0, 8, 1, false, NewMetrics())
	defer b.Close()
	if _, err := b.Columns(context.Background(), []int{0}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestBatcherCloseDrainsAndRejects(t *testing.T) {
	eng := &fakeEngine{n: 8, delay: 5 * time.Millisecond}
	b := NewBatcher(eng.query, 64, 50*time.Millisecond, 256, 2, false, NewMetrics())

	// In-flight requests admitted before Close must still be answered.
	const clients = 8
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			_, err := b.Columns(context.Background(), []int{i})
			errs <- err
		}(i)
	}
	m := b.metrics
	waitFor(t, func() bool { return m.Admitted() == clients })
	b.Close()
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("pre-close request failed: %v", err)
		}
	}
	if _, err := b.Columns(context.Background(), []int{0}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close err = %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(200 * time.Microsecond)
	}
}

package serve

import (
	"sync"
	"sync/atomic"
)

// Pool runs submitted tasks on a fixed set of worker goroutines, bounding
// how many flushed batches hit the engine concurrently. It exposes its
// saturation state (Idle, Freed) so the batcher can choose between
// flushing a partial batch now (a worker would otherwise sit idle) and
// lingering for more co-batched requests (all workers busy anyway). The
// batcher is the only submitter, so lifecycle is simple: Submit until
// Close, then Close waits for every queued and running task to finish
// (graceful drain).
type Pool struct {
	tasks   chan func()
	workers int64
	busy    atomic.Int64  // tasks submitted but not yet finished
	freed   chan struct{} // pulsed when a worker finishes a task
	wg      sync.WaitGroup
	once    sync.Once
}

// NewPool starts workers goroutines (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		tasks:   make(chan func()),
		workers: int64(workers),
		freed:   make(chan struct{}, 1),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
				p.busy.Add(-1)
				select {
				case p.freed <- struct{}{}:
				default:
				}
			}
		}()
	}
	return p
}

// Submit blocks until a worker can take the task. Submitting after Close
// panics; the batcher guarantees ordering (it closes the pool only after
// its dispatch loop has exited).
func (p *Pool) Submit(task func()) {
	p.busy.Add(1) // counted from submission so Idle sees committed work
	p.tasks <- task
}

// Idle reports whether at least one worker has no committed work.
func (p *Pool) Idle() bool { return p.busy.Load() < p.workers }

// Freed pulses after a worker finishes a task — a wake-up signal for
// "capacity may be available now". Best-effort: pulses coalesce.
func (p *Pool) Freed() <-chan struct{} { return p.freed }

// Close stops accepting tasks and waits for in-flight ones to complete.
// Safe to call more than once.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.tasks) })
	p.wg.Wait()
}

package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"csrplus/internal/cache"
)

// genQuery builds a QueryFunc whose scores encode the generation that
// produced them: column entry i scores gen + i/(2n), so floor(score)
// recovers the generation and higher node ids rank higher. Any response
// mixing generations, or serving an older generation to a request that
// started after a newer one was installed, is detectable from the scores
// alone.
func genQuery(n int, gen uint64) QueryFunc {
	return func(queries []int) ([][]float64, error) {
		out := make([][]float64, len(queries))
		for j := range queries {
			col := make([]float64, n)
			for i := range col {
				col[i] = float64(gen) + float64(i)/float64(2*n)
			}
			out[j] = col
		}
		return out, nil
	}
}

func scoreGen(t *testing.T, matches []Match) uint64 {
	t.Helper()
	if len(matches) == 0 {
		t.Fatal("empty match set")
	}
	g := uint64(matches[0].Score)
	for _, m := range matches[1:] {
		if uint64(m.Score) != g {
			t.Fatalf("response mixes generations: %v", matches)
		}
	}
	return g
}

func TestServerSwapBasic(t *testing.T) {
	s := New(8, genQuery(8, 1), Config{Linger: -1, Cache: cache.New(32)})
	defer s.Close()
	if got := s.Generation(); got != 1 {
		t.Fatalf("boot generation = %d, want 1", got)
	}
	m1, cached, err := s.TopK(context.Background(), []int{3}, 2)
	if err != nil || cached {
		t.Fatalf("err=%v cached=%v", err, cached)
	}
	if g := scoreGen(t, m1); g != 1 {
		t.Fatalf("generation 1 scores, got %d", g)
	}
	// Warm the cache, then swap: the same query must miss and recompute
	// on the new engine — a pre-swap entry may never answer post-swap.
	if _, cached, _ = s.TopK(context.Background(), []int{3}, 2); !cached {
		t.Fatal("warm-up query not cached")
	}
	if gen := s.Swap(8, genQuery(8, 2)); gen != 2 {
		t.Fatalf("Swap returned generation %d, want 2", gen)
	}
	if got := s.Metrics().Generation(); got != 2 {
		t.Fatalf("metrics generation gauge = %d, want 2", got)
	}
	m2, cached, err := s.TopK(context.Background(), []int{3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("post-swap request served from pre-swap cache entry")
	}
	if g := scoreGen(t, m2); g != 2 {
		t.Fatalf("post-swap scores from generation %d, want 2", g)
	}
	// And the new generation's own entry is cached normally.
	if _, cached, _ = s.TopK(context.Background(), []int{3}, 2); !cached {
		t.Fatal("new generation's result not cached")
	}
}

func TestServerSwapChangesN(t *testing.T) {
	s := New(10, genQuery(10, 1), Config{Linger: -1, MaxK: 100})
	defer s.Close()
	if _, _, err := s.TopK(context.Background(), []int{9}, 3); err != nil {
		t.Fatal(err)
	}
	s.Swap(4, genQuery(4, 2)) // the new graph shrank
	if _, _, err := s.TopK(context.Background(), []int{9}, 3); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("node 9 on a 4-node generation: err = %v, want ErrBadRequest", err)
	}
	matches, _, err := s.TopK(context.Background(), []int{0}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3 { // k clamps to the new n: 4 nodes minus the query
		t.Fatalf("got %d matches, want 3", len(matches))
	}
	if s.N() != 4 {
		t.Fatalf("N() = %d, want 4", s.N())
	}
}

func TestServerSwapAfterCloseRefused(t *testing.T) {
	s := New(4, genQuery(4, 1), Config{Linger: -1})
	s.Close()
	if gen := s.Swap(4, genQuery(4, 2)); gen != 0 {
		t.Fatalf("Swap after Close returned %d, want 0", gen)
	}
	if _, _, err := s.TopK(context.Background(), []int{1}, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestReloadUnderFire is the acceptance test for the hot-reload tentpole:
// concurrent TopK traffic across 10 generation swaps must see zero failed
// requests and zero cross-generation cache hits. Generations are encoded
// in the scores (genQuery), so a stale cache entry or a batch answered by
// the wrong engine shows up as floor(score) < the generation observed
// before the request started. Run under -race this also shakes out every
// swap/serve data race.
func TestReloadUnderFire(t *testing.T) {
	const (
		n       = 64
		swaps   = 10
		workers = 8
	)
	var current atomic.Uint64 // highest generation Swap has returned
	s := New(n, genQuery(n, 1), Config{
		MaxBatch:   8,
		Linger:     100 * time.Microsecond,
		Workers:    4,
		MaxPending: 1 << 16, // admission shedding would show up as failures; give headroom
		Cache:      cache.New(256),
	})
	defer s.Close()
	current.Store(1)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var served, cachedHits atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				// A small node universe keeps the within-generation cache
				// hit rate high, which is exactly where a missing
				// generation namespace would leak stale entries.
				floor := current.Load()
				matches, cached, err := s.TopK(context.Background(), []int{rng.Intn(8)}, 3)
				if err != nil {
					t.Errorf("request failed during reload: %v", err)
					return
				}
				got := scoreGen(t, matches)
				if got < floor {
					t.Errorf("request started at generation >= %d answered by generation %d (cached=%v)", floor, got, cached)
					return
				}
				served.Add(1)
				if cached {
					cachedHits.Add(1)
				}
			}
		}(int64(w))
	}

	for g := uint64(2); g <= swaps+1; g++ {
		time.Sleep(3 * time.Millisecond)
		if gen := s.Swap(n, genQuery(n, g)); gen != g {
			t.Fatalf("swap %d returned generation %d", g, gen)
		}
		// Only after Swap returns may workers treat g as the floor: a
		// request started before the swap may legitimately be answered by
		// the outgoing generation.
		current.Store(g)
	}
	time.Sleep(3 * time.Millisecond)
	close(stop)
	wg.Wait()

	if t.Failed() {
		return
	}
	if served.Load() == 0 {
		t.Fatal("no requests served")
	}
	if cachedHits.Load() == 0 {
		t.Error("no cache hits at all — the cache path was not exercised under fire")
	}
	if got := s.Generation(); got != swaps+1 {
		t.Fatalf("final generation %d, want %d", got, swaps+1)
	}
	snap := s.Metrics().Snapshot()
	if snap["generation"].(uint64) != swaps+1 {
		t.Fatalf("metrics generation = %v", snap["generation"])
	}
	t.Logf("served %d requests (%d cached) across %d swaps with zero failures",
		served.Load(), cachedHits.Load(), swaps)
}

// TestServerSwapDrainsOldGeneration pins the RCU contract directly: a
// batch in flight on the old engine when Swap begins completes on that
// engine, and Swap waits for it.
func TestServerSwapDrainsOldGeneration(t *testing.T) {
	const n = 8
	enter := make(chan struct{}, 1)
	release := make(chan struct{})
	slow := func(queries []int) ([][]float64, error) {
		enter <- struct{}{}
		<-release
		return genQuery(n, 1)(queries)
	}
	s := New(n, slow, Config{Linger: -1, Workers: 1})
	defer s.Close()

	done := make(chan []Match, 1)
	go func() {
		m, _, err := s.TopK(context.Background(), []int{2}, 2)
		if err != nil {
			t.Error(err)
		}
		done <- m
	}()
	<-enter // the old engine now owns an in-flight batch

	swapped := make(chan struct{})
	go func() {
		s.Swap(n, genQuery(n, 2))
		close(swapped)
	}()
	select {
	case <-swapped:
		t.Fatal("Swap returned while a batch was in flight on the old generation")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	<-swapped
	if g := scoreGen(t, <-done); g != 1 {
		t.Fatalf("in-flight batch answered by generation %d, want 1", g)
	}
	m, _, err := s.TopK(context.Background(), []int{2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g := scoreGen(t, m); g != 2 {
		t.Fatalf("post-swap request answered by generation %d, want 2", g)
	}
}

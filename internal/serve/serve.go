// Package serve is the production serving layer between an HTTP frontend
// and a csrplus engine. Its core move exploits the paper's multi-source
// complexity O(r(m + n(r + |Q|))): because the per-call cost is dominated
// by terms independent of |Q|, concurrent single-source requests are
// dynamically batched — coalesced into one multi-source engine pass and
// fanned back out — instead of issued one-by-one (the same pattern used in
// inference serving). Around that batcher it layers a bounded worker pool,
// admission control (bounded queue shedding with ErrOverloaded, deadlines
// via context), an optional instrumented LRU result cache, a metrics
// registry, and graceful drain on Close.
//
// The engine behind the server is not fixed: each engine lives in a
// numbered generation, and Swap installs a new generation RCU-style —
// requests admitted after the swap see the new engine while in-flight
// batches finish on the old one — so an index rebuild or snapshot reload
// never pauses traffic (see internal/reload for the lifecycle around it).
//
// Engines with rank structure (SwapRanked) additionally get graceful
// degradation: under pressure — a request admitted with too little
// deadline budget, the admission queue past a depth threshold, or
// requests being shed — batches run at a truncated rank r' < r, trading
// entrywise accuracy bounded by the factor tail for an r'/r cost cut.
// Every degraded response is tagged with its effective rank and the
// engine's advertised error bound, so clients can tell an exact answer
// from a cheap one.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"csrplus/internal/cache"
	"csrplus/internal/dense"
	"csrplus/internal/fault"
	"csrplus/internal/topk"
)

// DefaultMaxK is the server-side cap on requested k when Config.MaxK is
// unset: large enough for any ranking UI, small enough that one request
// cannot demand a near-full sort of a massive graph's score vector.
const DefaultMaxK = 1000

// DefaultDegradeQueueFraction is the admission-queue fill fraction past
// which batches degrade, when degradation is enabled without an explicit
// threshold.
const DefaultDegradeQueueFraction = 0.75

// DegradeConfig tunes graceful degradation. It only takes effect on
// backends installed with SwapRanked/NewRanked (plain QueryFunc backends
// have no rank to truncate).
type DegradeConfig struct {
	// Rank is the truncated rank served under pressure. 0 disables
	// degradation; values >= the engine's full rank also disable it
	// (there is nothing to truncate to).
	Rank int
	// QueueFraction is the admission-queue fill fraction (of MaxPending)
	// past which whole batches degrade. Default
	// DefaultDegradeQueueFraction when Rank > 0; negative disables the
	// queue-depth trigger (leaving only per-request budget votes and
	// shed-pressure).
	QueueFraction float64
	// MinBudget degrades a request admitted with less than this much
	// deadline budget remaining — it would rather answer cheap than miss
	// its deadline answering exact. 0 disables the budget trigger.
	MinBudget time.Duration
}

// Config tunes a Server. The zero value selects sensible production
// defaults (documented per field).
type Config struct {
	// MaxBatch is the most unique query nodes coalesced into one engine
	// call. Default 32. 1 disables coalescing (each request is its own
	// engine call) — the "unbatched" baseline in benchmarks.
	MaxBatch int
	// Linger is how long a request may wait for co-batching before a
	// partial batch is flushed. Default 2ms; 0 flushes immediately,
	// batching only requests that are already queued.
	Linger time.Duration
	// Workers bounds concurrent engine calls. Default GOMAXPROCS.
	Workers int
	// StrictLinger disables the idle-worker eager flush: partial batches
	// always wait for the MaxBatch or Linger trigger. This maximises
	// batch occupancy — the right trade for throughput-bound deployments
	// — at the cost of up to Linger extra latency under light load. The
	// default (false) flushes a partial batch whenever a worker is idle,
	// optimising latency.
	StrictLinger bool
	// MaxPending bounds the admission queue; beyond it requests are shed
	// with ErrOverloaded. Default 1024.
	MaxPending int
	// MaxK caps the k a single request may ask for (400 to the client
	// beyond it). Default DefaultMaxK.
	MaxK int
	// Timeout is the per-request deadline applied when the caller's
	// context has none. Default 0 = no server-imposed deadline.
	Timeout time.Duration
	// Cache, when non-nil, memoises TopK results and is instrumented
	// through the server's metrics registry. Keys are namespaced by
	// engine generation, so a Swap implicitly invalidates every earlier
	// entry (and Clear is called on swap to release the memory early).
	// Only full-rank results are cached: a degraded answer must never
	// outlive the pressure that justified it.
	Cache *cache.LRU
	// Degrade configures graceful degradation (see DegradeConfig).
	Degrade DegradeConfig
}

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = 32
	}
	if c.Linger == 0 {
		c.Linger = 2 * time.Millisecond
	} else if c.Linger < 0 {
		c.Linger = 0
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxPending == 0 {
		c.MaxPending = 1024
	}
	if c.MaxK == 0 {
		c.MaxK = DefaultMaxK
	}
	if c.Degrade.Rank > 0 && c.Degrade.QueueFraction == 0 {
		c.Degrade.QueueFraction = DefaultDegradeQueueFraction
	}
	return c
}

// Match is one top-k result, JSON-compatible with csrplus.Match.
type Match struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}

// Pair is one (query, target) similarity score.
type Pair struct {
	Query  int     `json:"query"`
	Target int     `json:"target"`
	Score  float64 `json:"score"`
}

// QueryInfo tags a response with how it was answered. The zero value
// means a full-rank (exact) answer.
type QueryInfo struct {
	// Degraded reports the answer was computed at a truncated rank.
	Degraded bool `json:"degraded"`
	// EffectiveRank is the rank actually used; 0 when full.
	EffectiveRank int `json:"effective_rank,omitempty"`
	// FullRank is the engine's full rank, for r'/r context. 0 when the
	// backend has no rank structure.
	FullRank int `json:"full_rank,omitempty"`
	// ErrorBound is the engine's advertised entrywise bound on
	// |degraded - exact| for this rank; 0 for exact answers. When shards
	// are missing it additionally absorbs the missing-shard inflation.
	ErrorBound float64 `json:"error_bound,omitempty"`
	// MissingShards counts shards that could not contribute to this
	// answer (wire backends only); > 0 implies Degraded.
	MissingShards int `json:"missing_shards,omitempty"`
	// DriftBound is the streaming-ingestion drift bound of the serving
	// generation: how far any score may sit from the live graph's exact
	// value because edges arrived after the factors were built. Already
	// included in ErrorBound. 0 when the backend has no ingestion.
	DriftBound float64 `json:"drift_bound,omitempty"`
}

// SearchResult is TopK's full-fidelity result shape.
type SearchResult struct {
	Matches []Match   `json:"matches"`
	Cached  bool      `json:"cached"`
	Info    QueryInfo `json:"info"`
}

// PairsResult is Similarity's full-fidelity result shape.
type PairsResult struct {
	Pairs []Pair    `json:"pairs"`
	Info  QueryInfo `json:"info"`
}

// backend is one engine generation: the batcher feeding it, the node
// count requests are validated against, the rank structure degradation
// works with, and the generation number that namespaces its cache
// entries. Immutable once installed — a reload builds a fresh backend and
// swaps the pointer.
type backend struct {
	gen          uint64
	n            int
	rank         int               // engine's full rank; 0 = no rank structure
	degradedRank int               // rank served under pressure; 0 = degradation off
	bound        func(int) float64 // entrywise truncation bound; never nil
	batcher      *Batcher
	topkFn       DirectTopKFunc  // non-nil routes Search around the batcher
	scoresFn     DirectScoreFunc // non-nil routes Score around the batcher
	drift        DriftFunc       // non-nil taints answers with ingestion drift
}

// Server answers top-k and similarity requests over one engine, batching
// concurrent requests into multi-source passes. Safe for concurrent use.
//
// The engine is held behind an atomic generation pointer: Swap installs a
// replacement without pausing the worker pool, so callers never observe
// downtime across an index reload. Every request resolves the generation
// once at admission and completes entirely on it — node-id validation,
// engine routing and cache keys all derive from that one snapshot, which
// is what makes a post-swap response provably never come from a pre-swap
// cache entry.
type Server struct {
	cfg     Config
	metrics *Metrics

	be     atomic.Pointer[backend]
	swapMu sync.Mutex // serialises Swap and Close
	gen    uint64     // last installed generation; guarded by swapMu
	closed bool       // guarded by swapMu
}

// New builds a Server over a graph of n nodes whose columns are produced
// by queryFn (normally csrplus.(*Engine).Query). The engine becomes
// generation 1; Swap installs successors.
func New(n int, queryFn QueryFunc, cfg Config) *Server {
	s := newServer(cfg)
	s.Swap(n, queryFn)
	return s
}

func newServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	if cfg.Cache != nil {
		cfg.Cache.SetRecorder(m)
	}
	return &Server{cfg: cfg, metrics: m}
}

// MatQueryFunc answers one multi-source engine pass into a reusable
// scratch matrix: the n x |Q| result reuses scratch's backing array when
// its capacity suffices (nil scratch allocates) and is returned.
// csrplus.(*Engine).QueryInto satisfies it.
type MatQueryFunc func(queries []int, scratch *dense.Mat) (*dense.Mat, error)

// RankQueryFunc answers one multi-source engine pass at a chosen rank
// (0 or >= the engine's rank = full), honouring ctx between row bands so
// an abandoned batch stops consuming its worker mid-pass.
// csrplus.(*Engine).QueryRankInto satisfies it.
type RankQueryFunc func(ctx context.Context, queries []int, rank int, scratch *dense.Mat) (*dense.Mat, error)

// TopKProvenance reports how a direct top-k answer was assembled: how
// many shards could not contribute and the bound inflation their absence
// adds to every reported score.
type TopKProvenance struct {
	// MissingShards counts shards skipped over (dead workers behind open
	// breakers, exhausted retries). 0 means every shard contributed and
	// the merge is exact.
	MissingShards int
	// ErrorBound bounds how far any reported score can sit from the
	// exact answer given the missing shards; 0 when none are missing.
	ErrorBound float64
}

// DirectTopKFunc answers a top-k request in one call, bypassing the
// column batcher — the contract a scatter–gather router satisfies
// (shard.Router.TopKTagged): shards return rank-limited partial top-k
// lists and the router merges them exactly, so no n x |Q| matrix ever
// materialises and the batcher's coalescing economics don't apply.
// rank <= 0 means full rank.
type DirectTopKFunc func(ctx context.Context, queries []int, k, rank int) ([]topk.Item, TopKProvenance, error)

// DirectScoreFunc answers targeted (query, target) scores in one call,
// returning a |queries| x |targets| matrix (shard.Router.Scores
// satisfies it). Unlike DirectTopKFunc there is no degraded variant: a
// targeted score from a dead shard has no meaningful substitute, so
// missing shards fail the call.
type DirectScoreFunc func(ctx context.Context, queries, targets []int, rank int) (*dense.Mat, error)

// Ranked describes an engine generation with rank structure — the full
// contract graceful degradation needs.
type Ranked struct {
	// N is the node count requests are validated against.
	N int
	// Rank is the engine's full SVD rank; 0 disables degradation for
	// this generation.
	Rank int
	// Bound reports the entrywise error bound of answering at a
	// truncated rank (csrplus.(*Engine).TruncationBound). nil means "no
	// bound advertised" and reports 0.
	Bound func(rank int) float64
	// Query answers one multi-source pass at a chosen rank. May be nil
	// when TopK is set: wire backends have no column path (the batcher
	// then rejects column requests with ErrBadRequest).
	Query RankQueryFunc
	// TopK, when non-nil, serves Search/TopK directly instead of through
	// the column batcher. Scores does the same for Score/Similarity.
	TopK   DirectTopKFunc
	Scores DirectScoreFunc
	// Drift, when non-nil, reports the live ingestion drift bound for
	// this generation's factors (see DriftFunc). Every answer composes
	// it into ErrorBound; exceeded additionally marks answers Degraded.
	Drift DriftFunc
}

// DriftFunc reports how far a generation's factors may have drifted
// from the live graph because of streamed edge insertions applied since
// the factors were built: an entrywise score bound, and whether the
// operator's drift budget is exhausted (a rebuild is due or in flight).
// Called on every response — implementations must be cheap and safe for
// concurrent use.
type DriftFunc func() (bound float64, exceeded bool)

// NewMat is New for a scratch-aware engine: every engine pass borrows an
// n x maxBatch-capacity matrix from a sync.Pool instead of allocating
// n x |Q| afresh, which keeps the steady-state serving hot path
// allocation-light (the per-column copies handed to callers remain — they
// outlive the batch). Everything else matches New.
func NewMat(n int, queryFn MatQueryFunc, cfg Config) *Server {
	s := newServer(cfg)
	s.SwapMat(n, queryFn)
	return s
}

// NewRanked is New for an engine with rank structure: scratch pooling as
// in NewMat, plus context propagation into the engine pass and graceful
// degradation per cfg.Degrade.
func NewRanked(e Ranked, cfg Config) *Server {
	s := newServer(cfg)
	s.SwapRanked(e)
	return s
}

// wrapQuery adapts a plain engine to the batcher's internal signature:
// the context is checked once at the engine boundary (the engine itself
// cannot be interrupted) and the rank is ignored (nothing to truncate).
func wrapQuery(queryFn QueryFunc) batchQueryFunc {
	return func(ctx context.Context, queries []int, _ int) ([][]float64, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return queryFn(queries)
	}
}

// wrapMatQuery adapts a scratch-aware engine to the batcher, giving it a
// private sync.Pool of scratch matrices. Each generation gets its own
// pool, so scratch dimensioned for an old graph never leaks into a new
// engine's passes.
func wrapMatQuery(queryFn MatQueryFunc) batchQueryFunc {
	var pool sync.Pool
	return func(ctx context.Context, queries []int, _ int) ([][]float64, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if fault.ShouldFailAlloc(fault.SiteScratchAlloc) {
			return nil, fault.ErrAllocFailed
		}
		scratch, _ := pool.Get().(*dense.Mat)
		s, err := queryFn(queries, scratch)
		if err != nil {
			if scratch != nil {
				pool.Put(scratch)
			}
			return nil, err
		}
		cols := make([][]float64, len(queries))
		for j := range queries {
			cols[j] = s.Col(j, nil)
		}
		pool.Put(s) // s is scratch when it had capacity, else its grown replacement
		return cols, nil
	}
}

// wrapRankQuery is wrapMatQuery for a rank-aware engine: the context and
// rank reach the engine pass itself.
func wrapRankQuery(queryFn RankQueryFunc) batchQueryFunc {
	var pool sync.Pool
	return func(ctx context.Context, queries []int, rank int) ([][]float64, error) {
		if fault.ShouldFailAlloc(fault.SiteScratchAlloc) {
			return nil, fault.ErrAllocFailed
		}
		scratch, _ := pool.Get().(*dense.Mat)
		s, err := queryFn(ctx, queries, rank, scratch)
		if err != nil {
			if scratch != nil {
				pool.Put(scratch)
			}
			return nil, err
		}
		cols := make([][]float64, len(queries))
		for j := range queries {
			cols[j] = s.Col(j, nil)
		}
		pool.Put(s)
		return cols, nil
	}
}

// stubQuery is the batcher's engine func for backends that only serve
// through direct funcs: wire routers never materialise n x |Q| columns,
// so the column path is a caller error, not a missing feature.
func stubQuery(context.Context, []int, int) ([][]float64, error) {
	return nil, fmt.Errorf("%w: this backend serves top-k and targeted scores only (no column path)", ErrBadRequest)
}

// Swap atomically installs a new engine generation and returns its
// number. Requests admitted after Swap returns are validated against n,
// answered by queryFn, and cached under the new generation's key space;
// batches already in flight finish on the old engine (RCU-style: readers
// drain, they are never interrupted). Swap then closes the old
// generation's batcher — flushing its pending requests — and clears the
// result cache so superseded entries release their memory immediately
// (they are already unreachable: cache keys embed the generation).
// Returns 0 without swapping when the server is already closed.
func (s *Server) Swap(n int, queryFn QueryFunc) uint64 {
	return s.swapBackend(n, 0, nil, wrapQuery(queryFn), nil, nil, nil)
}

// SwapMat is Swap for a scratch-aware engine (see NewMat).
func (s *Server) SwapMat(n int, queryFn MatQueryFunc) uint64 {
	return s.swapBackend(n, 0, nil, wrapMatQuery(queryFn), nil, nil, nil)
}

// SwapRanked is Swap for an engine with rank structure (see NewRanked).
func (s *Server) SwapRanked(e Ranked) uint64 {
	var queryFn batchQueryFunc = stubQuery
	if e.Query != nil {
		queryFn = wrapRankQuery(e.Query)
	}
	return s.swapBackend(e.N, e.Rank, e.Bound, queryFn, e.TopK, e.Scores, e.Drift)
}

func (s *Server) swapBackend(n, rank int, bound func(int) float64, queryFn batchQueryFunc, topkFn DirectTopKFunc, scoresFn DirectScoreFunc, driftFn DriftFunc) uint64 {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.closed {
		return 0
	}
	if bound == nil {
		bound = func(int) float64 { return 0 }
	}
	// Degradation only arms when the configured truncated rank is a real
	// truncation of this engine; the queue-depth trigger needs a positive
	// fraction of the admission bound.
	degradedRank, overloadDepth := 0, int64(0)
	if rank > 0 && s.cfg.Degrade.Rank > 0 && s.cfg.Degrade.Rank < rank {
		degradedRank = s.cfg.Degrade.Rank
		if f := s.cfg.Degrade.QueueFraction; f > 0 {
			overloadDepth = int64(f * float64(s.cfg.MaxPending))
		}
	}
	s.gen++
	nb := &backend{
		gen:          s.gen,
		n:            n,
		rank:         rank,
		degradedRank: degradedRank,
		bound:        bound,
		batcher:      newBatcher(queryFn, s.cfg.MaxBatch, s.cfg.Linger, s.cfg.MaxPending, s.cfg.Workers, s.cfg.StrictLinger, s.metrics, degradedRank, overloadDepth),
		topkFn:       topkFn,
		scoresFn:     scoresFn,
		drift:        driftFn,
	}
	old := s.be.Swap(nb)
	s.metrics.SetGeneration(s.gen)
	if old != nil {
		old.batcher.Close() // graceful: pending batches flush on the old engine
	}
	if s.cfg.Cache != nil && old != nil {
		s.cfg.Cache.Clear()
	}
	return s.gen
}

// Generation returns the engine generation currently taking new requests.
func (s *Server) Generation() uint64 { return s.metrics.Generation() }

// N reports the node count of the current generation's graph.
func (s *Server) N() int { return s.be.Load().n }

// Metrics exposes the registry shared by every component of this server.
func (s *Server) Metrics() *Metrics { return s.metrics }

// MaxK reports the effective server-side k cap.
func (s *Server) MaxK() int { return s.cfg.MaxK }

// Close drains the server: admission stops (ErrClosed), pending batches
// flush, in-flight engine calls finish. Idempotent.
func (s *Server) Close() {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if be := s.be.Load(); be != nil {
		be.batcher.Close()
	}
}

func validateNodes(nodes []int, n int) error {
	if len(nodes) == 0 {
		return fmt.Errorf("%w: empty query set", ErrBadRequest)
	}
	for _, q := range nodes {
		if q < 0 || q >= n {
			return fmt.Errorf("%w: node %d out of range [0, %d)", ErrBadRequest, q, n)
		}
	}
	return nil
}

// Validation failures are counted but never reach the batcher: a bad node
// id must not poison the co-batched requests sharing its engine pass.
func (s *Server) reject(err error) error {
	s.metrics.rejected.Add(1)
	return err
}

func (s *Server) deadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.Timeout > 0 {
		if _, has := ctx.Deadline(); !has {
			return context.WithTimeout(ctx, s.cfg.Timeout)
		}
	}
	return ctx, func() {}
}

// degradeVote is the admission-time degradation decision: a request
// arriving with less than MinBudget of deadline left votes to be answered
// cheap rather than risk answering late.
func (s *Server) degradeVote(ctx context.Context) bool {
	mb := s.cfg.Degrade.MinBudget
	if mb <= 0 {
		return false
	}
	dl, ok := ctx.Deadline()
	return ok && time.Until(dl) < mb
}

// columns resolves the current generation and runs one batched engine
// pass on it. When the resolved generation is superseded between the
// load and the enqueue — its batcher rejects with ErrClosed but the
// server as a whole is still open — the request transparently retries on
// the successor, so a reload in progress never surfaces as a caller
// error. Each retry re-resolves the generation, and the returned backend
// is the one that actually answered (its gen names the cache key space,
// its rank structure interprets the returned effective rank).
func (s *Server) columns(ctx context.Context, nodes []int, degrade bool) (*backend, map[int][]float64, int, error) {
	for first := true; ; first = false {
		be := s.be.Load()
		if !first {
			// The successor may serve a different graph; a node id valid
			// under the superseded generation must fail validation, not
			// reach the new engine.
			if err := validateNodes(nodes, be.n); err != nil {
				return be, nil, 0, s.reject(err)
			}
		}
		cols, rank, err := be.batcher.ColumnsDegrade(ctx, nodes, degrade)
		if err != nil {
			if errors.Is(err, ErrClosed) && s.be.Load() != be {
				continue // lost the race with a Swap; the successor is live
			}
			return be, nil, 0, err
		}
		return be, cols, rank, nil
	}
}

// info tags a response with the rank that answered it and the
// generation's live ingestion drift, counting degraded answers in the
// metrics registry. Drift composes additively into ErrorBound — the
// same rule the truncation and quantization bounds follow — and an
// exhausted drift budget marks the answer Degraded even at full rank.
func (s *Server) info(be *backend, rank int) QueryInfo {
	info := QueryInfo{FullRank: be.rank}
	if rank > 0 {
		s.metrics.degraded.Add(1)
		info.Degraded = true
		info.EffectiveRank = rank
		info.ErrorBound = be.bound(rank)
	}
	if be.drift != nil {
		if d, exceeded := be.drift(); d > 0 || exceeded {
			info.DriftBound = d
			info.ErrorBound += d
			if exceeded && !info.Degraded {
				s.metrics.degraded.Add(1)
				info.Degraded = true
			}
		}
	}
	return info
}

// TopK returns the k nodes most similar to the query set (aggregate
// similarity for multi-node sets, each query node excluded), batched with
// concurrent requests. cached reports a cache hit. k is clamped to n and
// rejected beyond Config.MaxK. For degradation tagging, use Search.
func (s *Server) TopK(ctx context.Context, queries []int, k int) (matches []Match, cached bool, err error) {
	res, err := s.Search(ctx, queries, k)
	return res.Matches, res.Cached, err
}

// Search is TopK with response provenance: the result reports whether it
// came from cache and, when the answering batch ran degraded, the
// effective rank and the engine's advertised error bound.
func (s *Server) Search(ctx context.Context, queries []int, k int) (SearchResult, error) {
	start := time.Now()
	be := s.be.Load()
	if err := validateNodes(queries, be.n); err != nil {
		return SearchResult{}, s.reject(err)
	}
	if k < 1 {
		return SearchResult{}, s.reject(fmt.Errorf("%w: k must be >= 1, got %d", ErrBadRequest, k))
	}
	if k > s.cfg.MaxK {
		return SearchResult{}, s.reject(fmt.Errorf("%w: k=%d exceeds server maximum %d", ErrBadRequest, k, s.cfg.MaxK))
	}
	if k > be.n {
		k = be.n // a graph has at most n candidates; clamp instead of erroring
	}

	if s.cfg.Cache != nil {
		if v, ok := s.cfg.Cache.Get(topKKey(be.gen, queries, k)); ok {
			s.metrics.Latency.Observe(time.Since(start).Seconds())
			// A cached entry was exact when computed, but drift is a
			// property of the factors against the *live* graph: tag it
			// with the bound as of now, not as of the entry's insert.
			return SearchResult{Matches: v.([]Match), Cached: true, Info: s.info(be, 0)}, nil
		}
	}

	if be.topkFn != nil {
		return s.searchDirect(ctx, start, be, queries, k)
	}

	ctx, cancel := s.deadline(ctx)
	defer cancel()
	served, cols, rank, err := s.columns(ctx, queries, s.degradeVote(ctx))
	if err != nil {
		return SearchResult{}, err
	}
	matches := selectTopK(cols, queries, k)
	if s.cfg.Cache != nil && rank <= 0 {
		// Key by the generation that served the batch (it may be newer
		// than the one the cache was probed under): the entry must only
		// ever answer lookups against the engine that produced it.
		// Degraded results are never cached — the cache would keep
		// serving them long after the pressure has passed.
		s.cfg.Cache.Put(topKKey(served.gen, queries, k), matches)
	}
	s.metrics.Latency.Observe(time.Since(start).Seconds())
	return SearchResult{Matches: matches, Info: s.info(served, rank)}, nil
}

// Similarity returns the score of every (query, target) pair, batched
// with concurrent requests. For degradation tagging, use Score.
func (s *Server) Similarity(ctx context.Context, queries, targets []int) ([]Pair, error) {
	res, err := s.Score(ctx, queries, targets)
	return res.Pairs, err
}

// Score is Similarity with response provenance (see Search).
func (s *Server) Score(ctx context.Context, queries, targets []int) (PairsResult, error) {
	start := time.Now()
	be := s.be.Load()
	if err := validateNodes(queries, be.n); err != nil {
		return PairsResult{}, s.reject(err)
	}
	if len(targets) == 0 {
		return PairsResult{}, s.reject(fmt.Errorf("%w: empty target set", ErrBadRequest))
	}
	for _, t := range targets {
		if t < 0 || t >= be.n {
			return PairsResult{}, s.reject(fmt.Errorf("%w: target %d out of range [0, %d)", ErrBadRequest, t, be.n))
		}
	}
	if be.scoresFn != nil {
		return s.scoreDirect(ctx, start, be, queries, targets)
	}
	ctx, cancel := s.deadline(ctx)
	defer cancel()
	served, cols, rank, err := s.columns(ctx, queries, s.degradeVote(ctx))
	if err != nil {
		return PairsResult{}, err
	}
	out := make([]Pair, 0, len(queries)*len(targets))
	for _, q := range queries {
		col := cols[q]
		for _, t := range targets {
			out = append(out, Pair{Query: q, Target: t, Score: col[t]})
		}
	}
	s.metrics.Latency.Observe(time.Since(start).Seconds())
	return PairsResult{Pairs: out, Info: s.info(served, rank)}, nil
}

// directRank is the admission-time degradation decision for direct-path
// requests. The batcher's queue-depth trigger has no meaning here (there
// is no admission queue in front of a direct call), so only the
// per-request deadline-budget vote applies.
func (s *Server) directRank(ctx context.Context, be *backend) int {
	if be.degradedRank > 0 && s.degradeVote(ctx) {
		return be.degradedRank
	}
	return 0
}

// admitDirect mirrors the batcher's per-engine-call accounting for a
// direct call, so /metrics reads the same whichever path answered: one
// admission, one engine call, |Q| nodes at occupancy |Q|.
func (s *Server) admitDirect(queries []int, rank int) {
	s.metrics.admitted.Add(1)
	s.metrics.batches.Add(1)
	s.metrics.nodes.Add(int64(len(queries)))
	s.metrics.BatchOccupancy.Observe(float64(len(queries)))
	if rank > 0 {
		s.metrics.degradedBatches.Add(1)
	}
}

// searchDirect answers Search through the backend's direct top-k func.
// Caller has validated queries and k and probed the cache.
func (s *Server) searchDirect(ctx context.Context, start time.Time, be *backend, queries []int, k int) (SearchResult, error) {
	ctx, cancel := s.deadline(ctx)
	defer cancel()
	rank := s.directRank(ctx, be)
	s.admitDirect(queries, rank)
	items, prov, err := be.topkFn(ctx, queries, k, rank)
	if err != nil {
		if ctx.Err() != nil {
			s.metrics.expired.Add(1)
		}
		return SearchResult{}, err
	}
	matches := make([]Match, len(items))
	for i, it := range items {
		matches[i] = Match{Node: it.Node, Score: it.Score}
	}
	info := s.info(be, rank)
	if prov.MissingShards > 0 {
		if !info.Degraded {
			s.metrics.degraded.Add(1)
			info.Degraded = true
		}
		info.MissingShards = prov.MissingShards
		info.ErrorBound += prov.ErrorBound
	}
	// Only full-fidelity answers are cached: a missing-shard merge is as
	// transient as a degraded rank and must not outlive the outage.
	if s.cfg.Cache != nil && rank <= 0 && prov.MissingShards == 0 {
		s.cfg.Cache.Put(topKKey(be.gen, queries, k), matches)
	}
	s.metrics.Latency.Observe(time.Since(start).Seconds())
	return SearchResult{Matches: matches, Info: info}, nil
}

// scoreDirect answers Score through the backend's direct scores func.
// Caller has validated queries and targets.
func (s *Server) scoreDirect(ctx context.Context, start time.Time, be *backend, queries, targets []int) (PairsResult, error) {
	ctx, cancel := s.deadline(ctx)
	defer cancel()
	rank := s.directRank(ctx, be)
	s.admitDirect(queries, rank)
	m, err := be.scoresFn(ctx, queries, targets, rank)
	if err != nil {
		if ctx.Err() != nil {
			s.metrics.expired.Add(1)
		}
		return PairsResult{}, err
	}
	out := make([]Pair, 0, len(queries)*len(targets))
	for qi, q := range queries {
		for ti, t := range targets {
			out = append(out, Pair{Query: q, Target: t, Score: m.At(qi, ti)})
		}
	}
	s.metrics.Latency.Observe(time.Since(start).Seconds())
	return PairsResult{Pairs: out, Info: s.info(be, rank)}, nil
}

// selectTopK mirrors csrplus.Engine.TopK / TopKMulti exactly: single
// queries exclude themselves; multi-source queries rank by summed
// similarity (duplicates in the query set weigh double) excluding every
// query node.
func selectTopK(cols map[int][]float64, queries []int, k int) []Match {
	if len(queries) == 1 {
		q := queries[0]
		items := topk.Select(cols[q], k, q)
		out := make([]Match, len(items))
		for i, it := range items {
			out[i] = Match{Node: it.Node, Score: it.Score}
		}
		return out
	}
	agg := make([]float64, len(cols[queries[0]]))
	for _, q := range queries {
		for i, v := range cols[q] {
			agg[i] += v
		}
	}
	exclude := make(map[int]bool, len(queries))
	for _, q := range queries {
		exclude[q] = true
	}
	items := topk.SelectSet(agg, k, exclude)
	out := make([]Match, 0, len(items))
	for _, it := range items {
		out = append(out, Match{Node: it.Node, Score: it.Score})
	}
	return out
}

// topKKey namespaces cache entries by engine generation: after a Swap,
// every pre-swap entry becomes unreachable by construction, so a stale
// column can never be served against a new index even while old and new
// generations briefly coexist.
func topKKey(gen uint64, queries []int, k int) string {
	ids := make([]string, len(queries))
	for i, q := range queries {
		ids[i] = strconv.Itoa(q)
	}
	return fmt.Sprintf("g%d|topk|%s|%d", gen, strings.Join(ids, ","), k)
}

// Package serve is the production serving layer between an HTTP frontend
// and a csrplus engine. Its core move exploits the paper's multi-source
// complexity O(r(m + n(r + |Q|))): because the per-call cost is dominated
// by terms independent of |Q|, concurrent single-source requests are
// dynamically batched — coalesced into one multi-source engine pass and
// fanned back out — instead of issued one-by-one (the same pattern used in
// inference serving). Around that batcher it layers a bounded worker pool,
// admission control (bounded queue shedding with ErrOverloaded, deadlines
// via context), an optional instrumented LRU result cache, a metrics
// registry, and graceful drain on Close.
package serve

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"csrplus/internal/cache"
	"csrplus/internal/dense"
	"csrplus/internal/topk"
)

// DefaultMaxK is the server-side cap on requested k when Config.MaxK is
// unset: large enough for any ranking UI, small enough that one request
// cannot demand a near-full sort of a massive graph's score vector.
const DefaultMaxK = 1000

// Config tunes a Server. The zero value selects sensible production
// defaults (documented per field).
type Config struct {
	// MaxBatch is the most unique query nodes coalesced into one engine
	// call. Default 32. 1 disables coalescing (each request is its own
	// engine call) — the "unbatched" baseline in benchmarks.
	MaxBatch int
	// Linger is how long a request may wait for co-batching before a
	// partial batch is flushed. Default 2ms; 0 flushes immediately,
	// batching only requests that are already queued.
	Linger time.Duration
	// Workers bounds concurrent engine calls. Default GOMAXPROCS.
	Workers int
	// StrictLinger disables the idle-worker eager flush: partial batches
	// always wait for the MaxBatch or Linger trigger. This maximises
	// batch occupancy — the right trade for throughput-bound deployments
	// — at the cost of up to Linger extra latency under light load. The
	// default (false) flushes a partial batch whenever a worker is idle,
	// optimising latency.
	StrictLinger bool
	// MaxPending bounds the admission queue; beyond it requests are shed
	// with ErrOverloaded. Default 1024.
	MaxPending int
	// MaxK caps the k a single request may ask for (400 to the client
	// beyond it). Default DefaultMaxK.
	MaxK int
	// Timeout is the per-request deadline applied when the caller's
	// context has none. Default 0 = no server-imposed deadline.
	Timeout time.Duration
	// Cache, when non-nil, memoises TopK results and is instrumented
	// through the server's metrics registry.
	Cache *cache.LRU
}

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = 32
	}
	if c.Linger == 0 {
		c.Linger = 2 * time.Millisecond
	} else if c.Linger < 0 {
		c.Linger = 0
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxPending == 0 {
		c.MaxPending = 1024
	}
	if c.MaxK == 0 {
		c.MaxK = DefaultMaxK
	}
	return c
}

// Match is one top-k result, JSON-compatible with csrplus.Match.
type Match struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}

// Pair is one (query, target) similarity score.
type Pair struct {
	Query  int     `json:"query"`
	Target int     `json:"target"`
	Score  float64 `json:"score"`
}

// Server answers top-k and similarity requests over one engine, batching
// concurrent requests into multi-source passes. Safe for concurrent use.
type Server struct {
	n       int
	cfg     Config
	batcher *Batcher
	metrics *Metrics
}

// New builds a Server over a graph of n nodes whose columns are produced
// by queryFn (normally csrplus.(*Engine).Query).
func New(n int, queryFn QueryFunc, cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	if cfg.Cache != nil {
		cfg.Cache.SetRecorder(m)
	}
	return &Server{
		n:       n,
		cfg:     cfg,
		batcher: NewBatcher(queryFn, cfg.MaxBatch, cfg.Linger, cfg.MaxPending, cfg.Workers, cfg.StrictLinger, m),
		metrics: m,
	}
}

// MatQueryFunc answers one multi-source engine pass into a reusable
// scratch matrix: the n x |Q| result reuses scratch's backing array when
// its capacity suffices (nil scratch allocates) and is returned.
// csrplus.(*Engine).QueryInto satisfies it.
type MatQueryFunc func(queries []int, scratch *dense.Mat) (*dense.Mat, error)

// NewMat is New for a scratch-aware engine: every engine pass borrows an
// n x maxBatch-capacity matrix from a sync.Pool instead of allocating
// n x |Q| afresh, which keeps the steady-state serving hot path
// allocation-light (the per-column copies handed to callers remain — they
// outlive the batch). Everything else matches New.
func NewMat(n int, queryFn MatQueryFunc, cfg Config) *Server {
	var pool sync.Pool
	fn := func(queries []int) ([][]float64, error) {
		scratch, _ := pool.Get().(*dense.Mat)
		s, err := queryFn(queries, scratch)
		if err != nil {
			if scratch != nil {
				pool.Put(scratch)
			}
			return nil, err
		}
		cols := make([][]float64, len(queries))
		for j := range queries {
			cols[j] = s.Col(j, nil)
		}
		pool.Put(s) // s is scratch when it had capacity, else its grown replacement
		return cols, nil
	}
	return New(n, fn, cfg)
}

// Metrics exposes the registry shared by every component of this server.
func (s *Server) Metrics() *Metrics { return s.metrics }

// MaxK reports the effective server-side k cap.
func (s *Server) MaxK() int { return s.cfg.MaxK }

// Close drains the server: admission stops (ErrClosed), pending batches
// flush, in-flight engine calls finish. Idempotent.
func (s *Server) Close() { s.batcher.Close() }

func (s *Server) validateNodes(nodes []int) error {
	if len(nodes) == 0 {
		return fmt.Errorf("%w: empty query set", ErrBadRequest)
	}
	for _, q := range nodes {
		if q < 0 || q >= s.n {
			return fmt.Errorf("%w: node %d out of range [0, %d)", ErrBadRequest, q, s.n)
		}
	}
	return nil
}

// Validation failures are counted but never reach the batcher: a bad node
// id must not poison the co-batched requests sharing its engine pass.
func (s *Server) reject(err error) error {
	s.metrics.rejected.Add(1)
	return err
}

func (s *Server) deadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.Timeout > 0 {
		if _, has := ctx.Deadline(); !has {
			return context.WithTimeout(ctx, s.cfg.Timeout)
		}
	}
	return ctx, func() {}
}

// TopK returns the k nodes most similar to the query set (aggregate
// similarity for multi-node sets, each query node excluded), batched with
// concurrent requests. cached reports a cache hit. k is clamped to n and
// rejected beyond Config.MaxK.
func (s *Server) TopK(ctx context.Context, queries []int, k int) (matches []Match, cached bool, err error) {
	start := time.Now()
	if err := s.validateNodes(queries); err != nil {
		return nil, false, s.reject(err)
	}
	if k < 1 {
		return nil, false, s.reject(fmt.Errorf("%w: k must be >= 1, got %d", ErrBadRequest, k))
	}
	if k > s.cfg.MaxK {
		return nil, false, s.reject(fmt.Errorf("%w: k=%d exceeds server maximum %d", ErrBadRequest, k, s.cfg.MaxK))
	}
	if k > s.n {
		k = s.n // a graph has at most n candidates; clamp instead of erroring
	}

	var key string
	if s.cfg.Cache != nil {
		key = topKKey(queries, k)
		if v, ok := s.cfg.Cache.Get(key); ok {
			s.metrics.Latency.Observe(time.Since(start).Seconds())
			return v.([]Match), true, nil
		}
	}

	ctx, cancel := s.deadline(ctx)
	defer cancel()
	cols, err := s.batcher.Columns(ctx, queries)
	if err != nil {
		return nil, false, err
	}
	matches = selectTopK(cols, queries, k)
	if s.cfg.Cache != nil {
		s.cfg.Cache.Put(key, matches)
	}
	s.metrics.Latency.Observe(time.Since(start).Seconds())
	return matches, false, nil
}

// Similarity returns the score of every (query, target) pair, batched
// with concurrent requests.
func (s *Server) Similarity(ctx context.Context, queries, targets []int) ([]Pair, error) {
	start := time.Now()
	if err := s.validateNodes(queries); err != nil {
		return nil, s.reject(err)
	}
	if len(targets) == 0 {
		return nil, s.reject(fmt.Errorf("%w: empty target set", ErrBadRequest))
	}
	for _, t := range targets {
		if t < 0 || t >= s.n {
			return nil, s.reject(fmt.Errorf("%w: target %d out of range [0, %d)", ErrBadRequest, t, s.n))
		}
	}
	ctx, cancel := s.deadline(ctx)
	defer cancel()
	cols, err := s.batcher.Columns(ctx, queries)
	if err != nil {
		return nil, err
	}
	out := make([]Pair, 0, len(queries)*len(targets))
	for _, q := range queries {
		col := cols[q]
		for _, t := range targets {
			out = append(out, Pair{Query: q, Target: t, Score: col[t]})
		}
	}
	s.metrics.Latency.Observe(time.Since(start).Seconds())
	return out, nil
}

// selectTopK mirrors csrplus.Engine.TopK / TopKMulti exactly: single
// queries exclude themselves; multi-source queries rank by summed
// similarity (duplicates in the query set weigh double) excluding every
// query node.
func selectTopK(cols map[int][]float64, queries []int, k int) []Match {
	if len(queries) == 1 {
		q := queries[0]
		items := topk.Select(cols[q], k, q)
		out := make([]Match, len(items))
		for i, it := range items {
			out[i] = Match{Node: it.Node, Score: it.Score}
		}
		return out
	}
	agg := make([]float64, len(cols[queries[0]]))
	for _, q := range queries {
		for i, v := range cols[q] {
			agg[i] += v
		}
	}
	exclude := map[int]bool{}
	for _, q := range queries {
		exclude[q] = true
	}
	items := topk.Select(agg, k+len(queries), -1)
	out := make([]Match, 0, k)
	for _, it := range items {
		if exclude[it.Node] {
			continue
		}
		out = append(out, Match{Node: it.Node, Score: it.Score})
		if len(out) == k {
			break
		}
	}
	return out
}

func topKKey(queries []int, k int) string {
	ids := make([]string, len(queries))
	for i, q := range queries {
		ids[i] = strconv.Itoa(q)
	}
	return fmt.Sprintf("topk|%s|%d", strings.Join(ids, ","), k)
}

package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"csrplus/internal/cache"
	"csrplus/internal/dense"
)

// fakeRanked builds a Ranked engine whose every score reports the rank
// the pass actually ran at — full when asked for 0 or >= fullRank — so
// tests can tell exact answers from degraded ones by value.
func fakeRanked(n, fullRank int) Ranked {
	return Ranked{
		N:     n,
		Rank:  fullRank,
		Bound: func(rank int) float64 { return float64(fullRank - rank) },
		Query: func(ctx context.Context, queries []int, rank int, scratch *dense.Mat) (*dense.Mat, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			effective := fullRank
			if rank > 0 && rank < fullRank {
				effective = rank
			}
			m := scratch.Reuse(n, len(queries))
			for j := range queries {
				for i := 0; i < n; i++ {
					m.Set(i, j, float64(effective)+float64(i)/float64(2*n))
				}
			}
			return m, nil
		},
	}
}

func TestRankedFullRankByDefault(t *testing.T) {
	sv := NewRanked(fakeRanked(16, 8), Config{Linger: -1, Degrade: DegradeConfig{Rank: 2}})
	defer sv.Close()
	res, err := sv.Search(context.Background(), []int{3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Info.Degraded || res.Info.EffectiveRank != 0 || res.Info.FullRank != 8 || res.Info.ErrorBound != 0 {
		t.Fatalf("unpressured request degraded: %+v", res.Info)
	}
	if int(res.Matches[0].Score) != 8 {
		t.Fatalf("score %v did not come from a full-rank pass", res.Matches[0].Score)
	}
	if sv.Metrics().Degraded() != 0 || sv.Metrics().DegradedBatches() != 0 {
		t.Fatalf("degraded counters moved: %d/%d", sv.Metrics().Degraded(), sv.Metrics().DegradedBatches())
	}
}

// A request admitted with less deadline budget than MinBudget must be
// answered at the truncated rank and tagged with rank + error bound.
func TestDegradeOnDeadlineBudget(t *testing.T) {
	sv := NewRanked(fakeRanked(16, 8), Config{
		Linger:  -1,
		Degrade: DegradeConfig{Rank: 2, MinBudget: time.Hour},
	})
	defer sv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := sv.Search(ctx, []int{3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Info.Degraded || res.Info.EffectiveRank != 2 || res.Info.FullRank != 8 {
		t.Fatalf("info = %+v, want degraded at rank 2 of 8", res.Info)
	}
	if res.Info.ErrorBound != 6 {
		t.Fatalf("error bound = %v, want engine's advertised 6", res.Info.ErrorBound)
	}
	if int(res.Matches[0].Score) != 2 {
		t.Fatalf("score %v did not come from a rank-2 pass", res.Matches[0].Score)
	}
	if sv.Metrics().Degraded() != 1 || sv.Metrics().DegradedBatches() != 1 {
		t.Fatalf("degraded counters: %d/%d", sv.Metrics().Degraded(), sv.Metrics().DegradedBatches())
	}
	pr, err := sv.Score(ctx, []int{3}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Info.Degraded || len(pr.Pairs) != 2 {
		t.Fatalf("Score under budget pressure: %+v", pr)
	}
}

// Degradation must not arm when the configured rank is not a real
// truncation of the engine's rank, or the backend has no rank at all.
func TestDegradeDisabledWithoutRankStructure(t *testing.T) {
	ctxShort, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	sv := NewRanked(fakeRanked(16, 8), Config{
		Linger:  -1,
		Degrade: DegradeConfig{Rank: 8, MinBudget: time.Hour}, // rank >= full: nothing to truncate
	})
	defer sv.Close()
	res, err := sv.Search(ctxShort, []int{3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Info.Degraded {
		t.Fatalf("degraded with nothing to truncate: %+v", res.Info)
	}

	plain := New(16, func(queries []int) ([][]float64, error) {
		cols := make([][]float64, len(queries))
		for j := range cols {
			cols[j] = make([]float64, 16)
		}
		return cols, nil
	}, Config{Linger: -1, Degrade: DegradeConfig{Rank: 2, MinBudget: time.Hour}})
	defer plain.Close()
	res, err = plain.Search(ctxShort, []int{3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Info.Degraded || res.Info.FullRank != 0 {
		t.Fatalf("plain backend reported rank structure: %+v", res.Info)
	}
}

// Degraded results must never enter the cache: the next unpressured
// request recomputes at full rank rather than inheriting a cheap answer.
func TestDegradedResultsAreNotCached(t *testing.T) {
	sv := NewRanked(fakeRanked(16, 8), Config{
		Linger:  -1,
		Cache:   cache.New(8),
		Degrade: DegradeConfig{Rank: 2, MinBudget: time.Hour},
	})
	defer sv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := sv.Search(ctx, []int{3}, 2)
	if err != nil || !res.Info.Degraded {
		t.Fatalf("degraded search: %+v, %v", res.Info, err)
	}

	res, err = sv.Search(context.Background(), []int{3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("full-rank request served the degraded request's cache entry")
	}
	if res.Info.Degraded || int(res.Matches[0].Score) != 8 {
		t.Fatalf("recomputation not full rank: %+v score=%v", res.Info, res.Matches[0].Score)
	}

	// The full-rank result is cacheable as usual.
	res, err = sv.Search(context.Background(), []int{3}, 2)
	if err != nil || !res.Cached {
		t.Fatalf("full-rank result not cached: %+v, %v", res, err)
	}
}

// overloaded() is the batch-level pressure trigger: queue depth past the
// threshold, or any shed since the last batch.
func TestBatcherOverloadSignal(t *testing.T) {
	m := NewMetrics()
	b := newBatcher(func(context.Context, []int, int) ([][]float64, error) { return nil, nil },
		1, 0, 4, 1, false, m, 2, 3)
	defer b.Close()

	if b.overloaded() {
		t.Fatal("fresh batcher reports overload")
	}
	m.queueDepth.Store(4) // past the depth threshold of 3
	if !b.overloaded() {
		t.Fatal("queue depth 4 > 3 not seen as overload")
	}
	m.queueDepth.Store(0)
	m.shed.Add(1) // shed since last check: hard pressure
	if !b.overloaded() {
		t.Fatal("fresh shed not seen as overload")
	}
	if b.overloaded() {
		t.Fatal("stale shed still counts as overload")
	}

	off := newBatcher(func(context.Context, []int, int) ([][]float64, error) { return nil, nil },
		1, 0, 4, 1, false, m, 0, 0)
	defer off.Close()
	m.queueDepth.Store(100)
	if off.overloaded() {
		t.Fatal("degradation-disabled batcher reports overload")
	}
	m.queueDepth.Store(0)
}

// A batch whose every caller has gone away must cancel the engine pass
// mid-flight, releasing the pool worker.
func TestBatchContextCancelsAbandonedPass(t *testing.T) {
	engineCancelled := make(chan struct{})
	e := Ranked{
		N:    8,
		Rank: 4,
		Query: func(ctx context.Context, queries []int, rank int, scratch *dense.Mat) (*dense.Mat, error) {
			select {
			case <-ctx.Done():
				close(engineCancelled)
				return nil, ctx.Err()
			case <-time.After(10 * time.Second):
				return nil, errors.New("engine pass never cancelled")
			}
		},
	}
	sv := NewRanked(e, Config{Linger: -1, Workers: 1})
	defer sv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := sv.Search(ctx, []int{1}, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	select {
	case <-engineCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("engine pass kept running after its last caller left")
	}
}

// Co-batched callers with independent contexts: the batch survives one
// caller leaving and still answers the other.
func TestBatchContextSurvivesPartialAbandonment(t *testing.T) {
	release := make(chan struct{})
	e := Ranked{
		N:    8,
		Rank: 4,
		Query: func(ctx context.Context, queries []int, rank int, scratch *dense.Mat) (*dense.Mat, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-release:
			}
			m := scratch.Reuse(8, len(queries))
			for j := range queries {
				for i := 0; i < 8; i++ {
					m.Set(i, j, 1)
				}
			}
			return m, nil
		},
	}
	// One worker and strict linger force both requests into one batch.
	sv := NewRanked(e, Config{Linger: 50 * time.Millisecond, Workers: 1, StrictLinger: true, MaxBatch: 2})
	defer sv.Close()

	shortCtx, shortCancel := context.WithCancel(context.Background())
	errs := make(chan error, 2)
	go func() {
		_, err := sv.Search(shortCtx, []int{1}, 2)
		errs <- err
	}()
	go func() {
		_, err := sv.Search(context.Background(), []int{2}, 2)
		errs <- err
	}()
	time.Sleep(100 * time.Millisecond) // both co-batched, engine blocked on release
	shortCancel()                      // first caller leaves; batch must keep going
	select {
	case err := <-errs:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("abandoning caller got %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoning caller never returned")
	}
	close(release)
	select {
	case err := <-errs:
		if err != nil {
			t.Fatalf("surviving caller: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("surviving caller never answered")
	}
}

// TestDriftTaintsAnswers: a generation with a Drift func composes the
// live drift bound into every answer — including cache hits, which must
// report drift as of NOW, not as of the entry's insert — and an
// exhausted drift budget marks answers Degraded even at full rank.
func TestDriftTaintsAnswers(t *testing.T) {
	var bound float64
	var exceeded bool
	e := fakeRanked(16, 8)
	e.Drift = func() (float64, bool) { return bound, exceeded }
	sv := NewRanked(e, Config{Linger: -1, Cache: cache.New(8)})
	defer sv.Close()

	res, err := sv.Search(context.Background(), []int{3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Info.Degraded || res.Info.DriftBound != 0 || res.Info.ErrorBound != 0 {
		t.Fatalf("zero drift tainted the answer: %+v", res.Info)
	}

	bound = 0.25
	res, err = sv.Search(context.Background(), []int{3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("second identical search missed the cache")
	}
	if res.Info.DriftBound != 0.25 || res.Info.ErrorBound != 0.25 {
		t.Fatalf("cache hit not tagged with live drift: %+v", res.Info)
	}
	if res.Info.Degraded {
		t.Fatalf("drift inside budget marked degraded: %+v", res.Info)
	}

	exceeded = true
	res, err = sv.Search(context.Background(), []int{3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Info.Degraded || res.Info.DriftBound != 0.25 {
		t.Fatalf("exhausted drift budget not surfaced: %+v", res.Info)
	}

	pr, err := sv.Score(context.Background(), []int{3}, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Info.Degraded || pr.Info.DriftBound != 0.25 || pr.Info.ErrorBound != 0.25 {
		t.Fatalf("score path not tainted: %+v", pr.Info)
	}
}

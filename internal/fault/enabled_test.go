//go:build faultinject

package fault

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHitDeterministicPerSeed(t *testing.T) {
	counts := func(seed int64) (injected int64) {
		Enable(seed)
		defer Disable()
		Arm(SiteBatchQuery, Plan{ErrProb: 0.3})
		for i := 0; i < 1000; i++ {
			Hit(SiteBatchQuery)
		}
		return Injected(SiteBatchQuery)
	}
	a, b := counts(7), counts(7)
	if a != b {
		t.Fatalf("same seed, different injection counts: %d vs %d", a, b)
	}
	if a == 0 || a == 1000 {
		t.Fatalf("ErrProb=0.3 injected %d/1000", a)
	}
	if c := counts(8); c == a {
		t.Fatalf("different seeds produced identical counts (%d); suspicious", c)
	}
}

func TestHitDeliversPlanError(t *testing.T) {
	Enable(1)
	defer Disable()
	boom := errors.New("boom")
	Arm(SiteReloadLoad, Plan{ErrProb: 1, Err: boom})
	if err := Hit(SiteReloadLoad); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if err := Hit(SiteBatchQuery); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	Disarm(SiteReloadLoad)
	if err := Hit(SiteReloadLoad); err != nil {
		t.Fatalf("disarmed site fired: %v", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	Enable(1)
	defer Disable()
	Arm(SiteBatchQuery, Plan{LatencyProb: 1, Latency: 20 * time.Millisecond})
	start := time.Now()
	if err := Hit(SiteBatchQuery); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency plan slept only %v", d)
	}
	if Injected(SiteBatchQuery) != 0 {
		t.Fatal("latency-only firing counted as injected")
	}
}

func TestTornWriterIsSticky(t *testing.T) {
	Enable(3)
	defer Disable()
	Arm(SiteIndexWrite, Plan{TornProb: 1, TornBytes: 3})
	var buf bytes.Buffer
	w := Writer(SiteIndexWrite, &buf)
	n, err := w.Write([]byte("hello world"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: n=%d err=%v, want 3 bytes then ErrInjected", n, err)
	}
	if _, err := w.Write([]byte("more")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after tear: err = %v, want sticky failure", err)
	}
	if buf.String() != "hel" {
		t.Fatalf("stream after tear = %q", buf.String())
	}
	// A second wrapped writer tears independently — fresh stream, fresh fate.
	var buf2 bytes.Buffer
	w2 := Writer(SiteIndexWrite, &buf2)
	if n, _ := w2.Write([]byte("abcdef")); n != 3 {
		t.Fatalf("second writer wrote %d bytes before tearing, want 3", n)
	}
}

func TestReaderInjectsErrors(t *testing.T) {
	Enable(5)
	defer Disable()
	Arm(SiteIndexRead, Plan{ErrProb: 1})
	r := Reader(SiteIndexRead, strings.NewReader("payload"))
	if _, err := io.ReadAll(r); !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v, want ErrInjected", err)
	}
	Disarm(SiteIndexRead)
	b, err := io.ReadAll(Reader(SiteIndexRead, strings.NewReader("payload")))
	if err != nil || string(b) != "payload" {
		t.Fatalf("disarmed reader: %q, %v", b, err)
	}
}

func TestShouldFailAlloc(t *testing.T) {
	Enable(9)
	defer Disable()
	Arm(SiteScratchAlloc, Plan{AllocProb: 0.5})
	fails := 0
	for i := 0; i < 1000; i++ {
		if ShouldFailAlloc(SiteScratchAlloc) {
			fails++
		}
	}
	if fails < 300 || fails > 700 {
		t.Fatalf("AllocProb=0.5 failed %d/1000", fails)
	}
}

// The registry is consulted from pool workers, HTTP handlers and reload
// goroutines concurrently; this must be race-clean under -race.
func TestConcurrentHits(t *testing.T) {
	Enable(11)
	defer Disable()
	Arm(SiteBatchQuery, Plan{ErrProb: 0.2, LatencyProb: 0.1, Latency: time.Microsecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				Hit(SiteBatchQuery)
				ShouldFailAlloc(SiteScratchAlloc)
			}
		}()
	}
	wg.Wait()
	if got := Hits(SiteBatchQuery); got != 4000 {
		t.Fatalf("hits = %d, want 4000", got)
	}
}

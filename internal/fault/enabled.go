//go:build faultinject

package fault

import (
	"hash/fnv"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the chaos build of the injection hooks (-tags faultinject).
// The registry is process-global: chaos tests Enable(seed) once, Arm the
// sites under test, and Disable in cleanup. All entry points are safe for
// concurrent use — sites are hit from pool workers, reload goroutines and
// HTTP handlers at once under -race.

type site struct {
	mu       sync.Mutex
	plan     Plan
	rng      *rand.Rand
	hits     atomic.Int64
	injected atomic.Int64
}

var registry struct {
	mu      sync.RWMutex
	enabled bool
	seed    int64
	sites   map[string]*site
}

// Enabled reports whether fault injection is switched on.
func Enabled() bool {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return registry.enabled
}

// Enable switches injection on and resets the registry under seed. Sites
// armed before Enable are forgotten: each test's fault universe starts
// empty and fully determined by (seed, its own Arm calls).
func Enable(seed int64) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	registry.enabled = true
	registry.seed = seed
	registry.sites = make(map[string]*site)
}

// Disable switches injection off and clears every armed site.
func Disable() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	registry.enabled = false
	registry.sites = nil
}

// siteSeed derives a per-site seed so one site's draw sequence is
// independent of traffic at every other site.
func siteSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// Arm installs plan at a named site (replacing any previous plan and
// restarting the site's deterministic draw sequence). Arming before
// Enable is a no-op.
func Arm(name string, plan Plan) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if !registry.enabled {
		return
	}
	registry.sites[name] = &site{
		plan: plan,
		rng:  rand.New(rand.NewSource(siteSeed(registry.seed, name))),
	}
}

// Disarm removes a site's plan; hooks at the site stop firing.
func Disarm(name string) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	delete(registry.sites, name)
}

func lookup(name string) *site {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	if !registry.enabled {
		return nil
	}
	return registry.sites[name]
}

// Hits reports how many times a site's hooks were consulted; Injected how
// many faults (errors, tears, failed allocs) it actually delivered.
// Latency-only firings do not count as injected.
func Hits(name string) int64 {
	if s := lookup(name); s != nil {
		return s.hits.Load()
	}
	return 0
}

func Injected(name string) int64 {
	if s := lookup(name); s != nil {
		return s.injected.Load()
	}
	return 0
}

// draw runs one latency/error decision under the site lock so the RNG
// sequence is serialised (deterministic in count, not in which goroutine
// absorbs each fault).
func (s *site) draw() (sleep time.Duration, err error) {
	s.mu.Lock()
	p := s.plan
	if p.LatencyProb > 0 && s.rng.Float64() < p.LatencyProb {
		sleep = p.Latency
	}
	if p.ErrProb > 0 && s.rng.Float64() < p.ErrProb {
		err = p.err()
	}
	s.mu.Unlock()
	return sleep, err
}

// Hit consults a site: it may sleep (latency spike), then may return the
// site's injected error. Unarmed or disabled sites return nil immediately.
func Hit(name string) error {
	s := lookup(name)
	if s == nil {
		return nil
	}
	s.hits.Add(1)
	sleep, err := s.draw()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if err != nil {
		s.injected.Add(1)
	}
	return err
}

// ShouldFailAlloc reports whether an instrumented allocation should be
// made to fail at this site.
func ShouldFailAlloc(name string) bool {
	s := lookup(name)
	if s == nil {
		return false
	}
	s.hits.Add(1)
	s.mu.Lock()
	fail := s.plan.AllocProb > 0 && s.rng.Float64() < s.plan.AllocProb
	s.mu.Unlock()
	if fail {
		s.injected.Add(1)
	}
	return fail
}

// faultWriter injects write errors and torn writes. A tear is sticky: once
// a chunk is cut short, every later write fails too — the stream after a
// crash has no more bytes, not a hole followed by more data.
type faultWriter struct {
	name string
	w    io.Writer
	torn bool
}

// Writer wraps w with the site's write faults. Each wrapped writer tears
// independently (one torn file, not one torn byte offset shared by every
// file the process ever writes).
func Writer(name string, w io.Writer) io.Writer {
	return &faultWriter{name: name, w: w}
}

func (f *faultWriter) Write(p []byte) (int, error) {
	if f.torn {
		return 0, ErrInjected
	}
	s := lookup(f.name)
	if s == nil {
		return f.w.Write(p)
	}
	s.hits.Add(1)
	s.mu.Lock()
	plan := s.plan
	tear := plan.TornProb > 0 && s.rng.Float64() < plan.TornProb
	var err error
	if !tear && plan.ErrProb > 0 && s.rng.Float64() < plan.ErrProb {
		err = plan.err()
	}
	s.mu.Unlock()
	if tear {
		s.injected.Add(1)
		f.torn = true
		keep := plan.TornBytes
		if keep > len(p) {
			keep = len(p)
		}
		n, werr := f.w.Write(p[:keep])
		if werr != nil {
			return n, werr
		}
		return n, ErrInjected
	}
	if err != nil {
		s.injected.Add(1)
		return 0, err
	}
	return f.w.Write(p)
}

// faultReader injects read errors and latency.
type faultReader struct {
	name string
	r    io.Reader
}

// Reader wraps r with the site's read faults.
func Reader(name string, r io.Reader) io.Reader {
	return &faultReader{name: name, r: r}
}

func (f *faultReader) Read(p []byte) (int, error) {
	s := lookup(f.name)
	if s == nil {
		return f.r.Read(p)
	}
	s.hits.Add(1)
	sleep, err := s.draw()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if err != nil {
		s.injected.Add(1)
		return 0, err
	}
	return f.r.Read(p)
}

//go:build !faultinject

package fault

import (
	"bytes"
	"strings"
	"testing"
)

// The production build must be inert even when a test (mistakenly compiled
// without the tag) goes through the full enable/arm motions: hooks return
// zero values and wrappers are identity.
func TestDisabledBuildIsInert(t *testing.T) {
	Enable(42)
	defer Disable()
	Arm(SiteBatchQuery, Plan{ErrProb: 1})
	if Enabled() {
		t.Fatal("Enabled() = true without the faultinject tag")
	}
	for i := 0; i < 100; i++ {
		if err := Hit(SiteBatchQuery); err != nil {
			t.Fatalf("Hit injected %v in the production build", err)
		}
		if ShouldFailAlloc(SiteScratchAlloc) {
			t.Fatal("ShouldFailAlloc fired in the production build")
		}
	}
	if Hits(SiteBatchQuery) != 0 || Injected(SiteBatchQuery) != 0 {
		t.Fatal("counters advanced in the production build")
	}

	var buf bytes.Buffer
	if w := Writer(SiteIndexWrite, &buf); w != &buf {
		t.Fatal("Writer is not identity in the production build")
	}
	r := strings.NewReader("x")
	if got := Reader(SiteIndexRead, r); got != r {
		t.Fatal("Reader is not identity in the production build")
	}
}

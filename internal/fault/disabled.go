//go:build !faultinject

package fault

import "io"

// This file is the production build of the injection hooks: every function
// is an empty leaf the compiler inlines to nothing (Writer and Reader
// return their argument unchanged), so instrumented code paths carry zero
// overhead when the faultinject tag is absent. The enabled counterparts
// live in enabled.go.

// Enabled reports whether fault injection is compiled in and switched on.
func Enabled() bool { return false }

// Enable, Disable, Arm and Disarm are no-ops without the faultinject tag;
// chaos tests that call them must carry the tag themselves.
func Enable(seed int64)          {}
func Disable()                   {}
func Arm(site string, plan Plan) {}
func Disarm(site string)         {}
func Hits(site string) int64     { return 0 }
func Injected(site string) int64 { return 0 }

// Hit never fires in the production build.
func Hit(site string) error { return nil }

// ShouldFailAlloc never fires in the production build.
func ShouldFailAlloc(site string) bool { return false }

// Writer returns w unchanged in the production build.
func Writer(site string, w io.Writer) io.Writer { return w }

// Reader returns r unchanged in the production build.
func Reader(site string, r io.Reader) io.Reader { return r }

package fault

import (
	"io"
	"testing"
)

// These benchmarks measure the cost of an *inactive* hook — what the
// instrumented production paths pay when no chaos test has armed the
// site. They carry no build tag, so the same benchmark compares both
// builds:
//
//	go test -run='^$' -bench=Hook ./internal/fault/
//	go test -run='^$' -bench=Hook -tags faultinject ./internal/fault/
//
// Without the tag every hook is an empty leaf the compiler inlines away,
// so the first run should be indistinguishable from an empty loop —
// that is the "disabled fault path is zero-overhead" guarantee. With the
// tag an unarmed hook costs one RLock'd registry lookup.

func BenchmarkHookHit(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Hit(SiteBatchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHookShouldFailAlloc(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ShouldFailAlloc(SiteScratchAlloc) {
			b.Fatal("unarmed site fired")
		}
	}
}

func BenchmarkHookWriter(b *testing.B) {
	buf := make([]byte, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := Writer(SiteIndexWrite, io.Discard)
		if _, err := w.Write(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// Package fault is a deterministic, seedable fault-injection registry for
// chaos testing the serving stack. Production code is instrumented with
// named sites — fault.Hit(fault.SiteBatchQuery), fault.Writer(site, w) —
// and a chaos test arms a subset of sites with a Plan (probabilistic
// errors, torn writes, latency spikes, forced allocation failures) under a
// fixed seed, then asserts the system's invariants hold while the faults
// fire.
//
// The package has two builds selected by the `faultinject` build tag:
//
//   - Without the tag (the default, what production binaries and tier-1
//     tests compile), every hook is an empty function returning the zero
//     value. The compiler inlines them to nothing, so an instrumented hot
//     path costs exactly what an uninstrumented one does.
//   - With -tags faultinject, the hooks consult the registry. Chaos tests
//     carry the same tag, so `go test -tags faultinject -race ./...` runs
//     the full suite and a plain `go test ./...` cannot even express an
//     armed fault.
//
// Determinism: every site draws from its own RNG seeded by the global seed
// XOR a hash of the site name, so the fault sequence at one site does not
// depend on how often other sites are hit, and a fixed seed reproduces the
// same faults across runs (modulo goroutine interleaving, which decides
// which request absorbs each fault but not how many fire).
package fault

import (
	"errors"
	"time"
)

// Injection sites compiled into the serving stack. A site name is an
// address: Arm(site, plan) makes the hooks at that site start firing.
const (
	// SiteIndexWrite guards every payload write of core.(*Index).WriteTo —
	// torn/short writes and write errors land mid-file, upstream of the
	// CRC, exactly like a disk filling up or a kernel page-out failure.
	SiteIndexWrite = "core/index.write"
	// SiteIndexSync guards the pre-rename fsync in core.SaveIndex.
	SiteIndexSync = "core/index.fsync"
	// SiteIndexRead guards the payload reads of core.ReadIndex (via
	// core.LoadIndex): probabilistic read errors and latency model a
	// degraded disk or a network filesystem hiccup during reload.
	SiteIndexRead = "core/index.read"
	// SiteIndexMap fires immediately before the mmap syscall in
	// core.MapIndex/MapShard. An injected fault models mmap refusal
	// (ulimit, address-space fragmentation) — an environmental failure,
	// so core.LoadIndex degrades to the buffered decode path instead of
	// failing the load.
	SiteIndexMap = "core/index.mmap"
	// SiteIndexVerify fires before the factor-block CRC pass of a v2
	// snapshot (eager in MapIndex, deferred in VerifyPayload). Unlike a
	// map fault, a verify failure means the bytes cannot be trusted, so
	// it fails the load and drives the recovery ladder.
	SiteIndexVerify = "core/index.verify"
	// SiteCurrentWrite guards the CURRENT pointer write in
	// core.SetCurrent — the torn-CURRENT crash the recovery path must
	// survive.
	SiteCurrentWrite = "core/current.write"
	// SiteReloadLoad fires at the top of every reload.Manager load
	// attempt, before the LoadFunc runs: a flapping snapshot source.
	SiteReloadLoad = "reload/load"
	// SiteBatchQuery fires on a pool worker immediately before each
	// coalesced engine pass: engine-level latency spikes and failures
	// that every co-batched request observes at once.
	SiteBatchQuery = "serve/batch.query"
	// SiteWireDial fires in the wire client immediately before each HTTP
	// request to a shard worker — the place a connect timeout, refused
	// connection, or DNS failure would surface.
	SiteWireDial = "wire/dial"
	// SiteWireRead guards the wire client's response-body reads, so chaos
	// can model a worker dying mid-response (truncated or erroring body
	// after a healthy status line).
	SiteWireRead = "wire/read"
	// SiteScratchAlloc gates the scratch-matrix acquisition on the query
	// path: a forced allocation failure models memory pressure at the
	// worst moment (ErrAllocFailed surfaces as the engine error).
	SiteScratchAlloc = "serve/scratch.alloc"
	// SiteWALAppend guards every frame write of the ingest WAL: torn
	// writes here are the crash-mid-append a replay must truncate, and
	// write errors are the full disk an Append must surface before
	// acknowledging durability.
	SiteWALAppend = "ingest/wal.append"
	// SiteWALSync guards the group-commit fsync in the ingest WAL. A
	// failed sync means none of the records in the batch may be
	// acknowledged — the batch is the durability unit.
	SiteWALSync = "ingest/wal.fsync"
	// SiteWALReplay guards the segment reads of WAL recovery: a flapping
	// disk during boot replay, which must fail the open (transient)
	// rather than silently truncate acknowledged records.
	SiteWALReplay = "ingest/wal.replay"
)

// ErrInjected is the default error delivered by an armed site whose Plan
// does not override Err. Chaos tests branch on it to tell injected
// failures from organic ones.
var ErrInjected = errors.New("fault: injected error")

// ErrAllocFailed is delivered by ShouldFailAlloc sites through their
// callers; exported so tests can assert the failure was the injected one.
var ErrAllocFailed = errors.New("fault: injected allocation failure")

// Plan arms one site. Probabilities are in [0, 1]; 1 fires every hit.
// The zero Plan never fires (arming it effectively disarms the site).
type Plan struct {
	// ErrProb is the probability Hit (and wrapped reader/writer
	// operations) return Err.
	ErrProb float64
	// Err overrides ErrInjected as the delivered error.
	Err error
	// LatencyProb is the probability a hit sleeps for Latency first.
	// Latency injection composes with error injection: a hit can be slow
	// and then fail, like real storage.
	LatencyProb float64
	Latency     time.Duration
	// TornProb is the probability a wrapped writer tears the stream: it
	// writes TornBytes of the offending chunk, then fails every
	// subsequent write on that writer — a crashed process mid-file.
	TornProb  float64
	TornBytes int
	// AllocProb is the probability ShouldFailAlloc reports true.
	AllocProb float64
}

func (p Plan) err() error {
	if p.Err != nil {
		return p.Err
	}
	return ErrInjected
}

package baseline

import (
	"fmt"

	"csrplus/internal/dense"
	"csrplus/internal/graph"
	"csrplus/internal/sparse"
)

// IT is CSR-IT, the paper's label for Rothe & Schütze's iterative method
// applied to multi-source search: the full n x n similarity matrix is
// iterated densely,
//
//	S_{k+1} = c Qᵀ S_k Q + I_n,
//
// for K iterations (K = Rank, the paper's fairness rule), and queries are
// answered by column slicing. Time O(K·n·m), memory O(n²) — the quadratic
// footprint that makes it "crash" on the paper's medium graphs, which the
// harness's budget guard reproduces.
type IT struct {
	cfg Config
	n   int
	s   *dense.Mat
}

// NewIT returns an unprecomputed IT runner.
func NewIT(cfg Config) *IT { return &IT{cfg: cfg.WithDefaults()} }

// Name implements Runner.
func (a *IT) Name() string { return "CSR-IT" }

// EstimateBytes implements Runner: two resident n x n dense buffers during
// iteration plus the transition matrix; the query slice is n·|Q|.
func (a *IT) EstimateBytes(n int, m int64, q int) int64 {
	return 2*int64(n)*int64(n)*8 + csrBytes(n, m) + int64(n)*int64(q)*8
}

// EstimateFlops implements Runner: K iterations of two sparse-dense n x n
// passes, O(K·m·n).
func (a *IT) EstimateFlops(n int, m int64, q int) int64 {
	return 2*int64(a.cfg.Rank)*m*int64(n) + int64(n)*int64(q)
}

// Precompute implements Runner.
func (a *IT) Precompute(g *graph.Graph) error {
	q, err := g.Transition()
	if err != nil {
		return fmt.Errorf("baseline: IT: %w", err)
	}
	n := g.N()
	a.n = n
	track := a.cfg.Tracker
	track.Alloc("precompute/Q", q.Bytes())
	s := dense.Eye(n)
	track.Alloc("precompute/S", s.Bytes())
	for k := 0; k < a.cfg.Rank; k++ {
		// S ← c Qᵀ (S Q) + I, two sparse-dense passes per iteration.
		sq := sparse.DenseMulCSR(s, q)
		track.Alloc("precompute/scratch", sq.Bytes())
		// Drop the old S before the second n x n allocation so the live
		// set stays at two dense buffers, not three — the difference
		// between "O(n²) memory" and an OOM kill on mid-size graphs.
		s = nil
		next := q.MulDenseT(sq)
		track.Free("precompute/scratch", sq.Bytes())
		next.Scale(a.cfg.Damping).AddEye(1)
		s = next
	}
	a.s = s
	return nil
}

// Query implements Runner by slicing the precomputed matrix.
func (a *IT) Query(queries []int) (*dense.Mat, error) {
	if a.s == nil {
		return nil, ErrNotPrecomputed
	}
	if err := validateQueries(queries, a.n); err != nil {
		return nil, err
	}
	out := dense.NewMat(a.n, len(queries))
	a.cfg.Tracker.Alloc("query/S", out.Bytes())
	for j, q := range queries {
		for i := 0; i < a.n; i++ {
			out.Set(i, j, a.s.At(i, q))
		}
	}
	return out, nil
}

package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"csrplus/internal/dense"
	"csrplus/internal/graph"
	"csrplus/internal/sparse"
)

// RPCoSim is Yang's random-projection estimator [9] (Table 1): the PPR
// inner products (Qᵏe_x)ᵀ(Qᵏe_q) are approximated through a
// Johnson-Lindenstrauss sketch. With a Gaussian R (n x d) the sketches
// W_k = (1/√d)·Rᵀ Qᵏ (d x n) satisfy E[(W_k)ᵀ W_k] = (Qᵏ)ᵀQᵏ, so
//
//	[S]_{*,q} ≈ e_q + Σ_{k=1}^{K} cᵏ · W_kᵀ (W_k e_q),
//
// with the k = 0 term taken exactly (it is just the identity). Precompute
// is O(K·d·m); each query is O(K·d·n); memory is O(K·d·n) for the stored
// sketches. Variance decays as 1/d.
type RPCoSim struct {
	cfg Config
	n   int
	w   []*dense.Mat // W_1..W_K, each d x n
}

// NewRPCoSim returns an unprecomputed RP-CoSim runner.
func NewRPCoSim(cfg Config) *RPCoSim { return &RPCoSim{cfg: cfg.WithDefaults()} }

// Name implements Runner.
func (a *RPCoSim) Name() string { return "RP-CoSim" }

// EstimateBytes implements Runner: K stored d x n sketches plus the query
// block.
func (a *RPCoSim) EstimateBytes(n int, m int64, q int) int64 {
	return int64(a.cfg.Rank+1)*int64(a.cfg.SketchDim)*int64(n)*8 +
		csrBytes(n, m) + int64(n)*int64(q)*8
}

// EstimateFlops implements Runner: K sketched sparse passes of width d,
// plus O(K·d·n) per query.
func (a *RPCoSim) EstimateFlops(n int, m int64, q int) int64 {
	k, d := int64(a.cfg.Rank), int64(a.cfg.SketchDim)
	return k*d*m + int64(q)*k*d*int64(n)
}

// Precompute implements Runner: draw the sketch and push it through K
// sparse passes.
func (a *RPCoSim) Precompute(g *graph.Graph) error {
	q, err := g.Transition()
	if err != nil {
		return fmt.Errorf("baseline: RP-CoSim: %w", err)
	}
	a.n = g.N()
	track := a.cfg.Tracker
	track.Alloc("precompute/Q", q.Bytes())
	d := a.cfg.SketchDim
	rng := rand.New(rand.NewSource(a.cfg.SVD.Seed + 77))
	w0 := dense.NewMat(d, a.n)
	inv := 1 / math.Sqrt(float64(d))
	for i := range w0.Data {
		w0.Data[i] = rng.NormFloat64() * inv
	}
	a.w = make([]*dense.Mat, 0, a.cfg.Rank)
	cur := w0
	for k := 1; k <= a.cfg.Rank; k++ {
		cur = sparse.DenseMulCSR(cur, q) // W_k = W_{k-1} Q
		a.w = append(a.w, cur)
		track.Alloc("precompute/W", cur.Bytes())
	}
	return nil
}

// Query implements Runner.
func (a *RPCoSim) Query(queries []int) (*dense.Mat, error) {
	if a.w == nil {
		return nil, ErrNotPrecomputed
	}
	if err := validateQueries(queries, a.n); err != nil {
		return nil, err
	}
	out := dense.NewMat(a.n, len(queries))
	a.cfg.Tracker.Alloc("query/S", out.Bytes())
	d := a.cfg.SketchDim
	col := make([]float64, d)
	for j, q := range queries {
		acc := make([]float64, a.n)
		acc[q] = 1 // exact k = 0 term
		weight := 1.0
		for _, wk := range a.w {
			weight *= a.cfg.Damping
			wk.Col(q, col)
			// acc += weight · W_kᵀ col.
			for row := 0; row < d; row++ {
				cv := weight * col[row]
				if cv == 0 {
					continue
				}
				dense.Axpy(cv, wk.Row(row), acc)
			}
		}
		out.SetCol(j, acc)
	}
	return out, nil
}

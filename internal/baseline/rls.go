package baseline

import (
	"fmt"

	"csrplus/internal/dense"
	"csrplus/internal/graph"
	"csrplus/internal/sparse"
)

// RLS is CSR-RLS, Kusumoto et al.'s linearised single-source scheme [2]
// applied to CoSimRank: for each query q the truncated series
//
//	[S]_{*,q} = Σ_{k=0}^{K} cᵏ (Qᵀ)ᵏ Qᵏ e_q
//
// is evaluated term by term — the k-th term costs k extra backward SpMVs,
// the "many repeated matrix product operations" the paper attributes to
// this baseline (§4.2.1). Per query: O(K²·m) time; memory stays linear.
// Unlike IT, every additional query repeats the whole evaluation, so total
// time grows linearly with |Q| (the paper's Figure 5 behaviour).
type RLS struct {
	cfg Config
	q   *sparse.CSR
}

// NewRLS returns an unprecomputed RLS runner.
func NewRLS(cfg Config) *RLS { return &RLS{cfg: cfg.WithDefaults()} }

// Name implements Runner.
func (a *RLS) Name() string { return "CSR-RLS" }

// EstimateBytes implements Runner: the transition matrix, K+1 forward
// vectors plus scratch, and the n x |Q| result block.
func (a *RLS) EstimateBytes(n int, m int64, q int) int64 {
	return csrBytes(n, m) + int64(a.cfg.Rank+3)*int64(n)*8 + int64(n)*int64(q)*8
}

// EstimateFlops implements Runner: per query, K forward SpMVs plus
// K(K+1)/2 backward ones — O(|Q|·K²·m).
func (a *RLS) EstimateFlops(n int, m int64, q int) int64 {
	k := int64(a.cfg.Rank)
	return int64(q) * (k + k*(k+1)/2) * m
}

// Precompute implements Runner; RLS is query-time, only Q is kept.
func (a *RLS) Precompute(g *graph.Graph) error {
	q, err := g.Transition()
	if err != nil {
		return fmt.Errorf("baseline: RLS: %w", err)
	}
	a.q = q
	a.cfg.Tracker.Alloc("precompute/Q", q.Bytes())
	return nil
}

// Query implements Runner.
func (a *RLS) Query(queries []int) (*dense.Mat, error) {
	if a.q == nil {
		return nil, ErrNotPrecomputed
	}
	n, _ := a.q.Dims()
	if err := validateQueries(queries, n); err != nil {
		return nil, err
	}
	k := a.cfg.Rank // iteration count equals r, the paper's fairness rule
	c := a.cfg.Damping
	out := dense.NewMat(n, len(queries))
	a.cfg.Tracker.Alloc("query/S", out.Bytes())
	fwd := make([][]float64, k+1)
	for i := range fwd {
		fwd[i] = make([]float64, n)
	}
	a.cfg.Tracker.Alloc("query/fwd", int64(k+3)*int64(n)*8)
	cur := make([]float64, n)
	nxt := make([]float64, n)
	for col, q := range queries {
		// Forward pass: v_j = Qʲ e_q.
		for i := range fwd[0] {
			fwd[0][i] = 0
		}
		fwd[0][q] = 1
		for j := 1; j <= k; j++ {
			a.q.MulVec(fwd[j-1], fwd[j])
		}
		// Term-by-term backward passes: the j-th term re-applies Qᵀ j
		// times from scratch (no Horner sharing) — faithful to the
		// baseline's redundancy.
		acc := make([]float64, n)
		acc[q] = 1 // k = 0 term
		weight := 1.0
		for j := 1; j <= k; j++ {
			weight *= c
			copy(cur, fwd[j])
			for step := 0; step < j; step++ {
				nxt = a.q.MulVecT(cur, nxt)
				cur, nxt = nxt, cur
			}
			dense.Axpy(weight, cur, acc)
		}
		out.SetCol(col, acc)
	}
	a.cfg.Tracker.Free("query/fwd", int64(k+3)*int64(n)*8)
	return out, nil
}

package baseline

import (
	"fmt"

	"csrplus/internal/dense"
	"csrplus/internal/graph"
	"csrplus/internal/sparse"
)

// Exact computes ground-truth CoSimRank columns by evaluating the series
//
//	[S]_{*,q} = Σ_{k=0}^{K} cᵏ (Qᵀ)ᵏ Qᵏ e_q
//
// per query with a Horner scheme (2K sparse matrix-vector products per
// query), iterated until the series tail is below Eps. This is the
// reference that Table 3's AvgDiff is measured against; unlike a dense
// all-pairs solve it stays feasible on the full-size FB and P2P graphs
// because it only touches the queried columns.
type Exact struct {
	cfg Config
	q   *sparse.CSR
	k   int
}

// NewExact returns an unprecomputed Exact runner.
func NewExact(cfg Config) *Exact { return &Exact{cfg: cfg.WithDefaults()} }

// Name implements Runner.
func (e *Exact) Name() string { return "Exact" }

// EstimateBytes implements Runner: the transition matrix, K+1 forward
// vectors, and the n x |Q| result.
func (e *Exact) EstimateBytes(n int, m int64, q int) int64 {
	k := int64(seriesLength(e.cfg.Damping, e.cfg.Eps))
	return csrBytes(n, m) + (k+2)*int64(n)*8 + int64(n)*int64(q)*8
}

// EstimateFlops implements Runner: 2K sparse passes per query (forward
// vectors plus the Horner backward sweep).
func (e *Exact) EstimateFlops(n int, m int64, q int) int64 {
	k := int64(seriesLength(e.cfg.Damping, e.cfg.Eps))
	return int64(q) * 2 * k * m
}

// Precompute implements Runner: it only materialises the transition
// matrix; Exact is a query-time method.
func (e *Exact) Precompute(g *graph.Graph) error {
	q, err := g.Transition()
	if err != nil {
		return fmt.Errorf("baseline: Exact: %w", err)
	}
	e.q = q
	e.k = seriesLength(e.cfg.Damping, e.cfg.Eps)
	e.cfg.Tracker.Alloc("precompute/Q", q.Bytes())
	return nil
}

// SeriesTerms returns the number of series terms K+1 the runner evaluates.
func (e *Exact) SeriesTerms() int { return e.k + 1 }

// Query implements Runner.
func (e *Exact) Query(queries []int) (*dense.Mat, error) {
	if e.q == nil {
		return nil, ErrNotPrecomputed
	}
	n, _ := e.q.Dims()
	if err := validateQueries(queries, n); err != nil {
		return nil, err
	}
	out := dense.NewMat(n, len(queries))
	e.cfg.Tracker.Alloc("query/S", out.Bytes())
	// Forward vectors v_k = Qᵏ e_q, then Horner backwards:
	// t ← v_K; t ← v_k + c Qᵀ t  for k = K-1 .. 0.
	fwd := make([][]float64, e.k+1)
	for i := range fwd {
		fwd[i] = make([]float64, n)
	}
	e.cfg.Tracker.Alloc("query/fwd", int64(e.k+1)*int64(n)*8)
	scratch := make([]float64, n)
	for col, q := range queries {
		for i := range fwd[0] {
			fwd[0][i] = 0
		}
		fwd[0][q] = 1
		for k := 1; k <= e.k; k++ {
			e.q.MulVec(fwd[k-1], fwd[k])
		}
		t := append([]float64(nil), fwd[e.k]...)
		for k := e.k - 1; k >= 0; k-- {
			scratch = e.q.MulVecT(t, scratch)
			for i := range t {
				t[i] = fwd[k][i] + e.cfg.Damping*scratch[i]
			}
		}
		out.SetCol(col, t)
	}
	e.cfg.Tracker.Free("query/fwd", int64(e.k+1)*int64(n)*8)
	return out, nil
}

// csrBytes estimates the byte footprint of an n x n CSR with m entries.
func csrBytes(n int, m int64) int64 {
	return int64(n+1)*8 + m*4 + m*8
}

package baseline

import (
	"errors"
	"math"
	"testing"

	"csrplus/internal/dense"
	"csrplus/internal/graph"
	"csrplus/internal/memtrack"
	"csrplus/internal/sparse"
	"csrplus/internal/svd"
)

// paperGraph builds the 6-node graph of Figure 1 / Example 3.6.
func paperGraph(t testing.TB) *graph.Graph {
	t.Helper()
	edges := [][2]int{
		{3, 0}, {0, 1}, {2, 1}, {4, 1}, {3, 2},
		{0, 3}, {4, 3}, {5, 3}, {2, 4}, {5, 4}, {3, 5},
	}
	coo := sparse.NewCOO(6, 6)
	for _, e := range edges {
		if err := coo.Add(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	return graph.New(coo)
}

func testGraph(t testing.TB, n int, m int64, seed int64) *graph.Graph {
	t.Helper()
	g, err := graph.ErdosRenyi(n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// truncatedSeries computes Σ_{k=0}^{K} cᵏ (Qᵀ)ᵏQᵏ densely — the reference
// all iterative baselines with K terms must match exactly.
func truncatedSeries(t testing.TB, g *graph.Graph, c float64, kTerms int) *dense.Mat {
	t.Helper()
	q, err := g.Transition()
	if err != nil {
		t.Fatal(err)
	}
	qd := q.ToDense()
	s := dense.Eye(g.N())
	for k := 0; k < kTerms; k++ {
		s = dense.Mul(dense.Mul(qd.T(), s), qd).Scale(c).AddEye(1)
	}
	return s
}

func queryAll(t testing.TB, r Runner, g *graph.Graph) *dense.Mat {
	t.Helper()
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	s, err := r.Query(all)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewByName(t *testing.T) {
	for _, name := range Names() {
		r, err := New(name, Config{})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if r.Name() != name {
			t.Fatalf("Name() = %q, want %q", r.Name(), name)
		}
	}
	if _, err := New("bogus", Config{}); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestQueryBeforePrecompute(t *testing.T) {
	for _, name := range Names() {
		r, err := New(name, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Query([]int{0}); !errors.Is(err, ErrNotPrecomputed) {
			t.Fatalf("%s: err = %v, want ErrNotPrecomputed", name, err)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	g := paperGraph(t)
	for _, name := range Names() {
		r, err := New(name, Config{Rank: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Precompute(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := r.Query(nil); !errors.Is(err, ErrQuery) {
			t.Fatalf("%s empty query: err = %v", name, err)
		}
		if _, err := r.Query([]int{99}); !errors.Is(err, ErrQuery) {
			t.Fatalf("%s oob query: err = %v", name, err)
		}
	}
}

func TestITMatchesTruncatedSeries(t *testing.T) {
	g := testGraph(t, 30, 150, 40)
	r := NewIT(Config{Rank: 5})
	if err := r.Precompute(g); err != nil {
		t.Fatal(err)
	}
	got := queryAll(t, r, g)
	want := truncatedSeries(t, g, 0.6, 5)
	if !got.Equal(want, 1e-12) {
		t.Fatalf("IT deviates from 5-term series by %g", got.Sub(want).MaxAbs())
	}
}

func TestRLSMatchesIT(t *testing.T) {
	// RLS evaluates the same truncated series per query; columns must
	// agree with IT to rounding.
	g := testGraph(t, 30, 150, 41)
	it := NewIT(Config{Rank: 5})
	rls := NewRLS(Config{Rank: 5})
	if err := it.Precompute(g); err != nil {
		t.Fatal(err)
	}
	if err := rls.Precompute(g); err != nil {
		t.Fatal(err)
	}
	queries := []int{0, 3, 17, 29}
	a, err := it.Query(queries)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rls.Query(queries)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b, 1e-10) {
		t.Fatalf("RLS deviates from IT by %g", a.Sub(b).MaxAbs())
	}
}

func TestExactConverged(t *testing.T) {
	// Exact must agree with a long truncated series.
	g := testGraph(t, 25, 120, 42)
	e := NewExact(Config{Eps: 1e-10})
	if err := e.Precompute(g); err != nil {
		t.Fatal(err)
	}
	if e.SeriesTerms() < 10 {
		t.Fatalf("SeriesTerms = %d, suspiciously small", e.SeriesTerms())
	}
	got := queryAll(t, e, g)
	want := truncatedSeries(t, g, 0.6, 80)
	if !got.Equal(want, 1e-8) {
		t.Fatalf("Exact deviates from converged series by %g", got.Sub(want).MaxAbs())
	}
}

func TestNIMatchesCSRPlusLossless(t *testing.T) {
	// §4.2.3: "the accuracy of CSR+ and CSR-NI is exactly the same" —
	// both reduce the same rank-r linear system.
	for _, seed := range []int64{50, 51} {
		g := testGraph(t, 40, 200, seed)
		cfg := Config{Rank: 5, SVD: svd.Options{Seed: 9, PowerIters: 4}}
		ni := NewNI(cfg)
		cp := NewCSRPlus(cfg)
		if err := ni.Precompute(g); err != nil {
			t.Fatal(err)
		}
		if err := cp.Precompute(g); err != nil {
			t.Fatal(err)
		}
		queries := []int{0, 5, 11, 39}
		a, err := ni.Query(queries)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cp.Query(queries)
		if err != nil {
			t.Fatal(err)
		}
		// NI inverts the system exactly; CSR+ truncates the series at
		// eps=1e-5, so agreement is to that eps, not machine precision.
		if !a.Equal(b, 1e-4) {
			t.Fatalf("seed %d: NI vs CSR+ deviate by %g", seed, a.Sub(b).MaxAbs())
		}
	}
}

func TestNIMatchesExactAtFullRank(t *testing.T) {
	g := paperGraph(t)
	ni := NewNI(Config{Rank: 6, SVD: svd.Options{PowerIters: 8, Oversample: 6}})
	if err := ni.Precompute(g); err != nil {
		t.Fatal(err)
	}
	got := queryAll(t, ni, g)
	want := truncatedSeries(t, g, 0.6, 80)
	if !got.Equal(want, 1e-6) {
		t.Fatalf("full-rank NI deviates from exact by %g", got.Sub(want).MaxAbs())
	}
}

func TestCoSimMateMatchesExact(t *testing.T) {
	g := testGraph(t, 25, 120, 43)
	cm := NewCoSimMate(Config{Eps: 1e-8})
	if err := cm.Precompute(g); err != nil {
		t.Fatal(err)
	}
	if cm.Squarings() < 3 {
		t.Fatalf("Squarings = %d", cm.Squarings())
	}
	got := queryAll(t, cm, g)
	want := truncatedSeries(t, g, 0.6, 100)
	if !got.Equal(want, 1e-6) {
		t.Fatalf("CoSimMate deviates from exact by %g", got.Sub(want).MaxAbs())
	}
}

func TestRPCoSimApproximatesSeries(t *testing.T) {
	// Statistical agreement: with a healthy sketch width the JL estimate
	// of the 5-term series should land close to the truth.
	g := testGraph(t, 40, 200, 44)
	rp := NewRPCoSim(Config{Rank: 5, SketchDim: 4096, SVD: svd.Options{Seed: 3}})
	if err := rp.Precompute(g); err != nil {
		t.Fatal(err)
	}
	got := queryAll(t, rp, g)
	want := truncatedSeries(t, g, 0.6, 5)
	diff, err := AvgDiff(got, want)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 0.02 {
		t.Fatalf("RP-CoSim AvgDiff %g too large for d=4096", diff)
	}
}

func TestAvgDiff(t *testing.T) {
	a := dense.NewMatFrom(2, 2, []float64{1, 2, 3, 4})
	b := dense.NewMatFrom(2, 2, []float64{1, 2, 3, 8})
	d, err := AvgDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-15 {
		t.Fatalf("AvgDiff = %v, want 1", d)
	}
	if _, err := AvgDiff(a, dense.NewMat(3, 2)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestEstimateBytesSanity(t *testing.T) {
	for _, name := range Names() {
		r, err := New(name, Config{})
		if err != nil {
			t.Fatal(err)
		}
		small := r.EstimateBytes(100, 500, 10)
		big := r.EstimateBytes(10000, 50000, 10)
		if small <= 0 {
			t.Fatalf("%s: estimate %d <= 0", name, small)
		}
		if big <= small {
			t.Fatalf("%s: estimate not growing with n (%d vs %d)", name, small, big)
		}
	}
	// NI's quadratic-in-n footprint must dwarf CSR+'s linear one.
	ni, _ := New("CSR-NI", Config{})
	cp, _ := New("CSR+", Config{})
	n, m := 10000, int64(50000)
	if ni.EstimateBytes(n, m, 100) < 100*cp.EstimateBytes(n, m, 100) {
		t.Fatal("NI estimate suspiciously close to CSR+")
	}
}

func TestMemoryAccountingAcrossRunners(t *testing.T) {
	g := paperGraph(t)
	for _, name := range Names() {
		tr := memtrack.New()
		r, err := New(name, Config{Rank: 3, Tracker: tr})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Precompute(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := r.Query([]int{1, 3}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Peak() == 0 {
			t.Fatalf("%s recorded no memory", name)
		}
		if tr.PeakByPrefix("query/") <= 0 {
			t.Fatalf("%s recorded no query memory", name)
		}
	}
}

func TestSeriesLength(t *testing.T) {
	// c=0.6, eps=1e-5: need c^K < eps(1-c) → K ≈ 25.
	k := seriesLength(0.6, 1e-5)
	if k < 20 || k > 30 {
		t.Fatalf("seriesLength = %d", k)
	}
	if got := seriesLength(0.1, 0.99); got != 1 {
		t.Fatalf("floor = %d, want 1", got)
	}
}

func TestAllRunnersAgreeOnPaperExample(t *testing.T) {
	// Integration: every algorithm at matched settings lands within low-
	// rank/statistical tolerance of the exact [S]_{*,{b,d}}.
	g := paperGraph(t)
	want := truncatedSeries(t, g, 0.6, 80)
	queries := []int{1, 3}
	wantBlock := dense.NewMat(6, 2)
	for j, q := range queries {
		for i := 0; i < 6; i++ {
			wantBlock.Set(i, j, want.At(i, q))
		}
	}
	tolerances := map[string]float64{
		"CSR+": 0.35, "CSR-NI": 0.35, // rank-3 truncation error on n=6
		"CSR-IT": 0.12, "CSR-RLS": 0.12, // 5-term truncation
		"CoSimMate": 1e-6, "RP-CoSim": 0.25, "Exact": 1e-5,
	}
	for _, name := range Names() {
		r, err := New(name, Config{Rank: 3, SketchDim: 8192})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Precompute(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := r.Query(queries)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if dev := got.Sub(wantBlock).MaxAbs(); dev > tolerances[name] {
			t.Fatalf("%s deviates from exact by %g (tol %g)", name, dev, tolerances[name])
		}
	}
}

// TestEstimateUpperBoundsMeasured: each Runner's EstimateBytes must upper-
// bound the analytic peak its tracker actually records — the invariant the
// harness's memory guard depends on (an under-estimate would let a cell
// run that should have been guarded).
func TestEstimateUpperBoundsMeasured(t *testing.T) {
	g := testGraph(t, 120, 700, 55)
	queries := []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}
	for _, name := range Names() {
		tr := memtrack.New()
		r, err := New(name, Config{Rank: 5, Tracker: tr})
		if err != nil {
			t.Fatal(err)
		}
		est := r.EstimateBytes(g.N(), g.M(), len(queries))
		if err := r.Precompute(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := r.Query(queries); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if peak := tr.Peak(); est < peak {
			t.Fatalf("%s: estimate %d below measured peak %d", name, est, peak)
		}
	}
}

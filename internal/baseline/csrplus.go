package baseline

import (
	"context"
	"fmt"

	"csrplus/internal/core"
	"csrplus/internal/dense"
	"csrplus/internal/graph"
)

// CSRPlus adapts the paper's algorithm (internal/core) to the Runner
// interface so the harness can drive it uniformly alongside the baselines.
type CSRPlus struct {
	cfg Config
	ix  *core.Index
}

// NewCSRPlus returns an unprecomputed CSR+ runner.
func NewCSRPlus(cfg Config) *CSRPlus { return &CSRPlus{cfg: cfg.WithDefaults()} }

// CSRPlusFromIndex returns a query-ready runner around a previously
// persisted index (core.LoadIndex); Precompute becomes a no-op.
func CSRPlusFromIndex(ix *core.Index, cfg Config) *CSRPlus {
	return &CSRPlus{cfg: cfg.WithDefaults(), ix: ix}
}

// Name implements Runner.
func (a *CSRPlus) Name() string { return "CSR+" }

// EstimateBytes implements Runner, following Theorem 3.7's O(rn) bound:
// the transition matrix plus a handful of n x r factors and the query
// block.
func (a *CSRPlus) EstimateBytes(n int, m int64, q int) int64 {
	r := int64(a.cfg.Rank)
	n64 := int64(n)
	// Q + SVD factors (U, V + sketch scratch ≈ 4 n·r) + Z + result.
	return csrBytes(n, m) + 6*n64*r*8 + n64*int64(q)*8
}

// EstimateFlops implements Runner: the SVD's sparse passes dominate
// precompute; queries add n·r per query (Theorem 3.7).
func (a *CSRPlus) EstimateFlops(n int, m int64, q int) int64 {
	r := int64(a.cfg.Rank)
	k := r + 8 // sketch width with default oversampling
	n64 := int64(n)
	svdCost := 6*m*k + 4*n64*k*k // power-iteration passes + QR/Gram finish
	subspace := 8 * r * r * r    // repeated squaring in the r-space
	return svdCost + subspace + n64*r*r + n64*r*int64(q)
}

// Precompute implements Runner (Algorithm 1, phase I). It is a no-op when
// the runner was constructed from a persisted index.
func (a *CSRPlus) Precompute(g *graph.Graph) error {
	if a.ix != nil {
		return nil
	}
	ix, err := core.Precompute(g, core.Options{
		Damping: a.cfg.Damping,
		Rank:    a.cfg.Rank,
		Eps:     a.cfg.Eps,
		SVD:     a.cfg.SVD,
		Tracker: a.cfg.Tracker,
	})
	if err != nil {
		return fmt.Errorf("baseline: CSR+: %w", err)
	}
	a.ix = ix
	return nil
}

// Index exposes the underlying core index (nil before Precompute).
func (a *CSRPlus) Index() *core.Index { return a.ix }

// Query implements Runner (Algorithm 1, phase II).
func (a *CSRPlus) Query(queries []int) (*dense.Mat, error) {
	return a.QueryInto(queries, nil)
}

// QueryInto implements ScratchQuerier: phase II writing into reusable
// scratch (see core.Index.QueryInto).
func (a *CSRPlus) QueryInto(queries []int, scratch *dense.Mat) (*dense.Mat, error) {
	if a.ix == nil {
		return nil, ErrNotPrecomputed
	}
	if err := validateQueries(queries, a.ix.N()); err != nil {
		return nil, err
	}
	s, err := a.ix.QueryInto(queries, scratch, a.cfg.Tracker)
	if err != nil {
		return nil, fmt.Errorf("baseline: CSR+: %w", err)
	}
	return s, nil
}

// QueryRankInto is phase II at a truncated rank, honouring ctx for
// mid-pass cancellation (see core.Index.QueryRankInto). rank <= 0 answers
// at full rank.
func (a *CSRPlus) QueryRankInto(ctx context.Context, queries []int, rank int, scratch *dense.Mat) (*dense.Mat, error) {
	if a.ix == nil {
		return nil, ErrNotPrecomputed
	}
	if err := validateQueries(queries, a.ix.N()); err != nil {
		return nil, err
	}
	s, err := a.ix.QueryRankInto(ctx, queries, rank, scratch, a.cfg.Tracker)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err // cancellation is the caller's error, not the engine's
		}
		return nil, fmt.Errorf("baseline: CSR+: %w", err)
	}
	return s, nil
}

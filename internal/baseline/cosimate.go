package baseline

import (
	"fmt"
	"math"

	"csrplus/internal/dense"
	"csrplus/internal/graph"
)

// CoSimMate is Yu & McCann's all-pairs repeated-squaring method [11]
// (Table 1 of the paper): with T₀ = Q and S₀ = I,
//
//	S_{j+1} = S_j + c^(2^j) · T_jᵀ S_j T_j,   T_{j+1} = T_j²,
//
// after j squarings S_j holds the first 2^j series terms, so the iteration
// count shrinks exponentially — at the price of dense n x n intermediates
// (O(n²) memory, O(n³ log₂ K) time), which is exactly why the paper rules
// it out for high-dimensional use. Implemented as the related-work
// extension baseline; feasible on small graphs only.
type CoSimMate struct {
	cfg Config
	n   int
	s   *dense.Mat
}

// NewCoSimMate returns an unprecomputed CoSimMate runner.
func NewCoSimMate(cfg Config) *CoSimMate { return &CoSimMate{cfg: cfg.WithDefaults()} }

// Name implements Runner.
func (a *CoSimMate) Name() string { return "CoSimMate" }

// EstimateBytes implements Runner: three resident n x n dense matrices
// (S, T and the squaring scratch).
func (a *CoSimMate) EstimateBytes(n int, m int64, q int) int64 {
	return 4*int64(n)*int64(n)*8 + int64(n)*int64(q)*8
}

// EstimateFlops implements Runner: each squaring step performs three
// dense n x n products.
func (a *CoSimMate) EstimateFlops(n int, m int64, q int) int64 {
	n64 := int64(n)
	return 3*int64(a.Squarings())*n64*n64*n64 + n64*int64(q)
}

// Squarings returns the number of squaring steps needed for the
// configured accuracy: ⌈log₂(K+1)⌉ over the plain series length K.
func (a *CoSimMate) Squarings() int {
	k := seriesLength(a.cfg.Damping, a.cfg.Eps)
	return int(math.Ceil(math.Log2(float64(k + 1))))
}

// Precompute implements Runner.
func (a *CoSimMate) Precompute(g *graph.Graph) error {
	q, err := g.Transition()
	if err != nil {
		return fmt.Errorf("baseline: CoSimMate: %w", err)
	}
	a.n = g.N()
	track := a.cfg.Tracker
	t := q.ToDense()
	track.Alloc("precompute/T", t.Bytes())
	s := dense.Eye(a.n)
	track.Alloc("precompute/S", s.Bytes())
	weight := a.cfg.Damping
	for j := a.Squarings(); j > 0; j-- {
		// S ← S + weight · Tᵀ S T.
		st := dense.Mul(s, t)
		track.Alloc("precompute/scratch", st.Bytes())
		tst := dense.TMul(t, st)
		s.AddInPlace(tst.Scale(weight))
		track.Free("precompute/scratch", st.Bytes())
		t = dense.Mul(t, t)
		weight *= weight
	}
	a.s = s
	return nil
}

// Query implements Runner by column slicing.
func (a *CoSimMate) Query(queries []int) (*dense.Mat, error) {
	if a.s == nil {
		return nil, ErrNotPrecomputed
	}
	if err := validateQueries(queries, a.n); err != nil {
		return nil, err
	}
	out := dense.NewMat(a.n, len(queries))
	a.cfg.Tracker.Alloc("query/S", out.Bytes())
	for j, q := range queries {
		for i := 0; i < a.n; i++ {
			out.Set(i, j, a.s.At(i, q))
		}
	}
	return out, nil
}

// Package baseline implements every comparison algorithm of the paper's
// evaluation (§4.1 "Competitors") plus the related-work methods of its
// Table 1, behind one uniform Runner interface the experiment harness and
// the public facade drive:
//
//   - CSRPlus  — adapter over internal/core (this paper's algorithm)
//   - NI       — Li et al. [4]: explicit tensor products (CSR-NI)
//   - IT       — Rothe & Schütze [6]: dense all-pairs iteration (CSR-IT)
//   - RLS      — Kusumoto et al. [2] adapted to CoSimRank (CSR-RLS)
//   - CoSimMate— Yu & McCann [11]: all-pairs repeated squaring
//   - RPCoSim  — Yang [9]: Gaussian random-projection estimation
//   - Exact    — converged per-query Horner evaluation (ground truth)
//
// All methods compute (approximations of) the same quantity: the
// multi-source CoSimRank block [S]_{*,Q} of Eq. (1).
package baseline

import (
	"errors"
	"fmt"
	"math"

	"csrplus/internal/dense"
	"csrplus/internal/graph"
	"csrplus/internal/memtrack"
	"csrplus/internal/svd"
)

// ErrNotPrecomputed is returned when Query is called before Precompute.
var ErrNotPrecomputed = errors.New("baseline: Query before Precompute")

// ErrQuery is returned (wrapped) for invalid query sets.
var ErrQuery = errors.New("baseline: invalid query set")

// Config carries the parameters shared by all algorithms, matching the
// paper's §4.1 defaults: c = 0.6, r = 5, |Q| = 100, and — "for fairness of
// comparison" — iteration count K equal to the low rank r for the
// iterative methods.
type Config struct {
	// Damping is the CoSimRank damping factor c. Default 0.6.
	Damping float64
	// Rank is the SVD rank r (CSR+, NI) and, per the paper's fairness
	// rule, the iteration count K for IT and RLS. Default 5.
	Rank int
	// Eps is the target accuracy for the converging methods. Default 1e-5.
	Eps float64
	// SketchDim is RP-CoSim's projection dimension d. Default 128.
	SketchDim int
	// SVD tunes the truncated SVD for CSR+ and NI.
	SVD svd.Options
	// Tracker receives analytic memory accounting (may be nil).
	Tracker *memtrack.Tracker
}

// WithDefaults fills zero fields with the paper's defaults.
func (c Config) WithDefaults() Config {
	if c.Damping == 0 {
		c.Damping = 0.6
	}
	if c.Rank == 0 {
		c.Rank = 5
	}
	if c.Eps == 0 {
		c.Eps = 1e-5
	}
	if c.SketchDim == 0 {
		c.SketchDim = 128
	}
	return c
}

// Runner is the uniform algorithm interface the harness drives. A Runner
// is single-use: Precompute once, then Query any number of times.
type Runner interface {
	// Name returns the algorithm's display name as used in the paper.
	Name() string
	// EstimateBytes predicts the peak analytic memory in bytes needed to
	// precompute on a graph of n nodes / m edges and answer a |Q|-sized
	// query, without allocating anything. The harness's memory-budget
	// guard consults this to reproduce the paper's "crashed due to
	// memory" markers without actually exhausting the machine.
	EstimateBytes(n int, m int64, q int) int64
	// EstimateFlops predicts the dominant floating-point operation count
	// of precompute plus one |Q|-sized query. The harness's time guard
	// skips cells whose estimate exceeds its budget, so a single slow
	// baseline cannot stall a whole figure on a small machine.
	EstimateFlops(n int, m int64, q int) int64
	// Precompute builds whatever index the algorithm keeps.
	Precompute(g *graph.Graph) error
	// Query returns the n x |Q| block [S]_{*,Q}.
	Query(queries []int) (*dense.Mat, error)
}

// ScratchQuerier is the optional Runner extension for allocation-light
// serving: QueryInto writes the n x |Q| block into scratch's backing
// array when its capacity suffices (contents overwritten; nil scratch
// allocates), returning the result matrix. CSRPlus implements it; the
// iterative baselines, whose query cost dwarfs one allocation, do not.
type ScratchQuerier interface {
	QueryInto(queries []int, scratch *dense.Mat) (*dense.Mat, error)
}

// New returns a Runner by the paper's algorithm name: "CSR+", "CSR-NI",
// "CSR-IT", "CSR-RLS", "CoSimMate", "RP-CoSim" or "Exact".
func New(name string, cfg Config) (Runner, error) {
	switch name {
	case "CSR+":
		return NewCSRPlus(cfg), nil
	case "CSR-NI":
		return NewNI(cfg), nil
	case "CSR-IT":
		return NewIT(cfg), nil
	case "CSR-RLS":
		return NewRLS(cfg), nil
	case "CoSimMate":
		return NewCoSimMate(cfg), nil
	case "RP-CoSim":
		return NewRPCoSim(cfg), nil
	case "Exact":
		return NewExact(cfg), nil
	default:
		return nil, fmt.Errorf("baseline: unknown algorithm %q", name)
	}
}

// Names lists the available algorithm names in the paper's order.
func Names() []string {
	return []string{"CSR+", "CSR-NI", "CSR-IT", "CSR-RLS", "CoSimMate", "RP-CoSim", "Exact"}
}

// AvgDiff is the paper's §4.2.3 accuracy measure:
// (1/(n·|Q|)) · Σ_{i,j} |Ŝ[i,j] − S[i,j]| over the queried block.
// Both matrices must be n x |Q|.
func AvgDiff(approx, exact *dense.Mat) (float64, error) {
	if approx.Rows != exact.Rows || approx.Cols != exact.Cols {
		return 0, fmt.Errorf("baseline: AvgDiff %dx%d vs %dx%d: shapes differ",
			approx.Rows, approx.Cols, exact.Rows, exact.Cols)
	}
	sum := 0.0
	for i, v := range approx.Data {
		sum += math.Abs(v - exact.Data[i])
	}
	return sum / float64(len(approx.Data)), nil
}

// validateQueries checks query ids against the node count.
func validateQueries(queries []int, n int) error {
	if len(queries) == 0 {
		return fmt.Errorf("baseline: empty query set: %w", ErrQuery)
	}
	for _, q := range queries {
		if q < 0 || q >= n {
			return fmt.Errorf("baseline: node %d not in [0, %d): %w", q, n, ErrQuery)
		}
	}
	return nil
}

// seriesLength returns the number of series terms needed to push the tail
// Σ_{k>K} c^k below eps: K = ⌈log_c(eps·(1−c))⌉.
func seriesLength(c, eps float64) int {
	k := int(math.Ceil(math.Log(eps*(1-c)) / math.Log(c)))
	if k < 1 {
		k = 1
	}
	return k
}

package baseline

import (
	"fmt"

	"csrplus/internal/dense"
	"csrplus/internal/graph"
	"csrplus/internal/svd"
)

// NI is CSR-NI, Li et al.'s low-rank method [4] — the approach CSR+
// optimises away. It is implemented faithfully, *including its
// deficiencies* (§3.1 of the paper): the tensor products U⊗U and V⊗V are
// explicitly materialised (O(n²r²) memory) and the r²xr² system matrix is
// formed through the O(r⁴n²)-time product (V⊗V)ᵀ(U⊗U). The precompute
// phase builds Λ of Eq. (6b); the query phase evaluates Eq. (6a).
//
// Accuracy is identical to CSR+ at the same rank (the paper's §4.2.3
// "lossless" claim), which the tests verify.
type NI struct {
	cfg Config
	n   int
	uu  *dense.Mat // U⊗U, n² x r²
	vv  *dense.Mat // V⊗V, n² x r²
	lam *dense.Mat // Λ, r² x r²
	c   float64
}

// NewNI returns an unprecomputed NI runner.
func NewNI(cfg Config) *NI { return &NI{cfg: cfg.WithDefaults()} }

// Name implements Runner.
func (a *NI) Name() string { return "CSR-NI" }

// EstimateBytes implements Runner: the two materialised n²xr² tensors
// dominate everything else.
func (a *NI) EstimateBytes(n int, m int64, q int) int64 {
	r := int64(a.cfg.Rank)
	n64 := int64(n)
	tensors := 2 * n64 * n64 * r * r * 8
	lambda := 3 * r * r * r * r * 8 // Λ plus inversion scratch
	query := int64(q)*n64*8 + n64*int64(q)*8
	return tensors + lambda + query + csrBytes(n, m)
}

// EstimateFlops implements Runner: the O(r⁴n²) product (V⊗V)ᵀ(U⊗U)
// dominates; queries read n·r² tensor entries per query column.
func (a *NI) EstimateFlops(n int, m int64, q int) int64 {
	r := int64(a.cfg.Rank)
	n64 := int64(n)
	return r*r*r*r*n64*n64 + 2*n64*n64*r*r + n64*r*r*int64(q)
}

// Precompute implements Runner: Eq. (6b) with explicit tensor products.
func (a *NI) Precompute(g *graph.Graph) error {
	q, err := g.Transition()
	if err != nil {
		return fmt.Errorf("baseline: NI: %w", err)
	}
	track := a.cfg.Tracker
	track.Alloc("precompute/Q", q.Bytes())
	a.n = g.N()
	a.c = a.cfg.Damping
	fac, err := svd.Truncated(q, a.cfg.Rank, a.cfg.SVD)
	if err != nil {
		return fmt.Errorf("baseline: NI: truncated SVD: %w", err)
	}
	// Same operator convention as core: the method works on M = Qᵀ, so
	// with Q ≈ UΣVᵀ the roles swap — um = V, vm = U.
	um, vm := fac.V, fac.U
	track.Alloc("precompute/USV", fac.Bytes())

	// The deliberate inefficiency: materialise both tensor products.
	a.uu = dense.Kron(um, um)
	track.Alloc("precompute/UkronU", a.uu.Bytes())
	a.vv = dense.Kron(vm, vm)
	track.Alloc("precompute/VkronV", a.vv.Bytes())

	// (V⊗V)ᵀ (U⊗U): r² x r² through an n²-long contraction — O(r⁴n²).
	vtu := dense.TMul(a.vv, a.uu)
	track.Alloc("precompute/VtU", vtu.Bytes())

	// Λ = ((Σ⊗Σ)⁻¹ − c·(V⊗V)ᵀ(U⊗U))⁻¹.
	r := a.cfg.Rank
	sys := vtu.Clone().Scale(-a.c)
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			d := fac.S[i] * fac.S[j]
			idx := i*r + j
			if d == 0 {
				// A zero singular value makes (Σ⊗Σ) singular; drop the
				// direction by pinning its row to identity (it carries no
				// similarity mass).
				for k := 0; k < r*r; k++ {
					sys.Set(idx, k, 0)
				}
				sys.Set(idx, idx, 1)
				continue
			}
			sys.Set(idx, idx, sys.At(idx, idx)+1/d)
		}
	}
	lam, err := dense.Inverse(sys)
	if err != nil {
		return fmt.Errorf("baseline: NI: inverting %dx%d system: %w", r*r, r*r, err)
	}
	a.lam = lam
	track.Alloc("precompute/Lambda", lam.Bytes())
	return nil
}

// Query implements Runner: Eq. (6a), reading the materialised tensors.
func (a *NI) Query(queries []int) (*dense.Mat, error) {
	if a.lam == nil {
		return nil, ErrNotPrecomputed
	}
	if err := validateQueries(queries, a.n); err != nil {
		return nil, err
	}
	n, r2 := a.n, a.lam.Rows
	// x = (V⊗V)ᵀ vec(I_n): vec(I) has ones at positions i·n+i, so x sums
	// the corresponding rows of the materialised V⊗V.
	x := make([]float64, r2)
	for i := 0; i < n; i++ {
		row := a.vv.Row(i*n + i)
		for k, v := range row {
			x[k] += v
		}
	}
	y := dense.MulVec(a.lam, x) // Λ x, r² long
	// vec(S) = vec(I) + c·(U⊗U)·y. Only the queried columns are read:
	// column q of S lives at vec positions q·n + i.
	out := dense.NewMat(n, len(queries))
	a.cfg.Tracker.Alloc("query/S", out.Bytes())
	for j, q := range queries {
		for i := 0; i < n; i++ {
			row := a.uu.Row(q*n + i)
			s := 0.0
			for k, v := range row {
				s += v * y[k]
			}
			if i == q {
				s += 1 / a.c
			}
			out.Set(i, j, a.c*s)
		}
	}
	return out, nil
}

// Package cache provides a small, concurrency-safe LRU used by csrserver
// to memoise top-k query results. CoSimRank queries against a static index
// are pure functions of (query set, k), so caching is safe and turns the
// common repeated-query pattern into O(1).
package cache

import (
	"container/list"
	"sync"
)

// Recorder receives cache events so an external metrics registry (e.g.
// internal/serve.Metrics) can observe hit ratio and eviction pressure
// without polling. Implementations must be cheap and non-blocking: calls
// happen under the cache lock. Every event with an internal counter has a
// Recorder counterpart, so external metrics never undercount relative to
// Stats/Evictions/Refreshes.
type Recorder interface {
	CacheHit()
	CacheMiss()
	CacheEvict()
	// CacheRefresh reports a Put that found its key already cached and
	// replaced the value in place (no insert, no eviction).
	CacheRefresh()
}

// LRU is a fixed-capacity least-recently-used map from string keys to
// arbitrary values. The zero value is unusable; use New.
type LRU struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent
	items    map[string]*list.Element
	rec      Recorder

	hits, misses, evictions, refreshes int64
}

type entry struct {
	key   string
	value interface{}
}

// New returns an LRU holding at most capacity entries.
// It panics if capacity < 1: a cache that can hold nothing is a caller bug.
func New(capacity int) *LRU {
	if capacity < 1 {
		panic("cache: capacity must be >= 1")
	}
	return &LRU{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// SetRecorder attaches a Recorder; nil detaches. The internal hit/miss
// counters keep working either way.
func (c *LRU) SetRecorder(r Recorder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rec = r
}

// Get returns the cached value and whether it was present, refreshing the
// entry's recency.
func (c *LRU) Get(key string) (interface{}, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		if c.rec != nil {
			c.rec.CacheMiss()
		}
		return nil, false
	}
	c.hits++
	if c.rec != nil {
		c.rec.CacheHit()
	}
	c.order.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// Put inserts or refreshes key -> value, evicting the least-recently-used
// entry when full.
func (c *LRU) Put(key string, value interface{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).value = value
		c.order.MoveToFront(el)
		c.refreshes++
		if c.rec != nil {
			c.rec.CacheRefresh()
		}
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.items, oldest.Value.(*entry).key)
			c.evictions++
			if c.rec != nil {
				c.rec.CacheEvict()
			}
		}
	}
	c.items[key] = c.order.PushFront(&entry{key, value})
}

// Clear drops every entry, keeping capacity, recorder and cumulative
// counters. Used on engine generation swaps: superseded entries are
// already unreachable (their keys embed the old generation), so clearing
// only releases their memory early — it is not what guarantees freshness.
func (c *LRU) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = make(map[string]*list.Element, c.capacity)
}

// Len returns the current entry count.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns cumulative hit/miss counters.
func (c *LRU) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions returns the cumulative eviction count.
func (c *LRU) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Refreshes returns the cumulative count of Puts that replaced an
// existing key's value in place.
func (c *LRU) Refreshes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.refreshes
}

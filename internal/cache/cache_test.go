package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPutGet(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("missing key found")
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")    // refresh a
	c.Put("c", 3) // evicts b (least recent)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite refresh")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("a", 9)
	if v, _ := c.Get("a"); v.(int) != 9 {
		t.Fatalf("value = %v", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestStats(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("zz")
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestCapacityOnePanicsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	New(0)
}

func TestCapacityOne(t *testing.T) {
	c := New(1)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived capacity-1 eviction")
	}
	if v, ok := c.Get("b"); !ok || v.(int) != 2 {
		t.Fatal("b lost")
	}
}

// countingRecorder counts events with atomics so it is safe under the
// cache lock and under -race.
type countingRecorder struct {
	hits, misses, evicts, refreshes atomic.Int64
}

func (r *countingRecorder) CacheHit()     { r.hits.Add(1) }
func (r *countingRecorder) CacheMiss()    { r.misses.Add(1) }
func (r *countingRecorder) CacheEvict()   { r.evicts.Add(1) }
func (r *countingRecorder) CacheRefresh() { r.refreshes.Add(1) }

func TestRecorderObservesEvents(t *testing.T) {
	rec := &countingRecorder{}
	c := New(1)
	c.SetRecorder(rec)
	c.Put("a", 1)
	c.Get("a")    // hit
	c.Get("b")    // miss
	c.Put("b", 2) // evicts a
	if rec.hits.Load() != 1 || rec.misses.Load() != 1 || rec.evicts.Load() != 1 {
		t.Fatalf("recorder saw hits=%d misses=%d evicts=%d, want 1/1/1",
			rec.hits.Load(), rec.misses.Load(), rec.evicts.Load())
	}
	if c.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", c.Evictions())
	}
	c.SetRecorder(nil) // detaching must not break subsequent ops
	c.Get("b")
	if rec.hits.Load() != 1 {
		t.Fatal("detached recorder still receiving events")
	}
}

// TestRecorderObservesRefresh is the regression test for the silent
// in-place Put: refreshing an existing key used to return before the
// Recorder hook, so external metrics undercounted cache activity
// relative to the internal counters.
func TestRecorderObservesRefresh(t *testing.T) {
	rec := &countingRecorder{}
	c := New(4)
	c.SetRecorder(rec)
	c.Put("a", 1)
	c.Put("a", 2) // refresh: same key, new value
	c.Put("a", 3) // and again
	if got := rec.refreshes.Load(); got != 2 {
		t.Fatalf("recorder saw %d refreshes, want 2", got)
	}
	if got := c.Refreshes(); got != 2 {
		t.Fatalf("Refreshes() = %d, want 2", got)
	}
	if rec.evicts.Load() != 0 {
		t.Fatal("refresh must not count as eviction")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 3 {
		t.Fatalf("refreshed value lost: %v %v", v, ok)
	}
	// Recorder and internal counter must agree exactly.
	if rec.refreshes.Load() != c.Refreshes() {
		t.Fatalf("recorder (%d) and internal (%d) refresh counts diverge",
			rec.refreshes.Load(), c.Refreshes())
	}
}

// TestConcurrentStress hammers every public method from parallel
// goroutines with a capacity small enough to force constant eviction,
// then checks the bookkeeping invariants. Run with -race (CI does) to
// make the interleavings meaningful.
func TestConcurrentStress(t *testing.T) {
	const (
		workers  = 16
		opsEach  = 2000
		capacity = 8 // far fewer slots than the 64-key working set
	)
	c := New(capacity)
	rec := &countingRecorder{}
	c.SetRecorder(rec)

	var gets, puts atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("k%d", (w*131+i*7)%64)
				switch i % 4 {
				case 0, 1:
					gets.Add(1)
					if v, ok := c.Get(key); ok && v.(string) != key {
						t.Errorf("corrupt value for %s: %v", key, v)
						return
					}
				case 2:
					puts.Add(1)
					c.Put(key, key)
				default:
					// Readers of the counters race with the mutators.
					c.Stats()
					c.Len()
					c.Evictions()
				}
			}
		}(w)
	}
	wg.Wait()

	if c.Len() > capacity {
		t.Fatalf("Len = %d exceeds capacity %d", c.Len(), capacity)
	}
	hits, misses := c.Stats()
	if hits+misses != gets.Load() {
		t.Fatalf("hits+misses = %d, want %d gets", hits+misses, gets.Load())
	}
	if rec.hits.Load() != hits || rec.misses.Load() != misses {
		t.Fatalf("recorder (h=%d m=%d) diverged from Stats (h=%d m=%d)",
			rec.hits.Load(), rec.misses.Load(), hits, misses)
	}
	if rec.evicts.Load() != c.Evictions() {
		t.Fatalf("recorder evicts %d != Evictions %d", rec.evicts.Load(), c.Evictions())
	}
	// With a 64-key working set over 8 slots, eviction must have happened.
	if c.Evictions() == 0 {
		t.Fatal("stress run produced no evictions")
	}
	if int64(c.Len())+c.Evictions() > puts.Load() {
		t.Fatalf("len(%d) + evictions(%d) exceeds puts(%d)", c.Len(), c.Evictions(), puts.Load())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%100)
				if v, ok := c.Get(key); ok {
					if v.(string) != key {
						t.Errorf("corrupt value for %s: %v", key, v)
						return
					}
				} else {
					c.Put(key, key)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("Len = %d exceeds capacity", c.Len())
	}
}

func TestClear(t *testing.T) {
	c := New(8)
	for i := 0; i < 8; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	c.Get("k3")
	hits, misses := c.Stats()
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len after Clear = %d", c.Len())
	}
	if _, ok := c.Get("k3"); ok {
		t.Fatal("entry survived Clear")
	}
	// Cumulative counters persist across Clear (the Get above added a miss).
	if h, m := c.Stats(); h != hits || m != misses+1 {
		t.Fatalf("counters reset by Clear: %d/%d vs %d/%d", h, m, hits, misses)
	}
	// The cache keeps working at full capacity afterwards.
	for i := 0; i < 12; i++ {
		c.Put(fmt.Sprintf("n%d", i), i)
	}
	if c.Len() != 8 {
		t.Fatalf("Len after refill = %d, want 8", c.Len())
	}
}

package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestPutGet(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("missing key found")
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")    // refresh a
	c.Put("c", 3) // evicts b (least recent)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite refresh")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("a", 9)
	if v, _ := c.Get("a"); v.(int) != 9 {
		t.Fatalf("value = %v", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestStats(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("zz")
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestCapacityOnePanicsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	New(0)
}

func TestCapacityOne(t *testing.T) {
	c := New(1)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived capacity-1 eviction")
	}
	if v, ok := c.Get("b"); !ok || v.(int) != 2 {
		t.Fatal("b lost")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%100)
				if v, ok := c.Get(key); ok {
					if v.(string) != key {
						t.Errorf("corrupt value for %s: %v", key, v)
						return
					}
				} else {
					c.Put(key, key)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("Len = %d exceeds capacity", c.Len())
	}
}

package par

import (
	"runtime"
	"sync"
	"testing"
)

// coverage verifies every index in [0, n) is visited exactly once and
// ranges never overlap, whatever the worker count.
func coverage(t *testing.T, n int, flops int64) {
	t.Helper()
	var mu sync.Mutex
	seen := make([]int, n)
	Do(n, flops, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("Do(%d): bad range [%d, %d)", n, lo, hi)
		}
		mu.Lock()
		for i := lo; i < hi; i++ {
			seen[i]++
		}
		mu.Unlock()
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("Do(%d): index %d visited %d times", n, i, c)
		}
	}
}

func TestDoCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64, 1000, 1001} {
		coverage(t, n, DefaultThreshold)   // parallel path
		coverage(t, n, DefaultThreshold-1) // serial path
	}
}

func TestDoZeroAndNegative(t *testing.T) {
	called := false
	Do(0, DefaultThreshold, func(lo, hi int) { called = true })
	Do(-3, DefaultThreshold, func(lo, hi int) { called = true })
	if called {
		t.Fatal("Do must not invoke body for n <= 0")
	}
}

func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	if got := Workers(); got != 1 {
		t.Fatalf("Workers() = %d after SetMaxWorkers(1)", got)
	}
	// With one worker the parallel path must degrade to a single inline call.
	calls := 0
	Do(1000, DefaultThreshold, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 1000 {
			t.Fatalf("serial fallback got range [%d, %d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("expected 1 body call, got %d", calls)
	}
	SetMaxWorkers(4)
	if got := Workers(); got != 4 {
		t.Fatalf("Workers() = %d after SetMaxWorkers(4)", got)
	}
	SetMaxWorkers(0)
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d after reset, want GOMAXPROCS %d", got, want)
	}
}

func TestDoWorkerCountIndependence(t *testing.T) {
	// The chunk layout (hence which body call owns which index) may vary
	// with workers, but coverage must stay exact at every count.
	for _, w := range []int{1, 2, 3, 5, 16} {
		prev := SetMaxWorkers(w)
		coverage(t, 997, DefaultThreshold)
		SetMaxWorkers(prev)
	}
}

// alignedCoverage verifies DoAligned visits every index exactly once and
// that every chunk boundary except the final hi lands on a multiple of
// align.
func alignedCoverage(t *testing.T, n, align int, flops int64) {
	t.Helper()
	var mu sync.Mutex
	seen := make([]int, n)
	DoAligned(n, align, flops, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("DoAligned(%d, %d): bad range [%d, %d)", n, align, lo, hi)
		}
		if align >= 2 && (lo%align != 0 || (hi%align != 0 && hi != n)) {
			t.Errorf("DoAligned(%d, %d): unaligned range [%d, %d)", n, align, lo, hi)
		}
		mu.Lock()
		for i := lo; i < hi; i++ {
			seen[i]++
		}
		mu.Unlock()
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("DoAligned(%d, %d): index %d visited %d times", n, align, i, c)
		}
	}
}

func TestDoAlignedCoversRangeWithAlignedBoundaries(t *testing.T) {
	for _, n := range []int{1, 3, 4, 7, 8, 63, 64, 65, 1000, 1001} {
		for _, align := range []int{0, 1, 2, 4, 8} {
			alignedCoverage(t, n, align, DefaultThreshold)   // parallel path
			alignedCoverage(t, n, align, DefaultThreshold-1) // serial path
		}
	}
}

func TestDoAlignedWorkerCountIndependence(t *testing.T) {
	for _, w := range []int{1, 2, 3, 5, 16} {
		prev := SetMaxWorkers(w)
		alignedCoverage(t, 997, 4, DefaultThreshold)
		SetMaxWorkers(prev)
	}
}

func TestDoAlignedZeroAndNegative(t *testing.T) {
	called := false
	DoAligned(0, 4, DefaultThreshold, func(lo, hi int) { called = true })
	DoAligned(-3, 4, DefaultThreshold, func(lo, hi int) { called = true })
	if called {
		t.Fatal("DoAligned must not invoke body for n <= 0")
	}
}

func TestGridDeterministicAndCovering(t *testing.T) {
	for _, n := range []int{1, 10, 511, 512, 513, 100000} {
		chunk, count := Grid(n, 512, 64)
		if count < 1 || chunk < 1 {
			t.Fatalf("Grid(%d) = (%d, %d)", n, chunk, count)
		}
		if got := (n + chunk - 1) / chunk; got != count {
			t.Fatalf("Grid(%d): count %d inconsistent with chunk %d (want %d)", n, count, chunk, got)
		}
		if count > 64 {
			t.Fatalf("Grid(%d): count %d exceeds maxChunks", n, count)
		}
		// Worker overrides must not change the grid.
		prev := SetMaxWorkers(3)
		c2, k2 := Grid(n, 512, 64)
		SetMaxWorkers(prev)
		if c2 != chunk || k2 != count {
			t.Fatalf("Grid(%d) changed under worker override: (%d,%d) vs (%d,%d)", n, chunk, count, c2, k2)
		}
	}
	if chunk, count := Grid(100, 512, 64); count != 1 || chunk != 100 {
		t.Fatalf("Grid below minChunk: got (%d, %d), want (100, 1)", chunk, count)
	}
}

// Package par is the shared scheduler behind every parallel matmul kernel
// in internal/dense and internal/sparse. It owns the three policy knobs
// the kernels used to duplicate inline:
//
//   - a flop threshold below which fan-out never pays (goroutine start-up
//     and wait dominate sub-millisecond kernels);
//   - the worker count, defaulting to GOMAXPROCS with a process-wide
//     override for tests and embedders;
//   - deterministic contiguous index partitioning: [0, n) is split into
//     at most workers chunks of ⌈n/workers⌉ consecutive indices, so a
//     kernel that writes disjoint output rows per index range produces
//     bitwise-identical results at every worker count.
//
// Kernels whose parallel decomposition must reorder a floating-point
// reduction (e.g. dense.TMul) do NOT let the worker count shape the
// reduction tree: they pick a chunk grid with Grid — a function of the
// problem size only — and schedule those chunks here. The summation
// order is then a property of the input shape, not of GOMAXPROCS, which
// is what makes the package-level determinism guarantee ("same input,
// same output, any core count") hold across the whole kernel suite.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultThreshold is the flop-count floor for fanning out. One million
// multiply-adds runs in well under a millisecond on one core; below that,
// spawning and joining goroutines costs more than it saves.
const DefaultThreshold = 1 << 20

// maxWorkers, when positive, caps the workers any Do call uses.
// Zero means "use GOMAXPROCS". Atomic so tests can flip it while
// kernels run on other goroutines.
var maxWorkers atomic.Int64

// SetMaxWorkers overrides the worker count used by Do (n < 1 restores the
// GOMAXPROCS default) and returns the previous override (0 = none).
// It applies process-wide: intended for tests pinning determinism and for
// embedders that must keep cores free for other work.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 0
	}
	return int(maxWorkers.Swap(int64(n)))
}

// Workers returns the effective worker count: the SetMaxWorkers override
// when set, else GOMAXPROCS.
func Workers() int {
	if w := int(maxWorkers.Load()); w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs body over the index range [0, n) split into contiguous chunks,
// one per worker. When flops < DefaultThreshold, only one worker is
// available, or n is too small to split, body runs once inline as
// body(0, n) — the serial fast path.
//
// Each index is covered by exactly one body call, and calls never overlap
// ranges, so a kernel that writes output region i only from the body call
// owning i is race-free and bitwise-deterministic at any worker count.
func Do(n int, flops int64, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := Workers()
	if flops < DefaultThreshold || workers == 1 || n < 2 {
		body(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// DoAligned is Do with every chunk boundary rounded up to a multiple of
// align — the tile-aware variant the register-blocked kernels use so a
// worker boundary never splits an MR-row register tile (the split would
// only cost speed, never bits: each output element is still accumulated
// by exactly one goroutine in a fixed order, whatever the partition).
// align < 2 degenerates to Do. The last chunk absorbs the remainder, so
// every index is still covered exactly once.
func DoAligned(n, align int, flops int64, body func(lo, hi int)) {
	if align < 2 {
		Do(n, flops, body)
		return
	}
	if n <= 0 {
		return
	}
	workers := Workers()
	if flops < DefaultThreshold || workers == 1 || n < 2*align {
		body(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	chunk = (chunk + align - 1) / align * align
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Grid picks a chunk decomposition of [0, n) for kernels that need
// per-chunk accumulators with a deterministic reduction: it returns the
// chunk length and chunk count such that chunks := ⌈n/chunk⌉ ≤ maxChunks
// and (except possibly the last chunk) every chunk spans at least
// minChunk indices. The decomposition depends only on n, minChunk and
// maxChunks — never on the worker count — so a reduction that sums chunk
// partials in chunk order yields the same floating-point result at every
// GOMAXPROCS.
//
// A count of 1 means chunking is pointless (n too small); callers should
// take their serial path.
func Grid(n, minChunk, maxChunks int) (chunk, count int) {
	if minChunk < 1 {
		minChunk = 1
	}
	if maxChunks < 1 {
		maxChunks = 1
	}
	if n <= minChunk {
		return n, 1
	}
	count = n / minChunk // ≥ 1 full chunks
	if count > maxChunks {
		count = maxChunks
	}
	chunk = (n + count - 1) / count
	count = (n + chunk - 1) / chunk
	return chunk, count
}

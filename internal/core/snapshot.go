package core

// snapshot.go implements the versioned snapshot directory the hot-reload
// lifecycle serves from — the same shape LevelDB-family stores use for
// their manifests:
//
//	index-<gen>.csrx   immutable index files, generation strictly increasing
//	CURRENT            one line naming the live snapshot ("index-<gen>.csrx")
//
// Writers append: WriteSnapshot persists a new generation next to the old
// ones (crash-consistently, via SaveIndex) and then atomically repoints
// CURRENT. Readers resolve CURRENT to a path and load it. Because
// published files are never mutated and both the file write and the
// pointer flip are atomic, a reader racing a writer sees either the old
// generation or the new one — never a torn index — and a crash mid-publish
// leaves CURRENT pointing at the previous, intact generation.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"csrplus/internal/fault"
)

// CurrentFile is the pointer file naming the live snapshot in a
// snapshot directory.
const CurrentFile = "CURRENT"

const (
	snapshotPrefix = "index-"
	snapshotSuffix = ".csrx"
)

// Temp-file prefixes used by the atomic writers. The sweeper keys on
// them, so they are named constants rather than string literals at the
// CreateTemp call sites.
const (
	tempSavePrefix    = ".csrx-"    // saveAtomic payload temps
	tempCurrentPrefix = ".current-" // SetCurrent pointer temps
)

// staleTempAge is how old an orphaned temp file must be before
// sweepStaleTemps deletes it. The atomic writers hold their temps for
// milliseconds, so anything minutes old is a crash leftover, not an
// in-flight write racing the sweep. Var, not const, so tests can sweep
// without waiting.
var staleTempAge = 10 * time.Minute

// sweepStaleTemps deletes crash-orphaned temp files (saveAtomic's
// .csrx-* payload temps, SetCurrent's .current-* pointer temps) older
// than staleTempAge. A crash between CreateTemp and the deferred remove
// strands the temp forever; on a snapshot directory rewritten every
// publish the strays accumulate until the disk fills. The sweep runs
// from the housekeeping path (PruneSnapshots) and the crash-recovery
// paths (RecoverSnapshot, RecoverShardSnapshot) — the places that
// execute exactly when leftovers can exist. Best-effort by design:
// errors are swallowed so the sweep can never turn a successful
// recovery into a failure over an unlinkable stray.
func sweepStaleTemps(dir string) (removed int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	cutoff := time.Now().Add(-staleTempAge)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() ||
			(!strings.HasPrefix(name, tempSavePrefix) && !strings.HasPrefix(name, tempCurrentPrefix)) {
			continue
		}
		info, err := e.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		if os.Remove(filepath.Join(dir, name)) == nil {
			removed++
		}
	}
	return removed
}

// ErrNoSnapshot is returned (wrapped) when a snapshot directory contains
// no resolvable snapshot.
var ErrNoSnapshot = errors.New("core: no snapshot in directory")

// SnapshotName renders the canonical file name of generation gen.
// Generations are zero-padded so lexical and numeric order agree in
// directory listings.
func SnapshotName(gen uint64) string {
	return fmt.Sprintf("%s%08d%s", snapshotPrefix, gen, snapshotSuffix)
}

// ParseSnapshotName extracts the generation from an index-<gen>.csrx
// name. It reports false for anything else (including CURRENT, temp
// files, and foreign files an operator dropped in the directory).
func ParseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapshotPrefix) || !strings.HasSuffix(name, snapshotSuffix) {
		return 0, false
	}
	digits := name[len(snapshotPrefix) : len(name)-len(snapshotSuffix)]
	if digits == "" {
		return 0, false
	}
	gen, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// Snapshot is one versioned index file in a snapshot directory.
type Snapshot struct {
	Gen  uint64
	Path string
}

// ListSnapshots returns every snapshot in dir in ascending generation
// order, ignoring files that do not follow the naming convention.
func ListSnapshots(dir string) ([]Snapshot, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("core: ListSnapshots: %w", err)
	}
	var snaps []Snapshot
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if gen, ok := ParseSnapshotName(e.Name()); ok {
			snaps = append(snaps, Snapshot{Gen: gen, Path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Gen < snaps[j].Gen })
	return snaps, nil
}

// WriteSnapshot persists ix as the next generation in dir (max existing
// generation + 1) and repoints CURRENT at it. Both steps are atomic and
// fsynced, so a crash anywhere leaves the directory serving its previous
// generation. The directory is created if missing.
func WriteSnapshot(dir string, ix *Index) (gen uint64, path string, err error) {
	gen, path, err = nextSnapshotPath(dir)
	if err != nil {
		return 0, "", err
	}
	if err := SaveIndex(ix, path); err != nil {
		return 0, "", err
	}
	if err := SetCurrent(dir, gen); err != nil {
		return 0, "", err
	}
	return gen, path, nil
}

// nextSnapshotPath creates dir if missing and reserves the next
// generation number and file path — the shared front half of
// WriteSnapshot and WriteShardSnapshot.
func nextSnapshotPath(dir string) (gen uint64, path string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, "", fmt.Errorf("core: WriteSnapshot: %w", err)
	}
	snaps, err := ListSnapshots(dir)
	if err != nil {
		return 0, "", err
	}
	gen = 1
	if len(snaps) > 0 {
		gen = snaps[len(snaps)-1].Gen + 1
	}
	return gen, filepath.Join(dir, SnapshotName(gen)), nil
}

// SetCurrent atomically repoints CURRENT at generation gen, which must
// already exist in dir — pointing at a missing file would publish a
// snapshot no reader can load.
func SetCurrent(dir string, gen uint64) error {
	name := SnapshotName(gen)
	if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("core: SetCurrent(%d): %w", gen, err)
	}
	tmp, err := os.CreateTemp(dir, tempCurrentPrefix+"*")
	if err != nil {
		return fmt.Errorf("core: SetCurrent: %w", err)
	}
	defer os.Remove(tmp.Name())
	// Chaos builds can tear or fail the pointer write; because the tear
	// lands in the temp file before the rename, old CURRENT stays intact —
	// the same guarantee a real crash gets.
	if _, err := io.WriteString(fault.Writer(fault.SiteCurrentWrite, tmp), name+"\n"); err != nil {
		tmp.Close()
		return fmt.Errorf("core: SetCurrent: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: SetCurrent: fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: SetCurrent: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, CurrentFile)); err != nil {
		return fmt.Errorf("core: SetCurrent: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("core: SetCurrent: %w", err)
	}
	return nil
}

// CurrentSnapshot resolves the snapshot a reload should serve: the one
// CURRENT names, or — when no CURRENT exists (an operator rsync'd bare
// index files into a fresh directory) — the highest generation present.
// It returns ErrNoSnapshot (wrapped) when neither resolves.
func CurrentSnapshot(dir string) (path string, gen uint64, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, CurrentFile))
	switch {
	case err == nil:
		name := strings.TrimSpace(string(raw))
		g, ok := ParseSnapshotName(name)
		if !ok || name != filepath.Base(name) {
			return "", 0, fmt.Errorf("core: CURRENT names %q, not a snapshot: %w", name, ErrNoSnapshot)
		}
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err != nil {
			return "", 0, fmt.Errorf("core: CURRENT names missing snapshot %s: %w", name, err)
		}
		return p, g, nil
	case errors.Is(err, os.ErrNotExist):
		snaps, lerr := ListSnapshots(dir)
		if lerr != nil {
			return "", 0, lerr
		}
		if len(snaps) == 0 {
			return "", 0, fmt.Errorf("core: %s: %w", dir, ErrNoSnapshot)
		}
		latest := snaps[len(snaps)-1]
		return latest.Path, latest.Gen, nil
	default:
		return "", 0, fmt.Errorf("core: CurrentSnapshot: %w", err)
	}
}

// RecoverSnapshot loads the best snapshot a directory can still serve,
// surviving the crash/corruption states CurrentSnapshot alone cannot: a
// CURRENT pointing at a missing or truncated index file (a torn publish, a
// partial rsync), a torn CURRENT naming garbage, or a corrupt newest
// generation. It tries CURRENT's target first; when that is absent or
// fails to load, it walks the remaining generations newest-first and
// returns the first one that deserialises cleanly (CRC and shape checks
// included). recovered reports that the returned snapshot is NOT the one
// CURRENT names — the operator's cue to investigate and re-publish. When
// nothing loads, the error wraps ErrNoSnapshot and names the last
// failure so "empty directory" and "every generation corrupt" read
// differently in logs.
func RecoverSnapshot(dir string) (ix *Index, snap Snapshot, recovered bool, err error) {
	sweepStaleTemps(dir)
	var loadErr error // most recent load failure, for the final error
	skip := ""
	if p, g, cerr := CurrentSnapshot(dir); cerr == nil {
		ix, loadErr = LoadIndex(p)
		if loadErr == nil {
			return ix, Snapshot{Gen: g, Path: p}, false, nil
		}
		skip = p
	} else if !errors.Is(cerr, os.ErrNotExist) && !errors.Is(cerr, ErrNoSnapshot) {
		// CURRENT exists but is unreadable or names garbage (torn write):
		// remember why, then fall back to the generation scan.
		loadErr = cerr
	}
	snaps, lerr := ListSnapshots(dir)
	if lerr != nil {
		return nil, Snapshot{}, false, lerr
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		s := snaps[i]
		if s.Path == skip {
			continue
		}
		ix, err := LoadIndex(s.Path)
		if err != nil {
			loadErr = err
			continue
		}
		return ix, s, true, nil
	}
	if loadErr != nil {
		return nil, Snapshot{}, false, fmt.Errorf("core: %s: no loadable snapshot (last failure: %v): %w", dir, loadErr, ErrNoSnapshot)
	}
	return nil, Snapshot{}, false, fmt.Errorf("core: %s: %w", dir, ErrNoSnapshot)
}

// PruneSnapshots deletes all but the newest keep generations from dir,
// never deleting the one CURRENT points at, and sweeps crash-orphaned
// temp files as a side effect. It returns how many snapshot files were
// removed (swept temps are not counted). keep < 1 is treated as 1: a
// snapshot directory must not be pruned to nothing.
func PruneSnapshots(dir string, keep int) (removed int, err error) {
	if keep < 1 {
		keep = 1
	}
	sweepStaleTemps(dir)
	snaps, err := ListSnapshots(dir)
	if err != nil {
		return 0, err
	}
	var curGen uint64
	if _, gen, err := CurrentSnapshot(dir); err == nil {
		curGen = gen
	}
	if len(snaps) <= keep {
		return 0, nil
	}
	for _, s := range snaps[:len(snaps)-keep] {
		if s.Gen == curGen {
			continue
		}
		if err := os.Remove(s.Path); err != nil {
			return removed, fmt.Errorf("core: PruneSnapshots: %w", err)
		}
		removed++
	}
	return removed, nil
}

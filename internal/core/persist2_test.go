package core

// persist2_test.go pins the CSRX v2 contract: mapped, decoded and v1
// engines answer bitwise-identically; every forgery the layout can
// express is rejected as ErrCorrupt; quantized tiers round-trip with
// their measured error vectors intact.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// repatchV2HeaderCRC makes a forged v2 header self-consistent so the
// validation under test — not the header checksum — rejects it.
func repatchV2HeaderCRC(data []byte) {
	binary.LittleEndian.PutUint32(data[v2HeaderCRC:], crc32.ChecksumIEEE(data[:v2HeaderCRC]))
}

func writeV2File(t *testing.T, ix *Index) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ix.csrx")
	if err := SaveIndex(ix, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func queryBits(t *testing.T, ix *Index, queries []int) []float64 {
	t.Helper()
	s, err := ix.Query(queries, nil)
	if err != nil {
		t.Fatal(err)
	}
	return append([]float64(nil), s.Data...)
}

func wantBitwise(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: value %d = %x, want %x (must be bitwise-identical)", label, i, got[i], want[i])
		}
	}
}

// TestV2RoundTripBitwise is the core property: an index written as v2
// then (a) decoded through ReadIndex and (b) memory-mapped through
// MapIndex answers every query bitwise-identically to the original and
// to the v1 decode path.
func TestV2RoundTripBitwise(t *testing.T) {
	ix := buildIndex(t)
	queries := []int{0, 1, 3, ix.N() - 1}
	want := queryBits(t, ix, queries)

	// v1 path, for the cross-format leg of the property.
	var v1 bytes.Buffer
	if _, err := ix.WriteTo(&v1); err != nil {
		t.Fatal(err)
	}
	fromV1, err := ReadIndex(&v1)
	if err != nil {
		t.Fatal(err)
	}
	wantBitwise(t, "v1 decode", queryBits(t, fromV1, queries), want)

	path := writeV2File(t, ix)
	decoded, err := func() (*Index, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ReadIndex(f)
	}()
	if err != nil {
		t.Fatal(err)
	}
	wantBitwise(t, "v2 decode", queryBits(t, decoded, queries), want)
	if decoded.N() != ix.N() || decoded.Rank() != ix.Rank() ||
		decoded.Damping() != ix.Damping() || decoded.Iterations() != ix.Iterations() {
		t.Fatal("v2 decode metadata mismatch")
	}
	sig := decoded.SingularValues()
	for i, s := range ix.SingularValues() {
		if sig[i] != s {
			t.Fatal("v2 decode singular values not preserved")
		}
	}

	mapped, err := MapIndex(path)
	if err != nil {
		if errors.Is(err, errMapUnsupported) {
			t.Skipf("mmap unavailable here: %v", err)
		}
		t.Fatal(err)
	}
	defer mapped.Close()
	if !mapped.Mapped() {
		t.Fatal("MapIndex returned an unmapped index")
	}
	wantBitwise(t, "v2 mapped", queryBits(t, mapped, queries), want)
	if b, err := mapped.QueryPair(1, 3); err != nil {
		t.Fatal(err)
	} else if d, _ := ix.QueryPair(1, 3); math.Float64bits(b) != math.Float64bits(d) {
		t.Fatal("mapped QueryPair differs")
	}
	if mapped.TruncationBound(2) != ix.TruncationBound(2) {
		t.Fatal("mapped truncation bound differs")
	}
	if err := mapped.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mapped.Close(); err != nil {
		t.Fatal("double Close must be safe:", err)
	}
}

// TestV2LoadIndexServesV2 pins that the default load path accepts what
// the default save path writes, and that LoadIndex still reads v1.
func TestV2LoadIndexServesV2(t *testing.T) {
	ix := buildIndex(t)
	queries := []int{2, 5}
	want := queryBits(t, ix, queries)

	back, err := LoadIndex(writeV2File(t, ix))
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	wantBitwise(t, "LoadIndex v2", queryBits(t, back, queries), want)

	v1path := filepath.Join(t.TempDir(), "v1.csrx")
	if err := saveAtomic("test", v1path, ix.WriteTo); err != nil {
		t.Fatal(err)
	}
	old, err := LoadIndex(v1path)
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	wantBitwise(t, "LoadIndex v1", queryBits(t, old, queries), want)
}

// TestV2CorruptionMatrix drives the forgeries ISSUE 8 names: truncated
// mapping, per-block CRC flip, misaligned section offset, and a forged
// offset overlapping the header — plus byte flips in header, payload and
// padding. Both readers (decode and map) must reject every one with a
// wrapped ErrCorrupt.
func TestV2CorruptionMatrix(t *testing.T) {
	ix := buildIndex(t)
	path := writeV2File(t, ix)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	le := binary.LittleEndian
	// Section table offsets for the z section (index layout: sections
	// 0..6, z is 5).
	zDesc := v2TableOff + 5*v2DescSize
	zOff := le.Uint64(pristine[zDesc:])

	corruptions := map[string]func([]byte) []byte{
		"truncated mid-payload": func(d []byte) []byte { return d[:zOff+17] },
		"truncated header":      func(d []byte) []byte { return d[:100] },
		"empty":                 func(d []byte) []byte { return d[:0] },
		"payload CRC flip": func(d []byte) []byte {
			d[zOff+3] ^= 0x40
			return d
		},
		"padding flip": func(d []byte) []byte {
			// Last byte of the z section's padded extent — covered by the
			// section CRC precisely so tampering here cannot hide.
			d[alignPage(zOff+1)-1] ^= 0x01
			return d
		},
		"misaligned section offset": func(d []byte) []byte {
			le.PutUint64(d[zDesc:], zOff+8)
			repatchV2HeaderCRC(d)
			return d
		},
		"offset overlapping header": func(d []byte) []byte {
			le.PutUint64(d[zDesc:], 0)
			repatchV2HeaderCRC(d)
			return d
		},
		"header flip unpatched": func(d []byte) []byte {
			d[16] ^= 0xFF
			return d
		},
		"forged fileSize": func(d []byte) []byte {
			le.PutUint64(d[56:], uint64(len(d))+v2Page)
			repatchV2HeaderCRC(d)
			return d
		},
		"forged section count": func(d []byte) []byte {
			le.PutUint32(d[12:], v2ShardSections)
			repatchV2HeaderCRC(d)
			return d
		},
		"forged tier": func(d []byte) []byte {
			le.PutUint32(d[8:], 99)
			repatchV2HeaderCRC(d)
			return d
		},
		"forged iters": func(d []byte) []byte {
			le.PutUint64(d[40:], 1<<63)
			repatchV2HeaderCRC(d)
			return d
		},
		"NaN sigma": func(d []byte) []byte {
			sOff := le.Uint64(d[v2TableOff:])
			le.PutUint64(d[sOff:], math.Float64bits(math.NaN()))
			// Re-checksum the sigma section's padded extent too: the NaN
			// check, not the CRC, must fire.
			sLen := le.Uint64(d[v2TableOff+8:])
			le.PutUint32(d[v2TableOff+16:], crc32.ChecksumIEEE(d[sOff:alignPage(sOff+sLen)]))
			repatchV2HeaderCRC(d)
			return d
		},
	}
	dir := t.TempDir()
	for name, corrupt := range corruptions {
		data := corrupt(append([]byte(nil), pristine...))
		if _, err := ReadIndex(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("decode %s: err = %v, want wrapped ErrCorrupt", name, err)
		}
		p := filepath.Join(dir, "bad.csrx")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if ix, err := MapIndex(p); err == nil {
			ix.Close()
			t.Errorf("map %s: mapped successfully, want rejection", name)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, errMapUnsupported) {
			t.Errorf("map %s: err = %v, want wrapped ErrCorrupt", name, err)
		}
		// The crash-recovery ladder must also refuse it, not serve it.
		if _, err := LoadIndex(p); !errors.Is(err, ErrCorrupt) {
			t.Errorf("load %s: err = %v, want wrapped ErrCorrupt", name, err)
		}
	}
}

// TestV2LazyVerifyCatchesPayloadCorruption pins the MapIndexLazy
// contract: mapping succeeds in O(1) without touching the factor
// blocks, and VerifyPayload finds the corruption the lazy map skipped.
func TestV2LazyVerifyCatchesPayloadCorruption(t *testing.T) {
	ix := buildIndex(t)
	path := writeV2File(t, ix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	zOff := binary.LittleEndian.Uint64(data[v2TableOff+5*v2DescSize:])
	data[zOff] ^= 0x80
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	lazy, err := MapIndexLazy(path)
	if err != nil {
		if errors.Is(err, errMapUnsupported) {
			t.Skipf("mmap unavailable here: %v", err)
		}
		t.Fatalf("lazy map must not read factor blocks, got %v", err)
	}
	defer lazy.Close()
	if err := lazy.VerifyPayload(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("VerifyPayload = %v, want wrapped ErrCorrupt", err)
	}
	// The verified paths reject the same file outright.
	if _, err := MapIndex(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("MapIndex = %v, want wrapped ErrCorrupt", err)
	}
}

// TestV2QuantizedRoundTrip saves each quantized tier and checks the
// loaded index preserves tier, answers, and the measured error vectors
// that make QuantizationBound valid after a reload.
func TestV2QuantizedRoundTrip(t *testing.T) {
	exact := buildIndex(t)
	queries := []int{0, 4}
	for _, tier := range []Tier{TierF32, TierI8} {
		q, err := exact.Quantize(tier)
		if err != nil {
			t.Fatal(err)
		}
		if q.Tier() != tier {
			t.Fatalf("Quantize tier = %v, want %v", q.Tier(), tier)
		}
		want := queryBits(t, q, queries)
		wantBound := q.QuantizationBound()
		if wantBound <= 0 {
			t.Fatalf("%v: quantization bound %g, want > 0", tier, wantBound)
		}

		path := writeV2File(t, q)
		back, err := LoadIndex(path)
		if err != nil {
			t.Fatal(err)
		}
		if back.Tier() != tier {
			t.Fatalf("loaded tier = %v, want %v", back.Tier(), tier)
		}
		wantBitwise(t, tier.String(), queryBits(t, back, queries), want)
		if got := back.QuantizationBound(); got != wantBound {
			t.Fatalf("%v: loaded bound %g, want %g", tier, got, wantBound)
		}
		if got := back.TruncationBound(back.Rank()); got != wantBound {
			t.Fatalf("%v: full-rank TruncationBound %g, want quant bound %g", tier, got, wantBound)
		}
		// The quantized answers stay within the reported bound of the
		// exact answers — the acceptance criterion for the tiers.
		exactBits := queryBits(t, exact, queries)
		for i := range exactBits {
			if d := math.Abs(want[i] - exactBits[i]); d > wantBound {
				t.Fatalf("%v: entry %d deviates %g > bound %g", tier, i, d, wantBound)
			}
		}
		back.Close()

		// v1 cannot hold a quantized index — the writer must say so
		// rather than drop the tier silently.
		if _, err := q.WriteTo(&bytes.Buffer{}); !errors.Is(err, ErrParams) {
			t.Fatalf("v1 WriteTo of %v index: err = %v, want ErrParams", tier, err)
		}
	}
	// Re-quantization would compound errors invisibly.
	q, _ := exact.Quantize(TierI8)
	if _, err := q.Quantize(TierF32); !errors.Is(err, ErrParams) {
		t.Fatalf("re-quantize: err = %v, want ErrParams", err)
	}
}

// TestV2ShardRoundTrip exercises the CSRS v2 twin: save/load/map a
// shard, bitwise-identical partials, and the same corruption discipline.
func TestV2ShardRoundTrip(t *testing.T) {
	ix := buildIndex(t)
	mid := ix.N() / 2
	sh, err := ix.Shard(mid, ix.N())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "sh.csrs")
	if err := SaveShard(sh, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadShard(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != sh.N() || back.Lo() != sh.Lo() || back.Hi() != sh.Hi() || back.Rank() != sh.Rank() {
		t.Fatal("shard metadata mismatch")
	}
	for i := sh.Lo(); i < sh.Hi(); i++ {
		a, b := sh.URow(i), back.URow(i)
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Fatalf("URow(%d)[%d] differs", i, j)
			}
		}
	}

	mapped, err := MapShard(path)
	if err != nil {
		if errors.Is(err, errMapUnsupported) {
			t.Skipf("mmap unavailable here: %v", err)
		}
		t.Fatal(err)
	}
	defer mapped.Close()
	if !mapped.Mapped() {
		t.Fatal("MapShard returned an unmapped shard")
	}
	for i := sh.Lo(); i < sh.Hi(); i++ {
		a, b := sh.URow(i), mapped.URow(i)
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Fatalf("mapped URow(%d)[%d] differs", i, j)
			}
		}
	}

	// Corrupt a factor byte: decode and map must both refuse.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	zOff := binary.LittleEndian.Uint64(data[v2TableOff+4*v2DescSize:])
	data[zOff+1] ^= 0x10
	bad := filepath.Join(dir, "bad.csrs")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShard(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt shard load: err = %v, want wrapped ErrCorrupt", err)
	}
	if _, err := MapShard(bad); err == nil || (!errors.Is(err, ErrCorrupt) && !errors.Is(err, errMapUnsupported)) {
		t.Fatalf("corrupt shard map: err = %v, want wrapped ErrCorrupt", err)
	}
}

// TestV2QuantizedShardRoundTrip pins the quantized CSRS path, including
// the error vectors a router needs to recompose the bound.
func TestV2QuantizedShardRoundTrip(t *testing.T) {
	exact := buildIndex(t)
	q, err := exact.Quantize(TierI8)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := q.Shard(0, q.N())
	if err != nil {
		t.Fatal(err)
	}
	if sh.Tier() != TierI8 {
		t.Fatalf("shard tier = %v, want int8", sh.Tier())
	}
	path := filepath.Join(t.TempDir(), "q.csrs")
	if err := SaveShard(sh, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadShard(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tier() != TierI8 {
		t.Fatalf("loaded shard tier = %v, want int8", back.Tier())
	}
	zerr, uerr := back.QuantErrs()
	wz, wu := sh.QuantErrs()
	for j := range wz {
		if zerr[j] != wz[j] || uerr[j] != wu[j] {
			t.Fatal("quant error vectors not preserved")
		}
	}
	zmax, umax := back.ColMaxes()
	if got, want := QuantBound(back.Damping(), zmax, umax, zerr, uerr), q.QuantizationBound(); got != want {
		t.Fatalf("router-side QuantBound %g, want %g", got, want)
	}
}

// TestShardFromMappedQuantizedDetaches pins the mapping-lifetime
// contract for quantized shards: a shard cut from a mapped index must
// not alias any mmap'd section — the typed factors AND the rank-length
// error vectors — so Close of the source index is safe the moment Shard
// returns, and the shard keeps serving QuantErrs/WriteToV2 afterwards.
func TestShardFromMappedQuantizedDetaches(t *testing.T) {
	exact := buildIndex(t)
	q, err := exact.Quantize(TierI8)
	if err != nil {
		t.Fatal(err)
	}
	path := writeV2File(t, q)
	mapped, err := MapIndex(path)
	if err != nil {
		if errors.Is(err, errMapUnsupported) {
			t.Skipf("mmap unavailable here: %v", err)
		}
		t.Fatal(err)
	}
	sh, err := mapped.Shard(0, mapped.N())
	if err != nil {
		t.Fatal(err)
	}
	zerr, uerr := sh.QuantErrs()
	if zerr == nil || uerr == nil {
		t.Fatal("quantized shard lost its error vectors")
	}
	if &zerr[0] == &mapped.zqerr[0] || &uerr[0] == &mapped.uqerr[0] {
		t.Fatal("shard error vectors alias the mapping")
	}
	wantZ := append([]float64(nil), mapped.zqerr...)
	wantU := append([]float64(nil), mapped.uqerr...)
	if err := mapped.Close(); err != nil {
		t.Fatal(err)
	}
	// Every accessor the router bound and a re-save need must survive the
	// source munmap.
	zerr, uerr = sh.QuantErrs()
	for j := range wantZ {
		if zerr[j] != wantZ[j] || uerr[j] != wantU[j] {
			t.Fatalf("error vector entry %d changed after Close", j)
		}
	}
	var buf bytes.Buffer
	if _, err := sh.WriteToV2(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadShard(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	bz, bu := back.QuantErrs()
	for j := range wantZ {
		if bz[j] != wantZ[j] || bu[j] != wantU[j] {
			t.Fatalf("round-tripped error vector entry %d differs", j)
		}
	}
}

// TestV2WalSeqRoundTrip pins the walSeq header field: preserved through
// the v2 decode and map paths, absent (zero) through v1, zero-forgiving
// for pre-field v2 files (zero bytes at the offset mean walSeq 0), and
// rejected on shard files, which never carry one.
func TestV2WalSeqRoundTrip(t *testing.T) {
	ix := buildIndex(t)
	ix.SetWalSeq(0xdeadbeef12)
	path := writeV2File(t, ix)

	decoded, err := LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer decoded.Close()
	if decoded.WalSeq() != 0xdeadbeef12 {
		t.Fatalf("decoded walSeq %#x, want 0xdeadbeef12", decoded.WalSeq())
	}

	mapped, err := MapIndex(path)
	if err == nil {
		if mapped.WalSeq() != 0xdeadbeef12 {
			t.Fatalf("mapped walSeq %#x, want 0xdeadbeef12", mapped.WalSeq())
		}
		mapped.Close()
	} else if !errors.Is(err, errMapUnsupported) {
		t.Fatal(err)
	}

	// v1 predates the field: it round-trips to zero, never an error.
	var v1 bytes.Buffer
	if _, err := ix.WriteTo(&v1); err != nil {
		t.Fatal(err)
	}
	fromV1, err := ReadIndex(&v1)
	if err != nil {
		t.Fatal(err)
	}
	if fromV1.WalSeq() != 0 {
		t.Fatalf("v1 round-trip invented walSeq %d", fromV1.WalSeq())
	}

	// A pre-field v2 file has zeros at the offset; zeroing it (and
	// repatching the CRC) must read back as walSeq 0.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(data[v2WalSeqOff:], 0)
	repatchV2HeaderCRC(data)
	old, err := decodeIndexV2(data)
	if err != nil {
		t.Fatal(err)
	}
	if old.WalSeq() != 0 {
		t.Fatalf("pre-field image read walSeq %d", old.WalSeq())
	}

	// Shards never carry a WAL sequence; a forged one is corruption.
	sh, err := ix.Shard(0, ix.N()/2)
	if err != nil {
		t.Fatal(err)
	}
	var sb bytes.Buffer
	if _, err := sh.WriteToV2(&sb); err != nil {
		t.Fatal(err)
	}
	sdata := sb.Bytes()
	binary.LittleEndian.PutUint64(sdata[v2WalSeqOff:], 7)
	repatchV2HeaderCRC(sdata)
	if _, err := decodeShardV2(sdata); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("forged shard walSeq accepted: %v", err)
	}
}

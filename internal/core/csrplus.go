// Package core implements CSR+, the paper's primary contribution: a
// multi-source CoSimRank search algorithm (Algorithm 1) that runs in
// O(r(m + n(r + |Q|))) time and O(rn) memory by combining a rank-r
// truncated SVD of the transition matrix with a repeated-squaring solve of
// the r x r subspace equation P = c H P Hᵀ + I_r (Theorems 3.1–3.5).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"csrplus/internal/dense"
	"csrplus/internal/graph"
	"csrplus/internal/memtrack"
	"csrplus/internal/svd"
)

// Default parameter values from the paper's §4.1.
const (
	DefaultDamping = 0.6
	DefaultRank    = 5
	DefaultEps     = 1e-5
)

// ErrDiverged is returned (wrapped) when the subspace iteration blows up.
// The compressed operator H = VᵀUΣ is not guaranteed contractive for every
// graph/rank combination; the paper assumes convergence, we verify it.
var ErrDiverged = errors.New("core: subspace iteration diverged")

// ErrParams is returned (wrapped) for out-of-range parameters.
var ErrParams = errors.New("core: invalid parameters")

// ErrQuery is returned (wrapped) for out-of-range query node ids.
var ErrQuery = errors.New("core: query node out of range")

// Options configures Precompute.
type Options struct {
	// Damping is the CoSimRank damping factor c in (0, 1). Default 0.6.
	Damping float64
	// Rank is the SVD target rank r. Default 5.
	Rank int
	// Eps is the desired accuracy of the subspace solve. Default 1e-5.
	Eps float64
	// SVD tunes the truncated SVD driver.
	SVD svd.Options
	// Solver selects the subspace solve; the zero value is the paper's
	// repeated squaring. The alternatives exist for the ablation study
	// (see ablation.go).
	Solver SubspaceSolver
	// Tracker, when non-nil, receives analytic memory accounting.
	Tracker *memtrack.Tracker
}

func (o Options) withDefaults() Options {
	if o.Damping == 0 {
		o.Damping = DefaultDamping
	}
	if o.Rank == 0 {
		o.Rank = DefaultRank
	}
	if o.Eps == 0 {
		o.Eps = DefaultEps
	}
	return o
}

func (o Options) validate(n int) error {
	if o.Damping <= 0 || o.Damping >= 1 {
		return fmt.Errorf("core: damping %v not in (0, 1): %w", o.Damping, ErrParams)
	}
	if o.Rank < 1 || o.Rank > n {
		return fmt.Errorf("core: rank %d not in [1, %d]: %w", o.Rank, n, ErrParams)
	}
	if o.Eps <= 0 || o.Eps >= 1 {
		return fmt.Errorf("core: eps %v not in (0, 1): %w", o.Eps, ErrParams)
	}
	return nil
}

// Index holds CSR+'s precomputed state (Algorithm 1, phase I): the factors
// Z and U such that [S]_{*,Q} = [I_n]_{*,Q} + c · Z · [U]_{Q,*}ᵀ. Both are
// n x r, giving the paper's O(rn) resident memory.
type Index struct {
	n       int
	c       float64
	rank    int
	iters   int        // repeated-squaring iterations performed
	z       *dense.Mat // U (Σ P Σ), n x r — exact tier only; nil when quantized
	u       *dense.Mat // left singular vectors, n x r — exact tier only
	sigma   []float64  // singular values (diagnostics)
	precomp time.Duration

	// Quantized tiers (tier.go) store the factors as dense.Typed with
	// per-column scales instead of z/u, plus the measured per-column
	// dequantisation errors that feed QuantizationBound. Exactly one of
	// (z, u) and (zt, ut) is populated.
	zt, ut       *dense.Typed
	zqerr, uqerr []float64

	// walSeq is the last ingest-WAL sequence number whose edge is baked
	// into the factors (0 for indexes built outside the ingestion path).
	// Boot recovery replays only WAL records above it with drift
	// counting; records at or below rebuild structure drift-free.
	walSeq uint64

	// mapped is non-nil when the factor slices are zero-copy views over
	// an mmap'd snapshot (core.MapIndex); Close releases it. The serving
	// lifecycle must keep the Index alive until every in-flight query has
	// drained — see DESIGN.md's mapping-lifetime rules.
	mapped *mapping

	// boundOnce lazily computes boundTail, the truncation error bounds of
	// TruncationBound: boundTail[r'] = c · Σ_{j ≥ r'} max|Z_{*,j}|·max|U_{*,j}|.
	boundOnce sync.Once
	boundTail []float64

	// quantOnce lazily computes quantBound, the entrywise quantisation
	// error bound a quantized tier adds to every truncation bound.
	quantOnce  sync.Once
	quantBound float64
}

// N returns the node count the index was built for.
func (ix *Index) N() int { return ix.n }

// Rank returns the SVD rank of the index.
func (ix *Index) Rank() int { return ix.rank }

// Damping returns the damping factor baked into the index.
func (ix *Index) Damping() float64 { return ix.c }

// WalSeq returns the last ingest-WAL sequence baked into the factors,
// 0 for indexes built outside the ingestion path or loaded from v1
// snapshots (which predate the field).
func (ix *Index) WalSeq() uint64 { return ix.walSeq }

// SetWalSeq records the last WAL sequence covered by the factors; the
// ingestion rebuild path calls it before writing the snapshot so boot
// recovery knows where drift-counted replay starts.
func (ix *Index) SetWalSeq(seq uint64) { ix.walSeq = seq }

// Iterations returns the number of repeated-squaring steps performed.
func (ix *Index) Iterations() int { return ix.iters }

// SingularValues returns the retained singular values (descending).
func (ix *Index) SingularValues() []float64 {
	return append([]float64(nil), ix.sigma...)
}

// PrecomputeTime returns the wall-clock duration of index construction.
func (ix *Index) PrecomputeTime() time.Duration { return ix.precomp }

// Bytes reports the resident memory of the index: the Z and U factors —
// the O(rn) of Theorem 3.7 — at the tier's element width.
func (ix *Index) Bytes() int64 {
	if ix.zt != nil {
		return ix.zt.Bytes() + ix.ut.Bytes() + int64(len(ix.sigma)+len(ix.zqerr)+len(ix.uqerr))*8
	}
	return ix.z.Bytes() + ix.u.Bytes() + int64(len(ix.sigma))*8
}

// SquaringIterations returns the paper's iteration bound
// max{0, ⌊log₂ log_c ε⌋ + 1} for the repeated-squaring loop.
func SquaringIterations(c, eps float64) int {
	k := int(math.Floor(math.Log2(math.Log(eps)/math.Log(c)))) + 1
	if k < 0 {
		return 0
	}
	return k
}

// Precompute runs phase I of Algorithm 1 on g and returns the query-ready
// index.
func Precompute(g *graph.Graph, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	if err := opts.validate(g.N()); err != nil {
		return nil, err
	}
	start := time.Now()
	track := opts.Tracker
	n, r, c := g.N(), opts.Rank, opts.Damping

	// Line 1: column-normalised adjacency Q.
	q, err := g.Transition()
	if err != nil {
		return nil, fmt.Errorf("core: precompute: %w", err)
	}
	track.Alloc("precompute/Q", q.Bytes())

	// Line 2: rank-r SVD. Algorithm 1 is phrased over the operator that
	// acts as S ← c M S Mᵀ + I, i.e. M = Qᵀ (the paper's Example 3.6
	// prints the factors of Qᵀ under the name Q = UΣVᵀ). Decomposing
	// Q ≈ U Σ Vᵀ therefore gives M = Qᵀ ≈ V Σ Uᵀ: the roles of U and V
	// swap. First-order sanity check: S ≈ I + cQᵀQ = I + cVΣ²Vᵀ.
	fac, err := svd.Truncated(q, r, opts.SVD)
	if err != nil {
		return nil, fmt.Errorf("core: precompute: truncated SVD: %w", err)
	}
	um, vm := fac.V, fac.U // left/right singular vectors of M = Qᵀ
	track.Alloc("precompute/USV", fac.Bytes())
	track.Free("precompute/Q", q.Bytes()) // Q not needed past the SVD

	// Lines 3–5: subspace solve (variant-selectable for the ablation).
	var p *dense.Mat
	var iters int
	switch opts.Solver {
	case SolverSquaring:
		p, iters, err = SolveSubspace(um, fac.S, vm, c, opts.Eps)
	case SolverPlain:
		p, iters, err = SolveSubspacePlain(um, fac.S, vm, c, opts.Eps)
	case SolverExplicitLambda:
		p, err = SolveSubspaceLambda(um, fac.S, vm, c)
	default:
		err = fmt.Errorf("core: unknown solver %d: %w", int(opts.Solver), ErrParams)
	}
	if err != nil {
		return nil, fmt.Errorf("core: precompute: %w", err)
	}
	track.Alloc("precompute/P", p.Bytes())

	// Line 6: Z = U (Σ P Σ).
	z := BuildZ(um, fac.S, p)
	track.Alloc("precompute/Z", z.Bytes())
	track.Free("precompute/P", p.Bytes())

	return &Index{
		n:       n,
		c:       c,
		rank:    r,
		iters:   iters,
		z:       z,
		u:       um,
		sigma:   fac.S,
		precomp: time.Since(start),
	}, nil
}

// SolveSubspace runs lines 3–5 of Algorithm 1: form H₀ = VᵀUΣ and solve
// P = c H P Hᵀ + I_r by repeated squaring,
//
//	P_{k+1} = P_k + c^(2^k) H_k P_k H_kᵀ,  H_{k+1} = H_k²,
//
// for max{0, ⌊log₂ log_c ε⌋ + 1} iterations. It returns the converged P and
// the iteration count, or ErrDiverged when the compressed operator is not
// contractive enough for the series to stay bounded.
func SolveSubspace(u *dense.Mat, s []float64, v *dense.Mat, c, eps float64) (*dense.Mat, int, error) {
	r := len(s)
	// H0 = Vᵀ U Σ — O(nr²) time, O(r²) result.
	h := dense.TMul(v, u)
	for i := 0; i < r; i++ {
		row := h.Row(i)
		for j := 0; j < r; j++ {
			row[j] *= s[j]
		}
	}
	p := dense.Eye(r)
	kmax := SquaringIterations(c, eps)
	// The divergence guard bounds ‖P‖_max by the exact series' worst case:
	// entries of the CoSimRank matrix are at most 1/(1-c) when the series
	// converges; the compressed series can legitimately overshoot only by
	// modest spectral leakage, so a generous fixed multiple is safe.
	limit := 1e6 / (1 - c)
	weight := c // c^(2^k)
	for k := 0; k < kmax; k++ {
		// P ← P + weight · H P Hᵀ
		hp := dense.Mul(h, p)
		hpht := dense.MulT(hp, h)
		p.AddInPlace(hpht.Scale(weight))
		if p.HasNaN() || p.MaxAbs() > limit {
			return nil, k + 1, fmt.Errorf("core: after %d squaring steps ‖P‖=%g: %w", k+1, p.MaxAbs(), ErrDiverged)
		}
		h = dense.Mul(h, h)
		weight *= weight
	}
	return p, kmax, nil
}

// BuildZ computes line 6 of Algorithm 1: Z = U (Σ P Σ).
func BuildZ(u *dense.Mat, s []float64, p *dense.Mat) *dense.Mat {
	r := len(s)
	sps := dense.NewMat(r, r)
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			sps.Set(i, j, s[i]*p.At(i, j)*s[j])
		}
	}
	return dense.Mul(u, sps)
}

// Query runs phase II of Algorithm 1: it returns the n x |Q| block
// [S]_{*,Q} = [I_n]_{*,Q} + c · Z · [U]_{Q,*}ᵀ. Column j of the result
// holds the CoSimRank similarity of every node with queries[j]. It returns
// ErrQuery (wrapped) for out-of-range node ids and ErrParams for an empty
// query set.
func (ix *Index) Query(queries []int, track *memtrack.Tracker) (*dense.Mat, error) {
	return ix.QueryInto(queries, nil, track)
}

// QueryInto is Query writing into caller-provided scratch: the n x |Q|
// result reuses scratch's backing array when its capacity suffices
// (contents are overwritten) and allocates otherwise. Passing nil scratch
// is exactly Query. The returned matrix is the result — scratch itself
// whenever it had capacity — so serving layers can pool one matrix per
// in-flight batch instead of allocating n x |Q| per engine call.
func (ix *Index) QueryInto(queries []int, scratch *dense.Mat, track *memtrack.Tracker) (*dense.Mat, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: empty query set: %w", ErrParams)
	}
	for _, q := range queries {
		if q < 0 || q >= ix.n {
			return nil, fmt.Errorf("core: node %d not in [0, %d): %w", q, ix.n, ErrQuery)
		}
	}
	// [U]_{Q,*} is |Q| x r; Z [U]_{Q,*}ᵀ is n x |Q|.
	uq := ix.pickURows(queries)
	track.Alloc("query/UQ", uq.Bytes())
	var s *dense.Mat
	if ix.zt != nil {
		s = dense.MulTRankTypedInto(scratch, ix.zt, uq, ix.rank)
	} else {
		s = dense.MulTInto(scratch, ix.z, uq)
	}
	track.Alloc("query/S", s.Bytes())
	s.Scale(ix.c)
	for j, q := range queries {
		s.Set(q, j, s.At(q, j)+1)
	}
	return s, nil
}

// queryBandRows is how many output rows QueryRankInto computes between
// cancellation checks: large enough that the check cost vanishes in the
// band's O(rows · r · |Q|) flops, small enough that an abandoned batch
// releases its pool worker within a fraction of a millisecond of work.
const queryBandRows = 1 << 15

// QueryRankInto is phase II answered from a rank-r' truncation of the
// index, honouring ctx. Because the factor columns are ordered by
// descending singular value, the truncated answer
//
//	S' = [I_n]_{*,Q} + c · Z_{*,<r'} · ([U]_{Q,<r'})ᵀ
//
// is a slice of the existing factors — no rebuild — and its entrywise
// error against the full-rank answer is bounded by TruncationBound(rank).
// rank ≤ 0 or ≥ the index rank answers at full rank (making this a strict
// generalisation of QueryInto); the GEMM runs in row bands with a
// cancellation check between bands, so a batch whose callers have all
// gone away stops consuming its worker mid-pass instead of running to
// completion. Returns ctx.Err() on cancellation.
func (ix *Index) QueryRankInto(ctx context.Context, queries []int, rank int, scratch *dense.Mat, track *memtrack.Tracker) (*dense.Mat, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: empty query set: %w", ErrParams)
	}
	for _, q := range queries {
		if q < 0 || q >= ix.n {
			return nil, fmt.Errorf("core: node %d not in [0, %d): %w", q, ix.n, ErrQuery)
		}
	}
	if rank <= 0 || rank > ix.rank {
		rank = ix.rank
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	uq := ix.pickURows(queries)
	track.Alloc("query/UQ", uq.Bytes())
	s := scratch.Reuse(ix.n, len(queries))
	track.Alloc("query/S", s.Bytes())
	cols := len(queries)
	for lo := 0; lo < ix.n; lo += queryBandRows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := lo + queryBandRows
		if hi > ix.n {
			hi = ix.n
		}
		sBand := &dense.Mat{Rows: hi - lo, Cols: cols, Data: s.Data[lo*cols : hi*cols]}
		if ix.zt != nil {
			dense.MulTRankTypedInto(sBand, ix.zt.SliceRowsView(lo, hi), uq, rank)
		} else {
			zBand := &dense.Mat{Rows: hi - lo, Cols: ix.rank, Data: ix.z.Data[lo*ix.rank : hi*ix.rank]}
			dense.MulTRankInto(sBand, zBand, uq, rank)
		}
	}
	s.Scale(ix.c)
	for j, q := range queries {
		s.Set(q, j, s.At(q, j)+1)
	}
	return s, nil
}

// TruncationBound returns a rigorous bound on the entrywise error of a
// rank-truncated query against the full-rank answer:
//
//	|S_ik − S'_ik| = c·|Σ_{j ≥ r'} Z_ij·U_kj| ≤ c·Σ_{j ≥ r'} max|Z_{*,j}|·max|U_{*,j}|
//
// The per-column maxima are computed once and cached; because the columns
// are ordered by singular value the tail sum shrinks monotonically as the
// retained rank grows, mirroring the singular-value tail that governs the
// approximation error of the low-rank literature. rank ≥ the index rank
// (or ≤ 0, meaning "full") returns 0 for the exact tier; a quantized
// tier additionally carries QuantizationBound at every rank, so the
// reported bound stays rigorous against the exact full-rank answer.
func (ix *Index) TruncationBound(rank int) float64 {
	if rank <= 0 || rank >= ix.rank {
		return ix.QuantizationBound()
	}
	ix.boundOnce.Do(func() {
		zmax, umax := ix.colAbsMaxes()
		ix.boundTail = TailBound(ix.c, zmax, umax)
	})
	return ix.boundTail[rank] + ix.QuantizationBound()
}

// QueryPair returns the single similarity value [S]_{a,b} in O(r) time:
// δ_{ab} + c·⟨Z_{a,*}, U_{b,*}⟩ — the single-pair special case the
// original CoSimRank paper optimised for, free once the index exists.
func (ix *Index) QueryPair(a, b int) (float64, error) {
	if a < 0 || a >= ix.n || b < 0 || b >= ix.n {
		return 0, fmt.Errorf("core: pair (%d, %d) not in [0, %d): %w", a, b, ix.n, ErrQuery)
	}
	var s float64
	if ix.zt != nil {
		zr := make([]float64, ix.rank)
		ur := make([]float64, ix.rank)
		s = ix.c * dense.Dot(ix.zt.RowInto(a, zr), ix.ut.RowInto(b, ur))
	} else {
		s = ix.c * dense.Dot(ix.z.Row(a), ix.u.Row(b))
	}
	if a == b {
		s++
	}
	return s, nil
}

// QueryOne returns the single-source similarity vector [S]_{*,q}.
func (ix *Index) QueryOne(q int) ([]float64, error) {
	s, err := ix.Query([]int{q}, nil)
	if err != nil {
		return nil, err
	}
	return s.Col(0, nil), nil
}

package core

// Reload-latency benchmarks behind BENCH_snapshot.json: the v1 buffered
// decode against the v2 verified map and the v2 lazy map, at two index
// sizes. The lazy map is the O(1) claim — its time must not move with n;
// the verified map still walks the factor bytes once for the CRC pass
// but allocates nothing for them; the v1 decode pays a heap copy of
// every factor entry.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"csrplus/internal/dense"
)

// synthBenchIndex builds an exact-tier index with deterministic
// pseudo-random factors directly — Precompute cost would dwarf the load
// path under measurement, and the load path never looks at the values.
func synthBenchIndex(n, rank int) *Index {
	z := dense.NewMat(n, rank)
	u := dense.NewMat(n, rank)
	state := uint64(0x9E3779B97F4A7C15)
	fill := func(m *dense.Mat) {
		for i := range m.Data {
			state = state*6364136223846793005 + 1442695040888963407
			m.Data[i] = float64(int64(state>>17)%2000-1000) / 1000
		}
	}
	fill(z)
	fill(u)
	sigma := make([]float64, rank)
	for i := range sigma {
		sigma[i] = float64(rank-i) * 0.5
	}
	return &Index{n: n, c: 0.8, rank: rank, iters: 8, z: z, u: u, sigma: sigma}
}

// benchLoadFiles writes one v1 and one v2 file per size and hands the
// paths to each sub-benchmark.
func benchLoadFiles(b *testing.B, load func(b *testing.B, v1, v2 string)) {
	b.Helper()
	for _, n := range []int{2500, 20000} {
		ix := synthBenchIndex(n, 16)
		dir := b.TempDir()
		v1 := filepath.Join(dir, "v1.csrx")
		f, err := os.Create(v1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ix.WriteTo(f); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		v2 := filepath.Join(dir, "v2.csrx")
		if err := SaveIndex(ix, v2); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { load(b, v1, v2) })
	}
}

func BenchmarkSnapshotLoadV1Decode(b *testing.B) {
	benchLoadFiles(b, func(b *testing.B, v1, _ string) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix, err := LoadIndex(v1)
			if err != nil {
				b.Fatal(err)
			}
			ix.Close()
		}
	})
}

func BenchmarkSnapshotLoadV2MapVerified(b *testing.B) {
	benchLoadFiles(b, func(b *testing.B, _, v2 string) {
		probe, err := LoadIndex(v2)
		if err != nil {
			b.Fatal(err)
		}
		mapped := probe.Mapped()
		probe.Close()
		if !mapped {
			b.Skip("mmap unavailable on this platform; v2 loads via the decode fallback")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix, err := LoadIndex(v2)
			if err != nil {
				b.Fatal(err)
			}
			ix.Close()
		}
	})
}

func BenchmarkSnapshotLoadV2MapLazy(b *testing.B) {
	benchLoadFiles(b, func(b *testing.B, _, v2 string) {
		probe, err := MapIndexLazy(v2)
		if err != nil {
			b.Skipf("mmap unavailable on this platform: %v", err)
		}
		probe.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix, err := MapIndexLazy(v2)
			if err != nil {
				b.Fatal(err)
			}
			ix.Close()
		}
	})
}

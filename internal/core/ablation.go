package core

// ablation.go implements deliberately de-optimised variants of CSR+'s
// subspace solve and query phase, so the contribution of each of the
// paper's §3.2 optimisation stages can be measured in isolation
// (bench/ablation.go drives them; see DESIGN.md §6):
//
//   - SolverSquaring      — Algorithm 1 as published (repeated squaring).
//   - SolverPlain         — drops the repeated-squaring trick: the plain
//     recurrence P ← cHPHᵀ + I runs for ⌈log_c ε⌉ iterations instead of
//     ⌈log₂ log_c ε⌉ squarings.
//   - SolverExplicitLambda — drops Theorem 3.4: Λ is materialised as the
//     r² x r² matrix (Σ⊗Σ)(I − c·H⊗H)⁻¹ and applied to vec(I_r), costing
//     O(r⁶) time and O(r⁴) memory where the paper's route costs O(r³).
//
// The third stage short of full CSR-NI (explicit n²-sized tensors) is
// already measured by the CSR-NI baseline itself.

import (
	"fmt"
	"math"

	"csrplus/internal/dense"
)

// SubspaceSolver selects how the r x r fixed point is solved.
type SubspaceSolver int

const (
	// SolverSquaring is the paper's repeated-squaring loop (default).
	SolverSquaring SubspaceSolver = iota
	// SolverPlain iterates the recurrence without squaring.
	SolverPlain
	// SolverExplicitLambda materialises Λ in the r² x r² space.
	SolverExplicitLambda
)

// String names the solver for reports.
func (s SubspaceSolver) String() string {
	switch s {
	case SolverSquaring:
		return "squaring"
	case SolverPlain:
		return "plain-iteration"
	case SolverExplicitLambda:
		return "explicit-lambda"
	default:
		return fmt.Sprintf("SubspaceSolver(%d)", int(s))
	}
}

// SolveSubspacePlain solves P = cHPHᵀ + I_r by the plain fixed-point
// recurrence, running ⌈log_c ε⌉ iterations. Same divergence guard as the
// squaring solver.
func SolveSubspacePlain(u *dense.Mat, s []float64, v *dense.Mat, c, eps float64) (*dense.Mat, int, error) {
	r := len(s)
	h := dense.TMul(v, u)
	for i := 0; i < r; i++ {
		row := h.Row(i)
		for j := 0; j < r; j++ {
			row[j] *= s[j]
		}
	}
	iters := int(math.Ceil(math.Log(eps) / math.Log(c)))
	if iters < 1 {
		iters = 1
	}
	limit := 1e6 / (1 - c)
	p := dense.Eye(r)
	for k := 0; k < iters; k++ {
		hp := dense.Mul(h, p)
		next := dense.MulT(hp, h).Scale(c).AddEye(1)
		p = next
		if p.HasNaN() || p.MaxAbs() > limit {
			return nil, k + 1, fmt.Errorf("core: plain iteration %d ‖P‖=%g: %w", k+1, p.MaxAbs(), ErrDiverged)
		}
	}
	return p, iters, nil
}

// SolveSubspaceLambda computes P through the explicit Λ route of
// Theorem 3.3 *without* Theorem 3.4's redundancy elimination:
// Λ = (Σ⊗Σ)(I_{r²} − c·H⊗H)⁻¹ is materialised and applied to vec(I_r),
// and P is recovered from vec(ΣPΣ) = Λ·vec(I_r).
func SolveSubspaceLambda(u *dense.Mat, s []float64, v *dense.Mat, c float64) (*dense.Mat, error) {
	r := len(s)
	h := dense.TMul(v, u)
	for i := 0; i < r; i++ {
		row := h.Row(i)
		for j := 0; j < r; j++ {
			row[j] *= s[j]
		}
	}
	// (I − c·H⊗H)⁻¹, the r² x r² inversion Theorem 3.4 avoids.
	hh := dense.Kron(h, h).Scale(-c).AddEye(1)
	inv, err := dense.Inverse(hh)
	if err != nil {
		return nil, fmt.Errorf("core: explicit-lambda inversion: %w", err)
	}
	// (I − c·H⊗H)·vec(P) = vec(I_r), so vec(P) = inv·vec(I_r); the Σ
	// scalings of Λ = (Σ⊗Σ)·inv and of P = Σ⁻¹(ΣPΣ)Σ⁻¹ cancel exactly —
	// the variant's point is the O(r⁶) inversion cost above, not extra
	// arithmetic here.
	return dense.Unvec(dense.MulVec(inv, dense.VecEye(r)), r, r), nil
}

// QueryDense answers a multi-source query the un-optimised way, without
// Theorem 3.5: the full n x n similarity matrix S = I + c·Z·Uᵀ is
// materialised and the queried columns sliced out. O(n²r) time and O(n²)
// memory — the cost the paper's fourth stage eliminates. Ablation use
// only; the memory guard must be consulted before calling it on anything
// large.
func (ix *Index) QueryDense(queries []int) (*dense.Mat, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: empty query set: %w", ErrParams)
	}
	for _, q := range queries {
		if q < 0 || q >= ix.n {
			return nil, fmt.Errorf("core: node %d not in [0, %d): %w", q, ix.n, ErrQuery)
		}
	}
	if ix.zt != nil {
		// The ablation baseline exists to measure the exact algorithm's
		// cost; a lossy tier would measure something else entirely.
		return nil, fmt.Errorf("core: QueryDense requires an exact (f64) index, have %v: %w", ix.Tier(), ErrParams)
	}
	full := dense.MulT(ix.z, ix.u).Scale(ix.c).AddEye(1)
	out := dense.NewMat(ix.n, len(queries))
	for j, q := range queries {
		for i := 0; i < ix.n; i++ {
			out.Set(i, j, full.At(i, q))
		}
	}
	return out, nil
}

//go:build linux || darwin

package core

// mmap_unix.go is the thin platform layer under MapIndex/MapShard: a
// read-only shared mapping of a snapshot file. MAP_SHARED means two
// generations mapped during a swap share the page cache instead of
// doubling RSS, and PROT_READ turns any stray write through a factor
// view into a fault instead of silent snapshot corruption.

import (
	"os"
	"syscall"
)

const mmapSupported = true

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}

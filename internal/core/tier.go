package core

// tier.go implements the quantized factor tiers: an Index (or shard)
// whose Z and U are stored as float32 or int8 with per-column scales
// instead of float64, cutting the O(rn) footprint 2x/8x at a bounded,
// measured entrywise cost surfaced through TruncationBound. Tiers are
// chosen at save time (csrstat -quantize, csrserver -quantize) and
// travel in the CSRX v2 layout (persist2.go); serving code is oblivious —
// the query paths branch to the dense typed-source kernels internally.
//
// It also owns the mmap lifetime handle: an Index returned by MapIndex
// views factor blocks of a memory mapping, and Close releases it. The
// rules for who calls Close when generations swap live in DESIGN.md
// ("Mapping lifetime"); the short version is that the reload manager
// releases a generation only after the serve layer's drain-on-swap
// guarantee says no in-flight query can still touch it.

import (
	"fmt"
	"math"
	"sync"

	"csrplus/internal/dense"
)

// Tier identifies the element storage of an index's factor matrices.
type Tier uint8

const (
	// TierF64 is the exact tier: float64 factors, zero added error.
	TierF64 Tier = iota
	// TierF32 stores factors as float32: 2x smaller, ~1e-8 relative error.
	TierF32
	// TierI8 stores factors as int8 codes with per-column scales: 8x
	// smaller, error bounded by half the column scale per entry.
	TierI8
)

// String names the tier the way the -quantize flags spell it.
func (t Tier) String() string {
	switch t {
	case TierF64:
		return "f64"
	case TierF32:
		return "f32"
	case TierI8:
		return "int8"
	}
	return fmt.Sprintf("Tier(%d)", uint8(t))
}

// ParseTier parses a -quantize flag value. "" and "none" mean the exact
// tier, matching "no -quantize flag".
func ParseTier(s string) (Tier, error) {
	switch s {
	case "", "none", "f64", "float64":
		return TierF64, nil
	case "f32", "float32":
		return TierF32, nil
	case "int8", "i8":
		return TierI8, nil
	}
	return TierF64, fmt.Errorf("core: unknown quantization tier %q (want f64, f32 or int8): %w", s, ErrParams)
}

// kind maps the tier to its dense storage kind.
func (t Tier) kind() dense.Kind {
	switch t {
	case TierF32:
		return dense.F32
	case TierI8:
		return dense.I8
	default:
		return dense.F64
	}
}

// Tier returns the storage tier of the index's factors.
func (ix *Index) Tier() Tier {
	if ix.zt == nil {
		return TierF64
	}
	switch ix.zt.Kind {
	case dense.F32:
		return TierF32
	default:
		return TierI8
	}
}

// pickURows gathers [U]_{Q,*} as float64, dequantising when needed.
func (ix *Index) pickURows(queries []int) *dense.Mat {
	if ix.ut != nil {
		return ix.ut.PickRows(queries)
	}
	return ix.u.PickRows(queries)
}

// colAbsMaxes returns the per-column maxima of |Z| and |U| as the
// serving tier stores them (dequantised for quantized tiers) — the
// inputs of the truncation-bound recurrence.
func (ix *Index) colAbsMaxes() (zmax, umax []float64) {
	if ix.zt != nil {
		return ix.zt.ColAbsMax(), ix.ut.ColAbsMax()
	}
	colMax := func(m *dense.Mat) []float64 {
		mx := make([]float64, m.Cols)
		for i := 0; i < m.Rows; i++ {
			row := m.Row(i)
			for j, v := range row {
				if a := math.Abs(v); a > mx[j] {
					mx[j] = a
				}
			}
		}
		return mx
	}
	return colMax(ix.z), colMax(ix.u)
}

// quantTerm is the shared entrywise quantisation bound: with measured
// per-column dequantisation errors zerr/uerr and served column maxima
// zmax/umax (so Z' = Z + ΔZ with |ΔZ_{*,j}| ≤ zerr_j, |Z'_{*,j}| ≤ zmax_j),
//
//	|c·(Z'U'ᵀ − ZUᵀ)_ik| ≤ c·Σ_j (zmax_j·uerr_j + umax_j·zerr_j + zerr_j·uerr_j)
//
// (expand Z'U'ᵀ − ZUᵀ = Z'ΔUᵀ − ΔZ U'ᵀ + ΔZ ΔUᵀ and bound each term by
// column). Exposed as a function so the sharded router can evaluate the
// identical formula from combined per-shard maxima.
func quantTerm(c float64, zmax, umax, zerr, uerr []float64) float64 {
	if zerr == nil && uerr == nil {
		return 0
	}
	b := 0.0
	for j := range zmax {
		var ze, ue float64
		if zerr != nil {
			ze = zerr[j]
		}
		if uerr != nil {
			ue = uerr[j]
		}
		b += zmax[j]*ue + umax[j]*ze + ze*ue
	}
	return c * b
}

// QuantizationBound returns a rigorous bound on the entrywise error a
// quantized tier adds to every query answer relative to the exact
// float64 factors the index was quantized from: 0 for TierF64. The
// per-column dequantisation errors are measured (not worst-case) at
// quantisation time and persisted with the index, so the bound is valid
// for exactly the factors being served. The +1 self-similarity and the
// ×c scale are applied identically in both tiers and cancel.
func (ix *Index) QuantizationBound() float64 {
	if ix.zqerr == nil && ix.uqerr == nil {
		return 0
	}
	ix.quantOnce.Do(func() {
		zmax, umax := ix.colAbsMaxes()
		ix.quantBound = quantTerm(ix.c, zmax, umax, ix.zqerr, ix.uqerr)
	})
	return ix.quantBound
}

// Quantize returns a new Index whose factors are stored at tier,
// quantized from ix's factors. TierF64 returns ix unchanged. Quantizing
// an already-quantized index is rejected: re-coding codes would compound
// errors invisibly, and the measured error vectors would no longer be
// against exact factors.
func (ix *Index) Quantize(tier Tier) (*Index, error) {
	if tier == TierF64 {
		return ix, nil
	}
	if ix.zt != nil {
		return nil, fmt.Errorf("core: cannot re-quantize a %v-tier index: %w", ix.Tier(), ErrParams)
	}
	quant := dense.QuantizeF32
	if tier == TierI8 {
		quant = dense.QuantizeI8
	}
	zt, zqerr := quant(ix.z)
	ut, uqerr := quant(ix.u)
	return &Index{
		n:       ix.n,
		c:       ix.c,
		rank:    ix.rank,
		iters:   ix.iters,
		sigma:   append([]float64(nil), ix.sigma...),
		precomp: ix.precomp,
		zt:      zt,
		ut:      ut,
		zqerr:   zqerr,
		uqerr:   uqerr,
		walSeq:  ix.walSeq,
	}, nil
}

// mapping owns one memory-mapped snapshot file. munmapFile is idempotent
// through the Once so double-Close is safe. verify, when set, replays
// the deferred factor-block CRC pass of MapIndexLazy.
type mapping struct {
	data   []byte
	verify func() error
	once   sync.Once
	err    error
}

func (m *mapping) close() error {
	if m == nil {
		return nil
	}
	m.once.Do(func() { m.err = munmapFile(m.data) })
	return m.err
}

// Close releases the memory mapping backing a mapped index (MapIndex);
// it is a no-op for decoded indexes and safe to call more than once.
// After Close, the factor matrices of a mapped index must not be touched:
// the serving lifecycle guarantees this by draining in-flight queries
// before releasing a generation (see DESIGN.md).
func (ix *Index) Close() error {
	return ix.mapped.close()
}

// Mapped reports whether the index's factors are zero-copy views over a
// memory-mapped file (and therefore whether Close is load-bearing).
func (ix *Index) Mapped() bool { return ix.mapped != nil }

// Close releases the memory mapping backing a mapped shard (MapShard);
// a no-op for decoded shards, safe to call more than once.
func (sh *IndexShard) Close() error {
	return sh.mapped.close()
}

// Mapped reports whether the shard's factors view a memory mapping.
func (sh *IndexShard) Mapped() bool { return sh.mapped != nil }

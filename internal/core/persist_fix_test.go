package core

// persist_fix_test.go pins the persist-layer bugfix sweep: the 32-bit
// element-count wrap, the unvalidated iters header word, and non-finite
// sigma entries. All three forge headers on otherwise-valid files, so
// the trailing CRC is recomputed — the point is that validation must
// reject them even when every byte is "honest".

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"strings"
	"testing"
)

// repatchV1CRC recomputes the trailing CRC of a forged v1 buffer so the
// corruption under test — not a checksum mismatch — is what the reader
// sees.
func repatchV1CRC(data []byte) {
	sum := crc32.ChecksumIEEE(data[4 : len(data)-4])
	binary.LittleEndian.PutUint32(data[len(data)-4:], sum)
}

func writeV1(t *testing.T) []byte {
	t.Helper()
	ix := buildIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadIndexPlatformElemBound simulates a 32-bit build by shrinking
// maxPlatformElems to MaxInt32 and forging a header whose n*rank passes
// the maxIndexElems (2^34) bound but would wrap int(nNodes*rank)
// negative on a 32-bit platform. Before the fix this sailed through the
// shape check and failed arbitrarily deep in the payload read.
func TestReadIndexPlatformElemBound(t *testing.T) {
	defer func(prev uint64) { maxPlatformElems = prev }(maxPlatformElems)
	maxPlatformElems = math.MaxInt32

	data := writeV1(t)
	le := binary.LittleEndian
	// n = 2^31, rank = 4: product 2^33 ≤ maxIndexElems but > MaxInt32.
	le.PutUint64(data[8:], 1<<31)
	le.PutUint64(data[16:], 4)
	repatchV1CRC(data)
	_, err := ReadIndex(bytes.NewReader(data))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want wrapped ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "platform int") {
		t.Fatalf("err = %v, want the platform-int bound (not a downstream read failure)", err)
	}
}

// TestReadShardPlatformElemBound is the shard-format twin: both the
// owned-row slice and the global node count must clear the platform int.
func TestReadShardPlatformElemBound(t *testing.T) {
	defer func(prev uint64) { maxPlatformElems = prev }(maxPlatformElems)
	maxPlatformElems = math.MaxInt32

	ix := buildIndex(t)
	sh, err := ix.Shard(0, ix.N())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sh.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	le := binary.LittleEndian
	// Shard header: magic 4, version 4, then n, lo, hi, rank, c.
	forge := func(n, lo, hi, rank uint64) []byte {
		data := append([]byte(nil), buf.Bytes()...)
		le.PutUint64(data[8:], n)
		le.PutUint64(data[16:], lo)
		le.PutUint64(data[24:], hi)
		le.PutUint64(data[32:], rank)
		repatchV1CRC(data)
		return data
	}
	cases := map[string][]byte{
		"owned rows wrap": forge(1<<31, 0, 1<<31, 4),
		"global n wraps":  forge(1<<32, 0, 2, 4),
	}
	for name, data := range cases {
		_, err := ReadShard(bytes.NewReader(data))
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want wrapped ErrCorrupt", name, err)
		} else if !strings.Contains(err.Error(), "platform int") {
			t.Errorf("%s: err = %v, want the platform-int bound", name, err)
		}
	}
}

// TestReadIndexForgedIters pins the iters validation: a 2^63 header word
// used to convert silently to a negative int and flow into Iterations().
func TestReadIndexForgedIters(t *testing.T) {
	data := writeV1(t)
	binary.LittleEndian.PutUint64(data[32:], 1<<63)
	repatchV1CRC(data)
	_, err := ReadIndex(bytes.NewReader(data))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want wrapped ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "iteration") {
		t.Fatalf("err = %v, want the iters validation", err)
	}
}

// TestReadIndexNonFiniteSigma pins the sigma validation: NaN and ±Inf
// entries are honest bytes (the CRC passes) but poison every truncation
// bound computed from them, so they must be rejected as corruption. A
// negative singular value is equally impossible and equally rejected.
func TestReadIndexNonFiniteSigma(t *testing.T) {
	for name, bits := range map[string]uint64{
		"NaN":      math.Float64bits(math.NaN()),
		"+Inf":     math.Float64bits(math.Inf(1)),
		"-Inf":     math.Float64bits(math.Inf(-1)),
		"negative": math.Float64bits(-1.0),
	} {
		data := writeV1(t)
		// sigma[0] sits right after the header: magic 4 + version 4 + 4x8.
		binary.LittleEndian.PutUint64(data[40:], bits)
		repatchV1CRC(data)
		_, err := ReadIndex(bytes.NewReader(data))
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s sigma: err = %v, want wrapped ErrCorrupt", name, err)
		} else if !strings.Contains(err.Error(), "sigma") {
			t.Errorf("%s sigma: err = %v, want the sigma validation", name, err)
		}
	}
}

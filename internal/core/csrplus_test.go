package core

import (
	"errors"
	"math"
	"testing"

	"csrplus/internal/dense"
	"csrplus/internal/graph"
	"csrplus/internal/memtrack"
	"csrplus/internal/sparse"
	"csrplus/internal/svd"
)

// paperGraph builds the 6-node graph of Figure 1 / Example 3.6
// (nodes a..f = 0..5).
func paperGraph(t testing.TB) *graph.Graph {
	t.Helper()
	edges := [][2]int{
		{3, 0},
		{0, 1}, {2, 1}, {4, 1},
		{3, 2},
		{0, 3}, {4, 3}, {5, 3},
		{2, 4}, {5, 4},
		{3, 5},
	}
	coo := sparse.NewCOO(6, 6)
	for _, e := range edges {
		if err := coo.Add(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	return graph.New(coo)
}

// exactCoSimRank iterates S = c QᵀS Q + I densely to convergence — the
// ground-truth solution of Eq. (1) for small graphs.
func exactCoSimRank(t testing.TB, g *graph.Graph, c float64, iters int) *dense.Mat {
	t.Helper()
	q, err := g.Transition()
	if err != nil {
		t.Fatal(err)
	}
	qd := q.ToDense()
	s := dense.Eye(g.N())
	for k := 0; k < iters; k++ {
		s = dense.Mul(dense.Mul(qd.T(), s), qd).Scale(c).AddEye(1)
	}
	return s
}

func TestSquaringIterations(t *testing.T) {
	// Paper: eps=1e-5, c=0.6 → log_c eps ≈ 22.5, log2 ≈ 4.49 → 5.
	if got := SquaringIterations(0.6, 1e-5); got != 5 {
		t.Fatalf("SquaringIterations(0.6, 1e-5) = %d, want 5", got)
	}
	// 2^k must cover log_c(eps) iterations of the plain recurrence.
	for _, c := range []float64{0.4, 0.6, 0.8} {
		for _, eps := range []float64{1e-3, 1e-5, 1e-8} {
			k := SquaringIterations(c, eps)
			need := math.Log(eps) / math.Log(c)
			if float64(int64(1)<<uint(k)) < need {
				t.Fatalf("c=%v eps=%v: 2^%d < %v", c, eps, k, need)
			}
		}
	}
	if got := SquaringIterations(0.6, 0.9); got != 0 {
		t.Fatalf("loose eps should clamp to 0, got %d", got)
	}
}

func TestExample36MatchesPaper(t *testing.T) {
	// The worked example: r=3, c=0.6, Q={b, d}.
	g := paperGraph(t)
	ix, err := Precompute(g, Options{Damping: 0.6, Rank: 3, Eps: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	// Singular values from the example: 1.73, 0.87, 0.54.
	wantSigma := []float64{1.73, 0.87, 0.54}
	for i, s := range ix.SingularValues() {
		if math.Abs(s-wantSigma[i]) > 0.01 {
			t.Fatalf("sigma = %v, want ≈ %v", ix.SingularValues(), wantSigma)
		}
	}
	s, err := ix.Query([]int{1, 3}, nil) // b, d
	if err != nil {
		t.Fatal(err)
	}
	wantB := []float64{0.16, 1.49, 0.16, 0.49, 0.48, 0.16}
	wantD := []float64{0.16, 0.49, 0.16, 1.49, 0.48, 0.16}
	for i := 0; i < 6; i++ {
		if math.Abs(s.At(i, 0)-wantB[i]) > 0.02 {
			t.Fatalf("[S]_{%d,b} = %v, want %v", i, s.At(i, 0), wantB[i])
		}
		if math.Abs(s.At(i, 1)-wantD[i]) > 0.02 {
			t.Fatalf("[S]_{%d,d} = %v, want %v", i, s.At(i, 1), wantD[i])
		}
	}
}

func TestFullRankMatchesExact(t *testing.T) {
	// With r = n the SVD is exact, so CSR+ must reproduce the true
	// CoSimRank matrix to the eps of the subspace solve.
	g := paperGraph(t)
	n := g.N()
	ix, err := Precompute(g, Options{Damping: 0.6, Rank: n, Eps: 1e-10,
		SVD: svd.Options{Oversample: 6, PowerIters: 8}})
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	got, err := ix.Query(all, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := exactCoSimRank(t, g, 0.6, 60)
	if !got.Equal(want, 1e-6) {
		t.Fatalf("full-rank CSR+ deviates from exact by %g",
			got.Sub(want).MaxAbs())
	}
}

func TestFullRankMatchesExactRandomGraphs(t *testing.T) {
	// Same lossless check across random ER graphs and damping factors.
	for _, seed := range []int64{5, 6, 7} {
		g, err := graph.ErdosRenyi(25, 120, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []float64{0.4, 0.8} {
			ix, err := Precompute(g, Options{Damping: c, Rank: 25, Eps: 1e-12,
				SVD: svd.Options{Oversample: 10, PowerIters: 8}})
			if err != nil {
				t.Fatal(err)
			}
			all := make([]int, 25)
			for i := range all {
				all[i] = i
			}
			got, err := ix.Query(all, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := exactCoSimRank(t, g, c, 120)
			if dev := got.Sub(want).MaxAbs(); dev > 1e-5 {
				t.Fatalf("seed %d c=%v: deviation %g", seed, c, dev)
			}
		}
	}
}

func TestLowRankApproximationImprovesWithRank(t *testing.T) {
	g, err := graph.ErdosRenyi(60, 300, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := exactCoSimRank(t, g, 0.6, 80)
	queries := []int{0, 7, 33}
	prevErr := math.Inf(1)
	for _, r := range []int{5, 20, 60} {
		ix, err := Precompute(g, Options{Rank: r, SVD: svd.Options{PowerIters: 6, Oversample: 10}})
		if err != nil {
			t.Fatal(err)
		}
		s, err := ix.Query(queries, nil)
		if err != nil {
			t.Fatal(err)
		}
		// AvgDiff over the queried block, as in the paper's Table 3.
		sum := 0.0
		for i := 0; i < g.N(); i++ {
			for j, q := range queries {
				sum += math.Abs(s.At(i, j) - want.At(i, q))
			}
		}
		avg := sum / float64(g.N()*len(queries))
		if avg > prevErr*1.5 {
			t.Fatalf("rank %d: AvgDiff %g worse than lower rank (%g)", r, avg, prevErr)
		}
		prevErr = avg
	}
	if prevErr > 1e-5 {
		t.Fatalf("full-rank AvgDiff %g not ≈ 0", prevErr)
	}
}

func TestOptionDefaults(t *testing.T) {
	g := paperGraph(t)
	ix, err := Precompute(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Damping() != DefaultDamping || ix.Rank() != DefaultRank {
		t.Fatalf("defaults not applied: c=%v r=%d", ix.Damping(), ix.Rank())
	}
	if ix.Iterations() != SquaringIterations(DefaultDamping, DefaultEps) {
		t.Fatalf("iterations = %d", ix.Iterations())
	}
	if ix.N() != 6 {
		t.Fatalf("N = %d", ix.N())
	}
	if ix.PrecomputeTime() <= 0 {
		t.Fatal("PrecomputeTime not recorded")
	}
}

func TestParameterValidation(t *testing.T) {
	g := paperGraph(t)
	cases := []Options{
		{Damping: 1.0},
		{Damping: -0.2},
		{Rank: -1},
		{Rank: 7}, // > n
		{Eps: 2},
	}
	for _, o := range cases {
		if _, err := Precompute(g, o); !errors.Is(err, ErrParams) {
			t.Fatalf("opts %+v: err = %v, want ErrParams", o, err)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	g := paperGraph(t)
	ix, err := Precompute(g, Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Query(nil, nil); !errors.Is(err, ErrParams) {
		t.Fatalf("empty query: err = %v", err)
	}
	if _, err := ix.Query([]int{6}, nil); !errors.Is(err, ErrQuery) {
		t.Fatalf("oob query: err = %v", err)
	}
	if _, err := ix.Query([]int{-1}, nil); !errors.Is(err, ErrQuery) {
		t.Fatalf("negative query: err = %v", err)
	}
}

func TestQueryOne(t *testing.T) {
	g := paperGraph(t)
	ix, err := Precompute(g, Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	v, err := ix.QueryOne(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ix.Query([]int{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if v[i] != s.At(i, 0) {
			t.Fatal("QueryOne disagrees with Query")
		}
	}
}

func TestDuplicateQueriesAllowed(t *testing.T) {
	g := paperGraph(t)
	ix, err := Precompute(g, Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ix.Query([]int{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if s.At(i, 0) != s.At(i, 1) {
			t.Fatal("duplicate query columns differ")
		}
	}
}

func TestMemoryAccounting(t *testing.T) {
	g := paperGraph(t)
	tr := memtrack.New()
	ix, err := Precompute(g, Options{Rank: 3, Tracker: tr})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Peak() == 0 {
		t.Fatal("tracker recorded nothing")
	}
	pre := tr.PeakByPrefix("precompute/")
	if pre <= 0 {
		t.Fatalf("precompute net bytes = %d", pre)
	}
	if _, err := ix.Query([]int{0, 1}, tr); err != nil {
		t.Fatal(err)
	}
	if q := tr.PeakByPrefix("query/"); q <= 0 {
		t.Fatalf("query net bytes = %d", q)
	}
	// Index bytes are O(rn): two 6x3 matrices + 3 sigmas.
	want := int64(6*3*8*2 + 3*8)
	if ix.Bytes() != want {
		t.Fatalf("Index.Bytes = %d, want %d", ix.Bytes(), want)
	}
}

func TestDivergenceGuard(t *testing.T) {
	// A handcrafted expansive "H": call SolveSubspace directly with factors
	// whose compressed operator has spectral radius well above 1/√c.
	u := dense.Eye(2)
	v := dense.Eye(2)
	s := []float64{40, 40} // H = Σ → c·‖H‖² = 960 ≫ 1
	_, _, err := SolveSubspace(u, s, v, 0.6, 1e-5)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
}

func TestPrecomputeDeterminism(t *testing.T) {
	g := paperGraph(t)
	ix1, err := Precompute(g, Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := Precompute(g, Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := ix1.Query([]int{1, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ix2.Query([]int{1, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Equal(s2, 0) {
		t.Fatal("two identical precomputes give different answers")
	}
}

func TestSelfSimilarityDominatesRow(t *testing.T) {
	// CoSimRank's "+I" base case: [S]_{a,a} exceeds [S]_{a,x} for x ≠ a.
	// Verify on the exact solution and on CSR+ at full rank.
	g := paperGraph(t)
	want := exactCoSimRank(t, g, 0.6, 60)
	for a := 0; a < 6; a++ {
		for x := 0; x < 6; x++ {
			if x != a && want.At(a, a) < want.At(a, x) {
				t.Fatalf("exact: S[%d,%d]=%v < S[%d,%d]=%v", a, a, want.At(a, a), a, x, want.At(a, x))
			}
		}
	}
}

func TestQueryPairMatchesColumn(t *testing.T) {
	g := paperGraph(t)
	ix, err := Precompute(g, Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	col, err := ix.QueryOne(3)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 6; a++ {
		got, err := ix.QueryPair(a, 3)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-col[a]) > 1e-12 {
			t.Fatalf("QueryPair(%d, 3) = %v, column says %v", a, got, col[a])
		}
	}
	if _, err := ix.QueryPair(-1, 0); !errors.Is(err, ErrQuery) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ix.QueryPair(0, 6); !errors.Is(err, ErrQuery) {
		t.Fatalf("err = %v", err)
	}
}

// TestQueryIntoMatchesQueryAndReusesScratch pins the serving hot path's
// contract: QueryInto returns the same bits as Query, reuses an
// adequately-sized scratch matrix instead of allocating, and tolerates
// nil / undersized scratch.
func TestQueryIntoMatchesQueryAndReusesScratch(t *testing.T) {
	g := paperGraph(t)
	ix, err := Precompute(g, Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ix.Query([]int{1, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}

	scratch := dense.NewMat(g.N(), 2)
	got, err := ix.QueryInto([]int{1, 4}, scratch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != scratch {
		t.Fatal("QueryInto did not reuse adequately-sized scratch")
	}
	if !got.Equal(want, 0) {
		t.Fatal("QueryInto(scratch) differs from Query")
	}

	if got, err = ix.QueryInto([]int{1, 4}, nil, nil); err != nil || !got.Equal(want, 0) {
		t.Fatalf("QueryInto(nil scratch) differs from Query (err=%v)", err)
	}
	small := dense.NewMat(1, 1)
	if got, err = ix.QueryInto([]int{1, 4}, small, nil); err != nil || !got.Equal(want, 0) {
		t.Fatalf("QueryInto(undersized scratch) differs from Query (err=%v)", err)
	}

	// Validation errors must not clobber the scratch contract.
	if _, err := ix.QueryInto([]int{99}, scratch, nil); err == nil {
		t.Fatal("out-of-range query accepted")
	}
}

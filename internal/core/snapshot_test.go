package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotNameRoundTrip(t *testing.T) {
	for _, gen := range []uint64{1, 7, 99999999, 1 << 40} {
		name := SnapshotName(gen)
		got, ok := ParseSnapshotName(name)
		if !ok || got != gen {
			t.Fatalf("ParseSnapshotName(%q) = %d, %v", name, got, ok)
		}
	}
	for _, bad := range []string{
		"CURRENT", "index-.csrx", "index-12.bin", "idx-12.csrx",
		"index-12.csrx.tmp", ".current-123", "index--1.csrx", "index-1x.csrx",
	} {
		if _, ok := ParseSnapshotName(bad); ok {
			t.Fatalf("ParseSnapshotName(%q) accepted", bad)
		}
	}
}

func TestWriteSnapshotLifecycle(t *testing.T) {
	ix := buildIndex(t)
	dir := filepath.Join(t.TempDir(), "snaps") // exercise MkdirAll

	gen1, path1, err := WriteSnapshot(dir, ix)
	if err != nil {
		t.Fatal(err)
	}
	if gen1 != 1 || filepath.Base(path1) != SnapshotName(1) {
		t.Fatalf("first snapshot gen=%d path=%s", gen1, path1)
	}
	p, g, err := CurrentSnapshot(dir)
	if err != nil || g != 1 || p != path1 {
		t.Fatalf("CurrentSnapshot = %s, %d, %v", p, g, err)
	}
	if _, err := LoadIndex(p); err != nil {
		t.Fatalf("published snapshot unreadable: %v", err)
	}

	gen2, path2, err := WriteSnapshot(dir, ix)
	if err != nil {
		t.Fatal(err)
	}
	if gen2 != 2 {
		t.Fatalf("second snapshot gen=%d", gen2)
	}
	if p, g, _ := CurrentSnapshot(dir); g != 2 || p != path2 {
		t.Fatalf("CURRENT not advanced: %s, %d", p, g)
	}
	// The first generation is still on disk and loadable (rollback path).
	if _, err := LoadIndex(path1); err != nil {
		t.Fatalf("old generation gone: %v", err)
	}
	snaps, err := ListSnapshots(dir)
	if err != nil || len(snaps) != 2 || snaps[0].Gen != 1 || snaps[1].Gen != 2 {
		t.Fatalf("ListSnapshots = %v, %v", snaps, err)
	}
}

func TestSetCurrentRollback(t *testing.T) {
	ix := buildIndex(t)
	dir := t.TempDir()
	if _, _, err := WriteSnapshot(dir, ix); err != nil {
		t.Fatal(err)
	}
	if _, _, err := WriteSnapshot(dir, ix); err != nil {
		t.Fatal(err)
	}
	// Roll back to generation 1 by repointing CURRENT.
	if err := SetCurrent(dir, 1); err != nil {
		t.Fatal(err)
	}
	if _, g, _ := CurrentSnapshot(dir); g != 1 {
		t.Fatalf("rollback did not take: generation %d", g)
	}
	// Pointing at a generation that does not exist must fail before
	// publishing anything.
	if err := SetCurrent(dir, 99); err == nil {
		t.Fatal("SetCurrent accepted a missing generation")
	}
	if _, g, _ := CurrentSnapshot(dir); g != 1 {
		t.Fatal("failed SetCurrent clobbered CURRENT")
	}
}

func TestCurrentSnapshotFallbacks(t *testing.T) {
	ix := buildIndex(t)
	dir := t.TempDir()
	// Empty directory: ErrNoSnapshot.
	if _, _, err := CurrentSnapshot(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
	// Bare snapshot files without CURRENT (hand-provisioned directory):
	// the highest generation wins.
	for _, gen := range []uint64{3, 1, 2} {
		if err := SaveIndex(ix, filepath.Join(dir, SnapshotName(gen))); err != nil {
			t.Fatal(err)
		}
	}
	p, g, err := CurrentSnapshot(dir)
	if err != nil || g != 3 || filepath.Base(p) != SnapshotName(3) {
		t.Fatalf("fallback = %s, %d, %v", p, g, err)
	}
	// A CURRENT naming garbage is an error, not a silent fallback — the
	// operator published something broken and should hear about it.
	if err := os.WriteFile(filepath.Join(dir, CurrentFile), []byte("junk\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := CurrentSnapshot(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("garbage CURRENT: err = %v, want ErrNoSnapshot", err)
	}
	// A CURRENT naming a missing file is an error too.
	if err := os.WriteFile(filepath.Join(dir, CurrentFile), []byte(SnapshotName(9)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := CurrentSnapshot(dir); err == nil {
		t.Fatal("CURRENT naming a missing snapshot resolved")
	}
}

func TestPruneSnapshots(t *testing.T) {
	ix := buildIndex(t)
	dir := t.TempDir()
	for i := 0; i < 5; i++ {
		if _, _, err := WriteSnapshot(dir, ix); err != nil {
			t.Fatal(err)
		}
	}
	// Roll CURRENT back to 2, then prune to 2 newest: generations 4 and 5
	// survive by recency, 2 survives because CURRENT points at it.
	if err := SetCurrent(dir, 2); err != nil {
		t.Fatal(err)
	}
	removed, err := PruneSnapshots(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 { // generations 1 and 3
		t.Fatalf("removed %d, want 2", removed)
	}
	snaps, _ := ListSnapshots(dir)
	var gens []uint64
	for _, s := range snaps {
		gens = append(gens, s.Gen)
	}
	if len(gens) != 3 || gens[0] != 2 || gens[1] != 4 || gens[2] != 5 {
		t.Fatalf("surviving generations %v, want [2 4 5]", gens)
	}
	if _, g, err := CurrentSnapshot(dir); err != nil || g != 2 {
		t.Fatalf("CURRENT broken after prune: %d, %v", g, err)
	}
	// Pruning below 1 keeps at least the newest.
	if _, err := PruneSnapshots(dir, 0); err != nil {
		t.Fatal(err)
	}
	if snaps, _ = ListSnapshots(dir); len(snaps) == 0 {
		t.Fatal("prune emptied the directory")
	}
}

// TestSaveIndexLeavesNoTempDebris verifies the crash-safety scaffolding
// cleans up after itself on the success path.
func TestSaveIndexLeavesNoTempDebris(t *testing.T) {
	ix := buildIndex(t)
	dir := t.TempDir()
	if err := SaveIndex(ix, filepath.Join(dir, "a.csrx")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "a.csrx" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory contents %v, want [a.csrx]", names)
	}
}

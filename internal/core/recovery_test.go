package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// corrupt truncates or scribbles on a published file in place, simulating
// the states a crash mid-publish (or bit rot) leaves behind.
func truncateFile(t *testing.T, path string, keep int64) {
	t.Helper()
	if err := os.Truncate(path, keep); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverSnapshotMatrix is the crash-recovery matrix: every row is a
// damaged snapshot directory and the recovery the serving layer must make
// from it. The invariant throughout: RecoverSnapshot returns the newest
// generation that still deserialises, flags when that is not the one
// CURRENT advertises, and fails with a clear ErrNoSnapshot only when
// nothing on disk can serve.
func TestRecoverSnapshotMatrix(t *testing.T) {
	ix := buildIndex(t)
	setup := func(t *testing.T, gens int) string {
		dir := t.TempDir()
		for i := 0; i < gens; i++ {
			if _, _, err := WriteSnapshot(dir, ix); err != nil {
				t.Fatal(err)
			}
		}
		return dir
	}

	t.Run("healthy directory serves CURRENT", func(t *testing.T) {
		dir := setup(t, 2)
		got, snap, recovered, err := RecoverSnapshot(dir)
		if err != nil || recovered {
			t.Fatalf("recover = gen %d, recovered=%v, err=%v", snap.Gen, recovered, err)
		}
		if snap.Gen != 2 || got.N() != ix.N() {
			t.Fatalf("served gen %d n=%d", snap.Gen, got.N())
		}
	})

	t.Run("CURRENT names a missing file", func(t *testing.T) {
		dir := setup(t, 2)
		if err := os.WriteFile(filepath.Join(dir, CurrentFile), []byte(SnapshotName(9)+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, snap, recovered, err := RecoverSnapshot(dir)
		if err != nil || !recovered || snap.Gen != 2 {
			t.Fatalf("recover = gen %d, recovered=%v, err=%v; want fallback to gen 2", snap.Gen, recovered, err)
		}
	})

	t.Run("CURRENT names a truncated file", func(t *testing.T) {
		dir := setup(t, 2)
		truncateFile(t, filepath.Join(dir, SnapshotName(2)), 32) // header torn off mid-write
		_, snap, recovered, err := RecoverSnapshot(dir)
		if err != nil || !recovered || snap.Gen != 1 {
			t.Fatalf("recover = gen %d, recovered=%v, err=%v; want fallback to gen 1", snap.Gen, recovered, err)
		}
	})

	t.Run("torn CURRENT write", func(t *testing.T) {
		dir := setup(t, 3)
		// A torn pointer write: only a prefix of the snapshot name made it.
		if err := os.WriteFile(filepath.Join(dir, CurrentFile), []byte("index-000"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, snap, recovered, err := RecoverSnapshot(dir)
		if err != nil || !recovered || snap.Gen != 3 {
			t.Fatalf("recover = gen %d, recovered=%v, err=%v; want newest valid gen 3", snap.Gen, recovered, err)
		}
	})

	t.Run("newest two corrupt, third serves", func(t *testing.T) {
		dir := setup(t, 3)
		truncateFile(t, filepath.Join(dir, SnapshotName(3)), 100)
		truncateFile(t, filepath.Join(dir, SnapshotName(2)), 0)
		_, snap, recovered, err := RecoverSnapshot(dir)
		if err != nil || !recovered || snap.Gen != 1 {
			t.Fatalf("recover = gen %d, recovered=%v, err=%v; want gen 1", snap.Gen, recovered, err)
		}
	})

	t.Run("no CURRENT at all falls back to newest", func(t *testing.T) {
		dir := setup(t, 2)
		if err := os.Remove(filepath.Join(dir, CurrentFile)); err != nil {
			t.Fatal(err)
		}
		// CurrentSnapshot already handles this case; recovered stays false
		// because the served snapshot is the one the directory advertises.
		_, snap, recovered, err := RecoverSnapshot(dir)
		if err != nil || recovered || snap.Gen != 2 {
			t.Fatalf("recover = gen %d, recovered=%v, err=%v", snap.Gen, recovered, err)
		}
	})

	t.Run("every generation corrupt is a clear error", func(t *testing.T) {
		dir := setup(t, 2)
		truncateFile(t, filepath.Join(dir, SnapshotName(1)), 16)
		truncateFile(t, filepath.Join(dir, SnapshotName(2)), 16)
		_, _, _, err := RecoverSnapshot(dir)
		if !errors.Is(err, ErrNoSnapshot) {
			t.Fatalf("err = %v, want ErrNoSnapshot", err)
		}
	})

	t.Run("empty directory is a clear error", func(t *testing.T) {
		_, _, _, err := RecoverSnapshot(t.TempDir())
		if !errors.Is(err, ErrNoSnapshot) {
			t.Fatalf("err = %v, want ErrNoSnapshot", err)
		}
	})
}

package core

import (
	"errors"
	"math"
	"testing"

	"csrplus/internal/dense"
	"csrplus/internal/graph"
	"csrplus/internal/sparse"
)

// fullRankFixture builds a graph and a FULL-rank index over it. At full
// rank the SVD identities (QV = UΣ, VᵀV = I) hold to rounding, which
// makes the Galerkin projection exact — the regime where Dynamic's
// refresh and drift claims can be checked against ground truth.
func fullRankFixture(t *testing.T, n, m int, seed int64) (*graph.Graph, *Index) {
	t.Helper()
	g, err := graph.ErdosRenyi(n, int64(m), seed)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Precompute(g, Options{Rank: n})
	if err != nil {
		t.Fatal(err)
	}
	return g, ix
}

func maxAbsDiff(a, b *dense.Mat) float64 {
	var max float64
	for i, v := range a.Data {
		if d := math.Abs(v - b.Data[i]); d > max {
			max = d
		}
	}
	return max
}

// scoresFrom evaluates S = I + c·U·A·Uᵀ column by column for the
// refreshed factor Z' = U·A, i.e. S = I + c·Z'·Uᵀ.
func scoresFrom(ix *Index, z *dense.Mat) *dense.Mat {
	return dense.MulT(z, ix.u).Scale(ix.c).AddEye(1)
}

func TestDynamicBootRefreshReproducesServedFactors(t *testing.T) {
	_, ix := fullRankFixture(t, 28, 140, 7)
	g2, err := graph.ErdosRenyi(28, 140, 7)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g2, ix)
	if err != nil {
		t.Fatal(err)
	}
	z, err := d.Refresh(0)
	if err != nil {
		t.Fatal(err)
	}
	if diff := maxAbsDiff(z, ix.z); diff > 1e-8 {
		t.Fatalf("zero-edge refresh drifts from the served Z by %g", diff)
	}
	if d.Drift() != 0 || d.Edges() != 0 {
		t.Fatalf("fresh dynamic state carries drift %g over %d edges", d.Drift(), d.Edges())
	}
}

func TestDynamicRefreshTracksLiveGraphAtFullRank(t *testing.T) {
	g, ix := fullRankFixture(t, 24, 110, 11)
	d, err := NewDynamic(g, ix)
	if err != nil {
		t.Fatal(err)
	}
	// Insert edges the graph does not have.
	added := 0
	for i := 0; added < 6; i++ {
		u, v := (i*5)%24, (i*7+3)%24
		if u == v || g.HasEdge(u, v) {
			continue
		}
		applied, _, err := d.ApplyEdge(u, v, 1, true)
		if err != nil {
			t.Fatal(err)
		}
		if !applied {
			t.Fatalf("edge (%d, %d) not applied", u, v)
		}
		added++
	}
	live, err := d.MaterializeGraph()
	if err != nil {
		t.Fatal(err)
	}
	if live.M() != g.M()+6 {
		t.Fatalf("live graph has %d edges, want %d", live.M(), g.M()+6)
	}
	ixLive, err := Precompute(live, Options{Rank: 24})
	if err != nil {
		t.Fatal(err)
	}
	z, err := d.Refresh(0)
	if err != nil {
		t.Fatal(err)
	}
	got := scoresFrom(ix, z)
	want := scoresFrom(ixLive, ixLive.z)
	if diff := maxAbsDiff(got, want); diff > 1e-6 {
		t.Fatalf("full-rank refresh off the live graph's exact scores by %g", diff)
	}
}

// TestDynamicGalerkinStateMatchesRebuild checks the incremental W = QU
// maintenance against a from-scratch rebuild over the materialized
// graph after a burst of inserts (including weighted accumulation).
func TestDynamicGalerkinStateMatchesRebuild(t *testing.T) {
	g, ix := fullRankFixture(t, 30, 160, 3)
	d, err := NewDynamic(g, ix)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, _, err := d.ApplyEdge((i*11)%30, (i*13+1)%30, 1, true); err != nil {
			t.Fatal(err)
		}
	}
	live, err := d.MaterializeGraph()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewDynamic(live, ix)
	if err != nil {
		t.Fatal(err)
	}
	if diff := maxAbsDiff(d.w, fresh.w); diff > 1e-12 {
		t.Fatalf("incrementally maintained W off the rebuilt one by %g", diff)
	}
}

// TestDynamicDriftBoundHolds is the honesty check behind the tagged
// error_bound: with exact (full-rank) factors, the entrywise difference
// between the live graph's exact scores and the stale factors' scores
// must stay within the accumulated drift bound.
func TestDynamicDriftBoundHolds(t *testing.T) {
	g, ix := fullRankFixture(t, 32, 170, 19)
	d, err := NewDynamic(g, ix)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := d.ApplyEdge((i*3+2)%32, (i*17+5)%32, 1, true); err != nil {
			t.Fatal(err)
		}
	}
	if d.Drift() <= 0 || math.IsInf(d.Drift(), 0) || math.IsNaN(d.Drift()) {
		t.Fatalf("drift bound %g after inserts", d.Drift())
	}
	live, err := d.MaterializeGraph()
	if err != nil {
		t.Fatal(err)
	}
	ixLive, err := Precompute(live, Options{Rank: 32})
	if err != nil {
		t.Fatal(err)
	}
	stale := scoresFrom(ix, ix.z)
	exact := scoresFrom(ixLive, ixLive.z)
	// Both score evaluations carry the squaring series' own ~eps error;
	// leave it a little slack on top of the drift bound.
	if diff := maxAbsDiff(stale, exact); diff > d.Drift()+1e-4 {
		t.Fatalf("stale factors off the live exact scores by %g, drift bound promises %g", diff, d.Drift())
	}
	// The bound must also be additive: re-applying the same stream
	// yields the same total.
	d2, err := NewDynamic(g, ix)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 0; i < 10; i++ {
		_, dd, err := d2.ApplyEdge((i*3+2)%32, (i*17+5)%32, 1, true)
		if err != nil {
			t.Fatal(err)
		}
		sum += dd
	}
	if math.Abs(sum-d.Drift()) > 1e-12 {
		t.Fatalf("per-edge contributions sum to %g, total drift %g", sum, d.Drift())
	}
}

func TestDynamicUnweightedDuplicateIsNoOp(t *testing.T) {
	g, ix := fullRankFixture(t, 20, 90, 5)
	d, err := NewDynamic(g, ix)
	if err != nil {
		t.Fatal(err)
	}
	// Find an existing edge.
	adj := g.Adj()
	src, dst := -1, -1
	for u := 0; u < 20 && src < 0; u++ {
		if adj.RowPtr[u] < adj.RowPtr[u+1] {
			src, dst = u, int(adj.ColIdx[adj.RowPtr[u]])
		}
	}
	applied, dd, err := d.ApplyEdge(src, dst, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if applied || dd != 0 || d.Drift() != 0 || d.M() != g.M() {
		t.Fatalf("duplicate unweighted edge was not a no-op: applied=%v drift=%g m=%d", applied, dd, d.M())
	}
	live, err := d.MaterializeGraph()
	if err != nil {
		t.Fatal(err)
	}
	la, ga := live.Adj(), g.Adj()
	if len(la.ColIdx) != len(ga.ColIdx) {
		t.Fatalf("materialized graph has %d entries, want %d", len(la.ColIdx), len(ga.ColIdx))
	}
	for i := range ga.ColIdx {
		if la.ColIdx[i] != ga.ColIdx[i] || la.Val[i] != ga.Val[i] {
			t.Fatalf("materialized adjacency differs at entry %d", i)
		}
	}
}

// TestDynamicMaterializeOrderIndependent: two different application
// orders of the same edge set materialize bitwise-identical graphs —
// the property the recovery-ordering guarantee rests on.
func TestDynamicMaterializeOrderIndependent(t *testing.T) {
	g, ix := fullRankFixture(t, 22, 100, 13)
	edges := [][2]int{{1, 9}, {20, 2}, {7, 7}, {3, 15}, {18, 0}, {5, 21}}
	d1, err := NewDynamic(g, ix)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDynamic(g, ix)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if _, _, err := d1.ApplyEdge(e[0], e[1], 1, true); err != nil {
			t.Fatal(err)
		}
	}
	for i := len(edges) - 1; i >= 0; i-- {
		if _, _, err := d2.ApplyEdge(edges[i][0], edges[i][1], 1, true); err != nil {
			t.Fatal(err)
		}
	}
	g1, err := d1.MaterializeGraph()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := d2.MaterializeGraph()
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := g1.Adj(), g2.Adj()
	if len(a1.ColIdx) != len(a2.ColIdx) {
		t.Fatalf("entry counts differ: %d vs %d", len(a1.ColIdx), len(a2.ColIdx))
	}
	for i := range a1.ColIdx {
		if a1.ColIdx[i] != a2.ColIdx[i] || math.Float64bits(a1.Val[i]) != math.Float64bits(a2.Val[i]) {
			t.Fatalf("adjacencies differ at entry %d", i)
		}
	}
	for i := range a1.RowPtr {
		if a1.RowPtr[i] != a2.RowPtr[i] {
			t.Fatalf("row pointers differ at %d", i)
		}
	}
}

func TestDynamicWeightedAccumulatesAndValidates(t *testing.T) {
	coo := sparse.NewCOO(6, 6)
	for _, e := range [][3]float64{{0, 1, 2}, {2, 1, 1}, {3, 4, 5}, {1, 0, 1}} {
		if err := coo.Add(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	g, err := graph.NewWeighted(coo)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Precompute(g, Options{Rank: 6})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g, ix)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate weighted edge accumulates (2 + 3 = 5 of a total 6).
	applied, dd, err := d.ApplyEdge(0, 1, 3, true)
	if err != nil || !applied || dd <= 0 {
		t.Fatalf("weighted duplicate: applied=%v drift=%g err=%v", applied, dd, err)
	}
	live, err := d.MaterializeGraph()
	if err != nil {
		t.Fatal(err)
	}
	if got := live.Adj().At(0, 1); got != 5 {
		t.Fatalf("accumulated weight %g, want 5", got)
	}
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, _, err := d.ApplyEdge(2, 3, w, true); !errors.Is(err, ErrParams) {
			t.Fatalf("weight %v accepted: %v", w, err)
		}
	}
	if _, _, err := d.ApplyEdge(-1, 2, 1, true); !errors.Is(err, ErrQuery) {
		t.Fatalf("negative src accepted: %v", err)
	}
	if _, _, err := d.ApplyEdge(0, 6, 1, true); !errors.Is(err, ErrQuery) {
		t.Fatalf("out-of-range dst accepted: %v", err)
	}
}

func TestDynamicStructureOnlyReplayChargesNoDrift(t *testing.T) {
	g, ix := fullRankFixture(t, 20, 80, 23)
	d, err := NewDynamic(g, ix)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.ApplyEdge(2, 17, 1, false); err != nil {
		t.Fatal(err)
	}
	if d.Drift() != 0 || d.Edges() != 0 {
		t.Fatalf("structure-only apply charged drift %g / %d edges", d.Drift(), d.Edges())
	}
	if _, _, err := d.ApplyEdge(3, 18, 1, true); err != nil {
		t.Fatal(err)
	}
	if d.Drift() <= 0 || d.Edges() != 1 {
		t.Fatalf("drift-counted apply recorded drift %g / %d edges", d.Drift(), d.Edges())
	}
}

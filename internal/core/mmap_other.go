//go:build !linux && !darwin

package core

// Platforms without a wired-up mmap fall back to the buffered decode
// path: LoadIndex sees errMapUnsupported and reads the file instead.

import "os"

const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errMapUnsupported
}

func munmapFile(b []byte) error { return nil }

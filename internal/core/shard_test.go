package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"csrplus/internal/dense"
	"csrplus/internal/graph"
)

// bigIndex builds an index over a graph large enough that shard
// boundaries cut through real structure.
func bigIndex(t *testing.T, n int, rank int) *Index {
	t.Helper()
	g, err := graph.ErdosRenyi(n, int64(4*n), 42)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Precompute(g, Options{Rank: rank})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// gatherQueryRows assembles the |Q| x r broadcast matrix of U rows the
// router would gather before fanning out.
func gatherQueryRows(t *testing.T, shards []*IndexShard, queries []int) *dense.Mat {
	t.Helper()
	uq := dense.NewMat(len(queries), shards[0].Rank())
	for j, q := range queries {
		for _, sh := range shards {
			if sh.Owns(q) {
				copy(uq.Row(j), sh.URow(q))
			}
		}
	}
	return uq
}

// Stitching every shard's PartialInto band together must reproduce the
// monolithic QueryRankInto answer bitwise, at any boundary placement and
// any retained rank.
func TestShardPartialIntoMatchesQueryInto(t *testing.T) {
	const n, r = 97, 6
	ix := bigIndex(t, n, r)
	queries := []int{0, 13, 52, 96}
	cuts := [][]int{
		{0, n},                     // K=1
		{0, 48, n},                 // K=2, near-even
		{0, 1, 2, n},               // tiny leading shards
		{0, 30, 31, 90, n},         // uneven
		{0, 13, 14, 52, 53, 96, n}, // boundaries on query nodes
	}
	for _, rank := range []int{0, 1, 3, r} {
		want, err := ix.QueryRankInto(context.Background(), queries, rank, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, bounds := range cuts {
			shards := make([]*IndexShard, len(bounds)-1)
			for s := range shards {
				if shards[s], err = ix.Shard(bounds[s], bounds[s+1]); err != nil {
					t.Fatal(err)
				}
			}
			uq := gatherQueryRows(t, shards, queries)
			got := dense.NewMat(n, len(queries))
			cols := len(queries)
			for _, sh := range shards {
				band := &dense.Mat{Rows: sh.Rows(), Cols: cols, Data: got.Data[sh.Lo()*cols : sh.Hi()*cols]}
				if err := sh.PartialInto(context.Background(), queries, uq, rank, band); err != nil {
					t.Fatal(err)
				}
			}
			if !got.Equal(want, 0) {
				t.Fatalf("rank=%d cuts=%v: stitched shard answer differs from monolithic", rank, bounds)
			}
		}
	}
}

func TestShardRangeValidation(t *testing.T) {
	ix := buildIndex(t)
	for _, bad := range [][2]int{{-1, 3}, {0, 7}, {3, 3}, {4, 2}} {
		if _, err := ix.Shard(bad[0], bad[1]); !errors.Is(err, ErrParams) {
			t.Fatalf("Shard(%d, %d): err = %v, want ErrParams", bad[0], bad[1], err)
		}
	}
	sh, err := ix.Shard(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sh.N() != ix.N() || sh.Lo() != 2 || sh.Hi() != 5 || sh.Rows() != 3 {
		t.Fatalf("shard metadata = n=%d [%d,%d) rows=%d", sh.N(), sh.Lo(), sh.Hi(), sh.Rows())
	}
	if !sh.Owns(2) || !sh.Owns(4) || sh.Owns(1) || sh.Owns(5) {
		t.Fatal("Owns misreports the range")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("URow outside the shard range did not panic")
		}
	}()
	sh.URow(0)
}

func TestShardPartialIntoRejectsBadShapes(t *testing.T) {
	ix := buildIndex(t)
	sh, err := ix.Shard(0, ix.N())
	if err != nil {
		t.Fatal(err)
	}
	queries := []int{1, 3}
	uq := gatherQueryRows(t, []*IndexShard{sh}, queries)
	out := dense.NewMat(ix.N(), len(queries))
	if err := sh.PartialInto(context.Background(), nil, uq, 0, out); !errors.Is(err, ErrParams) {
		t.Fatalf("empty queries: err = %v", err)
	}
	if err := sh.PartialInto(context.Background(), queries, dense.NewMat(1, sh.Rank()), 0, out); !errors.Is(err, ErrParams) {
		t.Fatalf("wrong uq shape: err = %v", err)
	}
	if err := sh.PartialInto(context.Background(), queries, uq, 0, dense.NewMat(2, 2)); !errors.Is(err, ErrParams) {
		t.Fatalf("wrong out shape: err = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sh.PartialInto(ctx, queries, uq, 0, out); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v", err)
	}
}

// Per-shard ColMaxes combined with TailBound must reproduce the
// monolithic TruncationBound bitwise: max over a column is the max of
// the per-shard maxima, and the recurrence is shared code.
func TestTailBoundMatchesTruncationBound(t *testing.T) {
	const n, r = 97, 6
	ix := bigIndex(t, n, r)
	bounds := []int{0, 30, 31, 90, n}
	zmax := make([]float64, r)
	umax := make([]float64, r)
	for s := 0; s < len(bounds)-1; s++ {
		sh, err := ix.Shard(bounds[s], bounds[s+1])
		if err != nil {
			t.Fatal(err)
		}
		zm, um := sh.ColMaxes()
		for j := 0; j < r; j++ {
			zmax[j] = math.Max(zmax[j], zm[j])
			umax[j] = math.Max(umax[j], um[j])
		}
	}
	tail := TailBound(ix.Damping(), zmax, umax)
	for rank := 1; rank < r; rank++ {
		if got, want := tail[rank], ix.TruncationBound(rank); got != want {
			t.Fatalf("rank %d: combined tail bound %v != monolithic %v", rank, got, want)
		}
	}
	if tail[r] != 0 {
		t.Fatalf("full-rank tail = %v, want 0", tail[r])
	}
}

func TestShardRoundTrip(t *testing.T) {
	ix := buildIndex(t)
	sh, err := ix.Shard(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	wrote, err := sh.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if wrote != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", wrote, buf.Len())
	}
	back, err := ReadShard(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != sh.N() || back.Lo() != sh.Lo() || back.Hi() != sh.Hi() ||
		back.Rank() != sh.Rank() || back.Damping() != sh.Damping() {
		t.Fatalf("metadata mismatch: %+v vs %+v", back, sh)
	}
	queries := []int{1, 3}
	uq := gatherQueryRows(t, []*IndexShard{func() *IndexShard {
		full, _ := ix.Shard(0, ix.N())
		return full
	}()}, queries)
	want := dense.NewMat(sh.Rows(), len(queries))
	got := dense.NewMat(sh.Rows(), len(queries))
	if err := sh.PartialInto(context.Background(), queries, uq, 0, want); err != nil {
		t.Fatal(err)
	}
	if err := back.PartialInto(context.Background(), queries, uq, 0, got); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 0) {
		t.Fatal("deserialised shard answers differently")
	}
}

func TestReadShardRejectsCorruption(t *testing.T) {
	ix := buildIndex(t)
	sh, err := ix.Shard(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sh.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	check := func(name string, raw []byte) {
		t.Helper()
		if _, err := ReadShard(bytes.NewReader(raw)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	check("bad magic", bad)
	check("truncated header", good[:10])
	check("truncated payload", good[:len(good)-20])
	bad = append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0xFF
	check("flipped payload byte", bad)
}

func TestShardSnapshotDirRoundTrip(t *testing.T) {
	ix := buildIndex(t)
	sh, err := ix.Shard(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := ShardDir(t.TempDir(), 2)
	for want := uint64(1); want <= 2; want++ {
		gen, path, err := WriteShardSnapshot(dir, sh)
		if err != nil {
			t.Fatal(err)
		}
		if gen != want {
			t.Fatalf("generation %d, want %d", gen, want)
		}
		if filepath.Dir(path) != dir {
			t.Fatalf("snapshot path %s outside shard dir %s", path, dir)
		}
	}
	back, snap, recovered, err := RecoverShardSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if recovered || snap.Gen != 2 {
		t.Fatalf("recovered=%v gen=%d, want clean CURRENT at gen 2", recovered, snap.Gen)
	}
	if back.Lo() != sh.Lo() || back.Hi() != sh.Hi() {
		t.Fatalf("recovered range [%d,%d), want [%d,%d)", back.Lo(), back.Hi(), sh.Lo(), sh.Hi())
	}

	// Torn publish: CURRENT names a generation that never hit the disk.
	// Recovery falls back to the newest loadable snapshot and says so.
	if err := os.WriteFile(filepath.Join(dir, CurrentFile), []byte(SnapshotName(9)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, snap, recovered, err = RecoverShardSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !recovered || snap.Gen != 2 {
		t.Fatalf("torn CURRENT: recovered=%v gen=%d, want recovered gen 2", recovered, snap.Gen)
	}

	if _, _, _, err := RecoverShardSnapshot(t.TempDir()); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir: err = %v, want ErrNoSnapshot", err)
	}
}

package core

import (
	"math"
	"testing"

	"csrplus/internal/graph"
	"csrplus/internal/sparse"
)

// buildCore builds a graph from edges and runs CSR+ plus the dense exact
// reference, returning both similarity matrices for all nodes.
func runBoth(t *testing.T, n int, edges [][2]int, rank int) (got, want [][]float64) {
	t.Helper()
	coo := sparse.NewCOO(n, n)
	for _, e := range edges {
		if err := coo.Add(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	g := graph.New(coo)
	ix, err := Precompute(g, Options{Rank: rank, Eps: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	s, err := ix.Query(all, nil)
	if err != nil {
		t.Fatal(err)
	}
	exact := exactCoSimRank(t, g, DefaultDamping, 80)
	got = make([][]float64, n)
	want = make([][]float64, n)
	for j := 0; j < n; j++ {
		got[j] = s.Col(j, nil)
		want[j] = exact.Col(j, nil)
	}
	return got, want
}

func assertClose(t *testing.T, got, want [][]float64, tol float64) {
	t.Helper()
	for j := range want {
		for i := range want[j] {
			if math.Abs(got[j][i]-want[j][i]) > tol {
				t.Fatalf("S[%d][%d] = %v, want %v", i, j, got[j][i], want[j][i])
			}
		}
	}
}

func TestDAGFullRank(t *testing.T) {
	// Diamond DAG: full-rank CSR+ must be exact despite zero-in-degree
	// roots (zero transition columns) and nilpotent Q.
	got, want := runBoth(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}}, 4)
	assertClose(t, got, want, 1e-8)
	// Nodes 1 and 2 share in-neighbour {0}: similarity must be positive.
	if got[1][2] <= 0 {
		t.Fatalf("siblings have similarity %v", got[1][2])
	}
}

func TestStarGraph(t *testing.T) {
	// All leaves point at the hub; leaves have no in-edges at all.
	n := 10
	edges := make([][2]int, 0, n-1)
	for leaf := 1; leaf < n; leaf++ {
		edges = append(edges, [2]int{leaf, 0})
	}
	got, want := runBoth(t, n, edges, n)
	assertClose(t, got, want, 1e-8)
	// With no in-edges anywhere except the hub, S = I + c·(hub column
	// structure); leaf-leaf similarity is exactly 0.
	if got[1][2] != 0 && math.Abs(got[1][2]) > 1e-10 {
		t.Fatalf("leaf-leaf similarity %v, want 0", got[1][2])
	}
}

func TestSelfLoops(t *testing.T) {
	got, want := runBoth(t, 3, [][2]int{{0, 0}, {0, 1}, {1, 2}, {2, 1}}, 3)
	assertClose(t, got, want, 1e-7)
}

func TestDisconnectedComponents(t *testing.T) {
	// Two 2-cycles with no connection: cross-component similarity must be
	// (numerically) zero; within-component structure preserved.
	got, want := runBoth(t, 4, [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 2}}, 4)
	assertClose(t, got, want, 1e-8)
	if math.Abs(got[0][2]) > 1e-8 || math.Abs(got[1][3]) > 1e-8 {
		t.Fatalf("cross-component similarity nonzero: %v, %v", got[0][2], got[1][3])
	}
}

func TestSingleNodeGraph(t *testing.T) {
	coo := sparse.NewCOO(1, 1)
	g := graph.New(coo)
	ix, err := Precompute(g, Options{Rank: 1})
	if err != nil {
		t.Fatal(err)
	}
	col, err := ix.QueryOne(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(col[0]-1) > 1e-12 {
		t.Fatalf("isolated node self-similarity %v, want 1", col[0])
	}
}

func TestCompleteBipartite(t *testing.T) {
	// K_{2,3} directed left -> right: all right nodes share the identical
	// in-neighbourhood, so their pairwise similarities are all equal.
	edges := [][2]int{}
	for _, l := range []int{0, 1} {
		for _, r := range []int{2, 3, 4} {
			edges = append(edges, [2]int{l, r})
		}
	}
	got, want := runBoth(t, 5, edges, 5)
	assertClose(t, got, want, 1e-8)
	if math.Abs(got[2][3]-got[2][4]) > 1e-10 || math.Abs(got[3][4]-got[2][3]) > 1e-10 {
		t.Fatalf("identical in-neighbourhoods scored differently: %v %v %v",
			got[2][3], got[2][4], got[3][4])
	}
	if got[2][3] <= 0 {
		t.Fatal("shared in-neighbourhood scored zero")
	}
}

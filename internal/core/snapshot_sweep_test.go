package core

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// plantTemp drops a fake crash-orphaned temp file in dir, aged so it
// falls on the requested side of the staleTempAge cutoff.
func plantTemp(t *testing.T, dir, name string, stale bool) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}
	if stale {
		old := time.Now().Add(-2 * staleTempAge)
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func mustExist(t *testing.T, p string) {
	t.Helper()
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("%s should have survived the sweep: %v", filepath.Base(p), err)
	}
}

func mustBeGone(t *testing.T, p string) {
	t.Helper()
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("%s should have been swept, stat err = %v", filepath.Base(p), err)
	}
}

// TestPruneSnapshotsSweepsStaleTemps pins satellite 3 of issue 8: temps
// stranded by a crash between CreateTemp and the deferred remove are
// cleaned up by housekeeping, while in-flight temps, snapshots, CURRENT
// and foreign files are untouched.
func TestPruneSnapshotsSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	ix := buildIndex(t)
	if _, _, err := WriteSnapshot(dir, ix); err != nil {
		t.Fatal(err)
	}

	staleSave := plantTemp(t, dir, tempSavePrefix+"dead1", true)
	staleCur := plantTemp(t, dir, tempCurrentPrefix+"dead2", true)
	freshSave := plantTemp(t, dir, tempSavePrefix+"inflight", false)
	// A foreign dotfile older than the cutoff must not be collateral.
	foreign := plantTemp(t, dir, ".keep", true)

	removed, err := PruneSnapshots(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Fatalf("removed = %d snapshots, want 0 (temps are not counted)", removed)
	}
	mustBeGone(t, staleSave)
	mustBeGone(t, staleCur)
	mustExist(t, freshSave)
	mustExist(t, foreign)
	mustExist(t, filepath.Join(dir, CurrentFile))
	if _, _, err := CurrentSnapshot(dir); err != nil {
		t.Fatalf("snapshot no longer resolvable after sweep: %v", err)
	}
}

// TestRecoverSnapshotSweepsStaleTemps pins that the crash-recovery entry
// point — the code that runs right after the kind of crash that strands
// temps — cleans them up while still serving the directory.
func TestRecoverSnapshotSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	ix := buildIndex(t)
	if _, _, err := WriteSnapshot(dir, ix); err != nil {
		t.Fatal(err)
	}
	stale := plantTemp(t, dir, tempSavePrefix+"dead", true)
	fresh := plantTemp(t, dir, tempCurrentPrefix+"inflight", false)

	got, _, recovered, err := RecoverSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if recovered {
		t.Fatal("healthy directory reported as recovered")
	}
	mustBeGone(t, stale)
	mustExist(t, fresh)

	// An empty (just-created) directory must not make recovery's sweep
	// blow up, and the error must still be ErrNoSnapshot.
	if _, _, _, err := RecoverSnapshot(t.TempDir()); err == nil {
		t.Fatal("recovery of empty dir succeeded")
	}
}

// TestRecoverShardSnapshotSweepsStaleTemps is the shard-directory twin.
func TestRecoverShardSnapshotSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	ix := buildIndex(t)
	sh, err := ix.Shard(0, ix.N())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := WriteShardSnapshot(dir, sh); err != nil {
		t.Fatal(err)
	}
	stale := plantTemp(t, dir, tempSavePrefix+"dead", true)

	back, _, recovered, err := RecoverShardSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if recovered {
		t.Fatal("healthy shard directory reported as recovered")
	}
	mustBeGone(t, stale)
}

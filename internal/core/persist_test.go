package core

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"testing"
)

func buildIndex(t *testing.T) *Index {
	t.Helper()
	ix, err := Precompute(paperGraph(t), Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestIndexRoundTrip(t *testing.T) {
	ix := buildIndex(t)
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ix.N() || back.Rank() != ix.Rank() || back.Damping() != ix.Damping() || back.Iterations() != ix.Iterations() {
		t.Fatalf("metadata mismatch: %+v vs %+v", back, ix)
	}
	// Queries through the deserialised index must be bit-identical.
	want, err := ix.Query([]int{1, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Query([]int{1, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 0) {
		t.Fatal("loaded index answers differently")
	}
	sig := back.SingularValues()
	for i, s := range ix.SingularValues() {
		if sig[i] != s {
			t.Fatal("singular values not preserved")
		}
	}
}

func TestSaveLoadIndexFile(t *testing.T) {
	ix := buildIndex(t)
	path := filepath.Join(t.TempDir(), "fb.csrx")
	if err := SaveIndex(ix, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ix.N() {
		t.Fatal("load mismatch")
	}
}

func TestLoadIndexMissingFile(t *testing.T) {
	if _, err := LoadIndex(filepath.Join(t.TempDir(), "nope.csrx")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestReadIndexBadMagic(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("NOPExxxxxxxxxxxxxxxx"))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReadIndexTruncated(t *testing.T) {
	ix := buildIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, 5, 20, len(full) / 2, len(full) - 2} {
		if _, err := ReadIndex(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestReadIndexBitFlip(t *testing.T) {
	ix := buildIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a payload bit (past the header) — the CRC must catch it.
	data[len(data)-20] ^= 0x40
	if _, err := ReadIndex(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReadIndexVersionMismatch(t *testing.T) {
	ix := buildIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version byte
	if _, err := ReadIndex(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReadIndexImplausibleShape(t *testing.T) {
	ix := buildIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Overwrite n (offset 8: magic 4 + version 4) with an absurd value.
	for i := 0; i < 8; i++ {
		data[8+i] = 0xFF
	}
	if _, err := ReadIndex(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestWriteToPropagatesWriteErrors(t *testing.T) {
	ix := buildIndex(t)
	if _, err := ix.WriteTo(failingWriter{}); err == nil {
		t.Fatal("write error swallowed")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func buildIndex(t *testing.T) *Index {
	t.Helper()
	ix, err := Precompute(paperGraph(t), Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestIndexRoundTrip(t *testing.T) {
	ix := buildIndex(t)
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ix.N() || back.Rank() != ix.Rank() || back.Damping() != ix.Damping() || back.Iterations() != ix.Iterations() {
		t.Fatalf("metadata mismatch: %+v vs %+v", back, ix)
	}
	// Queries through the deserialised index must be bit-identical.
	want, err := ix.Query([]int{1, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Query([]int{1, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 0) {
		t.Fatal("loaded index answers differently")
	}
	sig := back.SingularValues()
	for i, s := range ix.SingularValues() {
		if sig[i] != s {
			t.Fatal("singular values not preserved")
		}
	}
}

func TestSaveLoadIndexFile(t *testing.T) {
	ix := buildIndex(t)
	path := filepath.Join(t.TempDir(), "fb.csrx")
	if err := SaveIndex(ix, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ix.N() {
		t.Fatal("load mismatch")
	}
}

func TestLoadIndexMissingFile(t *testing.T) {
	if _, err := LoadIndex(filepath.Join(t.TempDir(), "nope.csrx")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestReadIndexBadMagic(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("NOPExxxxxxxxxxxxxxxx"))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReadIndexTruncated(t *testing.T) {
	ix := buildIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, 5, 20, len(full) / 2, len(full) - 2} {
		if _, err := ReadIndex(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestReadIndexBitFlip(t *testing.T) {
	ix := buildIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a payload bit (past the header) — the CRC must catch it.
	data[len(data)-20] ^= 0x40
	if _, err := ReadIndex(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReadIndexVersionMismatch(t *testing.T) {
	ix := buildIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version byte
	if _, err := ReadIndex(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReadIndexImplausibleShape(t *testing.T) {
	ix := buildIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Overwrite n (offset 8: magic 4 + version 4) with an absurd value.
	for i := 0; i < 8; i++ {
		data[8+i] = 0xFF
	}
	if _, err := ReadIndex(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestWriteToPropagatesWriteErrors(t *testing.T) {
	ix := buildIndex(t)
	if _, err := ix.WriteTo(failingWriter{}); err == nil {
		t.Fatal("write error swallowed")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

// TestReadIndexCorruptionMatrix truncates a valid index at (and just
// before) every section boundary of the format — magic, version, each
// header word, sigma, Z, U, checksum — and demands a wrapped ErrCorrupt
// every time, with no panic. This pins the contract the hot-reload
// validator relies on: any torn file a crashed writer could leave behind
// is rejected with one recognisable sentinel.
func TestReadIndexCorruptionMatrix(t *testing.T) {
	ix := buildIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	n, r := ix.N(), ix.Rank()
	boundaries := map[string]int{
		"empty":         0,
		"after magic":   4,
		"after version": 8,
		"after n":       16,
		"after rank":    24,
		"after c":       32,
		"after iters":   40,
		"after sigma":   40 + 8*r,
		"after Z":       40 + 8*r + 8*n*r,
		"after U":       40 + 8*r + 16*n*r,
	}
	if want := 40 + 8*r + 16*n*r + 4; len(full) != want {
		t.Fatalf("serialised size %d, boundary math expects %d", len(full), want)
	}
	for name, cut := range boundaries {
		for _, at := range []int{cut, cut - 1} {
			if at < 0 || at >= len(full) {
				continue
			}
			_, err := ReadIndex(bytes.NewReader(full[:at]))
			if !errors.Is(err, ErrCorrupt) {
				t.Errorf("truncated %s (%d bytes): err = %v, want wrapped ErrCorrupt", name, at, err)
			}
		}
	}
}

// TestReadIndexFlippedCRCByte corrupts the stored checksum itself (the
// payload is intact) — the mismatch must still read as corruption.
func TestReadIndexFlippedCRCByte(t *testing.T) {
	ix := buildIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-1] ^= 0x01
	if _, err := ReadIndex(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestReadIndexFutureVersion pins forward-compatibility behaviour: a
// higher version is rejected as ErrCorrupt, not misparsed as v1.
func TestReadIndexFutureVersion(t *testing.T) {
	ix := buildIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	binary.LittleEndian.PutUint32(data[4:], indexVersion+1)
	if _, err := ReadIndex(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestReadIndexAbsurdShapeNoOverAllocation forges headers whose n*rank
// would demand terabytes and proves the reader rejects them up front —
// ErrCorrupt, no panic, and crucially no allocation proportional to the
// forged sizes (bounded by a modest Alloc delta measurement).
func TestReadIndexAbsurdShapeNoOverAllocation(t *testing.T) {
	ix := buildIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	forge := func(n, rank uint64) []byte {
		data := append([]byte(nil), pristine...)
		binary.LittleEndian.PutUint64(data[8:], n)
		binary.LittleEndian.PutUint64(data[16:], rank)
		return data
	}
	cases := map[string][]byte{
		"n*rank over cap":    forge(1<<20, 1<<20),
		"rank beyond n":      forge(4, 5),
		"zero n":             forge(0, 3),
		"zero rank":          forge(5, 0),
		"max n and rank":     forge(^uint64(0), ^uint64(0)), // also overflows the product
		"huge rank, small n": forge(5, 1<<60),
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for name, data := range cases {
		if _, err := ReadIndex(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 64<<20 {
		t.Fatalf("rejecting forged headers allocated %d bytes", grew)
	}
}

// TestReadIndexForgedCountShortStream claims a large-but-capped payload
// over a stream that ends immediately: readFloats must fail after one
// chunk instead of committing the full forged allocation.
func TestReadIndexForgedCountShortStream(t *testing.T) {
	ix := buildIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()[:40]...) // header only
	// n=2^25, rank=512: n*rank = 2^34 = exactly the cap, so the header
	// passes plausibility, but the stream holds no payload at all.
	binary.LittleEndian.PutUint64(data[8:], 1<<25)
	binary.LittleEndian.PutUint64(data[16:], 512)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := ReadIndex(bytes.NewReader(data))
	runtime.ReadMemStats(&after)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 8<<20 {
		t.Fatalf("short stream with forged count allocated %d bytes", grew)
	}
}

// TestSaveIndexCrashConsistency simulates the torn-write window the
// fsync+rename dance closes: a partially written temp file must never be
// visible at the destination path, and an interrupted save must leave a
// previously published index untouched and loadable.
func TestSaveIndexCrashConsistency(t *testing.T) {
	ix := buildIndex(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "index.csrx")
	if err := SaveIndex(ix, path); err != nil {
		t.Fatal(err)
	}
	// Simulate a writer killed mid-write: a stray temp file with a
	// truncated payload sits next to the published index.
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tornPath := filepath.Join(dir, ".csrx-torn")
	if err := os.WriteFile(tornPath, buf.Bytes()[:buf.Len()/3], 0o644); err != nil {
		t.Fatal(err)
	}
	// The published path still loads — the torn temp never replaced it.
	if _, err := LoadIndex(path); err != nil {
		t.Fatalf("published index damaged by torn write: %v", err)
	}
	// And the torn file itself is rejected as corrupt, not half-loaded.
	if _, err := LoadIndex(tornPath); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn temp file: err = %v, want ErrCorrupt", err)
	}
}

package core

import (
	"bytes"
	"testing"
)

// FuzzReadIndex: arbitrary bytes must never panic the index reader, and
// anything it accepts must be a queryable index.
func FuzzReadIndex(f *testing.F) {
	ix, err := Precompute(paperGraph(f), Options{Rank: 3})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:8])
	f.Add([]byte("CSRXgarbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := ReadIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		if loaded.N() < 1 || loaded.Rank() < 1 {
			t.Fatal("accepted index with empty shape")
		}
		if _, err := loaded.Query([]int{0}, nil); err != nil {
			t.Fatalf("accepted index cannot answer queries: %v", err)
		}
	})
}

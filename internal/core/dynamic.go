// Dynamic is the incremental low-rank maintenance path behind streaming
// edge ingestion (internal/ingest): it tracks the live graph's
// in-neighbour structure next to a frozen factor basis, accumulates a
// provable entrywise drift bound for serving stale factors against the
// updated graph, and maintains the Galerkin subspace state (W = QU)
// that lets the factors be refreshed in the frozen basis without a full
// SVD.
//
// Drift bound. Inserting (or up-weighting) an edge u -> v changes only
// column v of the transition matrix Q; let δ = ‖q'_v − q_v‖₁ be the
// exact 1-norm of that change (computable in O(indeg(v))). CoSimRank is
// S = Σ_k c^k (Q^k)ᵀ(Q^k), every column of Q^k has 1-norm ≤ 1, and
// ‖Q'^k − Q^k‖₁ ≤ k·δ by telescoping submultiplicativity, so
//
//	|S' − S|_max ≤ Σ_k c^k · 2kδ = 2δ·c/(1−c)²  ≤  c·(2δ+δ²)/(1−c)².
//
// Dynamic charges the (slightly looser, perturbation-symmetric) final
// form per applied edge. Successive edges telescope through the
// intermediate graphs, so the per-edge contributions compose
// *additively* — the same composition rule the truncation and
// quantization bounds already follow — and the running total honestly
// bounds |S_live − S_factors|_max for factors built at any earlier
// point in the stream.
package core

import (
	"fmt"
	"math"

	"csrplus/internal/dense"
	"csrplus/internal/graph"
	"csrplus/internal/sparse"
)

// DriftContribution is the entrywise CoSimRank drift bound charged for
// one edge application whose transition-column 1-norm change is delta.
func DriftContribution(c, delta float64) float64 {
	return c * (2*delta + delta*delta) / ((1 - c) * (1 - c))
}

type dynEdge struct {
	src int32
	w   float64
}

// Dynamic maintains the live in-neighbour lists, the frozen-basis
// Galerkin state, and the cumulative drift bound. It is not safe for
// concurrent use; the ingest service serializes access.
type Dynamic struct {
	n, r     int
	c        float64
	weighted bool

	u *dense.Mat // frozen basis (the index's U; never mutated)
	w *dense.Mat // W = Q·U, maintained per edge in O(indeg·r)

	in   [][]dynEdge // in[v] = in-neighbours of v with weights
	totw []float64   // totw[v] = Σ weights into v (Q's column normaliser)
	m    int64       // live edge count (distinct (u,v) pairs)

	drift float64 // cumulative drift bound over drift-counted edges
	edges int64   // drift-counted edge applications
}

// NewDynamic builds the dynamic state for g served by ix's factors. The
// index must carry exact f64 factors (quantized tiers have no basis to
// maintain) and match g's node count.
func NewDynamic(g *graph.Graph, ix *Index) (*Dynamic, error) {
	if g.N() != ix.n {
		return nil, fmt.Errorf("core: dynamic state over n=%d graph for n=%d index: %w", g.N(), ix.n, ErrParams)
	}
	if ix.u == nil {
		return nil, fmt.Errorf("core: dynamic maintenance requires the exact factor tier, have %v: %w", ix.Tier(), ErrParams)
	}
	d := &Dynamic{
		n:        ix.n,
		r:        ix.rank,
		c:        ix.c,
		weighted: g.Weighted(),
		u:        ix.u,
		in:       make([][]dynEdge, ix.n),
		totw:     make([]float64, ix.n),
	}
	adj := g.Adj()
	for u := 0; u < d.n; u++ {
		for p := adj.RowPtr[u]; p < adj.RowPtr[u+1]; p++ {
			v, w := int(adj.ColIdx[p]), adj.Val[p]
			d.in[v] = append(d.in[v], dynEdge{src: int32(u), w: w})
			d.totw[v] += w
			d.m++
		}
	}
	// W = Q·U: row i accumulates Q_{iv}·U_{v,*} over i's out-edges v.
	d.w = dense.NewMat(d.n, d.r)
	for v := 0; v < d.n; v++ {
		if d.totw[v] == 0 {
			continue
		}
		urow := d.u.Row(v)
		for _, e := range d.in[v] {
			wrow := d.w.Row(int(e.src))
			q := e.w / d.totw[v]
			for j := 0; j < d.r; j++ {
				wrow[j] += q * urow[j]
			}
		}
	}
	return d, nil
}

// N returns the node count.
func (d *Dynamic) N() int { return d.n }

// M returns the live edge count.
func (d *Dynamic) M() int64 { return d.m }

// Weighted reports whether the maintained graph carries edge weights.
func (d *Dynamic) Weighted() bool { return d.weighted }

// Drift returns the cumulative entrywise drift bound accumulated by
// drift-counted ApplyEdge calls. It is monotone non-decreasing.
func (d *Dynamic) Drift() float64 { return d.drift }

// Edges returns how many drift-counted edges have been applied.
func (d *Dynamic) Edges() int64 { return d.edges }

// ApplyEdge inserts edge src -> dst with the given weight (weight 1 on
// an unweighted graph; on a weighted graph duplicate edges accumulate
// weight, mirroring NewWeighted's duplicate-sum semantics). It updates
// the in-neighbour structure and the Galerkin state, and — when
// countDrift is true — charges the edge's drift contribution. On an
// unweighted graph a duplicate edge is a no-op (parallel edges collapse,
// mirroring graph.New), applied=false, zero drift.
//
// countDrift=false is the boot-replay case: records at or below the
// snapshot's WAL sequence are already inside the factors, so they
// rebuild structure without charging drift.
func (d *Dynamic) ApplyEdge(src, dst int, weight float64, countDrift bool) (applied bool, driftDelta float64, err error) {
	if src < 0 || src >= d.n || dst < 0 || dst >= d.n {
		return false, 0, fmt.Errorf("core: edge (%d, %d) outside [0, %d): %w", src, dst, d.n, ErrQuery)
	}
	if !d.weighted {
		weight = 1
	} else if weight <= 0 || math.IsInf(weight, 0) || math.IsNaN(weight) {
		return false, 0, fmt.Errorf("core: edge (%d, %d) weight %v must be positive and finite: %w", src, dst, weight, ErrParams)
	}

	list := d.in[dst]
	pos := -1
	for i := range list {
		if int(list[i].src) == src {
			pos = i
			break
		}
	}
	if pos >= 0 && !d.weighted {
		return false, 0, nil
	}

	// Exact δ = ‖q'_dst − q_dst‖₁ for the column renormalisation, plus
	// the per-entry changes needed for the rank-1 W update.
	oldT := d.totw[dst]
	newT := oldT + weight
	var delta float64
	urow := d.u.Row(dst)
	apply := func(i int, change float64) {
		wrow := d.w.Row(i)
		for j := 0; j < d.r; j++ {
			wrow[j] += change * urow[j]
		}
	}
	if oldT == 0 {
		// First in-edge: the column goes from all-zero to e_src.
		delta = 1
		apply(src, 1)
	} else {
		for i := range list {
			wOld := list[i].w
			wNew := wOld
			if int(list[i].src) == src {
				wNew += weight
			}
			change := wNew/newT - wOld/oldT
			delta += math.Abs(change)
			apply(int(list[i].src), change)
		}
		if pos < 0 {
			change := weight / newT
			delta += change
			apply(src, change)
		}
	}

	if pos >= 0 {
		d.in[dst][pos].w += weight
	} else {
		d.in[dst] = append(d.in[dst], dynEdge{src: int32(src), w: weight})
		d.m++
	}
	d.totw[dst] = newT

	if countDrift {
		driftDelta = DriftContribution(d.c, delta)
		d.drift += driftDelta
		d.edges++
	}
	return true, driftDelta, nil
}

// MaterializeCOO renders the live edge set as a COO adjacency. The COO
// canonicalisation in ToCSR (sort by (row, col), merge duplicates) makes
// the downstream graph — and therefore a rebuild's Precompute output —
// bitwise-independent of the order edges were applied in.
func (d *Dynamic) MaterializeCOO() (*sparse.COO, error) {
	coo := sparse.NewCOO(d.n, d.n)
	for v := 0; v < d.n; v++ {
		for _, e := range d.in[v] {
			if err := coo.Add(int(e.src), v, e.w); err != nil {
				return nil, fmt.Errorf("core: materialize dynamic graph: %w", err)
			}
		}
	}
	return coo, nil
}

// MaterializeGraph renders the live edge set as a graph.Graph, the
// input a drift-triggered full rebuild precomputes over.
func (d *Dynamic) MaterializeGraph() (*graph.Graph, error) {
	coo, err := d.MaterializeCOO()
	if err != nil {
		return nil, err
	}
	if d.weighted {
		return graph.NewWeighted(coo)
	}
	return graph.New(coo), nil
}

// Refresh solves the frozen-basis Galerkin compression of the CoSimRank
// fixed point against the *live* graph and returns the refreshed factor
// Z' = U·A, where A solves A = C0 + c·K·A·Kᵀ with K = WᵀU and C0 = WᵀW
// (both r×r, assembled from the maintained W = QU in O(nr²)).
//
// Substituting S ≈ I + c·U·A·Uᵀ into S = c·QᵀSQ + I and projecting onto
// the frozen basis yields exactly that equation; at boot — before any
// edges — A equals the index's ΣPΣ (because QU = U_qΣ holds exactly
// even for a truncated SVD), so Refresh reproduces the served Z, and
// with a full-rank basis the projection is exact for any graph. eps is
// the squaring-series tolerance (0 uses the precompute default).
func (d *Dynamic) Refresh(eps float64) (*dense.Mat, error) {
	if eps <= 0 {
		eps = DefaultEps
	}
	k := dense.TMul(d.w, d.u) // K = WᵀU
	a := dense.TMul(d.w, d.w) // C0 = WᵀW
	limit := 1e6 / (1 - d.c)
	weight := d.c
	h := k
	for step := 0; step < SquaringIterations(d.c, eps); step++ {
		// A ← A + weight · H A Hᵀ; H ← H²; weight ← weight².
		ha := dense.Mul(h, a)
		a.AddInPlace(dense.MulT(ha, h).Scale(weight))
		if a.HasNaN() || a.MaxAbs() > limit {
			return nil, fmt.Errorf("core: dynamic refresh after %d squaring steps ‖A‖=%g: %w", step+1, a.MaxAbs(), ErrDiverged)
		}
		h = dense.Mul(h, h)
		weight *= weight
	}
	return dense.Mul(d.u, a), nil
}

package core

import (
	"errors"
	"testing"

	"csrplus/internal/dense"
	"csrplus/internal/graph"
	"csrplus/internal/svd"
)

// TestSolversAgree checks the three subspace solvers produce the same P
// (and therefore the same similarities) within the series-truncation eps:
// the ablation variants are slower, never different.
func TestSolversAgree(t *testing.T) {
	g, err := graph.ErdosRenyi(40, 200, 70)
	if err != nil {
		t.Fatal(err)
	}
	queries := []int{0, 7, 25}
	var base [][]float64
	for _, solver := range []SubspaceSolver{SolverSquaring, SolverPlain, SolverExplicitLambda} {
		ix, err := Precompute(g, Options{Rank: 6, Eps: 1e-9, Solver: solver,
			SVD: svd.Options{Seed: 5}})
		if err != nil {
			t.Fatalf("%v: %v", solver, err)
		}
		s, err := ix.Query(queries, nil)
		if err != nil {
			t.Fatalf("%v: %v", solver, err)
		}
		if base == nil {
			base = make([][]float64, len(queries))
			for j := range queries {
				base[j] = s.Col(j, nil)
			}
			continue
		}
		for j := range queries {
			col := s.Col(j, nil)
			for i := range col {
				diff := col[i] - base[j][i]
				if diff < 0 {
					diff = -diff
				}
				if diff > 1e-6 {
					t.Fatalf("%v deviates at (%d,%d): %g", solver, i, j, diff)
				}
			}
		}
	}
}

func TestSolverString(t *testing.T) {
	if SolverSquaring.String() != "squaring" ||
		SolverPlain.String() != "plain-iteration" ||
		SolverExplicitLambda.String() != "explicit-lambda" {
		t.Fatal("solver names wrong")
	}
	if SubspaceSolver(9).String() == "" {
		t.Fatal("unknown solver name empty")
	}
}

func TestUnknownSolverRejected(t *testing.T) {
	g := paperGraph(t)
	if _, err := Precompute(g, Options{Rank: 3, Solver: SubspaceSolver(9)}); !errors.Is(err, ErrParams) {
		t.Fatalf("err = %v, want ErrParams", err)
	}
}

func TestPlainSolverDivergenceGuard(t *testing.T) {
	u := dense.Eye(2)
	v := dense.Eye(2)
	s := []float64{40, 40}
	if _, _, err := SolveSubspacePlain(u, s, v, 0.6, 1e-5); !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
}

// TestQueryDenseMatchesQuery: the un-optimised dense query must return
// exactly the same block as Theorem 3.5's route.
func TestQueryDenseMatchesQuery(t *testing.T) {
	g := paperGraph(t)
	ix, err := Precompute(g, Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	queries := []int{1, 3, 5}
	fast, err := ix.Query(queries, nil)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := ix.QueryDense(queries)
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Equal(slow, 1e-12) {
		t.Fatalf("dense query deviates by %g", fast.Sub(slow).MaxAbs())
	}
}

func TestQueryDenseValidation(t *testing.T) {
	g := paperGraph(t)
	ix, err := Precompute(g, Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.QueryDense(nil); !errors.Is(err, ErrParams) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ix.QueryDense([]int{9}); !errors.Is(err, ErrQuery) {
		t.Fatalf("err = %v", err)
	}
}

package core

// shard.go implements the row-range slicing that makes CSR+ shardable:
// because phase II is [S]_{*,Q} = [I_n]_{*,Q} + c · Z · [U]_{Q,*}ᵀ, output
// row i depends only on row i of Z (plus the |Q| broadcast rows of U), so
// the factor matrices partition cleanly by contiguous node range. A shard
// owns rows [lo, hi) of both Z and U and can score exactly its own nodes;
// a router that gathers the U rows of the query nodes from their owner
// shards and broadcasts them reproduces the monolithic answer bitwise —
// same dot-product kernel, same per-element operation order (dot, ×c, +1).
//
// On-disk shard format (little endian), magic "CSRS":
//
//	magic   [4]byte  "CSRS"
//	version uint32   currently 1
//	n       uint64   GLOBAL node count
//	lo      uint64   first node owned (inclusive)
//	hi      uint64   one past the last node owned
//	rank    uint64   SVD rank r
//	c       float64  damping factor
//	z       [(hi-lo)*rank]float64   (row-major)
//	u       [(hi-lo)*rank]float64   (row-major)
//	crc     uint32   IEEE CRC-32 of everything after the magic
//
// The global n travels with every shard so a router can refuse to
// assemble shards cut from different graphs.

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"csrplus/internal/dense"
	"csrplus/internal/fault"
)

var shardMagic = [4]byte{'C', 'S', 'R', 'S'}

// shardVersion is the current on-disk shard format version.
const shardVersion = 1

// IndexShard is the contiguous node range [Lo, Hi) of an Index: the
// corresponding rows of Z and U plus the global metadata (n, c, rank)
// needed to answer queries and to validate reassembly. It is immutable
// after construction, so any number of goroutines may query it.
type IndexShard struct {
	n      int // global node count
	lo, hi int
	c      float64
	rank   int
	z      *dense.Mat // rows [lo, hi) of Z, (hi-lo) x rank — exact tier only
	u      *dense.Mat // rows [lo, hi) of U, (hi-lo) x rank — exact tier only

	// Quantized tiers mirror Index: typed factor slices plus the measured
	// per-column dequantisation errors (global per-column, shared by all
	// shards cut from one index, so routers can recompose the bound).
	zt, ut       *dense.Typed
	zqerr, uqerr []float64

	// mapped is non-nil when the factors view an mmap (MapShard).
	mapped *mapping
}

// Shard slices the index to the node range [lo, hi). The shard shares the
// index's backing arrays (no copy): slicing an index into K shards costs
// O(K), not O(rn).
func (ix *Index) Shard(lo, hi int) (*IndexShard, error) {
	if lo < 0 || hi > ix.n || lo >= hi {
		return nil, fmt.Errorf("core: shard range [%d, %d) not within [0, %d): %w", lo, hi, ix.n, ErrParams)
	}
	sh := &IndexShard{
		n:    ix.n,
		lo:   lo,
		hi:   hi,
		c:    ix.c,
		rank: ix.rank,
	}
	if ix.zt != nil {
		sh.zt = ix.zt.SliceRowsView(lo, hi)
		sh.ut = ix.ut.SliceRowsView(lo, hi)
		sh.zqerr = ix.zqerr
		sh.uqerr = ix.uqerr
		if ix.mapped != nil {
			// Detach from the mapping (see below) — including the
			// rank-length error vectors, which otherwise keep aliasing
			// the mmap'd qerr sections and break the contract that Close
			// of the source index is safe the moment Shard returns.
			sh.zt = sh.zt.Copy()
			sh.ut = sh.ut.Copy()
			sh.zqerr = append([]float64(nil), ix.zqerr...)
			sh.uqerr = append([]float64(nil), ix.uqerr...)
		}
		return sh, nil
	}
	viewRows := func(m *dense.Mat) *dense.Mat {
		return &dense.Mat{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
	}
	sh.z = viewRows(ix.z)
	sh.u = viewRows(ix.u)
	if ix.mapped != nil {
		// Shards cut from a memory-mapped index copy their factor rows
		// instead of aliasing the mapping: the shard router swaps slots
		// without a drain barrier, so a shard's factors must stay valid
		// for as long as the GC can see the shard — a guarantee only
		// heap memory gives. This keeps Close of the source index safe
		// the moment Shard returns.
		sh.z = sh.z.Clone()
		sh.u = sh.u.Clone()
	}
	return sh, nil
}

// N returns the GLOBAL node count of the graph the shard was cut from.
func (sh *IndexShard) N() int { return sh.n }

// Lo returns the first node the shard owns.
func (sh *IndexShard) Lo() int { return sh.lo }

// Hi returns one past the last node the shard owns.
func (sh *IndexShard) Hi() int { return sh.hi }

// Rows returns how many nodes the shard owns.
func (sh *IndexShard) Rows() int { return sh.hi - sh.lo }

// Rank returns the SVD rank of the shard's factors.
func (sh *IndexShard) Rank() int { return sh.rank }

// Damping returns the damping factor baked into the shard.
func (sh *IndexShard) Damping() float64 { return sh.c }

// Bytes reports the resident memory of the shard's factors — the 1/K
// slice of the index's O(rn) that actually lives on this shard, at the
// tier's element width.
func (sh *IndexShard) Bytes() int64 {
	if sh.zt != nil {
		return sh.zt.Bytes() + sh.ut.Bytes()
	}
	return sh.z.Bytes() + sh.u.Bytes()
}

// Tier returns the storage tier of the shard's factors.
func (sh *IndexShard) Tier() Tier {
	if sh.zt == nil {
		return TierF64
	}
	if sh.zt.Kind == dense.F32 {
		return TierF32
	}
	return TierI8
}

// Owns reports whether global node q falls in the shard's range.
func (sh *IndexShard) Owns(q int) bool { return q >= sh.lo && q < sh.hi }

// URow returns the shard's U row for global node q, which must be owned.
// For the exact tier the slice aliases the shard's backing array and must
// not be modified — it is the row a router gathers into its query
// broadcast, and sharing the exact float64s is what keeps sharded scores
// bitwise-identical to the monolithic path. Quantized tiers return a
// fresh dequantised copy; because dequantisation is elementwise, the
// copy's float64s still equal the ones a quantized monolith would gather,
// preserving the bitwise contract tier-for-tier.
func (sh *IndexShard) URow(q int) []float64 {
	if !sh.Owns(q) {
		panic(fmt.Sprintf("core: URow(%d) outside shard [%d, %d)", q, sh.lo, sh.hi))
	}
	if sh.ut != nil {
		return sh.ut.RowInto(q-sh.lo, make([]float64, sh.rank))
	}
	return sh.u.Row(q - sh.lo)
}

// PartialInto computes the shard's slice of a (possibly rank-truncated)
// phase II answer: rows [lo, hi) of S' = [I]_{*,Q} + c · Z_{*,<r'} ·
// (U_{Q,<r'})ᵀ, written into out (which must be (hi-lo) x |Q|; pass a
// band view of a shared n x |Q| matrix for zero-copy scatter). uq holds
// the gathered U rows of the queries, row j for queries[j] — gathered
// globally by the router because query nodes usually live on other
// shards. queries are global ids and are only used here to place the +1
// self-similarity for query nodes this shard owns.
//
// The kernel, banding, and per-element operation order (dot product in
// column index order, then ×c, then +1) are exactly those of
// Index.QueryRankInto, so stitching every shard's PartialInto output
// together reproduces the monolithic answer bitwise. Honours ctx between
// row bands like QueryRankInto; returns ctx.Err() on cancellation.
func (sh *IndexShard) PartialInto(ctx context.Context, queries []int, uq *dense.Mat, rank int, out *dense.Mat) error {
	cols := len(queries)
	if cols == 0 {
		return fmt.Errorf("core: empty query set: %w", ErrParams)
	}
	if !uq.IsShape(cols, sh.rank) {
		return fmt.Errorf("core: uq is %dx%d, want %dx%d: %w", uq.Rows, uq.Cols, cols, sh.rank, ErrParams)
	}
	if !out.IsShape(sh.Rows(), cols) {
		return fmt.Errorf("core: out is %dx%d, want %dx%d: %w", out.Rows, out.Cols, sh.Rows(), cols, ErrParams)
	}
	if rank <= 0 || rank > sh.rank {
		rank = sh.rank
	}
	rows := sh.Rows()
	for lo := 0; lo < rows; lo += queryBandRows {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := lo + queryBandRows
		if hi > rows {
			hi = rows
		}
		sBand := &dense.Mat{Rows: hi - lo, Cols: cols, Data: out.Data[lo*cols : hi*cols]}
		if sh.zt != nil {
			dense.MulTRankTypedInto(sBand, sh.zt.SliceRowsView(lo, hi), uq, rank)
		} else {
			zBand := &dense.Mat{Rows: hi - lo, Cols: sh.rank, Data: sh.z.Data[lo*sh.rank : hi*sh.rank]}
			dense.MulTRankInto(sBand, zBand, uq, rank)
		}
	}
	out.Scale(sh.c)
	for j, q := range queries {
		if sh.Owns(q) {
			i := q - sh.lo
			out.Set(i, j, out.At(i, j)+1)
		}
	}
	return nil
}

// ScoreRows computes the scores of chosen owned rows against every query
// column — the targeted-pair primitive behind /similarity in the wire
// deployment, where materialising even one shard's full band for a
// handful of (query, target) pairs would waste the worker's memory
// bandwidth. out[i*|Q|+j] scores global row rows[i] against queries[j]:
// s = 1{rows[i]==queries[j]} + c · Σ_{k<rank} Z[rows[i]][k]·uq[j][k].
//
// Each element is bitwise-equal to the same element of PartialInto's
// band: the GEMM kernels accumulate every output element independently in
// ascending column order (see dense.MulTRankInto), which is exactly the
// plain dot product below, and the per-element operation order (dot, ×c,
// +1) is shared. Quantized tiers dequantise the Z row elementwise first,
// matching MulTRankTypedInto's row bands.
func (sh *IndexShard) ScoreRows(ctx context.Context, queries []int, uq *dense.Mat, rows []int, rank int) ([]float64, error) {
	cols := len(queries)
	if cols == 0 {
		return nil, fmt.Errorf("core: empty query set: %w", ErrParams)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("core: empty row set: %w", ErrParams)
	}
	if !uq.IsShape(cols, sh.rank) {
		return nil, fmt.Errorf("core: uq is %dx%d, want %dx%d: %w", uq.Rows, uq.Cols, cols, sh.rank, ErrParams)
	}
	if rank <= 0 || rank > sh.rank {
		rank = sh.rank
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]float64, len(rows)*cols)
	var zrow []float64
	if sh.zt != nil {
		zrow = make([]float64, sh.rank)
	}
	for i, t := range rows {
		if !sh.Owns(t) {
			return nil, fmt.Errorf("core: row %d outside shard [%d, %d): %w", t, sh.lo, sh.hi, ErrQuery)
		}
		if sh.zt != nil {
			sh.zt.RowInto(t-sh.lo, zrow)
		} else {
			zrow = sh.z.Row(t - sh.lo)
		}
		for j, q := range queries {
			urow := uq.Row(j)
			s := 0.0
			for k := 0; k < rank; k++ {
				s += zrow[k] * urow[k]
			}
			s *= sh.c
			if t == q {
				s++
			}
			out[i*cols+j] = s
		}
	}
	return out, nil
}

// ColMaxes returns the per-column maxima max|Z_{[lo:hi),j}| and
// max|U_{[lo:hi),j}| over the shard's rows. Because a max over the full
// column is the max of the per-shard maxima, a router combines these and
// runs Index.TruncationBound's recurrence to get a truncation bound
// bitwise-equal to the monolithic one.
func (sh *IndexShard) ColMaxes() (zmax, umax []float64) {
	if sh.zt != nil {
		return sh.zt.ColAbsMax(), sh.ut.ColAbsMax()
	}
	colMax := func(m *dense.Mat) []float64 {
		mx := make([]float64, m.Cols)
		for i := 0; i < m.Rows; i++ {
			row := m.Row(i)
			for j, v := range row {
				if a := math.Abs(v); a > mx[j] {
					mx[j] = a
				}
			}
		}
		return mx
	}
	return colMax(sh.z), colMax(sh.u)
}

// QuantErrs returns the measured per-column dequantisation error vectors
// of a quantized shard (nil, nil for the exact tier). They are global
// per-column quantities — identical across every shard cut from one
// index — so a router can feed any shard's copy into QuantBound.
func (sh *IndexShard) QuantErrs() (zerr, uerr []float64) {
	return sh.zqerr, sh.uqerr
}

// QuantBound evaluates the entrywise quantisation error bound from
// combined per-column maxima and the measured dequantisation errors —
// the router-side twin of Index.QuantizationBound, sharing one formula.
func QuantBound(c float64, zmax, umax, zerr, uerr []float64) float64 {
	return quantTerm(c, zmax, umax, zerr, uerr)
}

// TailBound runs Index.TruncationBound's recurrence over combined
// per-column maxima: boundTail[j] = boundTail[j+1] + c·zmax[j]·umax[j],
// returning boundTail so callers can index it by retained rank. Exposed
// from core so the router and the Index share one formula.
func TailBound(c float64, zmax, umax []float64) []float64 {
	r := len(zmax)
	tail := make([]float64, r+1)
	for j := r - 1; j >= 0; j-- {
		tail[j] = tail[j+1] + c*zmax[j]*umax[j]
	}
	return tail
}

// WriteTo serialises the shard in the v1 format. It implements
// io.WriterTo. Quantized shards must be written as v2 (WriteToV2);
// SaveShard picks the right writer.
func (sh *IndexShard) WriteTo(w io.Writer) (int64, error) {
	if sh.zt != nil {
		return 0, fmt.Errorf("core: v1 shard format cannot hold a %v-tier shard: %w", sh.Tier(), ErrParams)
	}
	bw := bufio.NewWriter(w)
	n := &countingWriter{w: bw}
	if _, err := n.Write(shardMagic[:]); err != nil {
		return n.n, fmt.Errorf("core: writing shard magic: %w", err)
	}
	crc := crc32.NewIEEE()
	body := io.MultiWriter(n, crc)
	le := binary.LittleEndian
	if err := binary.Write(body, le, uint32(shardVersion)); err != nil {
		return n.n, fmt.Errorf("core: writing shard version: %w", err)
	}
	header := []uint64{uint64(sh.n), uint64(sh.lo), uint64(sh.hi), uint64(sh.rank), math.Float64bits(sh.c)}
	for _, s := range header {
		if err := binary.Write(body, le, s); err != nil {
			return n.n, fmt.Errorf("core: writing shard header: %w", err)
		}
	}
	for _, block := range [][]float64{sh.z.Data, sh.u.Data} {
		if err := writeFloats(body, block); err != nil {
			return n.n, fmt.Errorf("core: writing shard payload: %w", err)
		}
	}
	if err := binary.Write(n, le, crc.Sum32()); err != nil {
		return n.n, fmt.Errorf("core: writing shard checksum: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return n.n, fmt.Errorf("core: flushing shard: %w", err)
	}
	return n.n, nil
}

// ReadShard deserialises a shard written by WriteTo (v1) or WriteToV2,
// validating magic, version, shape bounds and checksums with the same
// discipline as ReadIndex: every validation failure is a wrapped
// ErrCorrupt.
func ReadShard(r io.Reader) (*IndexShard, error) {
	br := bufio.NewReader(r)
	if v, err := sniffVersion(br); err == nil && v == indexVersion2 {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading v2 shard: %w", corruptEOF(err))
		}
		return decodeShardV2(data)
	}
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading shard magic: %w", corruptEOF(err))
	}
	if magic != shardMagic {
		return nil, fmt.Errorf("core: bad shard magic %q: %w", magic, ErrCorrupt)
	}
	crc := crc32.NewIEEE()
	body := io.TeeReader(br, crc)
	le := binary.LittleEndian
	var version uint32
	if err := binary.Read(body, le, &version); err != nil {
		return nil, fmt.Errorf("core: reading shard version: %w", corruptEOF(err))
	}
	if version != shardVersion {
		return nil, fmt.Errorf("core: shard version %d, want %d: %w", version, shardVersion, ErrCorrupt)
	}
	var nNodes, lo, hi, rank, cBits uint64
	for _, dst := range []*uint64{&nNodes, &lo, &hi, &rank, &cBits} {
		if err := binary.Read(body, le, dst); err != nil {
			return nil, fmt.Errorf("core: reading shard header: %w", corruptEOF(err))
		}
	}
	c := math.Float64frombits(cBits)
	// Same divide-based overflow discipline as ReadIndex: a forged header
	// must not produce a plausible product by wrapping around.
	if nNodes == 0 || rank == 0 || rank > nNodes || nNodes > maxIndexElems/rank {
		return nil, fmt.Errorf("core: implausible shard shape n=%d r=%d: %w", nNodes, rank, ErrCorrupt)
	}
	if lo >= hi || hi > nNodes {
		return nil, fmt.Errorf("core: implausible shard range [%d, %d) of n=%d: %w", lo, hi, nNodes, ErrCorrupt)
	}
	if err := checkElemCount("shard", hi-lo, rank); err != nil {
		return nil, err
	}
	// The global count is converted to int too; on a 32-bit build a
	// 2^33-node header would wrap even when this shard's own slice fits.
	if nNodes > maxPlatformElems {
		return nil, fmt.Errorf("core: shard global n=%d exceeds platform int: %w", nNodes, ErrCorrupt)
	}
	if c <= 0 || c >= 1 || math.IsNaN(c) {
		return nil, fmt.Errorf("core: implausible damping %v: %w", c, ErrCorrupt)
	}
	rows := int(hi - lo)
	zdata, err := readFloats(body, rows*int(rank))
	if err != nil {
		return nil, fmt.Errorf("core: reading shard Z: %w", corruptEOF(err))
	}
	udata, err := readFloats(body, rows*int(rank))
	if err != nil {
		return nil, fmt.Errorf("core: reading shard U: %w", corruptEOF(err))
	}
	sum := crc.Sum32()
	var want uint32
	if err := binary.Read(br, le, &want); err != nil {
		return nil, fmt.Errorf("core: reading shard checksum: %w", corruptEOF(err))
	}
	if sum != want {
		return nil, fmt.Errorf("core: shard checksum %08x, want %08x: %w", sum, want, ErrCorrupt)
	}
	return &IndexShard{
		n:    int(nNodes),
		lo:   int(lo),
		hi:   int(hi),
		c:    c,
		rank: int(rank),
		z:    dense.NewMatFrom(rows, int(rank), zdata),
		u:    dense.NewMatFrom(rows, int(rank), udata),
	}, nil
}

// SaveShard writes the shard to path with the same atomic,
// crash-consistent discipline as SaveIndex (temp file, fsync, rename,
// directory fsync), through the same chaos fault sites. Shards are
// written in the CSRS v2 layout; v1 shard files remain readable.
func SaveShard(sh *IndexShard, path string) error {
	return saveAtomic("SaveShard", path, sh.WriteToV2)
}

// LoadShard reads a shard from path, through the same injected-fault read
// path as LoadIndex. Unlike LoadIndex it always decodes rather than
// mapping: the in-process shard router swaps slots without a drain
// barrier, so a mapped shard's munmap would race in-flight partials.
// Embedders that manage generation lifetime themselves can use MapShard.
func LoadShard(path string) (*IndexShard, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: LoadShard: %w", err)
	}
	defer f.Close()
	sh, err := ReadShard(fault.Reader(fault.SiteIndexRead, f))
	if err != nil {
		return nil, fmt.Errorf("core: LoadShard %s: %w", path, err)
	}
	return sh, nil
}

// ShardDir returns the conventional snapshot directory of shard s under
// root: <root>/shard-<s>. Each shard gets its own snapshot directory so
// generations advance (and roll back) independently per shard — the unit
// of a rolling reload.
func ShardDir(root string, s int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%d", s))
}

// WriteShardSnapshot persists sh as the next generation in dir and
// repoints CURRENT at it — WriteSnapshot for a shard directory.
func WriteShardSnapshot(dir string, sh *IndexShard) (gen uint64, path string, err error) {
	gen, path, err = nextSnapshotPath(dir)
	if err != nil {
		return 0, "", err
	}
	if err := SaveShard(sh, path); err != nil {
		return 0, "", err
	}
	if err := SetCurrent(dir, gen); err != nil {
		return 0, "", err
	}
	return gen, path, nil
}

// RecoverShardSnapshot loads the best shard snapshot dir can still serve,
// with RecoverSnapshot's fallback ladder: CURRENT's target first, then
// remaining generations newest-first; recovered reports the returned
// snapshot is not the one CURRENT names.
func RecoverShardSnapshot(dir string) (sh *IndexShard, snap Snapshot, recovered bool, err error) {
	sweepStaleTemps(dir)
	var loadErr error
	skip := ""
	if p, g, cerr := CurrentSnapshot(dir); cerr == nil {
		sh, loadErr = LoadShard(p)
		if loadErr == nil {
			return sh, Snapshot{Gen: g, Path: p}, false, nil
		}
		skip = p
	} else if !os.IsNotExist(cerr) {
		loadErr = cerr
	}
	snaps, lerr := ListSnapshots(dir)
	if lerr != nil {
		return nil, Snapshot{}, false, lerr
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		s := snaps[i]
		if s.Path == skip {
			continue
		}
		sh, err := LoadShard(s.Path)
		if err != nil {
			loadErr = err
			continue
		}
		return sh, s, true, nil
	}
	if loadErr != nil {
		return nil, Snapshot{}, false, fmt.Errorf("core: %s: no loadable shard snapshot (last failure: %v): %w", dir, loadErr, ErrNoSnapshot)
	}
	return nil, Snapshot{}, false, fmt.Errorf("core: %s: %w", dir, ErrNoSnapshot)
}

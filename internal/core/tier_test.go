package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"csrplus/internal/dense"
	"csrplus/internal/graph"
)

func TestParseTier(t *testing.T) {
	good := map[string]Tier{
		"": TierF64, "none": TierF64, "f64": TierF64, "float64": TierF64,
		"f32": TierF32, "float32": TierF32,
		"int8": TierI8, "i8": TierI8,
	}
	for s, want := range good {
		got, err := ParseTier(s)
		if err != nil || got != want {
			t.Errorf("ParseTier(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, s := range []string{"f16", "int4", "exact", "64"} {
		if _, err := ParseTier(s); !errors.Is(err, ErrParams) {
			t.Errorf("ParseTier(%q) err = %v, want ErrParams", s, err)
		}
	}
}

// TestQuantizedErrorWithinBoundOnEvalGraph is the tier acceptance
// criterion at evaluation scale: on a generated graph the measured
// entrywise deviation of every quantized answer from the exact one stays
// within QuantizationBound, and the composed TruncationBound (tail +
// quantization) holds for truncated queries on a quantized index.
func TestQuantizedErrorWithinBoundOnEvalGraph(t *testing.T) {
	g, err := graph.ErdosRenyi(200, 1400, 3)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Precompute(g, Options{Rank: 8})
	if err != nil {
		t.Fatal(err)
	}
	n := exact.N()
	queries := []int{0, 17, n / 2, n - 1}
	ref, err := exact.Query(queries, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, tier := range []Tier{TierF32, TierI8} {
		q, err := exact.Quantize(tier)
		if err != nil {
			t.Fatal(err)
		}
		bound := q.QuantizationBound()
		if bound <= 0 {
			t.Fatalf("%v: bound %g, want > 0", tier, bound)
		}
		got, err := q.Query(queries, nil)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for i := 0; i < got.Rows; i++ {
			for j := 0; j < got.Cols; j++ {
				if d := math.Abs(got.At(i, j) - ref.At(i, j)); d > worst {
					worst = d
				}
			}
		}
		if worst > bound {
			t.Fatalf("%v: measured error %g exceeds reported bound %g", tier, worst, bound)
		}
		if worst == 0 && tier == TierI8 {
			t.Fatalf("int8 quantization changed nothing; the bound check is vacuous")
		}

		// Composed bound: truncated rank on a quantized index. The
		// deviation from the exact FULL-rank answer must stay within
		// tail + quantization.
		const trunc = 4
		composed := q.TruncationBound(trunc)
		if composed <= bound {
			t.Fatalf("%v: TruncationBound(%d) = %g does not compose the tail on top of quant bound %g",
				tier, trunc, composed, bound)
		}
		tg, err := q.QueryRankInto(context.Background(), queries, trunc, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tg.Rows; i++ {
			for j := 0; j < tg.Cols; j++ {
				if d := math.Abs(tg.At(i, j) - ref.At(i, j)); d > composed {
					t.Fatalf("%v: truncated quantized entry (%d,%d) deviates %g > composed bound %g",
						tier, i, j, d, composed)
				}
			}
		}
	}
}

// TestQuantizedShardPartialMatchesQuantizedIndex pins that a sharded
// quantized deployment answers tier-for-tier identically to the
// monolithic quantized index — the scatter-gather contract.
func TestQuantizedShardPartialMatchesQuantizedIndex(t *testing.T) {
	g, err := graph.ErdosRenyi(60, 300, 11)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Precompute(g, Options{Rank: 5})
	if err != nil {
		t.Fatal(err)
	}
	q, err := exact.Quantize(TierI8)
	if err != nil {
		t.Fatal(err)
	}
	queries := []int{2, 31}
	want, err := q.Query(queries, nil)
	if err != nil {
		t.Fatal(err)
	}
	mid := q.N() / 2
	var shards []*IndexShard
	for _, rng := range [][2]int{{0, mid}, {mid, q.N()}} {
		sh, err := q.Shard(rng[0], rng[1])
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, sh)
	}
	// The router's scatter: U rows gathered from each query's owner.
	uq := dense.NewMat(len(queries), q.Rank())
	for j, qq := range queries {
		for _, sh := range shards {
			if sh.Owns(qq) {
				copy(uq.Row(j), sh.URow(qq))
			}
		}
	}
	for _, sh := range shards {
		part := dense.NewMat(sh.Rows(), len(queries))
		if err := sh.PartialInto(context.Background(), queries, uq, 0, part); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < part.Rows; i++ {
			for j := 0; j < part.Cols; j++ {
				if math.Float64bits(part.At(i, j)) != math.Float64bits(want.At(sh.Lo()+i, j)) {
					t.Fatalf("shard [%d,%d) entry (%d,%d) differs from monolithic quantized answer",
						sh.Lo(), sh.Hi(), i, j)
				}
			}
		}
	}
}

package core

// persist.go implements binary serialisation of a precomputed Index so the
// expensive phase I of Algorithm 1 can run once (offline, on a beefy box)
// and the cheap phase II can be served from anywhere — the deployment
// split the paper's preprocessing/query architecture implies.
//
// Format (little endian):
//
//	magic   [4]byte  "CSRX"
//	version uint32   currently 1
//	n       uint64   node count
//	rank    uint64   SVD rank r
//	c       float64  damping factor
//	iters   uint64   squaring iterations performed
//	sigma   [rank]float64
//	z       [n*rank]float64   (row-major)
//	u       [n*rank]float64   (row-major)
//	crc     uint32   IEEE CRC-32 of everything after the magic
//
// The CRC detects truncation and bit rot; version gates format evolution.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"

	"csrplus/internal/dense"
	"csrplus/internal/fault"
)

var indexMagic = [4]byte{'C', 'S', 'R', 'X'}

// indexVersion is the current on-disk format version.
const indexVersion = 1

// maxIndexElems caps n*rank at load time so a corrupt header cannot make
// the reader attempt a multi-terabyte allocation.
const maxIndexElems = 1 << 34

// maxPlatformElems is the largest element count that survives conversion
// to int on this platform. maxIndexElems alone exceeds MaxInt32, so on a
// 32-bit build a valid-looking header could wrap int(nNodes*rank) to a
// negative or small count and mis-read the payload; headers are bounded
// by both. A variable so the 64-bit test suite can shrink it to the
// 32-bit value and exercise the rejection path.
var maxPlatformElems = uint64(math.MaxInt)

// maxIndexIters caps the recorded squaring-iteration count. Algorithm 1
// doubles the horizon per iteration, so real values are tiny (< 64);
// the cap only needs to reject forged values (e.g. 2^63, which would
// silently convert to a negative int) while accepting anything a real
// precompute could produce.
const maxIndexIters = 1 << 16

// checkElemCount validates a header's n/rank pair against both the
// format bound and the platform int width, so int(nNodes*rank) below is
// safe. Shared by the v1 and v2 readers for indexes and shards (rows is
// n for an index, hi-lo for a shard).
func checkElemCount(what string, rows, rank uint64) error {
	if rank == 0 || rows > 0 && rank > maxIndexElems/rows {
		return fmt.Errorf("core: implausible %s shape rows=%d r=%d: %w", what, rows, rank, ErrCorrupt)
	}
	if rank > maxPlatformElems || rows*rank > maxPlatformElems {
		return fmt.Errorf("core: %s shape rows=%d r=%d exceeds platform int: %w", what, rows, rank, ErrCorrupt)
	}
	return nil
}

// checkSigma rejects non-finite or negative singular values: NaN/±Inf
// entries pass the CRC (they are honest bytes) but poison every query
// and every truncation bound computed from them.
func checkSigma(sigma []float64) error {
	for i, s := range sigma {
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			return fmt.Errorf("core: non-finite or negative sigma[%d]=%v: %w", i, s, ErrCorrupt)
		}
	}
	return nil
}

// ErrCorrupt is returned (wrapped) when an index file fails validation.
var ErrCorrupt = errors.New("core: corrupt index file")

// WriteTo serialises the index in the v1 format. It implements
// io.WriterTo. v1 has no tier field, so quantized indexes must be
// written as v2 (WriteToV2); SaveIndex picks the right writer.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	if ix.zt != nil {
		return 0, fmt.Errorf("core: v1 format cannot hold a %v-tier index: %w", ix.Tier(), ErrParams)
	}
	bw := bufio.NewWriter(w)
	n := &countingWriter{w: bw}
	if _, err := n.Write(indexMagic[:]); err != nil {
		return n.n, fmt.Errorf("core: writing index magic: %w", err)
	}
	crc := crc32.NewIEEE()
	body := io.MultiWriter(n, crc)
	le := binary.LittleEndian
	if err := binary.Write(body, le, uint32(indexVersion)); err != nil {
		return n.n, fmt.Errorf("core: writing index version: %w", err)
	}
	header := []uint64{uint64(ix.n), uint64(ix.rank), math.Float64bits(ix.c), uint64(ix.iters)}
	for _, s := range header {
		if err := binary.Write(body, le, s); err != nil {
			return n.n, fmt.Errorf("core: writing index header: %w", err)
		}
	}
	for _, block := range [][]float64{ix.sigma, ix.z.Data, ix.u.Data} {
		if err := writeFloats(body, block); err != nil {
			return n.n, fmt.Errorf("core: writing index payload: %w", err)
		}
	}
	if err := binary.Write(n, le, crc.Sum32()); err != nil {
		return n.n, fmt.Errorf("core: writing index checksum: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return n.n, fmt.Errorf("core: flushing index: %w", err)
	}
	return n.n, nil
}

// corruptEOF folds premature end-of-stream into ErrCorrupt: a truncated
// index file is a corrupt index file, and callers branch on errors.Is
// (ErrCorrupt), not on which section the bytes ran out in. Genuine I/O
// errors (disk faults) pass through unchanged.
func corruptEOF(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%v: %w", err, ErrCorrupt)
	}
	return err
}

// ReadIndex deserialises an index written by WriteTo (v1) or WriteToV2,
// validating magic, version, shape bounds and checksums. Every
// validation failure — bad magic, unknown version, implausible header,
// truncation in any section, checksum mismatch — is reported as a
// wrapped ErrCorrupt. v2 streams are decoded into fresh allocations;
// use MapIndex for the zero-copy path.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	if v, err := sniffVersion(br); err == nil && v == indexVersion2 {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading v2 index: %w", corruptEOF(err))
		}
		return decodeIndexV2(data)
	}
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading index magic: %w", corruptEOF(err))
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("core: bad magic %q: %w", magic, ErrCorrupt)
	}
	crc := crc32.NewIEEE()
	body := io.TeeReader(br, crc)
	le := binary.LittleEndian
	var version uint32
	if err := binary.Read(body, le, &version); err != nil {
		return nil, fmt.Errorf("core: reading index version: %w", corruptEOF(err))
	}
	if version != indexVersion {
		return nil, fmt.Errorf("core: index version %d, want %d: %w", version, indexVersion, ErrCorrupt)
	}
	var nNodes, rank, iters uint64
	var cBits uint64
	for _, dst := range []*uint64{&nNodes, &rank, &cBits, &iters} {
		if err := binary.Read(body, le, dst); err != nil {
			return nil, fmt.Errorf("core: reading index header: %w", corruptEOF(err))
		}
	}
	c := math.Float64frombits(cBits)
	// The product test divides rather than multiplies: a forged header with
	// both words near 2^64 would overflow nNodes*rank back into plausible
	// range and sail past a multiplication-based bound.
	if nNodes == 0 || rank == 0 || rank > nNodes || nNodes > maxIndexElems/rank {
		return nil, fmt.Errorf("core: implausible index shape n=%d r=%d: %w", nNodes, rank, ErrCorrupt)
	}
	if err := checkElemCount("index", nNodes, rank); err != nil {
		return nil, err
	}
	if c <= 0 || c >= 1 || math.IsNaN(c) {
		return nil, fmt.Errorf("core: implausible damping %v: %w", c, ErrCorrupt)
	}
	if iters > maxIndexIters {
		return nil, fmt.Errorf("core: implausible iteration count %d: %w", iters, ErrCorrupt)
	}
	sigma, err := readFloats(body, int(rank))
	if err != nil {
		return nil, fmt.Errorf("core: reading sigma: %w", corruptEOF(err))
	}
	if err := checkSigma(sigma); err != nil {
		return nil, err
	}
	zdata, err := readFloats(body, int(nNodes*rank))
	if err != nil {
		return nil, fmt.Errorf("core: reading Z: %w", corruptEOF(err))
	}
	udata, err := readFloats(body, int(nNodes*rank))
	if err != nil {
		return nil, fmt.Errorf("core: reading U: %w", corruptEOF(err))
	}
	sum := crc.Sum32()
	var want uint32
	if err := binary.Read(br, le, &want); err != nil {
		return nil, fmt.Errorf("core: reading checksum: %w", corruptEOF(err))
	}
	if sum != want {
		return nil, fmt.Errorf("core: checksum %08x, want %08x: %w", sum, want, ErrCorrupt)
	}
	return &Index{
		n:     int(nNodes),
		c:     c,
		rank:  int(rank),
		iters: int(iters),
		z:     dense.NewMatFrom(int(nNodes), int(rank), zdata),
		u:     dense.NewMatFrom(int(nNodes), int(rank), udata),
		sigma: sigma,
	}, nil
}

// SaveIndex writes the index to path atomically and crash-consistently:
// the bytes go to a temp file in the same directory, are fsynced so they
// are durable before they can become visible, and only then renamed over
// path; the parent directory is fsynced afterwards so the rename itself
// survives a crash. A kill at any point leaves either the old file, the
// new file, or a stray temp file — never a truncated index at path.
// Indexes are written in the mmap-able v2 layout (persist2.go); v1 files
// remain readable via LoadIndex/ReadIndex forever.
func SaveIndex(ix *Index, path string) error {
	return saveAtomic("SaveIndex", path, ix.WriteToV2)
}

// saveAtomic is the write-temp/fsync/rename/fsync-dir discipline shared
// by SaveIndex and SaveShard; op names the caller in error messages.
func saveAtomic(op, path string, writeTo func(io.Writer) (int64, error)) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, tempSavePrefix+"*")
	if err != nil {
		return fmt.Errorf("core: %s: %w", op, err)
	}
	defer os.Remove(tmp.Name())
	// The fault wrapper (chaos builds only) can tear or fail the payload
	// write mid-file — upstream of the rename, so an injected "crash"
	// must leave path untouched exactly like a real one.
	if _, err := writeTo(fault.Writer(fault.SiteIndexWrite, tmp)); err != nil {
		tmp.Close()
		return err
	}
	// Data must hit stable storage before the rename can publish it:
	// rename-then-crash without this fsync is exactly how a reboot yields
	// a visible, complete-looking file full of zero pages.
	if err := fault.Hit(fault.SiteIndexSync); err != nil {
		tmp.Close()
		return fmt.Errorf("core: %s: fsync: %w", op, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: %s: fsync: %w", op, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: %s: %w", op, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: %s: %w", op, err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("core: %s: %w", op, err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-completed rename is durable. On
// platforms whose filesystems reject directory fsync (notably Windows)
// it is a no-op: the rename is still atomic, just not crash-durable.
func syncDir(dir string) error {
	if runtime.GOOS == "windows" {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// LoadIndex reads an index from path. v2 snapshots are memory-mapped
// (verified, zero-copy — O(1) in index size) where the platform allows;
// v1 files, non-mmap platforms, big-endian hosts and injected map
// faults fall back to the buffered decode path. Corruption never falls
// back: a bad v2 file fails here so the recovery ladder can move to an
// older generation. Callers own Close on the returned index (a no-op
// for decoded indexes).
func LoadIndex(path string) (*Index, error) {
	ix, err := mapIndexAt(path, true)
	if err == nil {
		return ix, nil
	}
	if !errors.Is(err, errMapUnsupported) {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: LoadIndex: %w", err)
	}
	defer f.Close()
	// The fault wrapper (chaos builds only) injects read errors and
	// latency — a degraded disk during a reload.
	ix, err = ReadIndex(fault.Reader(fault.SiteIndexRead, f))
	if err != nil {
		return nil, fmt.Errorf("core: LoadIndex %s: %w", path, err)
	}
	return ix, nil
}

func writeFloats(w io.Writer, data []float64) error {
	buf := make([]byte, 8*4096)
	le := binary.LittleEndian
	for len(data) > 0 {
		chunk := len(data)
		if chunk > 4096 {
			chunk = 4096
		}
		for i := 0; i < chunk; i++ {
			le.PutUint64(buf[i*8:], math.Float64bits(data[i]))
		}
		if _, err := w.Write(buf[:chunk*8]); err != nil {
			return err
		}
		data = data[chunk:]
	}
	return nil
}

func readFloats(r io.Reader, count int) ([]float64, error) {
	// Grow the slice only as bytes actually arrive: a forged header
	// claiming a huge payload on a short stream must fail after one
	// chunk, not commit a multi-gigabyte allocation up front.
	const chunkElems = 4096
	capHint := count
	if capHint > chunkElems {
		capHint = chunkElems
	}
	out := make([]float64, 0, capHint)
	buf := make([]byte, 8*chunkElems)
	le := binary.LittleEndian
	for off := 0; off < count; {
		chunk := count - off
		if chunk > chunkElems {
			chunk = chunkElems
		}
		if _, err := io.ReadFull(r, buf[:chunk*8]); err != nil {
			return nil, err
		}
		for i := 0; i < chunk; i++ {
			out = append(out, math.Float64frombits(le.Uint64(buf[i*8:])))
		}
		off += chunk
	}
	return out, nil
}

// countingWriter tracks bytes written for WriteTo's contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

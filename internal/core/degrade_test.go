package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"csrplus/internal/graph"
)

func degradeTestIndex(t *testing.T) *Index {
	t.Helper()
	gr, err := graph.ErdosRenyi(120, 700, 17)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Precompute(gr, Options{Rank: 8})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// A full-rank QueryRankInto must agree bitwise with QueryInto: same
// factors, same kernel order, just banded with cancellation checks.
func TestQueryRankFullRankMatchesQueryInto(t *testing.T) {
	ix := degradeTestIndex(t)
	queries := []int{0, 3, ix.N() / 2, ix.N() - 1}
	want, err := ix.QueryInto(queries, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rank := range []int{0, ix.Rank(), ix.Rank() + 5, -1} {
		got, err := ix.QueryRankInto(context.Background(), queries, rank, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !got.IsShape(want.Rows, want.Cols) {
			t.Fatalf("rank=%d shape %dx%d", rank, got.Rows, got.Cols)
		}
		for i, v := range got.Data {
			if v != want.Data[i] {
				t.Fatalf("rank=%d: element %d = %v, want %v (full-rank path must be bitwise identical)", rank, i, v, want.Data[i])
			}
		}
	}
}

// Every truncated rank must stay within its advertised entrywise error
// bound — the invariant degraded serving relies on — and the bound must
// shrink as more rank is retained.
func TestTruncationBoundHolds(t *testing.T) {
	ix := degradeTestIndex(t)
	queries := []int{1, 7, ix.N() - 2}
	full, err := ix.QueryInto(queries, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for rank := 1; rank < ix.Rank(); rank++ {
		bound := ix.TruncationBound(rank)
		if bound <= 0 {
			t.Fatalf("rank %d: bound = %v, want > 0 for a real truncation", rank, bound)
		}
		if bound > prev {
			t.Fatalf("rank %d: bound %v grew past rank %d's %v", rank, bound, rank-1, prev)
		}
		prev = bound
		got, err := ix.QueryRankInto(context.Background(), queries, rank, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got.Data {
			if diff := math.Abs(v - full.Data[i]); diff > bound {
				t.Fatalf("rank %d: entry %d off by %v, advertised bound %v", rank, i, diff, bound)
			}
		}
	}
	if b := ix.TruncationBound(ix.Rank()); b != 0 {
		t.Fatalf("full-rank bound = %v, want 0", b)
	}
	if b := ix.TruncationBound(0); b != 0 {
		t.Fatalf("rank-0 (= full) bound = %v, want 0", b)
	}
}

// A cancelled context must abort the pass with ctx.Err(), including
// mid-GEMM between row bands.
func TestQueryRankHonoursContext(t *testing.T) {
	ix := degradeTestIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.QueryRankInto(ctx, []int{1}, 0, nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestQueryRankValidation(t *testing.T) {
	ix := degradeTestIndex(t)
	if _, err := ix.QueryRankInto(context.Background(), nil, 0, nil, nil); !errors.Is(err, ErrParams) {
		t.Fatalf("empty query set: %v", err)
	}
	if _, err := ix.QueryRankInto(context.Background(), []int{ix.N()}, 0, nil, nil); !errors.Is(err, ErrQuery) {
		t.Fatalf("out-of-range node: %v", err)
	}
}

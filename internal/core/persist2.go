package core

// persist2.go implements CSRX/CSRS v2: a page-aligned snapshot layout a
// server can memory-map and serve from without decoding — reload latency
// becomes O(1) in index size, pages fault in lazily, and two generations
// mapped during a swap share the page cache instead of doubling RSS.
//
// Layout (little endian; one 4 KiB header page, then page-aligned
// sections in a fixed order):
//
//	[0:4]      magic    "CSRX" (index) / "CSRS" (shard)
//	[4:8]      version  uint32, 2
//	[8:12]     tier     uint32 (0 = f64, 1 = f32, 2 = int8)
//	[12:16]    sections uint32 (7 for an index, 6 for a shard)
//	[16:24]    n        uint64  node count (global, for shards too)
//	[24:32]    rank     uint64
//	[32:40]    c        float64 bits
//	[40:48]    iters    uint64 (index) / lo (shard)
//	[48:56]    0        uint64 (index) / hi (shard)
//	[56:64]    fileSize uint64  — O(1) truncation detection
//	[64:...]   section table, 24 bytes each: off u64, len u64, crc u32, 0 u32
//	[240:248]  walSeq   uint64 — last ingest-WAL sequence baked into the
//	           factors (index; 0 for shards and pre-ingestion files)
//	[4092:4096] header CRC32-IEEE of bytes [0:4092]
//
// Index sections, in order: sigma, zscale, uscale, zqerr, uqerr, z, u.
// Shard sections drop sigma. Quantisation metadata sections are empty
// (len 0) for tiers that lack them: scales exist only for int8, the
// measured per-column dequantisation errors for both quantized tiers.
// Every non-empty section starts exactly at the next page boundary and
// its CRC covers the section plus its zero padding up to the following
// boundary, so every byte of the file outside the two CRC words is
// checksummed and per-section validation can be lazy: MapIndex verifies
// the header and small sections eagerly and the factor blocks either up
// front (MapIndex, LoadIndex) or on demand (MapIndexLazy + VerifyPayload,
// which is what makes map-time O(1)).
//
// Zero-copy rules: the float64/float32 factor views reinterpret mapped
// bytes, which requires native little-endian byte order and the 8-byte
// alignment the page-aligned offsets guarantee; anywhere that doesn't
// hold (or mmap itself is unavailable), loading transparently falls back
// to a copying decode of the same bytes. v1 files remain readable
// forever through the original decode path.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"

	"csrplus/internal/dense"
	"csrplus/internal/fault"
)

const (
	indexVersion2 = 2
	v2Page        = 4096
	v2TableOff    = 64
	v2DescSize    = 24
	v2HeaderCRC   = v2Page - 4

	v2IndexSections = 7
	v2ShardSections = 6

	// v2WalSeqOff holds the index's last-applied ingest-WAL sequence.
	// It sits past the section table (which ends at 64 + 7·24 = 232),
	// inside the header CRC's coverage; files written before the field
	// existed have zeros there, which reads back as walSeq 0 — exactly
	// the "no WAL coverage" meaning. Shards always write 0.
	v2WalSeqOff = 240
)

// errMapUnsupported reports that a file could not be memory-mapped for
// an environmental (not data-corruption) reason: unsupported platform,
// big-endian host, a v1 file, mmap syscall failure, or an injected map
// fault. LoadIndex/LoadShard fall back to the decode path on it; real
// corruption never wears it.
var errMapUnsupported = errors.New("core: memory mapping unavailable")

// nativeLE reports whether this host stores multi-byte words little-
// endian — the precondition for reinterpreting mapped bytes as floats.
var nativeLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func alignPage(x uint64) uint64 { return (x + v2Page - 1) &^ (v2Page - 1) }

// v2section pairs a section's payload length with an encoder that can
// replay the exact bytes — once into the CRC, once into the file.
type v2section struct {
	length uint64
	encode func(io.Writer) error
}

func f64Section(data []float64) v2section {
	return v2section{uint64(len(data)) * 8, func(w io.Writer) error { return writeFloats(w, data) }}
}

func f32Section(data []float32) v2section {
	return v2section{uint64(len(data)) * 4, func(w io.Writer) error { return writeFloats32(w, data) }}
}

func i8Section(data []int8) v2section {
	return v2section{uint64(len(data)), func(w io.Writer) error { return writeInt8(w, data) }}
}

var emptySection = v2section{0, func(io.Writer) error { return nil }}

// factorSections renders one factor matrix (and its quantisation
// metadata) as the scale/qerr/payload section triple, from either the
// exact or the typed representation.
func factorSections(m *dense.Mat, t *dense.Typed, qerr []float64) (scale, qe, payload v2section) {
	if t == nil {
		return emptySection, emptySection, f64Section(m.Data)
	}
	qe = f64Section(qerr)
	switch t.Kind {
	case dense.F32:
		return emptySection, qe, f32Section(t.F32)
	default:
		return f64Section(t.Scale), qe, i8Section(t.I8)
	}
}

// WriteToV2 serialises the index in the v2 layout.
func (ix *Index) WriteToV2(w io.Writer) (int64, error) {
	zscale, zqe, z := factorSections(ix.z, ix.zt, ix.zqerr)
	uscale, uqe, u := factorSections(ix.u, ix.ut, ix.uqerr)
	secs := []v2section{f64Section(ix.sigma), zscale, uscale, zqe, uqe, z, u}
	hdr := [5]uint64{uint64(ix.n), uint64(ix.rank), math.Float64bits(ix.c), uint64(ix.iters), 0}
	return writeV2(w, indexMagic, ix.Tier(), hdr, ix.walSeq, secs)
}

// WriteToV2 serialises the shard in the v2 layout (magic "CSRS").
func (sh *IndexShard) WriteToV2(w io.Writer) (int64, error) {
	zscale, zqe, z := factorSections(sh.z, sh.zt, sh.zqerr)
	uscale, uqe, u := factorSections(sh.u, sh.ut, sh.uqerr)
	secs := []v2section{zscale, uscale, zqe, uqe, z, u}
	hdr := [5]uint64{uint64(sh.n), uint64(sh.rank), math.Float64bits(sh.c), uint64(sh.lo), uint64(sh.hi)}
	return writeV2(w, shardMagic, sh.Tier(), hdr, 0, secs)
}

// writeV2 lays out and writes a v2 file: header page, then each section
// at the next page boundary followed by zero padding. Section CRCs are
// computed in a first encode pass (over payload plus padding), so the
// writer streams — it never materialises a quantized payload in memory.
func writeV2(w io.Writer, magic [4]byte, tier Tier, hdr [5]uint64, walSeq uint64, secs []v2section) (int64, error) {
	le := binary.LittleEndian

	// Pass 1: place sections and checksum their padded extents.
	type placed struct {
		off, padded uint64
		crc         uint32
	}
	pl := make([]placed, len(secs))
	cur := uint64(v2Page)
	for i, s := range secs {
		pl[i].off = cur
		pl[i].padded = alignPage(s.length)
		if s.length > 0 {
			h := crc32.NewIEEE()
			if err := s.encode(h); err != nil {
				return 0, fmt.Errorf("core: v2 checksum pass: %w", err)
			}
			if pad := pl[i].padded - s.length; pad > 0 {
				h.Write(make([]byte, pad))
			}
			pl[i].crc = h.Sum32()
		}
		cur += pl[i].padded
	}
	fileSize := cur

	head := make([]byte, v2Page)
	copy(head, magic[:])
	le.PutUint32(head[4:], indexVersion2)
	le.PutUint32(head[8:], uint32(tier))
	le.PutUint32(head[12:], uint32(len(secs)))
	le.PutUint64(head[16:], hdr[0])
	le.PutUint64(head[24:], hdr[1])
	le.PutUint64(head[32:], hdr[2])
	le.PutUint64(head[40:], hdr[3])
	le.PutUint64(head[48:], hdr[4])
	le.PutUint64(head[56:], fileSize)
	for i, s := range secs {
		d := head[v2TableOff+i*v2DescSize:]
		le.PutUint64(d, pl[i].off)
		le.PutUint64(d[8:], s.length)
		le.PutUint32(d[16:], pl[i].crc)
	}
	le.PutUint64(head[v2WalSeqOff:], walSeq)
	le.PutUint32(head[v2HeaderCRC:], crc32.ChecksumIEEE(head[:v2HeaderCRC]))

	// Pass 2: write. No bufio — sections already stream in large chunks,
	// and the padding writes batch through one zero page.
	cw := &countingWriter{w: w}
	if _, err := cw.Write(head); err != nil {
		return cw.n, fmt.Errorf("core: writing v2 header: %w", err)
	}
	zeros := make([]byte, v2Page)
	for i, s := range secs {
		if s.length == 0 {
			continue
		}
		if err := s.encode(cw); err != nil {
			return cw.n, fmt.Errorf("core: writing v2 section %d: %w", i, err)
		}
		for pad := pl[i].padded - s.length; pad > 0; {
			chunk := pad
			if chunk > v2Page {
				chunk = v2Page
			}
			if _, err := cw.Write(zeros[:chunk]); err != nil {
				return cw.n, fmt.Errorf("core: padding v2 section %d: %w", i, err)
			}
			pad -= chunk
		}
	}
	if uint64(cw.n) != fileSize {
		return cw.n, fmt.Errorf("core: v2 writer emitted %d bytes, laid out %d", cw.n, fileSize)
	}
	return cw.n, nil
}

// v2sec is one parsed section-table entry.
type v2sec struct {
	off, length uint64
	crc         uint32
}

func (s v2sec) end() uint64 { return alignPage(s.off + s.length) }

// v2file is a validated v2 header over its raw bytes.
type v2file struct {
	tier    Tier
	n, rank uint64
	c       float64
	w4, w5  uint64 // iters/0 for an index, lo/hi for a shard
	walSeq  uint64 // last ingest-WAL sequence baked in (index only)
	secs    []v2sec
	data    []byte
}

// parseV2Header validates everything cheap about a v2 byte image —
// magic, version, header CRC, fileSize against the actual length, field
// plausibility, and the full section-table geometry (alignment, no
// overlap with the header or each other, exact expected lengths) — and
// eagerly CRC-checks every section except the two factor blocks, whose
// verification cost is O(index size) and is the caller's choice.
// rowsFor maps the header to the factor-block row count (n for an
// index, hi-lo for a shard) after format-specific field checks.
func parseV2Header(data []byte, magic [4]byte, wantSecs int, rowsFor func(*v2file) (uint64, error)) (*v2file, error) {
	le := binary.LittleEndian
	if len(data) < v2Page {
		return nil, fmt.Errorf("core: v2 header truncated at %d bytes: %w", len(data), ErrCorrupt)
	}
	if !bytes.Equal(data[:4], magic[:]) {
		return nil, fmt.Errorf("core: bad magic %q: %w", data[:4], ErrCorrupt)
	}
	if v := le.Uint32(data[4:]); v != indexVersion2 {
		return nil, fmt.Errorf("core: index version %d, want %d: %w", v, indexVersion2, ErrCorrupt)
	}
	if got, want := crc32.ChecksumIEEE(data[:v2HeaderCRC]), le.Uint32(data[v2HeaderCRC:]); got != want {
		return nil, fmt.Errorf("core: v2 header checksum %08x, want %08x: %w", got, want, ErrCorrupt)
	}
	f := &v2file{
		n:      le.Uint64(data[16:]),
		rank:   le.Uint64(data[24:]),
		c:      math.Float64frombits(le.Uint64(data[32:])),
		w4:     le.Uint64(data[40:]),
		w5:     le.Uint64(data[48:]),
		walSeq: le.Uint64(data[v2WalSeqOff:]),
		data:   data,
	}
	tier := le.Uint32(data[8:])
	if tier > uint32(TierI8) {
		return nil, fmt.Errorf("core: unknown tier %d: %w", tier, ErrCorrupt)
	}
	f.tier = Tier(tier)
	if got := le.Uint32(data[12:]); got != uint32(wantSecs) {
		return nil, fmt.Errorf("core: v2 section count %d, want %d: %w", got, wantSecs, ErrCorrupt)
	}
	if size := le.Uint64(data[56:]); size != uint64(len(data)) {
		return nil, fmt.Errorf("core: v2 file is %d bytes, header says %d: %w", len(data), size, ErrCorrupt)
	}
	if f.n == 0 || f.rank == 0 || f.rank > f.n || f.n > maxIndexElems/f.rank {
		return nil, fmt.Errorf("core: implausible index shape n=%d r=%d: %w", f.n, f.rank, ErrCorrupt)
	}
	if f.c <= 0 || f.c >= 1 || math.IsNaN(f.c) {
		return nil, fmt.Errorf("core: implausible damping %v: %w", f.c, ErrCorrupt)
	}
	rows, err := rowsFor(f)
	if err != nil {
		return nil, err
	}
	if err := checkElemCount("index", rows, f.rank); err != nil {
		return nil, err
	}

	// Expected section lengths from the validated header. Order matches
	// the writer: [sigma,] zscale, uscale, zqerr, uqerr, z, u.
	elem := uint64(f.tier.kind().ElemSize())
	metaLen := uint64(0) // scale/qerr vectors are rank float64s when present
	if f.tier != TierF64 {
		metaLen = f.rank * 8
	}
	scaleLen := uint64(0)
	if f.tier == TierI8 {
		scaleLen = f.rank * 8
	}
	want := make([]uint64, 0, wantSecs)
	if wantSecs == v2IndexSections {
		want = append(want, f.rank*8) // sigma
	}
	want = append(want, scaleLen, scaleLen, metaLen, metaLen, rows*f.rank*elem, rows*f.rank*elem)

	f.secs = make([]v2sec, wantSecs)
	cur := uint64(v2Page)
	for i := range f.secs {
		d := data[v2TableOff+i*v2DescSize:]
		s := v2sec{off: le.Uint64(d), length: le.Uint64(d[8:]), crc: le.Uint32(d[16:])}
		if s.length != want[i] {
			return nil, fmt.Errorf("core: v2 section %d is %d bytes, want %d: %w", i, s.length, want[i], ErrCorrupt)
		}
		// Sections sit exactly where the writer puts them: next page
		// boundary, after the header, in order. Anything else — a
		// misaligned offset, an offset pointing back into the header or
		// a neighbour — is a forgery.
		if s.off != cur || s.off%v2Page != 0 || s.off < v2Page || s.end() > uint64(len(data)) {
			return nil, fmt.Errorf("core: v2 section %d at offset %d, want %d: %w", i, s.off, cur, ErrCorrupt)
		}
		cur = s.end()
		f.secs[i] = s
	}
	if cur != uint64(len(data)) {
		return nil, fmt.Errorf("core: v2 sections end at %d of %d bytes: %w", cur, len(data), ErrCorrupt)
	}

	// Eagerly verify everything except the two trailing factor blocks.
	for i := 0; i < len(f.secs)-2; i++ {
		if err := f.verifySection(i); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func (f *v2file) verifySection(i int) error {
	s := f.secs[i]
	if s.length == 0 {
		if s.crc != 0 {
			return fmt.Errorf("core: v2 empty section %d has checksum %08x: %w", i, s.crc, ErrCorrupt)
		}
		return nil
	}
	if got := crc32.ChecksumIEEE(f.data[s.off:s.end()]); got != s.crc {
		return fmt.Errorf("core: v2 section %d checksum %08x, want %08x: %w", i, got, s.crc, ErrCorrupt)
	}
	return nil
}

// verifyFactors checks the two factor-block CRCs — the O(size) half of
// validation that MapIndexLazy defers.
func (f *v2file) verifyFactors() error {
	if err := fault.Hit(fault.SiteIndexVerify); err != nil {
		return fmt.Errorf("core: verifying factor blocks: %w", err)
	}
	for i := len(f.secs) - 2; i < len(f.secs); i++ {
		if err := f.verifySection(i); err != nil {
			return err
		}
	}
	return nil
}

// bytesOf returns section i's payload bytes.
func (f *v2file) bytesOf(i int) []byte {
	s := f.secs[i]
	return f.data[s.off : s.off+s.length]
}

// f64Of materialises section i as []float64 — a zero-copy reinterpret
// of the mapping when zeroCopy (page alignment gives the required
// 8-byte alignment; parseV2Header's callers only pass zeroCopy on
// little-endian hosts), a decoded copy otherwise. nil for empty.
func (f *v2file) f64Of(i int, zeroCopy bool) []float64 {
	b := f.bytesOf(i)
	if len(b) == 0 {
		return nil
	}
	if zeroCopy {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	le := binary.LittleEndian
	out := make([]float64, len(b)/8)
	for j := range out {
		out[j] = math.Float64frombits(le.Uint64(b[j*8:]))
	}
	return out
}

func (f *v2file) f32Of(i int, zeroCopy bool) []float32 {
	b := f.bytesOf(i)
	if len(b) == 0 {
		return nil
	}
	if zeroCopy {
		return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	le := binary.LittleEndian
	out := make([]float32, len(b)/4)
	for j := range out {
		out[j] = math.Float32frombits(le.Uint32(b[j*4:]))
	}
	return out
}

// i8Of is always zero-copy capable: bytes have no endianness.
func (f *v2file) i8Of(i int, zeroCopy bool) []int8 {
	b := f.bytesOf(i)
	if len(b) == 0 {
		return nil
	}
	if zeroCopy {
		return unsafe.Slice((*int8)(unsafe.Pointer(&b[0])), len(b))
	}
	out := make([]int8, len(b))
	for j, v := range b {
		out[j] = int8(v)
	}
	return out
}

// checkQuantVec validates a persisted scale or qerr vector: the bound
// arithmetic assumes finite, non-negative entries, and NaN here would
// poison every reported error_bound while passing the CRC.
func checkQuantVec(name string, v []float64) error {
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return fmt.Errorf("core: non-finite or negative %s[%d]=%v: %w", name, i, x, ErrCorrupt)
		}
	}
	return nil
}

// factorsFromV2 materialises one factor matrix from its scale/qerr/
// payload sections (already shape-validated). Returns exactly one of
// mat (f64 tier) or typed+qerr.
func (f *v2file) factorsFromV2(rows int, scaleIdx, qerrIdx, payloadIdx int, zeroCopy bool) (mat *dense.Mat, typed *dense.Typed, qerr []float64, err error) {
	r := int(f.rank)
	switch f.tier {
	case TierF64:
		// Wrap, don't NewMatFrom: f64Of already returns either the mmap
		// view (zeroCopy) or a fresh decode, and copying here would put
		// every factor entry back on the heap — the exact cost mapping
		// exists to avoid. The view is PROT_READ; queries only read.
		return &dense.Mat{Rows: rows, Cols: r, Data: f.f64Of(payloadIdx, zeroCopy)}, nil, nil, nil
	case TierF32:
		qerr = f.f64Of(qerrIdx, zeroCopy)
		if err := checkQuantVec("qerr", qerr); err != nil {
			return nil, nil, nil, err
		}
		return nil, &dense.Typed{Kind: dense.F32, Rows: rows, Cols: r, F32: f.f32Of(payloadIdx, zeroCopy)}, qerr, nil
	default:
		scale := f.f64Of(scaleIdx, zeroCopy)
		if err := checkQuantVec("scale", scale); err != nil {
			return nil, nil, nil, err
		}
		qerr = f.f64Of(qerrIdx, zeroCopy)
		if err := checkQuantVec("qerr", qerr); err != nil {
			return nil, nil, nil, err
		}
		return nil, &dense.Typed{Kind: dense.I8, Rows: rows, Cols: r, I8: f.i8Of(payloadIdx, zeroCopy), Scale: scale}, qerr, nil
	}
}

// indexRows validates the index-specific header words (iters, reserved).
func indexRows(f *v2file) (uint64, error) {
	if f.w4 > maxIndexIters {
		return 0, fmt.Errorf("core: implausible iteration count %d: %w", f.w4, ErrCorrupt)
	}
	if f.w5 != 0 {
		return 0, fmt.Errorf("core: v2 index reserved word %d: %w", f.w5, ErrCorrupt)
	}
	return f.n, nil
}

// shardRows validates the shard range words and returns the owned rows.
func shardRows(f *v2file) (uint64, error) {
	if f.w4 >= f.w5 || f.w5 > f.n {
		return 0, fmt.Errorf("core: implausible shard range [%d, %d) of n=%d: %w", f.w4, f.w5, f.n, ErrCorrupt)
	}
	if f.n > maxPlatformElems {
		return 0, fmt.Errorf("core: shard global n=%d exceeds platform int: %w", f.n, ErrCorrupt)
	}
	if f.walSeq != 0 {
		return 0, fmt.Errorf("core: v2 shard carries WAL sequence %d: %w", f.walSeq, ErrCorrupt)
	}
	return f.w5 - f.w4, nil
}

// indexFromV2 builds an Index over a parsed v2 image.
func indexFromV2(f *v2file, zeroCopy bool) (*Index, error) {
	sigma := f.f64Of(0, zeroCopy)
	if err := checkSigma(sigma); err != nil {
		return nil, err
	}
	n := int(f.n)
	z, zt, zqerr, err := f.factorsFromV2(n, 1, 3, 5, zeroCopy)
	if err != nil {
		return nil, err
	}
	u, ut, uqerr, err := f.factorsFromV2(n, 2, 4, 6, zeroCopy)
	if err != nil {
		return nil, err
	}
	return &Index{
		n:      n,
		c:      f.c,
		rank:   int(f.rank),
		iters:  int(f.w4),
		walSeq: f.walSeq,
		z:      z,
		u:      u,
		zt:     zt,
		ut:     ut,
		zqerr:  zqerr,
		uqerr:  uqerr,
		sigma:  sigma,
	}, nil
}

// shardFromV2 builds an IndexShard over a parsed v2 image.
func shardFromV2(f *v2file, zeroCopy bool) (*IndexShard, error) {
	rows := int(f.w5 - f.w4)
	z, zt, zqerr, err := f.factorsFromV2(rows, 0, 2, 4, zeroCopy)
	if err != nil {
		return nil, err
	}
	u, ut, uqerr, err := f.factorsFromV2(rows, 1, 3, 5, zeroCopy)
	if err != nil {
		return nil, err
	}
	return &IndexShard{
		n:     int(f.n),
		lo:    int(f.w4),
		hi:    int(f.w5),
		c:     f.c,
		rank:  int(f.rank),
		z:     z,
		u:     u,
		zt:    zt,
		ut:    ut,
		zqerr: zqerr,
		uqerr: uqerr,
	}, nil
}

// decodeIndexV2 is the copying read of a v2 byte image: full validation
// including the factor CRCs, fresh allocations, no mapping to manage.
func decodeIndexV2(data []byte) (*Index, error) {
	f, err := parseV2Header(data, indexMagic, v2IndexSections, indexRows)
	if err != nil {
		return nil, err
	}
	if err := f.verifyFactors(); err != nil {
		return nil, err
	}
	return indexFromV2(f, false)
}

func decodeShardV2(data []byte) (*IndexShard, error) {
	f, err := parseV2Header(data, shardMagic, v2ShardSections, shardRows)
	if err != nil {
		return nil, err
	}
	if err := f.verifyFactors(); err != nil {
		return nil, err
	}
	return shardFromV2(f, false)
}

// sniffVersion peeks the magic and version of a snapshot file without
// consuming the reader.
func sniffVersion(br interface{ Peek(int) ([]byte, error) }) (uint32, error) {
	head, err := br.Peek(8)
	if err != nil {
		return 0, corruptEOF(err)
	}
	return binary.LittleEndian.Uint32(head[4:]), nil
}

// mapFile opens, sizes and maps path read-only, peeking the version
// first so a v1 file reports errMapUnsupported (fall back to decode)
// rather than a v2 parse failure. The returned mapping owns the pages;
// the file descriptor does not outlive the call.
func mapFile(path string) ([]byte, *mapping, error) {
	if !mmapSupported || !nativeLE {
		return nil, nil, fmt.Errorf("%w (platform)", errMapUnsupported)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	// The version peek goes through the injected read site like every
	// other load-time disk read: a degraded disk (or an armed
	// SiteIndexRead plan) fails the mapped load the same way it fails
	// the buffered one — the decode fallback shares the disk, so
	// degrading to it could not help.
	var head [8]byte
	if _, err := io.ReadFull(fault.Reader(fault.SiteIndexRead, f), head[:]); err != nil {
		return nil, nil, fmt.Errorf("core: reading header: %w", corruptEOF(err))
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != indexVersion2 {
		return nil, nil, fmt.Errorf("%w (version %d file)", errMapUnsupported, v)
	}
	fi, err := f.Stat()
	if err != nil {
		// Environmental, not corruption — degrade to the buffered decode
		// like every other unmappable condition in this function.
		return nil, nil, fmt.Errorf("%w (stat: %v)", errMapUnsupported, err)
	}
	if fi.Size() <= 0 || uint64(fi.Size()) > maxPlatformElems {
		return nil, nil, fmt.Errorf("%w (size %d)", errMapUnsupported, fi.Size())
	}
	// An injected map fault models mmap refusal (ulimit, fragmentation):
	// an environmental failure, so it degrades to the decode path rather
	// than failing the load.
	if err := fault.Hit(fault.SiteIndexMap); err != nil {
		return nil, nil, fmt.Errorf("%w (injected: %v)", errMapUnsupported, err)
	}
	data, err := mmapFile(f, fi.Size())
	if err != nil {
		return nil, nil, fmt.Errorf("%w (mmap: %v)", errMapUnsupported, err)
	}
	return data, &mapping{data: data}, nil
}

// MapIndex memory-maps a v2 snapshot and returns an Index whose factor
// matrices are zero-copy views over the mapping: load time is O(1) in
// index size (header and metadata validation plus one CRC pass over the
// factor blocks; use MapIndexLazy to defer even that), pages fault in
// on first access, and RSS is shared with any other mapping of the same
// generation. The caller owns the mapping lifetime: Close the index
// only after every query that might touch it has drained (the serve
// layer's swap guarantees exactly this — see DESIGN.md). Returns
// errMapUnsupported-wrapped errors for v1 files and unmappable
// environments, ErrCorrupt-wrapped for bad bytes.
func MapIndex(path string) (*Index, error) {
	return mapIndexAt(path, true)
}

// MapIndexLazy is MapIndex without the eager factor-block CRC pass —
// true O(1) mapping. The header, section geometry, sigma and
// quantisation metadata are still verified; call VerifyPayload to check
// the factor blocks (e.g. concurrently with warming traffic). Intended
// for callers that can tolerate detecting factor corruption after
// serving starts; LoadIndex and the recovery ladder use the verified
// MapIndex.
func MapIndexLazy(path string) (*Index, error) {
	return mapIndexAt(path, false)
}

func mapIndexAt(path string, verify bool) (*Index, error) {
	data, m, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: MapIndex %s: %w", path, err)
	}
	f, err := parseV2Header(data, indexMagic, v2IndexSections, indexRows)
	if err == nil && verify {
		err = f.verifyFactors()
	}
	var ix *Index
	if err == nil {
		ix, err = indexFromV2(f, true)
	}
	if err != nil {
		m.close()
		return nil, fmt.Errorf("core: MapIndex %s: %w", path, err)
	}
	ix.mapped = m
	ix.mapped.verify = f.verifyFactors
	return ix, nil
}

// VerifyPayload runs the factor-block CRC pass a MapIndexLazy call
// deferred. It is a no-op (nil) for decoded and eagerly-verified
// indexes, idempotent, and safe to call while the index serves.
func (ix *Index) VerifyPayload() error {
	if ix.mapped == nil || ix.mapped.verify == nil {
		return nil
	}
	return ix.mapped.verify()
}

// MapShard is MapIndex for CSRS v2 shard snapshots. The same lifetime
// rules apply; note the in-process shard router swaps slots without a
// drain barrier, so the default shard loading path decodes instead of
// mapping — MapShard is for embedders that manage generation lifetime
// themselves (see DESIGN.md).
func MapShard(path string) (*IndexShard, error) {
	data, m, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: MapShard %s: %w", path, err)
	}
	f, err := parseV2Header(data, shardMagic, v2ShardSections, shardRows)
	if err == nil {
		err = f.verifyFactors()
	}
	var sh *IndexShard
	if err == nil {
		sh, err = shardFromV2(f, true)
	}
	if err != nil {
		m.close()
		return nil, fmt.Errorf("core: MapShard %s: %w", path, err)
	}
	sh.mapped = m
	return sh, nil
}

func writeFloats32(w io.Writer, data []float32) error {
	buf := make([]byte, 4*4096)
	le := binary.LittleEndian
	for len(data) > 0 {
		chunk := len(data)
		if chunk > 4096 {
			chunk = 4096
		}
		for i := 0; i < chunk; i++ {
			le.PutUint32(buf[i*4:], math.Float32bits(data[i]))
		}
		if _, err := w.Write(buf[:chunk*4]); err != nil {
			return err
		}
		data = data[chunk:]
	}
	return nil
}

func writeInt8(w io.Writer, data []int8) error {
	buf := make([]byte, 32768)
	for len(data) > 0 {
		chunk := len(data)
		if chunk > len(buf) {
			chunk = len(buf)
		}
		for i := 0; i < chunk; i++ {
			buf[i] = byte(data[i])
		}
		if _, err := w.Write(buf[:chunk]); err != nil {
			return err
		}
		data = data[chunk:]
	}
	return nil
}

// Package svd implements rank-r truncated singular value decomposition of
// sparse matrices, the substrate CSR+'s precomputation stands on
// (Algorithm 1, line 2). MATLAB supplies this as svds; in stdlib-only Go
// it is built here twice over:
//
//   - Randomized subspace iteration (Halko, Martinsson & Tropp 2011):
//     a Gaussian range sketch refined by power iterations, orthonormalised
//     with Householder QR, finished through the k x k Gram matrix of the
//     projected factor (a Jacobi eigensolve). O(q · r · m) sparse work.
//     This is the default method.
//
//   - Golub–Kahan–Lanczos bidiagonalisation with full reorthogonalisation,
//     finished with a Jacobi SVD of the small projected matrix. Usually
//     more accurate per sparse pass on strongly clustered spectra.
//
// Both methods are deterministic given a seed.
package svd

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"csrplus/internal/dense"
	"csrplus/internal/sparse"
)

// Method selects the truncated SVD driver.
type Method int

const (
	// Randomized selects randomized subspace iteration (the default).
	Randomized Method = iota
	// Lanczos selects Golub–Kahan–Lanczos bidiagonalisation.
	Lanczos
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case Randomized:
		return "randomized"
	case Lanczos:
		return "lanczos"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ErrRank is returned (wrapped) for invalid rank requests.
var ErrRank = errors.New("svd: invalid rank")

// Options tunes the truncated SVD drivers.
type Options struct {
	// Method selects the driver; zero value is Randomized.
	Method Method
	// Oversample is the extra sketch width p beyond the target rank
	// (randomized) or extra Lanczos steps. Default 8.
	Oversample int
	// PowerIters is the number of (A Aᵀ) power refinements for the
	// randomized driver. Default 2.
	PowerIters int
	// Seed makes the Gaussian sketch (and Lanczos start vector)
	// reproducible. The zero seed is a valid fixed seed.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Oversample <= 0 {
		o.Oversample = 8
	}
	if o.PowerIters <= 0 {
		o.PowerIters = 2
	}
	return o
}

// Result holds a rank-r truncated SVD A ≈ U diag(S) Vᵀ with U, V of shape
// n x r (orthonormal columns) and S sorted descending.
type Result struct {
	U *dense.Mat
	S []float64
	V *dense.Mat
}

// Bytes reports the memory footprint of the factors.
func (r *Result) Bytes() int64 {
	return r.U.Bytes() + r.V.Bytes() + int64(len(r.S))*8
}

// Truncated computes the rank-r truncated SVD of the sparse matrix a.
// It returns ErrRank (wrapped) when r < 1 or r exceeds min(rows, cols).
func Truncated(a *sparse.CSR, r int, opts Options) (*Result, error) {
	rows, cols := a.Dims()
	if r < 1 || r > rows || r > cols {
		return nil, fmt.Errorf("svd: rank %d on %dx%d matrix: %w", r, rows, cols, ErrRank)
	}
	opts = opts.withDefaults()
	switch opts.Method {
	case Randomized:
		return randomized(a, r, opts)
	case Lanczos:
		return lanczos(a, r, opts)
	default:
		return nil, fmt.Errorf("svd: unknown method %d", int(opts.Method))
	}
}

// randomized implements Halko et al.'s prototype: sketch, power-iterate,
// orthonormalise, project, small SVD.
func randomized(a *sparse.CSR, r int, opts Options) (*Result, error) {
	rows, cols := a.Dims()
	k := r + opts.Oversample
	if k > cols {
		k = cols
	}
	if k > rows {
		k = rows
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	omega := dense.NewMat(cols, k)
	for i := range omega.Data {
		omega.Data[i] = rng.NormFloat64()
	}
	// Y = A Ω, refined by power iterations with re-orthonormalisation
	// between sparse passes to avoid losing small singular directions.
	y := a.MulDense(omega)
	for it := 0; it < opts.PowerIters; it++ {
		q, err := dense.Orthonormalize(y, 0)
		if err != nil {
			return nil, fmt.Errorf("svd: randomized power iteration %d: %w", it, err)
		}
		y = a.MulDense(a.MulDenseT(q))
	}
	q, err := dense.Orthonormalize(y, 0)
	if err != nil {
		return nil, fmt.Errorf("svd: randomized range finder: %w", err)
	}
	// B = Qᵀ A, computed as (Aᵀ Q)ᵀ so the sparse pass stays row-major.
	bt := a.MulDenseT(q) // cols x k
	// Finish through the k x k Gram matrix G = B Bᵀ = btᵀ bt: its
	// eigendecomposition G = Z diag(σ²) Zᵀ gives A ≈ (Q Z) Σ (bt Z Σ⁻¹)ᵀ.
	// One O(n k²) pass plus an O(k³) Jacobi — far cheaper than a Jacobi
	// SVD of the n x k factor at the large ranks Table 3 sweeps.
	gram := dense.TMul(bt, bt)
	evals, z, err := dense.SymEig(gram)
	if err != nil {
		return nil, fmt.Errorf("svd: randomized Gram eigensolve: %w", err)
	}
	s := make([]float64, len(evals))
	for i, ev := range evals {
		if ev > 0 {
			s[i] = math.Sqrt(ev)
		}
	}
	u := dense.Mul(q, z)
	v := dense.Mul(bt, z)
	// Normalise V's columns by σ; zero-σ directions carry no mass.
	for j := 0; j < v.Cols; j++ {
		if s[j] == 0 {
			for i := 0; i < v.Rows; i++ {
				v.Set(i, j, 0)
			}
			continue
		}
		inv := 1 / s[j]
		for i := 0; i < v.Rows; i++ {
			v.Set(i, j, v.At(i, j)*inv)
		}
	}
	return truncate(u, s, v, r), nil
}

// lanczos implements Golub–Kahan bidiagonalisation with full
// reorthogonalisation of both Krylov bases.
func lanczos(a *sparse.CSR, r int, opts Options) (*Result, error) {
	rows, cols := a.Dims()
	steps := r + opts.Oversample
	if steps > rows {
		steps = rows
	}
	if steps > cols {
		steps = cols
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Right Krylov basis V (cols x steps), left basis U (rows x steps),
	// bidiagonal alphas (diag) and betas (superdiag).
	vBasis := make([][]float64, 0, steps)
	uBasis := make([][]float64, 0, steps)
	alphas := make([]float64, 0, steps)
	betas := make([]float64, 0, steps)

	v := make([]float64, cols)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	normalise(v)
	u := make([]float64, rows)
	var beta float64
	for j := 0; j < steps; j++ {
		vBasis = append(vBasis, append([]float64(nil), v...))
		// u_j = A v_j - beta_{j-1} u_{j-1}
		au := a.MulVec(v, nil)
		if j > 0 {
			dense.Axpy(-beta, u, au)
		}
		reorthogonalise(au, uBasis)
		alpha := dense.Norm2(au)
		if alpha < 1e-14 {
			// Invariant subspace found: restart with a fresh random
			// direction orthogonal to the basis.
			for i := range au {
				au[i] = rng.NormFloat64()
			}
			reorthogonalise(au, uBasis)
			if n := dense.Norm2(au); n < 1e-14 {
				break
			} else {
				dense.ScaleVec(1/n, au)
			}
			alpha = 0
		} else {
			dense.ScaleVec(1/alpha, au)
		}
		u = au
		uBasis = append(uBasis, append([]float64(nil), u...))
		alphas = append(alphas, alpha)
		// v_{j+1} = Aᵀ u_j - alpha_j v_j
		av := a.MulVecT(u, nil)
		dense.Axpy(-alpha, v, av)
		reorthogonalise(av, vBasis)
		beta = dense.Norm2(av)
		if beta < 1e-14 {
			betas = append(betas, 0)
			break
		}
		dense.ScaleVec(1/beta, av)
		v = av
		betas = append(betas, beta)
	}
	k := len(alphas)
	if k == 0 {
		// Zero matrix: all singular values are 0.
		res := &Result{U: dense.NewMat(rows, r), S: make([]float64, r), V: dense.NewMat(cols, r)}
		return res, nil
	}
	// Small bidiagonal B (k x k): B[i][i] = alpha_i, B[i][i+1] = beta_i.
	b := dense.NewMat(k, k)
	for i := 0; i < k; i++ {
		b.Set(i, i, alphas[i])
		if i+1 < k && i < len(betas) {
			b.Set(i, i+1, betas[i])
		}
	}
	small, err := dense.SVDJacobi(b)
	if err != nil {
		return nil, fmt.Errorf("svd: lanczos small SVD: %w", err)
	}
	// A ≈ U_k B V_kᵀ = (U_k W) Σ (V_k Z)ᵀ.
	uk := basisMat(uBasis, rows, k)
	vk := basisMat(vBasis, cols, k)
	return truncate(dense.Mul(uk, small.U), small.S, dense.Mul(vk, small.V), r), nil
}

// truncate keeps the leading r singular triplets. When the driver found
// fewer than r triplets (early Lanczos breakdown on a low-rank or zero
// matrix), the remainder is zero-padded: the missing directions carry
// singular value 0 and contribute nothing downstream.
func truncate(u *dense.Mat, s []float64, v *dense.Mat, r int) *Result {
	res := &Result{U: dense.NewMat(u.Rows, r), S: make([]float64, r), V: dense.NewMat(v.Rows, r)}
	k := len(s)
	if k > r {
		k = r
	}
	copy(res.S, s[:k])
	for i := 0; i < u.Rows; i++ {
		copy(res.U.Row(i), u.Row(i)[:k])
	}
	for i := 0; i < v.Rows; i++ {
		copy(res.V.Row(i), v.Row(i)[:k])
	}
	return res
}

// reorthogonalise removes from x its components along every basis vector
// (two classical Gram-Schmidt passes — "twice is enough").
func reorthogonalise(x []float64, basis [][]float64) {
	for pass := 0; pass < 2; pass++ {
		for _, b := range basis {
			dense.Axpy(-dense.Dot(b, x), b, x)
		}
	}
}

func normalise(x []float64) {
	if n := dense.Norm2(x); n > 0 {
		dense.ScaleVec(1/n, x)
	}
}

func basisMat(basis [][]float64, n, k int) *dense.Mat {
	m := dense.NewMat(n, k)
	for j := 0; j < k && j < len(basis); j++ {
		for i := 0; i < n; i++ {
			m.Set(i, j, basis[j][i])
		}
	}
	return m
}

package svd

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"csrplus/internal/dense"
	"csrplus/internal/sparse"
)

// lowRankCSR builds a sparse-ish matrix of exact rank k as a sum of k
// outer products, returning both the CSR and dense forms.
func lowRankCSR(rng *rand.Rand, n, k int) (*sparse.CSR, *dense.Mat) {
	ref := dense.NewMat(n, n)
	for t := 0; t < k; t++ {
		u := make([]float64, n)
		v := make([]float64, n)
		for i := range u {
			u[i] = rng.NormFloat64()
			v[i] = rng.NormFloat64()
		}
		w := float64(k - t) // descending weights → distinct singular values
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ref.Set(i, j, ref.At(i, j)+w*u[i]*v[j])
			}
		}
	}
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := ref.At(i, j); v != 0 {
				if err := coo.Add(i, j, v); err != nil {
					panic(err)
				}
			}
		}
	}
	return coo.ToCSR(), ref
}

// randomSparse builds a random sparse matrix and its dense mirror.
func randomSparse(rng *rand.Rand, n int, density float64) (*sparse.CSR, *dense.Mat) {
	coo := sparse.NewCOO(n, n)
	ref := dense.NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				v := rng.NormFloat64()
				if err := coo.Add(i, j, v); err != nil {
					panic(err)
				}
				ref.Set(i, j, v)
			}
		}
	}
	return coo.ToCSR(), ref
}

func checkFactors(t *testing.T, res *Result, n, r int) {
	t.Helper()
	if !res.U.IsShape(n, r) || !res.V.IsShape(n, r) || len(res.S) != r {
		t.Fatalf("factor shapes U%dx%d S%d V%dx%d, want n=%d r=%d",
			res.U.Rows, res.U.Cols, len(res.S), res.V.Rows, res.V.Cols, n, r)
	}
	if g := dense.TMul(res.U, res.U); !g.Equal(dense.Eye(r), 1e-8) {
		t.Fatalf("U not orthonormal (dev %g)", g.Sub(dense.Eye(r)).MaxAbs())
	}
	if g := dense.TMul(res.V, res.V); !g.Equal(dense.Eye(r), 1e-8) {
		t.Fatalf("V not orthonormal (dev %g)", g.Sub(dense.Eye(r)).MaxAbs())
	}
	for i := 1; i < r; i++ {
		if res.S[i] > res.S[i-1]+1e-10 {
			t.Fatalf("S not sorted: %v", res.S)
		}
	}
}

func TestTruncatedExactRankRecovery(t *testing.T) {
	for _, method := range []Method{Randomized, Lanczos} {
		t.Run(method.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(30))
			a, ref := lowRankCSR(rng, 40, 4)
			res, err := Truncated(a, 4, Options{Method: method})
			if err != nil {
				t.Fatal(err)
			}
			checkFactors(t, res, 40, 4)
			recon := dense.Mul(dense.Mul(res.U, dense.Diag(res.S)), res.V.T())
			if !recon.Equal(ref, 1e-6*ref.MaxAbs()) {
				t.Fatalf("rank-4 matrix not recovered exactly (maxdiff %g)",
					recon.Sub(ref).MaxAbs())
			}
		})
	}
}

func TestTruncatedLeadingSingularValues(t *testing.T) {
	// On a general matrix, the truncated S must match the top of the full
	// dense SVD spectrum.
	rng := rand.New(rand.NewSource(31))
	a, ref := randomSparse(rng, 30, 0.4)
	full, err := dense.SVDJacobi(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []Method{Randomized, Lanczos} {
		t.Run(method.String(), func(t *testing.T) {
			res, err := Truncated(a, 5, Options{Method: method, Oversample: 12, PowerIters: 6})
			if err != nil {
				t.Fatal(err)
			}
			checkFactors(t, res, 30, 5)
			for i := 0; i < 5; i++ {
				if rel := math.Abs(res.S[i]-full.S[i]) / full.S[0]; rel > 1e-4 {
					t.Fatalf("S[%d] = %v, want %v (rel err %g)", i, res.S[i], full.S[i], rel)
				}
			}
		})
	}
}

func TestTruncatedColumnStochastic(t *testing.T) {
	// The actual CSR+ workload: column-normalised adjacency of a random
	// directed graph. Check the rank-r factors give the best rank-r
	// Frobenius error within a modest factor of optimal.
	rng := rand.New(rand.NewSource(32))
	n := 60
	coo := sparse.NewCOO(n, n)
	ref := dense.NewMat(n, n)
	for j := 0; j < n; j++ {
		deg := 1 + rng.Intn(5)
		seen := map[int]bool{}
		for d := 0; d < deg; d++ {
			i := rng.Intn(n)
			if seen[i] {
				continue
			}
			seen[i] = true
		}
		for i := range seen {
			v := 1 / float64(len(seen))
			if err := coo.Add(i, j, v); err != nil {
				panic(err)
			}
			ref.Set(i, j, v)
		}
	}
	a := coo.ToCSR()
	full, err := dense.SVDJacobi(ref)
	if err != nil {
		t.Fatal(err)
	}
	r := 8
	optimal := 0.0
	for i := r; i < n; i++ {
		optimal += full.S[i] * full.S[i]
	}
	optimal = math.Sqrt(optimal)
	for _, method := range []Method{Randomized, Lanczos} {
		res, err := Truncated(a, r, Options{Method: method, Oversample: 10, PowerIters: 4})
		if err != nil {
			t.Fatal(err)
		}
		recon := dense.Mul(dense.Mul(res.U, dense.Diag(res.S)), res.V.T())
		got := recon.Sub(ref).FrobNorm()
		if got > optimal*1.1+1e-10 {
			t.Fatalf("%v: rank-%d error %g, optimal %g", method, r, got, optimal)
		}
	}
}

func TestTruncatedRankErrors(t *testing.T) {
	a := sparse.NewCOO(5, 5).ToCSR()
	for _, r := range []int{0, -1, 6} {
		if _, err := Truncated(a, r, Options{}); !errors.Is(err, ErrRank) {
			t.Fatalf("rank %d: err = %v, want ErrRank", r, err)
		}
	}
}

func TestTruncatedUnknownMethod(t *testing.T) {
	a := sparse.NewCOO(5, 5).ToCSR()
	if _, err := Truncated(a, 2, Options{Method: Method(99)}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if Method(99).String() == "" {
		t.Fatal("Method.String empty")
	}
}

func TestTruncatedZeroMatrix(t *testing.T) {
	a := sparse.NewCOO(10, 10).ToCSR()
	for _, method := range []Method{Randomized, Lanczos} {
		res, err := Truncated(a, 3, Options{Method: method})
		if err != nil {
			t.Fatalf("%v on zero matrix: %v", method, err)
		}
		for _, s := range res.S {
			if s > 1e-10 {
				t.Fatalf("%v: zero matrix has singular value %g", method, s)
			}
		}
	}
}

func TestTruncatedDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a, _ := randomSparse(rng, 25, 0.3)
	for _, method := range []Method{Randomized, Lanczos} {
		r1, err := Truncated(a, 4, Options{Method: method, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Truncated(a, 4, Options{Method: method, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if !r1.U.Equal(r2.U, 0) || !r1.V.Equal(r2.V, 0) {
			t.Fatalf("%v: same seed produced different factors", method)
		}
	}
}

func TestResultBytes(t *testing.T) {
	res := &Result{U: dense.NewMat(10, 3), S: make([]float64, 3), V: dense.NewMat(10, 3)}
	want := int64(10*3*8 + 3*8 + 10*3*8)
	if res.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", res.Bytes(), want)
	}
}

func TestTruncatedRectangular(t *testing.T) {
	// Non-square inputs (tall and wide) must work in both drivers.
	rng := rand.New(rand.NewSource(34))
	for _, dims := range [][2]int{{40, 25}, {25, 40}} {
		coo := sparse.NewCOO(dims[0], dims[1])
		ref := dense.NewMat(dims[0], dims[1])
		for i := 0; i < dims[0]; i++ {
			for j := 0; j < dims[1]; j++ {
				if rng.Float64() < 0.3 {
					v := rng.NormFloat64()
					if err := coo.Add(i, j, v); err != nil {
						panic(err)
					}
					ref.Set(i, j, v)
				}
			}
		}
		a := coo.ToCSR()
		full, err := dense.SVDJacobi(tallOf(ref))
		if err != nil {
			t.Fatal(err)
		}
		for _, method := range []Method{Randomized, Lanczos} {
			res, err := Truncated(a, 4, Options{Method: method, Oversample: 10, PowerIters: 5})
			if err != nil {
				t.Fatalf("%v %v: %v", method, dims, err)
			}
			if !res.U.IsShape(dims[0], 4) || !res.V.IsShape(dims[1], 4) {
				t.Fatalf("%v: factor shapes %dx%d / %dx%d", method,
					res.U.Rows, res.U.Cols, res.V.Rows, res.V.Cols)
			}
			for i := 0; i < 4; i++ {
				// Interior values converge last; 0.5% of S[0] is the
				// realistic bar at this few-step budget.
				if rel := math.Abs(res.S[i]-full.S[i]) / full.S[0]; rel > 5e-3 {
					t.Fatalf("%v %v: S[%d]=%v want %v", method, dims, i, res.S[i], full.S[i])
				}
			}
		}
	}
}

// tallOf transposes wide matrices so the dense reference SVD (rows >=
// cols) applies; singular values are transpose-invariant.
func tallOf(m *dense.Mat) *dense.Mat {
	if m.Rows >= m.Cols {
		return m
	}
	return m.T()
}

package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"

	"csrplus/internal/auth"
	"csrplus/internal/core"
	"csrplus/internal/dense"
	"csrplus/internal/reload"
	"csrplus/internal/shard"
)

// maxBody bounds a worker request body: the largest legitimate payload is
// a /shard/query UQ broadcast (|Q| x rank float64s), which at the serving
// batch sizes is kilobytes. 64 MiB leaves three orders of magnitude of
// headroom while keeping a confused client from ballooning worker memory.
const maxBody = 64 << 20

// WorkerConfig configures one shard worker process.
type WorkerConfig struct {
	// Shard is the slot index this worker serves (its snapshot dir is
	// <snapshots>/shard-<Shard>).
	Shard int
	// SnapshotDir is the worker's own shard-<s> snapshot directory —
	// where Reload looks for the next generation.
	SnapshotDir string
	// AdminToken authenticates POST /admin/reload. Empty disables the
	// endpoint (403), matching csrserver's monolithic admin surface.
	AdminToken string
	// Log receives worker lifecycle lines; nil uses the standard logger.
	Log *log.Logger
}

// Worker serves one core.IndexShard over HTTP behind the same
// atomic-generation slot an in-process router uses, so a reload swaps
// factors under in-flight requests with identical semantics: requests
// resolve the generation once at entry and finish on it.
type Worker struct {
	cfg  WorkerConfig
	slot *shard.Local

	reloadMu sync.Mutex // serialises Reload's load→validate→swap
	snapGen  uint64     // snapshot generation serving; guarded by reloadMu
}

// NewWorker wraps an already-loaded shard. snapGen names the snapshot
// generation it came from (0 when built in process).
func NewWorker(sh *core.IndexShard, snapGen uint64, cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg, slot: shard.NewLocal(sh), snapGen: snapGen}
}

// BootWorker recovers the newest loadable snapshot from cfg.SnapshotDir
// (core.RecoverShardSnapshot's fallback ladder), validates it, and
// returns a serving worker.
func BootWorker(cfg WorkerConfig) (*Worker, error) {
	sh, snap, recovered, err := core.RecoverShardSnapshot(cfg.SnapshotDir)
	if err != nil {
		return nil, fmt.Errorf("wire: booting shard %d from %s: %w", cfg.Shard, cfg.SnapshotDir, err)
	}
	if err := reload.ValidateShard(sh); err != nil {
		return nil, fmt.Errorf("wire: booting shard %d: %w", cfg.Shard, err)
	}
	if recovered {
		logf(cfg.Log, "shard %d: recovered to snapshot generation %d (CURRENT was not loadable)", cfg.Shard, snap.Gen)
	}
	return NewWorker(sh, snap.Gen, cfg), nil
}

// Slot exposes the worker's slot for in-process embedding (tests, and a
// future hybrid local+remote deployment).
func (w *Worker) Slot() *shard.Local { return w.slot }

// Reload loads the newest snapshot from the worker's directory, validates
// it against the serving slot's shape, and swaps it in. A reload that
// fails at any stage leaves the old generation serving — the same
// guarantee reload.RollShards gives an in-process slot.
func (w *Worker) Reload() (ReloadResponse, error) {
	w.reloadMu.Lock()
	defer w.reloadMu.Unlock()
	sh, snap, recovered, err := core.RecoverShardSnapshot(w.cfg.SnapshotDir)
	if err != nil {
		return ReloadResponse{}, fmt.Errorf("wire: reloading shard %d: %w", w.cfg.Shard, err)
	}
	cur, _ := w.slot.Current()
	if sh.N() != cur.N() || sh.Lo() != cur.Lo() || sh.Hi() != cur.Hi() || sh.Rank() != cur.Rank() || sh.Damping() != cur.Damping() {
		return ReloadResponse{}, fmt.Errorf("wire: shard %d snapshot covers [%d, %d) of n=%d r=%d, serving [%d, %d) of n=%d r=%d: %w",
			w.cfg.Shard, sh.Lo(), sh.Hi(), sh.N(), sh.Rank(), cur.Lo(), cur.Hi(), cur.N(), cur.Rank(), shard.ErrShard)
	}
	if err := reload.ValidateShard(sh); err != nil {
		return ReloadResponse{}, fmt.Errorf("wire: reloading shard %d: %w", w.cfg.Shard, err)
	}
	gen := w.slot.Swap(sh)
	w.snapGen = snap.Gen
	logf(w.cfg.Log, "shard %d: serving generation %d (snapshot %d%s)", w.cfg.Shard, gen, snap.Gen,
		map[bool]string{true: ", recovered", false: ""}[recovered])
	return ReloadResponse{Generation: gen, SnapshotGen: snap.Gen, Recovered: recovered}, nil
}

// Handler returns the worker's HTTP surface.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", w.handleHealth)
	mux.HandleFunc("/readyz", w.handleHealth)
	mux.HandleFunc("/shard/meta", w.handleMeta)
	mux.HandleFunc("/shard/urows", w.handleURows)
	mux.HandleFunc("/shard/query", w.handleQuery)
	mux.HandleFunc("/shard/scores", w.handleScores)
	mux.HandleFunc("/admin/reload", w.handleReload)
	return mux
}

func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	// A constructed worker always has a serving generation (boot fails
	// otherwise), so liveness and readiness coincide; /readyz still
	// exists separately so orchestration configured against the
	// monolithic csrserver surface works unchanged.
	writeJSON(rw, http.StatusOK, ReadyResponse{Status: "ok", Shard: w.cfg.Shard, Generation: w.slot.Generation()})
}

func (w *Worker) handleMeta(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(rw, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	sh, gen := w.slot.Current()
	zmax, umax := sh.ColMaxes()
	zerr, uerr := sh.QuantErrs()
	writeJSON(rw, http.StatusOK, MetaResponse{
		N: sh.N(), Lo: sh.Lo(), Hi: sh.Hi(), Rank: sh.Rank(), Damping: sh.Damping(),
		Generation: gen, Bytes: sh.Bytes(), Tier: sh.Tier().String(),
		ZMax: zmax, UMax: umax, ZErr: zerr, UErr: uerr,
	})
}

func (w *Worker) handleURows(rw http.ResponseWriter, r *http.Request) {
	var req URowsRequest
	if !readJSON(rw, r, &req) {
		return
	}
	sh, gen := w.slot.Current()
	if len(req.Nodes) == 0 {
		writeError(rw, http.StatusBadRequest, errors.New("empty node set"))
		return
	}
	rows := make([]float64, 0, len(req.Nodes)*sh.Rank())
	for _, q := range req.Nodes {
		if !sh.Owns(q) {
			writeError(rw, http.StatusBadRequest, fmt.Errorf("node %d outside shard [%d, %d)", q, sh.Lo(), sh.Hi()))
			return
		}
		rows = append(rows, sh.URow(q)...)
	}
	writeJSON(rw, http.StatusOK, URowsResponse{Generation: gen, Rows: rows})
}

// decodeUQ validates and shapes the query broadcast common to /shard/query
// and /shard/scores.
func decodeUQ(sh *core.IndexShard, queries []int, uq F64s) (*dense.Mat, error) {
	if len(queries) == 0 {
		return nil, errors.New("empty query set")
	}
	for _, q := range queries {
		if q < 0 || q >= sh.N() {
			return nil, fmt.Errorf("query node %d not in [0, %d)", q, sh.N())
		}
	}
	if len(uq) != len(queries)*sh.Rank() {
		return nil, fmt.Errorf("uq has %d floats, want %d (|Q|=%d x r=%d)", len(uq), len(queries)*sh.Rank(), len(queries), sh.Rank())
	}
	return dense.NewMatFrom(len(queries), sh.Rank(), uq), nil
}

func (w *Worker) handleQuery(rw http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !readJSON(rw, r, &req) {
		return
	}
	sh, gen := w.slot.Current()
	uq, err := decodeUQ(sh, req.Queries, req.UQ)
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	if req.K < 1 {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("k must be >= 1, got %d", req.K))
		return
	}
	items, err := shard.PartialTopK(r.Context(), sh, req.Queries, uq, req.K, req.Rank)
	if err != nil {
		writeError(rw, http.StatusInternalServerError, err)
		return
	}
	resp := QueryResponse{Generation: gen, Nodes: make([]int, len(items)), Scores: make(F64s, len(items))}
	for i, it := range items {
		resp.Nodes[i] = it.Node
		resp.Scores[i] = it.Score
	}
	writeJSON(rw, http.StatusOK, resp)
}

func (w *Worker) handleScores(rw http.ResponseWriter, r *http.Request) {
	var req ScoresRequest
	if !readJSON(rw, r, &req) {
		return
	}
	sh, gen := w.slot.Current()
	uq, err := decodeUQ(sh, req.Queries, req.UQ)
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	scores, err := sh.ScoreRows(r.Context(), req.Queries, uq, req.Rows, req.Rank)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, core.ErrParams) || errors.Is(err, core.ErrQuery) {
			code = http.StatusBadRequest
		}
		writeError(rw, code, err)
		return
	}
	writeJSON(rw, http.StatusOK, ScoresResponse{Generation: gen, Scores: scores})
}

func (w *Worker) handleReload(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(rw, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	if !auth.Require(rw, r, w.cfg.AdminToken, func(rw http.ResponseWriter, status int, msg string) {
		writeError(rw, status, errors.New(msg))
	}) {
		return
	}
	resp, err := w.Reload()
	if err != nil {
		writeError(rw, http.StatusInternalServerError, err)
		return
	}
	writeJSON(rw, http.StatusOK, resp)
}

func readJSON(rw http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeError(rw, http.StatusMethodNotAllowed, errors.New("POST only"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, maxBody))
	if err := dec.Decode(dst); err != nil {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

func writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	_ = json.NewEncoder(rw).Encode(v)
}

func writeError(rw http.ResponseWriter, code int, err error) {
	writeJSON(rw, code, ErrorResponse{Error: err.Error()})
}

func logf(l *log.Logger, format string, args ...any) {
	if l != nil {
		l.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

package wire_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"csrplus"

	"csrplus/internal/core"
	"csrplus/internal/shard"
	"csrplus/internal/wire"
)

const tN, tRank = 101, 4

func randomGraph(t testing.TB, n int, seed int64) *csrplus.Graph {
	t.Helper()
	edges := make([][2]int, 0, 4*n)
	state := uint64(seed)*2654435761 + 1
	next := func(m int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(m))
	}
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
		for e := 0; e < 3; e++ {
			edges = append(edges, [2]int{next(n), next(n)})
		}
	}
	g, err := csrplus.NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testEngineIndex(t testing.TB, seed int64) (*csrplus.Engine, *core.Index) {
	t.Helper()
	eng, err := csrplus.NewEngine(randomGraph(t, tN, seed), csrplus.Options{Rank: tRank})
	if err != nil {
		t.Fatal(err)
	}
	ix, ok := eng.CoreIndex()
	if !ok {
		t.Fatal("CSR+ engine without a core index")
	}
	return eng, ix
}

// startWorkers splits ix into k shards, serves each behind an httptest
// server, and returns the servers plus the in-process shards for
// reference routers.
func startWorkers(t testing.TB, ix *core.Index, k int) ([]*httptest.Server, []*core.IndexShard) {
	t.Helper()
	shards, err := shard.Split(ix, k)
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*httptest.Server, k)
	for s := range shards {
		w := wire.NewWorker(shards[s], 0, wire.WorkerConfig{Shard: s})
		servers[s] = httptest.NewServer(w.Handler())
		t.Cleanup(servers[s].Close)
	}
	return servers, shards
}

// testOptions returns client options tuned for tests: deterministic
// jitter, no hedging (tests that want it opt back in), no breaker.
func testOptions() wire.Options {
	return wire.Options{
		Timeout:       30 * time.Second,
		MaxAttempts:   1,
		HedgeQuantile: -1,
		Seed:          1,
	}
}

func dialAll(t testing.TB, servers []*httptest.Server, opt wire.Options) ([]*wire.RemoteEngine, []shard.Slot) {
	t.Helper()
	engines := make([]*wire.RemoteEngine, len(servers))
	slots := make([]shard.Slot, len(servers))
	for i, srv := range servers {
		o := opt
		o.Shard = i
		e, err := wire.Dial(context.Background(), srv.URL, o)
		if err != nil {
			t.Fatal(err)
		}
		engines[i], slots[i] = e, e
	}
	return engines, slots
}

func wireRouter(t testing.TB, servers []*httptest.Server, opt wire.Options) (*shard.Router, []*wire.RemoteEngine) {
	t.Helper()
	engines, slots := dialAll(t, servers, opt)
	rt, err := shard.NewRouterSlots(slots)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.PrimeBound(); err != nil {
		t.Fatal(err)
	}
	return rt, engines
}

func TestF64sRoundTrip(t *testing.T) {
	in := wire.F64s{0, 1, -1, 0.1, math.Pi, math.Inf(1), math.Inf(-1), math.NaN(),
		math.SmallestNonzeroFloat64, -math.MaxFloat64, math.Float64frombits(0x0000000000000001)}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out wire.F64s
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if math.Float64bits(out[i]) != math.Float64bits(in[i]) {
			t.Fatalf("element %d: %x != %x", i, math.Float64bits(out[i]), math.Float64bits(in[i]))
		}
	}
	var bad wire.F64s
	if err := json.Unmarshal([]byte(`"AAA="`), &bad); err == nil {
		t.Fatal("payload not a multiple of 8 bytes decoded without error")
	}
}

// TestWireRouterMatchesMonolithic is the wire-split equivalence property:
// a router over HTTP shard workers answers bitwise-identically to the
// in-process router over the same shards and to the monolithic engine —
// top-k at several k, truncated ranks, and targeted scores.
func TestWireRouterMatchesMonolithic(t *testing.T) {
	eng, ix := testEngineIndex(t, 1)
	querySets := [][]int{{7}, {0}, {tN - 1}, {0, tN - 1}, {13, 42, 99}, {3, 50, 50, 77}}
	targets := []int{0, 1, 17, 50, tN - 1}
	ctx := context.Background()
	for _, k := range []int{1, 4} {
		servers, shards := startWorkers(t, ix, k)
		local, err := shard.NewRouter(shards)
		if err != nil {
			t.Fatal(err)
		}
		remote, _ := wireRouter(t, servers, testOptions())
		for _, queries := range querySets {
			for _, topN := range []int{1, 10, tN} {
				for _, rank := range []int{0, 2} {
					want, err := local.TopKRank(ctx, queries, topN, rank)
					if err != nil {
						t.Fatal(err)
					}
					got, err := remote.TopKTagged(ctx, queries, topN, rank)
					if err != nil {
						t.Fatal(err)
					}
					if got.Missing != 0 || got.ErrorBound != 0 {
						t.Fatalf("K=%d healthy cluster tagged missing=%d bound=%v", k, got.Missing, got.ErrorBound)
					}
					if len(got.Items) != len(want) {
						t.Fatalf("K=%d queries=%v k=%d rank=%d: %d items, want %d", k, queries, topN, rank, len(got.Items), len(want))
					}
					for i := range want {
						if got.Items[i] != want[i] {
							t.Fatalf("K=%d queries=%v k=%d rank=%d item %d: got (%d, %x), want (%d, %x)",
								k, queries, topN, rank, i,
								got.Items[i].Node, math.Float64bits(got.Items[i].Score),
								want[i].Node, math.Float64bits(want[i].Score))
						}
					}
				}
			}
			// Single-query top-k must also match the monolithic engine.
			if len(queries) == 1 {
				want, err := eng.TopK(queries[0], 10)
				if err != nil {
					t.Fatal(err)
				}
				got, err := remote.TopKTagged(ctx, queries, 10, 0)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got.Items[i].Node != want[i].Node || got.Items[i].Score != want[i].Score {
						t.Fatalf("K=%d q=%d item %d differs from monolithic engine", k, queries[0], i)
					}
				}
			}
			for _, rank := range []int{0, 2} {
				want, err := local.Scores(ctx, queries, targets, rank)
				if err != nil {
					t.Fatal(err)
				}
				got, err := remote.Scores(ctx, queries, targets, rank)
				if err != nil {
					t.Fatal(err)
				}
				if !got.IsShape(want.Rows, want.Cols) {
					t.Fatalf("K=%d scores shape %dx%d, want %dx%d", k, got.Rows, got.Cols, want.Rows, want.Cols)
				}
				for i := range want.Data {
					if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
						t.Fatalf("K=%d queries=%v rank=%d: score %d differs over the wire", k, queries, rank, i)
					}
				}
			}
		}
		// Bounds fetched over the wire must equal the in-process ones.
		for rank := 0; rank <= tRank; rank++ {
			if got, want := remote.TruncationBound(rank), local.TruncationBound(rank); got != want {
				t.Fatalf("K=%d TruncationBound(%d) = %v, want %v", k, rank, got, want)
			}
		}
		if got, want := remote.MissingShardBound(), local.MissingShardBound(); got != want || got <= 0 {
			t.Fatalf("K=%d MissingShardBound = %v, want %v (> 0)", k, got, want)
		}
	}
}

// TestWireRejectsColumnPath pins the payload contract: no n x |Q| column
// matrix crosses the wire, so the router's column entry point fails on
// remote slots instead of silently shipping gigabytes.
func TestWireRejectsColumnPath(t *testing.T) {
	_, ix := testEngineIndex(t, 1)
	servers, _ := startWorkers(t, ix, 2)
	rt, _ := wireRouter(t, servers, testOptions())
	if _, err := rt.QueryRankInto(context.Background(), []int{3}, 0, nil); err == nil {
		t.Fatal("column scatter over the wire succeeded; it must be rejected")
	}
}

func TestWorkerAuthAndValidation(t *testing.T) {
	_, ix := testEngineIndex(t, 1)
	shards, err := shard.Split(ix, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := wire.NewWorker(shards[0], 0, wire.WorkerConfig{Shard: 0, AdminToken: "sesame"})
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	post := func(path, auth string, body string) int {
		req, err := http.NewRequest(http.MethodPost, srv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/admin/reload", "", ""); code != http.StatusUnauthorized {
		t.Fatalf("reload without token: %d, want 401", code)
	}
	if code := post("/admin/reload", "Bearer wrong", ""); code != http.StatusForbidden {
		t.Fatalf("reload with bad token: %d, want 403", code)
	}
	// The right token passes auth; the reload itself fails (no snapshot
	// dir behind this worker), which must surface as 500, not an auth code.
	if code := post("/admin/reload", "Bearer sesame", ""); code != http.StatusInternalServerError {
		t.Fatalf("authorised reload with no snapshots: %d, want 500", code)
	}
	noAuth := wire.NewWorker(shards[0], 0, wire.WorkerConfig{Shard: 0})
	srv2 := httptest.NewServer(noAuth.Handler())
	defer srv2.Close()
	req, _ := http.NewRequest(http.MethodPost, srv2.URL+"/admin/reload", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("reload with admin disabled: %d, want 403", resp.StatusCode)
	}

	// Request validation: un-owned node, bad UQ shape, bad k, bad method.
	lo, hi := shards[0].Lo(), shards[0].Hi()
	if code := post("/shard/urows", "", `{"nodes":[`+itoa(hi)+`]}`); code != http.StatusBadRequest {
		t.Fatalf("urows outside [%d, %d): %d, want 400", lo, hi, code)
	}
	if code := post("/shard/query", "", `{"queries":[1],"uq":"","k":3}`); code != http.StatusBadRequest {
		t.Fatalf("query with empty uq: %d, want 400", code)
	}
	if code := post("/shard/query", "", `{"queries":[],"k":3}`); code != http.StatusBadRequest {
		t.Fatalf("query with no queries: %d, want 400", code)
	}
	getResp, err := http.Get(srv.URL + "/shard/query")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /shard/query: %d, want 405", getResp.StatusCode)
	}
	// Health endpoints are always live once the worker is constructed.
	for _, p := range []string{"/healthz", "/readyz"} {
		hr, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		var ready wire.ReadyResponse
		if err := json.NewDecoder(hr.Body).Decode(&ready); err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if hr.StatusCode != http.StatusOK || ready.Status != "ok" || ready.Generation != 1 {
			t.Fatalf("%s: %d %+v", p, hr.StatusCode, ready)
		}
	}
}

func itoa(v int) string {
	raw, _ := json.Marshal(v)
	return string(raw)
}

// TestRollWorkersSnapshotLifecycle walks the full remote-roll contract:
// snapshot-booted workers, a publish + RollWorkers moving every worker to
// the new generation (and the router's answers to the new factors), and
// an abort-on-first-failure partial roll leaving a mixed but serving
// cluster.
func TestRollWorkersSnapshotLifecycle(t *testing.T) {
	_, ixA := testEngineIndex(t, 1)
	engB, ixB := testEngineIndex(t, 2)
	const k = 3
	shardsA, err := shard.Split(ixA, k)
	if err != nil {
		t.Fatal(err)
	}
	dirs := make([]string, k)
	servers := make([]*httptest.Server, k)
	workers := make([]*wire.Worker, k)
	root := t.TempDir()
	for s, sh := range shardsA {
		dirs[s] = core.ShardDir(root, s)
		if _, _, err := core.WriteShardSnapshot(dirs[s], sh); err != nil {
			t.Fatal(err)
		}
		w, err := wire.BootWorker(wire.WorkerConfig{Shard: s, SnapshotDir: dirs[s], AdminToken: "sesame"})
		if err != nil {
			t.Fatal(err)
		}
		workers[s] = w
		servers[s] = httptest.NewServer(w.Handler())
		t.Cleanup(servers[s].Close)
	}
	opt := testOptions()
	opt.AdminToken = "sesame"
	rt, engines := wireRouter(t, servers, opt)

	// Publish index B's factors and roll the cluster onto them.
	for s := range dirs {
		lo, hi := rt.Plan().Range(s)
		sh, err := ixB.Shard(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := core.WriteShardSnapshot(dirs[s], sh); err != nil {
			t.Fatal(err)
		}
	}
	swapped, err := wire.RollWorkers(context.Background(), engines)
	if err != nil || swapped != k {
		t.Fatalf("RollWorkers = %d, %v; want %d, nil", swapped, err, k)
	}
	for s, e := range engines {
		if e.Generation() != 2 {
			t.Fatalf("engine %d generation %d after roll, want 2", s, e.Generation())
		}
	}
	queries := []int{3, 50}
	want, err := engB.TopKMulti(queries, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rt.TopKTagged(context.Background(), queries, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got.Items[i].Node != want[i].Node || got.Items[i].Score != want[i].Score {
			t.Fatalf("post-roll item %d differs from index B's monolithic answer", i)
		}
	}

	// Kill worker 1 and roll again: worker 0 swaps, the roll aborts at
	// worker 1, worker 2 is never touched — and the cluster still serves.
	servers[1].Close()
	for s := range dirs {
		lo, hi := rt.Plan().Range(s)
		sh, err := ixA.Shard(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := core.WriteShardSnapshot(dirs[s], sh); err != nil {
			t.Fatal(err)
		}
	}
	swapped, err = wire.RollWorkers(context.Background(), engines)
	if err == nil || swapped != 1 {
		t.Fatalf("partial roll = %d, %v; want 1 and an error", swapped, err)
	}
	if !errors.Is(err, shard.ErrSlotDown) {
		t.Fatalf("partial roll error %v, want ErrSlotDown", err)
	}
	if g := engines[0].Generation(); g != 3 {
		t.Fatalf("worker 0 generation %d, want 3 (rolled before the abort)", g)
	}
	res, err := rt.TopKTagged(context.Background(), []int{3}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Missing != 1 || res.ErrorBound <= 0 {
		t.Fatalf("degraded serve after crash: missing=%d bound=%v, want 1 and > 0", res.Missing, res.ErrorBound)
	}
}

// fakeClock drives the client's hedge timers and breaker deterministically.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []fakeTimer
}

type fakeTimer struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := c.now.Add(d)
	if !at.After(c.now) {
		ch <- c.now
		return ch
	}
	c.timers = append(c.timers, fakeTimer{at, ch})
	return ch
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	kept := c.timers[:0]
	for _, tm := range c.timers {
		if !tm.at.After(c.now) {
			tm.ch <- c.now
		} else {
			kept = append(kept, tm)
		}
	}
	c.timers = kept
}

// TestHedgedRequestNeverDoubleCounts pins the hedging invariant with a
// deterministic clock: the primary request to one shard is held hostage,
// the fake clock fires the hedge, the hedge's response answers — and the
// merged top-k is still bitwise-exact, because exactly one response per
// logical call ever reaches the merge.
func TestHedgedRequestNeverDoubleCounts(t *testing.T) {
	eng, ix := testEngineIndex(t, 1)
	shards, err := shard.Split(ix, 2)
	if err != nil {
		t.Fatal(err)
	}
	var queryCalls atomic.Int64
	primaryArrived := make(chan struct{})
	w0 := wire.NewWorker(shards[0], 0, wire.WorkerConfig{Shard: 0})
	inner := w0.Handler()
	srv0 := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/shard/query" {
			if queryCalls.Add(1) == 1 {
				// Drain the body so net/http starts its background
				// connection reader — without that the server never
				// notices the client cancelling, and r.Context() would
				// never fire.
				io.Copy(io.Discard, r.Body)
				close(primaryArrived)
				<-r.Context().Done() // hold the primary hostage until it is cancelled
				return
			}
		}
		inner.ServeHTTP(rw, r)
	}))
	defer srv0.Close()
	w1 := wire.NewWorker(shards[1], 0, wire.WorkerConfig{Shard: 1})
	srv1 := httptest.NewServer(w1.Handler())
	defer srv1.Close()

	clk := newFakeClock()
	opt := testOptions()
	opt.Clock = clk
	opt.HedgeQuantile = 0.5
	opt.HedgeMinDelay = time.Millisecond
	rt, engines := wireRouter(t, []*httptest.Server{srv0, srv1}, opt)
	// Warm the latency ring past the hedge-arming sample floor.
	for i := 0; i < 20; i++ {
		if _, err := engines[0].BoundTerms(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	queries := []int{3, 77}
	want, err := eng.TopKMulti(queries, 10)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var res shard.TopKResult
	var qerr error
	go func() {
		defer close(done)
		res, qerr = rt.TopKTagged(context.Background(), queries, 10, 0)
	}()
	<-primaryArrived
	deadline := time.After(20 * time.Second)
wait:
	for {
		select {
		case <-done:
			break wait
		case <-deadline:
			t.Fatal("hedge never fired")
		default:
			clk.Advance(2 * time.Millisecond)
			time.Sleep(time.Millisecond)
		}
	}
	if qerr != nil {
		t.Fatal(qerr)
	}
	if res.Missing != 0 {
		t.Fatalf("hedged query tagged %d missing shards", res.Missing)
	}
	if len(res.Items) != len(want) {
		t.Fatalf("%d items, want %d", len(res.Items), len(want))
	}
	for i := range want {
		if res.Items[i].Node != want[i].Node || res.Items[i].Score != want[i].Score {
			t.Fatalf("hedged merge item %d: got (%d, %x), want (%d, %x) — a double-counted partial would land here",
				i, res.Items[i].Node, math.Float64bits(res.Items[i].Score),
				want[i].Node, math.Float64bits(want[i].Score))
		}
	}
	st := engines[0].Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", st.Hedges, st.HedgeWins)
	}
	if calls := queryCalls.Load(); calls != 2 {
		t.Fatalf("worker saw %d query calls, want 2 (primary + hedge)", calls)
	}
}

// TestBreakerOpensAndFailsFast pins the per-shard circuit breaker on a
// fake clock: consecutive failures open it, an open breaker fails without
// touching the network, and context cancellations never count as shard
// failures.
func TestBreakerOpensAndFailsFast(t *testing.T) {
	_, ix := testEngineIndex(t, 1)
	servers, _ := startWorkers(t, ix, 2)
	clk := newFakeClock()
	opt := testOptions()
	opt.Clock = clk
	opt.Timeout = 2 * time.Second
	opt.BreakerThreshold = 1
	opt.BreakerCooldown = time.Hour
	rt, engines := wireRouter(t, servers, opt)

	// A cancelled caller context is not evidence the worker is down.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := engines[1].BoundTerms(cancelled); err == nil {
		t.Fatal("call with cancelled context succeeded")
	}
	if st := engines[1].Stats(); st.BreakerOpen || st.ConsecutiveFailures != 0 {
		t.Fatalf("breaker charged for a caller cancellation: %+v", st)
	}

	servers[1].Close()
	if _, err := rt.TopKTagged(context.Background(), []int{3}, 5, 0); err != nil {
		t.Fatalf("degraded top-k errored: %v", err)
	}
	st := engines[1].Stats()
	if !st.BreakerOpen || st.ConsecutiveFailures < 1 {
		t.Fatalf("breaker after dead-worker call: %+v", st)
	}
	// While open, calls fail fast without a network attempt; the degrade
	// path keeps serving from the shards that remain.
	before := engines[1].Stats().Retries
	res, err := rt.TopKTagged(context.Background(), []int{3}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Missing != 1 {
		t.Fatalf("missing=%d, want 1", res.Missing)
	}
	if wantBound := 1 * rt.MissingShardBound(); res.ErrorBound != wantBound {
		t.Fatalf("error bound %v, want |Q|*MissingShardBound = %v", res.ErrorBound, wantBound)
	}
	if after := engines[1].Stats().Retries; after != before {
		t.Fatalf("open breaker still retried the network: %d -> %d", before, after)
	}
	// A query whose own query node lives on the dead shard must fail:
	// every other shard needs its U rows.
	lo, _ := rt.Plan().Range(1)
	if _, err := rt.TopKTagged(context.Background(), []int{lo}, 5, 0); err == nil {
		t.Fatal("query owned by the dead shard succeeded")
	}
}

package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
)

// F64s is a float64 slice that marshals as base64-encoded little-endian
// IEEE-754 bit patterns instead of decimal text. Go's decimal float
// encoding does round-trip exactly, but raw bits are cheaper to encode,
// ~30% smaller, and keep the bitwise-exactness contract independent of
// any decimal formatting subtlety — the scores crossing this wire must
// merge bitwise-identically to the in-process path.
type F64s []float64

// MarshalJSON encodes the slice as a base64 string of LE float64 bits.
func (f F64s) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 8*len(f))
	for i, v := range f {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return json.Marshal(buf)
}

// UnmarshalJSON decodes a base64 string of LE float64 bits.
func (f *F64s) UnmarshalJSON(b []byte) error {
	var raw []byte
	if err := json.Unmarshal(b, &raw); err != nil {
		return fmt.Errorf("wire: decoding float payload: %w", err)
	}
	if len(raw)%8 != 0 {
		return fmt.Errorf("wire: float payload is %d bytes, not a multiple of 8", len(raw))
	}
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	*f = out
	return nil
}

// MetaResponse is GET /shard/meta: the slot's static shape, its current
// generation, and the bound terms the router folds into the global
// truncation bound. Damping rides as plain JSON — Go's float64 encoding
// round-trips exactly, and it is a single scalar compared for equality
// at assembly, not bulk payload.
type MetaResponse struct {
	N          int     `json:"n"`
	Lo         int     `json:"lo"`
	Hi         int     `json:"hi"`
	Rank       int     `json:"rank"`
	Damping    float64 `json:"damping"`
	Generation uint64  `json:"generation"`
	Bytes      int64   `json:"bytes"`
	Tier       string  `json:"tier"`
	ZMax       F64s    `json:"zmax"`
	UMax       F64s    `json:"umax"`
	ZErr       F64s    `json:"zerr,omitempty"`
	UErr       F64s    `json:"uerr,omitempty"`
}

// URowsRequest is POST /shard/urows: gather the U rows of owned nodes.
type URowsRequest struct {
	Nodes []int `json:"nodes"`
}

// URowsResponse carries the gathered rows, |nodes| x rank row-major, row
// i for Nodes[i].
type URowsResponse struct {
	Generation uint64 `json:"generation"`
	Rows       F64s   `json:"rows"`
}

// QueryRequest is POST /shard/query: the rank-limited partial top-k of
// the worker's owned nodes for a query set. UQ is the router-gathered
// query broadcast, |queries| x rank row-major.
type QueryRequest struct {
	Queries []int `json:"queries"`
	UQ      F64s  `json:"uq"`
	K       int   `json:"k"`
	Rank    int   `json:"rank"`
}

// QueryResponse carries the partial top-k as parallel arrays (global
// node ids plus their raw-bits scores), with the generation that
// answered.
type QueryResponse struct {
	Generation uint64 `json:"generation"`
	Nodes      []int  `json:"nodes"`
	Scores     F64s   `json:"scores"`
}

// ScoresRequest is POST /shard/scores: targeted scores of owned rows
// against the query columns.
type ScoresRequest struct {
	Queries []int `json:"queries"`
	UQ      F64s  `json:"uq"`
	Rows    []int `json:"rows"`
	Rank    int   `json:"rank"`
}

// ScoresResponse carries |rows| x |queries| scores row-major:
// Scores[i*|Q|+j] scores Rows[i] against Queries[j].
type ScoresResponse struct {
	Generation uint64 `json:"generation"`
	Scores     F64s   `json:"scores"`
}

// ReloadResponse is POST /admin/reload: the worker's new serving
// generation and the snapshot generation it loaded.
type ReloadResponse struct {
	Generation  uint64 `json:"generation"`
	SnapshotGen uint64 `json:"snapshot_gen,omitempty"`
	Recovered   bool   `json:"recovered,omitempty"`
}

// ReadyResponse is GET /readyz and /healthz.
type ReadyResponse struct {
	Status     string `json:"status"`
	Shard      int    `json:"shard"`
	Generation uint64 `json:"generation,omitempty"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}

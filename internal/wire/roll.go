package wire

import (
	"context"
	"fmt"
)

// RollWorkers rolls a remote cluster onto its next snapshot generation
// with reload.RollShards semantics moved one process boundary out: it
// triggers each worker's own load→validate→swap via POST /admin/reload,
// strictly one worker at a time in slot order, and aborts on the first
// failure. At every instant at most one worker is mid-swap, and a failed
// worker keeps serving its old generation — so the cluster is always
// fully serving, at worst with mixed generations, which the router's
// merge answers exactly per shard (each leg is internally consistent; see
// the package comment).
//
// Returns how many workers swapped. On error, workers [0, swapped) serve
// the new generation and the rest the old one; re-running after fixing
// the failed worker's snapshot converges the cluster (reloading an
// already-current worker just re-swaps the same snapshot generation).
func RollWorkers(ctx context.Context, engines []*RemoteEngine) (swapped int, err error) {
	for i, e := range engines {
		if err := ctx.Err(); err != nil {
			return swapped, fmt.Errorf("wire: roll aborted before worker %d: %w", i, err)
		}
		if _, err := e.Reload(ctx); err != nil {
			return swapped, fmt.Errorf("wire: rolling worker %d (%s): %w", i, e.Addr(), err)
		}
		swapped++
	}
	return swapped, nil
}

package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"csrplus/internal/dense"
	"csrplus/internal/fault"
	"csrplus/internal/serve"
	"csrplus/internal/shard"
	"csrplus/internal/topk"
)

// Clock abstracts time for the client's hedging and breaker machinery so
// tests can drive both deterministically. The real clock is the default.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Options tunes one RemoteEngine. The zero value selects the documented
// defaults.
type Options struct {
	// Shard is the slot index this engine serves, for stats labelling.
	Shard int
	// Timeout bounds each HTTP attempt (not the logical call). Default
	// 5s; negative disables.
	Timeout time.Duration
	// MaxAttempts bounds attempts per logical call (1 = no retry).
	// Default 3.
	MaxAttempts int
	// BaseBackoff is the first retry's nominal delay; attempt i waits
	// BaseBackoff * 2^(i-1), halved-and-jittered like reload.Policy.
	// Default 25ms. MaxBackoff caps the nominal delay; default 1s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// HedgeQuantile is the observed-latency quantile after which a
	// second identical request is launched (first response wins, the
	// loser is cancelled). Default 0.9; negative disables hedging.
	// Hedging only arms once hedgeMinSamples latencies are observed.
	HedgeQuantile float64
	// HedgeMinDelay floors the hedge delay so a microsecond-fast worker
	// does not get every request doubled. Default 1ms.
	HedgeMinDelay time.Duration
	// BreakerThreshold consecutive failed logical calls open the
	// circuit breaker; 0 disables. Default 5. BreakerCooldown is how
	// long an open breaker fails fast before admitting a probe call;
	// default 5s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// AdminToken authenticates RollWorkers' /admin/reload calls.
	AdminToken string
	// Clock injects time (tests); nil uses the real clock.
	Clock Clock
	// Client is the HTTP client; nil builds a default one.
	Client *http.Client
	// Seed seeds the backoff jitter; 0 derives one from the real clock.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Timeout == 0 {
		o.Timeout = 5 * time.Second
	}
	if o.MaxAttempts < 1 {
		o.MaxAttempts = 3
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 25 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	if o.HedgeQuantile == 0 {
		o.HedgeQuantile = 0.9
	}
	if o.HedgeMinDelay <= 0 {
		o.HedgeMinDelay = time.Millisecond
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.Clock == nil {
		o.Clock = realClock{}
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Seed == 0 {
		o.Seed = time.Now().UnixNano()
	}
	return o
}

// hedgeMinSamples is how many latency observations must exist before the
// hedge quantile means anything.
const hedgeMinSamples = 16

// latRingSize is the latency ring's window: recent enough to track a
// worker's current behaviour, wide enough that one outlier cannot own
// the quantile.
const latRingSize = 64

type latRing struct {
	mu  sync.Mutex
	buf [latRingSize]time.Duration
	n   int
}

func (r *latRing) observe(d time.Duration) {
	r.mu.Lock()
	r.buf[r.n%latRingSize] = d
	r.n++
	r.mu.Unlock()
}

func (r *latRing) quantile(q float64) (time.Duration, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n < hedgeMinSamples {
		return 0, false
	}
	m := r.n
	if m > latRingSize {
		m = latRingSize
	}
	cp := make([]time.Duration, m)
	copy(cp, r.buf[:m])
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := int(q * float64(m-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= m {
		idx = m - 1
	}
	return cp[idx], true
}

// SlotStats is one remote slot's health and traffic counters, merged
// into the router process's /metrics registry.
type SlotStats struct {
	Shard               int                     `json:"shard"`
	Addr                string                  `json:"addr"`
	Generation          uint64                  `json:"generation"`
	Requests            int64                   `json:"requests"`
	Errors              int64                   `json:"errors"`
	Retries             int64                   `json:"retries"`
	Hedges              int64                   `json:"hedges"`
	HedgeWins           int64                   `json:"hedge_wins"`
	BreakerOpen         bool                    `json:"breaker_open"`
	ConsecutiveFailures int                     `json:"consecutive_failures"`
	Latency             serve.HistogramSnapshot `json:"latency_seconds"`
}

// RemoteEngine speaks the worker protocol and implements shard.Slot, so
// a shard.Router assembled over RemoteEngines merges network partials
// with the same code — and the same bitwise guarantees — as in-process
// shards. Safe for concurrent use.
type RemoteEngine struct {
	addr  string
	opt   Options
	clock Clock
	httpc *http.Client

	n, lo, hi, rank int
	c               float64

	gen   atomic.Uint64 // last generation observed in any response
	bytes atomic.Int64  // last resident-bytes figure from /shard/meta

	rngMu sync.Mutex
	rng   *rand.Rand

	bmu       sync.Mutex
	fails     int
	openUntil time.Time

	requests  atomic.Int64
	errCount  atomic.Int64
	retries   atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
	lat       *serve.Histogram
	ring      latRing
}

// Dial connects to a shard worker, resolves its shape metadata (with the
// client's usual retry policy), and returns a ready slot. The shape is
// fixed for the engine's lifetime — workers validate reloads against it.
func Dial(ctx context.Context, addr string, opt Options) (*RemoteEngine, error) {
	opt = opt.withDefaults()
	e := &RemoteEngine{
		addr:  strings.TrimSuffix(addr, "/"),
		opt:   opt,
		clock: opt.Clock,
		httpc: opt.Client,
		rng:   rand.New(rand.NewSource(opt.Seed)),
		lat: serve.NewHistogram(
			100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3,
			10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1),
	}
	meta, err := e.fetchMeta(ctx)
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", addr, err)
	}
	if meta.N <= 0 || meta.Lo < 0 || meta.Lo >= meta.Hi || meta.Hi > meta.N || meta.Rank <= 0 {
		return nil, fmt.Errorf("wire: %s reports implausible shape n=%d [%d, %d) r=%d: %w",
			addr, meta.N, meta.Lo, meta.Hi, meta.Rank, shard.ErrShard)
	}
	e.n, e.lo, e.hi, e.rank, e.c = meta.N, meta.Lo, meta.Hi, meta.Rank, meta.Damping
	return e, nil
}

// Addr returns the worker base URL the engine dials.
func (e *RemoteEngine) Addr() string { return e.addr }

// N, Lo, Hi, Rank and Damping report the shape resolved at Dial.
func (e *RemoteEngine) N() int           { return e.n }
func (e *RemoteEngine) Lo() int          { return e.lo }
func (e *RemoteEngine) Hi() int          { return e.hi }
func (e *RemoteEngine) Rank() int        { return e.rank }
func (e *RemoteEngine) Damping() float64 { return e.c }

// Generation returns the last generation observed in a worker response —
// it advances when the worker rolls, which is what invalidates the
// router's bound cache.
func (e *RemoteEngine) Generation() uint64 { return e.gen.Load() }

// Bytes returns the worker's last reported resident factor bytes.
func (e *RemoteEngine) Bytes() int64 { return e.bytes.Load() }

// Stats snapshots the engine's traffic counters and breaker state.
func (e *RemoteEngine) Stats() SlotStats {
	e.bmu.Lock()
	open := !e.openUntil.IsZero() && e.clock.Now().Before(e.openUntil)
	fails := e.fails
	e.bmu.Unlock()
	return SlotStats{
		Shard:               e.opt.Shard,
		Addr:                e.addr,
		Generation:          e.gen.Load(),
		Requests:            e.requests.Load(),
		Errors:              e.errCount.Load(),
		Retries:             e.retries.Load(),
		Hedges:              e.hedges.Load(),
		HedgeWins:           e.hedgeWins.Load(),
		BreakerOpen:         open,
		ConsecutiveFailures: fails,
		Latency:             e.lat.Snapshot(),
	}
}

// URows implements shard.Slot over POST /shard/urows.
func (e *RemoteEngine) URows(ctx context.Context, nodes []int) (*dense.Mat, error) {
	var resp URowsResponse
	if err := e.call(ctx, http.MethodPost, "/shard/urows", URowsRequest{Nodes: nodes}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Rows) != len(nodes)*e.rank {
		return nil, fmt.Errorf("wire: %s returned %d U floats, want %d: %w", e.addr, len(resp.Rows), len(nodes)*e.rank, shard.ErrSlotDown)
	}
	e.observeGen(resp.Generation)
	return dense.NewMatFrom(len(nodes), e.rank, resp.Rows), nil
}

// PartialInto rejects the column path: the wire ships K·|Q|·k partial
// top-k items, never an n x |Q| matrix (see BENCH_shard.json). Wire
// deployments serve through the router's TopKTagged and Scores paths.
func (e *RemoteEngine) PartialInto(ctx context.Context, queries []int, uq *dense.Mat, rank int, out *dense.Mat) error {
	return fmt.Errorf("wire: column scatter is not supported over the wire; serve through the top-k path")
}

// PartialTopK implements shard.Slot over POST /shard/query.
func (e *RemoteEngine) PartialTopK(ctx context.Context, queries []int, uq *dense.Mat, k, rank int) ([]topk.Item, error) {
	var resp QueryResponse
	req := QueryRequest{Queries: queries, UQ: uq.Data, K: k, Rank: rank}
	if err := e.call(ctx, http.MethodPost, "/shard/query", req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Nodes) != len(resp.Scores) || len(resp.Nodes) > k {
		return nil, fmt.Errorf("wire: %s returned %d nodes / %d scores for k=%d: %w", e.addr, len(resp.Nodes), len(resp.Scores), k, shard.ErrSlotDown)
	}
	e.observeGen(resp.Generation)
	items := make([]topk.Item, len(resp.Nodes))
	for i := range items {
		items[i] = topk.Item{Node: resp.Nodes[i], Score: resp.Scores[i]}
	}
	return items, nil
}

// ScoreRows implements shard.Slot over POST /shard/scores.
func (e *RemoteEngine) ScoreRows(ctx context.Context, queries []int, uq *dense.Mat, rows []int, rank int) ([]float64, error) {
	var resp ScoresResponse
	req := ScoresRequest{Queries: queries, UQ: uq.Data, Rows: rows, Rank: rank}
	if err := e.call(ctx, http.MethodPost, "/shard/scores", req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Scores) != len(rows)*len(queries) {
		return nil, fmt.Errorf("wire: %s returned %d scores, want %d: %w", e.addr, len(resp.Scores), len(rows)*len(queries), shard.ErrSlotDown)
	}
	e.observeGen(resp.Generation)
	return resp.Scores, nil
}

// BoundTerms implements shard.Slot over GET /shard/meta.
func (e *RemoteEngine) BoundTerms(ctx context.Context) (shard.BoundTerms, error) {
	meta, err := e.fetchMeta(ctx)
	if err != nil {
		return shard.BoundTerms{}, err
	}
	return shard.BoundTerms{ZMax: meta.ZMax, UMax: meta.UMax, ZErr: meta.ZErr, UErr: meta.UErr}, nil
}

func (e *RemoteEngine) fetchMeta(ctx context.Context) (MetaResponse, error) {
	var meta MetaResponse
	if err := e.call(ctx, http.MethodGet, "/shard/meta", nil, &meta); err != nil {
		return MetaResponse{}, err
	}
	e.observeGen(meta.Generation)
	e.bytes.Store(meta.Bytes)
	return meta, nil
}

// Reload triggers the worker's snapshot reload (RollWorkers drives it).
func (e *RemoteEngine) Reload(ctx context.Context) (ReloadResponse, error) {
	var resp ReloadResponse
	if err := e.call(ctx, http.MethodPost, "/admin/reload", nil, &resp); err != nil {
		return ReloadResponse{}, err
	}
	e.observeGen(resp.Generation)
	return resp, nil
}

func (e *RemoteEngine) observeGen(gen uint64) {
	// Generations only advance; keep the max so a straggling response
	// from a pre-roll request cannot roll the observed generation back
	// (which would thrash the router's bound cache).
	for {
		cur := e.gen.Load()
		if gen <= cur || e.gen.CompareAndSwap(cur, gen) {
			return
		}
	}
}

// call runs one logical RPC: breaker gate, then up to MaxAttempts hedged
// attempts with jittered backoff between them. Transport-class failures
// (connect errors, timeouts, 5xx, torn responses) are wrapped in
// shard.ErrSlotDown so the router can degrade around this shard; caller
// errors (4xx) surface as-is and are not retried. Context cancellation
// is never counted against the breaker — a caller giving up is not
// evidence the worker is down.
func (e *RemoteEngine) call(ctx context.Context, method, path string, req, resp any) error {
	e.requests.Add(1)
	if wait, open := e.breakerOpen(); open {
		e.errCount.Add(1)
		return fmt.Errorf("wire: %s breaker open, retry in %v: %w", e.addr, wait.Round(time.Millisecond), shard.ErrSlotDown)
	}
	var body []byte
	if req != nil {
		var err error
		if body, err = json.Marshal(req); err != nil {
			e.errCount.Add(1)
			return fmt.Errorf("wire: encoding %s request: %w", path, err)
		}
	}
	var lastErr error
	for attempt := 0; attempt < e.opt.MaxAttempts; attempt++ {
		if attempt > 0 {
			e.retries.Add(1)
			if err := e.sleepCtx(ctx, e.backoff(attempt)); err != nil {
				break
			}
		}
		data, err := e.hedged(ctx, method, path, body)
		if err == nil {
			if resp != nil {
				if derr := json.Unmarshal(data, resp); derr != nil {
					// A 200 whose body does not decode is a half-dead
					// worker, not a caller bug: retryable transport class.
					lastErr = fmt.Errorf("decoding %s response: %w", path, derr)
					continue
				}
			}
			e.breakerRecord(false)
			return nil
		}
		lastErr = err
		if ctx.Err() != nil || !retryable(err) {
			break
		}
	}
	e.errCount.Add(1)
	if ctx.Err() != nil {
		return fmt.Errorf("wire: %s %s: %w", e.addr, path, lastErr)
	}
	if retryable(lastErr) {
		e.breakerRecord(true)
		return fmt.Errorf("wire: %s %s failed after %d attempts: %v: %w", e.addr, path, e.opt.MaxAttempts, lastErr, shard.ErrSlotDown)
	}
	return fmt.Errorf("wire: %s %s: %w", e.addr, path, lastErr)
}

// hedged runs one attempt, launching a second identical request if the
// first is still outstanding past the observed latency quantile. The
// first response wins: the shared context is cancelled on return, and
// the loser's body is never decoded — which is the structural reason a
// hedged request can never double-count a shard's partials in the merge
// (exactly one response object reaches the router per logical call).
func (e *RemoteEngine) hedged(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		data  []byte
		err   error
		hedge bool
	}
	ch := make(chan result, 2)
	launch := func(isHedge bool) {
		go func() {
			data, err := e.post(hctx, method, path, body)
			ch <- result{data, err, isHedge}
		}()
	}
	launch(false)
	outstanding := 1
	var hedgeTimer <-chan time.Time
	if d, ok := e.hedgeDelay(); ok {
		hedgeTimer = e.clock.After(d)
	}
	var firstErr error
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				if r.hedge {
					e.hedgeWins.Add(1)
				}
				return r.data, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding == 0 {
				// Both legs (or the only leg) failed; the outer retry
				// loop owns what happens next. No hedge is launched
				// after a failure — that is a retry's job, with backoff.
				return nil, firstErr
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			e.hedges.Add(1)
			launch(true)
			outstanding++
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func (e *RemoteEngine) post(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	if err := fault.Hit(fault.SiteWireDial); err != nil {
		return nil, err
	}
	if e.opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.opt.Timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, e.addr+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if e.opt.AdminToken != "" {
		req.Header.Set("Authorization", "Bearer "+e.opt.AdminToken)
	}
	start := e.clock.Now()
	resp, err := e.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	data, err := io.ReadAll(fault.Reader(fault.SiteWireRead, resp.Body))
	if err != nil {
		return nil, err
	}
	elapsed := e.clock.Now().Sub(start)
	e.ring.observe(elapsed)
	e.lat.Observe(elapsed.Seconds())
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(data))
		var er ErrorResponse
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return nil, &httpError{code: resp.StatusCode, msg: msg}
	}
	return data, nil
}

func (e *RemoteEngine) hedgeDelay() (time.Duration, bool) {
	if e.opt.HedgeQuantile < 0 {
		return 0, false
	}
	d, ok := e.ring.quantile(e.opt.HedgeQuantile)
	if !ok {
		return 0, false
	}
	if d < e.opt.HedgeMinDelay {
		d = e.opt.HedgeMinDelay
	}
	return d, true
}

// backoff mirrors reload.Policy: nominal BaseBackoff·2^(attempt-1)
// capped at MaxBackoff, half deterministic and half jittered so replicas
// retrying against one struggling worker spread out.
func (e *RemoteEngine) backoff(attempt int) time.Duration {
	nominal := float64(e.opt.BaseBackoff) * math.Pow(2, float64(attempt-1))
	if limit := float64(e.opt.MaxBackoff); nominal > limit {
		nominal = limit
	}
	half := nominal / 2
	e.rngMu.Lock()
	j := e.rng.Float64()
	e.rngMu.Unlock()
	return time.Duration(half + j*half)
}

func (e *RemoteEngine) sleepCtx(ctx context.Context, d time.Duration) error {
	select {
	case <-e.clock.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *RemoteEngine) breakerOpen() (time.Duration, bool) {
	if e.opt.BreakerThreshold <= 0 {
		return 0, false
	}
	e.bmu.Lock()
	defer e.bmu.Unlock()
	now := e.clock.Now()
	if !e.openUntil.IsZero() && now.Before(e.openUntil) {
		return e.openUntil.Sub(now), true
	}
	return 0, false
}

func (e *RemoteEngine) breakerRecord(failed bool) {
	e.bmu.Lock()
	defer e.bmu.Unlock()
	if !failed {
		e.fails = 0
		e.openUntil = time.Time{}
		return
	}
	e.fails++
	if e.opt.BreakerThreshold > 0 && e.fails >= e.opt.BreakerThreshold {
		e.openUntil = e.clock.Now().Add(e.opt.BreakerCooldown)
	}
}

type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return fmt.Sprintf("http %d: %s", e.code, e.msg) }

// retryable classifies an attempt failure: transport errors, timeouts
// and 5xx/429 responses may clear on retry; other HTTP statuses are
// caller errors and burning attempts on them only hides bugs.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	var he *httpError
	if errors.As(err, &he) {
		return he.code >= 500 || he.code == http.StatusTooManyRequests
	}
	return true
}

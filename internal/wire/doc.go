// Package wire is the process split for sharded serving: each shard of
// the factor index runs in its own csrserver -shardworker process,
// serving its node range over HTTP, and a RemoteEngine client implements
// the same shard.Slot contract the in-process router consumes — so the
// router's exact scatter–gather merge, generation-keyed bound cache, and
// degradation tagging work unchanged across the wire.
//
// # Protocol
//
// Workers expose a small JSON protocol. Bulk float64 payloads travel as
// base64-encoded little-endian IEEE-754 bit patterns (proto.go's F64s),
// which round-trips every value bitwise by construction — the wire must
// not be the place the bitwise-exactness contract dies. The payload shape
// is the one BENCH_shard.json committed to: K·|Q|·k partial top-k items
// plus |Q|·r gathered U rows, never an n x |Q| column matrix.
//
//	GET  /healthz       liveness: the process is up.
//	GET  /readyz        readiness: a generation is loaded and serving.
//	GET  /shard/meta    shape, node range, generation, tier, bound terms.
//	POST /shard/urows   U rows of owned nodes (the query-broadcast gather).
//	POST /shard/query   partial top-k of owned nodes for a query set.
//	POST /shard/scores  targeted row scores (the /similarity primitive).
//	POST /admin/reload  bearer-authenticated snapshot reload (next
//	                    generation from the worker's shard-<s>/ dir).
//
// Every data response carries the generation that answered it, so the
// router's bound cache observes worker rolls the same way it observes
// in-process swaps.
//
// # Failure model
//
// The client wraps each logical call in bounded retries with jittered
// exponential backoff, hedges a second attempt after the observed
// latency quantile (first response wins; the loser's context is
// cancelled and its response is never decoded, so a hedged request can
// never double-count a shard's partials in the merge), and trips a
// per-shard circuit breaker after consecutive failures so a dead worker
// costs a fast local error instead of a timeout per query. All of these
// surface as shard.ErrSlotDown to the router, which skips the shard and
// tags the response degraded with an inflated error_bound
// (shard.Router.TopKTagged); queries whose own query nodes live on the
// dead shard still fail, because every other shard's partial needs their
// U rows.
//
// Rolling reloads reuse reload.RollShards semantics one process further
// out: RollWorkers walks the workers one at a time, triggering each
// worker's own load→validate→swap (a worker that fails validation keeps
// serving its old generation), and aborts on the first failure leaving a
// mixed-generation cluster that still answers exactly per shard.
package wire

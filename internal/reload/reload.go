// Package reload implements the zero-downtime index lifecycle around a
// serve.Server: a Manager loads or rebuilds a candidate engine in the
// background, validates it (shape sanity plus a smoke query against probe
// nodes), and atomically swaps it in as a new generation while in-flight
// batches finish on the old one. The paper's phase split makes this the
// natural operational shape — phase I (the rank-r decomposition) is the
// expensive part, so it must run off the serving path; phase II is cheap
// and keeps answering from the old index until the instant of the swap.
//
// A reload that fails at any stage — load error, implausible candidate,
// failing smoke query — leaves the serving generation untouched: the old
// engine cannot be torn down before its replacement has proven it can
// answer queries.
package reload

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"csrplus/internal/serve"
)

// Errors returned by Reload. ErrInProgress means another reload holds the
// lifecycle lock (the caller should retry later, not queue); ErrValidation
// wraps every candidate-rejection reason.
var (
	ErrInProgress = errors.New("reload: another reload is in progress")
	ErrValidation = errors.New("reload: candidate failed validation")
)

// Candidate is a fully built engine generation proposed for swap-in. The
// Query function must be ready to serve the moment Reload validates it —
// all expensive work (index build, snapshot load) happens before the
// Candidate is returned by a LoadFunc.
type Candidate struct {
	// N is the node count Query serves; requests are validated against it
	// once the candidate becomes the live generation.
	N int
	// Query answers one multi-source pass (csrplus.(*Engine).QueryInto).
	Query serve.MatQueryFunc
	// Meta describes the candidate for /admin/index and logs.
	Meta Meta
}

// Meta is the provenance of one engine generation.
type Meta struct {
	// Source is where the engine came from: "snapshot", "index", or
	// "rebuild" (and "boot" semantics come from the generation number).
	Source string `json:"source"`
	// Path is the snapshot or index file loaded, "" for in-process builds.
	Path string `json:"path,omitempty"`
	// SnapshotGen is the generation parsed from a versioned snapshot
	// name (core.ParseSnapshotName), 0 otherwise. Distinct from the
	// serving generation: snapshots number index files on disk, the
	// server numbers swaps.
	SnapshotGen uint64 `json:"snapshot_gen,omitempty"`
	// Algorithm, N, M, Rank describe the engine (csrplus.Engine.Stats).
	Algorithm string `json:"algorithm"`
	N         int    `json:"n"`
	M         int64  `json:"m"`
	Rank      int    `json:"rank,omitempty"`
	// BuildTime is the candidate's load/precompute wall time.
	BuildTime time.Duration `json:"-"`
	// PeakBytes is the build's analytic memory peak, 0 when unknown.
	PeakBytes int64 `json:"peak_bytes,omitempty"`
}

// Status describes the generation currently taking traffic.
type Status struct {
	Generation uint64 `json:"generation"`
	Meta
	BuildSeconds float64   `json:"build_seconds"`
	SwappedAt    time.Time `json:"swapped_at"`
}

// LoadFunc produces the next candidate generation. It runs on the
// reloading goroutine (SIGHUP handler, admin endpoint), never on the
// serving path, and may take as long as an index build takes; it should
// honour ctx for cancellation between expensive steps.
type LoadFunc func(ctx context.Context) (*Candidate, error)

// Manager owns the reload lifecycle for one serve.Server. Reloads are
// serialised (concurrent triggers fail fast with ErrInProgress instead of
// queueing — a SIGHUP storm must not stack index builds); Current is
// lock-free for status endpoints.
type Manager struct {
	server *serve.Server
	load   LoadFunc

	mu  sync.Mutex // held for the whole load→validate→swap sequence
	cur atomic.Pointer[Status]
}

// New wires a Manager over a server already serving its boot generation,
// recording boot as the meta of the current status.
func New(server *serve.Server, load LoadFunc, boot Meta) *Manager {
	m := &Manager{server: server, load: load}
	m.cur.Store(&Status{
		Generation:   server.Generation(),
		Meta:         boot,
		BuildSeconds: boot.BuildTime.Seconds(),
		SwappedAt:    time.Now(),
	})
	return m
}

// Current returns the status of the generation serving new requests.
func (m *Manager) Current() Status { return *m.cur.Load() }

// Reload runs one lifecycle pass: load a candidate, validate it, swap it
// in. On any failure the previous generation keeps serving and the
// returned Status still describes it. The whole sequence runs on the
// calling goroutine — callers wanting an async reload wrap it in one.
func (m *Manager) Reload(ctx context.Context) (Status, error) {
	if !m.mu.TryLock() {
		return m.Current(), ErrInProgress
	}
	defer m.mu.Unlock()

	metrics := m.server.Metrics()
	start := time.Now()
	cand, err := m.load(ctx)
	if err != nil {
		metrics.ReloadFailed()
		return m.Current(), fmt.Errorf("reload: loading candidate: %w", err)
	}
	if err := Validate(cand); err != nil {
		metrics.ReloadFailed()
		return m.Current(), err
	}
	gen := m.server.SwapMat(cand.N, cand.Query)
	if gen == 0 {
		metrics.ReloadFailed()
		return m.Current(), fmt.Errorf("reload: %w", serve.ErrClosed)
	}
	st := Status{
		Generation:   gen,
		Meta:         cand.Meta,
		BuildSeconds: cand.Meta.BuildTime.Seconds(),
		SwappedAt:    time.Now(),
	}
	m.cur.Store(&st)
	metrics.ReloadSucceeded(time.Since(start).Seconds())
	return st, nil
}

// probeNodes picks a few spread-out node ids to smoke-query: the ends and
// middle catch off-by-one shape bugs that a single probe would miss.
func probeNodes(n int) []int {
	probes := []int{0}
	if n > 2 {
		probes = append(probes, n/2)
	}
	if n > 1 {
		probes = append(probes, n-1)
	}
	return probes
}

// Validate smoke-tests a candidate before it may take traffic: the shape
// must be plausible and a real multi-source query against probe nodes
// must come back with the right dimensions, finite scores, and a positive
// self-similarity (CoSimRank scores a node against itself as 1 plus a
// damped correction, so a zero or negative diagonal means the factors are
// garbage — e.g. an index loaded against the wrong graph orientation).
// This is the gate that turns "the file parsed" into "the engine
// answers"; CRC and header checks live below it in core.ReadIndex.
func Validate(c *Candidate) error {
	if c == nil || c.Query == nil {
		return fmt.Errorf("%w: no query engine", ErrValidation)
	}
	if c.N <= 0 {
		return fmt.Errorf("%w: implausible node count %d", ErrValidation, c.N)
	}
	probes := probeNodes(c.N)
	mat, err := c.Query(probes, nil)
	if err != nil {
		return fmt.Errorf("%w: smoke query: %v", ErrValidation, err)
	}
	if mat == nil {
		return fmt.Errorf("%w: smoke query returned no matrix", ErrValidation)
	}
	if mat.Rows != c.N || mat.Cols != len(probes) {
		return fmt.Errorf("%w: smoke query shape %dx%d, want %dx%d",
			ErrValidation, mat.Rows, mat.Cols, c.N, len(probes))
	}
	for j, q := range probes {
		for i := 0; i < mat.Rows; i++ {
			if v := mat.At(i, j); math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: non-finite score %v for pair (%d, %d)", ErrValidation, v, i, q)
			}
		}
		if self := mat.At(q, j); self <= 0 {
			return fmt.Errorf("%w: self-similarity of node %d is %v, want > 0", ErrValidation, q, self)
		}
	}
	return nil
}

// Package reload implements the zero-downtime index lifecycle around a
// serve.Server: a Manager loads or rebuilds a candidate engine in the
// background, validates it (shape sanity plus a smoke query against probe
// nodes), and atomically swaps it in as a new generation while in-flight
// batches finish on the old one. The paper's phase split makes this the
// natural operational shape — phase I (the rank-r decomposition) is the
// expensive part, so it must run off the serving path; phase II is cheap
// and keeps answering from the old index until the instant of the swap.
//
// A reload that fails at any stage — load error, implausible candidate,
// failing smoke query — leaves the serving generation untouched: the old
// engine cannot be torn down before its replacement has proven it can
// answer queries. Failures are retried with exponential backoff and
// jitter (transient I/O — a snapshot mid-publish, a briefly degraded disk
// — usually clears within a retry window), and a run of consecutive
// failed reloads opens a circuit breaker that fails further triggers fast
// until a cooldown elapses, so a persistently broken snapshot source
// cannot keep burning load attempts.
//
// Reload triggers coalesce rather than queue: a SIGHUP or admin reload
// arriving while another reload is in flight marks one pending re-run
// (returning ErrCoalesced) and the in-flight reload runs the lifecycle
// once more when it finishes — a trigger storm collapses into at most one
// extra pass, and no trigger is silently lost.
package reload

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"csrplus/internal/dense"
	"csrplus/internal/fault"
	"csrplus/internal/serve"
)

// Errors returned by Reload. ErrCoalesced means another reload holds the
// lifecycle lock and this trigger was folded into a pending re-run (the
// reload WILL happen; the caller need not retry). ErrBreakerOpen means
// consecutive failures opened the circuit breaker and the trigger was
// dropped without a load attempt. ErrValidation wraps every
// candidate-rejection reason.
var (
	ErrCoalesced   = errors.New("reload: reload in progress, trigger coalesced into a pending re-run")
	ErrBreakerOpen = errors.New("reload: circuit breaker open after consecutive failures")
	ErrValidation  = errors.New("reload: candidate failed validation")
)

// Candidate is a fully built engine generation proposed for swap-in. The
// query function must be ready to serve the moment Reload validates it —
// all expensive work (index build, snapshot load) happens before the
// Candidate is returned by a LoadFunc.
type Candidate struct {
	// N is the node count Query serves; requests are validated against it
	// once the candidate becomes the live generation.
	N int
	// Query answers one multi-source pass (csrplus.(*Engine).QueryInto).
	// Optional when RankQuery is set.
	Query serve.MatQueryFunc
	// RankQuery, when set, upgrades the generation to a rank-aware
	// backend (serve.SwapRanked): context propagation into the engine
	// pass plus graceful degradation per the server's DegradeConfig.
	// csrplus.(*Engine).QueryRankInto satisfies it.
	RankQuery serve.RankQueryFunc
	// Rank is the engine's full SVD rank (degradation headroom); only
	// meaningful with RankQuery.
	Rank int
	// Bound reports the entrywise error of answering truncated
	// (csrplus.(*Engine).TruncationBound); only meaningful with RankQuery.
	Bound func(rank int) float64
	// TopK, when set, serves Search directly instead of through the
	// column batcher (shard.Router.TopKTagged over wire slots satisfies
	// it). A candidate may set TopK with no Query/RankQuery at all —
	// wire routers have no column path. Scores is its targeted-score
	// companion (shard.Router.Scores).
	TopK   serve.DirectTopKFunc
	Scores serve.DirectScoreFunc
	// Drift, when set, reports the generation's live ingestion drift
	// bound (serve.DriftFunc): streamed edges applied after this
	// candidate's factors were cut taint its answers, and the server
	// composes the bound into every response's error_bound. The closure
	// must be anchored to THIS candidate's cut point — a failed or
	// refused swap leaves the previous generation's closure untouched.
	Drift serve.DriftFunc
	// Meta describes the candidate for /admin/index and logs.
	Meta Meta
	// Release, when set, frees resources the generation pins for its
	// whole serving lifetime — typically the munmap of a memory-mapped
	// v2 snapshot (core.MapIndex), whose factor slices alias the mapping
	// and must stay valid for every in-flight query. The Manager calls
	// it exactly once: immediately if the candidate fails validation or
	// the swap is refused, otherwise only after a LATER generation's
	// swap has returned — serve's swap blocks on the old batcher
	// draining, so by then no query can still touch the old factors.
	// Release must be idempotent-safe in its own right only against the
	// Manager calling it once; core.(*Index).Close already tolerates
	// double closes for defence in depth.
	Release func()
}

// Meta is the provenance of one engine generation.
type Meta struct {
	// Source is where the engine came from: "snapshot", "index", or
	// "rebuild" (and "boot" semantics come from the generation number).
	Source string `json:"source"`
	// Path is the snapshot or index file loaded, "" for in-process builds.
	Path string `json:"path,omitempty"`
	// SnapshotGen is the generation parsed from a versioned snapshot
	// name (core.ParseSnapshotName), 0 otherwise. Distinct from the
	// serving generation: snapshots number index files on disk, the
	// server numbers swaps.
	SnapshotGen uint64 `json:"snapshot_gen,omitempty"`
	// Recovered reports the snapshot served is NOT the one CURRENT
	// names — crash recovery fell back to an older generation and the
	// operator should investigate (core.RecoverSnapshot).
	Recovered bool `json:"recovered,omitempty"`
	// Algorithm, N, M, Rank describe the engine (csrplus.Engine.Stats).
	Algorithm string `json:"algorithm"`
	N         int    `json:"n"`
	M         int64  `json:"m"`
	Rank      int    `json:"rank,omitempty"`
	// Shards is the shard count of a sharded backend, 0 when monolithic.
	Shards int `json:"shards,omitempty"`
	// BuildTime is the candidate's load/precompute wall time.
	BuildTime time.Duration `json:"-"`
	// PeakBytes is the build's analytic memory peak, 0 when unknown.
	PeakBytes int64 `json:"peak_bytes,omitempty"`
}

// Status describes the generation currently taking traffic.
type Status struct {
	Generation uint64 `json:"generation"`
	Meta
	BuildSeconds float64   `json:"build_seconds"`
	SwappedAt    time.Time `json:"swapped_at"`
}

// LoadFunc produces the next candidate generation. It runs on the
// reloading goroutine (SIGHUP handler, admin endpoint), never on the
// serving path, and may take as long as an index build takes; it should
// honour ctx for cancellation between expensive steps.
type LoadFunc func(ctx context.Context) (*Candidate, error)

// Policy tunes the retry and circuit-breaker behaviour of a Manager.
type Policy struct {
	// MaxAttempts bounds load->validate->swap attempts per reload run
	// (1 = no retry). Default 3.
	MaxAttempts int
	// BaseBackoff is the first retry's nominal delay; attempt i waits
	// BaseBackoff * 2^(i-1), halved-and-jittered. Default 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the nominal delay. Default 2s.
	MaxBackoff time.Duration
	// BreakerThreshold is how many consecutive failed reload runs (each
	// already retried MaxAttempts times) open the breaker; 0 disables
	// the breaker. Default 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects triggers
	// before allowing one probe run. Default 10s.
	BreakerCooldown time.Duration
}

// DefaultPolicy returns the defaults documented on Policy.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:      3,
		BaseBackoff:      50 * time.Millisecond,
		MaxBackoff:       2 * time.Second,
		BreakerThreshold: 5,
		BreakerCooldown:  10 * time.Second,
	}
}

func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.MaxAttempts < 1 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	if p.BreakerThreshold < 0 {
		p.BreakerThreshold = 0
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = d.BreakerCooldown
	}
	return p
}

// backoff returns the jittered delay before retry attempt (1-based).
// Half the nominal delay is kept deterministic and half randomised —
// enough spread that replicas reloading off the same failed publish do
// not retry in lockstep, while the minimum wait still grows
// exponentially.
func (p Policy) backoff(attempt int) time.Duration {
	nominal := float64(p.BaseBackoff) * math.Pow(2, float64(attempt-1))
	if limit := float64(p.MaxBackoff); nominal > limit {
		nominal = limit
	}
	half := nominal / 2
	return time.Duration(half + rand.Float64()*half)
}

// Breaker is a point-in-time view of the circuit breaker for status
// endpoints (/readyz, /stats).
type Breaker struct {
	// Open reports the breaker is rejecting triggers right now.
	Open bool `json:"open"`
	// ConsecutiveFailures counts failed reload runs since the last
	// success.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// RetryAt is when an open breaker next admits a probe run; zero when
	// closed.
	RetryAt time.Time `json:"retry_at,omitempty"`
}

// Manager owns the reload lifecycle for one serve.Server. Reloads are
// serialised; a trigger landing mid-reload coalesces into one pending
// re-run instead of queueing or getting lost (a SIGHUP storm must not
// stack index builds). Current is lock-free for status endpoints.
type Manager struct {
	server *serve.Server
	load   LoadFunc
	policy Policy

	mu      sync.Mutex // held for the whole load→validate→swap sequence
	pending atomic.Bool
	cur     atomic.Pointer[Status]
	// release frees the resources pinned by the generation currently
	// serving (Candidate.Release of the last swapped candidate, or the
	// boot generation's via SetBootRelease). Guarded by mu: it is only
	// read and replaced inside the serialised lifecycle.
	release func()

	bmu       sync.Mutex // guards the breaker state below
	fails     int        // consecutive failed runs
	openUntil time.Time
}

// New wires a Manager with DefaultPolicy over a server already serving
// its boot generation, recording boot as the meta of the current status.
func New(server *serve.Server, load LoadFunc, boot Meta) *Manager {
	return NewWithPolicy(server, load, boot, DefaultPolicy())
}

// NewWithPolicy is New with explicit retry/breaker tuning.
func NewWithPolicy(server *serve.Server, load LoadFunc, boot Meta, policy Policy) *Manager {
	m := &Manager{server: server, load: load, policy: policy.withDefaults()}
	m.cur.Store(&Status{
		Generation:   server.Generation(),
		Meta:         boot,
		BuildSeconds: boot.BuildTime.Seconds(),
		SwappedAt:    time.Now(),
	})
	return m
}

// Current returns the status of the generation serving new requests.
func (m *Manager) Current() Status { return *m.cur.Load() }

// SetBootRelease registers the release hook of the boot generation —
// the engine the server was constructed with, which never went through
// a Candidate. The Manager calls it after the first successful reload
// has swapped the boot engine out and drained it, exactly like a
// candidate's Release. Call it once, before the first Reload; later
// calls would leak whatever the previous hook pinned.
func (m *Manager) SetBootRelease(release func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.release = release
}

// Breaker returns the circuit breaker's current state.
func (m *Manager) Breaker() Breaker {
	m.bmu.Lock()
	defer m.bmu.Unlock()
	b := Breaker{ConsecutiveFailures: m.fails}
	if !m.openUntil.IsZero() && time.Now().Before(m.openUntil) {
		b.Open = true
		b.RetryAt = m.openUntil
	}
	return b
}

// breakerAdmits reports whether a reload run may proceed. An open breaker
// past its cooldown admits one probe run (half-open); the probe's outcome
// re-opens or resets it.
func (m *Manager) breakerAdmits() (bool, time.Time) {
	m.bmu.Lock()
	defer m.bmu.Unlock()
	if !m.openUntil.IsZero() && time.Now().Before(m.openUntil) {
		return false, m.openUntil
	}
	return true, time.Time{}
}

func (m *Manager) breakerRecord(failed bool) {
	m.bmu.Lock()
	defer m.bmu.Unlock()
	if !failed {
		m.fails = 0
		m.openUntil = time.Time{}
		return
	}
	m.fails++
	if m.policy.BreakerThreshold > 0 && m.fails >= m.policy.BreakerThreshold {
		m.openUntil = time.Now().Add(m.policy.BreakerCooldown)
	}
}

// Reload runs one lifecycle pass: load a candidate, validate it, swap it
// in, retrying per the Manager's Policy. On any failure the previous
// generation keeps serving and the returned Status still describes it.
// The whole sequence runs on the calling goroutine — callers wanting an
// async reload wrap it in one. A Reload entered while another is in
// flight returns ErrCoalesced immediately; the in-flight reload runs the
// lifecycle again before releasing the lock, so the trigger is honoured,
// just not by its own caller.
func (m *Manager) Reload(ctx context.Context) (Status, error) {
	if !m.mu.TryLock() {
		m.pending.Store(true)
		return m.Current(), ErrCoalesced
	}
	defer m.mu.Unlock()

	st, err := m.runWithRetry(ctx)
	// Honour triggers that coalesced while this run was in flight: each
	// pass consumes the pending mark, and a mark set mid-pass (the world
	// may have changed again) schedules one more. Context cancellation
	// still wins.
	for m.pending.Swap(false) {
		if ctx.Err() != nil {
			break
		}
		st, err = m.runWithRetry(ctx)
	}
	return st, err
}

// runWithRetry is one reload run: breaker gate, then up to MaxAttempts
// lifecycle passes with backoff between them.
func (m *Manager) runWithRetry(ctx context.Context) (Status, error) {
	metrics := m.server.Metrics()
	if ok, until := m.breakerAdmits(); !ok {
		metrics.ReloadFailed()
		return m.Current(), fmt.Errorf("%w (retry after %s)", ErrBreakerOpen, time.Until(until).Round(time.Millisecond))
	}
	var lastErr error
	for attempt := 1; attempt <= m.policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			metrics.ReloadRetried()
			select {
			case <-time.After(m.policy.backoff(attempt - 1)):
			case <-ctx.Done():
				m.breakerRecord(true)
				metrics.ReloadFailed()
				return m.Current(), fmt.Errorf("reload: %w (after %v)", ctx.Err(), lastErr)
			}
		}
		st, err := m.runOnce(ctx)
		if err == nil {
			m.breakerRecord(false)
			return st, nil
		}
		lastErr = err
		// A closed server or cancelled context cannot be retried into
		// working; stop burning attempts.
		if errors.Is(err, serve.ErrClosed) || ctx.Err() != nil {
			break
		}
	}
	m.breakerRecord(true)
	metrics.ReloadFailed()
	return m.Current(), lastErr
}

// runOnce is a single load→validate→swap pass.
func (m *Manager) runOnce(ctx context.Context) (Status, error) {
	metrics := m.server.Metrics()
	start := time.Now()
	if err := fault.Hit(fault.SiteReloadLoad); err != nil {
		return m.Current(), fmt.Errorf("reload: loading candidate: %w", err)
	}
	cand, err := m.load(ctx)
	if err != nil {
		return m.Current(), fmt.Errorf("reload: loading candidate: %w", err)
	}
	if err := Validate(cand); err != nil {
		// The candidate never took traffic, so its resources (a v2
		// mapping it pinned) can be freed right now. Validate rejects a
		// nil candidate, hence the extra nil check.
		if cand != nil && cand.Release != nil {
			cand.Release()
		}
		return m.Current(), err
	}
	var gen uint64
	if cand.RankQuery != nil || cand.TopK != nil {
		gen = m.server.SwapRanked(serve.Ranked{
			N: cand.N, Rank: cand.Rank, Bound: cand.Bound,
			Query: cand.RankQuery, TopK: cand.TopK, Scores: cand.Scores,
			Drift: cand.Drift,
		})
	} else {
		gen = m.server.SwapMat(cand.N, cand.Query)
	}
	if gen == 0 {
		if cand.Release != nil {
			cand.Release()
		}
		return m.Current(), fmt.Errorf("reload: %w", serve.ErrClosed)
	}
	// The swap has returned, which means the previous generation's
	// batcher is drained: no in-flight query references its factors any
	// more, so this is the first moment its pinned resources (mmap) may
	// be released. m.mu is held for the whole lifecycle, serialising
	// access to m.release.
	if m.release != nil {
		m.release()
	}
	m.release = cand.Release
	st := Status{
		Generation:   gen,
		Meta:         cand.Meta,
		BuildSeconds: cand.Meta.BuildTime.Seconds(),
		SwappedAt:    time.Now(),
	}
	m.cur.Store(&st)
	metrics.ReloadSucceeded(time.Since(start).Seconds())
	return st, nil
}

// probeNodes picks a few spread-out node ids to smoke-query: the ends and
// middle catch off-by-one shape bugs that a single probe would miss.
func probeNodes(n int) []int {
	probes := []int{0}
	if n > 2 {
		probes = append(probes, n/2)
	}
	if n > 1 {
		probes = append(probes, n-1)
	}
	return probes
}

// smokeQuery runs the candidate's engine once, preferring the rank-aware
// entry point (at full rank — validation must exercise the path real
// traffic takes, and degraded serving still derives from the same
// factors).
func smokeQuery(c *Candidate, probes []int) (*dense.Mat, error) {
	if c.RankQuery != nil {
		return c.RankQuery(context.Background(), probes, 0, nil)
	}
	return c.Query(probes, nil)
}

// Validate smoke-tests a candidate before it may take traffic: the shape
// must be plausible and a real multi-source query against probe nodes
// must come back with the right dimensions, finite scores, and a positive
// self-similarity (CoSimRank scores a node against itself as 1 plus a
// damped correction, so a zero or negative diagonal means the factors are
// garbage — e.g. an index loaded against the wrong graph orientation).
// This is the gate that turns "the file parsed" into "the engine
// answers"; CRC and header checks live below it in core.ReadIndex.
func Validate(c *Candidate) error {
	if c == nil || (c.Query == nil && c.RankQuery == nil && c.TopK == nil) {
		return fmt.Errorf("%w: no query engine", ErrValidation)
	}
	if c.N <= 0 {
		return fmt.Errorf("%w: implausible node count %d", ErrValidation, c.N)
	}
	probes := probeNodes(c.N)
	if c.Query == nil && c.RankQuery == nil {
		return validateDirect(c, probes)
	}
	mat, err := smokeQuery(c, probes)
	if err != nil {
		return fmt.Errorf("%w: smoke query: %v", ErrValidation, err)
	}
	if mat == nil {
		return fmt.Errorf("%w: smoke query returned no matrix", ErrValidation)
	}
	if mat.Rows != c.N || mat.Cols != len(probes) {
		return fmt.Errorf("%w: smoke query shape %dx%d, want %dx%d",
			ErrValidation, mat.Rows, mat.Cols, c.N, len(probes))
	}
	for j, q := range probes {
		for i := 0; i < mat.Rows; i++ {
			if v := mat.At(i, j); math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: non-finite score %v for pair (%d, %d)", ErrValidation, v, i, q)
			}
		}
		if self := mat.At(q, j); self <= 0 {
			return fmt.Errorf("%w: self-similarity of node %d is %v, want > 0", ErrValidation, q, self)
		}
	}
	return nil
}

// validateDirect smoke-tests a candidate that only serves through direct
// funcs (no column path to shape-check an n x |Q| matrix against). Each
// probe node gets a real single-source top-k — exercising the gather,
// fan-out and merge a wire router runs per request — and, when targeted
// scores are offered, a probes x probes score matrix whose diagonal must
// be positive (self-similarity is 1 plus a damped correction, so zero or
// negative means the cluster's shards disagree about the graph).
func validateDirect(c *Candidate, probes []int) error {
	ctx := context.Background()
	for _, q := range probes {
		items, prov, err := c.TopK(ctx, []int{q}, 3, 0)
		if err != nil {
			return fmt.Errorf("%w: direct top-k probe of node %d: %v", ErrValidation, q, err)
		}
		if prov.MissingShards > 0 {
			return fmt.Errorf("%w: direct top-k probe of node %d answered with %d shards missing", ErrValidation, q, prov.MissingShards)
		}
		for _, it := range items {
			if math.IsNaN(it.Score) || math.IsInf(it.Score, 0) {
				return fmt.Errorf("%w: non-finite score %v for pair (%d, %d)", ErrValidation, it.Score, it.Node, q)
			}
			if it.Node == q {
				return fmt.Errorf("%w: top-k of node %d contains the query node", ErrValidation, q)
			}
		}
	}
	if c.Scores == nil {
		return nil
	}
	mat, err := c.Scores(ctx, probes, probes, 0)
	if err != nil {
		return fmt.Errorf("%w: direct score probe: %v", ErrValidation, err)
	}
	if mat == nil || !mat.IsShape(len(probes), len(probes)) {
		return fmt.Errorf("%w: direct score probe shape, want %dx%d", ErrValidation, len(probes), len(probes))
	}
	for i := range probes {
		for j := range probes {
			if v := mat.At(i, j); math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: non-finite score %v for pair (%d, %d)", ErrValidation, v, probes[i], probes[j])
			}
		}
		if self := mat.At(i, i); self <= 0 {
			return fmt.Errorf("%w: self-similarity of node %d is %v, want > 0", ErrValidation, probes[i], self)
		}
	}
	return nil
}

package reload

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"csrplus/internal/dense"
	"csrplus/internal/serve"
)

// fakeEngine answers multi-source passes with score gen + i/(2n) for node
// i, mirroring the generation-encoded engines of the serve swap tests.
func fakeEngine(n int, gen uint64) serve.MatQueryFunc {
	return func(queries []int, scratch *dense.Mat) (*dense.Mat, error) {
		m := scratch.Reuse(n, len(queries))
		for j := range queries {
			for i := 0; i < n; i++ {
				m.Set(i, j, float64(gen)+float64(i)/float64(2*n))
			}
		}
		return m, nil
	}
}

func candidate(n int, gen uint64) *Candidate {
	return &Candidate{
		N:     n,
		Query: fakeEngine(n, gen),
		Meta:  Meta{Source: "rebuild", Algorithm: "fake", N: n, M: int64(n), Rank: 3},
	}
}

func newManager(t *testing.T, n int) (*Manager, *serve.Server, *uint64) {
	t.Helper()
	gen := uint64(1)
	sv := serve.NewMat(n, fakeEngine(n, 1), serve.Config{Linger: -1})
	t.Cleanup(sv.Close)
	load := func(ctx context.Context) (*Candidate, error) {
		return candidate(n, gen), nil
	}
	return New(sv, load, Meta{Source: "boot", Algorithm: "fake", N: n}), sv, &gen
}

func TestManagerBootStatus(t *testing.T) {
	m, sv, _ := newManager(t, 8)
	st := m.Current()
	if st.Generation != 1 || st.Source != "boot" {
		t.Fatalf("boot status = %+v", st)
	}
	if sv.Generation() != 1 {
		t.Fatalf("server generation = %d", sv.Generation())
	}
}

func TestManagerReloadSwapsGeneration(t *testing.T) {
	m, sv, gen := newManager(t, 8)
	*gen = 7 // the next candidate encodes generation 7 in its scores
	st, err := m.Reload(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != 2 || st.Source != "rebuild" {
		t.Fatalf("status after reload = %+v", st)
	}
	if m.Current().Generation != 2 {
		t.Fatalf("Current() = %+v", m.Current())
	}
	matches, _, err := sv.TopK(context.Background(), []int{3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(matches[0].Score) != 7 {
		t.Fatalf("post-reload scores from wrong engine: %v", matches)
	}
	if sv.Metrics().Reloads() != 1 || sv.Metrics().ReloadFailures() != 0 {
		t.Fatalf("reload counters: %d/%d", sv.Metrics().Reloads(), sv.Metrics().ReloadFailures())
	}
	if sv.Metrics().ReloadDuration.Snapshot().Count != 1 {
		t.Fatal("reload duration not observed")
	}
}

func TestManagerLoadFailureKeepsServing(t *testing.T) {
	sv := serve.NewMat(8, fakeEngine(8, 1), serve.Config{Linger: -1})
	defer sv.Close()
	boom := errors.New("disk on fire")
	m := New(sv, func(ctx context.Context) (*Candidate, error) { return nil, boom }, Meta{Source: "boot"})
	st, err := m.Reload(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the loader's error", err)
	}
	if st.Generation != 1 {
		t.Fatalf("failed reload advanced the generation: %+v", st)
	}
	if _, _, err := sv.TopK(context.Background(), []int{1}, 2); err != nil {
		t.Fatalf("old generation stopped serving after failed reload: %v", err)
	}
	if sv.Metrics().ReloadFailures() != 1 {
		t.Fatalf("reload_failures = %d", sv.Metrics().ReloadFailures())
	}
	if sv.Metrics().Generation() != 1 {
		t.Fatalf("generation gauge moved on failure: %d", sv.Metrics().Generation())
	}
}

func TestManagerValidationFailureKeepsServing(t *testing.T) {
	bad := map[string]*Candidate{
		"nil candidate":  nil,
		"no engine":      {N: 8},
		"non-positive n": {N: 0, Query: fakeEngine(8, 2)},
		"query error": {N: 8, Query: func([]int, *dense.Mat) (*dense.Mat, error) {
			return nil, errors.New("broken index")
		}},
		"wrong shape": {N: 8, Query: fakeEngine(4, 2)},
		"nan scores": {N: 8, Query: func(q []int, s *dense.Mat) (*dense.Mat, error) {
			m := s.Reuse(8, len(q))
			m.Set(3, 0, math.NaN())
			return m, nil
		}},
		"zero self-similarity": {N: 8, Query: func(q []int, s *dense.Mat) (*dense.Mat, error) {
			m := s.Reuse(8, len(q))
			return m, nil // all-zero matrix: diagonal violates the floor
		}},
	}
	for name, cand := range bad {
		cand := cand
		t.Run(name, func(t *testing.T) {
			sv := serve.NewMat(8, fakeEngine(8, 1), serve.Config{Linger: -1})
			defer sv.Close()
			m := New(sv, func(context.Context) (*Candidate, error) { return cand, nil }, Meta{})
			st, err := m.Reload(context.Background())
			if !errors.Is(err, ErrValidation) {
				t.Fatalf("err = %v, want ErrValidation", err)
			}
			if st.Generation != 1 || sv.Generation() != 1 {
				t.Fatalf("rejected candidate advanced the generation: %+v", st)
			}
			if _, _, err := sv.TopK(context.Background(), []int{1}, 2); err != nil {
				t.Fatalf("old generation broken after rejection: %v", err)
			}
		})
	}
}

func TestManagerConcurrentReloadsFailFast(t *testing.T) {
	sv := serve.NewMat(8, fakeEngine(8, 1), serve.Config{Linger: -1})
	defer sv.Close()
	entered := make(chan struct{})
	release := make(chan struct{})
	m := New(sv, func(ctx context.Context) (*Candidate, error) {
		close(entered)
		<-release
		return candidate(8, 2), nil
	}, Meta{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := m.Reload(context.Background()); err != nil {
			t.Error(err)
		}
	}()
	<-entered // first reload is mid-load and holds the lifecycle lock
	if _, err := m.Reload(context.Background()); !errors.Is(err, ErrInProgress) {
		t.Fatalf("concurrent reload: err = %v, want ErrInProgress", err)
	}
	close(release)
	wg.Wait()
	if m.Current().Generation != 2 {
		t.Fatalf("winning reload did not land: %+v", m.Current())
	}
}

func TestManagerReloadAfterServerClose(t *testing.T) {
	sv := serve.NewMat(8, fakeEngine(8, 1), serve.Config{Linger: -1})
	m := New(sv, func(context.Context) (*Candidate, error) { return candidate(8, 2), nil }, Meta{})
	sv.Close()
	if _, err := m.Reload(context.Background()); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestManagerReloadUnderTraffic drives the full manager path (not just
// Server.Swap) while requests are in flight: five reloads, no failures.
func TestManagerReloadUnderTraffic(t *testing.T) {
	const n = 32
	var mu sync.Mutex
	next := uint64(1)
	sv := serve.NewMat(n, fakeEngine(n, 1), serve.Config{
		Linger: 100 * time.Microsecond, MaxPending: 1 << 14,
	})
	defer sv.Close()
	m := New(sv, func(ctx context.Context) (*Candidate, error) {
		mu.Lock()
		next++
		g := next
		mu.Unlock()
		return candidate(n, g), nil
	}, Meta{Source: "boot"})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := sv.TopK(context.Background(), []int{(w + i) % n}, 3); err != nil {
					t.Errorf("request failed mid-reload: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 5; r++ {
		time.Sleep(2 * time.Millisecond)
		if _, err := m.Reload(context.Background()); err != nil {
			t.Fatalf("reload %d: %v", r, err)
		}
	}
	close(stop)
	wg.Wait()
	if got := m.Current().Generation; got != 6 {
		t.Fatalf("generation = %d, want 6", got)
	}
}

func TestValidateProbeNodes(t *testing.T) {
	for _, tc := range []struct{ n, want int }{{1, 1}, {2, 2}, {3, 3}, {100, 3}} {
		if got := len(probeNodes(tc.n)); got != tc.want {
			t.Fatalf("probeNodes(%d) = %d probes, want %d", tc.n, got, tc.want)
		}
	}
	// A real-looking candidate with n=1 must validate (degenerate graphs
	// exist in tests and tiny deployments).
	if err := Validate(candidate(1, 1)); err != nil {
		t.Fatalf("n=1 candidate rejected: %v", err)
	}
}

func ExampleManager() {
	sv := serve.NewMat(4, fakeEngine(4, 1), serve.Config{Linger: -1})
	defer sv.Close()
	m := New(sv, func(context.Context) (*Candidate, error) { return candidate(4, 2), nil },
		Meta{Source: "boot"})
	st, _ := m.Reload(context.Background())
	fmt.Println(st.Generation, st.Source)
	// Output: 2 rebuild
}

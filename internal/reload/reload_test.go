package reload

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"csrplus/internal/dense"
	"csrplus/internal/serve"
)

// fakeEngine answers multi-source passes with score gen + i/(2n) for node
// i, mirroring the generation-encoded engines of the serve swap tests.
func fakeEngine(n int, gen uint64) serve.MatQueryFunc {
	return func(queries []int, scratch *dense.Mat) (*dense.Mat, error) {
		m := scratch.Reuse(n, len(queries))
		for j := range queries {
			for i := 0; i < n; i++ {
				m.Set(i, j, float64(gen)+float64(i)/float64(2*n))
			}
		}
		return m, nil
	}
}

func candidate(n int, gen uint64) *Candidate {
	return &Candidate{
		N:     n,
		Query: fakeEngine(n, gen),
		Meta:  Meta{Source: "rebuild", Algorithm: "fake", N: n, M: int64(n), Rank: 3},
	}
}

func newManager(t *testing.T, n int) (*Manager, *serve.Server, *uint64) {
	t.Helper()
	gen := uint64(1)
	sv := serve.NewMat(n, fakeEngine(n, 1), serve.Config{Linger: -1})
	t.Cleanup(sv.Close)
	load := func(ctx context.Context) (*Candidate, error) {
		return candidate(n, gen), nil
	}
	return New(sv, load, Meta{Source: "boot", Algorithm: "fake", N: n}), sv, &gen
}

func TestManagerBootStatus(t *testing.T) {
	m, sv, _ := newManager(t, 8)
	st := m.Current()
	if st.Generation != 1 || st.Source != "boot" {
		t.Fatalf("boot status = %+v", st)
	}
	if sv.Generation() != 1 {
		t.Fatalf("server generation = %d", sv.Generation())
	}
}

func TestManagerReloadSwapsGeneration(t *testing.T) {
	m, sv, gen := newManager(t, 8)
	*gen = 7 // the next candidate encodes generation 7 in its scores
	st, err := m.Reload(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != 2 || st.Source != "rebuild" {
		t.Fatalf("status after reload = %+v", st)
	}
	if m.Current().Generation != 2 {
		t.Fatalf("Current() = %+v", m.Current())
	}
	matches, _, err := sv.TopK(context.Background(), []int{3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(matches[0].Score) != 7 {
		t.Fatalf("post-reload scores from wrong engine: %v", matches)
	}
	if sv.Metrics().Reloads() != 1 || sv.Metrics().ReloadFailures() != 0 {
		t.Fatalf("reload counters: %d/%d", sv.Metrics().Reloads(), sv.Metrics().ReloadFailures())
	}
	if sv.Metrics().ReloadDuration.Snapshot().Count != 1 {
		t.Fatal("reload duration not observed")
	}
}

// noRetry keeps legacy failure tests deterministic and fast: one attempt
// per run, breaker disabled.
var noRetry = Policy{MaxAttempts: 1, BaseBackoff: time.Millisecond}

func TestManagerLoadFailureKeepsServing(t *testing.T) {
	sv := serve.NewMat(8, fakeEngine(8, 1), serve.Config{Linger: -1})
	defer sv.Close()
	boom := errors.New("disk on fire")
	m := NewWithPolicy(sv, func(ctx context.Context) (*Candidate, error) { return nil, boom }, Meta{Source: "boot"}, noRetry)
	st, err := m.Reload(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the loader's error", err)
	}
	if st.Generation != 1 {
		t.Fatalf("failed reload advanced the generation: %+v", st)
	}
	if _, _, err := sv.TopK(context.Background(), []int{1}, 2); err != nil {
		t.Fatalf("old generation stopped serving after failed reload: %v", err)
	}
	if sv.Metrics().ReloadFailures() != 1 {
		t.Fatalf("reload_failures = %d", sv.Metrics().ReloadFailures())
	}
	if sv.Metrics().Generation() != 1 {
		t.Fatalf("generation gauge moved on failure: %d", sv.Metrics().Generation())
	}
}

func TestManagerValidationFailureKeepsServing(t *testing.T) {
	bad := map[string]*Candidate{
		"nil candidate":  nil,
		"no engine":      {N: 8},
		"non-positive n": {N: 0, Query: fakeEngine(8, 2)},
		"query error": {N: 8, Query: func([]int, *dense.Mat) (*dense.Mat, error) {
			return nil, errors.New("broken index")
		}},
		"wrong shape": {N: 8, Query: fakeEngine(4, 2)},
		"nan scores": {N: 8, Query: func(q []int, s *dense.Mat) (*dense.Mat, error) {
			m := s.Reuse(8, len(q))
			m.Set(3, 0, math.NaN())
			return m, nil
		}},
		"zero self-similarity": {N: 8, Query: func(q []int, s *dense.Mat) (*dense.Mat, error) {
			m := s.Reuse(8, len(q))
			return m, nil // all-zero matrix: diagonal violates the floor
		}},
	}
	for name, cand := range bad {
		cand := cand
		t.Run(name, func(t *testing.T) {
			sv := serve.NewMat(8, fakeEngine(8, 1), serve.Config{Linger: -1})
			defer sv.Close()
			m := NewWithPolicy(sv, func(context.Context) (*Candidate, error) { return cand, nil }, Meta{}, noRetry)
			st, err := m.Reload(context.Background())
			if !errors.Is(err, ErrValidation) {
				t.Fatalf("err = %v, want ErrValidation", err)
			}
			if st.Generation != 1 || sv.Generation() != 1 {
				t.Fatalf("rejected candidate advanced the generation: %+v", st)
			}
			if _, _, err := sv.TopK(context.Background(), []int{1}, 2); err != nil {
				t.Fatalf("old generation broken after rejection: %v", err)
			}
		})
	}
}

// A trigger landing mid-reload must neither queue nor vanish: it returns
// ErrCoalesced immediately and the in-flight reload runs the lifecycle
// once more before releasing the lock.
func TestManagerConcurrentReloadsCoalesce(t *testing.T) {
	sv := serve.NewMat(8, fakeEngine(8, 1), serve.Config{Linger: -1})
	defer sv.Close()
	var calls atomic.Int32
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	m := New(sv, func(ctx context.Context) (*Candidate, error) {
		entered <- struct{}{}
		if calls.Add(1) == 1 {
			<-release // only the first load blocks; the coalesced re-run flows
		}
		return candidate(8, 2), nil
	}, Meta{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := m.Reload(context.Background()); err != nil {
			t.Error(err)
		}
	}()
	<-entered // first reload is mid-load and holds the lifecycle lock
	if _, err := m.Reload(context.Background()); !errors.Is(err, ErrCoalesced) {
		t.Fatalf("concurrent reload: err = %v, want ErrCoalesced", err)
	}
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 2 {
		t.Fatalf("loader ran %d times, want 2 (original + coalesced re-run)", got)
	}
	if m.Current().Generation != 3 {
		t.Fatalf("coalesced trigger did not land its own generation: %+v", m.Current())
	}
}

// A failing lifecycle pass must be retried with backoff inside one Reload
// call — transient I/O clears, the operator never sees it.
func TestManagerRetriesTransientFailure(t *testing.T) {
	sv := serve.NewMat(8, fakeEngine(8, 1), serve.Config{Linger: -1})
	defer sv.Close()
	var calls atomic.Int32
	m := NewWithPolicy(sv, func(ctx context.Context) (*Candidate, error) {
		if calls.Add(1) < 3 {
			return nil, errors.New("transient: snapshot mid-publish")
		}
		return candidate(8, 2), nil
	}, Meta{}, Policy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})

	st, err := m.Reload(context.Background())
	if err != nil {
		t.Fatalf("reload with transient failures: %v", err)
	}
	if st.Generation != 2 || calls.Load() != 3 {
		t.Fatalf("gen=%d after %d loads; want gen 2 after 3", st.Generation, calls.Load())
	}
	mtr := sv.Metrics()
	if mtr.ReloadRetries() != 2 || mtr.ReloadFailures() != 0 || mtr.Reloads() != 1 {
		t.Fatalf("retries/failures/reloads = %d/%d/%d, want 2/0/1",
			mtr.ReloadRetries(), mtr.ReloadFailures(), mtr.Reloads())
	}
}

// Consecutive failed runs open the breaker: triggers fail fast without a
// load attempt until the cooldown elapses, then one probe run closes it
// again on success.
func TestManagerBreakerOpensAndRecovers(t *testing.T) {
	sv := serve.NewMat(8, fakeEngine(8, 1), serve.Config{Linger: -1})
	defer sv.Close()
	var calls atomic.Int32
	var healthy atomic.Bool
	m := NewWithPolicy(sv, func(ctx context.Context) (*Candidate, error) {
		calls.Add(1)
		if !healthy.Load() {
			return nil, errors.New("snapshot source down")
		}
		return candidate(8, 2), nil
	}, Meta{}, Policy{
		MaxAttempts: 1, BaseBackoff: time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond,
	})

	for i := 0; i < 2; i++ {
		if _, err := m.Reload(context.Background()); err == nil {
			t.Fatalf("reload %d unexpectedly succeeded", i)
		}
	}
	if b := m.Breaker(); !b.Open || b.ConsecutiveFailures != 2 {
		t.Fatalf("breaker after threshold failures: %+v", b)
	}
	before := calls.Load()
	if _, err := m.Reload(context.Background()); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker: err = %v, want ErrBreakerOpen", err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker still hit the loader")
	}
	if sv.Generation() != 1 {
		t.Fatalf("failed reloads moved the generation: %d", sv.Generation())
	}

	healthy.Store(true)
	time.Sleep(60 * time.Millisecond) // cooldown elapses; next trigger is the probe
	st, err := m.Reload(context.Background())
	if err != nil {
		t.Fatalf("probe reload after cooldown: %v", err)
	}
	if st.Generation != 2 {
		t.Fatalf("probe did not swap: %+v", st)
	}
	if b := m.Breaker(); b.Open || b.ConsecutiveFailures != 0 {
		t.Fatalf("breaker after recovery: %+v", b)
	}
}

// A candidate carrying a RankQuery must install a rank-aware generation:
// degradation works after the swap.
func TestManagerRankedCandidateSwap(t *testing.T) {
	const n, fullRank = 8, 6
	sv := serve.NewMat(n, fakeEngine(n, 1), serve.Config{
		Linger:  -1,
		Degrade: serve.DegradeConfig{Rank: 2, MinBudget: time.Hour},
	})
	defer sv.Close()
	cand := &Candidate{
		N:     n,
		Rank:  fullRank,
		Bound: func(rank int) float64 { return float64(fullRank - rank) },
		RankQuery: func(ctx context.Context, queries []int, rank int, scratch *dense.Mat) (*dense.Mat, error) {
			effective := fullRank
			if rank > 0 && rank < fullRank {
				effective = rank
			}
			m := scratch.Reuse(n, len(queries))
			for j := range queries {
				for i := 0; i < n; i++ {
					m.Set(i, j, float64(effective))
				}
			}
			return m, nil
		},
		Meta: Meta{Source: "snapshot", Rank: fullRank},
	}
	m := NewWithPolicy(sv, func(context.Context) (*Candidate, error) { return cand, nil }, Meta{}, noRetry)
	if _, err := m.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := sv.Search(ctx, []int{1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Info.Degraded || res.Info.EffectiveRank != 2 || res.Info.FullRank != fullRank {
		t.Fatalf("post-swap degradation info = %+v", res.Info)
	}
	if res.Info.ErrorBound != float64(fullRank-2) {
		t.Fatalf("bound = %v, want %d", res.Info.ErrorBound, fullRank-2)
	}
}

func TestManagerReloadAfterServerClose(t *testing.T) {
	sv := serve.NewMat(8, fakeEngine(8, 1), serve.Config{Linger: -1})
	m := New(sv, func(context.Context) (*Candidate, error) { return candidate(8, 2), nil }, Meta{})
	sv.Close()
	if _, err := m.Reload(context.Background()); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestManagerReloadUnderTraffic drives the full manager path (not just
// Server.Swap) while requests are in flight: five reloads, no failures.
func TestManagerReloadUnderTraffic(t *testing.T) {
	const n = 32
	var mu sync.Mutex
	next := uint64(1)
	sv := serve.NewMat(n, fakeEngine(n, 1), serve.Config{
		Linger: 100 * time.Microsecond, MaxPending: 1 << 14,
	})
	defer sv.Close()
	m := New(sv, func(ctx context.Context) (*Candidate, error) {
		mu.Lock()
		next++
		g := next
		mu.Unlock()
		return candidate(n, g), nil
	}, Meta{Source: "boot"})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := sv.TopK(context.Background(), []int{(w + i) % n}, 3); err != nil {
					t.Errorf("request failed mid-reload: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 5; r++ {
		time.Sleep(2 * time.Millisecond)
		if _, err := m.Reload(context.Background()); err != nil {
			t.Fatalf("reload %d: %v", r, err)
		}
	}
	close(stop)
	wg.Wait()
	if got := m.Current().Generation; got != 6 {
		t.Fatalf("generation = %d, want 6", got)
	}
}

func TestValidateProbeNodes(t *testing.T) {
	for _, tc := range []struct{ n, want int }{{1, 1}, {2, 2}, {3, 3}, {100, 3}} {
		if got := len(probeNodes(tc.n)); got != tc.want {
			t.Fatalf("probeNodes(%d) = %d probes, want %d", tc.n, got, tc.want)
		}
	}
	// A real-looking candidate with n=1 must validate (degenerate graphs
	// exist in tests and tiny deployments).
	if err := Validate(candidate(1, 1)); err != nil {
		t.Fatalf("n=1 candidate rejected: %v", err)
	}
}

func ExampleManager() {
	sv := serve.NewMat(4, fakeEngine(4, 1), serve.Config{Linger: -1})
	defer sv.Close()
	m := New(sv, func(context.Context) (*Candidate, error) { return candidate(4, 2), nil },
		Meta{Source: "boot"})
	st, _ := m.Reload(context.Background())
	fmt.Println(st.Generation, st.Source)
	// Output: 2 rebuild
}

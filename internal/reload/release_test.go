package reload

// release_test.go pins the generation-lifetime contract Candidate.Release
// exists for: a mapped v2 snapshot's factors must stay valid until the
// serve layer has drained every in-flight query against them, and must
// be freed exactly once afterwards.

import (
	"context"
	"sync/atomic"
	"testing"

	"csrplus/internal/serve"
)

func TestReleaseDeferredUntilNextSwap(t *testing.T) {
	n := 8
	sv := serve.NewMat(n, fakeEngine(n, 1), serve.Config{Linger: -1})
	t.Cleanup(sv.Close)

	var bootFreed, aFreed, bFreed atomic.Int64
	next := func(release func()) LoadFunc {
		return func(ctx context.Context) (*Candidate, error) {
			c := candidate(n, 2)
			c.Release = release
			return c, nil
		}
	}

	m := New(sv, next(func() { aFreed.Add(1) }), Meta{Source: "boot"})
	m.SetBootRelease(func() { bootFreed.Add(1) })

	// First reload swaps the boot generation out: boot's pin is released
	// (after the drain inside the swap), candidate A's must NOT be — A
	// is now the one serving traffic.
	if _, err := m.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
	if bootFreed.Load() != 1 {
		t.Fatalf("boot release called %d times after first swap, want 1", bootFreed.Load())
	}
	if aFreed.Load() != 0 {
		t.Fatal("serving generation's release called while it still takes traffic")
	}

	// Second reload brings in B: A drains and is released, B stays
	// pinned, boot is not double-released.
	m.load = next(func() { bFreed.Add(1) })
	if _, err := m.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
	if bootFreed.Load() != 1 || aFreed.Load() != 1 || bFreed.Load() != 0 {
		t.Fatalf("after second swap: boot=%d a=%d b=%d, want 1/1/0",
			bootFreed.Load(), aFreed.Load(), bFreed.Load())
	}
}

func TestReleaseOnValidationFailure(t *testing.T) {
	n := 8
	sv := serve.NewMat(n, fakeEngine(n, 1), serve.Config{Linger: -1})
	t.Cleanup(sv.Close)

	var rejectedFreed, servingFreed atomic.Int64
	load := func(ctx context.Context) (*Candidate, error) {
		c := &Candidate{N: 0, Query: fakeEngine(n, 2)} // fails Validate
		c.Release = func() { rejectedFreed.Add(1) }
		return c, nil
	}
	m := NewWithPolicy(sv, load, Meta{Source: "boot"}, noRetry)
	m.SetBootRelease(func() { servingFreed.Add(1) })

	if _, err := m.Reload(context.Background()); err == nil {
		t.Fatal("reload of invalid candidate succeeded")
	}
	// The rejected candidate never took traffic — freed immediately; the
	// serving generation keeps its pin.
	if rejectedFreed.Load() != 1 {
		t.Fatalf("rejected candidate released %d times, want 1", rejectedFreed.Load())
	}
	if servingFreed.Load() != 0 {
		t.Fatal("serving generation released on a failed reload")
	}
}

func TestReleaseOnSwapRefused(t *testing.T) {
	n := 8
	sv := serve.NewMat(n, fakeEngine(n, 1), serve.Config{Linger: -1})

	var freed atomic.Int64
	load := func(ctx context.Context) (*Candidate, error) {
		c := candidate(n, 2)
		c.Release = func() { freed.Add(1) }
		return c, nil
	}
	m := NewWithPolicy(sv, load, Meta{Source: "boot"}, noRetry)

	sv.Close() // swap will be refused with ErrClosed
	if _, err := m.Reload(context.Background()); err == nil {
		t.Fatal("reload against closed server succeeded")
	}
	if freed.Load() != 1 {
		t.Fatalf("candidate released %d times after refused swap, want 1", freed.Load())
	}
}

package reload_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"csrplus"

	"csrplus/internal/core"
	"csrplus/internal/reload"
	"csrplus/internal/serve"
	"csrplus/internal/shard"
)

const rollN, rollRank = 97, 4

func rollIndex(t testing.TB, seed int64) *core.Index {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]int, 0, 5*rollN)
	for i := 0; i < rollN; i++ {
		edges = append(edges, [2]int{i, (i + 1) % rollN})
		for e := 0; e < 4; e++ {
			edges = append(edges, [2]int{rng.Intn(rollN), rng.Intn(rollN)})
		}
	}
	g, err := csrplus.NewGraph(rollN, edges)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := csrplus.NewEngine(g, csrplus.Options{Rank: rollRank})
	if err != nil {
		t.Fatal(err)
	}
	ix, ok := eng.CoreIndex()
	if !ok {
		t.Fatal("CSR+ engine without a core index")
	}
	return ix
}

func sliceLoader(ix *core.Index) reload.ShardLoadFunc {
	return func(_ context.Context, _, lo, hi int) (*core.IndexShard, error) {
		return ix.Shard(lo, hi)
	}
}

func TestRollShards(t *testing.T) {
	ixA, ixB := rollIndex(t, 1), rollIndex(t, 2)
	rt, err := shard.NewRouterFromIndex(ixA, 3)
	if err != nil {
		t.Fatal(err)
	}
	swapped, err := reload.RollShards(context.Background(), rt, sliceLoader(ixB))
	if err != nil || swapped != 3 {
		t.Fatalf("swapped=%d err=%v, want 3, nil", swapped, err)
	}
	for s, gen := range rt.Generations() {
		if gen != 2 {
			t.Fatalf("shard %d at generation %d after roll, want 2", s, gen)
		}
	}
	// Post-roll answers are index B's, bitwise.
	want, err := ixB.QueryRankInto(context.Background(), []int{5, 60}, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rt.QueryRankInto(context.Background(), []int{5, 60}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 0) {
		t.Fatal("rolled router does not answer from the new index")
	}
}

// A load failure mid-roll must leave the already-swapped prefix on the
// new generation, everything else on the old — and the router serving
// exactly throughout.
func TestRollShardsPartialFailure(t *testing.T) {
	ixA, ixB := rollIndex(t, 1), rollIndex(t, 2)
	rt, err := shard.NewRouterFromIndex(ixA, 4)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	swapped, err := reload.RollShards(context.Background(), rt, func(ctx context.Context, s, lo, hi int) (*core.IndexShard, error) {
		if s == 2 {
			return nil, boom
		}
		return ixB.Shard(lo, hi)
	})
	if !errors.Is(err, boom) || swapped != 2 {
		t.Fatalf("swapped=%d err=%v, want 2, wrapped boom", swapped, err)
	}
	want := []uint64{2, 2, 1, 1}
	for s, gen := range rt.Generations() {
		if gen != want[s] {
			t.Fatalf("generations = %v, want %v", rt.Generations(), want)
		}
	}
	if _, err := rt.TopK(context.Background(), []int{5, 60}, 10); err != nil {
		t.Fatalf("mid-roll router stopped serving: %v", err)
	}
	// A later successful roll converges every slot (generation counters
	// are per slot, so the prefix that already swapped runs one ahead).
	if swapped, err := reload.RollShards(context.Background(), rt, sliceLoader(ixB)); err != nil || swapped != 4 {
		t.Fatalf("convergence roll: swapped=%d err=%v", swapped, err)
	}
	want = []uint64{3, 3, 2, 2}
	for s, gen := range rt.Generations() {
		if gen != want[s] {
			t.Fatalf("generations after convergence = %v, want %v", rt.Generations(), want)
		}
	}
	wantMat, err := ixB.QueryRankInto(context.Background(), []int{5, 60}, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rt.QueryRankInto(context.Background(), []int{5, 60}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(wantMat, 0) {
		t.Fatal("converged router does not answer from the new index")
	}
}

// A candidate that fails validation must never take traffic: the roll
// stops at that slot with the old generation still installed.
func TestRollShardsValidationGate(t *testing.T) {
	ixA := rollIndex(t, 1)
	rt, err := shard.NewRouterFromIndex(ixA, 3)
	if err != nil {
		t.Fatal(err)
	}
	swapped, err := reload.RollShards(context.Background(), rt, func(_ context.Context, s, lo, hi int) (*core.IndexShard, error) {
		sh, err := ixA.Shard(lo, hi)
		if err != nil {
			return nil, err
		}
		if s == 1 {
			// Poison the candidate's factors. The shard views the index's
			// backing array, so persist a copy first: round-trip through
			// the wire format to get an independent allocation.
			sh = copyShard(ixA, lo, hi)
			sh.URow(lo)[0] = math.NaN()
		}
		return sh, nil
	})
	if !errors.Is(err, reload.ErrValidation) || swapped != 1 {
		t.Fatalf("swapped=%d err=%v, want 1, ErrValidation", swapped, err)
	}
	gens := rt.Generations()
	if gens[0] != 2 || gens[1] != 1 || gens[2] != 1 {
		t.Fatalf("generations = %v, want [2 1 1]", gens)
	}
}

// copyShard returns a shard over [lo, hi) backed by its own allocation
// (a wire-format round trip), so tests can corrupt it without touching
// the source index's shared backing array.
func copyShard(ix *core.Index, lo, hi int) *core.IndexShard {
	sh, err := ix.Shard(lo, hi)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if _, err := sh.WriteTo(&buf); err != nil {
		panic(err)
	}
	back, err := core.ReadShard(&buf)
	if err != nil {
		panic(err)
	}
	return back
}

func TestRollShardsHonoursContext(t *testing.T) {
	ixA := rollIndex(t, 1)
	rt, err := shard.NewRouterFromIndex(ixA, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	swapped, err := reload.RollShards(ctx, rt, sliceLoader(ixA))
	if !errors.Is(err, context.Canceled) || swapped != 0 {
		t.Fatalf("swapped=%d err=%v, want 0, context.Canceled", swapped, err)
	}
}

// TestShardedReloadUnderFire extends the PR 3 reload-under-fire contract
// to the sharded backend: a serve.Server fronting a Router takes
// uninterrupted traffic while rolling reloads continuously swap shard
// factors underneath it. Zero requests may fail or return degenerate
// scores (each request snapshots a consistent piecewise index, even
// mid-roll), and once the rolls stop the served answers must be
// bitwise those of the final index.
func TestShardedReloadUnderFire(t *testing.T) {
	ixA, ixB := rollIndex(t, 1), rollIndex(t, 2)
	rt, err := shard.NewRouterFromIndex(ixA, 3)
	if err != nil {
		t.Fatal(err)
	}
	sv := serve.NewRanked(serve.Ranked{
		N: rt.N(), Rank: rt.Rank(), Bound: rt.TruncationBound, Query: rt.QueryRankInto,
	}, serve.Config{Linger: -1, MaxPending: 4096, Workers: 4})
	defer sv.Close()

	queries := []int{5, 60}
	var failed atomic.Int64
	stop := make(chan struct{})
	var rollers sync.WaitGroup
	rollers.Add(1)
	go func() {
		defer rollers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			src := ixA
			if i%2 == 0 {
				src = ixB
			}
			if _, err := reload.RollShards(context.Background(), rt, sliceLoader(src)); err != nil {
				t.Errorf("roll %d: %v", i, err)
				return
			}
		}
	}()

	var hammers sync.WaitGroup
	for w := 0; w < 4; w++ {
		hammers.Add(1)
		go func() {
			defer hammers.Done()
			for i := 0; i < 300; i++ {
				res, err := sv.Search(context.Background(), queries, 10)
				if err != nil {
					failed.Add(1)
					t.Errorf("request failed under rolling reload: %v", err)
					return
				}
				if len(res.Matches) == 0 {
					failed.Add(1)
					t.Error("empty match set under rolling reload")
					return
				}
				for _, m := range res.Matches {
					if math.IsNaN(m.Score) || math.IsInf(m.Score, 0) {
						failed.Add(1)
						t.Errorf("non-finite score %v under rolling reload", m.Score)
						return
					}
				}
			}
		}()
	}
	hammers.Wait()
	close(stop)
	rollers.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d requests failed during rolling reloads, want 0", n)
	}
	// After the dust settles, one final roll pins the router to index B
	// and the server must answer exactly from it.
	if _, err := reload.RollShards(context.Background(), rt, sliceLoader(ixB)); err != nil {
		t.Fatal(err)
	}
	res, err := sv.Search(context.Background(), queries, 10)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rt.TopK(context.Background(), queries, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != len(want) {
		t.Fatalf("%d matches, want %d", len(res.Matches), len(want))
	}
	for i := range want {
		if res.Matches[i].Node != want[i].Node || res.Matches[i].Score != want[i].Score {
			t.Fatalf("match %d: served (%d, %v), router says (%d, %v)",
				i, res.Matches[i].Node, res.Matches[i].Score, want[i].Node, want[i].Score)
		}
	}
}

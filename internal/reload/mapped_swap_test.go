package reload

// mapped_swap_test.go pins the v2 acceptance property end to end: an
// index served from a memory-mapped snapshot answers bitwise-identically
// to the v1 decode of the same factors — including THROUGH reload swaps
// under concurrent query load, where a lifetime bug (early munmap, torn
// generation) would surface as a wrong score or a crash. Run with -race.

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"csrplus/internal/core"
	"csrplus/internal/dense"
	"csrplus/internal/graph"
	"csrplus/internal/serve"
)

func TestMappedReloadSwapBitwiseIdenticalToV1(t *testing.T) {
	g, err := graph.ErdosRenyi(80, 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.Precompute(g, core.Options{Rank: 6})
	if err != nil {
		t.Fatal(err)
	}
	n := ix.N()

	// The reference: the same index through the v1 encode/decode path.
	var v1 bytes.Buffer
	if _, err := ix.WriteTo(&v1); err != nil {
		t.Fatal(err)
	}
	refIx, err := core.ReadIndex(&v1)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([][]float64, n)
	for q := range ref {
		if ref[q], err = refIx.QueryOne(q); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	if _, _, err := core.WriteSnapshot(dir, ix); err != nil {
		t.Fatal(err)
	}

	rankQuery := func(ix *core.Index) serve.RankQueryFunc {
		return func(ctx context.Context, queries []int, rank int, scratch *dense.Mat) (*dense.Mat, error) {
			return ix.QueryRankInto(ctx, queries, rank, scratch, nil)
		}
	}
	var mu sync.Mutex
	pinned := 0 // mapped generations not yet released
	loader := func(ctx context.Context) (*Candidate, error) {
		mapped, _, _, err := core.RecoverSnapshot(dir)
		if err != nil {
			return nil, err
		}
		if mapped.Mapped() {
			mu.Lock()
			pinned++
			mu.Unlock()
		}
		return &Candidate{
			N:         mapped.N(),
			RankQuery: rankQuery(mapped),
			Rank:      mapped.Rank(),
			Bound:     mapped.TruncationBound,
			Meta:      Meta{Source: "snapshot"},
			Release: func() {
				if mapped.Mapped() {
					mu.Lock()
					pinned--
					mu.Unlock()
				}
				mapped.Close()
			},
		}, nil
	}

	sv := serve.NewRanked(serve.Ranked{
		N: n, Rank: ix.Rank(), Bound: ix.TruncationBound, Query: rankQuery(ix),
	}, serve.Config{MaxBatch: 8, Linger: 100 * time.Microsecond, Workers: 4, MaxPending: 256})
	defer sv.Close()
	man := New(sv, loader, Meta{Source: "boot"})

	stop := make(chan struct{})
	var hwg sync.WaitGroup
	for w := 0; w < 4; w++ {
		hwg.Add(1)
		go func(w int) {
			defer hwg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := (w*41 + i*13) % n
				tgt := (q + 7) % n
				res, err := sv.Score(context.Background(), []int{q}, []int{tgt})
				if err != nil {
					t.Errorf("query during mapped swaps: %v", err)
					return
				}
				if got, want := res.Pairs[0].Score, ref[q][tgt]; math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("mapped answer not bitwise-identical to v1 decode: (%d,%d) = %x, want %x",
						q, tgt, got, want)
					return
				}
			}
		}(w)
	}

	const swaps = 5
	for i := 0; i < swaps; i++ {
		if _, err := man.Reload(context.Background()); err != nil {
			t.Fatalf("mapped reload %d: %v", i, err)
		}
	}
	close(stop)
	hwg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if pinned > 1 {
		t.Fatalf("%d mapped generations still pinned after %d swaps, want at most the serving one", pinned, swaps)
	}
	if pinned == 0 {
		// mmap unavailable on this platform: the swap/drain contract was
		// still exercised through the decode path above.
		t.Logf("mmap unavailable here; test ran against the decode fallback")
	}

	// Full-column sweep on a freshly mapped (or fallback-decoded) load:
	// every entry of every column bitwise-equal to the v1 reference.
	final, err := core.LoadIndex(fmt.Sprintf("%s/%s", dir, core.SnapshotName(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	for q := 0; q < n; q++ {
		col, err := final.QueryOne(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range col {
			if math.Float64bits(col[i]) != math.Float64bits(ref[q][i]) {
				t.Fatalf("column %d entry %d: mapped %x, v1 %x", q, i, col[i], ref[q][i])
			}
		}
	}
}

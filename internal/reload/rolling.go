package reload

// rolling.go extends the reload lifecycle to a sharded backend: instead
// of one load→validate→swap over a monolithic engine, a rolling reload
// walks the shard slots in order and runs load→validate→swap per shard.
// Each slot's swap is atomic, so traffic is never dropped; because only
// one shard is ever mid-swap, at most 1/K of the index is "in motion" at
// any instant, and a failure mid-roll strands nothing — slots already
// rolled serve the new factors, the failed slot and its successors keep
// serving their old generation, and every answer remains exact for the
// generation that produced it (the chaos suite pins this).

import (
	"context"
	"fmt"
	"math"

	"csrplus/internal/core"
	"csrplus/internal/dense"
	"csrplus/internal/fault"
	"csrplus/internal/shard"
)

// ShardLoadFunc produces the replacement factors for shard slot s, which
// covers global node range [lo, hi). It runs on the reloading goroutine,
// never the serving path, and should honour ctx.
type ShardLoadFunc func(ctx context.Context, s, lo, hi int) (*core.IndexShard, error)

// RollShards runs one rolling reload over every slot of rt: for each
// shard in order, load a candidate, validate it (ValidateShard — BEFORE
// the swap, so a candidate that cannot answer queries never takes
// traffic), and atomically swap it in. It returns how many slots were
// swapped; on error, slots [0, swapped) serve the new generation and the
// rest keep their old one — a state the router serves exactly (per-shard
// answers never mix generations), and which the next successful roll
// converges. Callers fronting a result cache must invalidate it even on
// partial rolls: some slots changed factors.
func RollShards(ctx context.Context, rt *shard.Router, load ShardLoadFunc) (swapped int, err error) {
	for s := 0; s < rt.K(); s++ {
		if err := ctx.Err(); err != nil {
			return swapped, fmt.Errorf("reload: rolling swap at shard %d/%d: %w", s, rt.K(), err)
		}
		lo, hi := rt.Plan().Range(s)
		if err := fault.Hit(fault.SiteReloadLoad); err != nil {
			return swapped, fmt.Errorf("reload: loading shard %d/%d: %w", s, rt.K(), err)
		}
		sh, err := load(ctx, s, lo, hi)
		if err != nil {
			return swapped, fmt.Errorf("reload: loading shard %d/%d: %w", s, rt.K(), err)
		}
		if err := ValidateShard(sh); err != nil {
			return swapped, fmt.Errorf("reload: shard %d/%d: %w", s, rt.K(), err)
		}
		if _, err := rt.SwapShard(s, sh); err != nil {
			return swapped, fmt.Errorf("reload: shard %d/%d: %w", s, rt.K(), err)
		}
		swapped++
	}
	return swapped, nil
}

// ValidateShard smoke-tests a shard candidate before it may take traffic,
// mirroring Validate's contract at shard granularity: a partial query
// against probe nodes the shard owns must return finite scores and a
// positive self-similarity for each probe. The probes' U rows come from
// the candidate itself, so validation is self-contained — no cross-shard
// gather — and exercises the exact kernel (PartialInto) serving will use.
func ValidateShard(sh *core.IndexShard) error {
	if sh == nil {
		return fmt.Errorf("%w: nil shard", ErrValidation)
	}
	lo, hi := sh.Lo(), sh.Hi()
	probes := []int{lo}
	if hi-lo > 2 {
		probes = append(probes, lo+(hi-lo)/2)
	}
	if hi-lo > 1 {
		probes = append(probes, hi-1)
	}
	uq := dense.NewMat(len(probes), sh.Rank())
	for j, q := range probes {
		copy(uq.Row(j), sh.URow(q))
	}
	out := dense.NewMat(sh.Rows(), len(probes))
	if err := sh.PartialInto(context.Background(), probes, uq, 0, out); err != nil {
		return fmt.Errorf("%w: smoke query: %v", ErrValidation, err)
	}
	for j, q := range probes {
		for i := 0; i < out.Rows; i++ {
			if v := out.At(i, j); math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: non-finite score %v for pair (%d, %d)", ErrValidation, v, lo+i, q)
			}
		}
		if self := out.At(q-lo, j); self <= 0 {
			return fmt.Errorf("%w: self-similarity of node %d is %v, want > 0", ErrValidation, q, self)
		}
	}
	return nil
}

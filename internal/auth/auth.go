// Package auth is the one constant-time Bearer-token check every admin
// surface shares. csrserver's monolithic /admin routes, the wire shard
// workers, and the ingestion endpoint all guard mutating endpoints with
// the same scheme: a server-side token configured at boot (empty
// disables the surface) matched constant-time against the request's
// Authorization header.
package auth

import (
	"crypto/subtle"
	"net/http"
	"strings"
)

// Verdict classifies one Bearer check.
type Verdict int

const (
	// OK: the request carried the configured token.
	OK Verdict = iota
	// Disabled: no token is configured server-side, so the surface is
	// off regardless of what the request carried.
	Disabled
	// Missing: the request carried no (or an empty) bearer token.
	Missing
	// Bad: a token was presented and it is not the configured one.
	Bad
)

// CheckBearer classifies the Authorization header value against the
// configured token. The token comparison is constant-time; the scheme
// prefix is not secret and is matched directly.
func CheckBearer(header, want string) Verdict {
	if want == "" {
		return Disabled
	}
	token, ok := strings.CutPrefix(header, "Bearer ")
	if !ok || token == "" {
		return Missing
	}
	if subtle.ConstantTimeCompare([]byte(token), []byte(want)) != 1 {
		return Bad
	}
	return OK
}

// Require checks r's bearer token against want and reports whether the
// handler may proceed. On failure it writes the standard response
// through fail — 403 for a disabled surface or a wrong token, 401 (with
// a WWW-Authenticate challenge) for a missing one — and returns false.
func Require(w http.ResponseWriter, r *http.Request, want string, fail func(w http.ResponseWriter, status int, msg string)) bool {
	switch CheckBearer(r.Header.Get("Authorization"), want) {
	case OK:
		return true
	case Disabled:
		fail(w, http.StatusForbidden, "admin endpoints disabled: no admin token configured")
	case Missing:
		w.Header().Set("WWW-Authenticate", "Bearer")
		fail(w, http.StatusUnauthorized, "missing bearer token")
	default:
		fail(w, http.StatusForbidden, "bad token")
	}
	return false
}

package auth

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestCheckBearer(t *testing.T) {
	cases := []struct {
		name   string
		header string
		want   string
		verd   Verdict
	}{
		{"ok", "Bearer s3cret", "s3cret", OK},
		{"disabled ignores valid-looking header", "Bearer s3cret", "", Disabled},
		{"disabled ignores empty header", "", "", Disabled},
		{"missing header", "", "s3cret", Missing},
		{"wrong scheme", "Basic s3cret", "s3cret", Missing},
		{"empty token after scheme", "Bearer ", "s3cret", Missing},
		{"bad token", "Bearer nope", "s3cret", Bad},
		{"token is a prefix of the real one", "Bearer s3c", "s3cret", Bad},
		{"real token is a prefix of the presented one", "Bearer s3cret-and-more", "s3cret", Bad},
		{"case-sensitive scheme", "bearer s3cret", "s3cret", Missing},
	}
	for _, tc := range cases {
		if got := CheckBearer(tc.header, tc.want); got != tc.verd {
			t.Errorf("%s: CheckBearer(%q, %q) = %v, want %v", tc.name, tc.header, tc.want, got, tc.verd)
		}
	}
}

func TestRequireWritesStandardResponses(t *testing.T) {
	fail := func(w http.ResponseWriter, status int, msg string) {
		http.Error(w, msg, status)
	}
	cases := []struct {
		name      string
		header    string
		want      string
		ok        bool
		status    int
		challenge bool
	}{
		{"ok", "Bearer tok", "tok", true, http.StatusOK, false},
		{"disabled", "Bearer tok", "", false, http.StatusForbidden, false},
		{"missing", "", "tok", false, http.StatusUnauthorized, true},
		{"bad", "Bearer wrong", "tok", false, http.StatusForbidden, false},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/admin/x", nil)
		if tc.header != "" {
			req.Header.Set("Authorization", tc.header)
		}
		got := Require(rec, req, tc.want, fail)
		if got != tc.ok {
			t.Errorf("%s: Require = %v, want %v", tc.name, got, tc.ok)
		}
		if !tc.ok && rec.Code != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, rec.Code, tc.status)
		}
		if hasChallenge := rec.Header().Get("WWW-Authenticate") != ""; hasChallenge != tc.challenge {
			t.Errorf("%s: WWW-Authenticate present=%v, want %v", tc.name, hasChallenge, tc.challenge)
		}
	}
}

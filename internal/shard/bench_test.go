package shard_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"csrplus"

	"csrplus/internal/core"
	"csrplus/internal/dense"
	"csrplus/internal/shard"
)

// The sweep fixture: one serving-scale index shared by every shard
// count, so the K axis is the only thing that varies.
const benchN, benchRank = 20000, 16

var (
	benchOnce sync.Once
	benchIx   *core.Index
	benchErr  error
)

func benchIndex(b *testing.B) *core.Index {
	b.Helper()
	benchOnce.Do(func() {
		rng := rand.New(rand.NewSource(7))
		edges := make([][2]int, 0, 5*benchN)
		for i := 0; i < benchN; i++ {
			edges = append(edges, [2]int{i, (i + 1) % benchN})
			for e := 0; e < 4; e++ {
				edges = append(edges, [2]int{rng.Intn(benchN), rng.Intn(benchN)})
			}
		}
		g, err := csrplus.NewGraph(benchN, edges)
		if err != nil {
			benchErr = err
			return
		}
		eng, err := csrplus.NewEngine(g, csrplus.Options{Rank: benchRank})
		if err != nil {
			benchErr = err
			return
		}
		ix, ok := eng.CoreIndex()
		if !ok {
			benchErr = fmt.Errorf("CSR+ engine without a core index")
			return
		}
		benchIx = ix
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchIx
}

// BenchmarkRouterQueryShardSweep measures the scatter phase (full n x |Q|
// score matrix assembled from per-shard bands) across shard counts. On a
// multi-core host the fan-out parallelises across shards; on one core
// the sweep measures pure routing overhead — the price of sharding when
// it cannot pay, which should stay within noise of K=1.
//
//	go test -run='^$' -bench=RouterQueryShardSweep -benchtime=20x ./internal/shard/
func BenchmarkRouterQueryShardSweep(b *testing.B) {
	ix := benchIndex(b)
	queries := []int{17, 4211, 9973, 13007, 19999, 512, 7777, 15000}
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			rt, err := shard.NewRouterFromIndex(ix, k)
			if err != nil {
				b.Fatal(err)
			}
			var scratch *dense.Mat
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := rt.QueryRankInto(context.Background(), queries, 0, scratch)
				if err != nil {
					b.Fatal(err)
				}
				scratch = m
			}
		})
	}
}

// BenchmarkRouterTopKShardSweep measures the full scatter–gather top-k
// path (per-shard partial selection + global merge), the shape a wire
// split would ship between processes: no n x |Q| matrix is ever
// assembled on one allocation larger than a shard.
//
//	go test -run='^$' -bench=RouterTopKShardSweep -benchtime=20x ./internal/shard/
func BenchmarkRouterTopKShardSweep(b *testing.B) {
	ix := benchIndex(b)
	queries := []int{17, 4211, 9973, 13007, 19999, 512, 7777, 15000}
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			rt, err := shard.NewRouterFromIndex(ix, k)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rt.TopK(context.Background(), queries, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package shard

import (
	"errors"
	"testing"
)

func TestNewPlanValidation(t *testing.T) {
	for _, bad := range [][]int{
		nil,
		{0},
		{1, 5},       // does not start at 0
		{0, 3, 3, 9}, // empty shard
		{0, 5, 2},    // decreasing
	} {
		if _, err := NewPlan(bad); !errors.Is(err, ErrPlan) {
			t.Fatalf("NewPlan(%v): err = %v, want ErrPlan", bad, err)
		}
	}
	p, err := NewPlan([]int{0, 3, 7, 10})
	if err != nil {
		t.Fatal(err)
	}
	if p.K() != 3 || p.N() != 10 {
		t.Fatalf("K=%d N=%d, want 3, 10", p.K(), p.N())
	}
	if lo, hi := p.Range(1); lo != 3 || hi != 7 {
		t.Fatalf("Range(1) = [%d, %d), want [3, 7)", lo, hi)
	}
}

func TestNewPlanCopiesBounds(t *testing.T) {
	bounds := []int{0, 4, 8}
	p, err := NewPlan(bounds)
	if err != nil {
		t.Fatal(err)
	}
	bounds[1] = 99
	if lo, hi := p.Range(0); lo != 0 || hi != 4 {
		t.Fatal("plan aliases the caller's bounds slice")
	}
	got := p.Bounds()
	got[1] = 77
	if _, hi := p.Range(0); hi != 4 {
		t.Fatal("Bounds() aliases the plan's internal slice")
	}
}

func TestSplitEven(t *testing.T) {
	cases := []struct {
		n, k   int
		bounds []int
	}{
		{10, 1, []int{0, 10}},
		{10, 3, []int{0, 4, 7, 10}}, // first n%k shards get the extra node
		{10, 5, []int{0, 2, 4, 6, 8, 10}},
		{3, 7, []int{0, 1, 2, 3}}, // k clamps to n
	}
	for _, c := range cases {
		p, err := SplitEven(c.n, c.k)
		if err != nil {
			t.Fatal(err)
		}
		got := p.Bounds()
		if len(got) != len(c.bounds) {
			t.Fatalf("SplitEven(%d, %d) = %v, want %v", c.n, c.k, got, c.bounds)
		}
		for i := range got {
			if got[i] != c.bounds[i] {
				t.Fatalf("SplitEven(%d, %d) = %v, want %v", c.n, c.k, got, c.bounds)
			}
		}
	}
	for _, bad := range [][2]int{{0, 1}, {5, 0}, {-1, 2}} {
		if _, err := SplitEven(bad[0], bad[1]); !errors.Is(err, ErrPlan) {
			t.Fatalf("SplitEven(%d, %d): err = %v, want ErrPlan", bad[0], bad[1], err)
		}
	}
}

func TestOwner(t *testing.T) {
	p, err := NewPlan([]int{0, 1, 4, 9})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < p.N(); q++ {
		s := p.Owner(q)
		lo, hi := p.Range(s)
		if q < lo || q >= hi {
			t.Fatalf("Owner(%d) = %d covering [%d, %d)", q, s, lo, hi)
		}
	}
}

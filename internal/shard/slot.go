package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"csrplus/internal/core"
	"csrplus/internal/dense"
	"csrplus/internal/topk"
)

// Slot is one shard slot as the Router consumes it: the node range it
// owns, its shape metadata, and the per-shard query primitives the
// scatter–gather paths fan out to. Two implementations exist — Local
// wraps an in-process *core.IndexShard behind an atomic generation
// pointer, and wire.RemoteEngine speaks the same contract to a
// csrserver -shardworker process over HTTP — so the router's exact
// merge, generation-keyed bound cache, and degradation tagging work
// identically in-process and across the wire.
//
// Each method resolves the slot's current generation independently (a
// remote process cannot pin a generation across calls), so a query whose
// U-gather and partial legs straddle a rolling swap may combine rows
// from adjacent generations of one shard. Every generation is cut from a
// validated index, so the answer is exact for a graph state between the
// two — the same guarantee the in-process mixed-generation roll already
// documents at the whole-router level.
type Slot interface {
	// N, Lo, Hi, Rank and Damping mirror core.IndexShard: the global
	// node count, the owned range [Lo, Hi), and the factor shape. They
	// are fixed for the slot's lifetime — swaps replace factors, never
	// the partition or shape.
	N() int
	Lo() int
	Hi() int
	Rank() int
	Damping() float64

	// Generation identifies the factors currently serving. For a remote
	// slot this is the last generation observed in a response, so it
	// advances when the worker rolls — which is what keys the router's
	// bound cache.
	Generation() uint64

	// Bytes reports the resident factor bytes of the serving generation
	// (last observed, for remote slots).
	Bytes() int64

	// URows gathers the U rows of the given nodes — all of which must be
	// owned by this slot — as a |nodes| x Rank matrix, row i for
	// nodes[i]. The returned float64s are bitwise those of the shard's
	// own URow.
	URows(ctx context.Context, nodes []int) (*dense.Mat, error)

	// PartialInto computes the slot's band of the n x |Q| column matrix
	// (core.IndexShard.PartialInto). Remote slots reject it: the wire
	// ships K·|Q|·k partial top-k items, never an n x |Q| matrix.
	PartialInto(ctx context.Context, queries []int, uq *dense.Mat, rank int, out *dense.Mat) error

	// PartialTopK returns the slot's top-k candidates among the nodes it
	// owns, scored against the gathered query rows uq at the given rank,
	// with every query node excluded. Items carry global node ids.
	PartialTopK(ctx context.Context, queries []int, uq *dense.Mat, k, rank int) ([]topk.Item, error)

	// ScoreRows returns the scores of the owned global rows for every
	// query column, row-major |rows| x |queries| (out[i*|Q|+j] scores
	// rows[i] against queries[j]), bitwise-equal to the same elements of
	// the full column matrix.
	ScoreRows(ctx context.Context, queries []int, uq *dense.Mat, rows []int, rank int) ([]float64, error)

	// BoundTerms returns the per-column factor maxima (and, for
	// quantized tiers, the measured dequantisation errors) the router
	// folds into the global truncation bound.
	BoundTerms(ctx context.Context) (BoundTerms, error)
}

// BoundTerms is one shard's contribution to the global truncation bound:
// per-column |Z| and |U| maxima over the shard's rows, plus the global
// per-column dequantisation error vectors for quantized tiers (nil for
// the exact tier).
type BoundTerms struct {
	ZMax []float64
	UMax []float64
	ZErr []float64
	UErr []float64
}

// generation is one immutable shard engine generation: the loaded factors
// plus the number identifying them. Swapped as a unit so a reader always
// sees a shard and its generation number together.
type generation struct {
	gen uint64
	sh  *core.IndexShard
}

// Local is the in-process Slot: one shard slot with PR 3's atomic-swap
// lifecycle scaled down to a single shard. Readers resolve the current
// generation with one atomic load and compute entirely on that immutable
// snapshot, while a rolling reload installs replacements one slot at a
// time. wire.Worker serves a Local over HTTP, making the worker's swap
// semantics identical to an in-process slot's.
type Local struct {
	cur    atomic.Pointer[generation]
	swapMu sync.Mutex // serialises swaps; readers never take it
}

// NewLocal boots the slot at generation 1.
func NewLocal(sh *core.IndexShard) *Local {
	l := &Local{}
	l.cur.Store(&generation{gen: 1, sh: sh})
	return l
}

// Current returns the shard and generation serving new work.
func (l *Local) Current() (*core.IndexShard, uint64) {
	g := l.cur.Load()
	return g.sh, g.gen
}

// Swap installs sh as the next generation and returns its number.
// Queries already computing on the old generation finish on it — shards
// are immutable, so there is nothing to drain. The caller is responsible
// for validating that sh covers the same range and shape (Router.SwapShard
// and wire.Worker.Reload both do).
func (l *Local) Swap(sh *core.IndexShard) uint64 {
	l.swapMu.Lock()
	defer l.swapMu.Unlock()
	next := l.cur.Load().gen + 1
	l.cur.Store(&generation{gen: next, sh: sh})
	return next
}

// N, Lo, Hi, Rank and Damping are fixed across swaps (SwapShard and
// Worker.Reload validate replacements against them), so reading the
// current generation's copy is exact.
func (l *Local) N() int           { return l.cur.Load().sh.N() }
func (l *Local) Lo() int          { return l.cur.Load().sh.Lo() }
func (l *Local) Hi() int          { return l.cur.Load().sh.Hi() }
func (l *Local) Rank() int        { return l.cur.Load().sh.Rank() }
func (l *Local) Damping() float64 { return l.cur.Load().sh.Damping() }

// Generation returns the generation number serving new work.
func (l *Local) Generation() uint64 {
	return l.cur.Load().gen
}

// Bytes reports the serving generation's resident factor bytes.
func (l *Local) Bytes() int64 {
	return l.cur.Load().sh.Bytes()
}

// URows gathers the U rows of owned nodes (see Slot).
func (l *Local) URows(ctx context.Context, nodes []int) (*dense.Mat, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sh, _ := l.Current()
	out := dense.NewMat(len(nodes), sh.Rank())
	for i, q := range nodes {
		if !sh.Owns(q) {
			return nil, fmt.Errorf("%w: node %d outside slot [%d, %d)", ErrShard, q, sh.Lo(), sh.Hi())
		}
		copy(out.Row(i), sh.URow(q))
	}
	return out, nil
}

// PartialInto computes the slot's band of the column matrix (see Slot).
func (l *Local) PartialInto(ctx context.Context, queries []int, uq *dense.Mat, rank int, out *dense.Mat) error {
	sh, _ := l.Current()
	return sh.PartialInto(ctx, queries, uq, rank, out)
}

// PartialTopK selects the slot's top-k candidates (see Slot).
func (l *Local) PartialTopK(ctx context.Context, queries []int, uq *dense.Mat, k, rank int) ([]topk.Item, error) {
	sh, _ := l.Current()
	return PartialTopK(ctx, sh, queries, uq, k, rank)
}

// ScoreRows scores owned rows against the query columns (see Slot).
func (l *Local) ScoreRows(ctx context.Context, queries []int, uq *dense.Mat, rows []int, rank int) ([]float64, error) {
	sh, _ := l.Current()
	return sh.ScoreRows(ctx, queries, uq, rows, rank)
}

// BoundTerms returns the serving generation's bound inputs (see Slot).
func (l *Local) BoundTerms(ctx context.Context) (BoundTerms, error) {
	if err := ctx.Err(); err != nil {
		return BoundTerms{}, err
	}
	sh, _ := l.Current()
	zmax, umax := sh.ColMaxes()
	zerr, uerr := sh.QuantErrs()
	return BoundTerms{ZMax: zmax, UMax: umax, ZErr: zerr, UErr: uerr}, nil
}

// PartialTopK computes sh's partial top-k list for a gathered query set:
// the shard's band of the column matrix, aggregated per node in query
// order (j outer, matching Engine.TopKMulti's summation order element for
// element; for a single query this adds one column onto zeros, which is
// exact), then the top-k of the owned nodes with every query node
// excluded. It is the one computation both the in-process Local slot and
// the wire worker's /shard/query handler run, so the bytes a worker ships
// are the bytes the in-process router would have merged.
func PartialTopK(ctx context.Context, sh *core.IndexShard, queries []int, uq *dense.Mat, k, rank int) ([]topk.Item, error) {
	cols := len(queries)
	partial := dense.NewMat(sh.Rows(), cols)
	if err := sh.PartialInto(ctx, queries, uq, rank, partial); err != nil {
		return nil, err
	}
	agg := make([]float64, sh.Rows())
	for j := 0; j < cols; j++ {
		for row := 0; row < sh.Rows(); row++ {
			agg[row] += partial.At(row, j)
		}
	}
	exclude := make(map[int]bool, cols)
	for _, q := range queries {
		exclude[q] = true
	}
	return topk.SelectRange(agg, k, sh.Lo(), exclude), nil
}

package shard_test

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"csrplus"

	"csrplus/internal/core"
	"csrplus/internal/par"
	"csrplus/internal/shard"
	"csrplus/internal/topk"
)

const testN, testRank = 151, 5

// randomGraph builds a connected pseudo-random digraph: a ring for
// reachability plus seeded random edges. Different seeds give graphs of
// identical shape parameters (n, default damping) but different factors —
// what a rolling reload swaps between.
func randomGraph(t testing.TB, n int, seed int64) *csrplus.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]int, 0, 5*n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
		for e := 0; e < 4; e++ {
			edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
		}
	}
	g, err := csrplus.NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testEngineIndex builds a CSR+ engine and returns it with its underlying
// index, so router answers are compared against the exact factors they
// were sliced from.
func testEngineIndex(t testing.TB, seed int64) (*csrplus.Engine, *core.Index) {
	t.Helper()
	eng, err := csrplus.NewEngine(randomGraph(t, testN, seed), csrplus.Options{Rank: testRank})
	if err != nil {
		t.Fatal(err)
	}
	ix, ok := eng.CoreIndex()
	if !ok {
		t.Fatal("CSR+ engine without a core index")
	}
	return eng, ix
}

// shardCounts returns the shard counts the equivalence suite runs at.
// SHARD_K pins a single count — the hook CI's shard matrix uses.
func shardCounts(t testing.TB) []int {
	if s := os.Getenv("SHARD_K"); s != "" {
		k, err := strconv.Atoi(s)
		if err != nil || k < 1 {
			t.Fatalf("bad SHARD_K %q", s)
		}
		return []int{k}
	}
	return []int{1, 2, 3, 7}
}

// querySets covers the shapes that exercise distinct code paths: single
// query, boundary nodes, multi-source, and a set with duplicates (which
// must weigh double in aggregation, exactly as Engine.TopKMulti).
func querySets() [][]int {
	return [][]int{
		{7},
		{0},
		{testN - 1},
		{0, testN - 1},
		{13, 42, 99},
		{3, 50, 50, 120},
	}
}

// TestRouterMatchesMonolithic is the central equivalence property: at
// every shard count, every worker count, every retained rank and every
// query shape, the router's scatter-gather answers are bitwise-identical
// to the single-engine path — scores, top-k lists, and truncation bounds.
func TestRouterMatchesMonolithic(t *testing.T) {
	eng, ix := testEngineIndex(t, 1)
	for _, workers := range []int{1, 0} { // serial and GOMAXPROCS fan-out
		prev := par.SetMaxWorkers(workers)
		t.Cleanup(func() { par.SetMaxWorkers(prev) })
		for _, k := range shardCounts(t) {
			rt, err := shard.NewRouterFromIndex(ix, k)
			if err != nil {
				t.Fatal(err)
			}
			assertRouterMatches(t, rt, eng, ix)
		}
		par.SetMaxWorkers(prev)
	}
}

// TestRouterUnevenBoundaries re-runs the equivalence property over
// pathological partitions: single-node shards, a giant middle shard, and
// boundaries that cut right through popular query nodes.
func TestRouterUnevenBoundaries(t *testing.T) {
	eng, ix := testEngineIndex(t, 1)
	for _, bounds := range [][]int{
		{0, 1, 2, 75, 150, testN},
		{0, 13, 14, 50, 51, testN},
		{0, testN - 1, testN},
	} {
		shards := make([]*core.IndexShard, len(bounds)-1)
		for s := range shards {
			var err error
			if shards[s], err = ix.Shard(bounds[s], bounds[s+1]); err != nil {
				t.Fatal(err)
			}
		}
		rt, err := shard.NewRouter(shards)
		if err != nil {
			t.Fatal(err)
		}
		assertRouterMatches(t, rt, eng, ix)
	}
}

func assertRouterMatches(t *testing.T, rt *shard.Router, eng *csrplus.Engine, ix *core.Index) {
	t.Helper()
	ctx := context.Background()
	for _, queries := range querySets() {
		for _, rank := range []int{0, 1, 3, testRank} {
			want, err := ix.QueryRankInto(ctx, queries, rank, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rt.QueryRankInto(ctx, queries, rank, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want, 0) {
				t.Fatalf("K=%d queries=%v rank=%d: scores differ from monolithic", rt.K(), queries, rank)
			}
		}
		for _, k := range []int{1, 10, testN} {
			items, err := rt.TopK(ctx, queries, k)
			if err != nil {
				t.Fatal(err)
			}
			var want []csrplus.Match
			if len(queries) == 1 {
				want, err = eng.TopK(queries[0], k)
			} else {
				want, err = eng.TopKMulti(queries, k)
			}
			if err != nil {
				t.Fatal(err)
			}
			assertSameMatches(t, rt.K(), queries, items, want)
		}
	}
	for rank := 0; rank <= testRank; rank++ {
		if got, want := rt.TruncationBound(rank), eng.TruncationBound(rank); got != want {
			t.Fatalf("K=%d TruncationBound(%d) = %v, want %v", rt.K(), rank, got, want)
		}
	}
}

func assertSameMatches(t *testing.T, k int, queries []int, items []topk.Item, want []csrplus.Match) {
	t.Helper()
	if len(items) != len(want) {
		t.Fatalf("K=%d queries=%v: %d matches, want %d", k, queries, len(items), len(want))
	}
	for i := range items {
		if items[i].Node != want[i].Node || items[i].Score != want[i].Score {
			t.Fatalf("K=%d queries=%v match %d: got (%d, %v), want (%d, %v)",
				k, queries, i, items[i].Node, items[i].Score, want[i].Node, want[i].Score)
		}
	}
}

func TestRouterValidation(t *testing.T) {
	_, ix := testEngineIndex(t, 1)
	if _, err := shard.NewRouter(nil); !errors.Is(err, shard.ErrPlan) {
		t.Fatalf("empty shard set: err = %v, want ErrPlan", err)
	}
	a, err := ix.Shard(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ix.Shard(60, testN) // gap [50, 60)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.NewRouter([]*core.IndexShard{a, b}); !errors.Is(err, shard.ErrShard) {
		t.Fatalf("gapped shards: err = %v, want ErrShard", err)
	}
	c, err := ix.Shard(0, 50) // does not reach n
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.NewRouter([]*core.IndexShard{c}); !errors.Is(err, shard.ErrShard) {
		t.Fatalf("short coverage: err = %v, want ErrShard", err)
	}

	rt, err := shard.NewRouterFromIndex(ix, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.QueryRankInto(context.Background(), nil, 0, nil); !errors.Is(err, core.ErrParams) {
		t.Fatalf("empty queries: err = %v, want ErrParams", err)
	}
	if _, err := rt.QueryRankInto(context.Background(), []int{testN}, 0, nil); !errors.Is(err, core.ErrQuery) {
		t.Fatalf("out-of-range query: err = %v, want ErrQuery", err)
	}
	if items, err := rt.TopK(context.Background(), []int{1}, 0); err != nil || items != nil {
		t.Fatalf("k=0: items=%v err=%v, want nil, nil", items, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rt.TopK(ctx, []int{1}, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v", err)
	}
}

func TestSwapShardValidation(t *testing.T) {
	_, ix := testEngineIndex(t, 1)
	rt, err := shard.NewRouterFromIndex(ix, 3)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := rt.Plan().Range(1)
	good, err := ix.Shard(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SwapShard(-1, good); !errors.Is(err, shard.ErrShard) {
		t.Fatalf("bad slot: err = %v", err)
	}
	if _, err := rt.SwapShard(3, good); !errors.Is(err, shard.ErrShard) {
		t.Fatalf("slot past K: err = %v", err)
	}
	if _, err := rt.SwapShard(0, good); !errors.Is(err, shard.ErrShard) {
		t.Fatalf("wrong range for slot: err = %v", err)
	}
	// A shard of the right range but wrong shape (different rank).
	otherEng, err := csrplus.NewEngine(randomGraph(t, testN, 1), csrplus.Options{Rank: testRank - 1})
	if err != nil {
		t.Fatal(err)
	}
	otherIx, _ := otherEng.CoreIndex()
	wrongShape, err := otherIx.Shard(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SwapShard(1, wrongShape); !errors.Is(err, shard.ErrShard) {
		t.Fatalf("wrong shape: err = %v", err)
	}
	gen, err := rt.SwapShard(1, good)
	if err != nil || gen != 2 {
		t.Fatalf("valid swap: gen=%d err=%v, want 2, nil", gen, err)
	}
	gens := rt.Generations()
	if gens[0] != 1 || gens[1] != 2 || gens[2] != 1 {
		t.Fatalf("generations = %v, want [1 2 1]", gens)
	}
	st := rt.Status()
	if st[1].Generation != 2 || st[1].Lo != lo || st[1].Hi != hi || st[1].Bytes <= 0 {
		t.Fatalf("status[1] = %+v", st[1])
	}
}

// TestMixedGenerationsStayExact pins the mid-roll contract: after
// swapping only some slots from index A's factors to index B's, the
// router's answers are bitwise those of a fresh router assembled over the
// same piecewise factor set — a consistent index, never torn state — and
// a completed roll converges to index B's monolithic answers.
func TestMixedGenerationsStayExact(t *testing.T) {
	_, ixA := testEngineIndex(t, 1)
	engB, ixB := testEngineIndex(t, 2)
	rt, err := shard.NewRouterFromIndex(ixA, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan := rt.Plan()
	sliceOf := func(ix *core.Index, s int) *core.IndexShard {
		lo, hi := plan.Range(s)
		sh, err := ix.Shard(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		return sh
	}
	if _, err := rt.SwapShard(0, sliceOf(ixB, 0)); err != nil {
		t.Fatal(err)
	}
	ref, err := shard.NewRouter([]*core.IndexShard{sliceOf(ixB, 0), sliceOf(ixA, 1), sliceOf(ixA, 2)})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, queries := range querySets() {
		want, err := ref.QueryRankInto(ctx, queries, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rt.QueryRankInto(ctx, queries, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 0) {
			t.Fatalf("queries=%v: mid-roll answer differs from the piecewise reference", queries)
		}
	}
	for s := 1; s < 3; s++ {
		if _, err := rt.SwapShard(s, sliceOf(ixB, s)); err != nil {
			t.Fatal(err)
		}
	}
	assertRouterMatches(t, rt, engB, ixB)
}

// TestConcurrentQueriesDuringSwaps hammers the router from many
// goroutines while another goroutine continuously swaps identical
// factors in (an identity roll): under -race this pins the lock-free
// snapshot discipline, and because the factors never change, every
// response must stay bitwise-equal to the monolithic answer throughout.
func TestConcurrentQueriesDuringSwaps(t *testing.T) {
	eng, ix := testEngineIndex(t, 1)
	rt, err := shard.NewRouterFromIndex(ix, 3)
	if err != nil {
		t.Fatal(err)
	}
	queries := []int{3, 50, 120}
	wantTopK, err := eng.TopKMulti(queries, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantMat, err := ix.QueryRankInto(context.Background(), queries, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var roller sync.WaitGroup
	roller.Add(1)
	go func() {
		defer roller.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s := i % rt.K()
			lo, hi := rt.Plan().Range(s)
			sh, err := ix.Shard(lo, hi)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := rt.SwapShard(s, sh); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var queriers sync.WaitGroup
	for w := 0; w < 4; w++ {
		queriers.Add(1)
		go func() {
			defer queriers.Done()
			for i := 0; i < 200; i++ {
				items, err := rt.TopK(context.Background(), queries, 10)
				if err != nil {
					t.Error(err)
					return
				}
				for j := range items {
					if items[j].Node != wantTopK[j].Node || items[j].Score != wantTopK[j].Score {
						t.Errorf("top-k diverged during identity roll at %d", j)
						return
					}
				}
				got, err := rt.QueryRankInto(context.Background(), queries, 0, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if !got.Equal(wantMat, 0) {
					t.Error("scores diverged during identity roll")
					return
				}
			}
		}()
	}
	queriers.Wait()
	close(stop)
	roller.Wait()
}

// TestRouterQuantizedBound pins the quantized-tier error bound through
// the router: at every shard count and every rank — including full rank,
// where truncation contributes nothing — the router's TruncationBound
// equals the monolithic quantized index's, which carries the
// quantisation term everywhere. A swap must invalidate the cached bound.
func TestRouterQuantizedBound(t *testing.T) {
	_, ix := testEngineIndex(t, 1)
	q, err := ix.Quantize(core.TierI8)
	if err != nil {
		t.Fatal(err)
	}
	if q.QuantizationBound() <= 0 {
		t.Fatal("quantized index reports a zero quantisation bound")
	}
	for _, k := range shardCounts(t) {
		rt, err := shard.NewRouterFromIndex(q, k)
		if err != nil {
			t.Fatal(err)
		}
		for rank := 0; rank <= testRank; rank++ {
			if got, want := rt.TruncationBound(rank), q.TruncationBound(rank); got != want {
				t.Fatalf("K=%d quantized TruncationBound(%d) = %v, want %v", k, rank, got, want)
			}
		}
	}

	// Rolling the quantized shards out for exact ones drops the quant
	// term: the cached bound must follow the generation vector.
	rt, err := shard.NewRouterFromIndex(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rt.TruncationBound(0), q.QuantizationBound(); got != want {
		t.Fatalf("full-rank bound %v, want %v", got, want)
	}
	for s := 0; s < rt.K(); s++ {
		lo, hi := rt.Plan().Range(s)
		sh, err := ix.Shard(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.SwapShard(s, sh); err != nil {
			t.Fatal(err)
		}
	}
	if got := rt.TruncationBound(0); got != 0 {
		t.Fatalf("exact-tier full-rank bound %v, want 0 after roll", got)
	}
	for rank := 1; rank < testRank; rank++ {
		if got, want := rt.TruncationBound(rank), ix.TruncationBound(rank); got != want {
			t.Fatalf("post-roll TruncationBound(%d) = %v, want %v", rank, got, want)
		}
	}
}

// TestTruncationBoundHitPathNoAlloc pins the bound cache's hot path: once
// an entry for the current generation vector exists, comparing the vector
// and returning the cached bound must not allocate — the comparison runs
// on every degraded-tagging decision, so an allocation here would turn
// the serving fast path into garbage-collector pressure.
func TestTruncationBoundHitPathNoAlloc(t *testing.T) {
	_, ix := testEngineIndex(t, 1)
	shards, err := shard.Split(ix, 4)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := shard.NewRouter(shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.PrimeBound(); err != nil {
		t.Fatal(err)
	}
	for _, rank := range []int{0, 2, testRank} {
		rank := rank
		if allocs := testing.AllocsPerRun(100, func() {
			_ = rt.TruncationBound(rank)
		}); allocs != 0 {
			t.Fatalf("TruncationBound(%d) cache hit allocates %.1f times per call", rank, allocs)
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		_ = rt.MissingShardBound()
	}); allocs != 0 {
		t.Fatalf("MissingShardBound cache hit allocates %.1f times per call", allocs)
	}
}

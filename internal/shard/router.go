package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"csrplus/internal/core"
	"csrplus/internal/dense"
	"csrplus/internal/par"
	"csrplus/internal/topk"
)

// Router fans multi-source queries out to K shard slots and assembles
// exact global answers. It is stateless per request — every fan-out leg
// resolves its slot's current generation once at entry and computes
// entirely on that snapshot — so it is safe for concurrent use, including
// concurrently with rolling SwapShard calls (or remote worker rolls). Its
// QueryRankInto satisfies serve.RankQueryFunc, making the router a
// drop-in serving backend with batching, degradation and generation-swap
// support unchanged; TopKTagged and Scores are the direct paths a wire
// deployment serves from (see internal/wire).
type Router struct {
	n    int
	rank int
	c    float64
	plan Plan

	slots []Slot

	// remote selects the fan-out strategy: goroutine-per-slot for
	// network-bound slots (sequential RPCs would serialise latency),
	// par.Do with its flop gate for CPU-bound local slots.
	remote bool

	// bound caches the global truncation-bound tail, keyed by the shard
	// generation vector that produced it; a rolling swap invalidates it by
	// changing a generation number. The hit-path comparison reads each
	// slot's generation directly against the cached vector — no
	// allocation per query (this sits on the degraded-tagging hot path,
	// and per-request RPC amplifies it in the wire deployment).
	bound atomic.Pointer[boundEntry]
}

type boundEntry struct {
	gens  []uint64
	tail  []float64
	quant float64
}

// NewRouter assembles a router over in-process shards, which must be
// ordered by node range, contiguous from 0 to n, and cut from the same
// index family (equal global n, rank, and damping). Shard boundaries
// become the router's immutable Plan; SwapShard replaces a shard's
// factors but never its range.
func NewRouter(shards []*core.IndexShard) (*Router, error) {
	slots := make([]Slot, len(shards))
	for s, sh := range shards {
		slots[s] = NewLocal(sh)
	}
	return NewRouterSlots(slots)
}

// NewRouterSlots assembles a router over already-constructed slots (local
// or remote), validating the same contiguity and shape invariants as
// NewRouter. Remote slots must have resolved their metadata before
// assembly (wire.Dial does).
func NewRouterSlots(slots []Slot) (*Router, error) {
	r, err := assemble(slots)
	if err != nil {
		return nil, err
	}
	for _, sl := range slots {
		if _, ok := sl.(*Local); !ok {
			r.remote = true
			break
		}
	}
	return r, nil
}

func assemble(slots []Slot) (*Router, error) {
	if len(slots) == 0 {
		return nil, fmt.Errorf("%w: no shards", ErrPlan)
	}
	n, rank, c := slots[0].N(), slots[0].Rank(), slots[0].Damping()
	bounds := make([]int, 0, len(slots)+1)
	bounds = append(bounds, 0)
	for s, sl := range slots {
		if sl.N() != n || sl.Rank() != rank || sl.Damping() != c {
			return nil, fmt.Errorf("%w: shard %d has n=%d r=%d c=%v, shard 0 has n=%d r=%d c=%v",
				ErrShard, s, sl.N(), sl.Rank(), sl.Damping(), n, rank, c)
		}
		if sl.Lo() != bounds[s] {
			return nil, fmt.Errorf("%w: shard %d starts at %d, want %d (gap or overlap)", ErrShard, s, sl.Lo(), bounds[s])
		}
		bounds = append(bounds, sl.Hi())
	}
	if bounds[len(bounds)-1] != n {
		return nil, fmt.Errorf("%w: shards end at %d, want %d", ErrShard, bounds[len(bounds)-1], n)
	}
	plan, err := NewPlan(bounds)
	if err != nil {
		return nil, err
	}
	return &Router{n: n, rank: rank, c: c, plan: plan, slots: slots}, nil
}

// Split cuts ix into k near-equal shards (SplitEven boundaries). The
// shards share ix's backing arrays.
func Split(ix *core.Index, k int) ([]*core.IndexShard, error) {
	plan, err := SplitEven(ix.N(), k)
	if err != nil {
		return nil, err
	}
	shards := make([]*core.IndexShard, plan.K())
	for s := range shards {
		lo, hi := plan.Range(s)
		if shards[s], err = ix.Shard(lo, hi); err != nil {
			return nil, err
		}
	}
	return shards, nil
}

// NewRouterFromIndex is NewRouter over an even k-way split of ix.
func NewRouterFromIndex(ix *core.Index, k int) (*Router, error) {
	shards, err := Split(ix, k)
	if err != nil {
		return nil, err
	}
	return NewRouter(shards)
}

// N returns the global node count.
func (r *Router) N() int { return r.n }

// Rank returns the SVD rank of the sharded index.
func (r *Router) Rank() int { return r.rank }

// Damping returns the damping factor.
func (r *Router) Damping() float64 { return r.c }

// K returns the shard count.
func (r *Router) K() int { return r.plan.K() }

// Plan returns the router's partition plan.
func (r *Router) Plan() Plan { return r.plan }

// Remote reports whether any slot answers over the wire.
func (r *Router) Remote() bool { return r.remote }

// ShardStatus describes one shard slot for /stats and /admin/index.
type ShardStatus struct {
	Shard      int    `json:"shard"`
	Lo         int    `json:"lo"`
	Hi         int    `json:"hi"`
	Generation uint64 `json:"generation"`
	Bytes      int64  `json:"bytes"`
}

// Status reports every shard slot's range, generation and resident bytes.
func (r *Router) Status() []ShardStatus {
	out := make([]ShardStatus, r.K())
	for s, sl := range r.slots {
		out[s] = ShardStatus{Shard: s, Lo: sl.Lo(), Hi: sl.Hi(), Generation: sl.Generation(), Bytes: sl.Bytes()}
	}
	return out
}

// Generations returns the per-shard generation vector.
func (r *Router) Generations() []uint64 {
	gens := make([]uint64, r.K())
	for s, sl := range r.slots {
		gens[s] = sl.Generation()
	}
	return gens
}

// SwapShard atomically installs sh into slot s and returns the slot's new
// generation. The replacement must cover exactly the slot's node range
// and match the router's global shape — a rolling reload may change a
// shard's factors, never the partition. Queries in flight on the old
// generation finish on it; queries arriving after SwapShard returns see
// the new one. Remote slots reject SwapShard: their factors roll inside
// the worker process (wire.RollWorkers drives the admin endpoint).
func (r *Router) SwapShard(s int, sh *core.IndexShard) (uint64, error) {
	if s < 0 || s >= r.K() {
		return 0, fmt.Errorf("%w: slot %d of %d", ErrShard, s, r.K())
	}
	l, ok := r.slots[s].(*Local)
	if !ok {
		return 0, fmt.Errorf("%w: slot %d is remote; roll it via its worker's admin endpoint", ErrShard, s)
	}
	lo, hi := r.plan.Range(s)
	if sh.Lo() != lo || sh.Hi() != hi {
		return 0, fmt.Errorf("%w: slot %d covers [%d, %d), shard covers [%d, %d)", ErrShard, s, lo, hi, sh.Lo(), sh.Hi())
	}
	if sh.N() != r.n || sh.Rank() != r.rank || sh.Damping() != r.c {
		return 0, fmt.Errorf("%w: slot %d wants n=%d r=%d c=%v, shard has n=%d r=%d c=%v",
			ErrShard, s, r.n, r.rank, r.c, sh.N(), sh.Rank(), sh.Damping())
	}
	return l.Swap(sh), nil
}

func (r *Router) validate(queries []int) error {
	if len(queries) == 0 {
		return fmt.Errorf("shard: empty query set: %w", core.ErrParams)
	}
	for _, q := range queries {
		if q < 0 || q >= r.n {
			return fmt.Errorf("shard: node %d not in [0, %d): %w", q, r.n, core.ErrQuery)
		}
	}
	return nil
}

// gatherU assembles the |Q| x r broadcast matrix of the query nodes' U
// rows from their owner slots — the only cross-shard data a query needs.
// The copied values are the exact float64s of the monolithic U, so the
// downstream dot products are bitwise those of the single-engine path. A
// failed owner fetch fails the query: a query node whose shard is down
// cannot be degraded around, because every other shard's partial depends
// on its U row.
func (r *Router) gatherU(ctx context.Context, queries []int) (*dense.Mat, error) {
	uq := dense.NewMat(len(queries), r.rank)
	// Positions grouped by owner, so each owner answers one batched
	// gather per query instead of one RPC per query node.
	byOwner := make([][]int, r.K())
	for j, q := range queries {
		s := r.plan.Owner(q)
		byOwner[s] = append(byOwner[s], j)
	}
	fetch := func(s int) error {
		js := byOwner[s]
		if len(js) == 0 {
			return nil
		}
		nodes := make([]int, len(js))
		for i, j := range js {
			nodes[i] = queries[j]
		}
		rows, err := r.slots[s].URows(ctx, nodes)
		if err != nil {
			return fmt.Errorf("shard: gathering U rows from shard %d: %w", s, err)
		}
		if !rows.IsShape(len(js), r.rank) {
			return fmt.Errorf("%w: shard %d returned %dx%d U rows, want %dx%d", ErrShard, s, rows.Rows, rows.Cols, len(js), r.rank)
		}
		for i, j := range js {
			copy(uq.Row(j), rows.Row(i))
		}
		return nil
	}
	if !r.remote {
		for s := range r.slots {
			if err := fetch(s); err != nil {
				return nil, err
			}
		}
		return uq, nil
	}
	errs := make([]error, r.K())
	var wg sync.WaitGroup
	for s := range r.slots {
		if len(byOwner[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = fetch(s)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return uq, nil
}

// queryFlops estimates one fan-out's multiply-adds for par's threshold
// gate — the same n·r·|Q| the monolithic GEMM costs.
func (r *Router) queryFlops(cols int) int64 {
	return int64(r.n) * int64(r.rank) * int64(cols)
}

// fanout runs body for every slot and returns the per-slot errors. Local
// fan-outs go through par.Do (flop-gated, worker-bounded — the slots are
// CPU-bound); remote fan-outs get a goroutine per slot, because a
// serialised RPC chain would stack network latencies.
func (r *Router) fanout(cols int, body func(s int) error) []error {
	errs := make([]error, r.K())
	if !r.remote {
		par.Do(r.K(), r.queryFlops(cols), func(lo, hi int) {
			for s := lo; s < hi; s++ {
				errs[s] = body(s)
			}
		})
		return errs
	}
	var wg sync.WaitGroup
	for s := range r.slots {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = body(s)
		}(s)
	}
	wg.Wait()
	return errs
}

// QueryRankInto answers phase II at a chosen rank by scattering row bands
// across shards: each shard writes its rows of the n x |Q| result
// directly into the shared scratch matrix, in parallel via internal/par.
// The assembled matrix is bitwise-identical to
// core.Index.QueryRankInto's at any shard count (see the package doc for
// why). rank <= 0 or >= the index rank answers at full rank; honours ctx
// between row bands. It satisfies serve.RankQueryFunc, so a Router slots
// into serve.Server exactly where a monolithic engine does. Remote slots
// reject this path — the wire never ships n x |Q| columns; wire
// deployments serve through TopKTagged and Scores instead.
func (r *Router) QueryRankInto(ctx context.Context, queries []int, rank int, scratch *dense.Mat) (*dense.Mat, error) {
	if err := r.validate(queries); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	uq, err := r.gatherU(ctx, queries)
	if err != nil {
		return nil, err
	}
	cols := len(queries)
	s := scratch.Reuse(r.n, cols)
	errs := r.fanout(cols, func(i int) error {
		sl := r.slots[i]
		lo, hi := r.plan.Range(i)
		band := &dense.Mat{Rows: hi - lo, Cols: cols, Data: s.Data[lo*cols : hi*cols]}
		return sl.PartialInto(ctx, queries, uq, rank, band)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// QueryInto is QueryRankInto at full rank without a context — it
// satisfies serve.MatQueryFunc.
func (r *Router) QueryInto(queries []int, scratch *dense.Mat) (*dense.Mat, error) {
	return r.QueryRankInto(context.Background(), queries, 0, scratch)
}

// TopK returns the exact global top-k for a query set via scatter–gather:
// every shard selects the top-k of the nodes it owns from its own partial
// scores, and the k best of the union is the answer. Semantics mirror
// csrplus.Engine.TopK / TopKMulti bitwise: a single query ranks its own
// column excluding itself; a multi-source set ranks by summed similarity
// (duplicate queries weigh double) excluding every query node. Unlike
// QueryRankInto this path never materialises the n x |Q| score matrix on
// any one allocation larger than a shard — the shape the wire ships
// between processes.
func (r *Router) TopK(ctx context.Context, queries []int, k int) ([]topk.Item, error) {
	return r.TopKRank(ctx, queries, k, 0)
}

// TopKRank is TopK answered from a rank-r' truncation of the index (rank
// <= 0 or >= the index rank is full). The merge stays exact for whatever
// scores the truncation produces. Any slot failure fails the query; for
// the degrading variant a wire deployment serves from, see TopKTagged.
func (r *Router) TopKRank(ctx context.Context, queries []int, k, rank int) ([]topk.Item, error) {
	res, err := r.topK(ctx, queries, k, rank, false)
	if err != nil {
		return nil, err
	}
	return res.Items, nil
}

// TopKResult is TopKTagged's answer plus its provenance.
type TopKResult struct {
	// Items is the merged top-k, exact over every shard that answered.
	Items []topk.Item
	// Missing counts slots whose partial lists were unavailable (worker
	// down, breaker open, RPC failed after retries). 0 means the answer
	// is the exact global top-k.
	Missing int
	// ErrorBound, when Missing > 0, bounds the aggregate similarity any
	// omitted candidate could have had: |Q| · (c·Σ_j zmax_j·umax_j +
	// quant). Scores of returned items are still exact (up to the usual
	// rank/quantisation bound); the uncertainty is in set membership.
	ErrorBound float64
}

// TopKTagged is TopKRank with graceful shard-failure degradation: a slot
// whose partial list cannot be fetched (after the wire client's retries
// and hedging) is skipped, the merge runs over the shards that answered,
// and the result is tagged with how many shards are missing plus a bound
// on the aggregate score any omitted candidate could have carried — the
// provenance the serving layer folds into its degraded/error_bound
// response tagging. Context cancellation and invalid queries still fail
// the whole query, as does every slot failing at once (nothing answered)
// or a failed U-row gather (a query node's own shard being down poisons
// every partial, so there is nothing exact to serve).
func (r *Router) TopKTagged(ctx context.Context, queries []int, k, rank int) (TopKResult, error) {
	return r.topK(ctx, queries, k, rank, true)
}

func (r *Router) topK(ctx context.Context, queries []int, k, rank int, degrade bool) (TopKResult, error) {
	if err := r.validate(queries); err != nil {
		return TopKResult{}, err
	}
	if k <= 0 {
		return TopKResult{}, nil
	}
	if err := ctx.Err(); err != nil {
		return TopKResult{}, err
	}
	uq, err := r.gatherU(ctx, queries)
	if err != nil {
		return TopKResult{}, err
	}
	cols := len(queries)
	lists := make([][]topk.Item, r.K())
	errs := r.fanout(cols, func(s int) error {
		items, err := r.slots[s].PartialTopK(ctx, queries, uq, k, rank)
		if err != nil {
			return err
		}
		lists[s] = items
		return nil
	})
	missing := 0
	for s, err := range errs {
		if err == nil {
			continue
		}
		if !degrade || ctx.Err() != nil || !errors.Is(err, ErrSlotDown) && !isTransport(err) {
			return TopKResult{}, fmt.Errorf("shard: partial top-k from shard %d: %w", s, err)
		}
		missing++
		lists[s] = nil
	}
	if missing == r.K() {
		return TopKResult{}, fmt.Errorf("shard: all %d shards unavailable: %w", r.K(), errFirst(errs))
	}
	res := TopKResult{Items: topk.Merge(k, lists...), Missing: missing}
	if missing > 0 {
		res.ErrorBound = float64(cols) * r.MissingShardBound()
	}
	return res, nil
}

// ErrSlotDown marks a slot failure that degradation may skip: the wire
// client wraps transport errors, breaker-open fast failures, and worker
// 5xx responses in it, so the router can tell "this shard cannot answer
// right now" from "this query is malformed".
var ErrSlotDown = errors.New("shard: slot unavailable")

// isTransport reports whether err looks like a slot-availability failure
// rather than a caller error. Anything that is not a validation error
// from this package or core counts: remote slots wrap their failures in
// ErrSlotDown (handled before this), and an unexpected decode error from
// a half-dead worker should degrade, not fail the query.
func isTransport(err error) bool {
	return !errors.Is(err, core.ErrParams) && !errors.Is(err, core.ErrQuery) && !errors.Is(err, ErrShard) && !errors.Is(err, ErrPlan)
}

func errFirst(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Scores answers targeted (query, target) pairs without materialising any
// column: each target's owner shard scores just that row, bitwise-equal
// to the same element of the full column matrix (the kernels accumulate
// each output element independently in ascending column order). The
// result is |Q| x |T|, element (i, j) scoring queries[i] against
// targets[j]. Any owner failure fails the call — a targeted score has no
// degraded form, unlike top-k set membership.
func (r *Router) Scores(ctx context.Context, queries, targets []int, rank int) (*dense.Mat, error) {
	if err := r.validate(queries); err != nil {
		return nil, err
	}
	if err := r.validate(targets); err != nil {
		return nil, err
	}
	uq, err := r.gatherU(ctx, queries)
	if err != nil {
		return nil, err
	}
	byOwner := make([][]int, r.K())
	for j, t := range targets {
		s := r.plan.Owner(t)
		byOwner[s] = append(byOwner[s], j)
	}
	out := dense.NewMat(len(queries), len(targets))
	errs := r.fanout(len(queries), func(s int) error {
		js := byOwner[s]
		if len(js) == 0 {
			return nil
		}
		rows := make([]int, len(js))
		for i, j := range js {
			rows[i] = targets[j]
		}
		scores, err := r.slots[s].ScoreRows(ctx, queries, uq, rows, rank)
		if err != nil {
			return fmt.Errorf("shard: scoring rows on shard %d: %w", s, err)
		}
		if len(scores) != len(rows)*len(queries) {
			return fmt.Errorf("%w: shard %d returned %d scores, want %d", ErrShard, s, len(scores), len(rows)*len(queries))
		}
		for i, j := range js {
			for qi := range queries {
				out.Set(qi, j, scores[i*len(queries)+qi])
			}
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TruncationBound bounds the entrywise error of a rank-truncated answer,
// bitwise-equal to core.Index.TruncationBound on the unsharded index: a
// column maximum over all rows is the maximum of the per-shard column
// maxima, and both the tail recurrence (core.TailBound) and the
// quantisation term (core.QuantBound) are shared code. Quantized shards
// carry the quant term at every rank — including full rank — exactly
// like the monolithic bound, so the report stays rigorous against the
// exact full-rank answer. The result is cached against the shard
// generation vector, so it is recomputed only after a swap; the hit path
// allocates nothing. If a remote slot's bound terms cannot be refreshed
// after a roll, the previous entry keeps answering (conservative for the
// usual same-tier roll) until a refresh succeeds.
func (r *Router) TruncationBound(rank int) float64 {
	e := r.bestBound()
	if e == nil {
		return 0
	}
	if rank <= 0 || rank >= r.rank {
		return e.quant
	}
	return e.tail[rank] + e.quant
}

// MissingShardBound returns the aggregate per-query score bound used to
// inflate error_bound when a shard's partial top-k list is missing: no
// single similarity can exceed c·Σ_j zmax_j·umax_j plus the quantisation
// term (query nodes, the only +1 diagonal entries, are excluded from
// top-k), so an omitted candidate's |Q|-query aggregate is bounded by |Q|
// times this value.
func (r *Router) MissingShardBound() float64 {
	e := r.bestBound()
	if e == nil {
		return 0
	}
	return e.tail[0] + e.quant
}

// PrimeBound eagerly builds the bound cache, failing if any slot's bound
// terms are unreachable. Wire routers call it at assembly time so that
// degraded responses always have a cached bound to inflate from, even if
// the worker that would supply fresh terms is the one that just died.
func (r *Router) PrimeBound() error {
	ne, err := r.rebuildBound()
	if err != nil {
		return err
	}
	r.bound.Store(ne)
	return nil
}

// bestBound returns the cached bound entry, rebuilding it when the
// generation vector moved. The comparison reads each slot's generation
// against the cached vector directly — no per-call allocation.
func (r *Router) bestBound() *boundEntry {
	e := r.bound.Load()
	if e != nil && r.gensMatch(e.gens) {
		return e
	}
	ne, err := r.rebuildBound()
	if err != nil {
		// Refresh failed (a remote slot is unreachable mid-roll): keep
		// answering from the stale entry rather than dropping the bound.
		return e
	}
	r.bound.Store(ne)
	return ne
}

func (r *Router) gensMatch(gens []uint64) bool {
	if len(gens) != len(r.slots) {
		return false
	}
	for s, sl := range r.slots {
		if sl.Generation() != gens[s] {
			return false
		}
	}
	return true
}

func (r *Router) rebuildBound() (*boundEntry, error) {
	// Gens are captured before the term fetch: if a slot rolls mid-fetch,
	// the entry lands keyed to the pre-roll vector and the next call
	// refreshes again — transiently stale, never wedged.
	gens := r.Generations()
	zmax := make([]float64, r.rank)
	umax := make([]float64, r.rank)
	var zerr, uerr []float64
	for s, sl := range r.slots {
		terms, err := sl.BoundTerms(context.Background())
		if err != nil {
			return nil, fmt.Errorf("shard: bound terms from shard %d: %w", s, err)
		}
		if len(terms.ZMax) != r.rank || len(terms.UMax) != r.rank {
			return nil, fmt.Errorf("%w: shard %d returned %d/%d bound columns, want %d", ErrShard, s, len(terms.ZMax), len(terms.UMax), r.rank)
		}
		for j := 0; j < r.rank; j++ {
			if terms.ZMax[j] > zmax[j] {
				zmax[j] = terms.ZMax[j]
			}
			if terms.UMax[j] > umax[j] {
				umax[j] = terms.UMax[j]
			}
		}
		// The dequantisation errors are global per-column vectors,
		// identical across shards cut from one index; any shard's
		// copy recomposes the monolithic quant term. Mid-roll, with
		// exact and quantized generations mixed, including the term
		// over-states the error for exact rows — conservative, never
		// under-stated.
		if terms.ZErr != nil || terms.UErr != nil {
			zerr, uerr = terms.ZErr, terms.UErr
		}
	}
	return &boundEntry{
		gens:  gens,
		tail:  core.TailBound(r.c, zmax, umax),
		quant: core.QuantBound(r.c, zmax, umax, zerr, uerr),
	}, nil
}

package shard

import (
	"context"
	"fmt"
	"sync/atomic"

	"csrplus/internal/core"
	"csrplus/internal/dense"
	"csrplus/internal/par"
	"csrplus/internal/topk"
)

// Router fans multi-source queries out to K shard engines and assembles
// exact global answers. It is stateless per request — every query
// resolves each shard's current generation once at entry and computes
// entirely on that snapshot — so it is safe for concurrent use, including
// concurrently with rolling SwapShard calls. Its QueryRankInto satisfies
// serve.RankQueryFunc, making the router a drop-in serving backend with
// batching, degradation and generation-swap support unchanged.
type Router struct {
	n    int
	rank int
	c    float64
	plan Plan

	engines []*Engine

	// bound caches the global truncation-bound tail, keyed by the shard
	// generation vector that produced it; a rolling swap invalidates it by
	// changing a generation number.
	bound atomic.Pointer[boundEntry]
}

type boundEntry struct {
	gens  []uint64
	tail  []float64
	quant float64
}

// NewRouter assembles a router over shards, which must be ordered by node
// range, contiguous from 0 to n, and cut from the same index family
// (equal global n, rank, and damping). Shard boundaries become the
// router's immutable Plan; SwapShard replaces a shard's factors but never
// its range.
func NewRouter(shards []*core.IndexShard) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("%w: no shards", ErrPlan)
	}
	n, rank, c := shards[0].N(), shards[0].Rank(), shards[0].Damping()
	bounds := make([]int, 0, len(shards)+1)
	bounds = append(bounds, 0)
	for s, sh := range shards {
		if sh.N() != n || sh.Rank() != rank || sh.Damping() != c {
			return nil, fmt.Errorf("%w: shard %d has n=%d r=%d c=%v, shard 0 has n=%d r=%d c=%v",
				ErrShard, s, sh.N(), sh.Rank(), sh.Damping(), n, rank, c)
		}
		if sh.Lo() != bounds[s] {
			return nil, fmt.Errorf("%w: shard %d starts at %d, want %d (gap or overlap)", ErrShard, s, sh.Lo(), bounds[s])
		}
		bounds = append(bounds, sh.Hi())
	}
	if bounds[len(bounds)-1] != n {
		return nil, fmt.Errorf("%w: shards end at %d, want %d", ErrShard, bounds[len(bounds)-1], n)
	}
	plan, err := NewPlan(bounds)
	if err != nil {
		return nil, err
	}
	r := &Router{n: n, rank: rank, c: c, plan: plan, engines: make([]*Engine, len(shards))}
	for s, sh := range shards {
		r.engines[s] = newEngine(sh)
	}
	return r, nil
}

// Split cuts ix into k near-equal shards (SplitEven boundaries). The
// shards share ix's backing arrays.
func Split(ix *core.Index, k int) ([]*core.IndexShard, error) {
	plan, err := SplitEven(ix.N(), k)
	if err != nil {
		return nil, err
	}
	shards := make([]*core.IndexShard, plan.K())
	for s := range shards {
		lo, hi := plan.Range(s)
		if shards[s], err = ix.Shard(lo, hi); err != nil {
			return nil, err
		}
	}
	return shards, nil
}

// NewRouterFromIndex is NewRouter over an even k-way split of ix.
func NewRouterFromIndex(ix *core.Index, k int) (*Router, error) {
	shards, err := Split(ix, k)
	if err != nil {
		return nil, err
	}
	return NewRouter(shards)
}

// N returns the global node count.
func (r *Router) N() int { return r.n }

// Rank returns the SVD rank of the sharded index.
func (r *Router) Rank() int { return r.rank }

// Damping returns the damping factor.
func (r *Router) Damping() float64 { return r.c }

// K returns the shard count.
func (r *Router) K() int { return r.plan.K() }

// Plan returns the router's partition plan.
func (r *Router) Plan() Plan { return r.plan }

// ShardStatus describes one shard slot for /stats and /admin/index.
type ShardStatus struct {
	Shard      int    `json:"shard"`
	Lo         int    `json:"lo"`
	Hi         int    `json:"hi"`
	Generation uint64 `json:"generation"`
	Bytes      int64  `json:"bytes"`
}

// Status reports every shard slot's range, generation and resident bytes.
func (r *Router) Status() []ShardStatus {
	out := make([]ShardStatus, r.K())
	for s, e := range r.engines {
		sh, gen := e.current()
		out[s] = ShardStatus{Shard: s, Lo: sh.Lo(), Hi: sh.Hi(), Generation: gen, Bytes: sh.Bytes()}
	}
	return out
}

// Generations returns the per-shard generation vector.
func (r *Router) Generations() []uint64 {
	gens := make([]uint64, r.K())
	for s, e := range r.engines {
		_, gens[s] = e.current()
	}
	return gens
}

// SwapShard atomically installs sh into slot s and returns the slot's new
// generation. The replacement must cover exactly the slot's node range
// and match the router's global shape — a rolling reload may change a
// shard's factors, never the partition. Queries in flight on the old
// generation finish on it; queries arriving after SwapShard returns see
// the new one.
func (r *Router) SwapShard(s int, sh *core.IndexShard) (uint64, error) {
	if s < 0 || s >= r.K() {
		return 0, fmt.Errorf("%w: slot %d of %d", ErrShard, s, r.K())
	}
	lo, hi := r.plan.Range(s)
	if sh.Lo() != lo || sh.Hi() != hi {
		return 0, fmt.Errorf("%w: slot %d covers [%d, %d), shard covers [%d, %d)", ErrShard, s, lo, hi, sh.Lo(), sh.Hi())
	}
	if sh.N() != r.n || sh.Rank() != r.rank || sh.Damping() != r.c {
		return 0, fmt.Errorf("%w: slot %d wants n=%d r=%d c=%v, shard has n=%d r=%d c=%v",
			ErrShard, s, r.n, r.rank, r.c, sh.N(), sh.Rank(), sh.Damping())
	}
	return r.engines[s].swap(sh), nil
}

// snapshot resolves every shard's current generation once. A query
// computes entirely on the returned slice, so a concurrent rolling swap
// never mixes generations within one shard's rows (per-shard answers
// always come from exactly one generation; different shards may serve
// different generations mid-roll, each exact for its own index).
func (r *Router) snapshot() []*core.IndexShard {
	shards := make([]*core.IndexShard, r.K())
	for s, e := range r.engines {
		shards[s], _ = e.current()
	}
	return shards
}

func (r *Router) validate(queries []int) error {
	if len(queries) == 0 {
		return fmt.Errorf("shard: empty query set: %w", core.ErrParams)
	}
	for _, q := range queries {
		if q < 0 || q >= r.n {
			return fmt.Errorf("shard: node %d not in [0, %d): %w", q, r.n, core.ErrQuery)
		}
	}
	return nil
}

// gatherU assembles the |Q| x r broadcast matrix of the query nodes' U
// rows from their owner shards — the only cross-shard data a query needs.
// The copied values are the exact float64s of the monolithic U, so the
// downstream dot products are bitwise those of the single-engine path.
func (r *Router) gatherU(shards []*core.IndexShard, queries []int) *dense.Mat {
	uq := dense.NewMat(len(queries), r.rank)
	for j, q := range queries {
		copy(uq.Row(j), shards[r.plan.Owner(q)].URow(q))
	}
	return uq
}

// queryFlops estimates one fan-out's multiply-adds for par's threshold
// gate — the same n·r·|Q| the monolithic GEMM costs.
func (r *Router) queryFlops(cols int) int64 {
	return int64(r.n) * int64(r.rank) * int64(cols)
}

// QueryRankInto answers phase II at a chosen rank by scattering row bands
// across shards: each shard writes its rows of the n x |Q| result
// directly into the shared scratch matrix, in parallel via internal/par.
// The assembled matrix is bitwise-identical to
// core.Index.QueryRankInto's at any shard count (see the package doc for
// why). rank <= 0 or >= the index rank answers at full rank; honours ctx
// between row bands. It satisfies serve.RankQueryFunc, so a Router slots
// into serve.Server exactly where a monolithic engine does.
func (r *Router) QueryRankInto(ctx context.Context, queries []int, rank int, scratch *dense.Mat) (*dense.Mat, error) {
	if err := r.validate(queries); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	shards := r.snapshot()
	uq := r.gatherU(shards, queries)
	cols := len(queries)
	s := scratch.Reuse(r.n, cols)
	errs := make([]error, r.K())
	par.Do(r.K(), r.queryFlops(cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sh := shards[i]
			band := &dense.Mat{Rows: sh.Rows(), Cols: cols, Data: s.Data[sh.Lo()*cols : sh.Hi()*cols]}
			errs[i] = sh.PartialInto(ctx, queries, uq, rank, band)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// QueryInto is QueryRankInto at full rank without a context — it
// satisfies serve.MatQueryFunc.
func (r *Router) QueryInto(queries []int, scratch *dense.Mat) (*dense.Mat, error) {
	return r.QueryRankInto(context.Background(), queries, 0, scratch)
}

// TopK returns the exact global top-k for a query set via scatter–gather:
// every shard selects the top-k of the nodes it owns from its own partial
// scores, and the k best of the union is the answer. Semantics mirror
// csrplus.Engine.TopK / TopKMulti bitwise: a single query ranks its own
// column excluding itself; a multi-source set ranks by summed similarity
// (duplicate queries weigh double) excluding every query node. Unlike
// QueryRankInto this path never materialises the n x |Q| score matrix on
// any one allocation larger than a shard — the shape a future wire split
// would ship between processes.
func (r *Router) TopK(ctx context.Context, queries []int, k int) ([]topk.Item, error) {
	return r.TopKRank(ctx, queries, k, 0)
}

// TopKRank is TopK answered from a rank-r' truncation of the index (rank
// <= 0 or >= the index rank is full). The merge stays exact for whatever
// scores the truncation produces.
func (r *Router) TopKRank(ctx context.Context, queries []int, k, rank int) ([]topk.Item, error) {
	if err := r.validate(queries); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	shards := r.snapshot()
	uq := r.gatherU(shards, queries)
	cols := len(queries)
	exclude := make(map[int]bool, cols)
	for _, q := range queries {
		exclude[q] = true
	}
	lists := make([][]topk.Item, r.K())
	errs := make([]error, r.K())
	par.Do(r.K(), r.queryFlops(cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sh := shards[i]
			partial := dense.NewMat(sh.Rows(), cols)
			if err := sh.PartialInto(ctx, queries, uq, rank, partial); err != nil {
				errs[i] = err
				continue
			}
			// Aggregate per node in query order (j outer), matching
			// Engine.TopKMulti's summation order element for element; for a
			// single query this adds one column onto zeros, which is exact.
			agg := make([]float64, sh.Rows())
			for j := 0; j < cols; j++ {
				for row := 0; row < sh.Rows(); row++ {
					agg[row] += partial.At(row, j)
				}
			}
			lists[i] = topk.SelectRange(agg, k, sh.Lo(), exclude)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return topk.Merge(k, lists...), nil
}

// TruncationBound bounds the entrywise error of a rank-truncated answer,
// bitwise-equal to core.Index.TruncationBound on the unsharded index: a
// column maximum over all rows is the maximum of the per-shard column
// maxima, and both the tail recurrence (core.TailBound) and the
// quantisation term (core.QuantBound) are shared code. Quantized shards
// carry the quant term at every rank — including full rank — exactly
// like the monolithic bound, so the report stays rigorous against the
// exact full-rank answer. The result is cached against the shard
// generation vector, so it is recomputed only after a swap.
func (r *Router) TruncationBound(rank int) float64 {
	gens := r.Generations()
	e := r.bound.Load()
	if e == nil || !gensEqual(e.gens, gens) {
		zmax := make([]float64, r.rank)
		umax := make([]float64, r.rank)
		var zerr, uerr []float64
		for _, sh := range r.snapshot() {
			zm, um := sh.ColMaxes()
			for j := 0; j < r.rank; j++ {
				if zm[j] > zmax[j] {
					zmax[j] = zm[j]
				}
				if um[j] > umax[j] {
					umax[j] = um[j]
				}
			}
			// The dequantisation errors are global per-column vectors,
			// identical across shards cut from one index; any shard's
			// copy recomposes the monolithic quant term. Mid-roll, with
			// exact and quantized generations mixed, including the term
			// over-states the error for exact rows — conservative, never
			// under-stated.
			if ze, ue := sh.QuantErrs(); ze != nil || ue != nil {
				zerr, uerr = ze, ue
			}
		}
		e = &boundEntry{
			gens:  gens,
			tail:  core.TailBound(r.c, zmax, umax),
			quant: core.QuantBound(r.c, zmax, umax, zerr, uerr),
		}
		r.bound.Store(e)
	}
	if rank <= 0 || rank >= r.rank {
		return e.quant
	}
	return e.tail[rank] + e.quant
}

func gensEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Package shard implements horizontal sharding for CSR+ serving: the
// factor matrices are partitioned by contiguous node range into K
// in-process shard engines, each with its own atomic generation
// lifecycle, behind a stateless router that fans multi-source queries to
// every shard in parallel and merges the per-shard partial top-k lists
// into an exact global answer.
//
// The exactness argument has two halves. Scores: output row i of phase II
// depends only on row i of Z plus the U rows of the query nodes, so a
// shard holding rows [lo, hi) computes exactly the same float64 for every
// node it owns as the monolithic engine — same kernel, same accumulation
// order (core.IndexShard.PartialInto). Selection: each candidate node
// lives on exactly one shard, so any node in the global top-k is in the
// top-k of its own shard, and the deterministic merge of per-shard top-k
// lists (topk.Merge, under the package-wide score-desc/node-asc ordering)
// is the global top-k. Together: the router's answers are bitwise
// identical to a single engine over the whole graph, at any shard count
// and any partition boundaries.
//
// The router consumes shards through the Slot interface (slot.go): Local
// wraps an in-process shard behind an atomic generation pointer, and
// internal/wire's RemoteEngine speaks the same contract to a shard
// worker process over HTTP — the wire split slots in behind the same
// Router surface, merge and bound machinery included.
package shard

import (
	"errors"
	"fmt"
	"sort"
)

// ErrPlan is returned (wrapped) for invalid partition plans.
var ErrPlan = errors.New("shard: invalid partition plan")

// ErrShard is returned (wrapped) when a shard does not fit its slot:
// wrong node range, node count, rank, or damping factor.
var ErrShard = errors.New("shard: shard does not match its slot")

// Plan is a partition of [0, n) into K contiguous node ranges, described
// by K+1 fenceposts: shard s owns [bounds[s], bounds[s+1]). Immutable.
type Plan struct {
	bounds []int
}

// NewPlan validates fenceposts: strictly increasing, starting at 0,
// ending at n (the last bound), with at least one shard. Empty shards
// are rejected — a shard that owns no nodes can never answer for any.
func NewPlan(bounds []int) (Plan, error) {
	if len(bounds) < 2 {
		return Plan{}, fmt.Errorf("%w: need at least 2 fenceposts, got %d", ErrPlan, len(bounds))
	}
	if bounds[0] != 0 {
		return Plan{}, fmt.Errorf("%w: first fencepost %d, want 0", ErrPlan, bounds[0])
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return Plan{}, fmt.Errorf("%w: fenceposts not strictly increasing at %d (%d then %d)", ErrPlan, i, bounds[i-1], bounds[i])
		}
	}
	return Plan{bounds: append([]int(nil), bounds...)}, nil
}

// SplitEven partitions [0, n) into k near-equal contiguous ranges (the
// first n mod k shards get one extra node). k is clamped to n — a graph
// cannot usefully spread over more shards than it has nodes.
func SplitEven(n, k int) (Plan, error) {
	if n < 1 || k < 1 {
		return Plan{}, fmt.Errorf("%w: n=%d k=%d", ErrPlan, n, k)
	}
	if k > n {
		k = n
	}
	bounds := make([]int, k+1)
	base, extra := n/k, n%k
	for s := 0; s < k; s++ {
		size := base
		if s < extra {
			size++
		}
		bounds[s+1] = bounds[s] + size
	}
	return Plan{bounds: bounds}, nil
}

// K returns the shard count.
func (p Plan) K() int { return len(p.bounds) - 1 }

// N returns the node count the plan covers.
func (p Plan) N() int { return p.bounds[len(p.bounds)-1] }

// Range returns shard s's node range [lo, hi).
func (p Plan) Range(s int) (lo, hi int) { return p.bounds[s], p.bounds[s+1] }

// Bounds returns a copy of the K+1 fenceposts.
func (p Plan) Bounds() []int { return append([]int(nil), p.bounds...) }

// Owner returns the shard owning global node q, which must be in [0, n).
func (p Plan) Owner(q int) int {
	// sort.Search finds the first fencepost > q; the owning shard is one
	// before it.
	return sort.Search(len(p.bounds), func(i int) bool { return p.bounds[i] > q }) - 1
}

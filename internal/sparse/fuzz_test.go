package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for every reader in the package: whatever the input, the
// parsers must return an error or a structurally valid matrix — never
// panic, never hand back out-of-range indices. `go test` runs the seed
// corpus; `go test -fuzz=FuzzReadBinary ./internal/sparse` explores.

func checkValid(t *testing.T, m *CSR) {
	t.Helper()
	if m == nil {
		return
	}
	rows, cols := m.Dims()
	if int64(len(m.ColIdx)) != m.NNZ() || len(m.RowPtr) != rows+1 {
		t.Fatal("inconsistent CSR arrays")
	}
	if rows > 0 && (m.RowPtr[0] != 0 || m.RowPtr[rows] != m.NNZ()) {
		t.Fatal("row pointers do not bracket nnz")
	}
	for _, j := range m.ColIdx {
		if j < 0 || int(j) >= cols {
			t.Fatalf("column index %d out of range [0, %d)", j, cols)
		}
	}
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n\n5 5\n")
	f.Add("a b\n")
	f.Add("-1 3\n")
	f.Add("0 1 extra fields ok\n")
	f.Fuzz(func(t *testing.T, input string) {
		coo, err := ReadEdgeList(strings.NewReader(input), 10)
		if err != nil {
			return
		}
		checkValid(t, coo.ToCSR())
	})
}

func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 0.5\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 0 0\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return
		}
		checkValid(t, m)
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a valid serialisation plus mutations of its prefix.
	coo := NewCOO(3, 3)
	_ = coo.Add(0, 1, 2.5)
	_ = coo.Add(2, 0, -1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, coo.ToCSR()); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte("CSRM junk"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkValid(t, m)
	})
}

package sparse

// binary.go gives CSR matrices a compact checksummed binary form, so big
// generated stand-in graphs are materialised once and reloaded in O(read)
// instead of re-parsed (or re-generated) per run.
//
// Format (little endian):
//
//	magic   [4]byte "CSRM"
//	version uint32  currently 1
//	rows    uint64
//	cols    uint64
//	nnz     uint64
//	rowptr  [rows+1]int64
//	colidx  [nnz]int32
//	val     [nnz]float64
//	crc     uint32  IEEE CRC-32 of everything after the magic

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

var csrMagic = [4]byte{'C', 'S', 'R', 'M'}

// csrBinaryVersion is the current on-disk version.
const csrBinaryVersion = 1

// maxBinaryNNZ caps the entry count accepted at load time (64 GiB of
// values) so corrupt headers cannot trigger huge allocations.
const maxBinaryNNZ = 1 << 33

// ErrCorrupt is returned (wrapped) when binary CSR input fails validation.
var ErrCorrupt = errors.New("sparse: corrupt binary matrix")

// WriteBinary serialises m.
func WriteBinary(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(csrMagic[:]); err != nil {
		return fmt.Errorf("sparse: writing binary magic: %w", err)
	}
	crc := crc32.NewIEEE()
	body := io.MultiWriter(bw, crc)
	le := binary.LittleEndian
	rows, cols := m.Dims()
	if err := binary.Write(body, le, uint32(csrBinaryVersion)); err != nil {
		return fmt.Errorf("sparse: writing binary header: %w", err)
	}
	for _, v := range []uint64{uint64(rows), uint64(cols), uint64(m.NNZ())} {
		if err := binary.Write(body, le, v); err != nil {
			return fmt.Errorf("sparse: writing binary header: %w", err)
		}
	}
	if err := binary.Write(body, le, m.RowPtr); err != nil {
		return fmt.Errorf("sparse: writing row pointers: %w", err)
	}
	if err := binary.Write(body, le, m.ColIdx); err != nil {
		return fmt.Errorf("sparse: writing column indices: %w", err)
	}
	if err := binary.Write(body, le, m.Val); err != nil {
		return fmt.Errorf("sparse: writing values: %w", err)
	}
	if err := binary.Write(bw, le, crc.Sum32()); err != nil {
		return fmt.Errorf("sparse: writing checksum: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("sparse: flushing binary matrix: %w", err)
	}
	return nil
}

// chunkElems bounds how many elements each incremental read commits to
// memory before the stream has delivered the bytes backing them.
const chunkElems = 1 << 16

// readChunkedInt64 reads count little-endian int64s, growing the slice
// chunk by chunk so truncated streams fail before large allocations.
func readChunkedInt64(r io.Reader, count uint64) ([]int64, error) {
	out := make([]int64, 0, minU64(count, chunkElems))
	buf := make([]byte, 8*chunkElems)
	le := binary.LittleEndian
	for read := uint64(0); read < count; {
		n := minU64(count-read, chunkElems)
		if _, err := io.ReadFull(r, buf[:n*8]); err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			out = append(out, int64(le.Uint64(buf[i*8:])))
		}
		read += n
	}
	return out, nil
}

// readChunkedInt32 is readChunkedInt64 for int32 payloads.
func readChunkedInt32(r io.Reader, count uint64) ([]int32, error) {
	out := make([]int32, 0, minU64(count, chunkElems))
	buf := make([]byte, 4*chunkElems)
	le := binary.LittleEndian
	for read := uint64(0); read < count; {
		n := minU64(count-read, chunkElems)
		if _, err := io.ReadFull(r, buf[:n*4]); err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			out = append(out, int32(le.Uint32(buf[i*4:])))
		}
		read += n
	}
	return out, nil
}

// readChunkedFloat64 is readChunkedInt64 for float64 payloads.
func readChunkedFloat64(r io.Reader, count uint64) ([]float64, error) {
	out := make([]float64, 0, minU64(count, chunkElems))
	buf := make([]byte, 8*chunkElems)
	le := binary.LittleEndian
	for read := uint64(0); read < count; {
		n := minU64(count-read, chunkElems)
		if _, err := io.ReadFull(r, buf[:n*8]); err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			out = append(out, math.Float64frombits(le.Uint64(buf[i*8:])))
		}
		read += n
	}
	return out, nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// ReadBinary deserialises a matrix written by WriteBinary, validating the
// magic, version, structural invariants and checksum.
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("sparse: reading binary magic: %w", err)
	}
	if magic != csrMagic {
		return nil, fmt.Errorf("sparse: bad magic %q: %w", magic, ErrCorrupt)
	}
	crc := crc32.NewIEEE()
	body := io.TeeReader(br, crc)
	le := binary.LittleEndian
	var version uint32
	if err := binary.Read(body, le, &version); err != nil {
		return nil, fmt.Errorf("sparse: reading binary version: %w", err)
	}
	if version != csrBinaryVersion {
		return nil, fmt.Errorf("sparse: binary version %d, want %d: %w", version, csrBinaryVersion, ErrCorrupt)
	}
	var rows, cols, nnz uint64
	for _, dst := range []*uint64{&rows, &cols, &nnz} {
		if err := binary.Read(body, le, dst); err != nil {
			return nil, fmt.Errorf("sparse: reading binary header: %w", err)
		}
	}
	if rows > math.MaxInt32 || cols > math.MaxInt32 || nnz > maxBinaryNNZ {
		return nil, fmt.Errorf("sparse: implausible shape %dx%d nnz=%d: %w", rows, cols, nnz, ErrCorrupt)
	}
	// Arrays are read in bounded chunks that grow only as bytes actually
	// arrive: a forged header claiming billions of entries on a tiny
	// stream must fail fast, not commit the full allocation up front.
	rowPtr, err := readChunkedInt64(body, rows+1)
	if err != nil {
		return nil, fmt.Errorf("sparse: reading row pointers: %w", err)
	}
	colIdx, err := readChunkedInt32(body, nnz)
	if err != nil {
		return nil, fmt.Errorf("sparse: reading column indices: %w", err)
	}
	val, err := readChunkedFloat64(body, nnz)
	if err != nil {
		return nil, fmt.Errorf("sparse: reading values: %w", err)
	}
	m := &CSR{
		rows:   int(rows),
		cols:   int(cols),
		RowPtr: rowPtr,
		ColIdx: colIdx,
		Val:    val,
	}
	sum := crc.Sum32()
	var want uint32
	if err := binary.Read(br, le, &want); err != nil {
		return nil, fmt.Errorf("sparse: reading checksum: %w", err)
	}
	if sum != want {
		return nil, fmt.Errorf("sparse: checksum %08x, want %08x: %w", sum, want, ErrCorrupt)
	}
	// Structural validation: monotone row pointers, in-range columns.
	if m.RowPtr[0] != 0 || m.RowPtr[rows] != int64(nnz) {
		return nil, fmt.Errorf("sparse: row pointers do not bracket nnz: %w", ErrCorrupt)
	}
	for i := 0; i < int(rows); i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return nil, fmt.Errorf("sparse: row pointer %d decreases: %w", i, ErrCorrupt)
		}
	}
	for _, j := range m.ColIdx {
		if j < 0 || int(j) >= int(cols) {
			return nil, fmt.Errorf("sparse: column index %d out of range: %w", j, ErrCorrupt)
		}
	}
	return m, nil
}

package sparse

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"testing/quick"

	"csrplus/internal/dense"
)

// randCSR builds a random sparse matrix (density ~d) and its dense mirror.
func randCSR(rng *rand.Rand, rows, cols int, d float64) (*CSR, *dense.Mat) {
	coo := NewCOO(rows, cols)
	ref := dense.NewMat(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < d {
				v := rng.NormFloat64()
				if err := coo.Add(i, j, v); err != nil {
					panic(err)
				}
				ref.Set(i, j, ref.At(i, j)+v)
			}
		}
	}
	return coo.ToCSR(), ref
}

func TestCOOBasics(t *testing.T) {
	c := NewCOO(3, 4)
	if r, cl := c.Dims(); r != 3 || cl != 4 {
		t.Fatalf("Dims = %d,%d", r, cl)
	}
	if err := c.Add(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 1 {
		t.Fatalf("NNZ = %d", c.NNZ())
	}
	if err := c.Add(3, 0, 1); !errors.Is(err, ErrIndex) {
		t.Fatalf("row out of range: err = %v", err)
	}
	if err := c.Add(0, -1, 1); !errors.Is(err, ErrIndex) {
		t.Fatalf("negative col: err = %v", err)
	}
	c.Grow(100)
	if err := c.Add(2, 3, 5); err != nil {
		t.Fatal(err)
	}
}

func TestCOONegativeDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCOO(-1, 1) did not panic")
		}
	}()
	NewCOO(-1, 1)
}

func TestToCSRSumsDuplicates(t *testing.T) {
	c := NewCOO(2, 2)
	for _, e := range []Triple{{0, 1, 1}, {0, 1, 2}, {1, 0, 5}, {0, 0, 1}} {
		if err := c.Add(e.Row, e.Col, e.Val); err != nil {
			t.Fatal(err)
		}
	}
	m := c.ToCSR()
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 after dedup", m.NNZ())
	}
	if got := m.At(0, 1); got != 3 {
		t.Fatalf("At(0,1) = %v, want 3 (summed)", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Fatalf("At(1,1) = %v, want 0", got)
	}
}

func TestCSRSortedRows(t *testing.T) {
	c := NewCOO(1, 5)
	for _, j := range []int{4, 0, 2, 1, 3} {
		if err := c.Add(0, j, float64(j)); err != nil {
			t.Fatal(err)
		}
	}
	m := c.ToCSR()
	for p := 1; p < len(m.ColIdx); p++ {
		if m.ColIdx[p] <= m.ColIdx[p-1] {
			t.Fatalf("row not sorted: %v", m.ColIdx)
		}
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := NewCOO(2, 2).ToCSR()
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	m.At(2, 0)
}

func TestTransposeAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	m, ref := randCSR(rng, 13, 7, 0.3)
	if !m.Transpose().ToDense().Equal(ref.T(), 1e-14) {
		t.Fatal("Transpose mismatch")
	}
	// Double transpose is identity.
	if !m.Transpose().Transpose().ToDense().Equal(ref, 1e-14) {
		t.Fatal("double Transpose mismatch")
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m, ref := randCSR(rng, 11, 9, 0.25)
	x := make([]float64, 9)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := m.MulVec(x, nil)
	want := dense.MulVec(ref, x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Reuse path.
	got2 := m.MulVec(x, got)
	if &got2[0] != &got[0] {
		t.Fatal("MulVec did not reuse buffer")
	}
}

func TestMulVecTAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m, ref := randCSR(rng, 11, 9, 0.25)
	x := make([]float64, 11)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := m.MulVecT(x, nil)
	want := dense.MulVec(ref.T(), x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVecT[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Buffer reuse must zero the destination first.
	again := m.MulVecT(x, got)
	for i := range want {
		if math.Abs(again[i]-want[i]) > 1e-12 {
			t.Fatal("MulVecT reuse did not reset buffer")
		}
	}
}

func TestMulDenseBothSides(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m, ref := randCSR(rng, 8, 6, 0.4)
	b := dense.NewMat(6, 5)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	if !m.MulDense(b).Equal(dense.Mul(ref, b), 1e-12) {
		t.Fatal("MulDense mismatch")
	}
	bt := dense.NewMat(8, 5)
	for i := range bt.Data {
		bt.Data[i] = rng.NormFloat64()
	}
	if !m.MulDenseT(bt).Equal(dense.Mul(ref.T(), bt), 1e-12) {
		t.Fatal("MulDenseT mismatch")
	}
	left := dense.NewMat(4, 8)
	for i := range left.Data {
		left.Data[i] = rng.NormFloat64()
	}
	if !DenseMulCSR(left, m).Equal(dense.Mul(left, ref), 1e-12) {
		t.Fatal("DenseMulCSR mismatch")
	}
}

func TestScaleColumnsAndColSums(t *testing.T) {
	c := NewCOO(2, 3)
	for _, e := range []Triple{{0, 0, 2}, {1, 0, 2}, {0, 2, 3}} {
		if err := c.Add(e.Row, e.Col, e.Val); err != nil {
			t.Fatal(err)
		}
	}
	m := c.ToCSR()
	sums := m.ColSums()
	if sums[0] != 4 || sums[1] != 0 || sums[2] != 3 {
		t.Fatalf("ColSums = %v", sums)
	}
	m.ScaleColumns([]float64{0.25, 1, 1.0 / 3})
	sums = m.ColSums()
	for j, s := range []float64{1, 0, 1} {
		if math.Abs(sums[j]-s) > 1e-15 {
			t.Fatalf("after scale, ColSums[%d] = %v, want %v", j, sums[j], s)
		}
	}
}

func TestRowNNZAndBytes(t *testing.T) {
	c := NewCOO(3, 3)
	for _, e := range []Triple{{0, 0, 1}, {0, 1, 1}, {2, 2, 1}} {
		if err := c.Add(e.Row, e.Col, e.Val); err != nil {
			t.Fatal(err)
		}
	}
	m := c.ToCSR()
	if m.RowNNZ(0) != 2 || m.RowNNZ(1) != 0 || m.RowNNZ(2) != 1 {
		t.Fatal("RowNNZ wrong")
	}
	wantBytes := int64(4)*8 + int64(3)*4 + int64(3)*8
	if m.Bytes() != wantBytes {
		t.Fatalf("Bytes = %d, want %d", m.Bytes(), wantBytes)
	}
}

// Property: SpMV agrees with the dense mirror for arbitrary random sparse
// matrices — the kernel every algorithm in the repo leans on.
func TestMulVecProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		m, ref := randCSR(rng, rows, cols, 0.3)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := m.MulVec(x, nil)
		want := dense.MulVec(ref, x)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgeList(t *testing.T) {
	in := "# comment\n0 1\n1 2\n\n2 0\n0 1\n"
	coo, err := ReadEdgeList(strings.NewReader(in), 3)
	if err != nil {
		t.Fatal(err)
	}
	m := coo.ToCSR()
	if m.At(0, 1) != 2 { // duplicate edge summed
		t.Fatalf("At(0,1) = %v, want 2", m.At(0, 1))
	}
	if m.At(2, 0) != 1 || m.At(1, 2) != 1 {
		t.Fatal("edges missing")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"one field", "0\n"},
		{"bad src", "x 1\n"},
		{"bad dst", "1 y\n"},
		{"out of range", "0 99\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tc.in), 3); err == nil {
				t.Fatalf("input %q parsed without error", tc.in)
			} else if tc.name != "out of range" && !errors.Is(err, ErrMalformed) {
				t.Fatalf("err = %v, want ErrMalformed", err)
			}
		})
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m, _ := randCSR(rng, 10, 10, 0.2)
	var sb strings.Builder
	if err := WriteEdgeList(&sb, m); err != nil {
		t.Fatal(err)
	}
	coo, err := ReadEdgeList(strings.NewReader(sb.String()), 10)
	if err != nil {
		t.Fatal(err)
	}
	back := coo.ToCSR()
	if back.NNZ() != m.NNZ() {
		t.Fatalf("round trip NNZ %d -> %d", m.NNZ(), back.NNZ())
	}
	rows, _ := m.Dims()
	for i := 0; i < rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if back.At(i, int(m.ColIdx[p])) != 1 {
				t.Fatalf("edge (%d,%d) lost", i, m.ColIdx[p])
			}
		}
	}
}

// TestReadEdgeListGarbageNeverPanics feeds random byte soup to the loader:
// it must always return (possibly an error), never panic.
func TestReadEdgeListGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := []byte("0123456789 -#\nabcxyz\t")
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(400)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %q: %v", buf, r)
				}
			}()
			_, _ = ReadEdgeList(strings.NewReader(string(buf)), 50)
		}()
	}
}

// TestReadMatrixMarketGarbageNeverPanics does the same for the
// MatrixMarket reader (with a valid banner so parsing goes deeper).
func TestReadMatrixMarketGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	alphabet := []byte("0123456789 .-e\n%")
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		in := "%%MatrixMarket matrix coordinate real general\n" + string(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %q: %v", in, r)
				}
			}()
			_, _ = ReadMatrixMarket(strings.NewReader(in))
		}()
	}
}

func TestWeightedEdgeListRoundTrip(t *testing.T) {
	in := "# weighted\n0 1 2.5\n1 2 0.75\n0 1 0.5\n"
	coo, err := ReadWeightedEdgeList(strings.NewReader(in), 3)
	if err != nil {
		t.Fatal(err)
	}
	m := coo.ToCSR()
	if m.At(0, 1) != 3.0 { // duplicates sum
		t.Fatalf("At(0,1) = %v, want 3", m.At(0, 1))
	}
	var sb strings.Builder
	if err := WriteWeightedEdgeList(&sb, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWeightedEdgeList(strings.NewReader(sb.String()), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !back.ToCSR().ToDense().Equal(m.ToDense(), 1e-15) {
		t.Fatal("weighted round trip changed values")
	}
}

func TestReadWeightedEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0 1\n", "x 1 2\n", "0 y 2\n", "0 1 zz\n", "0 99 1\n"} {
		if _, err := ReadWeightedEdgeList(strings.NewReader(in), 3); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

// TestMulDenseParallelPath pins GOMAXPROCS above 1 so the goroutine fan-
// out in MulDense runs, and checks bit-identical agreement with the
// serial reference.
func TestMulDenseParallelPath(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(71))
	m, ref := randCSR(rng, 600, 500, 0.3)
	b := dense.NewMat(500, 30) // nnz ~90k x 30 cols ≈ 2.7M flops → parallel path
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	got := m.MulDense(b)
	want := dense.Mul(ref, b)
	if !got.Equal(want, 1e-10) {
		t.Fatal("parallel MulDense mismatch")
	}
	// Determinism across repeated parallel runs.
	if !m.MulDense(b).Equal(got, 0) {
		t.Fatal("parallel MulDense not deterministic")
	}
}

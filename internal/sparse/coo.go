// Package sparse provides the sparse-matrix substrate for the CSR+
// reproduction: COO (coordinate) triples as the ingestion format — the
// storage scheme the paper's §4.1 "Graph Storage" describes — and CSR
// (compressed sparse row) as the compute format, with the SpMV/SpMM
// kernels every CoSimRank algorithm in this repository is built on.
package sparse

import (
	"errors"
	"fmt"
	"sort"
)

// ErrIndex is returned (wrapped) for out-of-range row/column indices.
var ErrIndex = errors.New("sparse: index out of range")

// Triple is one COO entry (Row, Col, Val), i.e. the {(x, y, w)} triple of
// the paper's COO description.
type Triple struct {
	Row, Col int
	Val      float64
}

// COO is a coordinate-format sparse matrix under construction. Duplicate
// entries are allowed and are summed when converting to CSR — the usual
// COO contract.
type COO struct {
	rows, cols int
	entries    []Triple
}

// NewCOO returns an empty COO matrix of the given shape.
// It panics if rows or cols is negative.
func NewCOO(rows, cols int) *COO {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: NewCOO(%d, %d): negative dimension", rows, cols))
	}
	return &COO{rows: rows, cols: cols}
}

// Dims returns the matrix shape.
func (c *COO) Dims() (rows, cols int) { return c.rows, c.cols }

// NNZ returns the number of stored entries (duplicates counted).
func (c *COO) NNZ() int { return len(c.entries) }

// Add appends entry (i, j, v). It returns ErrIndex (wrapped) when the
// coordinates fall outside the matrix.
func (c *COO) Add(i, j int, v float64) error {
	if i < 0 || i >= c.rows || j < 0 || j >= c.cols {
		return fmt.Errorf("sparse: COO.Add(%d, %d) on %dx%d: %w", i, j, c.rows, c.cols, ErrIndex)
	}
	c.entries = append(c.entries, Triple{i, j, v})
	return nil
}

// Grow reserves capacity for n further entries.
func (c *COO) Grow(n int) {
	if cap(c.entries)-len(c.entries) < n {
		grown := make([]Triple, len(c.entries), len(c.entries)+n)
		copy(grown, c.entries)
		c.entries = grown
	}
}

// ToCSR converts to CSR, sorting by (row, col) and summing duplicates.
// The receiver's entry slice is sorted in place as a side effect.
func (c *COO) ToCSR() *CSR {
	sort.Slice(c.entries, func(a, b int) bool {
		ea, eb := c.entries[a], c.entries[b]
		if ea.Row != eb.Row {
			return ea.Row < eb.Row
		}
		return ea.Col < eb.Col
	})
	// Count unique entries per row (after merging duplicates).
	m := &CSR{rows: c.rows, cols: c.cols, RowPtr: make([]int64, c.rows+1)}
	uniq := 0
	for k := 0; k < len(c.entries); {
		j := k + 1
		for j < len(c.entries) && c.entries[j].Row == c.entries[k].Row && c.entries[j].Col == c.entries[k].Col {
			j++
		}
		uniq++
		k = j
	}
	m.ColIdx = make([]int32, uniq)
	m.Val = make([]float64, uniq)
	pos := 0
	for k := 0; k < len(c.entries); {
		e := c.entries[k]
		sum := e.Val
		j := k + 1
		for j < len(c.entries) && c.entries[j].Row == e.Row && c.entries[j].Col == e.Col {
			sum += c.entries[j].Val
			j++
		}
		m.ColIdx[pos] = int32(e.Col)
		m.Val[pos] = sum
		m.RowPtr[e.Row+1]++
		pos++
		k = j
	}
	for i := 0; i < c.rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

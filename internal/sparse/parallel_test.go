package sparse

import (
	"math/rand"
	"runtime"
	"testing"

	"csrplus/internal/dense"
	"csrplus/internal/par"
)

// parallelCSR builds a fixture big enough to clear par.DefaultThreshold
// (2^20 flops) on every kernel under test: nnz ≈ 90k, 24 dense columns
// → ≈ 2.2M flops. b is shaped for MulDense (m·b), bT for MulDenseT
// (mᵀ·bT), left for DenseMulCSR (left·m).
func parallelCSR(seed int64) (m *CSR, ref, b, bT, left *dense.Mat) {
	rng := rand.New(rand.NewSource(seed))
	m, ref = randCSR(rng, 600, 500, 0.3)
	b = dense.NewMat(500, 24)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	bT = dense.NewMat(600, 24)
	for i := range bT.Data {
		bT.Data[i] = rng.NormFloat64()
	}
	left = dense.NewMat(24, 600)
	for i := range left.Data {
		left.Data[i] = rng.NormFloat64()
	}
	return
}

// serialScatterMulDenseT is the pre-parallelisation MulDenseT loop: a
// column scatter that walks rows of m in ascending order. The parallel
// path (Transpose().MulDense) must match it bitwise, because Transpose
// emits each output row's entries in exactly this ascending-row order.
func serialScatterMulDenseT(m *CSR, b *dense.Mat) *dense.Mat {
	rows, cols := m.Dims()
	out := dense.NewMat(cols, b.Cols)
	for i := 0; i < rows; i++ {
		bi := b.Row(i)
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			j, v := m.ColIdx[p], m.Val[p]
			oj := out.Row(int(j))
			for k, bv := range bi {
				oj[k] += v * bv
			}
		}
	}
	return out
}

func TestMulDenseTParallelMatchesSerialScatterBitwise(t *testing.T) {
	m, _, _, bT, _ := parallelCSR(41)
	want := serialScatterMulDenseT(m, bT)

	// Force the serial scatter branch inside MulDenseT...
	prev := par.SetMaxWorkers(1)
	serial := m.MulDenseT(bT)
	// ...then the transpose+row-parallel branch.
	par.SetMaxWorkers(4)
	parallel := m.MulDenseT(bT)
	par.SetMaxWorkers(prev)

	if !serial.Equal(want, 0) {
		t.Fatal("single-worker MulDenseT differs from reference scatter")
	}
	if !parallel.Equal(want, 0) {
		t.Fatal("transpose-parallel MulDenseT not bitwise equal to serial scatter")
	}
}

// TestSparseKernelsWorkerCountInvariant checks every parallelised sparse
// kernel returns identical bits at any worker count.
func TestSparseKernelsWorkerCountInvariant(t *testing.T) {
	m, _, b, bT, left := parallelCSR(43)
	kernels := map[string]func() *dense.Mat{
		"MulDense":    func() *dense.Mat { return m.MulDense(b) },
		"MulDenseT":   func() *dense.Mat { return m.MulDenseT(bT) },
		"DenseMulCSR": func() *dense.Mat { return DenseMulCSR(left, m) },
	}
	for name, kern := range kernels {
		prev := par.SetMaxWorkers(1)
		want := kern()
		for _, w := range []int{2, 3, 8} {
			par.SetMaxWorkers(w)
			if got := kern(); !got.Equal(want, 0) {
				par.SetMaxWorkers(prev)
				t.Fatalf("%s: %d-worker result differs from 1-worker result", name, w)
			}
		}
		par.SetMaxWorkers(prev)
	}
}

// TestSparseKernelsGOMAXPROCSDeterminism is the satellite requirement:
// GOMAXPROCS=1 and GOMAXPROCS=N produce equal results for every
// parallelised kernel.
func TestSparseKernelsGOMAXPROCSDeterminism(t *testing.T) {
	m, _, b, bT, left := parallelCSR(47)
	kernels := map[string]func() *dense.Mat{
		"MulDense":    func() *dense.Mat { return m.MulDense(b) },
		"MulDenseT":   func() *dense.Mat { return m.MulDenseT(bT) },
		"DenseMulCSR": func() *dense.Mat { return DenseMulCSR(left, m) },
	}
	for name, kern := range kernels {
		old := runtime.GOMAXPROCS(1)
		want := kern()
		runtime.GOMAXPROCS(8)
		got := kern()
		runtime.GOMAXPROCS(old)
		if !got.Equal(want, 0) {
			t.Fatalf("%s: GOMAXPROCS=8 result differs from GOMAXPROCS=1", name)
		}
	}
}

func TestDenseMulCSRParallelMatchesDenseReference(t *testing.T) {
	m, ref, _, _, left := parallelCSR(53)
	got := DenseMulCSR(left, m)
	want := dense.Mul(left, ref)
	if !got.Equal(want, 1e-10) {
		t.Fatal("parallel DenseMulCSR differs from dense reference")
	}
}

// --- Kernel benchmarks (CI smoke-runs these with -benchtime=1x). ---

func benchCSR(b *testing.B, cols int) (*CSR, *dense.Mat) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	m, _ := randCSR(rng, 3000, 3000, 0.02) // nnz ≈ 180k
	d := dense.NewMat(3000, cols)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return m, d
}

func BenchmarkKernelMulDense(b *testing.B) {
	m, d := benchCSR(b, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulDense(d)
	}
}

func BenchmarkKernelMulDenseT(b *testing.B) {
	m, d := benchCSR(b, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulDenseT(d)
	}
}

func BenchmarkKernelDenseMulCSR(b *testing.B) {
	m, _ := benchCSR(b, 32)
	rng := rand.New(rand.NewSource(2))
	left := dense.NewMat(32, 3000)
	for i := range left.Data {
		left.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DenseMulCSR(left, m)
	}
}

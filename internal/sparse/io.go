package sparse

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ErrMalformed is returned (wrapped) when an edge-list stream cannot be
// parsed.
var ErrMalformed = errors.New("sparse: malformed edge list")

// ReadEdgeList parses a SNAP-style whitespace-separated edge list
// ("src dst" per line, '#' comments and blank lines ignored) into a COO
// matrix with value 1 per edge. Node ids must be in [0, n). The dst stream
// is the matrix column, matching the reproduction's convention that entry
// (u, v) represents the edge u -> v.
func ReadEdgeList(r io.Reader, n int) (*COO, error) {
	coo := NewCOO(n, n)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("line %d: %q has %d fields, need 2: %w", line, text, len(fields), ErrMalformed)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad source %q: %w", line, fields[0], ErrMalformed)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad target %q: %w", line, fields[1], ErrMalformed)
		}
		if err := coo.Add(u, v, 1); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sparse: reading edge list: %w", err)
	}
	return coo, nil
}

// ReadWeightedEdgeList parses a whitespace-separated weighted edge list
// ("src dst weight" per line, '#' comments and blank lines ignored) into
// a COO matrix. Node ids must be in [0, n); weights must parse as positive
// finite floats (duplicates sum on conversion).
func ReadWeightedEdgeList(r io.Reader, n int) (*COO, error) {
	coo := NewCOO(n, n)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, fmt.Errorf("line %d: %q has %d fields, need 3: %w", line, text, len(fields), ErrMalformed)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad source %q: %w", line, fields[0], ErrMalformed)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad target %q: %w", line, fields[1], ErrMalformed)
		}
		w, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad weight %q: %w", line, fields[2], ErrMalformed)
		}
		// ParseFloat happily returns NaN and ±Inf; none of them (nor a
		// non-positive weight) has a random-surfer reading downstream.
		if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
			return nil, fmt.Errorf("line %d: weight %q must be positive and finite: %w", line, fields[2], ErrMalformed)
		}
		if err := coo.Add(u, v, w); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sparse: reading weighted edge list: %w", err)
	}
	return coo, nil
}

// WriteWeightedEdgeList emits m as "src dst weight" lines.
func WriteWeightedEdgeList(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	rows, _ := m.Dims()
	for i := 0; i < rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i, m.ColIdx[p], m.Val[p]); err != nil {
				return fmt.Errorf("sparse: writing weighted edge list: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("sparse: flushing weighted edge list: %w", err)
	}
	return nil
}

// WriteEdgeList emits the nonzero pattern of m as a "src dst" edge list.
// Values are not written; the format carries structure only.
func WriteEdgeList(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	rows, _ := m.Dims()
	for i := 0; i < rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if _, err := fmt.Fprintf(bw, "%d %d\n", i, m.ColIdx[p]); err != nil {
				return fmt.Errorf("sparse: writing edge list: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("sparse: flushing edge list: %w", err)
	}
	return nil
}

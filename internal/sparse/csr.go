package sparse

import (
	"fmt"

	"csrplus/internal/dense"
	"csrplus/internal/par"
)

// CSR is a compressed-sparse-row matrix: row i's entries live at positions
// RowPtr[i] .. RowPtr[i+1] in ColIdx/Val, with ColIdx sorted ascending
// within each row. Column indices are int32 (the reproduction's graphs stay
// under 2³¹ nodes); row pointers are int64 so edge counts may exceed 2³¹.
type CSR struct {
	rows, cols int
	RowPtr     []int64
	ColIdx     []int32
	Val        []float64
}

// Dims returns the matrix shape.
func (m *CSR) Dims() (rows, cols int) { return m.rows, m.cols }

// Clone returns a deep copy of m.
func (m *CSR) Clone() *CSR {
	return &CSR{
		rows:   m.rows,
		cols:   m.cols,
		RowPtr: append([]int64(nil), m.RowPtr...),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int64 { return int64(len(m.ColIdx)) }

// Bytes reports the memory footprint of the matrix payload in bytes.
func (m *CSR) Bytes() int64 {
	return int64(len(m.RowPtr))*8 + int64(len(m.ColIdx))*4 + int64(len(m.Val))*8
}

// At returns element (i, j) by binary search within row i. O(log nnz(row)).
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("sparse: CSR.At(%d, %d) on %dx%d: %v", i, j, m.rows, m.cols, ErrIndex))
	}
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch c := int(m.ColIdx[mid]); {
		case c == j:
			return m.Val[mid]
		case c < j:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0
}

// Transpose returns the transpose of m, still in CSR (equivalently, m in
// CSC). O(nnz + rows + cols).
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		rows:   m.cols,
		cols:   m.rows,
		RowPtr: make([]int64, m.cols+1),
		ColIdx: make([]int32, len(m.ColIdx)),
		Val:    make([]float64, len(m.Val)),
	}
	for _, j := range m.ColIdx {
		t.RowPtr[j+1]++
	}
	for i := 0; i < m.cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := make([]int64, m.cols)
	copy(next, t.RowPtr[:m.cols])
	for i := 0; i < m.rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			j := m.ColIdx[p]
			q := next[j]
			t.ColIdx[q] = int32(i)
			t.Val[q] = m.Val[p]
			next[j]++
		}
	}
	return t
}

// MulVec computes y = m * x, reusing y when it has the right length.
// It panics on dimension mismatch.
func (m *CSR) MulVec(x, y []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("sparse: MulVec %dx%d * vec(%d)", m.rows, m.cols, len(x)))
	}
	if len(y) != m.rows {
		y = make([]float64, m.rows)
	}
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Val[p] * x[m.ColIdx[p]]
		}
		y[i] = s
	}
	return y
}

// MulVecT computes y = mᵀ * x without materialising the transpose,
// reusing y when it has the right length. It panics on dimension mismatch.
func (m *CSR) MulVecT(x, y []float64) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("sparse: MulVecT (%dx%d)ᵀ * vec(%d)", m.rows, m.cols, len(x)))
	}
	if len(y) != m.cols {
		y = make([]float64, m.cols)
	} else {
		for i := range y {
			y[i] = 0
		}
	}
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			y[m.ColIdx[p]] += m.Val[p] * xi
		}
	}
	return y
}

// MulDense computes m * b for a dense b, i.e. the SpMM kernel used by the
// truncated SVD (A * Omega) and by the dense-iteration baselines. Output
// rows are partitioned across par.Workers goroutines for large products;
// each row is written by exactly one goroutine in a fixed order, so the
// result is bitwise-deterministic at every worker count.
//
// Within a row the output is computed four columns at a time with the
// four accumulators held in registers across the row's stored entries
// (the row's index/value slices are L1-resident on the repeat sweeps),
// instead of streaming read-modify-write traffic through the output
// row once per entry. Each output element still sums its products in
// storage (ascending-p) order with no value-dependent skips, so the
// result is bitwise-equal to reftest.CSRMulDense — 0·NaN and 0·Inf
// corners included.
func (m *CSR) MulDense(b *dense.Mat) *dense.Mat {
	if m.cols != b.Rows {
		panic(fmt.Sprintf("sparse: MulDense %dx%d * %dx%d", m.rows, m.cols, b.Rows, b.Cols))
	}
	out := dense.NewMat(m.rows, b.Cols)
	par.Do(m.rows, m.NNZ()*int64(b.Cols), func(lo, hi int) {
		k := b.Cols
		for i := lo; i < hi; i++ {
			plo, phi := m.RowPtr[i], m.RowPtr[i+1]
			idx := m.ColIdx[plo:phi]
			val := m.Val[plo:phi]
			orow := out.Data[i*k : (i+1)*k]
			c := 0
			for ; c+4 <= k; c += 4 {
				var s0, s1, s2, s3 float64
				for p, v := range val {
					t := int(idx[p])*k + c
					brow := b.Data[t : t+4]
					s0 += v * brow[0]
					s1 += v * brow[1]
					s2 += v * brow[2]
					s3 += v * brow[3]
				}
				orow[c], orow[c+1], orow[c+2], orow[c+3] = s0, s1, s2, s3
			}
			for ; c < k; c++ {
				var s float64
				for p, v := range val {
					s += v * b.Data[int(idx[p])*k+c]
				}
				orow[c] = s
			}
		}
	})
	return out
}

// MulDenseT computes mᵀ * b for a dense b without materialising mᵀ —
// except when the product is large enough to parallelise: the natural
// loop scatters into output rows keyed by column index and would race
// under row partitioning, so the parallel path materialises the
// transpose once (O(nnz + rows + cols), small next to the O(nnz·k)
// multiply) and runs the gather-ordered MulDense on it. Transpose keeps
// each output row's entries in ascending original-row order — the exact
// summation order of the serial scatter loop — so both paths, and every
// worker count, produce identical bits.
func (m *CSR) MulDenseT(b *dense.Mat) *dense.Mat {
	if m.rows != b.Rows {
		panic(fmt.Sprintf("sparse: MulDenseT (%dx%d)ᵀ * %dx%d", m.rows, m.cols, b.Rows, b.Cols))
	}
	if flops := m.NNZ() * int64(b.Cols); flops >= par.DefaultThreshold && par.Workers() > 1 {
		return m.Transpose().MulDense(b)
	}
	out := dense.NewMat(m.cols, b.Cols)
	k := b.Cols
	for i := 0; i < m.rows; i++ {
		brow := b.Data[i*k : (i+1)*k]
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			v := m.Val[p]
			orow := out.Data[int(m.ColIdx[p])*k : (int(m.ColIdx[p])+1)*k]
			for c, bv := range brow {
				orow[c] += v * bv
			}
		}
	}
	return out
}

// DenseMulCSR computes b * m for a dense b — the right-side SpMM used by
// the all-pairs iteration S ← c QᵀS Q + I, whose inner step is (QᵀS)Q.
// Rows of b (hence of the output) are partitioned across par.Workers
// goroutines; each output row is accumulated by one goroutine in the
// serial order, so results are bitwise-deterministic at every worker
// count.
//
// Rows are processed four at a time (par.DoAligned keeps worker splits
// on tile boundaries) so each sweep of m's index/value arrays feeds
// four output rows — a 4× cut in the kernel's dominant memory stream.
// Grouping never touches any single element's accumulation order
// (k ascending, entries in storage order), and there is no skip on
// zero b values — an earlier version had one, which silently dropped
// the IEEE-required NaN from 0·NaN and 0·±Inf terms — so results are
// bitwise-equal to reftest.DenseMulCSR.
func DenseMulCSR(b *dense.Mat, m *CSR) *dense.Mat {
	if b.Cols != m.rows {
		panic(fmt.Sprintf("sparse: DenseMulCSR %dx%d * %dx%d", b.Rows, b.Cols, m.rows, m.cols))
	}
	out := dense.NewMat(b.Rows, m.cols)
	par.DoAligned(b.Rows, 4, m.NNZ()*int64(b.Rows), func(lo, hi int) {
		i := lo
		for ; i+4 <= hi; i += 4 {
			b0 := b.Data[(i+0)*b.Cols : (i+1)*b.Cols]
			b1 := b.Data[(i+1)*b.Cols : (i+2)*b.Cols]
			b2 := b.Data[(i+2)*b.Cols : (i+3)*b.Cols]
			b3 := b.Data[(i+3)*b.Cols : (i+4)*b.Cols]
			o0 := out.Data[(i+0)*m.cols : (i+1)*m.cols]
			o1 := out.Data[(i+1)*m.cols : (i+2)*m.cols]
			o2 := out.Data[(i+2)*m.cols : (i+3)*m.cols]
			o3 := out.Data[(i+3)*m.cols : (i+4)*m.cols]
			for k, bv0 := range b0 {
				bv1, bv2, bv3 := b1[k], b2[k], b3[k]
				plo, phi := m.RowPtr[k], m.RowPtr[k+1]
				idx := m.ColIdx[plo:phi]
				val := m.Val[plo:phi]
				for p, v := range val {
					j := idx[p]
					o0[j] += bv0 * v
					o1[j] += bv1 * v
					o2[j] += bv2 * v
					o3[j] += bv3 * v
				}
			}
		}
		for ; i < hi; i++ {
			brow := b.Data[i*b.Cols : (i+1)*b.Cols]
			orow := out.Data[i*m.cols : (i+1)*m.cols]
			for k, bv := range brow {
				plo, phi := m.RowPtr[k], m.RowPtr[k+1]
				idx := m.ColIdx[plo:phi]
				val := m.Val[plo:phi]
				for p, v := range val {
					orow[idx[p]] += bv * v
				}
			}
		}
	})
	return out
}

// ToDense materialises the matrix densely — test/reference use only.
func (m *CSR) ToDense() *dense.Mat {
	out := dense.NewMat(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			out.Set(i, int(m.ColIdx[p]), m.Val[p])
		}
	}
	return out
}

// ScaleColumns multiplies column j by s[j], in place. Used to build the
// column-normalised transition matrix Q = A * D⁻¹.
func (m *CSR) ScaleColumns(s []float64) {
	if len(s) != m.cols {
		panic(fmt.Sprintf("sparse: ScaleColumns len %d on %d cols", len(s), m.cols))
	}
	for p, j := range m.ColIdx {
		m.Val[p] *= s[j]
	}
}

// ColSums returns the per-column sums of the matrix.
func (m *CSR) ColSums() []float64 {
	sums := make([]float64, m.cols)
	for p, j := range m.ColIdx {
		sums[j] += m.Val[p]
	}
	return sums
}

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

package sparse

import (
	"math"
	"testing"

	"csrplus/internal/dense"
	"csrplus/internal/dense/reftest"
	"csrplus/internal/par"
)

// Differential tests and fuzzing of the SpMM kernels against the frozen
// CSR references in internal/dense/reftest (which take raw CSR arrays
// precisely so this package can use them without an import cycle).

// csrFromBytes deterministically builds an r×c CSR from fuzz bytes: one
// presence bit per cell (columns ascending within each row, as the
// format requires) and an 8-byte float64 bit pattern per stored value —
// so stored values include NaNs, infinities, ±0 and subnormals.
func csrFromBytes(r, c int, raw []byte) *CSR {
	m := &CSR{rows: r, cols: c, RowPtr: make([]int64, r+1)}
	if len(raw) == 0 {
		return m
	}
	bit, vals := 0, 0
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if raw[(bit/8)%len(raw)]>>(bit%8)&1 == 1 {
				var bits uint64
				for b := 0; b < 8; b++ {
					bits |= uint64(raw[(vals*8+b+3)%len(raw)]) << (8 * uint(b))
				}
				vals++
				m.ColIdx = append(m.ColIdx, int32(j))
				m.Val = append(m.Val, math.Float64frombits(bits))
			}
			bit++
		}
		m.RowPtr[i+1] = int64(len(m.ColIdx))
	}
	return m
}

// fuzzMat mirrors the dense fuzz helper: raw bytes as float64 bits.
func fuzzMat(r, c int, raw []byte, phase int) *dense.Mat {
	m := dense.NewMat(r, c)
	if len(raw) == 0 {
		return m
	}
	for i := range m.Data {
		var bits uint64
		for b := 0; b < 8; b++ {
			bits |= uint64(raw[(phase+i*8+b)%len(raw)]) << (8 * uint(b))
		}
		m.Data[i] = math.Float64frombits(bits)
	}
	return m
}

func sparseBitEq(t *testing.T, what string, got, want *dense.Mat) {
	t.Helper()
	if i, j, ok := reftest.Diff(got, want); !ok {
		t.Errorf("%s: first difference at (%d, %d)", what, i, j)
	}
}

// FuzzMulDense differentially fuzzes all three SpMM kernels — MulDense,
// MulDenseT and DenseMulCSR — against the reftest CSR references, with
// matrix shape, worker count, sparsity pattern and every float64 bit
// drawn from the corpus.
func FuzzMulDense(f *testing.F) {
	seeds := [][]byte{
		{},
		[]byte("csrplus spmm fuzz seed fedcba9876543210"),
		{0xff, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf8, 0x7f,
			0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf0, 0xff,
			0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x80},
	}
	for _, raw := range seeds {
		f.Add(uint8(3), uint8(4), uint8(4), uint8(1), raw)
		f.Add(uint8(12), uint8(7), uint8(5), uint8(2), raw)
		f.Add(uint8(1), uint8(0), uint8(3), uint8(0), raw)
	}
	f.Fuzz(func(t *testing.T, rows, cols, k, workers uint8, raw []byte) {
		r, c, n := int(rows)%16, int(cols)%16, int(k)%16
		m := csrFromBytes(r, c, raw)
		b := fuzzMat(c, n, raw, 1)
		bT := fuzzMat(r, n, raw, 2)
		left := fuzzMat(n, r, raw, 5)
		prevW := par.SetMaxWorkers(1 + int(workers)%4)
		defer par.SetMaxWorkers(prevW)
		sparseBitEq(t, "MulDense vs reftest.CSRMulDense",
			m.MulDense(b), reftest.CSRMulDense(m.RowPtr, m.ColIdx, m.Val, r, b))
		sparseBitEq(t, "MulDenseT vs reftest.CSRMulDenseT",
			m.MulDenseT(bT), reftest.CSRMulDenseT(m.RowPtr, m.ColIdx, m.Val, r, c, bT))
		sparseBitEq(t, "DenseMulCSR vs reftest.DenseMulCSR",
			DenseMulCSR(left, m), reftest.DenseMulCSR(left, m.RowPtr, m.ColIdx, m.Val, c))
	})
}

// TestSparseKernelsMatchReferenceBitwise holds the parallel-sized SpMM
// kernels bitwise to the reftest references at several worker counts —
// the reference comparison the worker-invariance tests alone don't give.
func TestSparseKernelsMatchReferenceBitwise(t *testing.T) {
	m, _, b, bT, left := parallelCSR(59)
	wantMul := reftest.CSRMulDense(m.RowPtr, m.ColIdx, m.Val, m.rows, b)
	wantMulT := reftest.CSRMulDenseT(m.RowPtr, m.ColIdx, m.Val, m.rows, m.cols, bT)
	wantRight := reftest.DenseMulCSR(left, m.RowPtr, m.ColIdx, m.Val, m.cols)
	for _, w := range []int{1, 2, 3, 7} {
		prev := par.SetMaxWorkers(w)
		sparseBitEq(t, "MulDense", m.MulDense(b), wantMul)
		sparseBitEq(t, "MulDenseT", m.MulDenseT(bT), wantMulT)
		sparseBitEq(t, "DenseMulCSR", DenseMulCSR(left, m), wantRight)
		par.SetMaxWorkers(prev)
	}
}

// TestDenseMulCSRZeroTimesNaNRegression pins the zero-skip fix: a zero
// row of b against a CSR holding NaN must produce NaN (0·NaN), not 0 —
// the historical kernel skipped zero b values and hid index-range bugs
// behind dropped NaNs. Rows 1..4 exercise both the 4-row tile and the
// edge loop.
func TestDenseMulCSRZeroTimesNaNRegression(t *testing.T) {
	coo := NewCOO(2, 2)
	if err := coo.Add(0, 0, math.NaN()); err != nil {
		t.Fatal(err)
	}
	if err := coo.Add(1, 1, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	m := coo.ToCSR()
	for rows := 1; rows <= 4; rows++ {
		b := dense.NewMat(rows, 2) // all zeros
		out := DenseMulCSR(b, m)
		for i := 0; i < rows; i++ {
			if !math.IsNaN(out.At(i, 0)) {
				t.Fatalf("rows=%d: 0·NaN gave %v at (%d,0), want NaN", rows, out.At(i, 0), i)
			}
			if !math.IsNaN(out.At(i, 1)) {
				t.Fatalf("rows=%d: 0·Inf gave %v at (%d,1), want NaN", rows, out.At(i, 1), i)
			}
		}
	}
}

package sparse

// matrixmarket.go implements the MatrixMarket coordinate exchange format
// (the other lingua franca of sparse-matrix tooling besides raw edge
// lists), so graphs and transition matrices can move between this library
// and MATLAB/SciPy — the ecosystems the paper's original implementation
// lived in.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// mmHeader is the banner this writer emits and the reader accepts (along
// with the "pattern" variant, which carries structure only).
const (
	mmBannerReal    = "%%MatrixMarket matrix coordinate real general"
	mmBannerPattern = "%%MatrixMarket matrix coordinate pattern general"
)

// WriteMatrixMarket emits m in coordinate real general format.
// MatrixMarket indices are 1-based.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	rows, cols := m.Dims()
	if _, err := fmt.Fprintf(bw, "%s\n%d %d %d\n", mmBannerReal, rows, cols, m.NNZ()); err != nil {
		return fmt.Errorf("sparse: writing MatrixMarket header: %w", err)
	}
	for i := 0; i < rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.ColIdx[p]+1, m.Val[p]); err != nil {
				return fmt.Errorf("sparse: writing MatrixMarket entry: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("sparse: flushing MatrixMarket: %w", err)
	}
	return nil
}

// ReadMatrixMarket parses coordinate-format MatrixMarket input, accepting
// "real" (explicit values) and "pattern" (implicit value 1) variants.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket input: %w", ErrMalformed)
	}
	banner := strings.ToLower(strings.Join(strings.Fields(sc.Text()), " "))
	pattern := false
	switch banner {
	case strings.ToLower(mmBannerReal):
	case strings.ToLower(mmBannerPattern):
		pattern = true
	default:
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket banner %q: %w", sc.Text(), ErrMalformed)
	}
	// Size line (skipping % comments).
	var rows, cols int
	var nnz int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad MatrixMarket size line %q: %w", line, ErrMalformed)
		}
		break
	}
	if rows <= 0 || cols <= 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: bad MatrixMarket dimensions %dx%d nnz=%d: %w", rows, cols, nnz, ErrMalformed)
	}
	coo := NewCOO(rows, cols)
	coo.Grow(int(nnz))
	var read int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		want := 3
		if pattern {
			want = 2
		}
		if len(fields) < want {
			return nil, fmt.Errorf("sparse: MatrixMarket entry %q has %d fields, want %d: %w", line, len(fields), want, ErrMalformed)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad MatrixMarket row %q: %w", fields[0], ErrMalformed)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad MatrixMarket col %q: %w", fields[1], ErrMalformed)
		}
		v := 1.0
		if !pattern {
			if v, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return nil, fmt.Errorf("sparse: bad MatrixMarket value %q: %w", fields[2], ErrMalformed)
			}
		}
		if err := coo.Add(i-1, j-1, v); err != nil {
			return nil, fmt.Errorf("sparse: MatrixMarket entry (%d, %d): %w", i, j, err)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sparse: reading MatrixMarket: %w", err)
	}
	if read != nnz {
		return nil, fmt.Errorf("sparse: MatrixMarket header promised %d entries, found %d: %w", nnz, read, ErrMalformed)
	}
	return coo.ToCSR(), nil
}

package sparse

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	m, _ := randCSR(rng, 15, 12, 0.25)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.ToDense().Equal(m.ToDense(), 1e-15) {
		t.Fatal("MatrixMarket round trip changed values")
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
% a comment
3 3 2
1 2
3 1
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 1 || m.At(2, 0) != 1 {
		t.Fatal("pattern entries wrong")
	}
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad banner", "%%MatrixMarket matrix array real general\n1 1 0\n"},
		{"bad size", "%%MatrixMarket matrix coordinate real general\nxxx\n"},
		{"negative dims", "%%MatrixMarket matrix coordinate real general\n-1 3 0\n"},
		{"short entry", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2\n"},
		{"bad row", "%%MatrixMarket matrix coordinate real general\n2 2 1\nx 2 1.0\n"},
		{"bad col", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 x 1.0\n"},
		{"bad value", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 zz\n"},
		{"count mismatch", "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 1.0\n"},
		{"out of range", "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadMatrixMarket(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("input %q accepted", tc.in)
			}
		})
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	m, _ := randCSR(rng, 40, 33, 0.15)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r1, c1 := m.Dims()
	r2, c2 := back.Dims()
	if r1 != r2 || c1 != c2 || m.NNZ() != back.NNZ() {
		t.Fatal("shape changed")
	}
	if !back.ToDense().Equal(m.ToDense(), 0) {
		t.Fatal("binary round trip changed values")
	}
}

func TestBinaryEmptyMatrix(t *testing.T) {
	m := NewCOO(5, 5).ToCSR()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != 0 {
		t.Fatal("empty matrix grew entries")
	}
}

func TestBinaryCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	m, _ := randCSR(rng, 10, 10, 0.3)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		data := append([]byte(nil), good...)
		data[0] = 'X'
		if _, err := ReadBinary(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		data := append([]byte(nil), good...)
		data[4] = 9
		if _, err := ReadBinary(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bit flip", func(t *testing.T) {
		data := append([]byte(nil), good...)
		data[len(data)-12] ^= 0x10
		if _, err := ReadBinary(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{2, 7, len(good) / 2, len(good) - 1} {
			if _, err := ReadBinary(bytes.NewReader(good[:cut])); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("implausible nnz", func(t *testing.T) {
		data := append([]byte(nil), good...)
		for i := 0; i < 8; i++ {
			data[24+i] = 0xFF // nnz field (magic 4 + ver 4 + rows 8 + cols 8)
		}
		if _, err := ReadBinary(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
}

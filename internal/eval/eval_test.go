package eval

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrecisionAtK(t *testing.T) {
	exact := []float64{0.9, 0.8, 0.7, 0.1, 0.05}
	same := append([]float64(nil), exact...)
	p, err := PrecisionAtK(same, exact, 3)
	if err != nil || p != 1 {
		t.Fatalf("p=%v err=%v", p, err)
	}
	// Approximation swaps rank 3 and 4: top-3 loses one member.
	approx := []float64{0.9, 0.8, 0.1, 0.7, 0.05}
	p, err = PrecisionAtK(approx, exact, 3)
	if err != nil || math.Abs(p-2.0/3) > 1e-12 {
		t.Fatalf("p=%v err=%v", p, err)
	}
}

func TestPrecisionAtKClampsAndErrors(t *testing.T) {
	if p, err := PrecisionAtK([]float64{1, 2}, []float64{1, 2}, 10); err != nil || p != 1 {
		t.Fatalf("clamp: p=%v err=%v", p, err)
	}
	if _, err := PrecisionAtK([]float64{1}, []float64{1, 2}, 1); !errors.Is(err, ErrLength) {
		t.Fatalf("err=%v", err)
	}
	if _, err := PrecisionAtK([]float64{1}, []float64{1}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestNDCGPerfectAndDegraded(t *testing.T) {
	exact := []float64{3, 2, 1, 0}
	if g, err := NDCGAtK(exact, exact, 4); err != nil || math.Abs(g-1) > 1e-12 {
		t.Fatalf("perfect NDCG=%v err=%v", g, err)
	}
	reversed := []float64{0, 1, 2, 3}
	g, err := NDCGAtK(reversed, exact, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g >= 1 || g <= 0 {
		t.Fatalf("reversed NDCG=%v, want (0, 1)", g)
	}
}

func TestNDCGZeroRelevance(t *testing.T) {
	if g, err := NDCGAtK([]float64{1, 2}, []float64{0, 0}, 2); err != nil || g != 1 {
		t.Fatalf("g=%v err=%v", g, err)
	}
}

func TestKendallTau(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if tau, err := KendallTau(a, a); err != nil || tau != 1 {
		t.Fatalf("identical tau=%v err=%v", tau, err)
	}
	rev := []float64{4, 3, 2, 1}
	if tau, err := KendallTau(a, rev); err != nil || tau != -1 {
		t.Fatalf("reversed tau=%v err=%v", tau, err)
	}
	if _, err := KendallTau([]float64{1}, []float64{1}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := KendallTau([]float64{1, 2}, []float64{1}); !errors.Is(err, ErrLength) {
		t.Fatal("length mismatch accepted")
	}
}

func TestSpearmanRho(t *testing.T) {
	a := []float64{10, 20, 30, 40}
	b := []float64{1, 2, 3, 4}
	if rho, err := SpearmanRho(a, b); err != nil || math.Abs(rho-1) > 1e-12 {
		t.Fatalf("rho=%v err=%v", rho, err)
	}
	rev := []float64{4, 3, 2, 1}
	if rho, err := SpearmanRho(a, rev); err != nil || math.Abs(rho+1) > 1e-12 {
		t.Fatalf("rho=%v err=%v", rho, err)
	}
	if _, err := SpearmanRho([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("zero variance accepted")
	}
}

func TestRanksWithTies(t *testing.T) {
	r := ranksWithTies([]float64{5, 5, 3})
	// Two tied leaders share rank (1+2)/2 = 1.5; the third gets 3.
	if r[0] != 1.5 || r[1] != 1.5 || r[2] != 3 {
		t.Fatalf("ranks = %v", r)
	}
}

// Property: tau and rho are +1 for any strictly monotone transform.
func TestMonotoneInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		// Ensure distinct values so the order is strict.
		for i := range a {
			a[i] += float64(i) * 1e-9
		}
		b := make([]float64, n)
		for i, v := range a {
			b[i] = math.Exp(v) // strictly monotone
		}
		tau, err := KendallTau(a, b)
		if err != nil || math.Abs(tau-1) > 1e-12 {
			return false
		}
		rho, err := SpearmanRho(a, b)
		return err == nil && math.Abs(rho-1) > -1 && math.Abs(rho-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: precision@k and NDCG@k are 1 when approx == exact.
func TestSelfAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64()
		}
		k := 1 + rng.Intn(n)
		p, err := PrecisionAtK(a, a, k)
		if err != nil || p != 1 {
			return false
		}
		g, err := NDCGAtK(a, a, k)
		return err == nil && math.Abs(g-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Package eval provides ranking-quality metrics for comparing an
// approximate similarity algorithm's orderings against exact CoSimRank.
// The paper reports only element-wise AvgDiff (its Table 3); operationally
// what matters for top-k retrieval is whether the *ordering* survives the
// low-rank truncation, so the harness's extension experiment also reports
// Precision@k, NDCG@k, and Kendall/Spearman rank correlations.
package eval

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrLength is returned (wrapped) when paired inputs have different sizes.
var ErrLength = errors.New("eval: length mismatch")

// rankOrder returns indices sorted by descending score (ascending index
// among ties, for determinism).
func rankOrder(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}

// PrecisionAtK returns |topk(approx) ∩ topk(exact)| / k: how much of the
// true top-k the approximation retrieves. k is clamped to the input size.
func PrecisionAtK(approx, exact []float64, k int) (float64, error) {
	if len(approx) != len(exact) {
		return 0, fmt.Errorf("eval: PrecisionAtK %d vs %d: %w", len(approx), len(exact), ErrLength)
	}
	if k <= 0 {
		return 0, fmt.Errorf("eval: PrecisionAtK k=%d", k)
	}
	if k > len(exact) {
		k = len(exact)
	}
	if k == 0 {
		return 0, nil
	}
	truth := map[int]bool{}
	for _, i := range rankOrder(exact)[:k] {
		truth[i] = true
	}
	hits := 0
	for _, i := range rankOrder(approx)[:k] {
		if truth[i] {
			hits++
		}
	}
	return float64(hits) / float64(k), nil
}

// NDCGAtK returns the normalised discounted cumulative gain of the
// approximate ordering, using the exact scores as graded relevance.
// 1.0 means the approximate order is as good as the exact order.
func NDCGAtK(approx, exact []float64, k int) (float64, error) {
	if len(approx) != len(exact) {
		return 0, fmt.Errorf("eval: NDCGAtK %d vs %d: %w", len(approx), len(exact), ErrLength)
	}
	if k <= 0 {
		return 0, fmt.Errorf("eval: NDCGAtK k=%d", k)
	}
	if k > len(exact) {
		k = len(exact)
	}
	if k == 0 {
		return 0, nil
	}
	dcg := 0.0
	for pos, i := range rankOrder(approx)[:k] {
		dcg += exact[i] / math.Log2(float64(pos)+2)
	}
	ideal := 0.0
	for pos, i := range rankOrder(exact)[:k] {
		ideal += exact[i] / math.Log2(float64(pos)+2)
	}
	if ideal == 0 {
		return 1, nil // all-zero relevance: any order is ideal
	}
	return dcg / ideal, nil
}

// KendallTau returns the Kendall rank correlation (tau-a) between two
// score vectors: +1 identical order, −1 reversed, ~0 unrelated.
// O(n²) — intended for evaluation-sized vectors, not full graphs.
func KendallTau(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("eval: KendallTau %d vs %d: %w", len(a), len(b), ErrLength)
	}
	n := len(a)
	if n < 2 {
		return 0, fmt.Errorf("eval: KendallTau needs >= 2 items, got %d", n)
	}
	concordant, discordant := 0, 0
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			switch prod := da * db; {
			case prod > 0:
				concordant++
			case prod < 0:
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs), nil
}

// SpearmanRho returns the Spearman rank correlation between two score
// vectors (Pearson correlation of their rank sequences, average ranks for
// ties).
func SpearmanRho(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("eval: SpearmanRho %d vs %d: %w", len(a), len(b), ErrLength)
	}
	if len(a) < 2 {
		return 0, fmt.Errorf("eval: SpearmanRho needs >= 2 items, got %d", len(a))
	}
	ra := ranksWithTies(a)
	rb := ranksWithTies(b)
	return pearson(ra, rb)
}

// ranksWithTies assigns 1-based ranks, averaging over tied groups.
func ranksWithTies(scores []float64) []float64 {
	order := rankOrder(scores)
	ranks := make([]float64, len(scores))
	for pos := 0; pos < len(order); {
		end := pos
		for end+1 < len(order) && scores[order[end+1]] == scores[order[pos]] {
			end++
		}
		avg := float64(pos+end)/2 + 1
		for k := pos; k <= end; k++ {
			ranks[order[k]] = avg
		}
		pos = end + 1
	}
	return ranks
}

func pearson(x, y []float64) (float64, error) {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, errors.New("eval: zero variance")
	}
	return cov / math.Sqrt(vx*vy), nil
}

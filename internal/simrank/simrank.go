// Package simrank implements Jeh & Widom's classic SimRank — the measure
// CoSimRank is contrasted against in the paper's §2. It exists here to
// verify, numerically, the two claims that motivate the paper's framing:
//
//  1. the solution S' of Li et al.'s linear equation
//     S' = c·QᵀS'Q + (1−c)·I (Eq. 4) is exactly (1−c)× the CoSimRank
//     matrix of Eq. 1 — i.e. Li et al.'s "SimRank approximation" is
//     really scaled CoSimRank (the result of [13] the paper leans on);
//  2. neither equals true SimRank, whose entry-wise max with the
//     identity (diagonal pinned to 1) breaks linearity.
//
// The implementation is the standard O(K·n²·d) iterative form over the
// in-neighbour lists, intended for validation-scale graphs.
package simrank

import (
	"errors"
	"fmt"

	"csrplus/internal/dense"
	"csrplus/internal/graph"
)

// ErrParams is returned (wrapped) for out-of-range parameters.
var ErrParams = errors.New("simrank: invalid parameters")

// Options configures the iterative solver.
type Options struct {
	// Damping is SimRank's decay factor C. Default 0.6 (to match the
	// CoSimRank experiments).
	Damping float64
	// Iterations is the fixed-point iteration count. Default 20
	// (residual c^K < 4e-5).
	Iterations int
}

func (o Options) withDefaults() Options {
	if o.Damping == 0 {
		o.Damping = 0.6
	}
	if o.Iterations == 0 {
		o.Iterations = 20
	}
	return o
}

// Compute returns the SimRank matrix of g by the classic fixed-point
// iteration:
//
//	S(a, b) = C/(|I(a)||I(b)|) · Σ_{i∈I(a), j∈I(b)} S(i, j),  S(a, a) = 1,
//
// where I(x) is x's in-neighbour set; nodes with no in-neighbours have
// similarity 0 to everything but themselves. O(Iterations · n² · d̄²) —
// validation-scale only.
func Compute(g *graph.Graph, opts Options) (*dense.Mat, error) {
	opts = opts.withDefaults()
	if opts.Damping <= 0 || opts.Damping >= 1 {
		return nil, fmt.Errorf("simrank: damping %v not in (0, 1): %w", opts.Damping, ErrParams)
	}
	if opts.Iterations < 1 {
		return nil, fmt.Errorf("simrank: iterations %d < 1: %w", opts.Iterations, ErrParams)
	}
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("simrank: empty graph: %w", graph.ErrEmpty)
	}
	// In-neighbour lists (the reverse adjacency).
	rev := g.Reverse().Adj()
	in := make([][]int32, n)
	for a := 0; a < n; a++ {
		in[a] = rev.ColIdx[rev.RowPtr[a]:rev.RowPtr[a+1]]
	}
	s := dense.Eye(n)
	next := dense.NewMat(n, n)
	for k := 0; k < opts.Iterations; k++ {
		for i := range next.Data {
			next.Data[i] = 0
		}
		for a := 0; a < n; a++ {
			next.Set(a, a, 1)
			for b := a + 1; b < n; b++ {
				if len(in[a]) == 0 || len(in[b]) == 0 {
					continue
				}
				sum := 0.0
				for _, i := range in[a] {
					row := s.Row(int(i))
					for _, j := range in[b] {
						sum += row[j]
					}
				}
				v := opts.Damping * sum / float64(len(in[a])*len(in[b]))
				next.Set(a, b, v)
				next.Set(b, a, v)
			}
		}
		s, next = next, s
	}
	return s, nil
}

// ScaledCoSimRank solves Li et al.'s Eq. (4), S' = c·QᵀS'Q + (1−c)·I, by
// dense iteration — the quantity [4] treated as a SimRank approximation,
// which [13] identified as (1−c)× CoSimRank. Exposed so tests can verify
// that identity against this repository's CoSimRank solvers.
func ScaledCoSimRank(g *graph.Graph, c float64, iterations int) (*dense.Mat, error) {
	if c <= 0 || c >= 1 {
		return nil, fmt.Errorf("simrank: damping %v not in (0, 1): %w", c, ErrParams)
	}
	q, err := g.Transition()
	if err != nil {
		return nil, fmt.Errorf("simrank: %w", err)
	}
	qd := q.ToDense()
	s := dense.Eye(g.N()).Scale(1 - c)
	for k := 0; k < iterations; k++ {
		s = dense.Mul(dense.Mul(qd.T(), s), qd).Scale(c).AddEye(1 - c)
	}
	return s, nil
}

package simrank

import (
	"errors"
	"math"
	"testing"

	"csrplus/internal/baseline"
	"csrplus/internal/dense"
	"csrplus/internal/graph"
	"csrplus/internal/sparse"
)

// paperGraph is the 6-node graph of the paper's Figure 1.
func paperGraph(t testing.TB) *graph.Graph {
	t.Helper()
	edges := [][2]int{
		{3, 0}, {0, 1}, {2, 1}, {4, 1}, {3, 2},
		{0, 3}, {4, 3}, {5, 3}, {2, 4}, {5, 4}, {3, 5},
	}
	coo := sparse.NewCOO(6, 6)
	for _, e := range edges {
		if err := coo.Add(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	return graph.New(coo)
}

func TestSimRankBasics(t *testing.T) {
	g := paperGraph(t)
	s, err := Compute(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	for a := 0; a < n; a++ {
		if s.At(a, a) != 1 {
			t.Fatalf("S[%d][%d] = %v, want 1 (SimRank's base case)", a, a, s.At(a, a))
		}
		for b := 0; b < n; b++ {
			v := s.At(a, b)
			if v < 0 || v > 1+1e-12 {
				t.Fatalf("S[%d][%d] = %v out of [0, 1]", a, b, v)
			}
			if math.Abs(v-s.At(b, a)) > 1e-12 {
				t.Fatal("SimRank not symmetric")
			}
		}
	}
	// b and d share in-neighbours {a, e}: similarity must be positive.
	if s.At(1, 3) <= 0 {
		t.Fatalf("S[b][d] = %v", s.At(1, 3))
	}
}

// TestScaledCoSimRankIdentity verifies the pivotal claim of the paper's
// §2 ([13]'s result): the solution of Li et al.'s Eq. (4) equals
// (1−c) x the CoSimRank matrix of Eq. (1).
func TestScaledCoSimRankIdentity(t *testing.T) {
	g := paperGraph(t)
	c := 0.6
	sPrime, err := ScaledCoSimRank(g, c, 80)
	if err != nil {
		t.Fatal(err)
	}
	ex := baseline.NewExact(baseline.Config{Damping: c, Eps: 1e-10})
	if err := ex.Precompute(g); err != nil {
		t.Fatal(err)
	}
	all := []int{0, 1, 2, 3, 4, 5}
	coSim, err := ex.Query(all)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := (1 - c) * coSim.At(i, j)
			if math.Abs(sPrime.At(i, j)-want) > 1e-7 {
				t.Fatalf("S'[%d][%d] = %v, want (1-c)*CoSim = %v",
					i, j, sPrime.At(i, j), want)
			}
		}
	}
}

// TestScaledCoSimRankIsNotSimRank verifies the other half of §2: Eq. (4)
// does NOT solve the true SimRank equation — the entrywise max against I
// makes real SimRank differ off the diagonal too.
func TestScaledCoSimRankIsNotSimRank(t *testing.T) {
	g := paperGraph(t)
	c := 0.6
	sPrime, err := ScaledCoSimRank(g, c, 80)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Compute(g, Options{Damping: c, Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Diagonals already differ by construction; the substantive check is
	// an off-diagonal difference beyond numerical noise.
	maxOff := 0.0
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i == j {
				continue
			}
			if d := math.Abs(sPrime.At(i, j) - sim.At(i, j)); d > maxOff {
				maxOff = d
			}
		}
	}
	if maxOff < 1e-3 {
		t.Fatalf("scaled CoSimRank and SimRank agree off-diagonal to %g — they must differ", maxOff)
	}
}

func TestSimRankDanglingNodes(t *testing.T) {
	// A node with no in-neighbours is similar only to itself.
	coo := sparse.NewCOO(3, 3)
	if err := coo.Add(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	g := graph.New(coo)
	s, err := Compute(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0, 2) != 0 || s.At(2, 2) != 1 {
		t.Fatalf("dangling-node similarities wrong: %v / %v", s.At(0, 2), s.At(2, 2))
	}
}

func TestSimRankParamValidation(t *testing.T) {
	g := paperGraph(t)
	if _, err := Compute(g, Options{Damping: 1.5}); !errors.Is(err, ErrParams) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Compute(g, Options{Iterations: -1}); !errors.Is(err, ErrParams) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ScaledCoSimRank(g, 2, 10); !errors.Is(err, ErrParams) {
		t.Fatalf("err = %v", err)
	}
	empty := graph.New(sparse.NewCOO(0, 0))
	if _, err := Compute(empty, Options{}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestSimRankMonotoneConvergence(t *testing.T) {
	// SimRank scores increase monotonically with iteration count (the
	// classic lower-bound iteration).
	g, err := graph.ErdosRenyi(30, 150, 91)
	if err != nil {
		t.Fatal(err)
	}
	var prev *dense.Mat
	for _, k := range []int{2, 5, 10} {
		s, err := Compute(g, Options{Iterations: k})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			for i, v := range s.Data {
				if v < prev.Data[i]-1e-12 {
					t.Fatalf("score decreased between iterations at %d", i)
				}
			}
		}
		prev = s
	}
}

package graph

import (
	"strings"
	"testing"

	"csrplus/internal/sparse"
)

func buildGraph(t *testing.T, n int, edges [][2]int) *Graph {
	t.Helper()
	coo := sparse.NewCOO(n, n)
	for _, e := range edges {
		if err := coo.Add(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	return New(coo)
}

func TestReverse(t *testing.T) {
	g := buildGraph(t, 3, [][2]int{{0, 1}, {1, 2}})
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 1) || r.HasEdge(0, 1) {
		t.Fatal("Reverse wrong")
	}
	if r.M() != g.M() {
		t.Fatal("edge count changed")
	}
}

func TestWeakComponents(t *testing.T) {
	// Two components: {0,1,2} (via directed edges either way) and {3,4};
	// node 5 isolated.
	g := buildGraph(t, 6, [][2]int{{0, 1}, {2, 1}, {3, 4}})
	labels, count := g.WeakComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("component of 0,1,2 split: %v", labels)
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Fatalf("labels = %v", labels)
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Fatalf("isolated node merged: %v", labels)
	}
}

func TestWeakComponentsEmptyAndFull(t *testing.T) {
	g := buildGraph(t, 4, nil)
	if _, count := g.WeakComponents(); count != 4 {
		t.Fatalf("edgeless count = %d", count)
	}
	ring := buildGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if _, count := ring.WeakComponents(); count != 1 {
		t.Fatalf("ring count = %d", count)
	}
}

func TestStrongComponents(t *testing.T) {
	// Cycle {0,1,2} is one SCC; 3 hangs off it; {4,5} is a 2-cycle.
	g := buildGraph(t, 6, [][2]int{
		{0, 1}, {1, 2}, {2, 0},
		{2, 3},
		{4, 5}, {5, 4},
	})
	labels, count := g.StrongComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (labels %v)", count, labels)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("cycle split: %v", labels)
	}
	if labels[3] == labels[0] {
		t.Fatalf("tail merged into cycle: %v", labels)
	}
	if labels[4] != labels[5] {
		t.Fatalf("2-cycle split: %v", labels)
	}
	// Reverse topological order: 3 (sink) must be labelled before the
	// cycle that points at it.
	if labels[3] > labels[0] {
		t.Fatalf("condensation order wrong: %v", labels)
	}
}

func TestStrongComponentsDAG(t *testing.T) {
	// A DAG has n singleton SCCs.
	g := buildGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if _, count := g.StrongComponents(); count != 4 {
		t.Fatalf("DAG count = %d", count)
	}
}

func TestStrongComponentsDeepChain(t *testing.T) {
	// A 50k-node chain would overflow a recursive Tarjan's stack; the
	// iterative version must handle it.
	n := 50000
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n-1; i++ {
		if err := coo.Add(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	g := New(coo)
	if _, count := g.StrongComponents(); count != n {
		t.Fatalf("chain count = %d, want %d", count, n)
	}
}

func TestDegreeHistogram(t *testing.T) {
	// In-degrees: node1 <- 3 nodes, node2 <- 1 node, others 0.
	g := buildGraph(t, 5, [][2]int{{0, 1}, {2, 1}, {3, 1}, {0, 2}})
	h := g.InDegreeHistogram()
	if h.Max != 3 {
		t.Fatalf("Max = %d", h.Max)
	}
	if h.Zeros != 3 {
		t.Fatalf("Zeros = %d", h.Zeros)
	}
	// deg 1 -> bin 0, deg 3 -> bin 1.
	if h.Bins[0] != 1 || h.Bins[1] != 1 {
		t.Fatalf("Bins = %v", h.Bins)
	}
	if h.Mean != 4.0/5 {
		t.Fatalf("Mean = %v", h.Mean)
	}
}

func TestPowerLawishDistinguishesGenerators(t *testing.T) {
	rm, err := RMAT(12, 30000, DefaultRMAT, 9)
	if err != nil {
		t.Fatal(err)
	}
	er, err := ErdosRenyi(4096, 30000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !rm.InDegreeHistogram().PowerLawish(10) {
		t.Fatal("RMAT not heavy-tailed")
	}
	if er.InDegreeHistogram().PowerLawish(10) {
		t.Fatal("ER looks heavy-tailed")
	}
}

func TestOutDegreeHistogram(t *testing.T) {
	g := buildGraph(t, 3, [][2]int{{0, 1}, {0, 2}})
	h := g.OutDegreeHistogram()
	if h.Max != 2 || h.Zeros != 2 {
		t.Fatalf("hist = %+v", h)
	}
}

func TestTopHubs(t *testing.T) {
	g := buildGraph(t, 5, [][2]int{{0, 1}, {2, 1}, {3, 1}, {0, 2}, {3, 2}, {4, 0}})
	hubs := g.TopHubs(2)
	if len(hubs) != 2 || hubs[0] != 1 || hubs[1] != 2 {
		t.Fatalf("hubs = %v", hubs)
	}
	if got := g.TopHubs(100); len(got) != 5 {
		t.Fatalf("clamp failed: %v", got)
	}
}

func TestDescribe(t *testing.T) {
	g := buildGraph(t, 3, [][2]int{{0, 1}})
	d := g.Describe()
	for _, want := range []string{"n=3", "m=1", "wcc=2"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe() = %q missing %q", d, want)
		}
	}
}

func TestSubgraph(t *testing.T) {
	g := buildGraph(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	sub, mapping, err := g.Subgraph([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("n=%d m=%d", sub.N(), sub.M())
	}
	// Edges 1->2, 2->3 survive as 0->1, 1->2.
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(2, 0) {
		t.Fatal("subgraph edges wrong")
	}
	if mapping[0] != 1 || mapping[2] != 3 {
		t.Fatalf("mapping = %v", mapping)
	}
}

func TestSubgraphErrors(t *testing.T) {
	g := buildGraph(t, 3, [][2]int{{0, 1}})
	if _, _, err := g.Subgraph([]int{0, 5}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, _, err := g.Subgraph([]int{0, 0}); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func TestLargestWCC(t *testing.T) {
	// Components {0,1,2} and {3,4}; isolated 5.
	g := buildGraph(t, 6, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	sub, mapping, err := g.LargestWCC()
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 {
		t.Fatalf("largest WCC n=%d", sub.N())
	}
	want := []int{0, 1, 2}
	for i, u := range want {
		if mapping[i] != u {
			t.Fatalf("mapping = %v", mapping)
		}
	}
}

func TestLargestWCCEmpty(t *testing.T) {
	g := New(sparse.NewCOO(0, 0))
	if _, _, err := g.LargestWCC(); err == nil {
		t.Fatal("empty graph accepted")
	}
}

package graph

import (
	"fmt"
	"math"
	"sort"
)

// Dataset describes one of the paper's six evaluation graphs (Table in
// §4.1) together with the synthetic generator that stands in for it in
// this offline reproduction. PaperN/PaperM record the original SNAP sizes;
// the generator produces a graph of n = PaperN/Scale nodes and
// m ≈ PaperM/Scale edges with the original's direction and degree skew.
type Dataset struct {
	Key         string  // short name used throughout the paper: FB, P2P, …
	Description string  // the paper's description column
	PaperN      int64   // nodes in the original SNAP dataset
	PaperM      int64   // edges in the original SNAP dataset
	Scale       int64   // default downscale factor for this machine
	Kind        GenKind // generator family
	Seed        int64   // fixed seed for reproducibility
}

// GenKind selects the generator family for a dataset stand-in.
type GenKind int

const (
	// GenBA is Barabási–Albert preferential attachment (symmetric social).
	GenBA GenKind = iota
	// GenER is a uniform random directed graph.
	GenER
	// GenRMAT is the recursive power-law generator.
	GenRMAT
)

// Datasets lists the paper's six graphs in its Table order. Scales are
// chosen so the whole evaluation suite runs on a 1-core/15 GB machine
// (see DESIGN.md §5); FB and P2P are full size.
var Datasets = []Dataset{
	{Key: "FB", Description: "Social friendship from ego-Facebook", PaperN: 4039, PaperM: 88234, Scale: 1, Kind: GenBA, Seed: 101},
	{Key: "P2P", Description: "Gnutella peer-to-peer network", PaperN: 22687, PaperM: 54705, Scale: 1, Kind: GenER, Seed: 102},
	{Key: "YT", Description: "Youtube social network communities", PaperN: 1134890, PaperM: 5975248, Scale: 20, Kind: GenRMAT, Seed: 103},
	{Key: "WT", Description: "Wikipedia talk (communication) graph", PaperN: 2394385, PaperM: 5021410, Scale: 20, Kind: GenRMAT, Seed: 104},
	{Key: "TW", Description: "Twitter user-follower network", PaperN: 41652230, PaperM: 1468365182, Scale: 400, Kind: GenRMAT, Seed: 105},
	{Key: "WB", Description: "A graph obtained by a Webbase crawler", PaperN: 118142155, PaperM: 1019903190, Scale: 400, Kind: GenRMAT, Seed: 106},
}

// DatasetByKey returns the named dataset descriptor.
func DatasetByKey(key string) (Dataset, error) {
	for _, d := range Datasets {
		if d.Key == key {
			return d, nil
		}
	}
	known := make([]string, len(Datasets))
	for i, d := range Datasets {
		known[i] = d.Key
	}
	sort.Strings(known)
	return Dataset{}, fmt.Errorf("graph: unknown dataset %q (known: %v)", key, known)
}

// TargetN returns the scaled node count the generator aims for.
func (d Dataset) TargetN() int { return int(d.PaperN / d.Scale) }

// TargetM returns the scaled edge count the generator aims for.
func (d Dataset) TargetM() int64 { return d.PaperM / d.Scale }

// Generate builds the synthetic stand-in graph at the dataset's default
// scale. The result is deterministic for a given descriptor.
func (d Dataset) Generate() (*Graph, error) {
	return d.GenerateScaled(d.Scale)
}

// GenerateScaled builds the stand-in at an explicit downscale factor
// (1 = the original size — only attempt that for FB/P2P on this machine).
func (d Dataset) GenerateScaled(scale int64) (*Graph, error) {
	if scale < 1 {
		return nil, fmt.Errorf("graph: dataset %s: scale %d < 1", d.Key, scale)
	}
	n := int(d.PaperN / scale)
	m := d.PaperM / scale
	switch d.Kind {
	case GenBA:
		// Undirected BA emits ~2*n*k directed edges; pick k to match m.
		k := int(math.Round(float64(m) / (2 * float64(n))))
		if k < 1 {
			k = 1
		}
		return BarabasiAlbert(n, k, d.Seed)
	case GenER:
		return ErdosRenyi(n, m, d.Seed)
	case GenRMAT:
		// Round node count up to the next power of two (R-MAT's domain).
		sc := bitsFor(n)
		return RMAT(sc, m, DefaultRMAT, d.Seed)
	default:
		return nil, fmt.Errorf("graph: dataset %s: unknown generator kind %d", d.Key, int(d.Kind))
	}
}

// bitsFor returns ceil(log2(n)) clamped to at least 1.
func bitsFor(n int) int {
	s := 1
	for (1 << s) < n {
		s++
	}
	return s
}

package graph

import (
	"fmt"
	"math/rand"

	"csrplus/internal/sparse"
)

// ErdosRenyi generates a directed G(n, m) graph: m distinct directed edges
// drawn uniformly at random without self-loops. Deterministic for a seed.
// This is the P2P (Gnutella) stand-in: peer-to-peer overlays are close to
// uniform random graphs.
func ErdosRenyi(n int, m int64, seed int64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: ErdosRenyi needs n >= 2, got %d", n)
	}
	maxEdges := int64(n) * int64(n-1)
	if m < 0 || m > maxEdges {
		return nil, fmt.Errorf("graph: ErdosRenyi m=%d out of range [0, %d]", m, maxEdges)
	}
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(n, n)
	coo.Grow(int(m))
	seen := make(map[int64]bool, m)
	for int64(len(seen)) < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		key := int64(u)*int64(n) + int64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		if err := coo.Add(u, v, 1); err != nil {
			return nil, fmt.Errorf("graph: ErdosRenyi: %w", err)
		}
	}
	return New(coo), nil
}

// BarabasiAlbert generates an undirected preferential-attachment graph
// with n nodes, each new node attaching k edges, stored as a symmetric
// directed graph (both directions per undirected edge). This is the FB
// (ego-Facebook) stand-in: social friendship graphs are heavy-tailed and
// symmetric.
func BarabasiAlbert(n, k int, seed int64) (*Graph, error) {
	if n < 2 || k < 1 || k >= n {
		return nil, fmt.Errorf("graph: BarabasiAlbert invalid n=%d k=%d", n, k)
	}
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(n, n)
	coo.Grow(2 * n * k)
	// Repeated-nodes list: each endpoint append biases later draws toward
	// high-degree nodes (the standard BA sampling trick).
	targets := make([]int, 0, 2*n*k)
	// Seed clique over the first k+1 nodes.
	for u := 0; u <= k; u++ {
		for v := 0; v <= k; v++ {
			if u == v {
				continue
			}
			if err := coo.Add(u, v, 1); err != nil {
				return nil, fmt.Errorf("graph: BarabasiAlbert: %w", err)
			}
		}
		for t := 0; t < k; t++ {
			targets = append(targets, u)
		}
	}
	for u := k + 1; u < n; u++ {
		// Attachment targets kept in draw order so the generator is
		// deterministic (map iteration order would not be).
		attached := make([]int, 0, k)
		isAttached := map[int]bool{}
		for len(attached) < k {
			v := targets[rng.Intn(len(targets))]
			if v == u || isAttached[v] {
				continue
			}
			isAttached[v] = true
			attached = append(attached, v)
		}
		for _, v := range attached {
			if err := coo.Add(u, v, 1); err != nil {
				return nil, fmt.Errorf("graph: BarabasiAlbert: %w", err)
			}
			if err := coo.Add(v, u, 1); err != nil {
				return nil, fmt.Errorf("graph: BarabasiAlbert: %w", err)
			}
			targets = append(targets, u, v)
		}
	}
	return New(coo), nil
}

// WattsStrogatz generates a small-world ring lattice with n nodes, k
// neighbours per side, and rewiring probability beta, symmetrised into a
// directed graph. Offered for workloads that need high clustering.
func WattsStrogatz(n, k int, beta float64, seed int64) (*Graph, error) {
	if n < 4 || k < 1 || 2*k >= n || beta < 0 || beta > 1 {
		return nil, fmt.Errorf("graph: WattsStrogatz invalid n=%d k=%d beta=%v", n, k, beta)
	}
	rng := rand.New(rand.NewSource(seed))
	type edge struct{ u, v int }
	norm := func(u, v int) edge {
		if u > v {
			u, v = v, u
		}
		return edge{u, v}
	}
	// Lattice edges in a slice (deterministic order); the set mirrors it
	// for O(1) duplicate checks during rewiring.
	lattice := make([]edge, 0, n*k)
	present := make(map[edge]bool, n*k)
	for u := 0; u < n; u++ {
		for d := 1; d <= k; d++ {
			e := norm(u, (u+d)%n)
			if !present[e] {
				present[e] = true
				lattice = append(lattice, e)
			}
		}
	}
	// Rewire each lattice edge with probability beta.
	final := make([]edge, 0, len(lattice))
	for _, e := range lattice {
		if rng.Float64() >= beta {
			final = append(final, e)
			continue
		}
		delete(present, e)
		for {
			w := rng.Intn(n)
			ne := norm(e.u, w)
			if w == e.u || present[ne] {
				continue
			}
			present[ne] = true
			final = append(final, ne)
			break
		}
	}
	coo := sparse.NewCOO(n, n)
	coo.Grow(2 * len(final))
	for _, e := range final {
		if err := coo.Add(e.u, e.v, 1); err != nil {
			return nil, fmt.Errorf("graph: WattsStrogatz: %w", err)
		}
		if err := coo.Add(e.v, e.u, 1); err != nil {
			return nil, fmt.Errorf("graph: WattsStrogatz: %w", err)
		}
	}
	return New(coo), nil
}

// RMATParams are the quadrant probabilities of the recursive matrix
// generator (Chakrabarti, Zhan & Faloutsos 2004). They must be positive
// and sum to ~1.
type RMATParams struct {
	A, B, C, D float64
}

// DefaultRMAT matches the common (0.57, 0.19, 0.19, 0.05) skew used for
// power-law social/web graphs.
var DefaultRMAT = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

// RMAT generates a directed power-law graph with 2^scale nodes and ~m
// distinct edges by recursive quadrant descent. Duplicate edges are
// collapsed (so the final count can land slightly under m; the generator
// compensates with bounded oversampling). Self-loops are dropped. This is
// the stand-in for YT, WT, TW and WB: heavy-tailed degree skew with tunable
// density.
func RMAT(scale int, m int64, p RMATParams, seed int64) (*Graph, error) {
	if scale < 1 || scale > 30 {
		return nil, fmt.Errorf("graph: RMAT scale %d out of range [1, 30]", scale)
	}
	sum := p.A + p.B + p.C + p.D
	if p.A <= 0 || p.B <= 0 || p.C <= 0 || p.D <= 0 || sum < 0.99 || sum > 1.01 {
		return nil, fmt.Errorf("graph: RMAT params %+v invalid (need positive, sum ~1)", p)
	}
	n := 1 << scale
	if m < 0 || m > int64(n)*int64(n-1)/2 {
		return nil, fmt.Errorf("graph: RMAT m=%d out of range for n=%d", m, n)
	}
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(n, n)
	coo.Grow(int(m))
	seen := make(map[int64]bool, m)
	// Bounded oversampling: R-MAT's quadrant skew makes duplicates common;
	// cap attempts so adversarial parameters cannot loop forever.
	attempts := int64(0)
	maxAttempts := 20 * m
	ab := p.A + p.B
	abc := ab + p.C
	for int64(len(seen)) < m && attempts < maxAttempts {
		attempts++
		u, v := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64() * sum
			switch {
			case r < p.A:
				// top-left: no bits set
			case r < ab:
				v |= 1 << bit
			case r < abc:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		key := int64(u)*int64(n) + int64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		if err := coo.Add(u, v, 1); err != nil {
			return nil, fmt.Errorf("graph: RMAT: %w", err)
		}
	}
	return New(coo), nil
}

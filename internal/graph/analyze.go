package graph

// analyze.go provides the structural analytics used to characterise the
// synthetic dataset stand-ins against the originals' published shapes
// (degree skew, connectivity) — the evidence behind DESIGN.md §5's claim
// that the substitution preserves the behaviour the experiments depend on.

import (
	"fmt"
	"math"
	"sort"

	"csrplus/internal/sparse"
)

// Reverse returns the graph with every edge flipped. CoSimRank propagates
// along in-edges; the reverse view turns out-link analyses into in-link
// ones without touching the algorithms.
func (g *Graph) Reverse() *Graph {
	return &Graph{adj: g.adj.Transpose()}
}

// WeakComponents labels every node with a weakly-connected component id
// (0-based, in order of discovery) and returns the labels plus component
// count. Runs one union-find pass over the edges.
func (g *Graph) WeakComponents() (labels []int, count int) {
	n := g.N()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for u := 0; u < n; u++ {
		for p := g.adj.RowPtr[u]; p < g.adj.RowPtr[u+1]; p++ {
			union(u, int(g.adj.ColIdx[p]))
		}
	}
	labels = make([]int, n)
	next := 0
	seen := make(map[int]int)
	for i := 0; i < n; i++ {
		root := find(i)
		id, ok := seen[root]
		if !ok {
			id = next
			seen[root] = id
			next++
		}
		labels[i] = id
	}
	return labels, next
}

// StrongComponents labels every node with a strongly-connected component
// id using Tarjan's algorithm (iterative, so million-node graphs do not
// blow the goroutine stack). Ids are 0-based in reverse topological order
// of the condensation.
func (g *Graph) StrongComponents() (labels []int, count int) {
	n := g.N()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	labels = make([]int, n)
	for i := range index {
		index[i] = unvisited
		labels[i] = unvisited
	}
	var stack []int
	next := 0
	// Explicit DFS frames: node plus the adjacency cursor.
	type frame struct {
		node int
		ptr  int64
	}
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames := []frame{{start, g.adj.RowPtr[start]}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			u := f.node
			if f.ptr < g.adj.RowPtr[u+1] {
				v := int(g.adj.ColIdx[f.ptr])
				f.ptr++
				if index[v] == unvisited {
					index[v] = next
					low[v] = next
					next++
					stack = append(stack, v)
					onStack[v] = true
					frames = append(frames, frame{v, g.adj.RowPtr[v]})
				} else if onStack[v] && index[v] < low[u] {
					low[u] = index[v]
				}
				continue
			}
			// u is finished.
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if low[u] < low[parent] {
					low[parent] = low[u]
				}
			}
			if low[u] == index[u] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					labels[w] = count
					if w == u {
						break
					}
				}
				count++
			}
		}
	}
	return labels, count
}

// DegreeHistogram buckets a degree sequence into power-of-two bins:
// bin k counts nodes with degree in [2^k, 2^(k+1)). Bin 0 also holds
// degree-0 nodes (reported separately in Zeros).
type DegreeHistogram struct {
	Bins  []int64
	Zeros int64
	Max   int
	Mean  float64
}

// InDegreeHistogram summarises the in-degree distribution.
func (g *Graph) InDegreeHistogram() DegreeHistogram {
	return histogram(g.InDegrees())
}

// OutDegreeHistogram summarises the out-degree distribution.
func (g *Graph) OutDegreeHistogram() DegreeHistogram {
	n := g.N()
	deg := make([]int, n)
	for u := 0; u < n; u++ {
		deg[u] = g.OutDegree(u)
	}
	return histogram(deg)
}

func histogram(deg []int) DegreeHistogram {
	h := DegreeHistogram{}
	var sum int64
	for _, d := range deg {
		sum += int64(d)
		if d == 0 {
			h.Zeros++
			continue
		}
		if d > h.Max {
			h.Max = d
		}
		bin := int(math.Log2(float64(d)))
		for len(h.Bins) <= bin {
			h.Bins = append(h.Bins, 0)
		}
		h.Bins[bin]++
	}
	if len(deg) > 0 {
		h.Mean = float64(sum) / float64(len(deg))
	}
	return h
}

// PowerLawish reports whether the distribution looks heavy-tailed: the
// max degree is at least `factor` times the mean. The R-MAT stand-ins for
// the paper's social/web graphs must satisfy this; ER stand-ins must not
// (with a large factor).
func (h DegreeHistogram) PowerLawish(factor float64) bool {
	return h.Mean > 0 && float64(h.Max) >= factor*h.Mean
}

// TopHubs returns the k nodes with the highest in-degree, descending —
// a quick structural fingerprint used in the dataset characterisation and
// handy for picking high-traffic query nodes in experiments.
func (g *Graph) TopHubs(k int) []int {
	type hub struct{ node, deg int }
	in := g.InDegrees()
	hubs := make([]hub, len(in))
	for i, d := range in {
		hubs[i] = hub{i, d}
	}
	sort.Slice(hubs, func(a, b int) bool {
		if hubs[a].deg != hubs[b].deg {
			return hubs[a].deg > hubs[b].deg
		}
		return hubs[a].node < hubs[b].node
	})
	if k > len(hubs) {
		k = len(hubs)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = hubs[i].node
	}
	return out
}

// Subgraph returns the induced subgraph over the given nodes, relabelled
// 0..len(nodes)-1 in the given order, plus the mapping from new id to old.
// Duplicate or out-of-range ids are rejected.
func (g *Graph) Subgraph(nodes []int) (*Graph, []int, error) {
	n := g.N()
	newID := make(map[int]int, len(nodes))
	for i, u := range nodes {
		if u < 0 || u >= n {
			return nil, nil, fmt.Errorf("graph: Subgraph: node %d not in [0, %d)", u, n)
		}
		if _, dup := newID[u]; dup {
			return nil, nil, fmt.Errorf("graph: Subgraph: duplicate node %d", u)
		}
		newID[u] = i
	}
	coo := sparse.NewCOO(len(nodes), len(nodes))
	for i, u := range nodes {
		for p := g.adj.RowPtr[u]; p < g.adj.RowPtr[u+1]; p++ {
			if j, ok := newID[int(g.adj.ColIdx[p])]; ok {
				if err := coo.Add(i, j, 1); err != nil {
					return nil, nil, fmt.Errorf("graph: Subgraph: %w", err)
				}
			}
		}
	}
	return New(coo), append([]int(nil), nodes...), nil
}

// LargestWCC returns the induced subgraph of the largest weakly-connected
// component and the new-id -> old-id mapping. Similarity experiments often
// restrict to it so every query has a nonzero neighbourhood.
func (g *Graph) LargestWCC() (*Graph, []int, error) {
	labels, count := g.WeakComponents()
	if count == 0 {
		return nil, nil, fmt.Errorf("graph: LargestWCC: %w", ErrEmpty)
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for l, s := range sizes {
		if s > sizes[best] {
			best = l
		}
	}
	var nodes []int
	for u, l := range labels {
		if l == best {
			nodes = append(nodes, u)
		}
	}
	return g.Subgraph(nodes)
}

// Describe renders a one-line structural summary (the dataset table row).
func (g *Graph) Describe() string {
	s := g.ComputeStats()
	_, wcc := g.WeakComponents()
	return fmt.Sprintf("n=%d m=%d m/n=%.1f max-in=%d max-out=%d zero-in=%d wcc=%d",
		s.N, s.M, s.AvgDegree, s.MaxInDeg, s.MaxOutDeg, s.ZeroInDeg, wcc)
}

package graph

import (
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"csrplus/internal/sparse"
)

// paperGraph builds the 6-node Wiki-Talk graph of the paper's Figure 1 /
// Example 3.6 (nodes a..f = 0..5).
func paperGraph(t *testing.T) *Graph {
	t.Helper()
	edges := [][2]int{
		{3, 0},                 // d->a
		{0, 1}, {2, 1}, {4, 1}, // a,c,e -> b
		{3, 2},                 // d->c
		{0, 3}, {4, 3}, {5, 3}, // a,e,f -> d
		{2, 4}, {5, 4}, // c,f -> e
		{3, 5}, // d->f
	}
	coo := sparse.NewCOO(6, 6)
	for _, e := range edges {
		if err := coo.Add(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	return New(coo)
}

func TestGraphBasics(t *testing.T) {
	g := paperGraph(t)
	if g.N() != 6 || g.M() != 11 {
		t.Fatalf("N=%d M=%d, want 6, 11", g.N(), g.M())
	}
	if !g.HasEdge(3, 0) || g.HasEdge(0, 5) {
		t.Fatal("HasEdge wrong")
	}
	if g.OutDegree(3) != 3 {
		t.Fatalf("OutDegree(d) = %d, want 3", g.OutDegree(3))
	}
	in := g.InDegrees()
	want := []int{1, 3, 1, 3, 2, 1}
	for i, d := range want {
		if in[i] != d {
			t.Fatalf("InDegrees = %v, want %v", in, want)
		}
	}
}

func TestTransitionMatchesPaper(t *testing.T) {
	// The Q matrix printed in Example 3.6.
	g := paperGraph(t)
	q, err := g.Transition()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{
		{0, 1.0 / 3, 0, 1.0 / 3, 0, 0},
		{0, 0, 0, 0, 0, 0},
		{0, 1.0 / 3, 0, 0, 0.5, 0},
		{1, 0, 1, 0, 0, 1},
		{0, 1.0 / 3, 0, 1.0 / 3, 0, 0},
		{0, 0, 0, 1.0 / 3, 0.5, 0},
	}
	for i := range want {
		for j := range want[i] {
			if math.Abs(q.At(i, j)-want[i][j]) > 1e-15 {
				t.Fatalf("Q[%d][%d] = %v, want %v", i, j, q.At(i, j), want[i][j])
			}
		}
	}
	// Columns with in-edges must sum to 1.
	for j, s := range q.ColSums() {
		if s != 0 && math.Abs(s-1) > 1e-12 {
			t.Fatalf("column %d sums to %v", j, s)
		}
	}
}

func TestTransitionEmptyGraph(t *testing.T) {
	g := New(sparse.NewCOO(0, 0))
	if _, err := g.Transition(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestFromCSRRejectsNonSquare(t *testing.T) {
	if _, err := FromCSR(sparse.NewCOO(2, 3).ToCSR()); err == nil {
		t.Fatal("non-square adjacency accepted")
	}
}

func TestParallelEdgesCollapse(t *testing.T) {
	coo := sparse.NewCOO(2, 2)
	for i := 0; i < 3; i++ {
		if err := coo.Add(0, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	g := New(coo)
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 (parallel edges collapsed)", g.M())
	}
	q, err := g.Transition()
	if err != nil {
		t.Fatal(err)
	}
	if q.At(0, 1) != 1 {
		t.Fatalf("Q[0][1] = %v, want 1", q.At(0, 1))
	}
}

func TestComputeStats(t *testing.T) {
	g := paperGraph(t)
	s := g.ComputeStats()
	if s.N != 6 || s.M != 11 || s.MaxInDeg != 3 || s.MaxOutDeg != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ZeroOutDeg != 1 { // node b has no out-edges
		t.Fatalf("ZeroOutDeg = %d, want 1", s.ZeroOutDeg)
	}
	if s.ZeroInDeg != 0 {
		t.Fatalf("ZeroInDeg = %d, want 0", s.ZeroInDeg)
	}
	if math.Abs(s.AvgDegree-11.0/6) > 1e-12 {
		t.Fatalf("AvgDegree = %v", s.AvgDegree)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := paperGraph(t)
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path, 6)
	if err != nil {
		t.Fatal(err)
	}
	if back.M() != g.M() {
		t.Fatalf("round trip M %d -> %d", g.M(), back.M())
	}
	for u := 0; u < 6; u++ {
		for v := 0; v < 6; v++ {
			if g.HasEdge(u, v) != back.HasEdge(u, v) {
				t.Fatalf("edge (%d,%d) mismatch after round trip", u, v)
			}
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.txt"), 3); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestReadMalformed(t *testing.T) {
	if _, err := Read(strings.NewReader("0 potato\n"), 3); !errors.Is(err, sparse.ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestReadRejectsHostileInput(t *testing.T) {
	// Truncated records (a crash mid-write leaves a partial last line).
	for _, in := range []string{"0 1\n2\n", "0 1\n2 ", "0\n"} {
		if _, err := Read(strings.NewReader(in), 3); !errors.Is(err, sparse.ErrMalformed) {
			t.Fatalf("Read(%q) = %v, want ErrMalformed", in, err)
		}
	}
	// Out-of-range node ids are typed, not silently clamped or dropped.
	for _, in := range []string{"0 3\n", "3 0\n", "-1 0\n"} {
		if _, err := Read(strings.NewReader(in), 3); !errors.Is(err, sparse.ErrIndex) {
			t.Fatalf("Read(%q) = %v, want ErrIndex", in, err)
		}
	}
}

func TestReadWeightedRejectsHostileInput(t *testing.T) {
	for _, in := range []string{"0 1\n", "0 1 2.5\n1 2\n"} {
		if _, err := ReadWeighted(strings.NewReader(in), 3); !errors.Is(err, sparse.ErrMalformed) {
			t.Fatalf("ReadWeighted(%q) = %v, want ErrMalformed", in, err)
		}
	}
	if _, err := ReadWeighted(strings.NewReader("0 3 1.0\n"), 3); !errors.Is(err, sparse.ErrIndex) {
		t.Fatalf("out-of-range id: %v, want ErrIndex", err)
	}
	// Weights without a random-surfer reading: NaN, ±Inf, zero, negative.
	for _, in := range []string{"0 1 NaN\n", "0 1 Inf\n", "0 1 -Inf\n", "0 1 0\n", "0 1 -2\n", "0 1 x\n"} {
		if _, err := ReadWeighted(strings.NewReader(in), 3); !errors.Is(err, sparse.ErrMalformed) {
			t.Fatalf("ReadWeighted(%q) = %v, want ErrMalformed", in, err)
		}
	}
}

func TestNewWeightedRejectsNonFiniteSums(t *testing.T) {
	// The reader blocks literal NaN/Inf, but programmatic COO input (and
	// duplicate sums that overflow) must be caught by NewWeighted itself.
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -1} {
		coo := sparse.NewCOO(2, 2)
		if err := coo.Add(0, 1, w); err != nil {
			t.Fatal(err)
		}
		if _, err := NewWeighted(coo); !errors.Is(err, ErrBadWeight) {
			t.Fatalf("NewWeighted(weight %v) = %v, want ErrBadWeight", w, err)
		}
	}
	// Duplicates summing past the float range land on +Inf.
	coo := sparse.NewCOO(2, 2)
	for i := 0; i < 2; i++ {
		if err := coo.Add(0, 1, math.MaxFloat64); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := NewWeighted(coo); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("overflowing duplicate sum: %v, want ErrBadWeight", err)
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(100, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 || g.M() != 500 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	// No self loops.
	for u := 0; u < 100; u++ {
		if g.HasEdge(u, u) {
			t.Fatalf("self loop at %d", u)
		}
	}
	// Determinism.
	g2, err := ErdosRenyi(100, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() || !g2.Adj().ToDense().Equal(g.Adj().ToDense(), 0) {
		t.Fatal("ErdosRenyi not deterministic")
	}
}

func TestErdosRenyiErrors(t *testing.T) {
	if _, err := ErdosRenyi(1, 0, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := ErdosRenyi(3, 7, 1); err == nil {
		t.Fatal("m > n(n-1) accepted")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g, err := BarabasiAlbert(200, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 200 {
		t.Fatalf("N = %d", g.N())
	}
	// Symmetric by construction.
	for u := 0; u < g.N(); u++ {
		adj := g.Adj()
		for p := adj.RowPtr[u]; p < adj.RowPtr[u+1]; p++ {
			v := int(adj.ColIdx[p])
			if !g.HasEdge(v, u) {
				t.Fatalf("edge (%d,%d) not symmetric", u, v)
			}
		}
	}
	// Heavy tail: max degree far above the attachment constant.
	if s := g.ComputeStats(); s.MaxOutDeg < 10 {
		t.Fatalf("BA max degree %d suspiciously small", s.MaxOutDeg)
	}
	// Determinism.
	g2, _ := BarabasiAlbert(200, 3, 2)
	if !g2.Adj().ToDense().Equal(g.Adj().ToDense(), 0) {
		t.Fatal("BarabasiAlbert not deterministic")
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	for _, c := range [][2]int{{1, 1}, {5, 0}, {5, 5}} {
		if _, err := BarabasiAlbert(c[0], c[1], 1); err == nil {
			t.Fatalf("BA(%d, %d) accepted", c[0], c[1])
		}
	}
}

func TestWattsStrogatz(t *testing.T) {
	g, err := WattsStrogatz(100, 3, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() != 600 { // n*k undirected edges, doubled
		t.Fatalf("M = %d, want 600", g.M())
	}
	g2, _ := WattsStrogatz(100, 3, 0.1, 3)
	if !g2.Adj().ToDense().Equal(g.Adj().ToDense(), 0) {
		t.Fatal("WattsStrogatz not deterministic")
	}
}

func TestWattsStrogatzErrors(t *testing.T) {
	if _, err := WattsStrogatz(4, 2, 0.1, 1); err == nil {
		t.Fatal("2k >= n accepted")
	}
	if _, err := WattsStrogatz(10, 2, 1.5, 1); err == nil {
		t.Fatal("beta > 1 accepted")
	}
}

func TestRMAT(t *testing.T) {
	g, err := RMAT(10, 5000, DefaultRMAT, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1024 {
		t.Fatalf("N = %d, want 1024", g.N())
	}
	if g.M() < 4500 || g.M() > 5000 {
		t.Fatalf("M = %d, want ~5000", g.M())
	}
	// Power-law-ish: the max degree should dwarf the average.
	s := g.ComputeStats()
	if float64(s.MaxInDeg) < 5*s.AvgDegree {
		t.Fatalf("RMAT skew too weak: max in-degree %d, avg %v", s.MaxInDeg, s.AvgDegree)
	}
	g2, _ := RMAT(10, 5000, DefaultRMAT, 4)
	if !g2.Adj().ToDense().Equal(g.Adj().ToDense(), 0) {
		t.Fatal("RMAT not deterministic")
	}
}

func TestRMATErrors(t *testing.T) {
	if _, err := RMAT(0, 10, DefaultRMAT, 1); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if _, err := RMAT(35, 10, DefaultRMAT, 1); err == nil {
		t.Fatal("scale 35 accepted")
	}
	if _, err := RMAT(5, 10, RMATParams{A: 1, B: 1, C: 1, D: 1}, 1); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestDatasetByKey(t *testing.T) {
	d, err := DatasetByKey("FB")
	if err != nil {
		t.Fatal(err)
	}
	if d.PaperN != 4039 || d.PaperM != 88234 {
		t.Fatalf("FB descriptor = %+v", d)
	}
	if _, err := DatasetByKey("NOPE"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestDatasetGenerateSmall(t *testing.T) {
	// Generate every dataset at an aggressive extra downscale so the test
	// stays fast, checking each lands near its target shape.
	for _, d := range Datasets {
		scale := d.Scale * 8
		if d.Key == "FB" || d.Key == "P2P" {
			scale = 4
		}
		g, err := d.GenerateScaled(scale)
		if err != nil {
			t.Fatalf("%s: %v", d.Key, err)
		}
		wantN := int(d.PaperN / scale)
		if d.Kind == GenRMAT {
			// R-MAT rounds up to a power of two.
			if g.N() < wantN {
				t.Fatalf("%s: N = %d < target %d", d.Key, g.N(), wantN)
			}
		} else if g.N() != wantN {
			t.Fatalf("%s: N = %d, want %d", d.Key, g.N(), wantN)
		}
		wantM := d.PaperM / scale
		if g.M() < wantM/2 || g.M() > wantM*2+int64(4*g.N()) {
			t.Fatalf("%s: M = %d, target %d", d.Key, g.M(), wantM)
		}
	}
}

func TestDatasetScaleError(t *testing.T) {
	d, _ := DatasetByKey("FB")
	if _, err := d.GenerateScaled(0); err == nil {
		t.Fatal("scale 0 accepted")
	}
}

func TestNewWeighted(t *testing.T) {
	coo := sparse.NewCOO(3, 3)
	// Node 2's in-neighbours: 0 with weight 3, 1 with weight 1.
	for _, e := range []sparse.Triple{{Row: 0, Col: 2, Val: 3}, {Row: 1, Col: 2, Val: 1}} {
		if err := coo.Add(e.Row, e.Col, e.Val); err != nil {
			t.Fatal(err)
		}
	}
	g, err := NewWeighted(coo)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("Weighted() = false")
	}
	q, err := g.Transition()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.At(0, 2)-0.75) > 1e-15 || math.Abs(q.At(1, 2)-0.25) > 1e-15 {
		t.Fatalf("weighted column = %v, %v", q.At(0, 2), q.At(1, 2))
	}
}

func TestNewWeightedDuplicatesSum(t *testing.T) {
	coo := sparse.NewCOO(2, 2)
	for i := 0; i < 2; i++ {
		if err := coo.Add(0, 1, 1.5); err != nil {
			t.Fatal(err)
		}
	}
	g, err := NewWeighted(coo)
	if err != nil {
		t.Fatal(err)
	}
	if g.Adj().At(0, 1) != 3 {
		t.Fatalf("weight = %v, want 3 (summed)", g.Adj().At(0, 1))
	}
}

func TestNewWeightedRejectsNonPositive(t *testing.T) {
	coo := sparse.NewCOO(2, 2)
	if err := coo.Add(0, 1, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWeighted(coo); err == nil {
		t.Fatal("negative weight accepted")
	}
	coo2 := sparse.NewCOO(2, 2)
	if err := coo2.Add(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := coo2.Add(0, 1, -2); err != nil { // sums to zero
		t.Fatal(err)
	}
	if _, err := NewWeighted(coo2); err == nil {
		t.Fatal("zero accumulated weight accepted")
	}
}

func TestUnweightedTransitionUnchanged(t *testing.T) {
	// The ColSums-based normalisation must coincide with 1/indeg on
	// unweighted graphs.
	g := paperGraph(t)
	if g.Weighted() {
		t.Fatal("paper graph reported weighted")
	}
	q, err := g.Transition()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.At(0, 1)-1.0/3) > 1e-15 {
		t.Fatalf("Q[0][1] = %v", q.At(0, 1))
	}
}

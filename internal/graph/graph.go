// Package graph provides the graph substrate of the CSR+ reproduction:
// a directed-graph type backed by the sparse package's COO/CSR storage
// (mirroring the paper's §4.1 "Graph Storage"), SNAP-style edge-list I/O,
// degree statistics, synthetic generators, and descriptors for the paper's
// six evaluation datasets at configurable scale.
package graph

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"csrplus/internal/sparse"
)

// ErrEmpty is returned (wrapped) for operations that need at least one node.
var ErrEmpty = errors.New("graph: empty graph")

// ErrBadWeight is returned (wrapped) by NewWeighted and the weighted
// readers for edge weights with no random-surfer reading: non-positive,
// NaN, or infinite — including duplicates whose sum lands there.
var ErrBadWeight = errors.New("graph: bad edge weight")

// Graph is a directed graph over nodes 0..N-1 whose adjacency is held in
// CSR with entry (u, v) = 1 for each edge u -> v. Parallel edges collapse
// on construction.
type Graph struct {
	adj      *sparse.CSR
	weighted bool
}

// New builds a Graph from a COO adjacency (entries (u, v, *) meaning
// u -> v; values are ignored, multiplicity collapses to one edge).
func New(coo *sparse.COO) *Graph {
	m := coo.ToCSR()
	// Collapse any summed duplicate weights back to unit edges.
	for i := range m.Val {
		m.Val[i] = 1
	}
	return &Graph{adj: m}
}

// NewWeighted builds a Graph whose edges carry positive weights (values
// of duplicate entries sum). CoSimRank generalises naturally: the
// transition matrix column becomes the weight-proportional distribution
// over in-neighbours instead of the uniform one — e.g. co-occurrence
// counts in the synonym-expansion use case. Non-positive accumulated
// weights are rejected: they would break the random-surfer reading.
func NewWeighted(coo *sparse.COO) (*Graph, error) {
	m := coo.ToCSR()
	for i, v := range m.Val {
		// !(v > 0) also catches NaN, which v <= 0 would wave through.
		if !(v > 0) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("graph: NewWeighted: entry %d has weight %v: %w", i, v, ErrBadWeight)
		}
	}
	return &Graph{adj: m, weighted: true}, nil
}

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.weighted }

// FromCSR wraps an existing 0/1 CSR adjacency as a Graph. The matrix is
// not copied.
func FromCSR(m *sparse.CSR) (*Graph, error) {
	rows, cols := m.Dims()
	if rows != cols {
		return nil, fmt.Errorf("graph: adjacency must be square, got %dx%d", rows, cols)
	}
	return &Graph{adj: m}, nil
}

// N returns the node count.
func (g *Graph) N() int {
	n, _ := g.adj.Dims()
	return n
}

// M returns the edge count.
func (g *Graph) M() int64 { return g.adj.NNZ() }

// Adj returns the CSR adjacency (rows = sources). Callers must not mutate.
func (g *Graph) Adj() *sparse.CSR { return g.adj }

// HasEdge reports whether edge u -> v exists.
func (g *Graph) HasEdge(u, v int) bool { return g.adj.At(u, v) != 0 }

// OutDegree returns the out-degree of node u.
func (g *Graph) OutDegree(u int) int { return g.adj.RowNNZ(u) }

// InDegrees returns the in-degree of every node.
func (g *Graph) InDegrees() []int {
	n := g.N()
	deg := make([]int, n)
	for _, j := range g.adj.ColIdx {
		deg[j]++
	}
	return deg
}

// Bytes reports the adjacency's memory footprint.
func (g *Graph) Bytes() int64 { return g.adj.Bytes() }

// Transition returns the column-normalised adjacency matrix Q of Eq. (1):
// column a is the distribution over a's in-neighbours — uniform
// (1/indeg(a)) for unweighted graphs, weight-proportional for weighted
// ones. Columns of in-degree-0 nodes are zero. It returns ErrEmpty
// (wrapped) for a 0-node graph.
func (g *Graph) Transition() (*sparse.CSR, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("graph: Transition: %w", ErrEmpty)
	}
	q := g.adj.Clone()
	scale := make([]float64, n)
	for j, s := range q.ColSums() {
		if s > 0 {
			scale[j] = 1 / s
		}
	}
	q.ScaleColumns(scale)
	return q, nil
}

// Load reads a SNAP-style edge list from path. n must be an upper bound on
// node ids (exactly the node count for the datasets this repo generates).
func Load(path string, n int) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: load %s: %w", path, err)
	}
	defer f.Close()
	return Read(f, n)
}

// Read parses a SNAP-style edge list from r.
func Read(r io.Reader, n int) (*Graph, error) {
	coo, err := sparse.ReadEdgeList(r, n)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	return New(coo), nil
}

// ReadWeighted parses a "src dst weight" edge list from r into a
// weighted graph.
func ReadWeighted(r io.Reader, n int) (*Graph, error) {
	coo, err := sparse.ReadWeightedEdgeList(r, n)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	return NewWeighted(coo)
}

// LoadWeighted reads a weighted edge list from path.
func LoadWeighted(path string, n int) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: load %s: %w", path, err)
	}
	defer f.Close()
	return ReadWeighted(f, n)
}

// Save writes the graph as an edge list to path.
func (g *Graph) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: save %s: %w", path, err)
	}
	defer f.Close()
	if err := sparse.WriteEdgeList(f, g.adj); err != nil {
		return fmt.Errorf("graph: save %s: %w", path, err)
	}
	return nil
}

// Stats summarises a graph for reporting.
type Stats struct {
	N          int
	M          int64
	AvgDegree  float64
	MaxInDeg   int
	MaxOutDeg  int
	ZeroInDeg  int // nodes with no in-edges (zero transition columns)
	ZeroOutDeg int
}

// ComputeStats walks the adjacency once and returns summary statistics.
func (g *Graph) ComputeStats() Stats {
	n := g.N()
	s := Stats{N: n, M: g.M()}
	if n > 0 {
		s.AvgDegree = float64(s.M) / float64(n)
	}
	in := g.InDegrees()
	for u := 0; u < n; u++ {
		od := g.OutDegree(u)
		if od > s.MaxOutDeg {
			s.MaxOutDeg = od
		}
		if od == 0 {
			s.ZeroOutDeg++
		}
		if in[u] > s.MaxInDeg {
			s.MaxInDeg = in[u]
		}
		if in[u] == 0 {
			s.ZeroInDeg++
		}
	}
	return s
}

package bench

// table3.go reproduces Table 3: the AvgDiff accuracy of CSR+ (and CSR-NI
// where it fits in memory) against exact CoSimRank on FB and P2P, with
// |Q| = 100 and r ∈ {25, 50, 100, 200}.

import (
	"fmt"

	"csrplus/internal/baseline"
)

// Table3Datasets are the accuracy-experiment graphs.
var Table3Datasets = []string{"FB", "P2P"}

// Table3Ranks is the paper's rank sweep for Table 3.
var Table3Ranks = []int{25, 50, 100, 200}

// Table3Cell is one accuracy measurement.
type Table3Cell struct {
	Rank       int
	AvgDiff    float64
	NIAvgDiff  float64 // NaN-free only when NIRan
	NIRan      bool    // CSR-NI fits under the budget and was run
	NISkipNote string  // guard marker when it did not
}

// Table3Result maps dataset -> per-rank cells.
type Table3Result struct {
	Ranks    []int
	Datasets []string
	Cells    map[string][]Table3Cell
}

// RunTable3 measures AvgDiff for CSR+ (and CSR-NI when feasible) against
// the exact reference.
func (e *Env) RunTable3(ranks []int) (*Table3Result, error) {
	if len(ranks) == 0 {
		ranks = Table3Ranks
	}
	res := &Table3Result{Ranks: ranks, Datasets: Table3Datasets,
		Cells: make(map[string][]Table3Cell)}
	for _, ds := range res.Datasets {
		gr, err := e.Dataset(ds)
		if err != nil {
			return nil, err
		}
		queries := e.SampleQueries(gr, DefaultQuerySize)
		// Exact reference once per dataset.
		exCfg := e.Config(DefaultRank)
		exCfg.Eps = 1e-9
		ex := baseline.NewExact(exCfg)
		if err := ex.Precompute(gr); err != nil {
			return nil, err
		}
		want, err := ex.Query(queries)
		if err != nil {
			return nil, err
		}
		for _, r := range ranks {
			rank := r
			if rank > gr.N() {
				rank = gr.N() // quick-mode stand-ins can be tiny
			}
			cell := Table3Cell{Rank: rank}
			// Heavier sketch than the speed experiments: Table 3 measures
			// the rank-truncation error, so the SVD itself must be close
			// to exact (the paper's MATLAB svds is), not merely good
			// enough for retrieval.
			cfg := e.Config(rank)
			cfg.SVD.PowerIters = 5
			cfg.SVD.Oversample = 16
			cp := baseline.NewCSRPlus(cfg)
			if err := cp.Precompute(gr); err != nil {
				return nil, err
			}
			got, err := cp.Query(queries)
			if err != nil {
				return nil, err
			}
			if cell.AvgDiff, err = baseline.AvgDiff(got, want); err != nil {
				return nil, err
			}
			// CSR-NI "as long as it survives" (paper §4.2.3): its tensor
			// products rarely fit, so consult the guards first.
			ni := baseline.NewNI(e.Config(rank))
			estB := ni.EstimateBytes(gr.N(), gr.M(), len(queries))
			estF := ni.EstimateFlops(gr.N(), gr.M(), len(queries))
			switch {
			case e.MemBudget > 0 && estB > e.MemBudget:
				cell.NISkipNote = "✗MEM"
			case e.FlopBudget > 0 && estF > e.FlopBudget:
				cell.NISkipNote = "✗TIME"
			default:
				if err := ni.Precompute(gr); err != nil {
					return nil, err
				}
				gotNI, err := ni.Query(queries)
				if err != nil {
					return nil, err
				}
				if cell.NIAvgDiff, err = baseline.AvgDiff(gotNI, want); err != nil {
					return nil, err
				}
				cell.NIRan = true
			}
			res.Cells[ds] = append(res.Cells[ds], cell)
		}
	}
	return res, nil
}

// Render prints the Table 3 view.
func (r *Table3Result) Render(e *Env) {
	t := &Table{
		Title:  fmt.Sprintf("Table 3: Error (AvgDiff) for CSR+ and CSR-NI, |Q|=%d", DefaultQuerySize),
		Header: []string{"Dataset"},
	}
	for _, rank := range r.Ranks {
		t.Header = append(t.Header, fmt.Sprintf("r=%d", rank))
	}
	for _, ds := range r.Datasets {
		row := []string{ds}
		for _, c := range r.Cells[ds] {
			cell := fmt.Sprintf("%.4e", c.AvgDiff)
			if c.NIRan {
				cell += fmt.Sprintf(" (NI %.4e)", c.NIAvgDiff)
			} else {
				cell += fmt.Sprintf(" (NI %s)", c.NISkipNote)
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	t.Render(e.Out)
}

// Package bench is the experiment harness of the reproduction: it
// regenerates every table and figure of the paper's §4 evaluation —
// workload generation, parameter sweeps, the budget guards that stand in
// for the paper's memory crashes, and reporters that print the same
// rows/series the paper plots. cmd/csrbench is its CLI; the root-level
// bench_test.go exposes each experiment as a testing.B benchmark.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"csrplus/internal/baseline"
	"csrplus/internal/graph"
	"csrplus/internal/memtrack"
	"csrplus/internal/sparse"
	"csrplus/internal/svd"
)

// Paper defaults (§4.1 Parameters).
const (
	DefaultQuerySize = 100
	DefaultDamping   = 0.6
	DefaultRank      = 5
)

// Env carries the harness configuration shared by every experiment.
type Env struct {
	// Out receives the rendered tables; nil discards output.
	Out io.Writer
	// MemBudget is the analytic-bytes guard: cells whose EstimateBytes
	// exceeds it are skipped with a "MEM" marker (the paper's crashes).
	// Default 10 GiB.
	MemBudget int64
	// FlopBudget is the time guard: cells whose EstimateFlops exceeds it
	// are skipped with a "TIME" marker. Default 4e10 (~1 minute at this
	// substrate's single-core throughput).
	FlopBudget int64
	// ExtraScale multiplies every dataset's default downscale factor —
	// the tests and testing.B benchmarks run with a large ExtraScale so
	// each cell stays sub-second. Default 1 (DESIGN.md §5 scales).
	ExtraScale int64
	// QuerySeed fixes the sampled query workloads.
	QuerySeed int64
	// CacheDir, when non-empty, persists generated stand-in graphs as
	// checksummed binary CSR files so repeated csrbench invocations skip
	// regeneration (R-MAT at TW/WB scale costs tens of seconds).
	CacheDir string
	// Progress, when non-nil, receives one line per executed cell — the
	// heartbeat of multi-minute full-scale runs.
	Progress io.Writer

	cache map[string]*graph.Graph
}

// NewEnv returns an Env with the defaults above.
func NewEnv(out io.Writer) *Env {
	return &Env{
		Out:        out,
		MemBudget:  10 << 30,
		FlopBudget: 4e10,
		ExtraScale: 1,
		cache:      make(map[string]*graph.Graph),
	}
}

// Quick reconfigures the Env for sub-second cells (unit tests and
// testing.B benchmarks): heavily downscaled graphs and a small memory
// budget so the paper's "who crashes where" shape still shows.
func (e *Env) Quick() *Env {
	e.ExtraScale = 64
	e.MemBudget = 32 << 20
	e.FlopBudget = 2e9
	return e
}

// Dataset returns (generating and caching on first use) the named
// dataset's stand-in graph at the Env's scale.
func (e *Env) Dataset(key string) (*graph.Graph, error) {
	if e.cache == nil {
		e.cache = make(map[string]*graph.Graph)
	}
	if g, ok := e.cache[key]; ok {
		return g, nil
	}
	d, err := graph.DatasetByKey(key)
	if err != nil {
		return nil, err
	}
	scale := d.Scale
	if e.ExtraScale > 1 {
		scale *= e.ExtraScale
	}
	// Keep every stand-in at least a few hundred nodes so query sampling
	// and rank sweeps stay meaningful under aggressive ExtraScale.
	for scale > 1 && d.PaperN/scale < 400 {
		scale /= 2
	}
	if g, ok := e.loadCached(key, scale); ok {
		e.cache[key] = g
		return g, nil
	}
	g, err := d.GenerateScaled(scale)
	if err != nil {
		return nil, fmt.Errorf("bench: dataset %s at scale %d: %w", key, scale, err)
	}
	e.storeCached(key, scale, g)
	e.cache[key] = g
	return g, nil
}

// cachePath names the on-disk cache entry for (dataset, scale).
func (e *Env) cachePath(key string, scale int64) string {
	return filepath.Join(e.CacheDir, fmt.Sprintf("%s-s%d.csrm", key, scale))
}

// loadCached tries the disk cache; any failure (missing, corrupt, stale
// format) falls through to regeneration.
func (e *Env) loadCached(key string, scale int64) (*graph.Graph, bool) {
	if e.CacheDir == "" {
		return nil, false
	}
	f, err := os.Open(e.cachePath(key, scale))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	m, err := sparse.ReadBinary(f)
	if err != nil {
		return nil, false
	}
	g, err := graph.FromCSR(m)
	if err != nil {
		return nil, false
	}
	return g, true
}

// storeCached writes the generated graph to the disk cache; failures are
// silent (the cache is an optimisation, not a dependency).
func (e *Env) storeCached(key string, scale int64, g *graph.Graph) {
	if e.CacheDir == "" {
		return
	}
	if err := os.MkdirAll(e.CacheDir, 0o755); err != nil {
		return
	}
	f, err := os.CreateTemp(e.CacheDir, ".tmp-*")
	if err != nil {
		return
	}
	defer os.Remove(f.Name())
	if err := sparse.WriteBinary(f, g.Adj()); err != nil {
		f.Close()
		return
	}
	if err := f.Close(); err != nil {
		return
	}
	_ = os.Rename(f.Name(), e.cachePath(key, scale))
}

// SampleQueries draws q distinct node ids, deterministic in the Env seed.
func (e *Env) SampleQueries(g *graph.Graph, q int) []int {
	n := g.N()
	if q > n {
		q = n
	}
	rng := rand.New(rand.NewSource(e.QuerySeed + int64(n)*31 + int64(q)))
	perm := rng.Perm(n)[:q]
	sort.Ints(perm)
	return perm
}

// Measurement is one experiment cell: one algorithm on one workload.
type Measurement struct {
	Algo    string
	Dataset string
	N       int
	M       int64
	Q       int
	Rank    int

	PrecompTime time.Duration
	QueryTime   time.Duration
	// PrecompBytes/QueryBytes are the net analytic bytes attributed to
	// each phase; PeakBytes is the overall high-water mark.
	PrecompBytes int64
	QueryBytes   int64
	PeakBytes    int64

	// Skipped marks guarded cells; Reason is "MEM" or "TIME" and
	// EstBytes/EstFlops record what the guard saw.
	Skipped  bool
	Reason   string
	EstBytes int64
	EstFlops int64
}

// TotalTime returns precompute + query time (the paper's Figure 2 metric).
func (m Measurement) TotalTime() time.Duration { return m.PrecompTime + m.QueryTime }

// RunCell executes one (algorithm, graph, queries) cell under the Env's
// guards. cfg.Tracker is overwritten with a fresh tracker.
func (e *Env) RunCell(algoName string, cfg baseline.Config, dataset string, g *graph.Graph, queries []int) (Measurement, error) {
	m := Measurement{
		Algo:    algoName,
		Dataset: dataset,
		N:       g.N(),
		M:       g.M(),
		Q:       len(queries),
		Rank:    cfg.WithDefaults().Rank,
	}
	tracker := memtrack.New()
	cfg.Tracker = tracker
	runner, err := baseline.New(algoName, cfg)
	if err != nil {
		return m, err
	}
	m.EstBytes = runner.EstimateBytes(g.N(), g.M(), len(queries))
	m.EstFlops = runner.EstimateFlops(g.N(), g.M(), len(queries))
	if e.MemBudget > 0 && m.EstBytes > e.MemBudget {
		m.Skipped, m.Reason = true, "MEM"
		e.progress("%-9s %-4s r=%-3d |Q|=%-4d skipped (MEM, est %s)",
			algoName, dataset, m.Rank, m.Q, memtrack.Human(m.EstBytes))
		return m, nil
	}
	if e.FlopBudget > 0 && m.EstFlops > e.FlopBudget {
		m.Skipped, m.Reason = true, "TIME"
		e.progress("%-9s %-4s r=%-3d |Q|=%-4d skipped (TIME, est %.1e flops)",
			algoName, dataset, m.Rank, m.Q, float64(m.EstFlops))
		return m, nil
	}
	start := time.Now()
	if err := runner.Precompute(g); err != nil {
		return m, fmt.Errorf("bench: %s precompute on %s: %w", algoName, dataset, err)
	}
	m.PrecompTime = time.Since(start)
	m.PrecompBytes = tracker.PeakByPrefix("precompute/")
	start = time.Now()
	if _, err := runner.Query(queries); err != nil {
		return m, fmt.Errorf("bench: %s query on %s: %w", algoName, dataset, err)
	}
	m.QueryTime = time.Since(start)
	m.QueryBytes = tracker.PeakByPrefix("query/")
	m.PeakBytes = tracker.Peak()
	e.progress("%-9s %-4s r=%-3d |Q|=%-4d pre=%v query=%v peak=%s",
		algoName, dataset, m.Rank, m.Q,
		m.PrecompTime.Round(time.Millisecond), m.QueryTime.Round(time.Millisecond),
		memtrack.Human(m.PeakBytes))
	return m, nil
}

// progress writes one heartbeat line when Progress is configured.
func (e *Env) progress(format string, args ...interface{}) {
	if e.Progress == nil {
		return
	}
	fmt.Fprintf(e.Progress, format+"\n", args...)
}

// Config returns the baseline.Config for the paper's defaults with the
// given rank and a fixed SVD seed.
func (e *Env) Config(rank int) baseline.Config {
	return baseline.Config{
		Damping: DefaultDamping,
		Rank:    rank,
		SVD:     svd.Options{Seed: 42},
	}
}

package bench

// ablation.go measures each of CSR+'s §3.2 optimisation stages in
// isolation — the design-choice evidence DESIGN.md §6 commits to:
//
//   - subspace solver: repeated squaring vs plain iteration vs an
//     explicitly materialised r² x r² Λ (Theorems 3.3/3.4's target);
//   - query route: Theorem 3.5's O(nr|Q|) slice vs materialising the full
//     n x n similarity matrix;
//   - SVD driver: randomized subspace iteration vs Lanczos.
//
// The full "no optimisation at all" end of the spectrum is the CSR-NI
// baseline, measured by the main grid.

import (
	"fmt"
	"time"

	"csrplus/internal/core"
	"csrplus/internal/graph"
	"csrplus/internal/svd"
)

// AblationCell is one variant measurement.
type AblationCell struct {
	Variant string
	Rank    int
	Time    time.Duration
	Skipped bool
	Reason  string
}

// AblationResult groups cells per dataset.
type AblationResult struct {
	Ranks    []int
	Datasets []string
	// Solver[dataset] holds solver-variant cells (3 per rank, grouped);
	// Query[dataset] holds the two query routes; SVD[dataset] the two
	// SVD drivers.
	Solver map[string][]AblationCell
	Query  map[string][]AblationCell
	SVD    map[string][]AblationCell
}

// AblationDatasets keeps the study on the two full-size graphs.
var AblationDatasets = []string{"FB", "P2P"}

// AblationRanks sweeps rank where the solver variants separate: the
// explicit-Λ route is O(r⁶), invisible at r=5 and dominant by r=40.
var AblationRanks = []int{5, 20, 40}

// RunAblation measures all variants.
func (e *Env) RunAblation(ranks []int) (*AblationResult, error) {
	if len(ranks) == 0 {
		ranks = AblationRanks
	}
	res := &AblationResult{
		Ranks:    ranks,
		Datasets: AblationDatasets,
		Solver:   make(map[string][]AblationCell),
		Query:    make(map[string][]AblationCell),
		SVD:      make(map[string][]AblationCell),
	}
	for _, ds := range res.Datasets {
		g, err := e.Dataset(ds)
		if err != nil {
			return nil, err
		}
		// Solver variants across ranks.
		for _, r := range ranks {
			rank := r
			if rank > g.N() {
				rank = g.N()
			}
			for _, solver := range []core.SubspaceSolver{
				core.SolverSquaring, core.SolverPlain, core.SolverExplicitLambda,
			} {
				cell, err := e.timeSolver(g, rank, solver)
				if err != nil {
					return nil, fmt.Errorf("bench: ablation %s/%v: %w", ds, solver, err)
				}
				res.Solver[ds] = append(res.Solver[ds], cell)
			}
		}
		// Query routes at the default rank.
		queries := e.SampleQueries(g, DefaultQuerySize)
		ix, err := core.Precompute(g, core.Options{Rank: DefaultRank, SVD: svd.Options{Seed: 42}})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := ix.Query(queries, nil); err != nil {
			return nil, err
		}
		res.Query[ds] = append(res.Query[ds], AblationCell{
			Variant: "thm3.5-slice", Rank: DefaultRank, Time: time.Since(start)})
		denseBytes := 2 * int64(g.N()) * int64(g.N()) * 8
		if e.MemBudget > 0 && denseBytes > e.MemBudget {
			res.Query[ds] = append(res.Query[ds], AblationCell{
				Variant: "dense-materialise", Rank: DefaultRank, Skipped: true, Reason: "MEM"})
		} else {
			start = time.Now()
			if _, err := ix.QueryDense(queries); err != nil {
				return nil, err
			}
			res.Query[ds] = append(res.Query[ds], AblationCell{
				Variant: "dense-materialise", Rank: DefaultRank, Time: time.Since(start)})
		}
		// SVD drivers at the default rank.
		for _, method := range []svd.Method{svd.Randomized, svd.Lanczos} {
			start := time.Now()
			if _, err := core.Precompute(g, core.Options{
				Rank: DefaultRank, SVD: svd.Options{Method: method, Seed: 42}}); err != nil {
				return nil, err
			}
			res.SVD[ds] = append(res.SVD[ds], AblationCell{
				Variant: "svd-" + method.String(), Rank: DefaultRank, Time: time.Since(start)})
		}
	}
	return res, nil
}

func (e *Env) timeSolver(g *graph.Graph, rank int, solver core.SubspaceSolver) (AblationCell, error) {
	cell := AblationCell{Variant: "solver-" + solver.String(), Rank: rank}
	// The explicit-Λ variant's r² x r² Kronecker product plus inversion is
	// O(r⁶) time and 2·r⁴ floats of memory — guard like any other cell.
	if solver == core.SolverExplicitLambda {
		r := int64(rank)
		if e.MemBudget > 0 && 3*r*r*r*r*8 > e.MemBudget {
			cell.Skipped, cell.Reason = true, "MEM"
			return cell, nil
		}
		if e.FlopBudget > 0 && r*r*r*r*r*r > e.FlopBudget {
			cell.Skipped, cell.Reason = true, "TIME"
			return cell, nil
		}
	}
	start := time.Now()
	_, err := core.Precompute(g, core.Options{Rank: rank, Solver: solver, SVD: svd.Options{Seed: 42}})
	if err != nil {
		return cell, err
	}
	cell.Time = time.Since(start)
	return cell, nil
}

// Render prints the ablation tables.
func (r *AblationResult) Render(e *Env) {
	for _, ds := range r.Datasets {
		t := &Table{
			Title:  fmt.Sprintf("Ablation: subspace solver variants — %s (precompute time)", ds),
			Header: []string{"r", "squaring", "plain-iteration", "explicit-lambda"},
		}
		cells := r.Solver[ds]
		for i := 0; i < len(cells); i += 3 {
			row := []string{fmt.Sprint(cells[i].Rank)}
			for j := 0; j < 3; j++ {
				c := cells[i+j]
				if c.Skipped {
					row = append(row, "✗"+c.Reason)
				} else {
					row = append(row, fmtDuration(c.Time))
				}
			}
			t.AddRow(row...)
		}
		t.Render(e.Out)
	}
	t := &Table{
		Title:  "Ablation: query route (Theorem 3.5 vs dense materialisation, |Q|=100)",
		Header: []string{"Dataset", "thm3.5-slice", "dense-materialise"},
	}
	for _, ds := range r.Datasets {
		row := []string{ds}
		for _, c := range r.Query[ds] {
			if c.Skipped {
				row = append(row, "✗"+c.Reason)
			} else {
				row = append(row, fmtDuration(c.Time))
			}
		}
		t.AddRow(row...)
	}
	t.Render(e.Out)
	t = &Table{
		Title:  "Ablation: truncated SVD driver (total precompute time, r=5)",
		Header: []string{"Dataset", "svd-randomized", "svd-lanczos"},
	}
	for _, ds := range r.Datasets {
		row := []string{ds}
		for _, c := range r.SVD[ds] {
			row = append(row, fmtDuration(c.Time))
		}
		t.AddRow(row...)
	}
	t.Render(e.Out)
}

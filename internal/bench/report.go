package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"csrplus/internal/memtrack"
)

// Table is a simple aligned ASCII table used by every experiment reporter.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table, aligned, to w (nil w discards).
func (t *Table) Render(w io.Writer) {
	if w == nil {
		return
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if t.Title != "" {
		fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	}
	fmt.Fprintln(w, line(t.Header))
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
}

// fmtDuration renders a duration compactly for table cells.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// fmtCellTime renders a measurement's total time, or its guard marker.
func fmtCellTime(m Measurement) string {
	if m.Skipped {
		return skipMarker(m)
	}
	return fmtDuration(m.TotalTime())
}

// fmtCellBytes renders a measurement's peak memory; skipped cells show
// the guard marker with the analytic estimate in parentheses, matching
// how the paper reports crashed entries.
func fmtCellBytes(m Measurement) string {
	if m.Skipped {
		return fmt.Sprintf("%s(est %s)", skipMarker(m), memtrack.Human(m.EstBytes))
	}
	return memtrack.Human(m.PeakBytes)
}

func skipMarker(m Measurement) string {
	return "✗" + m.Reason
}

// fmtBytes renders a raw byte count for table cells.
func fmtBytes(b int64) string { return memtrack.Human(b) }

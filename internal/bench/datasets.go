package bench

// datasets.go renders the paper's §4.1 dataset table side by side with
// the generated stand-ins — the evidence that each substitution matches
// the original's shape (size ratio m/n, degree skew, connectivity).

import (
	"fmt"

	"csrplus/internal/graph"
)

// RenderDatasets generates every stand-in at the Env's scale and prints
// the characterisation table.
func (e *Env) RenderDatasets() error {
	t := &Table{
		Title: "Datasets: paper originals vs generated stand-ins (DESIGN.md §5)",
		Header: []string{"Key", "paper n", "paper m", "paper m/n",
			"ours n", "ours m", "ours m/n", "max-in", "zero-in", "wcc", "heavy-tail"},
	}
	for _, key := range GridDatasets {
		d, err := graph.DatasetByKey(key)
		if err != nil {
			return err
		}
		g, err := e.Dataset(key)
		if err != nil {
			return err
		}
		st := g.ComputeStats()
		_, wcc := g.WeakComponents()
		hist := g.InDegreeHistogram()
		t.AddRow(key,
			fmt.Sprint(d.PaperN), fmt.Sprint(d.PaperM),
			fmt.Sprintf("%.1f", float64(d.PaperM)/float64(d.PaperN)),
			fmt.Sprint(st.N), fmt.Sprint(st.M),
			fmt.Sprintf("%.1f", st.AvgDegree),
			fmt.Sprint(st.MaxInDeg), fmt.Sprint(st.ZeroInDeg), fmt.Sprint(wcc),
			fmt.Sprintf("%t", hist.PowerLawish(10)),
		)
	}
	t.Render(e.Out)
	return nil
}

package bench

// rankeval.go is an extension experiment beyond the paper's Table 3:
// element-wise AvgDiff says little about whether top-k retrieval survives
// the rank-r truncation, so this experiment reports ranking-quality
// metrics (Precision@10, NDCG@10, Spearman ρ) of CSR+ columns against
// exact CoSimRank columns across ranks.

import (
	"fmt"

	"csrplus/internal/baseline"
	"csrplus/internal/eval"
)

// RankEvalCell aggregates ranking quality at one rank (means over the
// sampled query columns).
type RankEvalCell struct {
	Rank        int
	PrecisionAt float64
	NDCGAt      float64
	Spearman    float64
}

// RankEvalResult maps dataset -> per-rank cells.
type RankEvalResult struct {
	K        int // cutoff for Precision@k / NDCG@k
	Queries  int
	Ranks    []int
	Datasets []string
	Cells    map[string][]RankEvalCell
}

// RankEvalRanks is the default rank sweep for the extension experiment.
var RankEvalRanks = []int{5, 10, 25, 50}

// RunRankEval measures ranking quality on the two full-size datasets.
func (e *Env) RunRankEval(ranks []int) (*RankEvalResult, error) {
	if len(ranks) == 0 {
		ranks = RankEvalRanks
	}
	const k = 10
	const nq = 20
	res := &RankEvalResult{K: k, Queries: nq, Ranks: ranks,
		Datasets: Table3Datasets, Cells: make(map[string][]RankEvalCell)}
	for _, ds := range res.Datasets {
		g, err := e.Dataset(ds)
		if err != nil {
			return nil, err
		}
		queries := e.SampleQueries(g, nq)
		exCfg := e.Config(DefaultRank)
		exCfg.Eps = 1e-9
		ex := baseline.NewExact(exCfg)
		if err := ex.Precompute(g); err != nil {
			return nil, err
		}
		want, err := ex.Query(queries)
		if err != nil {
			return nil, err
		}
		for _, r := range ranks {
			rank := r
			if rank > g.N() {
				rank = g.N()
			}
			cp := baseline.NewCSRPlus(e.Config(rank))
			if err := cp.Precompute(g); err != nil {
				return nil, err
			}
			got, err := cp.Query(queries)
			if err != nil {
				return nil, err
			}
			cell := RankEvalCell{Rank: rank}
			for j := range queries {
				a := got.Col(j, nil)
				b := want.Col(j, nil)
				p, err := eval.PrecisionAtK(a, b, k)
				if err != nil {
					return nil, fmt.Errorf("bench: rankeval: %w", err)
				}
				g10, err := eval.NDCGAtK(a, b, k)
				if err != nil {
					return nil, fmt.Errorf("bench: rankeval: %w", err)
				}
				rho, err := eval.SpearmanRho(a, b)
				if err != nil {
					return nil, fmt.Errorf("bench: rankeval: %w", err)
				}
				cell.PrecisionAt += p
				cell.NDCGAt += g10
				cell.Spearman += rho
			}
			cell.PrecisionAt /= float64(len(queries))
			cell.NDCGAt /= float64(len(queries))
			cell.Spearman /= float64(len(queries))
			res.Cells[ds] = append(res.Cells[ds], cell)
		}
	}
	return res, nil
}

// Render prints the ranking-quality table.
func (r *RankEvalResult) Render(e *Env) {
	t := &Table{
		Title: fmt.Sprintf("Extension: ranking quality of CSR+ vs exact (means over %d queries)",
			r.Queries),
		Header: []string{"Dataset", "r", fmt.Sprintf("Precision@%d", r.K),
			fmt.Sprintf("NDCG@%d", r.K), "Spearman ρ"},
	}
	for _, ds := range r.Datasets {
		for _, c := range r.Cells[ds] {
			t.AddRow(ds, fmt.Sprint(c.Rank),
				fmt.Sprintf("%.3f", c.PrecisionAt),
				fmt.Sprintf("%.3f", c.NDCGAt),
				fmt.Sprintf("%.3f", c.Spearman))
		}
	}
	t.Render(e.Out)
}

package bench

// complexity.go renders the paper's Table 1: the analytic time/memory
// complexity of every CoSimRank algorithm for multi-source search. The
// table is static — it documents the bounds the measured figures are
// checked against.

import "io"

// complexityRow is one Table 1 entry.
type complexityRow struct {
	Algorithm string
	Time      string
	Memory    string
	Error     string
	Status    string
}

var table1Rows = []complexityRow{
	{"CSR+ (this work)", "O(r(m + n(r + |Q|)))", "O(rn)", "low-rank-r error", "implemented (internal/core)"},
	{"NI-Sim / CSR-NI [4]", "O(r⁴n² + r⁴n|Q|)", "O(r²n²)", "same low-rank-r error", "implemented (internal/baseline.NI)"},
	{"CoSimRank / CSR-IT [6]", "O(n² log(1/ε)|Q|)", "O(n²)", "ε", "implemented (internal/baseline.IT)"},
	{"CSR-RLS [2]", "O(K²·m·|Q|)", "O(n|Q|)", "ε", "implemented (internal/baseline.RLS)"},
	{"CoSimMate [11]", "O(n³ log₂ log(1/ε))", "O(n²)", "ε", "implemented (internal/baseline.CoSimMate)"},
	{"RP-CoSim [9]", "O(n² log(n)/ε² log(1/ε))", "O(n²)", "ε (statistical)", "implemented as sketch variant (internal/baseline.RPCoSim)"},
	{"F-CoSim [14]", "O(n² + log(1/ε)n(m−n)|Q|)", "O(n²)", "ε", "not evaluated by the paper; complexity documented only"},
}

// RenderTable1 prints the complexity comparison.
func RenderTable1(w io.Writer) {
	t := &Table{
		Title:  "Table 1: Complexity of CoSimRank Algorithms for Multi-Source Search",
		Header: []string{"Algorithm", "Time", "Memory", "Error", "This repo"},
	}
	for _, r := range table1Rows {
		t.AddRow(r.Algorithm, r.Time, r.Memory, r.Error, r.Status)
	}
	t.Render(w)
}

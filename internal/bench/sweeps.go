package bench

// sweeps.go drives the parameter sweeps shared by Figures 3/7 (CSR+ phase
// breakdown vs |Q|), Figures 4/8 (rank sweep) and Figures 5/9 (query-size
// sweep).

import "fmt"

// SweepDatasets are the four graphs the paper's sweep figures show.
var SweepDatasets = []string{"FB", "P2P", "WT", "TW"}

// DefaultRanks is Figure 4/8's rank sweep.
var DefaultRanks = []int{5, 10, 15, 20, 25}

// DefaultQuerySizes is Figure 5/9's |Q| sweep.
var DefaultQuerySizes = []int{100, 200, 300, 400, 500}

// DefaultPhaseQuerySizes is Figure 3/7's |Q| sweep.
var DefaultPhaseQuerySizes = []int{100, 300, 500, 700}

// Sweep holds one-parameter sweep measurements for several algorithms on
// several datasets: Cells[dataset][algo][i] corresponds to X[i].
type Sweep struct {
	Param    string // "r" or "|Q|"
	X        []int
	Datasets []string
	Algos    []string
	Cells    map[string]map[string][]Measurement
}

// RunRankSweep measures every grid algorithm across ranks (Figures 4/8);
// iterative baselines honour the paper's fairness rule K = r.
func (e *Env) RunRankSweep(ranks []int) (*Sweep, error) {
	if len(ranks) == 0 {
		ranks = DefaultRanks
	}
	s := &Sweep{Param: "r", X: ranks, Datasets: SweepDatasets, Algos: GridAlgos,
		Cells: make(map[string]map[string][]Measurement)}
	for _, ds := range s.Datasets {
		gr, err := e.Dataset(ds)
		if err != nil {
			return nil, err
		}
		queries := e.SampleQueries(gr, DefaultQuerySize)
		s.Cells[ds] = make(map[string][]Measurement)
		for _, algo := range s.Algos {
			for _, r := range ranks {
				m, err := e.RunCell(algo, e.Config(r), ds, gr, queries)
				if err != nil {
					return nil, err
				}
				s.Cells[ds][algo] = append(s.Cells[ds][algo], m)
			}
		}
	}
	return s, nil
}

// RunQuerySweep measures every grid algorithm across |Q| (Figures 5/9).
func (e *Env) RunQuerySweep(sizes []int) (*Sweep, error) {
	if len(sizes) == 0 {
		sizes = DefaultQuerySizes
	}
	s := &Sweep{Param: "|Q|", X: sizes, Datasets: SweepDatasets, Algos: GridAlgos,
		Cells: make(map[string]map[string][]Measurement)}
	for _, ds := range s.Datasets {
		gr, err := e.Dataset(ds)
		if err != nil {
			return nil, err
		}
		s.Cells[ds] = make(map[string][]Measurement)
		for _, algo := range s.Algos {
			for _, q := range sizes {
				queries := e.SampleQueries(gr, q)
				m, err := e.RunCell(algo, e.Config(DefaultRank), ds, gr, queries)
				if err != nil {
					return nil, err
				}
				s.Cells[ds][algo] = append(s.Cells[ds][algo], m)
			}
		}
	}
	return s, nil
}

// renderTime prints the time view of a sweep (Figures 4 and 5).
func (s *Sweep) renderTime(e *Env, title string) {
	for _, ds := range s.Datasets {
		t := &Table{
			Title:  fmt.Sprintf("%s — %s", title, ds),
			Header: append([]string{s.Param}, s.Algos...),
		}
		for i, x := range s.X {
			row := []string{fmt.Sprint(x)}
			for _, algo := range s.Algos {
				row = append(row, fmtCellTime(s.Cells[ds][algo][i]))
			}
			t.AddRow(row...)
		}
		t.Render(e.Out)
	}
}

// renderMemory prints the memory view of a sweep (Figures 8 and 9).
func (s *Sweep) renderMemory(e *Env, title string) {
	for _, ds := range s.Datasets {
		t := &Table{
			Title:  fmt.Sprintf("%s — %s", title, ds),
			Header: append([]string{s.Param}, s.Algos...),
		}
		for i, x := range s.X {
			row := []string{fmt.Sprint(x)}
			for _, algo := range s.Algos {
				row = append(row, fmtCellBytes(s.Cells[ds][algo][i]))
			}
			t.AddRow(row...)
		}
		t.Render(e.Out)
	}
}

// RenderFig4 prints the rank sweep's CPU-time view.
func (s *Sweep) RenderFig4(e *Env) { s.renderTime(e, "Figure 4: Effect of Low Rank r on CPU Time") }

// RenderFig8 prints the rank sweep's memory view.
func (s *Sweep) RenderFig8(e *Env) { s.renderMemory(e, "Figure 8: Effect of Low Rank r on Memory") }

// RenderFig5 prints the query-size sweep's CPU-time view.
func (s *Sweep) RenderFig5(e *Env) { s.renderTime(e, "Figure 5: Effect of Query Size |Q| on CPU Time") }

// RenderFig9 prints the query-size sweep's memory view.
func (s *Sweep) RenderFig9(e *Env) { s.renderMemory(e, "Figure 9: Effect of Query Size |Q| on Memory") }

// PhaseSweep holds CSR+'s per-phase costs across |Q| (Figures 3 and 7).
type PhaseSweep struct {
	X        []int
	Datasets []string
	// Pre[dataset] is the (query-independent) precompute measurement;
	// QueryCells[dataset][i] the query phase at X[i] sources.
	Pre        map[string]Measurement
	QueryCells map[string][]Measurement
}

// RunPhaseSweep measures CSR+'s two phases separately across |Q| on all
// six datasets.
func (e *Env) RunPhaseSweep(sizes []int) (*PhaseSweep, error) {
	if len(sizes) == 0 {
		sizes = DefaultPhaseQuerySizes
	}
	s := &PhaseSweep{X: sizes, Datasets: GridDatasets,
		Pre:        make(map[string]Measurement),
		QueryCells: make(map[string][]Measurement)}
	for _, ds := range s.Datasets {
		gr, err := e.Dataset(ds)
		if err != nil {
			return nil, err
		}
		for i, q := range sizes {
			queries := e.SampleQueries(gr, q)
			m, err := e.RunCell("CSR+", e.Config(DefaultRank), ds, gr, queries)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				s.Pre[ds] = m
			}
			s.QueryCells[ds] = append(s.QueryCells[ds], m)
		}
	}
	return s, nil
}

// RenderFig3 prints the phase-time breakdown.
func (s *PhaseSweep) RenderFig3(e *Env) {
	t := &Table{
		Title:  "Figure 3: Time of Each Phase for CSR+ (preprocessing is |Q|-independent)",
		Header: append([]string{"Dataset", "preprocess"}, queryHeaders(s.X)...),
	}
	for _, ds := range s.Datasets {
		row := []string{ds, fmtDuration(s.Pre[ds].PrecompTime)}
		for _, m := range s.QueryCells[ds] {
			row = append(row, fmtDuration(m.QueryTime))
		}
		t.AddRow(row...)
	}
	t.Render(e.Out)
}

// RenderFig7 prints the phase-memory breakdown.
func (s *PhaseSweep) RenderFig7(e *Env) {
	t := &Table{
		Title:  "Figure 7: Memory of Each Phase for CSR+ (analytic bytes)",
		Header: append([]string{"Dataset", "preprocess"}, queryHeaders(s.X)...),
	}
	for _, ds := range s.Datasets {
		row := []string{ds, fmtBytes(s.Pre[ds].PrecompBytes)}
		for _, m := range s.QueryCells[ds] {
			row = append(row, fmtBytes(m.QueryBytes))
		}
		t.AddRow(row...)
	}
	t.Render(e.Out)
}

func queryHeaders(sizes []int) []string {
	hs := make([]string, len(sizes))
	for i, q := range sizes {
		hs[i] = fmt.Sprintf("query|Q|=%d", q)
	}
	return hs
}

package bench

// grid.go drives the dataset x algorithm grid shared by Figure 2 (total
// time) and Figure 6 (total memory): the four evaluated algorithms on all
// six datasets at the paper's defaults (|Q| = 100, c = 0.6, r = 5).

import "fmt"

// GridAlgos are the four competitors of Figures 2 and 6, in paper order.
var GridAlgos = []string{"CSR+", "CSR-RLS", "CSR-IT", "CSR-NI"}

// GridDatasets are the six evaluation graphs in paper order.
var GridDatasets = []string{"FB", "P2P", "YT", "WT", "TW", "WB"}

// Grid holds the measurements behind Figures 2 and 6.
type Grid struct {
	Datasets []string
	Algos    []string
	// Cells[dataset][algo]
	Cells map[string]map[string]Measurement
}

// RunGrid executes the full grid under the Env's guards.
func (e *Env) RunGrid() (*Grid, error) {
	g := &Grid{
		Datasets: GridDatasets,
		Algos:    GridAlgos,
		Cells:    make(map[string]map[string]Measurement),
	}
	for _, ds := range g.Datasets {
		gr, err := e.Dataset(ds)
		if err != nil {
			return nil, err
		}
		queries := e.SampleQueries(gr, DefaultQuerySize)
		g.Cells[ds] = make(map[string]Measurement)
		for _, algo := range g.Algos {
			m, err := e.RunCell(algo, e.Config(DefaultRank), ds, gr, queries)
			if err != nil {
				return nil, err
			}
			g.Cells[ds][algo] = m
		}
	}
	return g, nil
}

// RenderFig2 prints the Figure 2 view: total time per algorithm/dataset.
func (g *Grid) RenderFig2(e *Env) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 2: Total Time on Real Datasets (|Q|=%d, c=%.1f, r=%d)", DefaultQuerySize, DefaultDamping, DefaultRank),
		Header: append([]string{"Dataset", "n", "m"}, g.Algos...),
	}
	for _, ds := range g.Datasets {
		any := g.Cells[ds][g.Algos[0]]
		row := []string{ds, fmt.Sprint(any.N), fmt.Sprint(any.M)}
		for _, algo := range g.Algos {
			row = append(row, fmtCellTime(g.Cells[ds][algo]))
		}
		t.AddRow(row...)
	}
	t.Render(e.Out)
}

// RenderFig6 prints the Figure 6 view: total (peak analytic) memory.
func (g *Grid) RenderFig6(e *Env) {
	t := &Table{
		Title:  "Figure 6: Total Memory on Real Datasets (analytic peak bytes)",
		Header: append([]string{"Dataset"}, g.Algos...),
	}
	for _, ds := range g.Datasets {
		row := []string{ds}
		for _, algo := range g.Algos {
			row = append(row, fmtCellBytes(g.Cells[ds][algo]))
		}
		t.AddRow(row...)
	}
	t.Render(e.Out)
}

package bench

// csweep.go is an extension experiment: sensitivity of CSR+ to the
// damping factor c, which the paper fixes at 0.6 (and cites 0.8 as the
// other common choice). Larger c weights longer meeting paths more
// heavily, so the series converges slower (more squaring iterations) and
// the rank-r truncation error grows — both effects are measured here.

import (
	"fmt"
	"time"

	"csrplus/internal/baseline"
	"csrplus/internal/core"
	"csrplus/internal/svd"
)

// CSweepCell is one damping-factor measurement.
type CSweepCell struct {
	C          float64
	Iterations int           // repeated-squaring steps at eps = 1e-5
	Precompute time.Duration // CSR+ phase I
	AvgDiff    float64       // vs exact CoSimRank at the same c
}

// CSweepResult maps dataset -> per-c cells.
type CSweepResult struct {
	Datasets []string
	Cs       []float64
	Cells    map[string][]CSweepCell
}

// DefaultDampings sweeps around the paper's default.
var DefaultDampings = []float64{0.2, 0.4, 0.6, 0.8}

// RunCSweep measures CSR+ across damping factors on the two full-size
// datasets, comparing to the exact reference at matching c.
func (e *Env) RunCSweep(cs []float64) (*CSweepResult, error) {
	if len(cs) == 0 {
		cs = DefaultDampings
	}
	res := &CSweepResult{Datasets: Table3Datasets, Cs: cs,
		Cells: make(map[string][]CSweepCell)}
	for _, ds := range res.Datasets {
		g, err := e.Dataset(ds)
		if err != nil {
			return nil, err
		}
		queries := e.SampleQueries(g, 20)
		for _, c := range cs {
			cell := CSweepCell{C: c, Iterations: core.SquaringIterations(c, 1e-5)}
			ex := baseline.NewExact(baseline.Config{Damping: c, Eps: 1e-9})
			if err := ex.Precompute(g); err != nil {
				return nil, err
			}
			want, err := ex.Query(queries)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			ix, err := core.Precompute(g, core.Options{Damping: c, Rank: DefaultRank,
				SVD: svd.Options{Seed: 42}})
			if err != nil {
				return nil, fmt.Errorf("bench: csweep %s c=%v: %w", ds, c, err)
			}
			cell.Precompute = time.Since(start)
			got, err := ix.Query(queries, nil)
			if err != nil {
				return nil, err
			}
			if cell.AvgDiff, err = baseline.AvgDiff(got, want); err != nil {
				return nil, err
			}
			res.Cells[ds] = append(res.Cells[ds], cell)
			e.progress("CSR+ csweep %-4s c=%.1f pre=%v avgdiff=%.3e",
				ds, c, cell.Precompute.Round(time.Millisecond), cell.AvgDiff)
		}
	}
	return res, nil
}

// Render prints the damping sweep.
func (r *CSweepResult) Render(e *Env) {
	t := &Table{
		Title:  "Extension: effect of damping factor c on CSR+ (r=5, eps=1e-5, 20 queries)",
		Header: []string{"Dataset", "c", "squaring iters", "precompute", "AvgDiff vs exact"},
	}
	for _, ds := range r.Datasets {
		for _, cell := range r.Cells[ds] {
			t.AddRow(ds, fmt.Sprintf("%.1f", cell.C), fmt.Sprint(cell.Iterations),
				fmtDuration(cell.Precompute), fmt.Sprintf("%.4e", cell.AvgDiff))
		}
	}
	t.Render(e.Out)
}

package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func quickEnv(buf *bytes.Buffer) *Env {
	return NewEnv(buf).Quick()
}

func TestEnvDatasetCaching(t *testing.T) {
	e := quickEnv(nil)
	g1, err := e.Dataset("FB")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := e.Dataset("FB")
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("dataset not cached")
	}
	if g1.N() < 400 {
		t.Fatalf("quick FB too small: n=%d", g1.N())
	}
	if _, err := e.Dataset("NOPE"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestSampleQueries(t *testing.T) {
	e := quickEnv(nil)
	g, err := e.Dataset("FB")
	if err != nil {
		t.Fatal(err)
	}
	q1 := e.SampleQueries(g, 50)
	q2 := e.SampleQueries(g, 50)
	if len(q1) != 50 {
		t.Fatalf("got %d queries", len(q1))
	}
	for i := range q1 {
		if q1[i] != q2[i] {
			t.Fatal("query sampling not deterministic")
		}
		if i > 0 && q1[i] <= q1[i-1] {
			t.Fatal("queries not distinct/sorted")
		}
	}
	// q > n clamps.
	if got := e.SampleQueries(g, g.N()+100); len(got) != g.N() {
		t.Fatalf("clamp failed: %d", len(got))
	}
}

func TestRunCellMeasures(t *testing.T) {
	e := quickEnv(nil)
	g, err := e.Dataset("FB")
	if err != nil {
		t.Fatal(err)
	}
	queries := e.SampleQueries(g, 10)
	m, err := e.RunCell("CSR+", e.Config(5), "FB", g, queries)
	if err != nil {
		t.Fatal(err)
	}
	if m.Skipped {
		t.Fatalf("CSR+ skipped: %s", m.Reason)
	}
	if m.PrecompTime <= 0 || m.QueryTime <= 0 {
		t.Fatalf("times not measured: %+v", m)
	}
	if m.PrecompBytes <= 0 || m.QueryBytes <= 0 || m.PeakBytes <= 0 {
		t.Fatalf("bytes not measured: %+v", m)
	}
	if m.TotalTime() != m.PrecompTime+m.QueryTime {
		t.Fatal("TotalTime wrong")
	}
}

func TestRunCellMemGuard(t *testing.T) {
	e := quickEnv(nil)
	e.MemBudget = 1 // everything over budget
	g, err := e.Dataset("FB")
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.RunCell("CSR-IT", e.Config(5), "FB", g, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Skipped || m.Reason != "MEM" {
		t.Fatalf("guard did not trip: %+v", m)
	}
	if m.EstBytes <= 0 {
		t.Fatal("estimate not recorded")
	}
}

func TestRunCellTimeGuard(t *testing.T) {
	e := quickEnv(nil)
	e.FlopBudget = 1
	g, err := e.Dataset("FB")
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.RunCell("CSR-RLS", e.Config(5), "FB", g, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Skipped || m.Reason != "TIME" {
		t.Fatalf("guard did not trip: %+v", m)
	}
}

func TestRunCellUnknownAlgo(t *testing.T) {
	e := quickEnv(nil)
	g, err := e.Dataset("FB")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunCell("bogus", e.Config(5), "FB", g, []int{0}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunGridShape(t *testing.T) {
	var buf bytes.Buffer
	e := quickEnv(&buf)
	grid, err := e.RunGrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Cells) != len(GridDatasets) {
		t.Fatalf("cells for %d datasets", len(grid.Cells))
	}
	// CSR+ must run everywhere; the paper's headline.
	for _, ds := range grid.Datasets {
		m := grid.Cells[ds]["CSR+"]
		if m.Skipped {
			t.Fatalf("CSR+ skipped on %s (%s)", ds, m.Reason)
		}
	}
	// The quadratic methods must trip a guard on the largest stand-ins.
	for _, algo := range []string{"CSR-IT", "CSR-NI"} {
		if m := grid.Cells["TW"][algo]; !m.Skipped {
			t.Fatalf("%s unexpectedly ran on TW under quick budget", algo)
		}
	}
	// The paper's "CSR+ wins by orders of magnitude" shows at realistic
	// scale (the full csrbench run recorded in EXPERIMENTS.md); on the
	// few-hundred-node quick stand-ins, fixed SVD overhead can let a
	// trivial baseline tie. Sanity band only: no surviving rival may beat
	// CSR+ by more than 5x here.
	for _, ds := range grid.Datasets {
		best := grid.Cells[ds]["CSR+"].TotalTime()
		for _, algo := range []string{"CSR-RLS", "CSR-IT", "CSR-NI"} {
			m := grid.Cells[ds][algo]
			if !m.Skipped && m.TotalTime()*5 < best {
				t.Fatalf("%s beat CSR+ 5x on %s (%v vs %v)", algo, ds, m.TotalTime(), best)
			}
		}
	}
	grid.RenderFig2(e)
	grid.RenderFig6(e)
	out := buf.String()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "Figure 6") {
		t.Fatalf("renders missing headers:\n%s", out)
	}
	if !strings.Contains(out, "✗") {
		t.Fatal("no guard markers rendered")
	}
}

func TestRunPhaseSweep(t *testing.T) {
	var buf bytes.Buffer
	e := quickEnv(&buf)
	s, err := e.RunPhaseSweep([]int{10, 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range s.Datasets {
		if len(s.QueryCells[ds]) != 2 {
			t.Fatalf("%s: %d cells", ds, len(s.QueryCells[ds]))
		}
		// Query memory grows with |Q| (Figure 7's observation).
		if s.QueryCells[ds][1].QueryBytes <= s.QueryCells[ds][0].QueryBytes {
			t.Fatalf("%s: query bytes not growing with |Q|", ds)
		}
		if s.Pre[ds].PrecompTime <= 0 {
			t.Fatalf("%s: no precompute time", ds)
		}
	}
	s.RenderFig3(e)
	s.RenderFig7(e)
	if !strings.Contains(buf.String(), "Figure 3") || !strings.Contains(buf.String(), "Figure 7") {
		t.Fatal("phase renders missing")
	}
}

func TestRunRankSweep(t *testing.T) {
	var buf bytes.Buffer
	e := quickEnv(&buf)
	s, err := e.RunRankSweep([]int{3, 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range s.Datasets {
		cells := s.Cells[ds]["CSR+"]
		if len(cells) != 2 {
			t.Fatalf("%s: %d rank cells", ds, len(cells))
		}
		for _, m := range cells {
			if m.Skipped {
				t.Fatalf("CSR+ skipped on %s at r=%d", ds, m.Rank)
			}
		}
		// CSR+ memory grows with rank (Figure 8: "gently increases").
		if cells[1].PeakBytes <= cells[0].PeakBytes {
			t.Fatalf("%s: CSR+ memory flat across ranks", ds)
		}
	}
	s.RenderFig4(e)
	s.RenderFig8(e)
	if !strings.Contains(buf.String(), "Figure 4") || !strings.Contains(buf.String(), "Figure 8") {
		t.Fatal("rank sweep renders missing")
	}
}

func TestRunQuerySweep(t *testing.T) {
	var buf bytes.Buffer
	e := quickEnv(&buf)
	s, err := e.RunQuerySweep([]int{10, 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range s.Datasets {
		cp := s.Cells[ds]["CSR+"]
		// CSR+ total time is |Q|-insensitive: precompute dominates.
		if cp[1].Skipped || cp[0].Skipped {
			t.Fatalf("%s: CSR+ skipped", ds)
		}
		rls := s.Cells[ds]["CSR-RLS"]
		if !rls[0].Skipped && !rls[1].Skipped {
			// RLS query time grows with |Q| (Figure 5's observation);
			// allow generous noise on tiny quick-mode graphs.
			if rls[1].QueryTime < rls[0].QueryTime/2 {
				t.Fatalf("%s: RLS query time shrank with 4x |Q|", ds)
			}
		}
	}
	s.RenderFig5(e)
	s.RenderFig9(e)
	if !strings.Contains(buf.String(), "Figure 5") || !strings.Contains(buf.String(), "Figure 9") {
		t.Fatal("query sweep renders missing")
	}
}

func TestRunTable3(t *testing.T) {
	var buf bytes.Buffer
	e := quickEnv(&buf)
	res, err := e.RunTable3([]int{10, 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range res.Datasets {
		cells := res.Cells[ds]
		if len(cells) != 2 {
			t.Fatalf("%s: %d cells", ds, len(cells))
		}
		// Table 3's trend (AvgDiff shrinking with rank) is asserted
		// precisely in internal/core on controlled graphs; the tiny
		// quick-mode stand-ins only support a coarse sanity band here.
		if cells[1].AvgDiff > cells[0].AvgDiff*3+1e-12 {
			t.Fatalf("%s: AvgDiff exploded with rank: %v -> %v",
				ds, cells[0].AvgDiff, cells[1].AvgDiff)
		}
		for _, c := range cells {
			if c.AvgDiff < 0 {
				t.Fatalf("negative AvgDiff %v", c.AvgDiff)
			}
			if c.NIRan && c.NIAvgDiff < 0 {
				t.Fatalf("negative NI AvgDiff")
			}
		}
	}
	res.Render(e)
	if !strings.Contains(buf.String(), "Table 3") {
		t.Fatal("table 3 render missing")
	}
}

func TestRenderTable1(t *testing.T) {
	var buf bytes.Buffer
	RenderTable1(&buf)
	out := buf.String()
	for _, want := range []string{"CSR+", "O(rn)", "F-CoSim", "CoSimMate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTableRender(t *testing.T) {
	var buf bytes.Buffer
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow("xxx", "y")
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "xxx") {
		t.Fatalf("render = %q", out)
	}
	// nil writer must not panic.
	tb.Render(nil)
}

func TestFmtDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{1500 * time.Millisecond, "1.50s"},
		{2500 * time.Microsecond, "2.50ms"},
		{700 * time.Microsecond, "700µs"},
	}
	for _, c := range cases {
		if got := fmtDuration(c.d); got != c.want {
			t.Fatalf("fmtDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestRunAblation(t *testing.T) {
	var buf bytes.Buffer
	e := quickEnv(&buf)
	res, err := e.RunAblation([]int{3, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range res.Datasets {
		if len(res.Solver[ds]) != 6 { // 2 ranks x 3 solvers
			t.Fatalf("%s: %d solver cells", ds, len(res.Solver[ds]))
		}
		for _, c := range res.Solver[ds] {
			if !c.Skipped && c.Time <= 0 {
				t.Fatalf("%s: unmeasured cell %+v", ds, c)
			}
		}
		if len(res.Query[ds]) != 2 || len(res.SVD[ds]) != 2 {
			t.Fatalf("%s: query/svd cells %d/%d", ds, len(res.Query[ds]), len(res.SVD[ds]))
		}
	}
	res.Render(e)
	out := buf.String()
	for _, want := range []string{"subspace solver", "query route", "SVD driver"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation render missing %q", want)
		}
	}
}

func TestRunRankEval(t *testing.T) {
	var buf bytes.Buffer
	e := quickEnv(&buf)
	res, err := e.RunRankEval([]int{5, 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range res.Datasets {
		cells := res.Cells[ds]
		if len(cells) != 2 {
			t.Fatalf("%s: %d cells", ds, len(cells))
		}
		for _, c := range cells {
			if c.PrecisionAt < 0 || c.PrecisionAt > 1 || c.NDCGAt < 0 || c.NDCGAt > 1.000001 {
				t.Fatalf("%s: metric out of range %+v", ds, c)
			}
			if c.Spearman < -1 || c.Spearman > 1 {
				t.Fatalf("%s: spearman out of range %+v", ds, c)
			}
		}
		// Higher rank should not make ranking quality much worse.
		if cells[1].NDCGAt < cells[0].NDCGAt-0.15 {
			t.Fatalf("%s: NDCG collapsed with rank: %+v", ds, cells)
		}
	}
	res.Render(e)
	if !strings.Contains(buf.String(), "ranking quality") {
		t.Fatal("rankeval render missing")
	}
}

func TestRenderDatasets(t *testing.T) {
	var buf bytes.Buffer
	e := quickEnv(&buf)
	if err := e.RenderDatasets(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, key := range GridDatasets {
		if !strings.Contains(out, key) {
			t.Fatalf("dataset table missing %s:\n%s", key, out)
		}
	}
	// The social/web stand-ins must register as heavy-tailed.
	if !strings.Contains(out, "true") {
		t.Fatal("no heavy-tailed stand-in detected")
	}
}

func TestDatasetDiskCache(t *testing.T) {
	dir := t.TempDir()
	e1 := quickEnv(nil)
	e1.CacheDir = dir
	g1, err := e1.Dataset("P2P")
	if err != nil {
		t.Fatal(err)
	}
	// A second Env with the same CacheDir must load from disk and get the
	// identical structure.
	e2 := quickEnv(nil)
	e2.CacheDir = dir
	g2, err := e2.Dataset("P2P")
	if err != nil {
		t.Fatal(err)
	}
	if g1.N() != g2.N() || g1.M() != g2.M() {
		t.Fatalf("cache round trip changed graph: %d/%d vs %d/%d",
			g1.N(), g1.M(), g2.N(), g2.M())
	}
	// Corrupt cache entries are ignored, not fatal.
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache files written (err=%v)", err)
	}
	for _, ent := range entries {
		if err := os.WriteFile(filepath.Join(dir, ent.Name()), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	e3 := quickEnv(nil)
	e3.CacheDir = dir
	if _, err := e3.Dataset("P2P"); err != nil {
		t.Fatalf("corrupt cache broke generation: %v", err)
	}
}

func TestProgressHeartbeat(t *testing.T) {
	var progress bytes.Buffer
	e := quickEnv(nil)
	e.Progress = &progress
	g, err := e.Dataset("FB")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunCell("CSR+", e.Config(5), "FB", g, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	e.MemBudget = 1
	if _, err := e.RunCell("CSR-IT", e.Config(5), "FB", g, []int{0}); err != nil {
		t.Fatal(err)
	}
	out := progress.String()
	if !strings.Contains(out, "CSR+") || !strings.Contains(out, "pre=") {
		t.Fatalf("no run heartbeat:\n%s", out)
	}
	if !strings.Contains(out, "skipped (MEM") {
		t.Fatalf("no skip heartbeat:\n%s", out)
	}
}

func TestRunCSweep(t *testing.T) {
	var buf bytes.Buffer
	e := quickEnv(&buf)
	res, err := e.RunCSweep([]float64{0.3, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range res.Datasets {
		cells := res.Cells[ds]
		if len(cells) != 2 {
			t.Fatalf("%s: %d cells", ds, len(cells))
		}
		// Larger c needs more squaring iterations.
		if cells[1].Iterations <= cells[0].Iterations {
			t.Fatalf("%s: iterations %d -> %d not increasing with c",
				ds, cells[0].Iterations, cells[1].Iterations)
		}
		for _, cell := range cells {
			if cell.AvgDiff < 0 || cell.Precompute <= 0 {
				t.Fatalf("%s: bad cell %+v", ds, cell)
			}
		}
	}
	res.Render(e)
	if !strings.Contains(buf.String(), "damping factor") {
		t.Fatal("csweep render missing")
	}
}

package dense

import (
	"math/rand"
	"strings"
	"testing"
)

func TestStringSmallAndLarge(t *testing.T) {
	small := NewMatFrom(1, 2, []float64{1.5, -2})
	if s := small.String(); !strings.Contains(s, "1.5") {
		t.Fatalf("String() = %q", s)
	}
	big := NewMat(50, 50)
	if s := big.String(); !strings.Contains(s, "Mat(50x50)") {
		t.Fatalf("large String() = %q", s)
	}
}

func TestColReuseBuffer(t *testing.T) {
	m := NewMatFrom(2, 2, []float64{1, 2, 3, 4})
	buf := make([]float64, 2)
	got := m.Col(1, buf)
	if &got[0] != &buf[0] {
		t.Fatal("Col did not reuse buffer")
	}
	if got[0] != 2 || got[1] != 4 {
		t.Fatalf("Col = %v", got)
	}
}

func TestSliceRowsPanics(t *testing.T) {
	m := NewMat(3, 2)
	for _, c := range [][2]int{{-1, 2}, {0, 4}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SliceRows(%d, %d) did not panic", c[0], c[1])
				}
			}()
			m.SliceRows(c[0], c[1])
		}()
	}
}

func TestBinaryOpShapePanics(t *testing.T) {
	a := NewMat(2, 3)
	b := NewMat(3, 2)
	cases := []struct {
		name string
		f    func()
	}{
		{"AddInPlace", func() { a.Clone().AddInPlace(b) }},
		{"Sub", func() { a.Sub(b) }},
		{"MulT", func() { MulT(a, NewMat(2, 4)) }},
		{"TMul", func() { TMul(a, NewMat(3, 2)) }},
		{"MulVec", func() { MulVec(a, make([]float64, 2)) }},
		{"Dot", func() { Dot(make([]float64, 2), make([]float64, 3)) }},
		{"Axpy", func() { Axpy(1, make([]float64, 2), make([]float64, 3)) }},
		{"Unvec", func() { Unvec(make([]float64, 5), 2, 3) }},
		{"ScaleColumns-mismatch", func() { NewMat(2, 2).Set(9, 9, 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.f()
		})
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if NewMat(2, 2).Equal(NewMat(2, 3), 1) {
		t.Fatal("different shapes reported equal")
	}
}

func TestBytes(t *testing.T) {
	if got := NewMat(3, 4).Bytes(); got != 3*4*8 {
		t.Fatalf("Bytes = %d", got)
	}
}

func TestFrobNormEmptyAndLarge(t *testing.T) {
	if NewMat(0, 0).FrobNorm() != 0 {
		t.Fatal("empty FrobNorm != 0")
	}
	// Scaled accumulation must survive entries near overflow.
	m := NewMatFrom(1, 2, []float64{1e200, 1e200})
	got := m.FrobNorm()
	if got <= 1e200 || got > 1e201 {
		t.Fatalf("FrobNorm = %g", got)
	}
}

func TestLUSolveVecLengthMismatch(t *testing.T) {
	f, err := Factorize(Eye(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SolveVec(make([]float64, 2)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := f.Solve(NewMat(2, 2)); err == nil {
		t.Fatal("rhs shape mismatch accepted")
	}
}

func TestLUSolveMatrixRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	a := randMat(rng, 6, 6)
	a.AddEye(4)
	x := randMat(rng, 6, 3)
	b := Mul(a, x)
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(x, 1e-9) {
		t.Fatal("matrix solve wrong")
	}
}

func TestOrthonormalizeDefaultTolAndZero(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	a := randMat(rng, 10, 3)
	q, err := Orthonormalize(a, 0) // default tol path
	if err != nil {
		t.Fatal(err)
	}
	checkOrthonormalCols(t, q, 1e-9)
	// All-zero input: r00 == 0 fallback plus column substitution.
	z, err := Orthonormalize(NewMat(5, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	checkOrthonormalCols(t, z, 1e-9)
}

func TestKronEmptyAndIdentity(t *testing.T) {
	// I ⊗ I = I.
	if !Kron(Eye(2), Eye(3)).Equal(Eye(6), 0) {
		t.Fatal("I ⊗ I != I")
	}
}

func TestMulTransposeIdentity(t *testing.T) {
	// Q Qᵀ for orthonormal-column Q built by QR.
	rng := rand.New(rand.NewSource(82))
	a := randMat(rng, 12, 4)
	q, _, err := QRThin(a)
	if err != nil {
		t.Fatal(err)
	}
	if !TMul(q, q).Equal(Eye(4), 1e-10) {
		t.Fatal("QᵀQ != I")
	}
}

package dense

import "sync/atomic"

// dotAsmDisabled lets tests force the pure-Go micro-kernels on builds
// that carry the assembly ones, so the two implementations can be
// differentially compared bit for bit (see SetGenericKernels in
// export_test.go). Atomic because kernels run inside par workers while
// a test may flip the flag between cases.
var dotAsmDisabled atomic.Bool

// useDotAsm reports whether the packed SSE2 micro-kernels should be
// used: compiled in (amd64) and not disabled by a test.
func useDotAsm() bool { return dotAsmAvailable && !dotAsmDisabled.Load() }

// packBPairs interleaves `pairs` couples of adjacent b rows, restricted
// to k ∈ [klo, khi), into dst: couple p (rows jlo+2p, jlo+2p+1)
// occupies dst[p·2·kk : (p+1)·2·kk] as kk [b0[t], b1[t]] pairs. This is
// the pack step feeding dotKernel4x2 — pure data movement (no
// arithmetic), so it cannot perturb results. One packed panel is reused
// across every row of a in the caller's range.
func packBPairs(dst []float64, b *Mat, jlo, pairs, klo, khi int) {
	bn := b.Cols
	kk := khi - klo
	for p := 0; p < pairs; p++ {
		j := jlo + 2*p
		b0 := b.Data[j*bn+klo : j*bn+khi]
		b1 := b.Data[(j+1)*bn+klo : (j+1)*bn+khi]
		out := dst[p*2*kk : (p+1)*2*kk]
		for t, v := range b0 {
			out[2*t] = v
			out[2*t+1] = b1[t]
		}
	}
}

// mulTDotAsm is mulTDot's amd64 body: the same MC×NC×KC panelling, but
// the full 4×2 tiles run the packed SSE2 micro-kernel. The j and k
// panel loops are hoisted outside the i sweep so each packed b panel is
// built once and reused by every row band; for an output element the k
// panels still arrive in ascending order with exact accumulator spills
// into out, so per-element accumulation order — and hence every bit —
// matches the pure-Go path and the reference.
func mulTDotAsm(out, a, b *Mat, rank, lo, hi int) {
	m := b.Rows
	fast := rank <= kcPanel && m <= ncPanel
	if !fast {
		for i := lo; i < hi; i++ {
			orow := out.Data[i*m : (i+1)*m]
			for j := range orow {
				orow[j] = 0
			}
		}
	}
	// Serving shapes (|Q| pairs × rank ≤ 64) pack into a few KiB; keep
	// that on the stack so the query hot path stays allocation-free.
	var stack [4096]float64
	var pack []float64
	for jlo := 0; jlo < m; jlo += ncPanel {
		jhi := min(jlo+ncPanel, m)
		pairs := (jhi - jlo) / 2
		for klo := 0; klo < rank; klo += kcPanel {
			khi := min(klo+kcPanel, rank)
			kk := khi - klo
			need := pairs * 2 * kk
			switch {
			case need <= len(stack):
				pack = stack[:need]
			case cap(pack) >= need:
				pack = pack[:need]
			default:
				pack = make([]float64, need)
			}
			packBPairs(pack, b, jlo, pairs, klo, khi)
			for ilo := lo; ilo < hi; ilo += mcPanel {
				ihi := min(ilo+mcPanel, hi)
				mulTBlockAsm(out, a, b, pack, ilo, ihi, jlo, jhi, klo, khi, fast)
			}
		}
	}
}

// mulTBlockAsm is mulTBlock with the full 4×2 tiles dispatched to
// dotKernel4x2 against the packed b panel. Column and row edges reuse
// the pure-Go edge kernels — they are bitwise-identical by the same
// structural argument, so mixing implementations inside one output is
// sound.
func mulTBlockAsm(out, a, b *Mat, pack []float64, ilo, ihi, jlo, jhi, klo, khi int, zero bool) {
	an, m := a.Cols, b.Rows
	kk := khi - klo
	acc := int64(1)
	if zero {
		acc = 0
	}
	pairs := (jhi - jlo) / 2
	i := ilo
	for ; i+mr <= ihi; i += mr {
		for p := 0; p < pairs; p++ {
			j := jlo + 2*p
			dotKernel4x2(
				&out.Data[(i+0)*m+j], &out.Data[(i+1)*m+j], &out.Data[(i+2)*m+j], &out.Data[(i+3)*m+j],
				&a.Data[(i+0)*an+klo], &a.Data[(i+1)*an+klo], &a.Data[(i+2)*an+klo], &a.Data[(i+3)*an+klo],
				&pack[p*2*kk], int64(kk), acc)
		}
		if j := jlo + 2*pairs; j < jhi {
			a0 := a.Data[(i+0)*an+klo : (i+0)*an+khi]
			a1 := a.Data[(i+1)*an+klo : (i+1)*an+khi]
			a2 := a.Data[(i+2)*an+klo : (i+2)*an+khi]
			a3 := a.Data[(i+3)*an+klo : (i+3)*an+khi]
			o0 := out.Data[(i+0)*m : (i+0)*m+m]
			o1 := out.Data[(i+1)*m : (i+1)*m+m]
			o2 := out.Data[(i+2)*m : (i+2)*m+m]
			o3 := out.Data[(i+3)*m : (i+3)*m+m]
			bj := b.Data[j*b.Cols+klo : j*b.Cols+khi]
			dotTile4x1(o0, o1, o2, o3, j, a0, a1, a2, a3, bj, zero)
		}
	}
	for ; i < ihi; i++ {
		ai := a.Data[i*an+klo : i*an+khi]
		oi := out.Data[i*m : (i+1)*m]
		dotRow(oi, jlo, jhi, ai, b, klo, khi, zero)
	}
}

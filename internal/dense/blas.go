package dense

import (
	"fmt"
	"math"

	"csrplus/internal/par"
)

// Mul returns a*b. It panics if the inner dimensions differ.
//
// The kernel is an ikj-ordered blocked product: the inner loop runs along
// contiguous rows of b and the output, which keeps it vectorisable and
// cache-friendly without assembly. Rows of the output are partitioned
// across par.Workers goroutines for large products; each output element is
// still accumulated by exactly one goroutine in a fixed order, so results
// are bitwise-deterministic at every worker count.
func Mul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("dense: Mul %dx%d * %dx%d: %v", a.Rows, a.Cols, b.Rows, b.Cols, ErrShape))
	}
	out := NewMat(a.Rows, b.Cols)
	mulInto(out, a, b)
	return out
}

func mulInto(out, a, b *Mat) {
	flops := int64(a.Rows) * int64(a.Cols) * int64(b.Cols)
	par.Do(a.Rows, flops, func(lo, hi int) {
		mulRange(out, a, b, lo, hi)
	})
}

// mulRange computes rows [lo, hi) of out = a*b.
func mulRange(out, a, b *Mat, lo, hi int) {
	n, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*p : (i+1)*p]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MulT returns a * bᵀ without materialising bᵀ. This is the query-phase
// GEMM of Algorithm 1 (Z · [U]_{Q,*}ᵀ, shape n x r times (|Q| x r)ᵀ).
func MulT(a, b *Mat) *Mat {
	return MulTInto(nil, a, b)
}

// MulTInto computes a * bᵀ into out, reusing out's backing array when its
// capacity suffices (pass nil to allocate). Any previous contents of out
// are overwritten. It returns the result matrix, which is out itself
// whenever out had capacity.
//
// Output rows are partitioned across par.Workers goroutines; every output
// element is a single dot product accumulated in index order by exactly
// one goroutine, so results are bitwise-deterministic at every worker
// count.
func MulTInto(out, a, b *Mat) *Mat {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("dense: MulT %dx%d * (%dx%d)ᵀ: %v", a.Rows, a.Cols, b.Rows, b.Cols, ErrShape))
	}
	out = out.Reuse(a.Rows, b.Rows)
	flops := int64(a.Rows) * int64(b.Rows) * int64(a.Cols)
	par.Do(a.Rows, flops, func(lo, hi int) {
		mulTRange(out, a, b, lo, hi)
	})
	return out
}

// mulTRange computes rows [lo, hi) of out = a*bᵀ.
func mulTRange(out, a, b *Mat, lo, hi int) {
	n := a.Cols
	for i := lo; i < hi; i++ {
		arow := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*b.Rows : (i+1)*b.Rows]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*n : (j+1)*n]
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}

// MulTRankInto computes a[:, :rank] * (b[:, :rank])ᵀ into out — the
// rank-truncated variant of MulTInto, reading only the leading rank
// columns of both operands (which must share a column count ≥ rank). With
// factor columns ordered by singular value this is how a degraded query
// answers from a cheaper low-rank slice of the same index without
// rebuilding anything. rank ≥ a.Cols delegates to the full kernel.
// Parallelism and determinism match MulTInto: each output element is one
// dot product accumulated in index order by exactly one goroutine.
func MulTRankInto(out, a, b *Mat, rank int) *Mat {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("dense: MulTRank %dx%d * (%dx%d)ᵀ: %v", a.Rows, a.Cols, b.Rows, b.Cols, ErrShape))
	}
	if rank >= a.Cols {
		return MulTInto(out, a, b)
	}
	if rank < 1 {
		panic(fmt.Sprintf("dense: MulTRank rank %d: %v", rank, ErrShape))
	}
	out = out.Reuse(a.Rows, b.Rows)
	flops := int64(a.Rows) * int64(b.Rows) * int64(rank)
	par.Do(a.Rows, flops, func(lo, hi int) {
		mulTRankRange(out, a, b, rank, lo, hi)
	})
	return out
}

// mulTRankRange computes rows [lo, hi) of out = a[:,:rank] * (b[:,:rank])ᵀ.
func mulTRankRange(out, a, b *Mat, rank, lo, hi int) {
	n := a.Cols
	for i := lo; i < hi; i++ {
		arow := a.Data[i*n : i*n+rank]
		orow := out.Data[i*b.Rows : (i+1)*b.Rows]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*n : j*n+rank]
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}

// tmulMaxChunks bounds TMul's reduction grid: at most this many partial
// output buffers exist at once (the deterministic reduction sums them in
// chunk order). tmulMaxPartial bounds their combined footprint in floats,
// so a TMul with a large output never amplifies memory by the full grid.
const (
	tmulMaxChunks  = 64
	tmulMaxPartial = 1 << 22 // 32 MiB of float64 partials
)

// TMul returns aᵀ * b without materialising aᵀ. Its natural loop scatters
// into output rows keyed by columns of a, so row partitioning would race;
// instead the shared-row dimension is cut into a par.Grid of contiguous
// chunks (a function of the problem size only, never of the worker
// count), each chunk accumulates into a private partial buffer, and the
// partials are summed in chunk order. Results are therefore identical at
// every GOMAXPROCS, though — unlike the row-parallel kernels — the
// chunked summation order differs from the pre-chunking serial kernel by
// floating-point rounding.
//
// The kernel is tuned for tall-skinny operands (aᵀb with few columns on
// both sides — H₀ = VᵀUΣ and the SVD's Gram matrix): the partial buffers
// are then tiny next to the O(rows) work.
func TMul(a, b *Mat) *Mat {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("dense: TMul (%dx%d)ᵀ * %dx%d: %v", a.Rows, a.Cols, b.Rows, b.Cols, ErrShape))
	}
	out := NewMat(a.Cols, b.Cols)
	outLen := a.Cols * b.Cols
	flops := int64(a.Rows) * int64(outLen)
	maxChunks := tmulMaxChunks
	if outLen > 0 && tmulMaxPartial/outLen < maxChunks {
		maxChunks = tmulMaxPartial / outLen
	}
	if flops < par.DefaultThreshold || maxChunks < 2 || outLen == 0 {
		tmulRange(out.Data, a, b, 0, a.Rows)
		return out
	}
	// Per-row flops is outLen; size chunks to ≥ ~128k flops each so the
	// grid stays coarse enough to amortise scheduling.
	minChunk := 1 + (1<<17)/outLen
	chunk, count := par.Grid(a.Rows, minChunk, maxChunks)
	if count < 2 {
		tmulRange(out.Data, a, b, 0, a.Rows)
		return out
	}
	partials := make([]float64, count*outLen)
	par.Do(count, flops, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			klo := c * chunk
			khi := min(klo+chunk, a.Rows)
			tmulRange(partials[c*outLen:(c+1)*outLen], a, b, klo, khi)
		}
	})
	for c := 0; c < count; c++ {
		for i, v := range partials[c*outLen : (c+1)*outLen] {
			out.Data[i] += v
		}
	}
	return out
}

// tmulRange accumulates rows [klo, khi) of the shared dimension of aᵀ*b
// into dst (length a.Cols*b.Cols, not cleared first).
func tmulRange(dst []float64, a, b *Mat, klo, khi int) {
	p := b.Cols
	for k := klo; k < khi; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*p : (k+1)*p]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := dst[i*p : (i+1)*p]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MulVec returns a * x as a fresh vector. It panics on dimension mismatch.
func MulVec(a *Mat, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("dense: MulVec %dx%d * vec(%d): %v", a.Rows, a.Cols, len(x), ErrShape))
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Dot returns the inner product of x and y. It panics on length mismatch.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dense: Dot len %d vs %d: %v", len(x), len(y), ErrShape))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			ssq = 1 + ssq*(scale/a)*(scale/a)
			scale = a
		} else {
			ssq += (a / scale) * (a / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y += alpha*x in place. It panics on length mismatch.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dense: Axpy len %d vs %d: %v", len(x), len(y), ErrShape))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleVec multiplies x by alpha in place.
func ScaleVec(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

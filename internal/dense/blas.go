package dense

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// parallelThreshold is the flop count above which GEMM fans out across
// goroutines. Below it the goroutine overhead dominates.
const parallelThreshold = 1 << 20

// Mul returns a*b. It panics if the inner dimensions differ.
//
// The kernel is an ikj-ordered blocked product: the inner loop runs along
// contiguous rows of b and the output, which keeps it vectorisable and
// cache-friendly without assembly. Rows of the output are partitioned
// across GOMAXPROCS goroutines for large products; each output element is
// still accumulated by exactly one goroutine in a fixed order, so results
// are deterministic.
func Mul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("dense: Mul %dx%d * %dx%d: %v", a.Rows, a.Cols, b.Rows, b.Cols, ErrShape))
	}
	out := NewMat(a.Rows, b.Cols)
	mulInto(out, a, b)
	return out
}

func mulInto(out, a, b *Mat) {
	flops := a.Rows * a.Cols * b.Cols
	workers := runtime.GOMAXPROCS(0)
	if flops < parallelThreshold || workers == 1 || a.Rows == 1 {
		mulRange(out, a, b, 0, a.Rows)
		return
	}
	if workers > a.Rows {
		workers = a.Rows
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, a.Rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRange(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// mulRange computes rows [lo, hi) of out = a*b.
func mulRange(out, a, b *Mat, lo, hi int) {
	n, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*p : (i+1)*p]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MulT returns a * bᵀ without materialising bᵀ.
func MulT(a, b *Mat) *Mat {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("dense: MulT %dx%d * (%dx%d)ᵀ: %v", a.Rows, a.Cols, b.Rows, b.Cols, ErrShape))
	}
	out := NewMat(a.Rows, b.Rows)
	n := a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*b.Rows : (i+1)*b.Rows]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*n : (j+1)*n]
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// TMul returns aᵀ * b without materialising aᵀ.
func TMul(a, b *Mat) *Mat {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("dense: TMul (%dx%d)ᵀ * %dx%d: %v", a.Rows, a.Cols, b.Rows, b.Cols, ErrShape))
	}
	out := NewMat(a.Cols, b.Cols)
	p := b.Cols
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*p : (k+1)*p]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*p : (i+1)*p]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns a * x as a fresh vector. It panics on dimension mismatch.
func MulVec(a *Mat, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("dense: MulVec %dx%d * vec(%d): %v", a.Rows, a.Cols, len(x), ErrShape))
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Dot returns the inner product of x and y. It panics on length mismatch.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dense: Dot len %d vs %d: %v", len(x), len(y), ErrShape))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			ssq = 1 + ssq*(scale/a)*(scale/a)
			scale = a
		} else {
			ssq += (a / scale) * (a / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y += alpha*x in place. It panics on length mismatch.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dense: Axpy len %d vs %d: %v", len(x), len(y), ErrShape))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleVec multiplies x by alpha in place.
func ScaleVec(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

package dense

import (
	"fmt"
	"math"

	"csrplus/internal/par"
)

// Mul returns a*b. It panics if the inner dimensions differ.
//
// The kernel packs b once through a blocked transpose (so the reduction
// dimension is contiguous in both operands — the pack step of a classic
// GEMM) and then runs the register-tiled dot micro-kernels in tile.go
// under MC×NC×KC cache blocking. Rows of the output are partitioned
// across par.Workers goroutines on register-tile boundaries; each output
// element is accumulated by exactly one goroutine in ascending-k order —
// the reference order — so results are bitwise-deterministic at every
// worker count and bitwise-equal to reftest.Mul.
func Mul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("dense: Mul %dx%d * %dx%d: %v", a.Rows, a.Cols, b.Rows, b.Cols, ErrShape))
	}
	out := NewMat(a.Rows, b.Cols)
	if a.Rows == 0 || b.Cols == 0 || a.Cols == 0 {
		return out
	}
	bt := b.T()
	flops := int64(a.Rows) * int64(a.Cols) * int64(b.Cols)
	par.DoAligned(a.Rows, mr, flops, func(lo, hi int) {
		mulTDot(out, a, bt, a.Cols, lo, hi)
	})
	return out
}

// MulT returns a * bᵀ without materialising bᵀ. This is the query-phase
// GEMM of Algorithm 1 (Z · [U]_{Q,*}ᵀ, shape n x r times (|Q| x r)ᵀ).
func MulT(a, b *Mat) *Mat {
	return MulTInto(nil, a, b)
}

// MulTInto computes a * bᵀ into out, reusing out's backing array when its
// capacity suffices (pass nil to allocate). Any previous contents of out
// are overwritten. It returns the result matrix, which is out itself
// whenever out had capacity.
//
// The serving shapes (inner dimension = factor rank ≤ 64, |Q| output
// columns) take the register-tiled fast path in tile.go directly; larger
// shapes run the same micro-kernels under cache panelling. Output rows
// are partitioned across par.Workers goroutines on tile boundaries;
// every output element keeps one accumulator advancing in ascending-k
// order inside exactly one goroutine, so results are bitwise-
// deterministic at every worker count and bitwise-equal to reftest.MulT.
func MulTInto(out, a, b *Mat) *Mat {
	return MulTRankInto(out, a, b, a.Cols)
}

// MulTRankInto computes a[:, :rank] * (b[:, :rank])ᵀ into out — the
// rank-truncated variant of MulTInto, reading only the leading rank
// columns of both operands (which must share a column count ≥ rank). With
// factor columns ordered by singular value this is how a degraded query
// answers from a cheaper low-rank slice of the same index without
// rebuilding anything. rank ≥ a.Cols delegates to the full kernel;
// rank 0 yields the zero matrix; negative rank panics. Parallelism and
// determinism match MulTInto: each output element is one dot product
// accumulated in index order by exactly one goroutine.
func MulTRankInto(out, a, b *Mat, rank int) *Mat {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("dense: MulTRank %dx%d * (%dx%d)ᵀ: %v", a.Rows, a.Cols, b.Rows, b.Cols, ErrShape))
	}
	if rank < 0 {
		panic(fmt.Sprintf("dense: MulTRank rank %d: %v", rank, ErrShape))
	}
	if rank > a.Cols {
		rank = a.Cols
	}
	out = out.Reuse(a.Rows, b.Rows)
	if rank == 0 {
		for i := range out.Data {
			out.Data[i] = 0
		}
		return out
	}
	flops := int64(a.Rows) * int64(b.Rows) * int64(rank)
	par.DoAligned(a.Rows, mr, flops, func(lo, hi int) {
		mulTDot(out, a, b, rank, lo, hi)
	})
	return out
}

// tmulMaxChunks bounds TMul's reduction grid: at most this many partial
// output buffers exist at once (the deterministic reduction sums them in
// chunk order). tmulMaxPartial bounds their combined footprint in floats,
// so a TMul with a large output never amplifies memory by the full grid.
const (
	tmulMaxChunks  = 64
	tmulMaxPartial = 1 << 22 // 32 MiB of float64 partials
)

// TMul returns aᵀ * b without materialising aᵀ. Its natural loop scatters
// into output rows keyed by columns of a, so row partitioning would race;
// instead the shared-row dimension is cut into a par.Grid of contiguous
// chunks (a function of the problem size only, never of the worker
// count), each chunk accumulates into a private partial buffer, and the
// partials are summed in chunk order. Results are therefore identical at
// every GOMAXPROCS, though — unlike the row-parallel kernels — the
// chunked summation order differs from the serial reference kernel
// (reftest.TMul) by floating-point rounding; it is bitwise-equal to the
// fixed reordering reftest.TMulChunked at the same chunk length. Below
// the parallel threshold the single-chunk path is bitwise-equal to
// reftest.TMul itself.
//
// Within a chunk, tile.go's register-tiled sweep (tmulRangeTiled) holds
// 4×4 blocks of the output in registers across L1-sized k panels,
// spilling accumulators exactly between panels — per-element
// accumulation order is unchanged from the naive scatter loop.
//
// The kernel is tuned for tall-skinny operands (aᵀb with few columns on
// both sides — H₀ = VᵀUΣ and the SVD's Gram matrix): the partial buffers
// are then tiny next to the O(rows) work.
func TMul(a, b *Mat) *Mat {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("dense: TMul (%dx%d)ᵀ * %dx%d: %v", a.Rows, a.Cols, b.Rows, b.Cols, ErrShape))
	}
	out := NewMat(a.Cols, b.Cols)
	outLen := a.Cols * b.Cols
	flops := int64(a.Rows) * int64(outLen)
	maxChunks := tmulMaxChunks
	if outLen > 0 && tmulMaxPartial/outLen < maxChunks {
		maxChunks = tmulMaxPartial / outLen
	}
	if flops < par.DefaultThreshold || maxChunks < 2 || outLen == 0 {
		tmulRangeTiled(out.Data, a, b, 0, a.Rows)
		return out
	}
	// Per-row flops is outLen; size chunks to ≥ ~128k flops each so the
	// grid stays coarse enough to amortise scheduling.
	minChunk := 1 + (1<<17)/outLen
	chunk, count := par.Grid(a.Rows, minChunk, maxChunks)
	if count < 2 {
		tmulRangeTiled(out.Data, a, b, 0, a.Rows)
		return out
	}
	partials := make([]float64, count*outLen)
	par.Do(count, flops, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			klo := c * chunk
			khi := min(klo+chunk, a.Rows)
			tmulRangeTiled(partials[c*outLen:(c+1)*outLen], a, b, klo, khi)
		}
	})
	for c := 0; c < count; c++ {
		for i, v := range partials[c*outLen : (c+1)*outLen] {
			out.Data[i] += v
		}
	}
	return out
}

// MulVec returns a * x as a fresh vector. It panics on dimension mismatch.
func MulVec(a *Mat, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("dense: MulVec %dx%d * vec(%d): %v", a.Rows, a.Cols, len(x), ErrShape))
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Dot returns the inner product of x and y. It panics on length mismatch.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dense: Dot len %d vs %d: %v", len(x), len(y), ErrShape))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			ssq = 1 + ssq*(scale/a)*(scale/a)
			scale = a
		} else {
			ssq += (a / scale) * (a / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y += alpha*x in place. It panics on length mismatch.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dense: Axpy len %d vs %d: %v", len(x), len(y), ErrShape))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleVec multiplies x by alpha in place.
func ScaleVec(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, r, c int) *Mat {
	m := NewMat(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewMatZeroed(t *testing.T) {
	m := NewMat(3, 4)
	if !m.IsShape(3, 4) {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestNewMatNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMat(-1, 2) did not panic")
		}
	}()
	NewMat(-1, 2)
}

func TestNewMatFromLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatFrom with wrong length did not panic")
		}
	}()
	NewMatFrom(2, 2, []float64{1, 2, 3})
}

func TestAtSetRow(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v, want 7", m.At(1, 2))
	}
	if got := m.Row(1)[2]; got != 7 {
		t.Fatalf("Row(1)[2] = %v, want 7", got)
	}
}

func TestEyeAndDiag(t *testing.T) {
	e := Eye(3)
	d := Diag([]float64{1, 1, 1})
	if !e.Equal(d, 0) {
		t.Fatalf("Eye(3) != Diag(1,1,1)")
	}
	if e.At(0, 1) != 0 || e.At(2, 2) != 1 {
		t.Fatalf("Eye(3) wrong entries")
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMat(rng, 67, 131) // exercise the blocked path across block edges
	mt := m.T()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !m.T().T().Equal(m, 0) {
		t.Fatal("T is not an involution")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMatFrom(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestScaleAddSub(t *testing.T) {
	a := NewMatFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatFrom(2, 2, []float64{4, 3, 2, 1})
	sum := a.Clone().AddInPlace(b)
	want := NewMatFrom(2, 2, []float64{5, 5, 5, 5})
	if !sum.Equal(want, 0) {
		t.Fatalf("AddInPlace = %v", sum)
	}
	if diff := sum.Sub(b); !diff.Equal(a, 0) {
		t.Fatalf("Sub = %v", diff)
	}
	if sc := a.Clone().Scale(2); sc.At(1, 1) != 8 {
		t.Fatalf("Scale: got %v", sc.At(1, 1))
	}
}

func TestAddEye(t *testing.T) {
	a := NewMat(3, 3)
	a.AddEye(2.5)
	for i := 0; i < 3; i++ {
		if a.At(i, i) != 2.5 {
			t.Fatalf("diag[%d] = %v", i, a.At(i, i))
		}
	}
}

func TestAddEyeNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEye on non-square did not panic")
		}
	}()
	NewMat(2, 3).AddEye(1)
}

func TestColSetCol(t *testing.T) {
	m := NewMatFrom(3, 2, []float64{1, 2, 3, 4, 5, 6})
	c := m.Col(1, nil)
	if c[0] != 2 || c[1] != 4 || c[2] != 6 {
		t.Fatalf("Col(1) = %v", c)
	}
	m.SetCol(0, []float64{9, 9, 9})
	if m.At(2, 0) != 9 {
		t.Fatal("SetCol failed")
	}
}

func TestSliceAndPickRows(t *testing.T) {
	m := NewMatFrom(4, 2, []float64{0, 1, 10, 11, 20, 21, 30, 31})
	s := m.SliceRows(1, 3)
	if !s.Equal(NewMatFrom(2, 2, []float64{10, 11, 20, 21}), 0) {
		t.Fatalf("SliceRows = %v", s)
	}
	p := m.PickRows([]int{3, 0})
	if !p.Equal(NewMatFrom(2, 2, []float64{30, 31, 0, 1}), 0) {
		t.Fatalf("PickRows = %v", p)
	}
}

func TestNorms(t *testing.T) {
	m := NewMatFrom(2, 2, []float64{3, 0, 0, -4})
	if got := m.FrobNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("FrobNorm = %v, want 5", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}

func TestHasNaN(t *testing.T) {
	m := NewMat(1, 2)
	if m.HasNaN() {
		t.Fatal("zero matrix reported NaN")
	}
	m.Set(0, 1, math.Inf(1))
	if !m.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func naiveMul(a, b *Mat) *Mat {
	out := NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {7, 7, 7}, {16, 1, 16}, {33, 17, 9}} {
		a := randMat(rng, dims[0], dims[1])
		b := randMat(rng, dims[1], dims[2])
		if got, want := Mul(a, b), naiveMul(a, b); !got.Equal(want, 1e-12) {
			t.Fatalf("Mul mismatch at dims %v", dims)
		}
	}
}

func TestMulParallelPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 130, 120)
	b := randMat(rng, 120, 110)
	if got, want := Mul(a, b), naiveMul(a, b); !got.Equal(want, 1e-10) {
		t.Fatal("parallel Mul mismatch")
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with bad shapes did not panic")
		}
	}()
	Mul(NewMat(2, 3), NewMat(4, 2))
}

func TestMulTAndTMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMat(rng, 6, 8)
	b := randMat(rng, 5, 8)
	if got, want := MulT(a, b), Mul(a, b.T()); !got.Equal(want, 1e-12) {
		t.Fatal("MulT mismatch")
	}
	c := randMat(rng, 6, 4)
	if got, want := TMul(a, c), Mul(a.T(), c); !got.Equal(want, 1e-12) {
		t.Fatal("TMul mismatch")
	}
}

func TestMulVecDotAxpy(t *testing.T) {
	a := NewMatFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	y := MulVec(a, []float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	v := []float64{1, 1}
	Axpy(2, []float64{1, 2}, v)
	if v[0] != 3 || v[1] != 5 {
		t.Fatalf("Axpy = %v", v)
	}
	ScaleVec(0.5, v)
	if v[0] != 1.5 {
		t.Fatalf("ScaleVec = %v", v)
	}
}

// Property: (A*B)*C == A*(B*C) on small random matrices.
func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		p := 1 + r.Intn(8)
		q := 1 + r.Intn(8)
		s := 1 + r.Intn(8)
		a, b, c := randMat(r, n, p), randMat(r, p, q), randMat(r, q, s)
		return Mul(Mul(a, b), c).Equal(Mul(a, Mul(b, c)), 1e-9)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose reverses products, (AB)ᵀ = BᵀAᵀ.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, p, q := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a, b := randMat(r, n, p), randMat(r, p, q)
		return Mul(a, b).T().Equal(Mul(b.T(), a.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

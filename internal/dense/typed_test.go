package dense

import (
	"math"
	"math/rand"
	"testing"
)

func randTyped(t *testing.T, rng *rand.Rand, rows, cols int) *Mat {
	t.Helper()
	m := NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestTypedF64Delegates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randTyped(t, rng, 137, 32)
	b := randTyped(t, rng, 9, 32)
	ty := TypedFromMat(a)
	if &ty.F64[0] != &a.Data[0] {
		t.Fatal("TypedFromMat copied instead of aliasing")
	}
	for _, rank := range []int{0, 1, 7, 32, 100} {
		want := MulTRankInto(nil, a, b, rank)
		got := MulTRankTypedInto(nil, ty, b, rank)
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("rank %d: shape %dx%d, want %dx%d", rank, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i, v := range want.Data {
			if got.Data[i] != v {
				t.Fatalf("rank %d: elem %d = %g, want %g (must be bitwise-identical)", rank, i, got.Data[i], v)
			}
		}
	}
}

// TestTypedQuantizedMatchesDequantReference checks that the banded typed
// GEMM is bitwise-equal to running the plain kernel over a fully
// dequantised copy — the quantisation error lives entirely in the stored
// codes, never in the kernel.
func TestTypedQuantizedMatchesDequantReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// Rows > dequantBandRows to cross a band boundary.
	a := randTyped(t, rng, dequantBandRows+173, 24)
	b := randTyped(t, rng, 6, 24)
	for name, quant := range map[string]func(*Mat) (*Typed, []float64){
		"f32": QuantizeF32, "i8": QuantizeI8,
	} {
		ty, _ := quant(a)
		deq := NewMat(ty.Rows, ty.Cols)
		for i := 0; i < ty.Rows; i++ {
			ty.RowInto(i, deq.Row(i))
		}
		for _, rank := range []int{0, 5, 24} {
			want := MulTRankInto(nil, deq, b, rank)
			got := MulTRankTypedInto(nil, ty, b, rank)
			for i, v := range want.Data {
				if got.Data[i] != v {
					t.Fatalf("%s rank %d: elem %d = %g, want %g", name, rank, i, got.Data[i], v)
				}
			}
		}
	}
}

func TestQuantizeF32ErrorMeasured(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randTyped(t, rng, 300, 8)
	ty, errs := QuantizeF32(m)
	if ty.Kind != F32 || ty.Scale != nil {
		t.Fatalf("kind %v scale %v", ty.Kind, ty.Scale)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			e := math.Abs(m.Data[i*m.Cols+j] - ty.At(i, j))
			if e > errs[j] {
				t.Fatalf("elem (%d,%d): error %g exceeds measured column bound %g", i, j, e, errs[j])
			}
		}
	}
}

func TestQuantizeI8ErrorWithinHalfScale(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := randTyped(t, rng, 400, 6)
	// A zero column and a constant column exercise the edge scales.
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+3] = 0
		m.Data[i*m.Cols+4] = 2.5
	}
	ty, errs := QuantizeI8(m)
	if ty.Kind != I8 || len(ty.Scale) != m.Cols {
		t.Fatalf("kind %v, %d scales", ty.Kind, len(ty.Scale))
	}
	if ty.Scale[3] != 0 || errs[3] != 0 {
		t.Fatalf("zero column: scale %g err %g", ty.Scale[3], errs[3])
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			e := math.Abs(m.Data[i*m.Cols+j] - ty.At(i, j))
			if e > errs[j] {
				t.Fatalf("elem (%d,%d): error %g exceeds measured bound %g", i, j, e, errs[j])
			}
			if errs[j] > ty.Scale[j]/2+1e-15 {
				t.Fatalf("col %d: measured error %g exceeds s/2 = %g", j, errs[j], ty.Scale[j]/2)
			}
		}
	}
}

func TestTypedAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m := randTyped(t, rng, 50, 10)
	ty, _ := QuantizeI8(m)

	idx := []int{3, 49, 0, 3}
	picked := ty.PickRows(idx)
	for k, i := range idx {
		for j := 0; j < ty.Cols; j++ {
			if picked.At(k, j) != ty.At(i, j) {
				t.Fatalf("PickRows(%v) row %d col %d mismatch", idx, k, j)
			}
		}
	}

	view := ty.SliceRowsView(10, 30)
	if view.Rows != 20 || view.Kind != I8 {
		t.Fatalf("view %dx%d kind %v", view.Rows, view.Cols, view.Kind)
	}
	for j := 0; j < ty.Cols; j++ {
		if view.At(0, j) != ty.At(10, j) {
			t.Fatalf("view row 0 col %d mismatch", j)
		}
	}

	mx := ty.ColAbsMax()
	for j, want := range mx {
		got := 0.0
		for i := 0; i < ty.Rows; i++ {
			if a := math.Abs(ty.At(i, j)); a > got {
				got = a
			}
		}
		if got != want {
			t.Fatalf("ColAbsMax[%d] = %g, want %g", j, want, got)
		}
	}

	if got := ty.Bytes(); got != int64(ty.Rows*ty.Cols)+int64(ty.Cols)*8 {
		t.Fatalf("Bytes() = %d", got)
	}
	if F64.ElemSize() != 8 || F32.ElemSize() != 4 || I8.ElemSize() != 1 {
		t.Fatal("ElemSize mismatch")
	}
	if F64.String() != "f64" || F32.String() != "f32" || I8.String() != "int8" {
		t.Fatal("Kind.String mismatch")
	}
}

//go:build !amd64

package dense

// dotAsmAvailable is false off amd64: the pure-Go register-tiled
// kernels in tile.go are the only implementation, and the stubs below
// are never reached (useDotAsm gates every call site).
const dotAsmAvailable = false

func dotKernel4x2(o0, o1, o2, o3, a0, a1, a2, a3, bp *float64, k, acc int64) {
	panic("dense: dotKernel4x2 unavailable on this architecture")
}

func tmulKernel4x2(d0, d1, d2, d3, a0, b0 *float64, astride, bstride, k int64) {
	panic("dense: tmulKernel4x2 unavailable on this architecture")
}

package dense

import "fmt"

// Kron returns the Kronecker (tensor) product a ⊗ b: a (p x q) and b (r x s)
// produce the (p*r) x (q*s) matrix of Definition 2.2 in the paper.
//
// This is the operator whose explicit materialisation makes the CSR-NI
// baseline unscalable; CSR+ exists to avoid calling it on anything larger
// than r x r. The implementation is kept simple and allocation-exact so the
// memory accountant can attribute its true cost.
func Kron(a, b *Mat) *Mat {
	p, q, r, s := a.Rows, a.Cols, b.Rows, b.Cols
	out := NewMat(p*r, q*s)
	for i := 0; i < p; i++ {
		for j := 0; j < q; j++ {
			aij := a.At(i, j)
			if aij == 0 {
				continue
			}
			for k := 0; k < r; k++ {
				dst := out.Data[(i*r+k)*out.Cols+j*s:]
				brow := b.Data[k*s : (k+1)*s]
				for l, bv := range brow {
					dst[l] = aij * bv
				}
			}
		}
	}
	return out
}

// KronBytes returns the number of bytes an explicit Kron(a, b) would
// allocate, without allocating it. Used by the memory-budget guard.
func KronBytes(aRows, aCols, bRows, bCols int) int64 {
	return int64(aRows) * int64(bRows) * int64(aCols) * int64(bCols) * 8
}

// Vec stacks the columns of x into a single column vector, per
// Definition 2.1: vec(X)[j*rows+i] = X[i, j].
func Vec(x *Mat) []float64 {
	v := make([]float64, x.Rows*x.Cols)
	for j := 0; j < x.Cols; j++ {
		for i := 0; i < x.Rows; i++ {
			v[j*x.Rows+i] = x.At(i, j)
		}
	}
	return v
}

// Unvec reverses Vec: it reshapes a rows*cols vector into a rows x cols
// matrix, column by column. It panics if len(v) != rows*cols.
func Unvec(v []float64, rows, cols int) *Mat {
	if len(v) != rows*cols {
		panic(fmt.Sprintf("dense: Unvec len %d into %dx%d: %v", len(v), rows, cols, ErrShape))
	}
	m := NewMat(rows, cols)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			m.Set(i, j, v[j*rows+i])
		}
	}
	return m
}

// VecEye returns vec(I_n) without building I_n: a length-n² vector with 1s
// at positions j*n+j.
func VecEye(n int) []float64 {
	v := make([]float64, n*n)
	for j := 0; j < n; j++ {
		v[j*n+j] = 1
	}
	return v
}

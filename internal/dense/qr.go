package dense

import (
	"fmt"
	"math"
)

// QRThin computes the thin QR factorisation of an m x n matrix a (m >= n)
// using Householder reflections: a = Q R with Q (m x n) having orthonormal
// columns and R (n x n) upper triangular.
//
// The randomized truncated SVD uses this as its range orthonormaliser; it
// replaces MATLAB's qr(Y, 0).
func QRThin(a *Mat) (q, r *Mat, err error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, nil, fmt.Errorf("dense: QRThin %dx%d needs rows >= cols: %w", m, n, ErrShape)
	}
	work := a.Clone()
	// betas[k] and the essential part of each Householder vector (stored
	// below the diagonal of work) define Q implicitly.
	betas := make([]float64, n)
	for k := 0; k < n; k++ {
		// Build the Householder vector for column k.
		normx := 0.0
		for i := k; i < m; i++ {
			v := work.At(i, k)
			normx += v * v
		}
		normx = math.Sqrt(normx)
		if normx == 0 {
			betas[k] = 0
			continue
		}
		alpha := work.At(k, k)
		sign := 1.0
		if alpha < 0 {
			sign = -1.0
		}
		v1 := alpha + sign*normx
		betas[k] = sign * v1 / normx // = vᵀv / (2 * normx * v1) normalised form below
		// Store v/v1 below diagonal; diagonal of R gets -sign*normx.
		for i := k + 1; i < m; i++ {
			work.Set(i, k, work.At(i, k)/v1)
		}
		work.Set(k, k, -sign*normx)
		// Apply reflector to remaining columns: A -= beta * v (vᵀ A).
		beta := betas[k]
		for j := k + 1; j < n; j++ {
			s := work.At(k, j) // v_k = 1 implicitly
			for i := k + 1; i < m; i++ {
				s += work.At(i, k) * work.At(i, j)
			}
			s *= beta
			work.Set(k, j, work.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				work.Set(i, j, work.At(i, j)-s*work.At(i, k))
			}
		}
	}
	// Extract R.
	r = NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, work.At(i, j))
		}
	}
	// Accumulate thin Q by applying reflectors to I_{m x n}, backwards.
	q = NewMat(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for k := n - 1; k >= 0; k-- {
		beta := betas[k]
		if beta == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			s := q.At(k, j)
			for i := k + 1; i < m; i++ {
				s += work.At(i, k) * q.At(i, j)
			}
			s *= beta
			q.Set(k, j, q.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				q.Set(i, j, q.At(i, j)-s*work.At(i, k))
			}
		}
	}
	return q, r, nil
}

// Orthonormalize returns a matrix with orthonormal columns spanning the
// column space of a, dropping numerically dependent columns. It is QRThin
// followed by a rank check on R's diagonal: columns whose |r_kk| falls
// below tol * |r_00| are replaced by fresh unit vectors orthogonal to the
// rest (deterministic coordinate vectors re-orthogonalised by modified
// Gram-Schmidt), so the result always has full column rank.
func Orthonormalize(a *Mat, tol float64) (*Mat, error) {
	q, r, err := QRThin(a)
	if err != nil {
		return nil, err
	}
	if tol <= 0 {
		tol = 1e-12
	}
	r00 := math.Abs(r.At(0, 0))
	if r00 == 0 {
		r00 = 1
	}
	for k := 0; k < r.Rows; k++ {
		if math.Abs(r.At(k, k)) > tol*r00 {
			continue
		}
		// Deficient column: substitute a coordinate vector orthogonalised
		// against all current columns (two MGS passes for stability).
		col := make([]float64, q.Rows)
		for e := 0; e < q.Rows; e++ {
			for i := range col {
				col[i] = 0
			}
			col[e] = 1
			for pass := 0; pass < 2; pass++ {
				for j := 0; j < q.Cols; j++ {
					if j == k {
						continue
					}
					d := 0.0
					for i := 0; i < q.Rows; i++ {
						d += q.At(i, j) * col[i]
					}
					for i := 0; i < q.Rows; i++ {
						col[i] -= d * q.At(i, j)
					}
				}
			}
			if nrm := Norm2(col); nrm > 1e-8 {
				ScaleVec(1/nrm, col)
				q.SetCol(k, col)
				break
			}
		}
	}
	return q, nil
}

// Package dense implements the dense linear-algebra kernels that the CSR+
// reproduction depends on: a row-major float64 matrix type, blocked
// matrix-matrix products, Householder QR, one-sided Jacobi SVD, a symmetric
// Jacobi eigensolver, Kronecker (tensor) products, the vec(*) operator, and
// assorted norms and solvers.
//
// The package replaces the MATLAB dense kernels used by the paper's
// implementation. Everything is stdlib-only and deterministic: the
// parallel kernels (scheduled through internal/par) either give each
// output element to exactly one goroutine in a fixed accumulation order,
// or reduce over a chunk grid chosen from the problem size alone — so
// the same input yields the same bits at every GOMAXPROCS.
package dense

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned (wrapped) when matrix dimensions do not conform.
var ErrShape = errors.New("dense: dimension mismatch")

// ErrSingular is returned (wrapped) when a solve meets a singular matrix.
var ErrSingular = errors.New("dense: singular matrix")

// Mat is a dense row-major matrix. The zero value is an empty 0x0 matrix.
// Data holds Rows*Cols float64 values; element (i, j) lives at
// Data[i*Cols+j].
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat returns a zeroed r x c matrix.
// It panics if r or c is negative.
func NewMat(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("dense: NewMat(%d, %d): negative dimension", r, c))
	}
	return &Mat{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewMatFrom returns an r x c matrix backed by a copy of data (row-major).
// It panics if len(data) != r*c.
func NewMatFrom(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("dense: NewMatFrom(%d, %d): need %d values, got %d", r, c, r*c, len(data)))
	}
	m := NewMat(r, c)
	copy(m.Data, data)
	return m
}

// Eye returns the n x n identity matrix.
func Eye(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Diag returns a square diagonal matrix whose diagonal is d.
func Diag(d []float64) *Mat {
	n := len(d)
	m := NewMat(n, n)
	for i, v := range d {
		m.Data[i*n+i] = v
	}
	return m
}

// At returns element (i, j). Bounds are checked by the slice access.
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Reuse reshapes m to r x c, reusing its backing array when the capacity
// suffices and allocating a fresh matrix otherwise (a nil receiver always
// allocates). The returned matrix's contents are unspecified garbage —
// callers must overwrite every element. This is the scratch-reuse hook
// the serving hot path uses to avoid an n x |Q| allocation per batch.
func (m *Mat) Reuse(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("dense: Reuse(%d, %d): negative dimension", r, c))
	}
	if m == nil || cap(m.Data) < r*c {
		return NewMat(r, c)
	}
	m.Rows, m.Cols = r, c
	m.Data = m.Data[:r*c]
	return m
}

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Bytes reports the memory footprint of the matrix payload in bytes.
func (m *Mat) Bytes() int64 { return int64(len(m.Data)) * 8 }

// IsShape reports whether m has exactly r rows and c columns.
func (m *Mat) IsShape(r, c int) bool { return m.Rows == r && m.Cols == c }

// T returns the transpose of m as a new matrix.
func (m *Mat) T() *Mat {
	t := NewMat(m.Cols, m.Rows)
	const bs = 64 // cache-friendly block transpose
	for ii := 0; ii < m.Rows; ii += bs {
		iMax := min(ii+bs, m.Rows)
		for jj := 0; jj < m.Cols; jj += bs {
			jMax := min(jj+bs, m.Cols)
			for i := ii; i < iMax; i++ {
				row := m.Data[i*m.Cols:]
				for j := jj; j < jMax; j++ {
					t.Data[j*m.Rows+i] = row[j]
				}
			}
		}
	}
	return t
}

// Scale multiplies every element of m by a, in place, and returns m.
func (m *Mat) Scale(a float64) *Mat {
	for i := range m.Data {
		m.Data[i] *= a
	}
	return m
}

// AddInPlace adds b to m element-wise, in place, and returns m.
// It panics if shapes differ.
func (m *Mat) AddInPlace(b *Mat) *Mat {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("dense: AddInPlace %dx%d += %dx%d: %v", m.Rows, m.Cols, b.Rows, b.Cols, ErrShape))
	}
	for i, v := range b.Data {
		m.Data[i] += v
	}
	return m
}

// Sub returns m - b as a new matrix. It panics if shapes differ.
func (m *Mat) Sub(b *Mat) *Mat {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("dense: Sub %dx%d - %dx%d: %v", m.Rows, m.Cols, b.Rows, b.Cols, ErrShape))
	}
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// AddEye adds a*I to the square matrix m in place and returns m.
// It panics if m is not square.
func (m *Mat) AddEye(a float64) *Mat {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("dense: AddEye on %dx%d: %v", m.Rows, m.Cols, ErrShape))
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += a
	}
	return m
}

// Col copies column j into dst (allocating when dst is nil) and returns it.
func (m *Mat) Col(j int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Data[i*m.Cols+j]
	}
	return dst
}

// SetCol assigns column j from src.
func (m *Mat) SetCol(j int, src []float64) {
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = src[i]
	}
}

// SliceRows returns a new matrix holding rows [from, to) of m.
func (m *Mat) SliceRows(from, to int) *Mat {
	if from < 0 || to > m.Rows || from > to {
		panic(fmt.Sprintf("dense: SliceRows[%d:%d] of %d rows", from, to, m.Rows))
	}
	out := NewMat(to-from, m.Cols)
	copy(out.Data, m.Data[from*m.Cols:to*m.Cols])
	return out
}

// PickRows returns the |idx| x Cols matrix formed by the rows idx of m,
// in order. Used to build [U]_{Q,*}.
func (m *Mat) PickRows(idx []int) *Mat {
	out := NewMat(len(idx), m.Cols)
	for k, i := range idx {
		copy(out.Row(k), m.Row(i))
	}
	return out
}

// MaxAbs returns max_ij |m_ij| (the max norm), 0 for an empty matrix.
func (m *Mat) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobNorm returns the Frobenius norm of m.
func (m *Mat) FrobNorm() float64 {
	// Scaled accumulation to avoid overflow on large entries.
	scale, ssq := 0.0, 1.0
	for _, v := range m.Data {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			ssq = 1 + ssq*(scale/a)*(scale/a)
			scale = a
		} else {
			ssq += (a / scale) * (a / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// Equal reports whether m and b agree element-wise within tol.
func (m *Mat) Equal(b *Mat, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element is NaN or infinite.
func (m *Mat) HasNaN() bool {
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// String renders small matrices for debugging; large ones are abbreviated.
func (m *Mat) String() string {
	if m.Rows*m.Cols > 400 {
		return fmt.Sprintf("Mat(%dx%d)", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%9.4f ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package reftest

import (
	"math"
	"math/rand"
	"testing"

	"csrplus/internal/dense"
)

func randMat(rng *rand.Rand, r, c int) *dense.Mat {
	m := dense.NewMat(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// The references must agree with each other up to transposition and
// reordering tolerance: MulT(a, b) == Mul(a, bᵀ), TMul(a, b) == Mul(aᵀ, b).
func TestReferencesMutuallyConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := randMat(rng, 17, 9), randMat(rng, 13, 9)
	if got, want := MulT(a, b), Mul(a, b.T()); !got.Equal(want, 1e-12) {
		t.Fatal("MulT disagrees with Mul against materialised transpose")
	}
	c := randMat(rng, 17, 13)
	if got, want := TMul(a, c), Mul(a.T(), c); !got.Equal(want, 1e-12) {
		t.Fatal("TMul disagrees with Mul against materialised transpose")
	}
}

// The whole point of the frozen references: zero times NaN or Inf is NaN
// and must reach the accumulator (the historical production kernels
// skipped zero multipliers and silently dropped it).
func TestReferencesPropagateNaNThroughZero(t *testing.T) {
	a := dense.NewMatFrom(1, 2, []float64{0, 0})
	b := dense.NewMatFrom(2, 1, []float64{math.NaN(), 1})
	if got := Mul(a, b).At(0, 0); !math.IsNaN(got) {
		t.Fatalf("Mul: 0*NaN accumulated to %v, want NaN", got)
	}
	bt := dense.NewMatFrom(1, 2, []float64{math.Inf(1), 1})
	if got := MulT(a, bt).At(0, 0); !math.IsNaN(got) {
		t.Fatalf("MulT: 0*Inf accumulated to %v, want NaN", got)
	}
	at := dense.NewMatFrom(2, 1, []float64{0, 0})
	bn := dense.NewMatFrom(2, 1, []float64{math.NaN(), 1})
	if got := TMul(at, bn).At(0, 0); !math.IsNaN(got) {
		t.Fatalf("TMul: 0*NaN accumulated to %v, want NaN", got)
	}
}

func TestMulTRankEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randMat(rng, 6, 5), randMat(rng, 4, 5)
	if got := MulTRank(a, b, 0); !BitEqual(got, dense.NewMat(6, 4)) {
		t.Fatal("MulTRank(rank=0) is not the zero matrix")
	}
	if got := MulTRank(a, b, 5); !BitEqual(got, MulT(a, b)) {
		t.Fatal("MulTRank(rank=cols) differs from MulT")
	}
}

func TestTMulChunkedIsFixedReorderingOfSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := randMat(rng, 103, 4), randMat(rng, 103, 3)
	serial := TMul(a, b)
	for _, chunk := range []int{1, 7, 50, 103, 200, 0} {
		got := TMulChunked(a, b, chunk)
		if !got.Equal(serial, 1e-12) {
			t.Fatalf("TMulChunked(chunk=%d) beyond rounding of serial", chunk)
		}
	}
	if got := TMulChunked(a, b, 0); !BitEqual(got, serial) {
		t.Fatal("TMulChunked(chunk<=0) must be the serial reference bitwise")
	}
}

func TestBitEqualDistinguishesSignedZeroAndAcceptsNaN(t *testing.T) {
	x := dense.NewMatFrom(1, 2, []float64{0, math.NaN()})
	y := dense.NewMatFrom(1, 2, []float64{math.Copysign(0, -1), math.NaN()})
	if BitEqual(x, y) {
		t.Fatal("BitEqual must distinguish +0 from -0")
	}
	y.Data[0] = 0
	if !BitEqual(x, y) {
		t.Fatal("BitEqual must treat NaN payloads as equal")
	}
	if i, j, ok := Diff(x, dense.NewMatFrom(1, 2, []float64{1, math.NaN()})); ok || i != 0 || j != 0 {
		t.Fatalf("Diff located (%d, %d, %v), want (0, 0, false)", i, j, ok)
	}
}

func TestCSRReferencesMatchDense(t *testing.T) {
	// 3x4 CSR: row0 {1@0, 2@2}, row1 {}, row2 {NaN@1, -0@3}
	rowptr := []int64{0, 2, 2, 4}
	colidx := []int32{0, 2, 1, 3}
	val := []float64{1, 2, math.NaN(), math.Copysign(0, -1)}
	md := dense.NewMat(3, 4)
	for i := 0; i < 3; i++ {
		for p := rowptr[i]; p < rowptr[i+1]; p++ {
			md.Set(i, int(colidx[p]), val[p])
		}
	}
	rng := rand.New(rand.NewSource(4))
	b := randMat(rng, 4, 3)
	if got, want := CSRMulDense(rowptr, colidx, val, 3, b), Mul(md, b); !got.Equal(want, 1e-12) {
		t.Fatal("CSRMulDense disagrees with dense Mul")
	}
	bt := randMat(rng, 3, 3)
	if got, want := CSRMulDenseT(rowptr, colidx, val, 3, 4, bt), TMul(md, bt); !got.Equal(want, 1e-12) {
		t.Fatal("CSRMulDenseT disagrees with dense TMul")
	}
	left := randMat(rng, 2, 3)
	if got, want := DenseMulCSR(left, rowptr, colidx, val, 4), Mul(left, md); !got.Equal(want, 1e-12) {
		t.Fatal("DenseMulCSR disagrees with dense Mul")
	}
}

// Package reftest holds the frozen reference kernels the tiled matmul
// implementations in internal/dense and internal/sparse are differentially
// tested against. Each reference is the plain naive loop — one accumulator
// per output element, summed in a single fixed index order, with no
// value-dependent skips — and is therefore the *definition* of each
// kernel's semantics, including IEEE-754 corner behaviour (0·NaN = NaN,
// 0·±Inf = NaN, signed-zero accumulation, subnormals).
//
// The references are deliberately slow and must never be "optimised":
// any change to a loop here changes the contract every production kernel
// is held to bitwise. New kernels are admitted by proving, via the fuzz
// and property suites in internal/dense and internal/sparse, that they
// reproduce these loops bit for bit (the chunk-reduced TMul is the one
// documented exception: its parallel path is a fixed reordering of the
// reference sum, bitwise-stable across worker counts but only
// rounding-close to the serial reference).
//
// The CSR references take raw CSR arrays rather than a *sparse.CSR so the
// package stays importable from internal/sparse's own tests without an
// import cycle.
package reftest

import (
	"math"

	"csrplus/internal/dense"
)

// Mul returns a·b by the naive ikj loop, every term accumulated — no
// zero skip, so 0·NaN and 0·Inf propagate exactly as IEEE demands.
// Element (i, j) is accumulated over k ascending.
func Mul(a, b *dense.Mat) *dense.Mat {
	out := dense.NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			for j := 0; j < b.Cols; j++ {
				out.Data[i*b.Cols+j] += av * b.At(k, j)
			}
		}
	}
	return out
}

// MulT returns a·bᵀ: one dot product per output element, accumulated
// over k ascending.
func MulT(a, b *dense.Mat) *dense.Mat {
	return MulTRank(a, b, a.Cols)
}

// MulTRank returns a[:, :rank]·(b[:, :rank])ᵀ — the rank-truncated
// a·bᵀ, the serving hot path's degraded-query kernel. rank must be in
// [0, a.Cols]; rank 0 yields the zero matrix.
func MulTRank(a, b *dense.Mat, rank int) *dense.Mat {
	out := dense.NewMat(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			s := 0.0
			for k := 0; k < rank; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			out.Data[i*b.Rows+j] = s
		}
	}
	return out
}

// TMul returns aᵀ·b with element (i, j) accumulated over the shared
// dimension k ascending. The production TMul's above-threshold path
// reduces par.Grid chunk partials in chunk order — a fixed reordering of
// this sum — so differential tests hold it bitwise to TMulChunked below
// and rounding-close (not bitwise) to this serial reference.
func TMul(a, b *dense.Mat) *dense.Mat {
	out := dense.NewMat(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		for i := 0; i < a.Cols; i++ {
			av := a.At(k, i)
			for j := 0; j < b.Cols; j++ {
				out.Data[i*b.Cols+j] += av * b.At(k, j)
			}
		}
	}
	return out
}

// TMulChunked returns aᵀ·b accumulated the way the production kernel's
// deterministic reduction does: the shared dimension is cut at multiples
// of chunk, each chunk is summed by the naive loop into its own partial,
// and partials are added in chunk order. chunk ≤ 0 or ≥ a.Rows degrades
// to the serial reference.
func TMulChunked(a, b *dense.Mat, chunk int) *dense.Mat {
	if chunk <= 0 || chunk >= a.Rows {
		return TMul(a, b)
	}
	out := dense.NewMat(a.Cols, b.Cols)
	for klo := 0; klo < a.Rows; klo += chunk {
		khi := klo + chunk
		if khi > a.Rows {
			khi = a.Rows
		}
		part := dense.NewMat(a.Cols, b.Cols)
		for k := klo; k < khi; k++ {
			for i := 0; i < a.Cols; i++ {
				av := a.At(k, i)
				for j := 0; j < b.Cols; j++ {
					part.Data[i*b.Cols+j] += av * b.At(k, j)
				}
			}
		}
		for i, v := range part.Data {
			out.Data[i] += v
		}
	}
	return out
}

// CSRMulDense returns m·b for a CSR m given as raw arrays (rows from
// rowptr/colidx/val, shape rows×cols). Element (i, c) accumulates the
// stored entries of row i in storage (ascending-column) order.
func CSRMulDense(rowptr []int64, colidx []int32, val []float64, rows int, b *dense.Mat) *dense.Mat {
	out := dense.NewMat(rows, b.Cols)
	for i := 0; i < rows; i++ {
		orow := out.Data[i*b.Cols : (i+1)*b.Cols]
		for p := rowptr[i]; p < rowptr[i+1]; p++ {
			v := val[p]
			brow := b.Data[int(colidx[p])*b.Cols : (int(colidx[p])+1)*b.Cols]
			for c, bv := range brow {
				orow[c] += v * bv
			}
		}
	}
	return out
}

// CSRMulDenseT returns mᵀ·b by the serial column scatter: rows of m in
// ascending order, so output row j accumulates its contributions in
// ascending original-row order — the exact order m.Transpose().MulDense
// reproduces.
func CSRMulDenseT(rowptr []int64, colidx []int32, val []float64, rows, cols int, b *dense.Mat) *dense.Mat {
	out := dense.NewMat(cols, b.Cols)
	for i := 0; i < rows; i++ {
		brow := b.Data[i*b.Cols : (i+1)*b.Cols]
		for p := rowptr[i]; p < rowptr[i+1]; p++ {
			v := val[p]
			orow := out.Data[int(colidx[p])*b.Cols : (int(colidx[p])+1)*b.Cols]
			for c, bv := range brow {
				orow[c] += v * bv
			}
		}
	}
	return out
}

// DenseMulCSR returns b·m for a CSR m as raw arrays. Element (i, j)
// accumulates over b's columns k ascending, entries within row k of m in
// storage order — no skip on zero b values, so NaN/Inf in m propagate
// through zero rows of b.
func DenseMulCSR(b *dense.Mat, rowptr []int64, colidx []int32, val []float64, cols int) *dense.Mat {
	out := dense.NewMat(b.Rows, cols)
	for i := 0; i < b.Rows; i++ {
		brow := b.Data[i*b.Cols : (i+1)*b.Cols]
		orow := out.Data[i*cols : (i+1)*cols]
		for k, bv := range brow {
			for p := rowptr[k]; p < rowptr[k+1]; p++ {
				orow[colidx[p]] += bv * val[p]
			}
		}
	}
	return out
}

// BitEqual reports whether x and y are identical bit for bit, except
// that any two NaNs compare equal regardless of payload (payload
// propagation through arithmetic is hardware-defined, not part of the
// kernel contract). Unlike a tolerance-0 float compare it distinguishes
// +0 from −0, which is exactly the corner the zero-skip bug hid.
func BitEqual(x, y *dense.Mat) bool {
	_, _, ok := Diff(x, y)
	return ok
}

// Diff returns the first element position where x and y differ under
// BitEqual's equivalence (NaN ≡ NaN, else identical bits), with ok=true
// and (-1, -1) when they are equivalent. A shape mismatch reports
// (-1, -1, false).
func Diff(x, y *dense.Mat) (i, j int, ok bool) {
	if x.Rows != y.Rows || x.Cols != y.Cols {
		return -1, -1, false
	}
	for p, v := range x.Data {
		w := y.Data[p]
		if math.IsNaN(v) && math.IsNaN(w) {
			continue
		}
		if math.Float64bits(v) != math.Float64bits(w) {
			if x.Cols == 0 {
				return p, 0, false
			}
			return p / x.Cols, p % x.Cols, false
		}
	}
	return -1, -1, true
}

package dense

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"csrplus/internal/par"
)

// refMulT is the naive a*bᵀ reference: one dot product per output
// element, accumulated in index order — the same per-element order as
// the kernel, so agreement must be bitwise.
func refMulT(a, b *Mat) *Mat {
	out := NewMat(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// refTMul is the naive aᵀ*b reference with per-element accumulation over
// the shared dimension in index order. The chunked kernel reorders this
// reduction (chunk partials summed in chunk order), so agreement is
// checked to a rounding tolerance, not bitwise.
func refTMul(a, b *Mat) *Mat {
	out := NewMat(a.Cols, b.Cols)
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Rows; k++ {
				s += a.At(k, i) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// relEqual reports element-wise agreement within a relative-ish epsilon
// scaled by the larger magnitude (an ulp-style bound for reordered sums).
func relEqual(x, y *Mat, eps float64) bool {
	if x.Rows != y.Rows || x.Cols != y.Cols {
		return false
	}
	for i, v := range x.Data {
		w := y.Data[i]
		scale := math.Max(1, math.Max(math.Abs(v), math.Abs(w)))
		if math.Abs(v-w) > eps*scale {
			return false
		}
	}
	return true
}

// Shapes chosen to clear par.DefaultThreshold (2^20 flops) so the
// parallel paths actually run: 3000*64*16 ≈ 3.1M, 60000*16*16 ≈ 15M.
func parallelFixtures(seed int64) (aWide, bWide, aTall, bTall *Mat) {
	rng := rand.New(rand.NewSource(seed))
	aWide, bWide = randMat(rng, 3000, 16), randMat(rng, 64, 16)
	aTall, bTall = randMat(rng, 60000, 16), randMat(rng, 60000, 16)
	return
}

func TestMulTParallelMatchesReferenceBitwise(t *testing.T) {
	a, b, _, _ := parallelFixtures(11)
	got := MulT(a, b)
	if !got.Equal(refMulT(a, b), 0) {
		t.Fatal("parallel MulT differs from serial reference")
	}
}

func TestTMulParallelMatchesReferenceWithinRounding(t *testing.T) {
	_, _, a, b := parallelFixtures(13)
	got := TMul(a, b)
	if !relEqual(got, refTMul(a, b), 1e-12) {
		t.Fatal("chunked TMul differs from reference beyond rounding")
	}
}

func TestMulParallelMatchesSmallBlocked(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a, b := randMat(rng, 400, 300), randMat(rng, 300, 200) // 24M flops → parallel
	got := Mul(a, b)
	// Row partitioning keeps each output row's accumulation order equal to
	// the serial kernel's, so a single-worker run must agree bitwise.
	prev := par.SetMaxWorkers(1)
	want := Mul(a, b)
	par.SetMaxWorkers(prev)
	if !got.Equal(want, 0) {
		t.Fatal("parallel Mul differs from single-worker Mul")
	}
}

// TestDenseKernelsWorkerCountInvariant pins the package guarantee: every
// parallelised dense kernel returns identical bits at any worker count,
// including the chunk-reduced TMul (its reduction grid depends on the
// problem size only).
func TestDenseKernelsWorkerCountInvariant(t *testing.T) {
	aWide, bWide, aTall, bTall := parallelFixtures(19)
	rng := rand.New(rand.NewSource(23))
	aSq, bSq := randMat(rng, 300, 300), randMat(rng, 300, 300)
	kernels := map[string]func() *Mat{
		"Mul":  func() *Mat { return Mul(aSq, bSq) },
		"MulT": func() *Mat { return MulT(aWide, bWide) },
		"TMul": func() *Mat { return TMul(aTall, bTall) },
	}
	for name, kern := range kernels {
		prev := par.SetMaxWorkers(1)
		want := kern()
		for _, w := range []int{2, 3, 8} {
			par.SetMaxWorkers(w)
			if got := kern(); !got.Equal(want, 0) {
				par.SetMaxWorkers(prev)
				t.Fatalf("%s: %d-worker result differs from 1-worker result", name, w)
			}
		}
		par.SetMaxWorkers(prev)
	}
}

// TestDenseKernelsGOMAXPROCSDeterminism is the satellite requirement
// verbatim: GOMAXPROCS=1 and GOMAXPROCS=N produce equal results for
// every parallelised kernel.
func TestDenseKernelsGOMAXPROCSDeterminism(t *testing.T) {
	aWide, bWide, aTall, bTall := parallelFixtures(29)
	kernels := map[string]func() *Mat{
		"MulT": func() *Mat { return MulT(aWide, bWide) },
		"TMul": func() *Mat { return TMul(aTall, bTall) },
	}
	for name, kern := range kernels {
		old := runtime.GOMAXPROCS(1)
		want := kern()
		runtime.GOMAXPROCS(8)
		got := kern()
		runtime.GOMAXPROCS(old)
		if !got.Equal(want, 0) {
			t.Fatalf("%s: GOMAXPROCS=8 result differs from GOMAXPROCS=1", name)
		}
	}
}

func TestMulTIntoReusesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a, b := randMat(rng, 500, 8), randMat(rng, 20, 8)
	want := refMulT(a, b)

	scratch := NewMat(500, 20)
	got := MulTInto(scratch, a, b)
	if got != scratch {
		t.Fatal("MulTInto did not reuse adequately-sized scratch")
	}
	if !got.Equal(want, 0) {
		t.Fatal("MulTInto(scratch) wrong result")
	}
	// Dirty scratch of larger capacity must be fully overwritten.
	big := NewMat(600, 20)
	for i := range big.Data {
		big.Data[i] = math.NaN()
	}
	got = MulTInto(big, a, b)
	if got != big {
		t.Fatal("MulTInto did not reuse larger-capacity scratch")
	}
	if got.Rows != 500 || got.Cols != 20 || got.HasNaN() || !got.Equal(want, 0) {
		t.Fatal("MulTInto left stale contents in reused scratch")
	}
	// Undersized scratch allocates; nil scratch allocates.
	small := NewMat(3, 3)
	if got = MulTInto(small, a, b); got == small || !got.Equal(want, 0) {
		t.Fatal("MulTInto mishandled undersized scratch")
	}
	if got = MulTInto(nil, a, b); !got.Equal(want, 0) {
		t.Fatal("MulTInto(nil) wrong result")
	}
}

func TestReuse(t *testing.T) {
	m := NewMat(4, 6)
	if got := m.Reuse(3, 8); got != m || got.Rows != 3 || got.Cols != 8 {
		t.Fatalf("Reuse within capacity: got %dx%d, same=%v", got.Rows, got.Cols, got == m)
	}
	if got := m.Reuse(10, 10); got == m || got.Rows != 10 || got.Cols != 10 {
		t.Fatal("Reuse beyond capacity must allocate")
	}
	var nilMat *Mat
	if got := nilMat.Reuse(2, 2); got == nil || got.Rows != 2 {
		t.Fatal("nil Reuse must allocate")
	}
}

// --- Kernel benchmarks (CI runs these with -benchtime=1x as a smoke
// test; EXPERIMENTS.md records full runs at GOMAXPROCS 1 vs N). ---

// BenchmarkKernelMulTQueryShape is the serving hot path's exact GEMM
// shape: Z (n x r) times [U]_{Q,*}ᵀ (|Q| x r)ᵀ at n=100k, r=32, |Q|=32.
func BenchmarkKernelMulTQueryShape(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	z, uq := randMat(rng, 100000, 32), randMat(rng, 32, 32)
	var scratch *Mat
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = MulTInto(scratch, z, uq)
	}
}

func BenchmarkKernelMul(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x, y := randMat(rng, 512, 512), randMat(rng, 512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

// BenchmarkKernelTMul is the H₀ = VᵀUΣ / Gram-matrix shape: tall-skinny
// aᵀb with a small output and a long reduced dimension.
func BenchmarkKernelTMul(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x, y := randMat(rng, 200000, 16), randMat(rng, 200000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TMul(x, y)
	}
}

// BenchmarkKernelMulTQueryShapeWorkers sweeps the worker count on the
// query-shaped GEMM so the speedup curve (or, on a single-core box, the
// dispatch overhead) is measured directly. EXPERIMENTS.md records runs.
func BenchmarkKernelMulTQueryShapeWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	z, uq := randMat(rng, 100000, 32), randMat(rng, 32, 32)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := par.SetMaxWorkers(w)
			defer par.SetMaxWorkers(prev)
			var scratch *Mat
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scratch = MulTInto(scratch, z, uq)
			}
		})
	}
}
